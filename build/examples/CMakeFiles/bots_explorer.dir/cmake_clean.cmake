file(REMOVE_RECURSE
  "CMakeFiles/bots_explorer.dir/bots_explorer.cpp.o"
  "CMakeFiles/bots_explorer.dir/bots_explorer.cpp.o.d"
  "bots_explorer"
  "bots_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bots_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
