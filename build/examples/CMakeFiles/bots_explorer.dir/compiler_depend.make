# Empty compiler generated dependencies file for bots_explorer.
# This may be replaced when dependencies are built.
