# Empty compiler generated dependencies file for machine_sim.
# This may be replaced when dependencies are built.
