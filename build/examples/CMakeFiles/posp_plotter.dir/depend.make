# Empty dependencies file for posp_plotter.
# This may be replaced when dependencies are built.
