file(REMOVE_RECURSE
  "CMakeFiles/posp_plotter.dir/posp_plotter.cpp.o"
  "CMakeFiles/posp_plotter.dir/posp_plotter.cpp.o.d"
  "posp_plotter"
  "posp_plotter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/posp_plotter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
