# Empty compiler generated dependencies file for xtask_prof.
# This may be replaced when dependencies are built.
