file(REMOVE_RECURSE
  "libxtask_prof.a"
)
