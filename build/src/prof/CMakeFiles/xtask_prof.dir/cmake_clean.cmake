file(REMOVE_RECURSE
  "CMakeFiles/xtask_prof.dir/profiler.cpp.o"
  "CMakeFiles/xtask_prof.dir/profiler.cpp.o.d"
  "CMakeFiles/xtask_prof.dir/trace_export.cpp.o"
  "CMakeFiles/xtask_prof.dir/trace_export.cpp.o.d"
  "libxtask_prof.a"
  "libxtask_prof.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xtask_prof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
