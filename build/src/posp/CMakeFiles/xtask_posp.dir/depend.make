# Empty dependencies file for xtask_posp.
# This may be replaced when dependencies are built.
