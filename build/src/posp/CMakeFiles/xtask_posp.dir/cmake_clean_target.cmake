file(REMOVE_RECURSE
  "libxtask_posp.a"
)
