
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/posp/blake3.cpp" "src/posp/CMakeFiles/xtask_posp.dir/blake3.cpp.o" "gcc" "src/posp/CMakeFiles/xtask_posp.dir/blake3.cpp.o.d"
  "/root/repo/src/posp/plot_file.cpp" "src/posp/CMakeFiles/xtask_posp.dir/plot_file.cpp.o" "gcc" "src/posp/CMakeFiles/xtask_posp.dir/plot_file.cpp.o.d"
  "/root/repo/src/posp/posp.cpp" "src/posp/CMakeFiles/xtask_posp.dir/posp.cpp.o" "gcc" "src/posp/CMakeFiles/xtask_posp.dir/posp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/xtask_core.dir/DependInfo.cmake"
  "/root/repo/build/src/prof/CMakeFiles/xtask_prof.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
