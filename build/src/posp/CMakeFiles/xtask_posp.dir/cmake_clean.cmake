file(REMOVE_RECURSE
  "CMakeFiles/xtask_posp.dir/blake3.cpp.o"
  "CMakeFiles/xtask_posp.dir/blake3.cpp.o.d"
  "CMakeFiles/xtask_posp.dir/plot_file.cpp.o"
  "CMakeFiles/xtask_posp.dir/plot_file.cpp.o.d"
  "CMakeFiles/xtask_posp.dir/posp.cpp.o"
  "CMakeFiles/xtask_posp.dir/posp.cpp.o.d"
  "libxtask_posp.a"
  "libxtask_posp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xtask_posp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
