
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/dependency.cpp" "src/core/CMakeFiles/xtask_core.dir/dependency.cpp.o" "gcc" "src/core/CMakeFiles/xtask_core.dir/dependency.cpp.o.d"
  "/root/repo/src/core/runtime.cpp" "src/core/CMakeFiles/xtask_core.dir/runtime.cpp.o" "gcc" "src/core/CMakeFiles/xtask_core.dir/runtime.cpp.o.d"
  "/root/repo/src/core/steal_protocol.cpp" "src/core/CMakeFiles/xtask_core.dir/steal_protocol.cpp.o" "gcc" "src/core/CMakeFiles/xtask_core.dir/steal_protocol.cpp.o.d"
  "/root/repo/src/core/topology.cpp" "src/core/CMakeFiles/xtask_core.dir/topology.cpp.o" "gcc" "src/core/CMakeFiles/xtask_core.dir/topology.cpp.o.d"
  "/root/repo/src/core/tree_barrier.cpp" "src/core/CMakeFiles/xtask_core.dir/tree_barrier.cpp.o" "gcc" "src/core/CMakeFiles/xtask_core.dir/tree_barrier.cpp.o.d"
  "/root/repo/src/core/xtask_c.cpp" "src/core/CMakeFiles/xtask_core.dir/xtask_c.cpp.o" "gcc" "src/core/CMakeFiles/xtask_core.dir/xtask_c.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/prof/CMakeFiles/xtask_prof.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
