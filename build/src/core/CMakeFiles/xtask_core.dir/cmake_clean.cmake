file(REMOVE_RECURSE
  "CMakeFiles/xtask_core.dir/dependency.cpp.o"
  "CMakeFiles/xtask_core.dir/dependency.cpp.o.d"
  "CMakeFiles/xtask_core.dir/runtime.cpp.o"
  "CMakeFiles/xtask_core.dir/runtime.cpp.o.d"
  "CMakeFiles/xtask_core.dir/steal_protocol.cpp.o"
  "CMakeFiles/xtask_core.dir/steal_protocol.cpp.o.d"
  "CMakeFiles/xtask_core.dir/topology.cpp.o"
  "CMakeFiles/xtask_core.dir/topology.cpp.o.d"
  "CMakeFiles/xtask_core.dir/tree_barrier.cpp.o"
  "CMakeFiles/xtask_core.dir/tree_barrier.cpp.o.d"
  "CMakeFiles/xtask_core.dir/xtask_c.cpp.o"
  "CMakeFiles/xtask_core.dir/xtask_c.cpp.o.d"
  "libxtask_core.a"
  "libxtask_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xtask_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
