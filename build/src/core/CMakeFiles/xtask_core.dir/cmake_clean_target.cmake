file(REMOVE_RECURSE
  "libxtask_core.a"
)
