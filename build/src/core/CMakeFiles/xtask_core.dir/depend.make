# Empty dependencies file for xtask_core.
# This may be replaced when dependencies are built.
