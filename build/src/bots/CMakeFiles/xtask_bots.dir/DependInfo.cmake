
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bots/bots_support.cpp" "src/bots/CMakeFiles/xtask_bots.dir/bots_support.cpp.o" "gcc" "src/bots/CMakeFiles/xtask_bots.dir/bots_support.cpp.o.d"
  "/root/repo/src/bots/sparselu.cpp" "src/bots/CMakeFiles/xtask_bots.dir/sparselu.cpp.o" "gcc" "src/bots/CMakeFiles/xtask_bots.dir/sparselu.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/xtask_core.dir/DependInfo.cmake"
  "/root/repo/build/src/prof/CMakeFiles/xtask_prof.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
