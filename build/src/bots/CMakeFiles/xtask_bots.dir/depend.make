# Empty dependencies file for xtask_bots.
# This may be replaced when dependencies are built.
