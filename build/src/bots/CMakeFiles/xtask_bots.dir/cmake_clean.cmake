file(REMOVE_RECURSE
  "CMakeFiles/xtask_bots.dir/bots_support.cpp.o"
  "CMakeFiles/xtask_bots.dir/bots_support.cpp.o.d"
  "CMakeFiles/xtask_bots.dir/sparselu.cpp.o"
  "CMakeFiles/xtask_bots.dir/sparselu.cpp.o.d"
  "libxtask_bots.a"
  "libxtask_bots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xtask_bots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
