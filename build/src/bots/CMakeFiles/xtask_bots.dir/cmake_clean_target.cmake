file(REMOVE_RECURSE
  "libxtask_bots.a"
)
