file(REMOVE_RECURSE
  "CMakeFiles/xtask_sim.dir/engine.cpp.o"
  "CMakeFiles/xtask_sim.dir/engine.cpp.o.d"
  "CMakeFiles/xtask_sim.dir/fiber.cpp.o"
  "CMakeFiles/xtask_sim.dir/fiber.cpp.o.d"
  "CMakeFiles/xtask_sim.dir/fiber_switch.S.o"
  "CMakeFiles/xtask_sim.dir/workloads.cpp.o"
  "CMakeFiles/xtask_sim.dir/workloads.cpp.o.d"
  "libxtask_sim.a"
  "libxtask_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang ASM CXX)
  include(CMakeFiles/xtask_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
