file(REMOVE_RECURSE
  "libxtask_sim.a"
)
