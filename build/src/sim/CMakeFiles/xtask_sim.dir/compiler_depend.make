# Empty compiler generated dependencies file for xtask_sim.
# This may be replaced when dependencies are built.
