file(REMOVE_RECURSE
  "libxtask_gomp.a"
)
