# Empty dependencies file for xtask_gomp.
# This may be replaced when dependencies are built.
