file(REMOVE_RECURSE
  "CMakeFiles/xtask_gomp.dir/gomp_runtime.cpp.o"
  "CMakeFiles/xtask_gomp.dir/gomp_runtime.cpp.o.d"
  "CMakeFiles/xtask_gomp.dir/lomp_runtime.cpp.o"
  "CMakeFiles/xtask_gomp.dir/lomp_runtime.cpp.o.d"
  "libxtask_gomp.a"
  "libxtask_gomp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xtask_gomp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
