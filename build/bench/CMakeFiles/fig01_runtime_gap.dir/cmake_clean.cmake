file(REMOVE_RECURSE
  "CMakeFiles/fig01_runtime_gap.dir/fig01_runtime_gap.cpp.o"
  "CMakeFiles/fig01_runtime_gap.dir/fig01_runtime_gap.cpp.o.d"
  "fig01_runtime_gap"
  "fig01_runtime_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_runtime_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
