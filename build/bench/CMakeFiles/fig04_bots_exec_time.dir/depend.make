# Empty dependencies file for fig04_bots_exec_time.
# This may be replaced when dependencies are built.
