file(REMOVE_RECURSE
  "CMakeFiles/fig04_bots_exec_time.dir/fig04_bots_exec_time.cpp.o"
  "CMakeFiles/fig04_bots_exec_time.dir/fig04_bots_exec_time.cpp.o.d"
  "fig04_bots_exec_time"
  "fig04_bots_exec_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_bots_exec_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
