# Empty dependencies file for table_queuews_funnel.
# This may be replaced when dependencies are built.
