file(REMOVE_RECURSE
  "CMakeFiles/table_queuews_funnel.dir/table_queuews_funnel.cpp.o"
  "CMakeFiles/table_queuews_funnel.dir/table_queuews_funnel.cpp.o.d"
  "table_queuews_funnel"
  "table_queuews_funnel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_queuews_funnel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
