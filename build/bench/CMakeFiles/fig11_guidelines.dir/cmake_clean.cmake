file(REMOVE_RECURSE
  "CMakeFiles/fig11_guidelines.dir/fig11_guidelines.cpp.o"
  "CMakeFiles/fig11_guidelines.dir/fig11_guidelines.cpp.o.d"
  "fig11_guidelines"
  "fig11_guidelines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_guidelines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
