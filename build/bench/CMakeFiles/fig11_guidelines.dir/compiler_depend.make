# Empty compiler generated dependencies file for fig11_guidelines.
# This may be replaced when dependencies are built.
