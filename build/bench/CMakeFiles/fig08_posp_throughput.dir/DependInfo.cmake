
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig08_posp_throughput.cpp" "bench/CMakeFiles/fig08_posp_throughput.dir/fig08_posp_throughput.cpp.o" "gcc" "bench/CMakeFiles/fig08_posp_throughput.dir/fig08_posp_throughput.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/xtask_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/xtask_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/bots/CMakeFiles/xtask_bots.dir/DependInfo.cmake"
  "/root/repo/build/src/gomp/CMakeFiles/xtask_gomp.dir/DependInfo.cmake"
  "/root/repo/build/src/posp/CMakeFiles/xtask_posp.dir/DependInfo.cmake"
  "/root/repo/build/src/prof/CMakeFiles/xtask_prof.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
