# Empty dependencies file for fig08_posp_throughput.
# This may be replaced when dependencies are built.
