file(REMOVE_RECURSE
  "CMakeFiles/table02_03_dlb_stats.dir/table02_03_dlb_stats.cpp.o"
  "CMakeFiles/table02_03_dlb_stats.dir/table02_03_dlb_stats.cpp.o.d"
  "table02_03_dlb_stats"
  "table02_03_dlb_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table02_03_dlb_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
