# Empty compiler generated dependencies file for table02_03_dlb_stats.
# This may be replaced when dependencies are built.
