file(REMOVE_RECURSE
  "CMakeFiles/fig05_improvement.dir/fig05_improvement.cpp.o"
  "CMakeFiles/fig05_improvement.dir/fig05_improvement.cpp.o.d"
  "fig05_improvement"
  "fig05_improvement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_improvement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
