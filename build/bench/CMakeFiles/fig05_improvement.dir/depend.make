# Empty dependencies file for fig05_improvement.
# This may be replaced when dependencies are built.
