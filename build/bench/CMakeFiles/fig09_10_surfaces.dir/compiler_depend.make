# Empty compiler generated dependencies file for fig09_10_surfaces.
# This may be replaced when dependencies are built.
