file(REMOVE_RECURSE
  "CMakeFiles/fig03_load_imbalance.dir/fig03_load_imbalance.cpp.o"
  "CMakeFiles/fig03_load_imbalance.dir/fig03_load_imbalance.cpp.o.d"
  "fig03_load_imbalance"
  "fig03_load_imbalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_load_imbalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
