file(REMOVE_RECURSE
  "CMakeFiles/fig07_dlb_best.dir/fig07_dlb_best.cpp.o"
  "CMakeFiles/fig07_dlb_best.dir/fig07_dlb_best.cpp.o.d"
  "fig07_dlb_best"
  "fig07_dlb_best.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_dlb_best.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
