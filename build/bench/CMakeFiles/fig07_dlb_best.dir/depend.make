# Empty dependencies file for fig07_dlb_best.
# This may be replaced when dependencies are built.
