file(REMOVE_RECURSE
  "CMakeFiles/test_xqueue.dir/test_xqueue.cpp.o"
  "CMakeFiles/test_xqueue.dir/test_xqueue.cpp.o.d"
  "test_xqueue"
  "test_xqueue.pdb"
  "test_xqueue[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xqueue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
