# Empty dependencies file for test_xqueue.
# This may be replaced when dependencies are built.
