# Empty dependencies file for test_plot_file.
# This may be replaced when dependencies are built.
