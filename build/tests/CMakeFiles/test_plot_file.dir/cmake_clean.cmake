file(REMOVE_RECURSE
  "CMakeFiles/test_plot_file.dir/test_plot_file.cpp.o"
  "CMakeFiles/test_plot_file.dir/test_plot_file.cpp.o.d"
  "test_plot_file"
  "test_plot_file.pdb"
  "test_plot_file[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_plot_file.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
