# Empty dependencies file for test_taskgroup.
# This may be replaced when dependencies are built.
