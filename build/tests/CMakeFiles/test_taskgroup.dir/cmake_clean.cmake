file(REMOVE_RECURSE
  "CMakeFiles/test_taskgroup.dir/test_taskgroup.cpp.o"
  "CMakeFiles/test_taskgroup.dir/test_taskgroup.cpp.o.d"
  "test_taskgroup"
  "test_taskgroup.pdb"
  "test_taskgroup[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_taskgroup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
