# Empty dependencies file for test_posp.
# This may be replaced when dependencies are built.
