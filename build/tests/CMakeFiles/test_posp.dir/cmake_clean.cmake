file(REMOVE_RECURSE
  "CMakeFiles/test_posp.dir/test_posp.cpp.o"
  "CMakeFiles/test_posp.dir/test_posp.cpp.o.d"
  "test_posp"
  "test_posp.pdb"
  "test_posp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_posp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
