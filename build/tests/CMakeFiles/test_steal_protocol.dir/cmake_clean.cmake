file(REMOVE_RECURSE
  "CMakeFiles/test_steal_protocol.dir/test_steal_protocol.cpp.o"
  "CMakeFiles/test_steal_protocol.dir/test_steal_protocol.cpp.o.d"
  "test_steal_protocol"
  "test_steal_protocol.pdb"
  "test_steal_protocol[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_steal_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
