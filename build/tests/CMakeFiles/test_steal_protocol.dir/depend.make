# Empty dependencies file for test_steal_protocol.
# This may be replaced when dependencies are built.
