file(REMOVE_RECURSE
  "CMakeFiles/test_central_barrier.dir/test_central_barrier.cpp.o"
  "CMakeFiles/test_central_barrier.dir/test_central_barrier.cpp.o.d"
  "test_central_barrier"
  "test_central_barrier.pdb"
  "test_central_barrier[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_central_barrier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
