file(REMOVE_RECURSE
  "CMakeFiles/test_bqueue.dir/test_bqueue.cpp.o"
  "CMakeFiles/test_bqueue.dir/test_bqueue.cpp.o.d"
  "test_bqueue"
  "test_bqueue.pdb"
  "test_bqueue[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bqueue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
