# Empty compiler generated dependencies file for test_bqueue.
# This may be replaced when dependencies are built.
