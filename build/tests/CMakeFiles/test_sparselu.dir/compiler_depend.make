# Empty compiler generated dependencies file for test_sparselu.
# This may be replaced when dependencies are built.
