
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_sparselu.cpp" "tests/CMakeFiles/test_sparselu.dir/test_sparselu.cpp.o" "gcc" "tests/CMakeFiles/test_sparselu.dir/test_sparselu.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/xtask_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gomp/CMakeFiles/xtask_gomp.dir/DependInfo.cmake"
  "/root/repo/build/src/bots/CMakeFiles/xtask_bots.dir/DependInfo.cmake"
  "/root/repo/build/src/prof/CMakeFiles/xtask_prof.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
