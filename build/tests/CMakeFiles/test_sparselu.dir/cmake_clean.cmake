file(REMOVE_RECURSE
  "CMakeFiles/test_sparselu.dir/test_sparselu.cpp.o"
  "CMakeFiles/test_sparselu.dir/test_sparselu.cpp.o.d"
  "test_sparselu"
  "test_sparselu.pdb"
  "test_sparselu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sparselu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
