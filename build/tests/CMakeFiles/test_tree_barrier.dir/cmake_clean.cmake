file(REMOVE_RECURSE
  "CMakeFiles/test_tree_barrier.dir/test_tree_barrier.cpp.o"
  "CMakeFiles/test_tree_barrier.dir/test_tree_barrier.cpp.o.d"
  "test_tree_barrier"
  "test_tree_barrier.pdb"
  "test_tree_barrier[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tree_barrier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
