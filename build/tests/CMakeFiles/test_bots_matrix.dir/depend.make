# Empty dependencies file for test_bots_matrix.
# This may be replaced when dependencies are built.
