file(REMOVE_RECURSE
  "CMakeFiles/test_bots_matrix.dir/test_bots_matrix.cpp.o"
  "CMakeFiles/test_bots_matrix.dir/test_bots_matrix.cpp.o.d"
  "test_bots_matrix"
  "test_bots_matrix.pdb"
  "test_bots_matrix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bots_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
