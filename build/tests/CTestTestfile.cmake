# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_bots[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_posp[1]_include.cmake")
include("/root/repo/build/tests/test_bqueue[1]_include.cmake")
include("/root/repo/build/tests/test_xqueue[1]_include.cmake")
include("/root/repo/build/tests/test_topology[1]_include.cmake")
include("/root/repo/build/tests/test_steal_protocol[1]_include.cmake")
include("/root/repo/build/tests/test_tree_barrier[1]_include.cmake")
include("/root/repo/build/tests/test_allocator[1]_include.cmake")
include("/root/repo/build/tests/test_profiler[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_runtime_stress[1]_include.cmake")
include("/root/repo/build/tests/test_dependency[1]_include.cmake")
include("/root/repo/build/tests/test_adaptive[1]_include.cmake")
include("/root/repo/build/tests/test_parallel_for[1]_include.cmake")
include("/root/repo/build/tests/test_trace_export[1]_include.cmake")
include("/root/repo/build/tests/test_central_barrier[1]_include.cmake")
include("/root/repo/build/tests/test_fiber[1]_include.cmake")
include("/root/repo/build/tests/test_sim_sweep[1]_include.cmake")
include("/root/repo/build/tests/test_bots_matrix[1]_include.cmake")
include("/root/repo/build/tests/test_taskgroup[1]_include.cmake")
include("/root/repo/build/tests/test_plot_file[1]_include.cmake")
include("/root/repo/build/tests/test_c_api[1]_include.cmake")
include("/root/repo/build/tests/test_sparselu[1]_include.cmake")
