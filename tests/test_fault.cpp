// Fault-tolerance tests: ExceptionSlot semantics, FaultInjector
// determinism, Watchdog behavior, and the runtime's error paths —
// exception propagation through taskwait/taskgroup/run, cooperative
// cancellation (including racing a steal), and watchdog firing on a
// wedged worker. The seeded chaos sweeps live in test_chaos.cpp.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/parallel_for.hpp"
#include "core/runtime.hpp"
#include "core/watchdog.hpp"
#include "gomp/gomp_runtime.hpp"
#include "gomp/lomp_runtime.hpp"
#include "registry/registry.hpp"

namespace xtask {
namespace {

struct TestError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

// ---------------------------------------------------------------------------
// ExceptionSlot.

TEST(ExceptionSlot, FirstStoreWinsAndTakeEmpties) {
  ExceptionSlot slot;
  EXPECT_FALSE(slot.pending());
  EXPECT_EQ(slot.take(), nullptr);
  EXPECT_TRUE(slot.try_store(std::make_exception_ptr(TestError("a"))));
  EXPECT_FALSE(slot.try_store(std::make_exception_ptr(TestError("b"))));
  EXPECT_TRUE(slot.pending());
  std::exception_ptr ep = slot.take();
  ASSERT_NE(ep, nullptr);
  EXPECT_THROW(std::rethrow_exception(ep), TestError);
  EXPECT_FALSE(slot.pending());
  // Empty again: a new store succeeds.
  EXPECT_TRUE(slot.try_store(std::make_exception_ptr(TestError("c"))));
  slot.reset();
  EXPECT_FALSE(slot.pending());
}

TEST(ExceptionSlot, ConcurrentStoresExactlyOneWins) {
  ExceptionSlot slot;
  constexpr int kThreads = 8;
  std::atomic<int> wins{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      while (!go.load(std::memory_order_acquire)) {
      }
      if (slot.try_store(std::make_exception_ptr(
              TestError("thrower " + std::to_string(i)))))
        wins.fetch_add(1, std::memory_order_relaxed);
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  EXPECT_EQ(wins.load(), 1);
  EXPECT_NE(slot.take(), nullptr);
}

// ---------------------------------------------------------------------------
// FaultInjector.

TEST(FaultInjector, ZeroRateNeverFires) {
  FaultInjector fi(7);
  for (int i = 0; i < 1000; ++i)
    EXPECT_FALSE(fi.inject(FaultPoint::kQueuePush));
  EXPECT_EQ(fi.failed(FaultPoint::kQueuePush), 0u);
  EXPECT_EQ(fi.evaluated(FaultPoint::kQueuePush), 1000u);
}

TEST(FaultInjector, FullRateAlwaysFires) {
  FaultInjector fi(7);
  fi.set_fail_rate(FaultPoint::kQueuePop, 1.0);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(fi.inject(FaultPoint::kQueuePop));
  EXPECT_EQ(fi.failed(FaultPoint::kQueuePop), 100u);
}

TEST(FaultInjector, SameSeedSameDecisionSequence) {
  // Two injectors with the same seed, driven from one thread, replay the
  // same decision sequence; a different seed diverges (overwhelmingly).
  auto sequence = [](std::uint64_t seed) {
    FaultInjector fi(seed);
    fi.set_fail_rate(FaultPoint::kStealRequest, 0.5);
    std::vector<bool> out;
    out.reserve(256);
    for (int i = 0; i < 256; ++i)
      out.push_back(fi.inject(FaultPoint::kStealRequest));
    return out;
  };
  EXPECT_EQ(sequence(42), sequence(42));
  EXPECT_NE(sequence(42), sequence(43));
}

TEST(FaultInjector, RateIsApproximatelyHonored) {
  FaultInjector fi(123);
  fi.set_fail_rate(FaultPoint::kQueuePush, 0.25);
  int fired = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i)
    if (fi.inject(FaultPoint::kQueuePush)) ++fired;
  // 0.25 +/- generous slack (binomial stddev ~31 here).
  EXPECT_GT(fired, kTrials / 5);
  EXPECT_LT(fired, kTrials / 3);
}

TEST(FaultInjector, ScopeInstallsAndRemoves) {
  EXPECT_EQ(fault_injector(), nullptr);
  {
    FaultInjector fi(1);
    FaultScope scope(fi);
    EXPECT_EQ(fault_injector(), &fi);
  }
  EXPECT_EQ(fault_injector(), nullptr);
}

TEST(FaultInjector, ScopesNestAndRestoreLifo) {
  // An inner scope shadows the outer injector for its lifetime and the
  // outer one is restored on destruction (save/restore, not store-null).
  EXPECT_EQ(fault_injector(), nullptr);
  FaultInjector outer(1);
  FaultInjector inner(2);
  {
    FaultScope a(outer);
    EXPECT_EQ(fault_injector(), &outer);
    {
      FaultScope b(inner);
      EXPECT_EQ(fault_injector(), &inner);
    }
    EXPECT_EQ(fault_injector(), &outer);
  }
  EXPECT_EQ(fault_injector(), nullptr);
}

TEST(FaultInjector, FailAndPerturbTalliesAreSeparate) {
  // inject() and perturb() keep distinct tallies: forced failures must
  // not be conflated with yield perturbations.
  FaultInjector fi(9);
  fi.set_fail_rate(FaultPoint::kQueuePush, 1.0);
  fi.set_yield_rate(FaultPoint::kQueuePush, 1.0);
  for (int i = 0; i < 50; ++i) EXPECT_TRUE(fi.inject(FaultPoint::kQueuePush));
  for (int i = 0; i < 30; ++i) fi.perturb(FaultPoint::kQueuePush);
  EXPECT_EQ(fi.failed(FaultPoint::kQueuePush), 50u);
  EXPECT_EQ(fi.perturbed(FaultPoint::kQueuePush), 30u);
  EXPECT_EQ(fi.total_injected(), 80u);
  // The other points stayed untouched.
  EXPECT_EQ(fi.failed(FaultPoint::kQueuePop), 0u);
  EXPECT_EQ(fi.perturbed(FaultPoint::kQueuePop), 0u);
}

TEST(FaultInjector, ReplayDeterministicAcrossThreads) {
  // The reproducibility claim of draw(): with a fixed thread-enrollment
  // order, the same seed replays identical per-thread decision sequences
  // run to run, and a different seed diverges.
  constexpr int kThreads = 4;
  constexpr int kDecisions = 64;
  auto run_once = [](std::uint64_t seed) {
    FaultInjector fi(seed);
    fi.set_fail_rate(FaultPoint::kStealRequest, 0.5);
    std::vector<std::vector<bool>> out(kThreads);
    std::atomic<int> turn{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        // Serialize the *first* draw: it is what enrolls the thread and
        // assigns its stream ordinal, so the token fixes the enrollment
        // order across runs. Later draws interleave freely — streams are
        // thread-local, so interleaving cannot perturb them.
        while (turn.load(std::memory_order_acquire) != t)
          std::this_thread::yield();
        out[static_cast<std::size_t>(t)].push_back(
            fi.inject(FaultPoint::kStealRequest));
        turn.store(t + 1, std::memory_order_release);
        for (int i = 1; i < kDecisions; ++i)
          out[static_cast<std::size_t>(t)].push_back(
              fi.inject(FaultPoint::kStealRequest));
      });
    }
    for (auto& th : threads) th.join();
    return out;
  };
  const auto a = run_once(42);
  const auto b = run_once(42);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, run_once(43));
}

// ---------------------------------------------------------------------------
// Watchdog.

TEST(Watchdog, FiresOnFrozenProgressAndOnlyWhenActive) {
  std::atomic<std::uint64_t> progress{0};
  std::atomic<bool> active{false};
  std::atomic<int> fired{0};
  Watchdog wd;
  Watchdog::Hooks hooks;
  hooks.timeout_ms = 50;
  hooks.progress = [&] { return progress.load(); };
  hooks.active = [&] { return active.load(); };
  hooks.on_stall = [&] { fired.fetch_add(1); };
  wd.start(std::move(hooks));
  ASSERT_TRUE(wd.running());

  // Inactive: frozen progress must not fire.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  EXPECT_EQ(fired.load(), 0);

  // Active + frozen: fires within a few windows.
  active.store(true);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (fired.load() == 0 && std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(fired.load(), 1);
  EXPECT_GE(wd.stalls(), 1u);
  wd.stop();
  EXPECT_FALSE(wd.running());
}

TEST(Watchdog, StaysQuietWhileProgressAdvances) {
  std::atomic<std::uint64_t> progress{0};
  std::atomic<int> fired{0};
  Watchdog wd;
  Watchdog::Hooks hooks;
  hooks.timeout_ms = 60;
  hooks.progress = [&] { return progress.fetch_add(1); };  // always moving
  hooks.active = [] { return true; };
  hooks.on_stall = [&] { fired.fetch_add(1); };
  wd.start(std::move(hooks));
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  wd.stop();
  EXPECT_EQ(fired.load(), 0);
}

// ---------------------------------------------------------------------------
// Runtime exception propagation.

Config small_config() {
  Config cfg;
  cfg.num_threads = 4;
  cfg.numa_zones = 2;
  return cfg;
}

TEST(RuntimeExceptions, ChildThrowRethrownAtTaskwait) {
  const auto rt_h = RuntimeRegistry::make_xtask(small_config());
  Runtime& rt = *rt_h;
  std::atomic<bool> caught{false};
  std::atomic<int> siblings_ran{0};
  rt.run([&](TaskContext& ctx) {
    ctx.spawn([](TaskContext&) { throw TestError("child boom"); });
    for (int i = 0; i < 8; ++i)
      ctx.spawn([&](TaskContext&) { siblings_ran.fetch_add(1); });
    try {
      ctx.taskwait();
    } catch (const TestError& e) {
      EXPECT_STREQ(e.what(), "child boom");
      caught.store(true);
    }
  });
  // The parent consumed the exception: nothing reaches run().
  EXPECT_TRUE(caught.load());
  // No cancellation was requested, so siblings all ran (they may finish
  // before or after the throwing child — both orders are legal).
  EXPECT_EQ(siblings_ran.load(), 8);
}

TEST(RuntimeExceptions, UncaughtChildThrowReachesRun) {
  const auto rt_h = RuntimeRegistry::make_xtask(small_config());
  Runtime& rt = *rt_h;
  bool caught = false;
  try {
    rt.run([&](TaskContext& ctx) {
      ctx.spawn([](TaskContext&) { throw TestError("fire and forget"); });
      // No taskwait: the exception escalates through the root's descriptor
      // release to the region slot.
    });
  } catch (const TestError& e) {
    EXPECT_STREQ(e.what(), "fire and forget");
    caught = true;
  }
  EXPECT_TRUE(caught);
}

TEST(RuntimeExceptions, RootBodyThrowReachesRun) {
  const auto rt_h = RuntimeRegistry::make_xtask(small_config());
  Runtime& rt = *rt_h;
  EXPECT_THROW(
      rt.run([](TaskContext&) { throw TestError("root boom"); }),
      TestError);
}

TEST(RuntimeExceptions, TaskgroupRethrowsAndCancelsRemainder) {
  Config cfg = small_config();
  cfg.num_threads = 2;  // deterministic pressure on the group
  const auto rt_h = RuntimeRegistry::make_xtask(cfg);
  Runtime& rt = *rt_h;
  std::atomic<bool> caught{false};
  std::atomic<int> late_spawns_ran{0};
  rt.run([&](TaskContext& ctx) {
    try {
      ctx.taskgroup([&](TaskContext& g) {
        g.spawn([](TaskContext&) { throw TestError("group boom"); });
        g.taskwait();  // consume nothing: exception is in the child's slot
                       // only until it finishes; wait until it surfaces.
      });
    } catch (const TestError& e) {
      EXPECT_STREQ(e.what(), "group boom");
      caught.store(true);
    }
    (void)late_spawns_ran;
  });
  EXPECT_TRUE(caught.load());
}

TEST(RuntimeExceptions, TaskwaitInsideGroupCanRecover) {
  // A parent that taskwaits inside the group consumes the child failure;
  // the group completes normally and nothing is rethrown outside.
  const auto rt_h = RuntimeRegistry::make_xtask(small_config());
  Runtime& rt = *rt_h;
  std::atomic<bool> recovered{false};
  rt.run([&](TaskContext& ctx) {
    ctx.taskgroup([&](TaskContext& g) {
      g.spawn([](TaskContext&) { throw TestError("recoverable"); });
      try {
        g.taskwait();
      } catch (const TestError&) {
        recovered.store(true);
      }
      g.spawn([](TaskContext&) {});  // group continues after recovery
    });
  });
  EXPECT_TRUE(recovered.load());
}

TEST(RuntimeExceptions, RuntimeReusableAfterThrow) {
  const auto rt_h = RuntimeRegistry::make_xtask(small_config());
  Runtime& rt = *rt_h;
  EXPECT_THROW(rt.run([](TaskContext& ctx) {
    ctx.spawn([](TaskContext&) { throw TestError("first region"); });
    ctx.taskwait();
  }),
               TestError);
  // The same runtime executes a clean region afterwards.
  std::atomic<int> ran{0};
  rt.run([&](TaskContext& ctx) {
    for (int i = 0; i < 100; ++i)
      ctx.spawn([&](TaskContext&) { ran.fetch_add(1); });
    ctx.taskwait();
  });
  EXPECT_EQ(ran.load(), 100);
  const Counters total = rt.profiler().total_counters();
  EXPECT_EQ(total.ntasks_created, total.ntasks_executed);
  EXPECT_GE(total.nexceptions, 1u);
}

TEST(RuntimeExceptions, ParallelForBodyThrow) {
  const auto rt_h = RuntimeRegistry::make_xtask(small_config());
  Runtime& rt = *rt_h;
  std::atomic<int> processed{0};
  bool caught = false;
  try {
    rt.run([&](TaskContext& ctx) {
      parallel_for(ctx, std::size_t{0}, std::size_t{1024}, std::size_t{16},
                   [&](std::size_t lo, std::size_t hi) {
                     for (std::size_t i = lo; i < hi; ++i) {
                       if (i == 333) throw TestError("loop boom");
                       processed.fetch_add(1);
                     }
                   });
    });
  } catch (const TestError& e) {
    EXPECT_STREQ(e.what(), "loop boom");
    caught = true;
  }
  EXPECT_TRUE(caught);
  // Not all iterations need to run (the failing subtree unwinds), but the
  // region must have drained consistently.
  const Counters total = rt.profiler().total_counters();
  EXPECT_EQ(total.ntasks_created, total.ntasks_executed);
}

TEST(RuntimeExceptions, ThrowBeforeAndAfterDependentSpawn) {
  // The dep scope must tear down cleanly when the body throws around
  // dependent spawns: deferred successors still run (the parent recovers
  // at taskwait, so nothing is cancelled), address-map refs drop.
  const auto rt_h = RuntimeRegistry::make_xtask(small_config());
  Runtime& rt = *rt_h;
  std::atomic<int> ran{0};
  int x = 0;
  for (const bool throw_before : {true, false}) {
    ran.store(0);
    std::atomic<bool> caught{false};
    rt.run([&](TaskContext& ctx) {
      ctx.spawn([&](TaskContext& c) {
        if (throw_before) throw TestError("before deps");
        c.spawn([&](TaskContext&) { ran.fetch_add(1); }, {dout(&x)});
        c.spawn([&](TaskContext&) { ran.fetch_add(1); }, {din(&x)});
        throw TestError("after deps");
      });
      try {
        ctx.taskwait();
      } catch (const TestError&) {
        caught.store(true);
      }
    });
    EXPECT_TRUE(caught.load()) << "throw_before=" << throw_before;
    const Counters total = rt.profiler().total_counters();
    EXPECT_EQ(total.ntasks_created, total.ntasks_executed);
    // Recovery means no cancellation: the dependent chain completed by
    // region end (they are grandchildren, covered by the team barrier).
    EXPECT_EQ(ran.load(), throw_before ? 0 : 2);
  }
}

// ---------------------------------------------------------------------------
// Cancellation.

TEST(Cancellation, CancelGroupDropsRemainingMembers) {
  Config cfg = small_config();
  cfg.num_threads = 1;  // deterministic: spawns queue, nothing runs early
  const auto rt_h = RuntimeRegistry::make_xtask(cfg);
  Runtime& rt = *rt_h;
  std::atomic<int> ran{0};
  rt.run([&](TaskContext& ctx) {
    ctx.taskgroup([&](TaskContext& g) {
      for (int i = 0; i < 32; ++i)
        g.spawn([&](TaskContext&) { ran.fetch_add(1); });
      g.cancel_group();
      EXPECT_TRUE(g.cancelled());
      for (int i = 0; i < 32; ++i)  // spawns after cancel are dropped
        g.spawn([&](TaskContext&) { ran.fetch_add(1); });
    });
  });
  // Queued members drained without running; post-cancel spawns dropped.
  EXPECT_EQ(ran.load(), 0);
  const Counters total = rt.profiler().total_counters();
  EXPECT_EQ(total.ntasks_created, total.ntasks_executed);
  EXPECT_GE(total.ntasks_cancelled, 32u);
}

TEST(Cancellation, RegionCancelFromUngroupedTask) {
  const auto rt_h = RuntimeRegistry::make_xtask(small_config());
  Runtime& rt = *rt_h;
  std::atomic<int> ran{0};
  rt.run([&](TaskContext& ctx) {
    ctx.cancel_group();  // no enclosing group: cancels the region
    EXPECT_TRUE(ctx.cancelled());
    for (int i = 0; i < 64; ++i)
      ctx.spawn([&](TaskContext&) { ran.fetch_add(1); });
    ctx.taskwait();
  });
  EXPECT_EQ(ran.load(), 0);
  // Next region is clean again.
  rt.run([&](TaskContext& ctx) {
    ctx.spawn([&](TaskContext&) { ran.fetch_add(1); });
    ctx.taskwait();
  });
  EXPECT_EQ(ran.load(), 1);
}

TEST(Cancellation, CancellationRacesStealUnderWorkSteal) {
  // Members of a group being cancelled may be in any state — queued on the
  // victim, mid-migration to a thief, or already running. The drain path
  // must keep every counter exact regardless of where cancellation lands.
  Config cfg;
  cfg.num_threads = 4;
  cfg.numa_zones = 2;
  cfg.dlb = DlbKind::kWorkSteal;
  cfg.dlb_cfg.t_interval = 100;  // aggressive stealing
  cfg.queue_capacity = 64;
  const auto rt_h = RuntimeRegistry::make_xtask(cfg);
  Runtime& rt = *rt_h;
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> ran{0};
    rt.run([&](TaskContext& ctx) {
      ctx.taskgroup([&](TaskContext& g) {
        for (int i = 0; i < 256; ++i)
          g.spawn([&](TaskContext& c) {
            if (c.cancelled()) return;  // cooperative early-out
            ran.fetch_add(1, std::memory_order_relaxed);
          });
        g.cancel_group();
      });
    });
    // Every spawned-and-queued member completed (ran or drained).
    const Counters total = rt.profiler().total_counters();
    ASSERT_EQ(total.ntasks_created, total.ntasks_executed)
        << "round " << round;
  }
}

// ---------------------------------------------------------------------------
// Watchdog wired into the runtime.

TEST(RuntimeWatchdog, FiresOnWedgedWorkerAndSnapshotHasContent) {
  Config cfg;
  cfg.num_threads = 2;
  cfg.watchdog_timeout_ms = 100;
  std::atomic<int> fired{0};
  std::string snapshot;
  std::mutex snap_mu;
  std::atomic<bool> unwedge{false};
  cfg.watchdog_handler = [&](const std::string& snap) {
    {
      std::lock_guard<std::mutex> lock(snap_mu);
      if (snapshot.empty()) snapshot = snap;
    }
    fired.fetch_add(1);
    unwedge.store(true, std::memory_order_release);
  };
  const auto rt_h = RuntimeRegistry::make_xtask(cfg);
  Runtime& rt = *rt_h;
  rt.run([&](TaskContext& ctx) {
    ctx.spawn([&](TaskContext&) {
      // Wedge: no progress until the watchdog unblocks us.
      while (!unwedge.load(std::memory_order_acquire))
        std::this_thread::yield();
    });
    ctx.taskwait();
  });
  EXPECT_GE(fired.load(), 1);
  EXPECT_GE(rt.watchdog_stalls(), 1u);
  std::lock_guard<std::mutex> lock(snap_mu);
  EXPECT_NE(snapshot.find("xtask runtime snapshot"), std::string::npos);
  EXPECT_NE(snapshot.find("worker 0"), std::string::npos);
  EXPECT_NE(snapshot.find("worker 1"), std::string::npos);
  EXPECT_NE(snapshot.find("region_active=1"), std::string::npos);
}

TEST(RuntimeWatchdog, QuietOnHealthyRegion) {
  Config cfg;
  cfg.num_threads = 4;
  cfg.watchdog_timeout_ms = 2000;
  std::atomic<int> fired{0};
  cfg.watchdog_handler = [&](const std::string&) { fired.fetch_add(1); };
  const auto rt_h = RuntimeRegistry::make_xtask(cfg);
  Runtime& rt = *rt_h;
  std::atomic<long> sum{0};
  rt.run([&](TaskContext& ctx) {
    for (int i = 0; i < 2000; ++i)
      ctx.spawn([&](TaskContext&) { sum.fetch_add(1); });
    ctx.taskwait();
  });
  EXPECT_EQ(sum.load(), 2000);
  EXPECT_EQ(fired.load(), 0);
}

// ---------------------------------------------------------------------------
// Baseline runtimes: exception + cancellation parity.

TEST(BaselineFaults, GompRethrowsAndStaysUsable) {
  gomp::GompRuntime::Config cfg;
  cfg.num_threads = 4;
  const auto rt_h = RuntimeRegistry::make_gomp(cfg);
  gomp::GompRuntime& rt = *rt_h;
  EXPECT_THROW(rt.run([](gomp::GompContext& ctx) {
    ctx.spawn([](gomp::GompContext&) { throw TestError("gomp boom"); });
    ctx.taskwait();
  }),
               TestError);
  std::atomic<int> ran{0};
  rt.run([&](gomp::GompContext& ctx) {
    for (int i = 0; i < 50; ++i)
      ctx.spawn([&](gomp::GompContext&) { ran.fetch_add(1); });
    ctx.taskwait();
  });
  EXPECT_EQ(ran.load(), 50);
}

TEST(BaselineFaults, GompCancelDropsWork) {
  gomp::GompRuntime::Config cfg;
  cfg.num_threads = 1;
  const auto rt_h = RuntimeRegistry::make_gomp(cfg);
  gomp::GompRuntime& rt = *rt_h;
  std::atomic<int> ran{0};
  rt.run([&](gomp::GompContext& ctx) {
    for (int i = 0; i < 16; ++i)
      ctx.spawn([&](gomp::GompContext&) { ran.fetch_add(1); });
    ctx.cancel();
    EXPECT_TRUE(ctx.cancelled());
    for (int i = 0; i < 16; ++i)
      ctx.spawn([&](gomp::GompContext&) { ran.fetch_add(1); });
    ctx.taskwait();
  });
  EXPECT_EQ(ran.load(), 0);
}

TEST(BaselineFaults, LompRethrowsAndStaysUsable) {
  for (const bool use_xqueue : {false, true}) {
    lomp::LompRuntime::Config cfg;
    cfg.num_threads = 4;
    cfg.use_xqueue = use_xqueue;
    const auto rt_h = RuntimeRegistry::make_lomp(cfg);
    lomp::LompRuntime& rt = *rt_h;
    EXPECT_THROW(rt.run([](lomp::LompContext& ctx) {
      ctx.spawn([](lomp::LompContext&) { throw TestError("lomp boom"); });
      ctx.taskwait();
    }),
                 TestError);
    std::atomic<int> ran{0};
    rt.run([&](lomp::LompContext& ctx) {
      for (int i = 0; i < 50; ++i)
        ctx.spawn([&](lomp::LompContext&) { ran.fetch_add(1); });
      ctx.taskwait();
    });
    EXPECT_EQ(ran.load(), 50) << "use_xqueue=" << use_xqueue;
  }
}

TEST(BaselineFaults, LompCancelDropsWork) {
  lomp::LompRuntime::Config cfg;
  cfg.num_threads = 1;
  cfg.use_xqueue = true;
  const auto rt_h = RuntimeRegistry::make_lomp(cfg);
  lomp::LompRuntime& rt = *rt_h;
  std::atomic<int> ran{0};
  rt.run([&](lomp::LompContext& ctx) {
    for (int i = 0; i < 16; ++i)
      ctx.spawn([&](lomp::LompContext&) { ran.fetch_add(1); });
    ctx.cancel();
    for (int i = 0; i < 16; ++i)
      ctx.spawn([&](lomp::LompContext&) { ran.fetch_add(1); });
    ctx.taskwait();
  });
  EXPECT_EQ(ran.load(), 0);
}

// ---------------------------------------------------------------------------
// Backpressure counter.

TEST(Backpressure, OverflowInlineCountsForcedFullQueues) {
  Config cfg;
  cfg.num_threads = 2;
  cfg.queue_capacity = 4;  // tiny: static pushes overflow immediately
  const auto rt_h = RuntimeRegistry::make_xtask(cfg);
  Runtime& rt = *rt_h;
  std::atomic<int> ran{0};
  rt.run([&](TaskContext& ctx) {
    for (int i = 0; i < 4096; ++i)
      ctx.spawn([&](TaskContext&) { ran.fetch_add(1); });
    ctx.taskwait();
  });
  EXPECT_EQ(ran.load(), 4096);
  const Counters total = rt.profiler().total_counters();
  EXPECT_GT(total.overflow.total, 0u);
  EXPECT_EQ(total.overflow.total, total.ntasks_imm_exec);
  // Untagged workload: attribution records depth but no tenant.
  EXPECT_EQ(total.overflow.last_tenant, 0u);
  EXPECT_GE(total.overflow.max_depth, total.overflow.last_depth);
}

}  // namespace
}  // namespace xtask
