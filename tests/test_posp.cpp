// BLAKE3 and Proof-of-Space tests: official spec vectors plus streaming /
// XOF / tree-boundary properties, then plot generation + proof round trips
// on the real runtimes.
#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

#include "core/runtime.hpp"
#include "gomp/gomp_runtime.hpp"
#include "posp/posp.hpp"
#include "registry/registry.hpp"

namespace xtask::posp {
namespace {

// --------------------------------------------------------------- BLAKE3 ----

// Official test-vector inputs are the repeating byte sequence
// 0,1,...,250,0,1,... of a given length.
std::vector<std::uint8_t> tv_input(std::size_t len) {
  std::vector<std::uint8_t> v(len);
  for (std::size_t i = 0; i < len; ++i)
    v[i] = static_cast<std::uint8_t>(i % 251);
  return v;
}

TEST(Blake3, OfficialVectors) {
  // Cross-checked against the official BLAKE3 implementation (the
  // llvm_blake3_* C API shipped in libLLVM-15). Lengths cover every tree
  // shape: sub-block, exact block, multi-block, exact chunk, multi-chunk,
  // and deep merges.
  struct Vector {
    std::size_t len;
    const char* hex;
  };
  static const Vector kVectors[] = {
      {0, "af1349b9f5f9a1a6a0404dea36dcc9499bcb25c9adc112b7cc9a93cae41f3262"},
      {1, "2d3adedff11b61f14c886e35afa036736dcd87a74d27b5c1510225d0f592e213"},
      {2, "7b7015bb92cf0b318037702a6cdd81dee41224f734684c2c122cd6359cb1ee63"},
      {63, "e9bc37a594daad83be9470df7f7b3798297c3d834ce80ba85d6e207627b7db7b"},
      {64, "4eed7141ea4a5cd4b788606bd23f46e212af9cacebacdc7d1f4c6dc7f2511b98"},
      {65, "de1e5fa0be70df6d2be8fffd0e99ceaa8eb6e8c93a63f2d8d1c30ecb6b263dee"},
      {1023,
       "10108970eeda3eb932baac1428c7a2163b0e924c9a9e25b35bba72b28f70bd11"},
      {1024,
       "42214739f095a406f3fc83deb889744ac00df831c10daa55189b5d121c855af7"},
      {1025,
       "d00278ae47eb27b34faecf67b4fe263f82d5412916c1ffd97c8cb7fb814b8444"},
      {2048,
       "e776b6028c7cd22a4d0ba182a8bf62205d2ef576467e838ed6f2529b85fba24a"},
      {2049,
       "5f4d72f40d7a5f82b15ca2b2e44b1de3c2ef86c426c95c1af0b6879522563030"},
      {3072,
       "b98cb0ff3623be03326b373de6b9095218513e64f1ee2edd2525c7ad1e5cffd2"},
      {4096,
       "015094013f57a5277b59d8475c0501042c0b642e531b0a1c8f58d2163229e969"},
      {5001,
       "5404586088ac669a4333507f97a093197d16972d09ac2764a9a20542322104fa"},
      {8192,
       "aae792484c8efe4f19e2ca7d371d8c467ffb10748d8a5a1ae579948f718a2a63"},
      {16384,
       "f875d6646de28985646f34ee13be9a576fd515f76b5b0a26bb324735041ddde4"},
  };
  for (const Vector& v : kVectors) {
    const auto in = tv_input(v.len);
    EXPECT_EQ(Blake3::hex(in.data(), in.size()), v.hex) << "len=" << v.len;
  }
}

TEST(Blake3, StreamingEqualsOneShot) {
  // Split absorption arbitrarily; digest must be identical. Exercises the
  // block and chunk buffering logic across every boundary class.
  const auto in = tv_input(5000);
  std::uint8_t one_shot[32];
  Blake3::hash(in.data(), in.size(), one_shot);
  for (std::size_t split : {std::size_t{1}, std::size_t{63}, std::size_t{64},
                            std::size_t{65}, std::size_t{1023},
                            std::size_t{1024}, std::size_t{1025},
                            std::size_t{2048}, std::size_t{4999}}) {
    Blake3 h;
    h.update(in.data(), split);
    h.update(in.data() + split, in.size() - split);
    std::uint8_t streamed[32];
    h.finalize(streamed, sizeof(streamed));
    EXPECT_EQ(0, std::memcmp(one_shot, streamed, 32)) << "split=" << split;
  }
}

TEST(Blake3, XofPrefixProperty) {
  // Longer outputs must extend shorter ones (XOF property).
  const auto in = tv_input(100);
  std::uint8_t out32[32];
  std::uint8_t out131[131];
  Blake3::hash(in.data(), in.size(), out32, 32);
  Blake3::hash(in.data(), in.size(), out131, 131);
  EXPECT_EQ(0, std::memcmp(out32, out131, 32));
}

TEST(Blake3, ChunkBoundaryLengthsAllDiffer) {
  // Hashes at tree-structure boundaries (multi-chunk merges) must all be
  // distinct — catches broken parent-node merging.
  std::set<std::string> seen;
  for (std::size_t len : {std::size_t{0}, std::size_t{1}, std::size_t{64},
                          std::size_t{1023}, std::size_t{1024},
                          std::size_t{1025}, std::size_t{2048},
                          std::size_t{2049}, std::size_t{3072},
                          std::size_t{4096}, std::size_t{5001},
                          std::size_t{8192}, std::size_t{16384}}) {
    const auto in = tv_input(len);
    seen.insert(Blake3::hex(in.data(), in.size()));
  }
  EXPECT_EQ(seen.size(), 13u);
}

TEST(Blake3, KeyedModeDiffersFromPlain) {
  const auto in = tv_input(256);
  std::uint8_t key[32];
  for (int i = 0; i < 32; ++i) key[i] = static_cast<std::uint8_t>(i);
  Blake3 keyed(key);
  keyed.update(in.data(), in.size());
  std::uint8_t a[32];
  keyed.finalize(a, 32);
  std::uint8_t b[32];
  Blake3::hash(in.data(), in.size(), b, 32);
  EXPECT_NE(0, std::memcmp(a, b, 32));
}

TEST(Blake3, FinalizeIsIdempotent) {
  const auto in = tv_input(1500);
  Blake3 h;
  h.update(in.data(), in.size());
  std::uint8_t a[32];
  std::uint8_t b[32];
  h.finalize(a, 32);
  h.finalize(b, 32);
  EXPECT_EQ(0, std::memcmp(a, b, 32));
}

// ----------------------------------------------------------------- PoSp ----

TEST(Posp, PlotGenerationCoversAllNonces) {
  PospConfig cfg;
  cfg.k = 12;  // 4096 puzzles
  cfg.batch = 32;
  Plot plot(cfg);
  Config rc;
  rc.num_threads = 4;
  const auto rt_h = RuntimeRegistry::make_xtask(rc);
  Runtime& rt = *rt_h;
  plot.generate(rt);
  EXPECT_EQ(plot.total_puzzles(), 4096u);
  std::set<std::uint32_t> nonces;
  std::size_t count = 0;
  for (std::size_t b = 0; b < plot.num_buckets(); ++b) {
    for (const Puzzle& p : plot.bucket(b)) {
      nonces.insert(p.nonce);
      ++count;
      EXPECT_TRUE(plot.verify(p));
    }
  }
  EXPECT_EQ(count, 4096u);
  EXPECT_EQ(nonces.size(), 4096u);  // every nonce exactly once
}

TEST(Posp, BatchSizeDoesNotChangeContents) {
  auto checksum = [](const Plot& plot) {
    std::uint64_t sum = 0;
    for (std::size_t b = 0; b < plot.num_buckets(); ++b)
      for (const Puzzle& p : plot.bucket(b))
        sum += p.nonce * 2654435761u + p.hash[0];
    return sum;
  };
  std::uint64_t sums[2];
  int i = 0;
  for (std::uint32_t batch : {1u, 256u}) {
    PospConfig cfg;
    cfg.k = 10;
    cfg.batch = batch;
    Plot plot(cfg);
    Config rc;
    rc.num_threads = 4;
    const auto rt_h = RuntimeRegistry::make_xtask(rc);
    Runtime& rt = *rt_h;
    plot.generate(rt);
    sums[i++] = checksum(plot);
  }
  EXPECT_EQ(sums[0], sums[1]);
}

TEST(Posp, ProofRoundTrip) {
  PospConfig cfg;
  cfg.k = 12;
  Plot plot(cfg);
  Config rc;
  rc.num_threads = 2;
  const auto rt_h = RuntimeRegistry::make_xtask(rc);
  Runtime& rt = *rt_h;
  plot.generate(rt);
  // Challenge = hash of an arbitrary string; the best proof must verify.
  std::uint8_t challenge[28];
  Blake3::hash("challenge-1", 11, challenge, sizeof(challenge));
  Puzzle proof{};
  ASSERT_TRUE(plot.best_proof(challenge, &proof));
  EXPECT_TRUE(plot.verify(proof));
  // Tampered proofs must fail.
  proof.hash[0] ^= 1;
  EXPECT_FALSE(plot.verify(proof));
}

TEST(Posp, WorksOnGompBaselineToo) {
  PospConfig cfg;
  cfg.k = 10;
  Plot plot(cfg);
  gomp::GompRuntime::Config gc;
  gc.num_threads = 4;
  const auto rt_h = RuntimeRegistry::make_gomp(gc);
  gomp::GompRuntime& rt = *rt_h;
  plot.generate(rt);
  EXPECT_EQ(plot.total_puzzles(), 1024u);
}

}  // namespace
}  // namespace xtask::posp
