// Mutation smoke test: prove the checker actually finds bugs.
//
// This TU is compiled with -DXTASK_MODEL_CHECK_MUTATE_BQUEUE, which flips
// the producer's occupancy-count publication in core/bqueue.hpp from
// release to relaxed (see the hook next to XTASK_BQUEUE_COUNT_ORDER). The
// consumer's pop_batch acquires that counter precisely so its relaxed slot
// loads are safe; with the mutation, the counter can arrive while the slot
// values have not, and pop_batch hands out a stale nullptr.
//
// The test asserts the checker finds that violation deterministically —
// exhaustive search finds it always, PCT under a fixed seed finds it and
// reports a failing seed whose re-run reproduces the *identical*
// interleaving (same decision list, same trace hash). This file is its own
// binary on purpose: mixing the mutated and healthy BQueue<T> instantiation
// in one binary would let the linker fold their weak symbols.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/bqueue.hpp"
#include "model_harness.hpp"

namespace xc = xtask::xcheck;

namespace {

static_assert(XTASK_BQUEUE_COUNT_ORDER == ::std::memory_order_relaxed,
              "mutation hook not engaged; this binary must weaken BQueue");

int g_cells[4];

/// Producer pushes two values; consumer bulk-grabs. With the weakened
/// counter the consumer can observe count=2 yet read a stale (nullptr)
/// slot — that is the seeded bug.
void build(xc::Exec& ex) {
  auto q = std::make_shared<xtask::BQueue<int*>>(/*capacity=*/4,
                                                 /*batch=*/2);
  ex.thread("prod", [q] {
    q->push(&g_cells[0]);
    q->push(&g_cells[1]);
  });
  ex.thread("cons", [q] {
    int* out[4];
    for (int t = 0; t < 2; ++t) {
      const std::size_t got = q->pop_batch(out, 4);
      for (std::size_t i = 0; i < got; ++i)
        if (out[i] == nullptr)
          xc::Exec::fail("stale slot: pop_batch returned nullptr for a "
                         "counted element");
    }
  });
}

TEST(ModelMutation, ExhaustiveFindsTheSeededBugAndReplays) {
  auto r = xc::explore(model::exhaustive(2), build);
  ASSERT_TRUE(r.violation)
      << "exhaustive search missed the seeded relaxed-count bug";
  EXPECT_NE(r.message.find("stale slot"), std::string::npos) << r.message;
  ASSERT_FALSE(r.decisions.empty());

  // The printed decision list is a complete replay recipe: following it
  // reproduces the identical interleaving, bit for bit.
  auto again = xc::replay(model::exhaustive(2), build, r.decisions);
  EXPECT_TRUE(again.violation);
  EXPECT_EQ(again.trace_hash, r.trace_hash);
  EXPECT_EQ(again.message, r.message);
  EXPECT_EQ(again.decisions, r.decisions);
}

TEST(ModelMutation, PctFixedSeedFindsBugAndSeedReproducesInterleaving) {
  auto opts = model::pct(/*seed=*/42, /*iterations=*/2000);
  auto r = xc::explore(opts, build);
  ASSERT_TRUE(r.violation)
      << "PCT (seed 42, 2000 iterations) missed the seeded bug";
  ASSERT_NE(r.failing_seed, 0u);

  // Re-running with exactly the printed seed must reproduce the identical
  // interleaving on its first execution: same decisions, same trace hash.
  auto repro = xc::explore(model::pct(r.failing_seed, /*iterations=*/1),
                           build);
  ASSERT_TRUE(repro.violation) << "failing seed did not reproduce";
  EXPECT_EQ(repro.failing_seed, r.failing_seed);
  EXPECT_EQ(repro.decisions, r.decisions);
  EXPECT_EQ(repro.trace_hash, r.trace_hash);

  // And twice more for determinism paranoia: the whole exploration is a
  // pure function of (seed, program).
  auto repro2 = xc::explore(model::pct(r.failing_seed, /*iterations=*/1),
                            build);
  EXPECT_EQ(repro2.trace_hash, r.trace_hash);
}

// The healthy-order sibling suite (model_bqueue) proves the same scenario
// is clean without the mutation; together they are the mutation-kill
// evidence: same harness, one memory order apart, opposite verdicts.

}  // namespace
