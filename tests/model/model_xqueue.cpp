// Model checking the real XQueue (core/xqueue.hpp): the N×N SPSC matrix
// plus the occupancy bitmap's publish/retire protocol (unconditional
// fetch_or on push; fetch_and + counter-verified re-arm on retire). Beyond
// "no task lost or duplicated", the bitmap adds a strict invariant the
// zero-word full-scan skip depends on: once no publish is in flight, a
// zero bitmap word means every covered queue is empty.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/xqueue.hpp"
#include "model_harness.hpp"

namespace xc = xtask::xcheck;

namespace {

int g_cells[8];
int* val(std::size_t i) { return &g_cells[i]; }

using Q = xtask::XQueueT<int*>;

/// Drain everything consumer `self` can see, tolerating the transient
/// misses the hint protocol allows: keep polling until a full-scan round
/// (kFullScanPeriod consecutive misses forces a hint-ignoring sweep) comes
/// back empty. Runs in direct mode, where this terminates by construction.
void drain(Q& q, int self, std::vector<int*>& out) {
  int misses = 0;
  while (misses <= static_cast<int>(Q::kFullScanPeriod) + 1) {
    if (int* v = q.pop(self)) {
      out.push_back(v);
      misses = 0;
    } else {
      ++misses;
    }
  }
}

void expect_exact(Q& q, int self, std::vector<int*> got,
                  std::size_t expected) {
  drain(q, self, got);
  if (got.size() != expected)
    xc::Exec::fail("task lost or duplicated: expected " +
                   std::to_string(expected) + ", recovered " +
                   std::to_string(got.size()));
  std::vector<bool> seen(expected, false);
  for (int* v : got) {
    const std::size_t i = static_cast<std::size_t>(v - &g_cells[0]);
    if (i >= expected || seen[i]) xc::Exec::fail("duplicate/foreign task");
    seen[i] = true;
  }
  if (!q.all_empty(self)) xc::Exec::fail("row non-empty after full drain");
}

// Cross-worker handoff through an auxiliary queue: producer w1 pushes into
// w0's row (arming the bitmap bit), consumer w0 pops. Exhaustively
// enumerated; the publish/retire contention is reachable at this size, so
// a clean result shows no interleaving loses or duplicates a task.
TEST(ModelXQueue, ExhaustiveCrossWorkerHandoff) {
  auto r = xc::explore(model::exhaustive(2), [](xc::Exec& ex) {
    auto q = std::make_shared<Q>(/*num_workers=*/2, /*queue_capacity=*/4);
    auto got = std::make_shared<std::vector<int*>>();
    ex.thread("w1-prod", [q] {
      q->push(/*producer=*/1, /*target=*/0, val(0));
      q->push(1, 0, val(1));
    });
    ex.thread("w0-cons", [q, got] {
      for (int t = 0; t < 3; ++t)
        if (int* v = q->pop(0)) got->push_back(v);
    });
    ex.check([q, got] { expect_exact(*q, 0, *got, 2); });
  });
  model::expect_clean(r, "xqueue_handoff", /*require_complete=*/true);
  EXPECT_GT(r.executions, 10u);
}

// NA-RP-shaped traffic: w0 feeds its own master queue while w1 redirects
// into w0's auxiliary queue, and w0 interleaves pops with its own pushes.
// Both queues in w0's row are live at once; the master-first pop order and
// the rotation cursor both get exercised.
TEST(ModelXQueue, ExhaustiveSelfPushPlusRedirect) {
  auto r = xc::explore(model::exhaustive(2), [](xc::Exec& ex) {
    auto q = std::make_shared<Q>(2, 4);
    auto got = std::make_shared<std::vector<int*>>();
    ex.thread("w0", [q, got] {
      q->push(/*producer=*/0, /*target=*/0, val(0));
      if (int* v = q->pop(0)) got->push_back(v);
      q->push(0, 0, val(1));
      if (int* v = q->pop(0)) got->push_back(v);
    });
    ex.thread("w1-redirect", [q] { q->push(/*producer=*/1, /*target=*/0,
                                           val(2)); });
    ex.check([q, got] { expect_exact(*q, 0, *got, 3); });
  });
  model::expect_clean(r, "xqueue_redirect", /*require_complete=*/true);
}

// The bitmap publish/retire race, exhaustively: the producer's
// unconditional fetch_or contends with the consumer's fetch_and retire on
// the same word while pops miss and recover. At the check point every
// thread has finished, so no publish is in flight and the invariant is
// strict: occupancy word zero => the row's aux queues are all empty (the
// zero-word skip in the full scan is sound), word non-zero bits only ever
// cover genuinely announced queues (retire always catches up).
TEST(ModelXQueue, ExhaustiveBitmapPublishRetire) {
  auto r = xc::explore(model::exhaustive(2), [](xc::Exec& ex) {
    auto q = std::make_shared<Q>(2, 4);
    auto got = std::make_shared<std::vector<int*>>();
    ex.thread("w1-prod", [q] {
      q->push(/*producer=*/1, /*target=*/0, val(0));
      q->push(1, 0, val(1));
    });
    ex.thread("w0-cons", [q, got] {
      // Interleave pops with the producer's pushes: misses walk the
      // retire path (fetch_and + counter verify + re-arm) mid-publish.
      for (int t = 0; t < 4; ++t)
        if (int* v = q->pop(0)) got->push_back(v);
    });
    ex.check([q, got] {
      if (q->occupancy_word(0) == 0 && !q->all_empty(0))
        xc::Exec::fail("zero bitmap word over a non-empty row: the "
                       "full-scan zero-skip would strand these tasks");
      expect_exact(*q, 0, *got, 2);
    });
  });
  model::expect_clean(r, "xqueue_bitmap", /*require_complete=*/true);
  EXPECT_GT(r.executions, 10u);
}

// Bulk migration (NA-WS): producer batch-pushes into the victim's row;
// the victim bulk-grabs with pop_batch. PCT sweep — the batch paths have
// more atomic ops per step, so exhaustive blows up faster here.
TEST(ModelXQueue, PctBatchMigration) {
  auto r = xc::explore(model::pct(/*seed=*/11, /*iterations=*/400),
                       [](xc::Exec& ex) {
    auto q = std::make_shared<Q>(2, 4);
    auto got = std::make_shared<std::vector<int*>>();
    ex.thread("w1-migrate", [q] {
      int* items[3] = {val(0), val(1), val(2)};
      const std::size_t k = q->push_batch(/*producer=*/1, /*target=*/0,
                                          items, 3);
      // Capacity 4 and nothing else in that queue: the whole batch fits.
      if (k != 3) xc::Exec::fail("push_batch refused a fitting batch");
    });
    ex.thread("w0-grab", [q, got] {
      int* out[4];
      for (int t = 0; t < 2; ++t) {
        const std::size_t k = q->pop_batch(0, out, 4);
        for (std::size_t i = 0; i < k; ++i) {
          if (out[i] == nullptr) xc::Exec::fail("pop_batch returned null");
          got->push_back(out[i]);
        }
      }
    });
    ex.check([q, got] { expect_exact(*q, 0, *got, 3); });
  });
  model::expect_clean(r, "xqueue_migration");
}

}  // namespace
