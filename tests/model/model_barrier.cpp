// Model checking the two termination barriers:
//   * CentralBarrier (core/central_barrier.hpp): shared arrival counter +
//     global task count, release published by the last poller.
//   * TreeBarrier (core/tree_barrier.hpp): the census protocol over
//     single-writer cells, whose double-pass rule must NOT release while a
//     migrated task is still in flight — the §III-B failure mode that sank
//     the single-sweep design.
// The invariant in both cases is shadowed with plain state: a release
// observed before every task's side effects are done is a violation.
#include <gtest/gtest.h>

#include <array>
#include <functional>
#include <memory>

#include "core/central_barrier.hpp"
#include "core/tree_barrier.hpp"
#include "model_harness.hpp"

namespace xc = xtask::xcheck;

namespace {

// -------------------------------------------------------------------------
// CentralBarrier: 2 workers, one task each. A worker may observe release
// only after both tasks' done-flags are set; someone must eventually
// publish the release.
TEST(ModelCentralBarrier, ExhaustiveReleaseNeverEarlyNeverLost) {
  auto r = xc::explore(model::exhaustive(2), [](xc::Exec& ex) {
    auto b = std::make_shared<xtask::CentralBarrier>(2);
    auto done = std::make_shared<std::array<int, 2>>();
    done->fill(0);
    auto worker = [b, done](int tid) {
      return [b, done, tid] {
        b->task_created();
        (*done)[static_cast<std::size_t>(tid)] = 1;  // the task's effect
        b->task_finished();
        b->arrive(/*gen=*/1);
        for (int i = 0; i < 3; ++i) {
          if (b->poll(1)) {
            if ((*done)[0] + (*done)[1] != 2)
              xc::Exec::fail("central barrier released before all tasks "
                             "finished");
            return;
          }
        }
      };
    };
    ex.thread("w0", worker(0));
    ex.thread("w1", worker(1));
    ex.check([b] {
      // Release must be reachable: by now both arrived with a drained task
      // count, so a direct-mode poll (or a previous one) publishes it.
      bool released = false;
      for (int i = 0; i < 3 && !released; ++i) released = b->poll(1);
      if (!released) xc::Exec::fail("central barrier never released");
    });
  });
  model::expect_clean(r, "central_barrier", /*require_complete=*/true);
  EXPECT_GT(r.executions, 10u);
}

// -------------------------------------------------------------------------
// TreeBarrier: 2 workers. Worker 0 creates one task that migrates to
// worker 1; worker 1 first reports an idle census (created=0, executed=0)
// — the exact report that fooled the single-sweep design — then executes
// the task and reports (0, 1). Totals disagree until the task lands, so
// the double-pass census must hold the release until then.
struct TreeWorld {
  xtask::TreeBarrier tb{2};
  int done = 0;  // plain shadow of the migrated task's side effect
};

void tree_poll_guarded(TreeWorld& w, int tid, std::uint64_t created,
                       std::uint64_t executed) {
  if (w.tb.poll(tid, created, executed, /*gen=*/1) && w.done == 0)
    xc::Exec::fail("tree barrier released with a migrated task in flight");
}

std::function<void(xc::Exec&)> tree_build() {
  return [](xc::Exec& ex) {
    auto w = std::make_shared<TreeWorld>();
    ex.thread("w0-root", [w] {
      // Created one task; it migrated away, so executed stays 0 here.
      for (int i = 0; i < 5; ++i) tree_poll_guarded(*w, 0, 1, 0);
    });
    ex.thread("w1", [w] {
      // Reports idle first — the census must survive this early report.
      tree_poll_guarded(*w, 1, 0, 0);
      w->done = 1;  // execute the migrated task
      for (int i = 0; i < 5; ++i) tree_poll_guarded(*w, 1, 0, 1);
    });
    ex.check([w] {
      // Drive the census to completion in direct mode: with the final
      // counters (totals 1 created / 1 executed) the double-pass rule must
      // release both workers in bounded passes.
      if (w->done != 1) xc::Exec::fail("task never executed");
      bool r0 = false;
      bool r1 = false;
      for (int i = 0; i < 200 && !(r0 && r1); ++i) {
        r0 = r0 || w->tb.poll(0, 1, 0, 1);
        r1 = r1 || w->tb.poll(1, 0, 1, 1);
      }
      if (!(r0 && r1))
        xc::Exec::fail("tree barrier failed to release a quiescent team");
    });
  };
}

TEST(ModelTreeBarrier, ExhaustiveCensusHoldsUntilMigratedTaskLands) {
  auto r = xc::explore(model::exhaustive(2), tree_build());
  model::expect_clean(r, "tree_barrier", /*require_complete=*/true);
  EXPECT_GT(r.executions, 10u);
}

TEST(ModelTreeBarrier, PctSweepCensus) {
  auto r = xc::explore(model::pct(/*seed=*/5, /*iterations=*/400),
                       tree_build());
  model::expect_clean(r, "tree_barrier_pct");
}

}  // namespace
