// Model checking the SharedPool batch cells (core/task_allocator.hpp):
// tagged Treiber stacks of batch cells, where one CAS is the whole commit.
// Two angles:
//   * conservation under exhaustive interleaving — every descriptor that
//     enters the pool leaves it exactly once (no loss, no duplication,
//     no conjuring);
//   * a linearizability oracle over the acquire/release history against a
//     multiset sequential spec, with the stack CASes as the claimed
//     linearization points.
#include <gtest/gtest.h>

#include <memory>
#include <new>
#include <set>
#include <vector>

#include "check/lin_oracle.hpp"
#include "core/task_allocator.hpp"
#include "model_harness.hpp"

namespace xc = xtask::xcheck;

namespace {

/// Minimal descriptor compatible with SharedPool's destroy() path
/// (placement-constructed over cache-line-aligned storage).
struct Desc {
  std::uint64_t id = 0;
};

using Pool = xtask::PoolAllocator<Desc>::SharedPool;
constexpr std::size_t kBatch = xtask::PoolAllocator<Desc>::kBatch;

Desc* make_desc(std::uint64_t id) {
  void* mem = ::operator new(sizeof(Desc), std::align_val_t{xtask::kCacheLine});
  Desc* d = ::new (mem) Desc;
  d->id = id;
  return d;
}

void free_desc(Desc* d) {
  d->~Desc();
  ::operator delete(d, std::align_val_t{xtask::kCacheLine});
}

/// Collect every descriptor still pooled (all zones), append to `all`.
void drain_pool(Pool& pool, std::vector<Desc*>& all) {
  Desc* out[kBatch];
  for (int z = 0; z < pool.num_zones(); ++z)
    for (std::size_t n = pool.acquire_batch(out, kBatch, z); n > 0;
         n = pool.acquire_batch(out, kBatch, z))
      for (std::size_t i = 0; i < n; ++i) all.push_back(out[i]);
}

/// Conservation check + per-execution cleanup: `held` (what threads took)
/// plus the pool's residue must be exactly `expected` ids; everything is
/// freed afterwards so a hundred thousand executions don't leak.
void expect_conserved(Pool& pool, const std::vector<Desc*>& held,
                      std::multiset<std::uint64_t> expected) {
  std::vector<Desc*> all;
  for (Desc* d : held)
    if (d != nullptr) all.push_back(d);
  drain_pool(pool, all);
  std::multiset<std::uint64_t> ids;
  for (Desc* d : all) ids.insert(d->id);
  const bool ok = ids == expected;
  for (Desc* d : all) free_desc(d);
  if (!ok) xc::Exec::fail("descriptor lost/duplicated across the pool");
}

/// Sequential spec for the pool: an unordered multiset of descriptor ids.
/// kind 0 = release(arg=id); kind 1 = acquire with ret=id (must be pooled)
/// or ret=0 (legal only when the pool is empty at the linearization point).
struct PoolSpec {
  using State = std::multiset<std::uint64_t>;
  State initial() const { return {}; }
  bool apply(State& s, const xc::OpRecord& op) const {
    if (op.kind == 0) {
      s.insert(op.arg);
      return true;
    }
    if (op.ret == 0) return s.empty();
    auto it = s.find(op.ret);
    if (it == s.end()) return false;
    s.erase(it);
    return true;
  }
};

/// Release one single-descriptor batch then try to take one back, logging
/// both ops. Returns the acquired descriptor (or nullptr).
Desc* churn(Pool& pool, xc::HistoryLog& log, int tid, Desc* mine, int zone) {
  std::size_t op = log.invoke(tid, 0, mine->id,
                              "release(" + std::to_string(mine->id) + ")");
  pool.release_batch(&mine, 1, zone);
  log.respond(op, 0);

  Desc* out[kBatch];
  op = log.invoke(tid, 1, 0, "acquire");
  const std::size_t n = pool.acquire_batch(out, kBatch, zone);
  if (n > 1) xc::Exec::fail("acquire_batch returned more than one batch");
  log.respond(op, n == 1 ? out[0]->id : 0);
  return n == 1 ? out[0] : nullptr;
}

// Two threads churn single-descriptor batches through one zone under
// bounded-exhaustive DFS. Conservation + linearizability per execution.
TEST(ModelPool, ExhaustiveChurnConservesAndLinearizes) {
  auto r = xc::explore(model::exhaustive(2), [](xc::Exec& ex) {
    auto pool = std::make_shared<Pool>(xtask::AllocatorMode::kMultiLevel, 1);
    auto log = std::make_shared<xc::HistoryLog>();
    auto got = std::make_shared<std::vector<Desc*>>(2, nullptr);
    ex.thread("a", [pool, log, got] {
      (*got)[0] = churn(*pool, *log, 0, make_desc(1), 0);
    });
    ex.thread("b", [pool, log, got] {
      (*got)[1] = churn(*pool, *log, 1, make_desc(2), 0);
    });
    ex.check([pool, log, got] {
      const xc::LinResult lin = xc::check_linearizable(PoolSpec{}, *log);
      if (!lin.ok) xc::Exec::fail(lin.message);
      expect_conserved(*pool, *got, {1, 2});
    });
  });
  model::expect_clean(r, "pool_churn", /*require_complete=*/true);
  EXPECT_GT(r.executions, 10u);
}

// Cross-zone fallover: zone 1's releaser and a zone-0 acquirer that must
// fall over to zone 1 when its own sub-pool is empty. PCT sweep (the
// two-zone state space is too big for exhaustive at this bound).
TEST(ModelPool, PctCrossZoneFallover) {
  auto r = xc::explore(model::pct(/*seed=*/23, /*iterations=*/400),
                       [](xc::Exec& ex) {
    auto pool = std::make_shared<Pool>(xtask::AllocatorMode::kMultiLevel, 2);
    auto log = std::make_shared<xc::HistoryLog>();
    auto got = std::make_shared<std::vector<Desc*>>(2, nullptr);
    ex.thread("z1-rel", [pool, log, got] {
      (*got)[0] = churn(*pool, *log, 0, make_desc(7), /*zone=*/1);
    });
    ex.thread("z0-acq", [pool, log, got] {
      Desc* out[kBatch];
      const std::size_t op = log->invoke(1, 1, 0, "acquire");
      const std::size_t n = pool->acquire_batch(out, kBatch, /*zone=*/0);
      log->respond(op, n == 1 ? out[0]->id : 0);
      if (n == 1) (*got)[1] = out[0];
    });
    ex.check([pool, log, got] {
      const xc::LinResult lin = xc::check_linearizable(PoolSpec{}, *log);
      if (!lin.ok) xc::Exec::fail(lin.message);
      expect_conserved(*pool, *got, {7});
    });
  });
  model::expect_clean(r, "pool_fallover");
}

// ABA-tag regression: thread A pops the only full cell while thread B
// releases and re-acquires through the same cell index. The packed
// {tag, index} head must keep A's stale CAS from succeeding on a recycled
// head value. Conservation catches the classic ABA corruption (two owners
// of one cell).
TEST(ModelPool, ExhaustiveAbaRecycling) {
  auto r = xc::explore(model::exhaustive(3), [](xc::Exec& ex) {
    auto pool = std::make_shared<Pool>(xtask::AllocatorMode::kMultiLevel, 1);
    auto taken = std::make_shared<std::vector<Desc*>>();
    // Seed the pool with one batch in direct mode so both threads race on
    // a non-empty full stack from the first step.
    Desc* seed = make_desc(1);
    pool->release_batch(&seed, 1, 0);
    ex.thread("popper", [pool, taken] {
      Desc* out[kBatch];
      if (pool->acquire_batch(out, kBatch, 0) == 1)
        taken->push_back(out[0]);
    });
    ex.thread("recycler", [pool, taken] {
      Desc* out[kBatch];
      if (pool->acquire_batch(out, kBatch, 0) == 1) {
        pool->release_batch(&out[0], 1, 0);
        if (pool->acquire_batch(out, kBatch, 0) == 1)
          taken->push_back(out[0]);
      }
    });
    ex.check([pool, taken] { expect_conserved(*pool, *taken, {1}); });
  });
  model::expect_clean(r, "pool_aba", /*require_complete=*/true);
}

}  // namespace
