// Model checking the lock-free successor list (core/release_list.hpp) —
// the register-vs-complete race at the heart of the dependence layer,
// under bounded-exhaustive interleavings plus a PCT sweep.
//
// Two properties:
//
//  1. Sealed-chain completeness (the linearization oracle): the exchange
//     inside seal() is completion's linearization point. Every push that
//     returned true appears in the sealed chain exactly once; every push
//     that returned false observed the sealed tag — at that moment the
//     list reports sealed() and stays sealed forever.
//
//  2. Exactly-one dispatcher: composing the list with the deps_pending
//     protocol from dependency.cpp (registration guard of 1, count-then-
//     push, undo on sealed failure, completer decrements per chain node),
//     the successor's count reaches zero exactly once across every
//     interleaving — it is dispatched by the registrant xor a completer,
//     never both, never neither.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>

#include "core/release_list.hpp"
#include "model_harness.hpp"

namespace xc = xtask::xcheck;
using xtask::detail::ReleaseList;
using xtask::detail::ReleaseNode;

namespace {

int g_items[4];

// --- property 1: sealed-chain completeness ---------------------------------

struct ChainState {
  ReleaseList list;
  ReleaseNode nodes[3];
  bool pushed[3] = {false, false, false};
  int post_seal_push_results = 0;  // pushes attempted after walk started
};

std::function<void(xc::Exec&)> chain_build(int n_pushers) {
  return [n_pushers](xc::Exec& ex) {
    auto st = std::make_shared<ChainState>();
    for (int p = 0; p < n_pushers; ++p) {
      ex.thread("push" + std::to_string(p), [st, p] {
        st->nodes[p].item = &g_items[p];
        st->pushed[p] = st->list.push(&st->nodes[p]);
        if (!st->pushed[p] && !st->list.sealed())
          xc::Exec::fail("push refused while the list was not sealed");
      });
    }
    ex.thread("completer", [st, n_pushers] {
      ReleaseNode* n = st->list.seal();
      if (n == ReleaseList::sealed_tag())
        xc::Exec::fail("double seal observed by the single completer");
      int seen[3] = {0, 0, 0};
      int len = 0;
      for (; n != nullptr; n = n->next) {
        if (++len > n_pushers) xc::Exec::fail("sealed chain has a cycle");
        bool matched = false;
        for (int p = 0; p < n_pushers; ++p)
          if (n == &st->nodes[p]) {
            ++seen[p];
            matched = true;
          }
        if (!matched) xc::Exec::fail("foreign node in sealed chain");
      }
      for (int p = 0; p < n_pushers; ++p) st->nodes[p].next = nullptr;
      // Record what the walk saw for the post-run oracle (plain fields;
      // the checker is single-OS-threaded).
      for (int p = 0; p < n_pushers; ++p)
        st->post_seal_push_results += seen[p] << (2 * p);
      if (!st->list.sealed())
        xc::Exec::fail("list not sealed after seal()");
      // A late edge attempt must fail — completion already happened.
      ReleaseNode extra;
      extra.item = &g_items[3];
      if (st->list.push(&extra))
        xc::Exec::fail("push succeeded after seal");
    });
    ex.check([st, n_pushers] {
      for (int p = 0; p < n_pushers; ++p) {
        const int times = (st->post_seal_push_results >> (2 * p)) & 3;
        if (st->pushed[p] && times != 1)
          xc::Exec::fail("successful push " + std::to_string(p) +
                         " appears " + std::to_string(times) +
                         " times in the sealed chain");
        if (!st->pushed[p] && times != 0)
          xc::Exec::fail("failed push " + std::to_string(p) +
                         " leaked into the sealed chain");
      }
    });
  };
}

TEST(ModelDepList, ExhaustiveTwoPushersVsCompleter) {
  auto r = xc::explore(model::exhaustive(3), chain_build(2));
  model::expect_clean(r, "deplist_chain_2p", /*require_complete=*/true);
}

TEST(ModelDepList, ExhaustiveThreePushersVsCompleter) {
  auto r = xc::explore(model::exhaustive(2), chain_build(3));
  model::expect_clean(r, "deplist_chain_3p");
}

TEST(ModelDepList, PctSweepChain) {
  auto r = xc::explore(model::pct(/*seed=*/11, /*iterations=*/400),
                       chain_build(3));
  model::expect_clean(r, "deplist_chain_pct");
}

// --- property 2: exactly-one dispatcher ------------------------------------
// The composed protocol from dependency.cpp, two predecessors completing
// concurrently with registration:
//   registrant: count = 1 (guard); per pred: count++, push; on sealed
//               failure count-- (undo); finally count-- and dispatch on 0.
//   completer i: seal pred i's list; for each chained node count-- and
//               dispatch on 0.

struct ReleaseState {
  ReleaseList pred[2];
  ReleaseNode edge[2];
  xtask::atomic<std::uint32_t> deps_pending{1};  // the registration guard
  int dispatched = 0;  // plain: single-OS-threaded checker, yields expose
                       // double dispatch deterministically
};

void dispatch(const std::shared_ptr<ReleaseState>& st) {
  xc::Exec::yield();  // widen the window between decide and act
  st->dispatched++;
}

TEST(ModelDepList, ExhaustiveExactlyOneDispatcher) {
  auto r = xc::explore(model::exhaustive(3), [](xc::Exec& ex) {
    auto st = std::make_shared<ReleaseState>();
    ex.thread("registrant", [st] {
      for (int p = 0; p < 2; ++p) {
        st->deps_pending.fetch_add(1, std::memory_order_relaxed);
        st->edge[p].item = st.get();
        if (!st->pred[p].push(&st->edge[p]))
          st->deps_pending.fetch_sub(1, std::memory_order_relaxed);
      }
      if (st->deps_pending.fetch_sub(1, std::memory_order_acq_rel) == 1)
        dispatch(st);
    });
    for (int p = 0; p < 2; ++p) {
      ex.thread("completer" + std::to_string(p), [st, p] {
        ReleaseNode* n = st->pred[p].seal();
        for (; n != nullptr; n = n->next)
          if (st->deps_pending.fetch_sub(1, std::memory_order_acq_rel) == 1)
            dispatch(st);
      });
    }
    ex.check([st] {
      if (st->dispatched != 1)
        xc::Exec::fail("successor dispatched " +
                       std::to_string(st->dispatched) +
                       " times (must be exactly once)");
      if (st->deps_pending.load(std::memory_order_relaxed) != 0)
        xc::Exec::fail("deps_pending nonzero after all parties finished");
    });
  });
  model::expect_clean(r, "deplist_one_dispatcher");
}

TEST(ModelDepList, PctSweepExactlyOneDispatcher) {
  auto r = xc::explore(model::pct(/*seed=*/13, /*iterations=*/400),
                       [](xc::Exec& ex) {
    auto st = std::make_shared<ReleaseState>();
    ex.thread("registrant", [st] {
      for (int p = 0; p < 2; ++p) {
        st->deps_pending.fetch_add(1, std::memory_order_relaxed);
        st->edge[p].item = st.get();
        if (!st->pred[p].push(&st->edge[p]))
          st->deps_pending.fetch_sub(1, std::memory_order_relaxed);
      }
      if (st->deps_pending.fetch_sub(1, std::memory_order_acq_rel) == 1)
        dispatch(st);
    });
    for (int p = 0; p < 2; ++p) {
      ex.thread("completer" + std::to_string(p), [st, p] {
        ReleaseNode* n = st->pred[p].seal();
        for (; n != nullptr; n = n->next)
          if (st->deps_pending.fetch_sub(1, std::memory_order_acq_rel) == 1)
            dispatch(st);
      });
    }
    ex.check([st] {
      if (st->dispatched != 1)
        xc::Exec::fail("successor dispatched " +
                       std::to_string(st->dispatched) + " times");
    });
  });
  model::expect_clean(r, "deplist_one_dispatcher_pct");
}

}  // namespace
