// Model checking the real BQueue (core/bqueue.hpp) — the SPSC slot-NULL
// protocol under every bounded-exhaustive interleaving, plus a PCT sweep.
// The acceptance bar: at least one small config fully enumerated with zero
// violations. The companion mutation test (model_mutation.cpp) proves the
// same harness *does* flag a weakened variant, so "clean" is evidence, not
// vacuity.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/bqueue.hpp"
#include "model_harness.hpp"

namespace xc = xtask::xcheck;

namespace {

// Stable non-null pointer values to push (the queue stores pointers and
// reserves nullptr as "empty").
int g_cells[8];
int* val(std::size_t i) { return &g_cells[i]; }

/// Builder for a 1-producer/1-consumer run: producer pushes `n_push`
/// values with bounded retries, consumer makes `n_pop_tries` pop attempts,
/// and the post-run check drains the queue and verifies the FIFO contract:
/// the values that came out are exactly the pushed prefix, in order, no
/// loss, no duplication, no nullptr.
std::function<void(xc::Exec&)> spsc_build(std::size_t n_push,
                                          int n_pop_tries, bool batch) {
  return [n_push, n_pop_tries, batch](xc::Exec& ex) {
    auto q = std::make_shared<xtask::BQueue<int*>>(/*capacity=*/4,
                                                   /*batch=*/2);
    auto pushed = std::make_shared<std::size_t>(0);
    auto popped = std::make_shared<std::vector<int*>>();
    ex.thread("prod", [q, pushed, n_push, batch] {
      if (batch) {
        std::vector<int*> vals;
        for (std::size_t i = 0; i < n_push; ++i) vals.push_back(val(i));
        *pushed = q->push_batch(vals.data(), vals.size());
        return;
      }
      for (std::size_t i = 0; i < n_push; ++i) {
        // Bounded retries: a full queue is legal (consumer lagging); the
        // real runtime executes the task inline instead of spinning.
        bool ok = false;
        for (int attempt = 0; attempt < 3 && !ok; ++attempt) {
          ok = q->push(val(i));
          if (!ok) xc::Exec::yield();
        }
        if (!ok) return;  // give up; check() knows via *pushed
        *pushed = i + 1;
      }
    });
    ex.thread("cons", [q, popped, n_pop_tries, batch] {
      if (batch) {
        int* out[8];
        for (int t = 0; t < n_pop_tries; ++t) {
          const std::size_t got = q->pop_batch(out, 8);
          for (std::size_t i = 0; i < got; ++i) {
            if (out[i] == nullptr)
              xc::Exec::fail("pop_batch handed out a nullptr slot");
            popped->push_back(out[i]);
          }
        }
        return;
      }
      for (int t = 0; t < n_pop_tries; ++t) {
        if (int* v = q->pop()) popped->push_back(v);
      }
    });
    ex.check([q, pushed, popped] {
      // Drain the remainder in direct mode: the queue must hold exactly
      // the not-yet-popped suffix of what the producer got in.
      std::vector<int*> all = *popped;
      while (int* v = q->pop()) all.push_back(v);
      if (all.size() != *pushed)
        xc::Exec::fail("lost or duplicated elements: pushed " +
                       std::to_string(*pushed) + ", recovered " +
                       std::to_string(all.size()));
      for (std::size_t i = 0; i < all.size(); ++i)
        if (all[i] != val(i))
          xc::Exec::fail("FIFO order broken at position " +
                         std::to_string(i));
      if (!q->empty()) xc::Exec::fail("queue non-empty after full drain");
    });
  };
}

TEST(ModelBQueue, ExhaustiveScalarSpsc) {
  auto r = xc::explore(model::exhaustive(2),
                       spsc_build(/*n_push=*/2, /*n_pop_tries=*/3,
                                  /*batch=*/false));
  model::expect_clean(r, "bqueue_scalar", /*require_complete=*/true);
  EXPECT_GT(r.executions, 10u);
}

TEST(ModelBQueue, ExhaustiveBatchSpsc) {
  // push_batch/pop_batch: the counter-acquire + relaxed-slot-load path the
  // mutation test weakens. Must be clean with the real memory orders.
  auto r = xc::explore(model::exhaustive(2),
                       spsc_build(/*n_push=*/3, /*n_pop_tries=*/2,
                                  /*batch=*/true));
  model::expect_clean(r, "bqueue_batch", /*require_complete=*/true);
  EXPECT_GT(r.executions, 10u);
}

TEST(ModelBQueue, PctSweepScalarAndBatch) {
  auto r1 = xc::explore(model::pct(/*seed=*/7, /*iterations=*/300),
                        spsc_build(3, 4, false));
  model::expect_clean(r1, "bqueue_pct_scalar");
  auto r2 = xc::explore(model::pct(/*seed=*/7, /*iterations=*/300),
                        spsc_build(3, 3, true));
  model::expect_clean(r2, "bqueue_pct_batch");
}

// Wrap-around: push/pop more values than the capacity so indices wrap the
// mask. Exhaustive over a smaller preemption bound to keep the space tame.
TEST(ModelBQueue, ExhaustiveWrapAround) {
  auto r = xc::explore(model::exhaustive(1), [](xc::Exec& ex) {
    auto q = std::make_shared<xtask::BQueue<int*>>(/*capacity=*/2,
                                                   /*batch=*/1);
    auto pushed = std::make_shared<std::size_t>(0);
    auto popped = std::make_shared<std::vector<int*>>();
    ex.thread("prod", [q, pushed] {
      for (std::size_t i = 0; i < 4; ++i) {
        bool ok = false;
        for (int a = 0; a < 3 && !ok; ++a) {
          ok = q->push(val(i));
          if (!ok) xc::Exec::yield();
        }
        if (!ok) return;
        *pushed = i + 1;
      }
    });
    ex.thread("cons", [q, popped] {
      for (int t = 0; t < 6; ++t)
        if (int* v = q->pop()) popped->push_back(v);
    });
    ex.check([q, pushed, popped] {
      std::vector<int*> all = *popped;
      while (int* v = q->pop()) all.push_back(v);
      if (all.size() != *pushed) xc::Exec::fail("lost/duplicated on wrap");
      for (std::size_t i = 0; i < all.size(); ++i)
        if (all[i] != val(i)) xc::Exec::fail("order broken on wrap");
    });
  });
  model::expect_clean(r, "bqueue_wrap", /*require_complete=*/true);
}

}  // namespace
