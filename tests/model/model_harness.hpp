// Shared helpers for the xcheck model-test suite (tests/model).
//
// Every TU in this suite is compiled with -DXTASK_MODEL_CHECK, so the
// runtime headers it includes use the instrumented xcheck::xatomic<T>.
// Model binaries link ONLY xtask_check + GTest — never xtask_core or
// xtask_sim — so the instrumented and production flavors of the same
// inline/template code can never be folded together by the linker.
#pragma once

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "check/sched.hpp"

namespace model {

/// Write the failing schedule trace where a human (or the CI artifact
/// uploader — see .github/workflows/ci.yml, job `model-check`) can find
/// it: $XCHECK_TRACE_DIR/<test>.trace when the variable is set.
inline void dump_trace(const std::string& test_name,
                       const xtask::xcheck::ExploreResult& r) {
  std::string body = "violation: " + r.message + "\n";
  if (r.failing_seed != 0)
    body += "failing seed: " + std::to_string(r.failing_seed) + "\n";
  body += "trace hash: " + std::to_string(r.trace_hash) + "\n";
  body += "decisions:";
  for (std::uint32_t d : r.decisions) body += " " + std::to_string(d);
  body += "\nschedule trace:\n" + r.trace;
  std::fprintf(stderr, "[xcheck] %s\n%s", test_name.c_str(), body.c_str());
  if (const char* dir = std::getenv("XCHECK_TRACE_DIR")) {
    const std::string path = std::string(dir) + "/" + test_name + ".trace";
    if (std::FILE* f = std::fopen(path.c_str(), "w")) {
      std::fputs(body.c_str(), f);
      std::fclose(f);
    }
  }
}

/// Assert an exploration finished without violations. On failure the
/// replayable trace goes to stderr (and $XCHECK_TRACE_DIR if set).
inline void expect_clean(const xtask::xcheck::ExploreResult& r,
                         const std::string& test_name,
                         bool require_complete = false) {
  if (r.violation) dump_trace(test_name, r);
  EXPECT_FALSE(r.violation) << test_name << ": " << r.message;
  if (require_complete) {
    EXPECT_TRUE(r.complete)
        << test_name << ": exhaustive enumeration hit the execution cap ("
        << r.executions << " executions)";
  }
}

inline xtask::xcheck::ExploreOptions exhaustive(int preemption_bound = 3) {
  xtask::xcheck::ExploreOptions o;
  o.mode = xtask::xcheck::ExploreOptions::Mode::kExhaustive;
  o.preemption_bound = preemption_bound;
  return o;
}

inline xtask::xcheck::ExploreOptions pct(std::uint64_t seed,
                                         std::uint64_t iterations = 500) {
  xtask::xcheck::ExploreOptions o;
  o.mode = xtask::xcheck::ExploreOptions::Mode::kPct;
  o.seed = seed;
  o.iterations = iterations;
  return o;
}

}  // namespace model
