// Self-tests for the xcheck checker itself: classic litmus shapes with
// known-allowed/known-forbidden outcomes, determinism and replay
// guarantees, the fatal() hook, and the linearizability oracle's search.
// If these pass, a clean result from the primitive tests actually means
// something.
#include <gtest/gtest.h>

#include <deque>
#include <memory>

#include "check/lin_oracle.hpp"
#include "check/sched.hpp"
#include "core/common.hpp"  // xtask::atomic → xcheck::xatomic here
#include "model_harness.hpp"

namespace xc = xtask::xcheck;

namespace {

// --------------------------------------------------------------------------
// Message passing: flag with release/acquire ⇒ payload visible. The
// checker must find NO violation across the whole bounded-exhaustive space.
TEST(XCheckSelf, MessagePassingReleaseAcquireIsClean) {
  auto r = xc::explore(model::exhaustive(), [](xc::Exec& ex) {
    auto data = std::make_shared<xtask::atomic<int>>(0);
    auto flag = std::make_shared<xtask::atomic<int>>(0);
    ex.thread("writer", [data, flag] {
      data->store(42, std::memory_order_relaxed);
      flag->store(1, std::memory_order_release);
    });
    ex.thread("reader", [data, flag] {
      if (flag->load(std::memory_order_acquire) == 1) {
        if (data->load(std::memory_order_relaxed) != 42)
          xc::Exec::fail("acquire saw flag but stale data");
      }
    });
  });
  model::expect_clean(r, "mp_release_acquire", /*require_complete=*/true);
  EXPECT_GT(r.executions, 1u);
}

// Message passing with a *relaxed* flag store: the stale-data outcome is
// allowed by the architecture, and the checker must be able to produce it.
// This is the core capability the BQueue mutation smoke test relies on.
TEST(XCheckSelf, MessagePassingRelaxedFlagFindsStaleRead) {
  auto build = [](xc::Exec& ex) {
    auto data = std::make_shared<xtask::atomic<int>>(0);
    auto flag = std::make_shared<xtask::atomic<int>>(0);
    ex.thread("writer", [data, flag] {
      data->store(42, std::memory_order_relaxed);
      flag->store(1, std::memory_order_relaxed);  // the seeded weakness
    });
    ex.thread("reader", [data, flag] {
      if (flag->load(std::memory_order_acquire) == 1) {
        if (data->load(std::memory_order_relaxed) != 42)
          xc::Exec::fail("stale data behind relaxed flag");
      }
    });
  };
  auto r = xc::explore(model::exhaustive(), build);
  ASSERT_TRUE(r.violation) << "exhaustive mode missed the allowed stale read";
  EXPECT_NE(r.trace.find("stale"), std::string::npos) << r.trace;

  // The decision list must replay to the bit-identical interleaving.
  auto rr = xc::replay(model::exhaustive(), build, r.decisions);
  ASSERT_TRUE(rr.violation);
  EXPECT_EQ(rr.trace_hash, r.trace_hash);
  EXPECT_EQ(rr.message, r.message);
}

// Store buffering with seq_cst on every access: the both-read-zero outcome
// is forbidden, so exhaustive exploration must terminate with no violation.
TEST(XCheckSelf, StoreBufferingSeqCstForbidsBothZero) {
  auto r = xc::explore(model::exhaustive(), [](xc::Exec& ex) {
    auto x = std::make_shared<xtask::atomic<int>>(0);
    auto y = std::make_shared<xtask::atomic<int>>(0);
    auto r0 = std::make_shared<int>(-1);
    auto r1 = std::make_shared<int>(-1);
    ex.thread("a", [x, y, r0] {
      x->store(1);
      *r0 = y->load();
    });
    ex.thread("b", [x, y, r1] {
      y->store(1);
      *r1 = x->load();
    });
    ex.check([r0, r1] {
      if (*r0 == 0 && *r1 == 0)
        xc::Exec::fail("SC store buffering produced r0 == r1 == 0");
    });
  });
  model::expect_clean(r, "sb_seq_cst", /*require_complete=*/true);
}

// The same shape with relaxed accesses allows both-zero; the checker must
// find it (this exercises the post-run check() path, not in-thread fail).
TEST(XCheckSelf, StoreBufferingRelaxedAllowsBothZero) {
  auto r = xc::explore(model::exhaustive(), [](xc::Exec& ex) {
    auto x = std::make_shared<xtask::atomic<int>>(0);
    auto y = std::make_shared<xtask::atomic<int>>(0);
    auto r0 = std::make_shared<int>(-1);
    auto r1 = std::make_shared<int>(-1);
    ex.thread("a", [x, y, r0] {
      x->store(1, std::memory_order_relaxed);
      *r0 = y->load(std::memory_order_relaxed);
    });
    ex.thread("b", [x, y, r1] {
      y->store(1, std::memory_order_relaxed);
      *r1 = x->load(std::memory_order_relaxed);
    });
    ex.check([r0, r1] {
      if (*r0 == 0 && *r1 == 0) xc::Exec::fail("both zero (allowed)");
    });
  });
  EXPECT_TRUE(r.violation);
}

// RMW atomicity: two concurrent fetch_adds must never lose an increment,
// under any schedule and any (relaxed) memory order.
TEST(XCheckSelf, ConcurrentFetchAddNeverLosesIncrements) {
  auto r = xc::explore(model::exhaustive(), [](xc::Exec& ex) {
    auto c = std::make_shared<xtask::atomic<int>>(0);
    for (int t = 0; t < 2; ++t)
      ex.thread("inc", [c] {
        c->fetch_add(1, std::memory_order_relaxed);
        c->fetch_add(1, std::memory_order_relaxed);
      });
    ex.check([c] {
      if (c->load() != 4) xc::Exec::fail("lost increment");
    });
  });
  model::expect_clean(r, "rmw_atomicity", /*require_complete=*/true);
}

// Release-sequence continuation: a relaxed RMW between a release store and
// an acquire load must not break synchronization.
TEST(XCheckSelf, ReleaseSequenceThroughRelaxedRmw) {
  auto r = xc::explore(model::exhaustive(), [](xc::Exec& ex) {
    auto data = std::make_shared<xtask::atomic<int>>(0);
    auto flag = std::make_shared<xtask::atomic<int>>(0);
    ex.thread("writer", [data, flag] {
      data->store(7, std::memory_order_relaxed);
      flag->store(1, std::memory_order_release);
    });
    ex.thread("bumper", [flag] {
      // Relaxed RMW continues the writer's release sequence.
      flag->fetch_add(1, std::memory_order_relaxed);
    });
    ex.thread("reader", [data, flag] {
      if (flag->load(std::memory_order_acquire) == 2) {
        // Read the RMW's message ⇒ synchronizes with the original release.
        if (data->load(std::memory_order_relaxed) != 7)
          xc::Exec::fail("release sequence broken by relaxed RMW");
      }
    });
  });
  model::expect_clean(r, "release_sequence", /*require_complete=*/true);
}

// XTASK_CHECK inside a virtual thread must surface as a reported,
// replayable violation via the fatal() hook — not a process abort.
TEST(XCheckSelf, FatalHookTurnsCheckFailureIntoViolation) {
  auto r = xc::explore(model::exhaustive(), [](xc::Exec& ex) {
    auto x = std::make_shared<xtask::atomic<int>>(0);
    ex.thread("t", [x] {
      x->store(1, std::memory_order_relaxed);
      XTASK_CHECK(x->load(std::memory_order_relaxed) == 2);  // fires
    });
  });
  ASSERT_TRUE(r.violation);
  EXPECT_NE(r.message.find("check failed"), std::string::npos) << r.message;
  EXPECT_FALSE(r.decisions.empty());
}

// Exhaustive exploration is deterministic: same program, same space, same
// execution count, twice in a row.
TEST(XCheckSelf, ExhaustiveEnumerationIsDeterministic) {
  auto build = [](xc::Exec& ex) {
    auto x = std::make_shared<xtask::atomic<int>>(0);
    for (int t = 0; t < 3; ++t)
      ex.thread("t", [x] { x->fetch_add(1, std::memory_order_relaxed); });
  };
  auto a = xc::explore(model::exhaustive(2), build);
  auto b = xc::explore(model::exhaustive(2), build);
  EXPECT_TRUE(a.complete);
  EXPECT_EQ(a.executions, b.executions);
  EXPECT_FALSE(a.violation);
}

// PCT: the failing seed printed in a report reproduces the identical
// interleaving — same decisions, same trace hash.
TEST(XCheckSelf, PctFailingSeedReproducesIdenticalInterleaving) {
  auto build = [](xc::Exec& ex) {
    auto x = std::make_shared<xtask::atomic<int>>(0);
    auto y = std::make_shared<xtask::atomic<int>>(0);
    ex.thread("a", [x, y] {
      x->store(1, std::memory_order_relaxed);
      if (y->load(std::memory_order_relaxed) == 0 &&
          x->load(std::memory_order_relaxed) == 1)
        xc::Exec::fail("reached the target interleaving");
    });
    ex.thread("b", [y] { y->store(1, std::memory_order_relaxed); });
  };
  auto r = xc::explore(model::pct(/*seed=*/1, /*iterations=*/500), build);
  ASSERT_TRUE(r.violation) << "PCT never hit an easily reachable state";
  ASSERT_NE(r.failing_seed, 0u);

  xc::ExploreOptions one = model::pct(r.failing_seed, 1);
  auto rr = xc::explore(one, build);
  ASSERT_TRUE(rr.violation);
  EXPECT_EQ(rr.failing_seed, r.failing_seed);
  EXPECT_EQ(rr.decisions, r.decisions);
  EXPECT_EQ(rr.trace_hash, r.trace_hash);
}

// A runaway loop in a checked body is reported as a violation (step
// budget), not a hang.
TEST(XCheckSelf, StepBudgetCatchesLivelock) {
  xc::ExploreOptions o = model::pct(1, 1);
  o.max_steps = 500;
  auto r = xc::explore(o, [](xc::Exec& ex) {
    auto x = std::make_shared<xtask::atomic<int>>(0);
    ex.thread("spin", [x] {
      while (x->load(std::memory_order_relaxed) == 0) {
      }
    });
  });
  ASSERT_TRUE(r.violation);
  EXPECT_NE(r.message.find("step budget"), std::string::npos) << r.message;
}

// --------------------------------------------------------------------------
// Linearizability oracle unit tests (no scheduler involved).

struct RegisterSpec {
  // kind 1 = write(arg), kind 2 = read() -> ret.
  using State = std::uint64_t;
  State initial() const { return 0; }
  bool apply(State& s, const xc::OpRecord& op) const {
    if (op.kind == 1) {
      s = op.arg;
      return true;
    }
    return op.ret == s;
  }
};

TEST(LinOracle, AcceptsSequentiallyConsistentRegisterHistory) {
  xc::HistoryLog log;
  auto w = log.invoke(0, 1, 5, "write(5)");
  log.respond(w, 0);
  auto rd = log.invoke(1, 2, 0, "read()->5");
  log.respond(rd, 5);
  auto res = xc::check_linearizable(RegisterSpec{}, log);
  EXPECT_TRUE(res.ok) << res.message;
  EXPECT_TRUE(res.conclusive);
}

TEST(LinOracle, RejectsValueFromNowhere) {
  xc::HistoryLog log;
  auto w = log.invoke(0, 1, 5, "write(5)");
  log.respond(w, 0);
  auto rd = log.invoke(1, 2, 0, "read()->7");
  log.respond(rd, 7);  // 7 was never written
  auto res = xc::check_linearizable(RegisterSpec{}, log);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.message.find("no linearization"), std::string::npos);
}

TEST(LinOracle, HonorsPerThreadProgramOrder) {
  // One thread writes 1 then 2; a same-thread read of 1 afterwards cannot
  // linearize (program order pins read after write(2)).
  xc::HistoryLog log;
  auto w1 = log.invoke(0, 1, 1, "write(1)");
  log.respond(w1, 0);
  auto w2 = log.invoke(0, 1, 2, "write(2)");
  log.respond(w2, 0);
  auto rd = log.invoke(0, 2, 0, "read()->1");
  log.respond(rd, 1);
  auto res = xc::check_linearizable(RegisterSpec{}, log);
  EXPECT_FALSE(res.ok);
}

TEST(LinOracle, CrossThreadOverlapMayReorder) {
  // Another thread's read of the *old* value is fine: no program-order
  // edge forces it after the write.
  xc::HistoryLog log;
  auto w = log.invoke(0, 1, 9, "write(9)");
  log.respond(w, 0);
  auto rd = log.invoke(1, 2, 0, "read()->0");
  log.respond(rd, 0);
  auto res = xc::check_linearizable(RegisterSpec{}, log);
  EXPECT_TRUE(res.ok) << res.message;
}

TEST(LinOracle, IgnoresPendingOperations) {
  xc::HistoryLog log;
  log.invoke(0, 1, 3, "write(3) [never returns]");
  auto rd = log.invoke(1, 2, 0, "read()->0");
  log.respond(rd, 0);
  auto res = xc::check_linearizable(RegisterSpec{}, log);
  EXPECT_TRUE(res.ok) << res.message;
}

struct QueueSpec {
  // kind 1 = push(arg), kind 2 = pop() -> ret (0 = empty).
  using State = std::deque<std::uint64_t>;
  State initial() const { return {}; }
  bool apply(State& s, const xc::OpRecord& op) const {
    if (op.kind == 1) {
      s.push_back(op.arg);
      return true;
    }
    if (op.ret == 0) return s.empty();
    if (s.empty() || s.front() != op.ret) return false;
    s.pop_front();
    return true;
  }
};

TEST(LinOracle, QueueSpecRejectsDuplicatedPop) {
  xc::HistoryLog log;
  auto p = log.invoke(0, 1, 11, "push(11)");
  log.respond(p, 0);
  auto a = log.invoke(1, 2, 0, "pop()->11");
  log.respond(a, 11);
  auto b = log.invoke(2, 2, 0, "pop()->11");
  log.respond(b, 11);  // the same element twice
  auto res = xc::check_linearizable(QueueSpec{}, log);
  EXPECT_FALSE(res.ok);
}

}  // namespace
