// Model checking the GuardCell state machine (core/heartbeat.hpp): the
// per-worker consumer-identity cell the self-healing layer CASes through
//   free -> owner -> free            (worker)
//   free -> monitor -> free          (quarantine / readmission)
//   monitor -> reclaimer -> monitor  (healthy peer draining rows)
// Checked two ways: a mutual-exclusion invariant (owner and reclaimer
// critical sections never overlap — that exclusivity is what keeps the
// single-writer XQueue/TreeBarrier state race-free under surrogate use),
// and a linearizability oracle whose sequential spec *is* the state
// machine, with the acq_rel CASes as the linearization points argued in
// DESIGN.md.
#include <gtest/gtest.h>

#include <memory>

#include "check/lin_oracle.hpp"
#include "core/heartbeat.hpp"
#include "model_harness.hpp"

namespace xc = xtask::xcheck;
using xtask::GuardCell;

namespace {

// Op codes for the guard history.
enum : std::uint64_t {
  kOpAcquire = 0,   // ret: 1 success / 0 refused
  kOpRelease = 1,   //
  kOpQuarantine = 2,
  kOpReadmit = 3,
  kOpBorrow = 4,
  kOpReturn = 5,
};

/// Sequential spec: replay the transition diagram literally. A failed CAS
/// is also an operation — it must have observed a state that refuses the
/// transition at its linearization point.
struct GuardSpec {
  struct State {
    std::uint32_t s = xtask::hb::kGuardFree;
  };
  State initial() const { return {}; }
  bool apply(State& st, const xc::OpRecord& op) const {
    namespace hb = xtask::hb;
    switch (op.kind) {
      case kOpAcquire:
        if (op.ret == 1) {
          if (st.s != hb::kGuardFree) return false;
          st.s = hb::kGuardOwner;
          return true;
        }
        return st.s != hb::kGuardFree;
      case kOpRelease:
        if (st.s != hb::kGuardOwner) return false;
        st.s = hb::kGuardFree;
        return true;
      case kOpQuarantine:
        if (op.ret == 1) {
          if (st.s != hb::kGuardFree) return false;
          st.s = hb::kGuardMonitor;
          return true;
        }
        return st.s != hb::kGuardFree;
      case kOpReadmit:
        if (op.ret == 1) {
          if (st.s != hb::kGuardMonitor) return false;
          st.s = hb::kGuardFree;
          return true;
        }
        return st.s != hb::kGuardMonitor;
      case kOpBorrow:
        if (op.ret == 1) {
          if (st.s != hb::kGuardMonitor) return false;
          st.s = hb::kGuardReclaimer;
          return true;
        }
        return st.s != hb::kGuardMonitor;
      case kOpReturn:
        if (st.s != hb::kGuardReclaimer) return false;
        st.s = hb::kGuardMonitor;
        return true;
      default:
        return false;
    }
  }
};

/// Shared critical-section flag: 0 = nobody, otherwise the holder's tag.
/// Plain field on purpose — the checker is single-OS-threaded, so this is
/// torn-free; the yield() inside makes an overlap observable.
struct Cs {
  int holder = 0;
  void enter(int who) {
    if (holder != 0)
      xc::Exec::fail("guard mutual exclusion violated: " +
                     std::to_string(who) + " entered while " +
                     std::to_string(holder) + " holds the consumer role");
    holder = who;
    xc::Exec::yield();  // let the other side try to break in mid-section
    holder = 0;
  }
};

// The full three-role dance, exhaustively: a worker taking/releasing the
// guard around consumer steps, the monitor quarantining and readmitting,
// and a healthy peer borrowing the cell to reclaim. Exclusion + spec.
TEST(ModelGuard, ExhaustiveThreeRoleExclusionAndLinearization) {
  auto r = xc::explore(model::exhaustive(2), [](xc::Exec& ex) {
    auto g = std::make_shared<GuardCell>();
    auto cs = std::make_shared<Cs>();
    auto log = std::make_shared<xc::HistoryLog>();
    ex.thread("worker", [g, cs, log] {
      for (int round = 0; round < 2; ++round) {
        std::size_t op = log->invoke(0, kOpAcquire, 0, "acquire_owner");
        const bool ok = g->try_acquire_owner();
        log->respond(op, ok ? 1 : 0);
        if (!ok) continue;  // quarantined or mid-reclaim: back off
        cs->enter(1);
        op = log->invoke(0, kOpRelease, 0, "release_owner");
        g->release_owner();
        log->respond(op, 0);
      }
    });
    ex.thread("monitor", [g, log] {
      std::size_t op = log->invoke(1, kOpQuarantine, 0, "quarantine");
      const bool q = g->try_quarantine();
      log->respond(op, q ? 1 : 0);
      if (!q) return;
      // Readmit with bounded retries: refusals are legal while the
      // reclaimer borrows the cell, and it returns within bounded steps.
      for (int attempt = 0; attempt < 6; ++attempt) {
        op = log->invoke(1, kOpReadmit, 0, "readmit");
        const bool ok = g->try_readmit();
        log->respond(op, ok ? 1 : 0);
        if (ok) return;
        xc::Exec::yield();
      }
    });
    ex.thread("reclaimer", [g, cs, log] {
      std::size_t op = log->invoke(2, kOpBorrow, 0, "borrow_reclaimer");
      const bool b = g->try_borrow_reclaimer();
      log->respond(op, b ? 1 : 0);
      if (!b) return;
      cs->enter(2);
      op = log->invoke(2, kOpReturn, 0, "return_reclaimer");
      g->return_reclaimer();
      log->respond(op, 0);
    });
    ex.check([g, log] {
      const xc::LinResult lin = xc::check_linearizable(GuardSpec{}, *log);
      if (!lin.ok) xc::Exec::fail(lin.message);
      // Terminal state sanity: every role released what it held.
      const std::uint32_t s = g->state();
      if (s != xtask::hb::kGuardFree && s != xtask::hb::kGuardMonitor)
        xc::Exec::fail("guard left in owner/reclaimer state at exit");
    });
  });
  model::expect_clean(r, "guard_three_role", /*require_complete=*/true);
  EXPECT_GT(r.executions, 10u);
}

// Reentrant ownership: a nested acquire must not open a window where the
// monitor can quarantine a worker that still holds the guard. The inner
// release must NOT free the cell; only the outermost one does.
TEST(ModelGuard, ExhaustiveReentrancyBlocksQuarantine) {
  auto r = xc::explore(model::exhaustive(3), [](xc::Exec& ex) {
    auto g = std::make_shared<GuardCell>();
    auto holding = std::make_shared<int>(0);
    ex.thread("worker", [g, holding] {
      if (!g->try_acquire_owner()) return;
      *holding = 1;
      xc::Exec::yield();
      // Inline task re-enters the scheduler: nested acquire on the same
      // thread must succeed without a CAS and without freeing on exit.
      if (!g->try_acquire_owner())
        xc::Exec::fail("nested acquire refused on the owning thread");
      if (g->owner_depth() != 2) xc::Exec::fail("depth != 2 while nested");
      g->release_owner();  // inner
      xc::Exec::yield();   // the quarantine window, if the bug existed
      if (g->owner_depth() != 1)
        xc::Exec::fail("inner release dropped ownership");
      *holding = 0;
      g->release_owner();  // outer
    });
    ex.thread("monitor", [g, holding] {
      for (int attempt = 0; attempt < 4; ++attempt) {
        if (g->try_quarantine()) {
          if (*holding != 0)
            xc::Exec::fail("quarantined a worker still holding its guard");
          g->try_readmit();
          return;
        }
        xc::Exec::yield();
      }
    });
  });
  model::expect_clean(r, "guard_reentrancy", /*require_complete=*/true);
}

}  // namespace
