// Parameterized simulator sweep: every policy × representative workloads
// must conserve tasks, stay deterministic, and respect basic dominance
// relations of the cost model.
#include <gtest/gtest.h>

#include "sim/workloads.hpp"

namespace xtask::sim {
namespace {

struct SweepCase {
  const char* name;
  SimPolicy policy;
  SimDlb dlb;
  int cores;
  int zones;
};

class SimPolicySweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(SimPolicySweep, ConservationAndDeterminism) {
  const SweepCase& p = GetParam();
  const SimWorkload workloads[] = {
      wl_fib(14),
      wl_uts(30, 0.15, 7),
      wl_sort(1 << 14, 1 << 10),
      wl_irregular(500, 20'000, 0.4),
  };
  for (const auto& wl : workloads) {
    SimConfig cfg;
    cfg.policy = p.policy;
    cfg.dlb = p.dlb;
    cfg.dlb_cfg = {4, 8, 2'000, 0.5};
    cfg.machine.topo = Topology::synthetic(p.cores, p.zones);
    const auto r1 = simulate(cfg, wl);
    const auto r2 = simulate(cfg, wl);
    ASSERT_EQ(r1.totals.ntasks_created, r1.totals.ntasks_executed)
        << p.name << "/" << wl.name;
    ASSERT_EQ(r1.makespan, r2.makespan) << p.name << "/" << wl.name;
    ASSERT_EQ(r1.tasks, r2.tasks) << p.name << "/" << wl.name;
    ASSERT_GT(r1.makespan, 0u);
    // Locality classes partition executions.
    ASSERT_EQ(r1.totals.ntasks_self + r1.totals.ntasks_local +
                  r1.totals.ntasks_remote,
              r1.totals.ntasks_executed)
        << p.name << "/" << wl.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, SimPolicySweep,
    ::testing::Values(
        SweepCase{"gomp_16", SimPolicy::kGomp, SimDlb::kNone, 16, 4},
        SweepCase{"lomp_16", SimPolicy::kLomp, SimDlb::kNone, 16, 4},
        SweepCase{"xlomp_16", SimPolicy::kXlomp, SimDlb::kNone, 16, 4},
        SweepCase{"xgomp_16", SimPolicy::kXGomp, SimDlb::kNone, 16, 4},
        SweepCase{"xgomptb_16", SimPolicy::kXGompTB, SimDlb::kNone, 16, 4},
        SweepCase{"tb_rp_16", SimPolicy::kXGompTB, SimDlb::kRedirectPush,
                  16, 4},
        SweepCase{"tb_ws_16", SimPolicy::kXGompTB, SimDlb::kWorkSteal, 16,
                  4},
        SweepCase{"tb_qws_16", SimPolicy::kXGompTB,
                  SimDlb::kQueueWorkSteal, 16, 4},
        SweepCase{"tb_adaptive_16", SimPolicy::kXGompTB, SimDlb::kAdaptive,
                  16, 4},
        SweepCase{"tb_ws_1core", SimPolicy::kXGompTB, SimDlb::kWorkSteal,
                  1, 1},
        SweepCase{"tb_192", SimPolicy::kXGompTB, SimDlb::kNone, 192, 8},
        SweepCase{"gomp_3_uneven", SimPolicy::kGomp, SimDlb::kNone, 3, 2}),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      return info.param.name;
    });

TEST(SimDominance, MoreCoresScaleUntilSaturation) {
  // Strict monotonicity does not hold once the workload saturates (more
  // workers add scan/idle overheads with ~10 leaves each); allow a small
  // plateau wobble but require real scaling overall.
  const auto wl = wl_irregular(2000, 30'000, 0.0);
  std::uint64_t first = 0;
  std::uint64_t prev = ~0ull;
  for (int cores : {4, 16, 64, 192}) {
    SimConfig cfg;
    cfg.policy = SimPolicy::kXGompTB;
    cfg.machine.topo =
        Topology::synthetic(cores, std::max(1, cores / 24));
    const auto res = simulate(cfg, wl);
    EXPECT_LE(res.makespan, prev + prev / 5) << cores << " cores";
    if (first == 0) first = res.makespan;
    prev = res.makespan;
  }
  EXPECT_LT(prev * 5, first) << "192 cores should be >5x faster than 4";
}

TEST(SimDominance, HigherMemIntensityNeverFaster) {
  std::uint64_t prev = 0;
  for (double mem : {0.0, 0.5, 1.0}) {
    auto wl = wl_irregular(1000, 40'000, mem);
    SimConfig cfg;
    cfg.policy = SimPolicy::kXGompTB;
    const auto res = simulate(cfg, wl);
    EXPECT_GE(res.makespan, prev) << mem;
    prev = res.makespan;
  }
}

TEST(SimDominance, CheaperMachineConstantsNeverSlower) {
  const auto wl = wl_fib(15);
  SimConfig fast;
  fast.policy = SimPolicy::kXGomp;
  SimConfig slow = fast;
  slow.machine.atomic_transfer *= 4;
  const auto rf = simulate(fast, wl);
  const auto rs = simulate(slow, wl);
  EXPECT_LE(rf.makespan, rs.makespan);
}

}  // namespace
}  // namespace xtask::sim
