// Task-dependence tests (core/dependency.hpp): chains, diamonds,
// read-parallel groups, anti-dependences, deferred dispatch across
// workers, interaction with DLB, and randomized DAG ordering properties.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <vector>

#include "core/runtime.hpp"
#include "registry/registry.hpp"

namespace xtask {
namespace {

Config cfg4(DlbKind dlb = DlbKind::kNone) {
  Config cfg;
  cfg.num_threads = 4;
  cfg.numa_zones = 2;
  cfg.dlb = dlb;
  cfg.dlb_cfg.t_interval = 64;
  return cfg;
}

TEST(Dependency, OutChainExecutesInOrder) {
  const auto rt_h = RuntimeRegistry::make_xtask(cfg4());
  Runtime& rt = *rt_h;
  std::vector<int> order;
  std::mutex mu;
  int x = 0;
  rt.run([&](TaskContext& ctx) {
    for (int i = 0; i < 16; ++i) {
      ctx.spawn(
          [&, i](TaskContext&) {
            std::lock_guard<std::mutex> lock(mu);
            order.push_back(i);
          },
          {dout(&x)});
    }
    ctx.taskwait();
  });
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Dependency, WriterReadersWriterDiamond) {
  // w1 -> {r1..r4} -> w2: readers run after w1, w2 after all readers.
  const auto rt_h = RuntimeRegistry::make_xtask(cfg4());
  Runtime& rt = *rt_h;
  int x = 0;
  std::atomic<int> readers_done{0};
  std::atomic<bool> w1_done{false};
  std::atomic<bool> order_ok{true};
  rt.run([&](TaskContext& ctx) {
    ctx.spawn([&](TaskContext&) { w1_done.store(true); }, {dout(&x)});
    for (int r = 0; r < 4; ++r) {
      ctx.spawn(
          [&](TaskContext&) {
            if (!w1_done.load()) order_ok.store(false);
            readers_done.fetch_add(1);
          },
          {din(&x)});
    }
    ctx.spawn(
        [&](TaskContext&) {
          if (readers_done.load() != 4) order_ok.store(false);
        },
        {dout(&x)});
    ctx.taskwait();
  });
  EXPECT_TRUE(order_ok.load());
  EXPECT_EQ(readers_done.load(), 4);
}

TEST(Dependency, IndependentAddressesDoNotSerialize) {
  // Tasks on disjoint addresses have no edges: all must run (no deadlock,
  // no false dependency that would show up as ordering constraints being
  // enforced — we can only check completion + counts here).
  const auto rt_h = RuntimeRegistry::make_xtask(cfg4());
  Runtime& rt = *rt_h;
  int vars[32];
  std::atomic<int> done{0};
  rt.run([&](TaskContext& ctx) {
    for (int i = 0; i < 32; ++i) {
      ctx.spawn([&](TaskContext&) { done.fetch_add(1); },
                {dout(&vars[i])});
    }
    ctx.taskwait();
  });
  EXPECT_EQ(done.load(), 32);
}

TEST(Dependency, MixedDepAndPlainSpawns) {
  const auto rt_h = RuntimeRegistry::make_xtask(cfg4());
  Runtime& rt = *rt_h;
  int x = 0;
  std::atomic<int> plain{0};
  std::atomic<int> chained{0};
  rt.run([&](TaskContext& ctx) {
    for (int i = 0; i < 10; ++i) {
      ctx.spawn([&](TaskContext&) { plain.fetch_add(1); });
      ctx.spawn([&](TaskContext&) { chained.fetch_add(1); }, {dout(&x)});
    }
    ctx.taskwait();
  });
  EXPECT_EQ(plain.load(), 10);
  EXPECT_EQ(chained.load(), 10);
}

TEST(Dependency, GaussSeidelStencilRespectsAllEdges) {
  // 2D wavefront: cell (i,j) depends on (i-1,j) and (i,j-1) via dout on
  // the cells. Values verify the full ordering: out[i][j] must see the
  // final values of both predecessors.
  constexpr int kN = 12;
  const auto rt_h = RuntimeRegistry::make_xtask(cfg4(DlbKind::kWorkSteal));
  Runtime& rt = *rt_h;
  std::vector<std::vector<long>> grid(kN, std::vector<long>(kN, 0));
  rt.run([&](TaskContext& ctx) {
    for (int i = 0; i < kN; ++i) {
      for (int j = 0; j < kN; ++j) {
        std::initializer_list<Dep> deps_all = {
            dout(&grid[i][j]), din(&grid[i > 0 ? i - 1 : 0][j]),
            din(&grid[i][j > 0 ? j - 1 : 0])};
        ctx.spawn(
            [&grid, i, j](TaskContext&) {
              const long up = i > 0 ? grid[i - 1][j] : 0;
              const long left = j > 0 ? grid[i][j - 1] : 0;
              grid[i][j] = up + left + 1;
            },
            deps_all);
      }
    }
    ctx.taskwait();
  });
  // grid[i][j] = C(i+j+1, i) + ... the recurrence v = up+left+1 has the
  // closed form C(i+j+2, i+1) - 1.
  auto binom = [](int n, int k) {
    long r = 1;
    for (int t = 1; t <= k; ++t) r = r * (n - k + t) / t;
    return r;
  };
  for (int i = 0; i < kN; ++i)
    for (int j = 0; j < kN; ++j)
      ASSERT_EQ(grid[i][j], binom(i + j + 2, i + 1) - 1)
          << "cell " << i << "," << j;
}

TEST(Dependency, LongChainAcrossManyRegions) {
  const auto rt_h = RuntimeRegistry::make_xtask(cfg4());
  Runtime& rt = *rt_h;
  for (int region = 0; region < 5; ++region) {
    long value = 0;
    rt.run([&](TaskContext& ctx) {
      for (int i = 0; i < 100; ++i)
        ctx.spawn([&](TaskContext&) { value = value * 3 + 1; },
                  {dout(&value)});
      ctx.taskwait();
    });
    long expect = 0;
    for (int i = 0; i < 100; ++i) expect = expect * 3 + 1;
    ASSERT_EQ(value, expect) << "region " << region;
  }
}

TEST(Dependency, NestedScopesAreIndependent) {
  // Each child task opens its own dependence scope over its own local
  // variable; scopes must not interfere.
  const auto rt_h = RuntimeRegistry::make_xtask(cfg4());
  Runtime& rt = *rt_h;
  std::atomic<long> total{0};
  rt.run([&](TaskContext& ctx) {
    for (int outer = 0; outer < 8; ++outer) {
      ctx.spawn([&total](TaskContext& c) {
        long local = 0;
        for (int i = 0; i < 20; ++i)
          c.spawn([&local](TaskContext&) { local += 1; }, {dout(&local)});
        c.taskwait();
        total.fetch_add(local);
      });
    }
    ctx.taskwait();
  });
  EXPECT_EQ(total.load(), 8 * 20);
}

TEST(Dependency, FireAndForgetChainDrainsAtBarrier) {
  // No taskwait at all: the region barrier must still wait for deferred
  // tasks (they are counted as created-but-not-executed by the census).
  const auto rt_h = RuntimeRegistry::make_xtask(cfg4());
  Runtime& rt = *rt_h;
  long value = 0;
  rt.run([&](TaskContext& ctx) {
    for (int i = 0; i < 50; ++i)
      ctx.spawn([&](TaskContext&) { ++value; }, {dout(&value)});
    // no taskwait
  });
  EXPECT_EQ(value, 50);
}

TEST(Dependency, CountersStillBalance) {
  const auto rt_h = RuntimeRegistry::make_xtask(cfg4(DlbKind::kRedirectPush));
  Runtime& rt = *rt_h;
  int a = 0;
  int b = 0;
  rt.run([&](TaskContext& ctx) {
    for (int i = 0; i < 200; ++i) {
      ctx.spawn([&](TaskContext&) { ++a; }, {dout(&a)});
      ctx.spawn([&](TaskContext&) { ++b; }, {dout(&b), din(&a)});
    }
    ctx.taskwait();
  });
  EXPECT_EQ(a, 200);
  EXPECT_EQ(b, 200);
  const Counters c = rt.profiler().total_counters();
  EXPECT_EQ(c.ntasks_created, c.ntasks_executed);
}

}  // namespace
}  // namespace xtask
