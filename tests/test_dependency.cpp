// Task-dependence tests (core/dependency.hpp): chains, diamonds,
// read-parallel groups, anti-dependences, deferred dispatch across
// workers, interaction with DLB, and randomized DAG ordering properties.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <vector>

#include "core/runtime.hpp"
#include "registry/registry.hpp"

namespace xtask {
namespace {

Config cfg4(DlbKind dlb = DlbKind::kNone) {
  Config cfg;
  cfg.num_threads = 4;
  cfg.numa_zones = 2;
  cfg.dlb = dlb;
  cfg.dlb_cfg.t_interval = 64;
  return cfg;
}

TEST(Dependency, OutChainExecutesInOrder) {
  const auto rt_h = RuntimeRegistry::make_xtask(cfg4());
  Runtime& rt = *rt_h;
  std::vector<int> order;
  std::mutex mu;
  int x = 0;
  rt.run([&](TaskContext& ctx) {
    for (int i = 0; i < 16; ++i) {
      ctx.spawn(
          [&, i](TaskContext&) {
            std::lock_guard<std::mutex> lock(mu);
            order.push_back(i);
          },
          {dout(&x)});
    }
    ctx.taskwait();
  });
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Dependency, WriterReadersWriterDiamond) {
  // w1 -> {r1..r4} -> w2: readers run after w1, w2 after all readers.
  const auto rt_h = RuntimeRegistry::make_xtask(cfg4());
  Runtime& rt = *rt_h;
  int x = 0;
  std::atomic<int> readers_done{0};
  std::atomic<bool> w1_done{false};
  std::atomic<bool> order_ok{true};
  rt.run([&](TaskContext& ctx) {
    ctx.spawn([&](TaskContext&) { w1_done.store(true); }, {dout(&x)});
    for (int r = 0; r < 4; ++r) {
      ctx.spawn(
          [&](TaskContext&) {
            if (!w1_done.load()) order_ok.store(false);
            readers_done.fetch_add(1);
          },
          {din(&x)});
    }
    ctx.spawn(
        [&](TaskContext&) {
          if (readers_done.load() != 4) order_ok.store(false);
        },
        {dout(&x)});
    ctx.taskwait();
  });
  EXPECT_TRUE(order_ok.load());
  EXPECT_EQ(readers_done.load(), 4);
}

TEST(Dependency, IndependentAddressesDoNotSerialize) {
  // Tasks on disjoint addresses have no edges: all must run (no deadlock,
  // no false dependency that would show up as ordering constraints being
  // enforced — we can only check completion + counts here).
  const auto rt_h = RuntimeRegistry::make_xtask(cfg4());
  Runtime& rt = *rt_h;
  int vars[32];
  std::atomic<int> done{0};
  rt.run([&](TaskContext& ctx) {
    for (int i = 0; i < 32; ++i) {
      ctx.spawn([&](TaskContext&) { done.fetch_add(1); },
                {dout(&vars[i])});
    }
    ctx.taskwait();
  });
  EXPECT_EQ(done.load(), 32);
}

TEST(Dependency, MixedDepAndPlainSpawns) {
  const auto rt_h = RuntimeRegistry::make_xtask(cfg4());
  Runtime& rt = *rt_h;
  int x = 0;
  std::atomic<int> plain{0};
  std::atomic<int> chained{0};
  rt.run([&](TaskContext& ctx) {
    for (int i = 0; i < 10; ++i) {
      ctx.spawn([&](TaskContext&) { plain.fetch_add(1); });
      ctx.spawn([&](TaskContext&) { chained.fetch_add(1); }, {dout(&x)});
    }
    ctx.taskwait();
  });
  EXPECT_EQ(plain.load(), 10);
  EXPECT_EQ(chained.load(), 10);
}

TEST(Dependency, GaussSeidelStencilRespectsAllEdges) {
  // 2D wavefront: cell (i,j) depends on (i-1,j) and (i,j-1) via dout on
  // the cells. Values verify the full ordering: out[i][j] must see the
  // final values of both predecessors.
  constexpr int kN = 12;
  const auto rt_h = RuntimeRegistry::make_xtask(cfg4(DlbKind::kWorkSteal));
  Runtime& rt = *rt_h;
  std::vector<std::vector<long>> grid(kN, std::vector<long>(kN, 0));
  rt.run([&](TaskContext& ctx) {
    for (int i = 0; i < kN; ++i) {
      for (int j = 0; j < kN; ++j) {
        std::initializer_list<Dep> deps_all = {
            dout(&grid[i][j]), din(&grid[i > 0 ? i - 1 : 0][j]),
            din(&grid[i][j > 0 ? j - 1 : 0])};
        ctx.spawn(
            [&grid, i, j](TaskContext&) {
              const long up = i > 0 ? grid[i - 1][j] : 0;
              const long left = j > 0 ? grid[i][j - 1] : 0;
              grid[i][j] = up + left + 1;
            },
            deps_all);
      }
    }
    ctx.taskwait();
  });
  // grid[i][j] = C(i+j+1, i) + ... the recurrence v = up+left+1 has the
  // closed form C(i+j+2, i+1) - 1.
  auto binom = [](int n, int k) {
    long r = 1;
    for (int t = 1; t <= k; ++t) r = r * (n - k + t) / t;
    return r;
  };
  for (int i = 0; i < kN; ++i)
    for (int j = 0; j < kN; ++j)
      ASSERT_EQ(grid[i][j], binom(i + j + 2, i + 1) - 1)
          << "cell " << i << "," << j;
}

TEST(Dependency, LongChainAcrossManyRegions) {
  const auto rt_h = RuntimeRegistry::make_xtask(cfg4());
  Runtime& rt = *rt_h;
  for (int region = 0; region < 5; ++region) {
    long value = 0;
    rt.run([&](TaskContext& ctx) {
      for (int i = 0; i < 100; ++i)
        ctx.spawn([&](TaskContext&) { value = value * 3 + 1; },
                  {dout(&value)});
      ctx.taskwait();
    });
    long expect = 0;
    for (int i = 0; i < 100; ++i) expect = expect * 3 + 1;
    ASSERT_EQ(value, expect) << "region " << region;
  }
}

TEST(Dependency, NestedScopesAreIndependent) {
  // Each child task opens its own dependence scope over its own local
  // variable; scopes must not interfere.
  const auto rt_h = RuntimeRegistry::make_xtask(cfg4());
  Runtime& rt = *rt_h;
  std::atomic<long> total{0};
  rt.run([&](TaskContext& ctx) {
    for (int outer = 0; outer < 8; ++outer) {
      ctx.spawn([&total](TaskContext& c) {
        long local = 0;
        for (int i = 0; i < 20; ++i)
          c.spawn([&local](TaskContext&) { local += 1; }, {dout(&local)});
        c.taskwait();
        total.fetch_add(local);
      });
    }
    ctx.taskwait();
  });
  EXPECT_EQ(total.load(), 8 * 20);
}

TEST(Dependency, FireAndForgetChainDrainsAtBarrier) {
  // No taskwait at all: the region barrier must still wait for deferred
  // tasks (they are counted as created-but-not-executed by the census).
  const auto rt_h = RuntimeRegistry::make_xtask(cfg4());
  Runtime& rt = *rt_h;
  long value = 0;
  rt.run([&](TaskContext& ctx) {
    for (int i = 0; i < 50; ++i)
      ctx.spawn([&](TaskContext&) { ++value; }, {dout(&value)});
    // no taskwait
  });
  EXPECT_EQ(value, 50);
}

// --- structural regressions on the frontier map itself ---------------------
// These drive detail::DepScope directly on stack Task objects and assert
// the exact unmet-predecessor counts register_task reports, pinning the
// reader-after-writer fix: a `din` after an `inout` chain orders against
// the *last* writer only, and a task never lingers in its own reader set.

/// Seal every task's release list (freeing edge nodes) and close the scope
/// so its destructor invariant holds; stack Tasks own their dep_state here.
void drain_scope(detail::DepScope& scope, std::initializer_list<Task*> ts) {
  std::vector<Task*> ready;
  for (Task* t : ts) detail::collect_ready_successors(t, &ready);
  std::vector<Task*> refs;
  scope.close(&refs);
  for (Task* t : ts) {
    delete t->dep_state;
    t->dep_state = nullptr;
  }
}

TEST(DependencyFrontier, ReaderAfterInoutChainOrdersAgainstLastWriterOnly) {
  detail::DepScope scope;
  Task w1{}, w2{}, r{};
  int x = 0;
  const Dep dw = dinout(&x);
  const Dep dr = din(&x);
  EXPECT_EQ(scope.register_task(&w1, &dw, 1), 0u);
  EXPECT_EQ(scope.register_task(&w2, &dw, 1), 1u);
  // The regression: exactly one unmet predecessor — the last writer w2 —
  // never stale entries from earlier in the chain.
  EXPECT_EQ(scope.register_task(&r, &dr, 1), 1u);
  EXPECT_EQ(scope.last_writer(&x), &w2);
  EXPECT_EQ(scope.reader_count(&x), 1u);
  drain_scope(scope, {&w1, &w2, &r});
}

TEST(DependencyFrontier, DinDoutInoutSpellingLeavesNoSelfReader) {
  // The historical `{din(&x), dout(&x)}` spelling of inout used to leave
  // the task behind in its own reader set, double-edging every later
  // conflict. It must collapse into a single writer entry.
  detail::DepScope scope;
  Task w{}, w2{};
  int x = 0;
  const Dep both[2] = {din(&x), dout(&x)};
  EXPECT_EQ(scope.register_task(&w, both, 2), 0u);
  EXPECT_EQ(scope.reader_count(&x), 0u);   // folded into the writer slot
  EXPECT_EQ(scope.last_writer(&x), &w);
  EXPECT_EQ(w.refs.load(), 2u);            // one map reference, not two
  const Dep dw = dout(&x);
  EXPECT_EQ(scope.register_task(&w2, &dw, 1), 1u);  // one edge, not two
  drain_scope(scope, {&w, &w2});
}

TEST(DependencyFrontier, DuplicateDinRegistersOnce) {
  detail::DepScope scope;
  Task r{};
  int x = 0;
  const Dep dd[2] = {din(&x), din(&x)};
  EXPECT_EQ(scope.register_task(&r, dd, 2), 0u);
  EXPECT_EQ(scope.reader_count(&x), 1u);
  EXPECT_EQ(r.refs.load(), 2u);  // single reader retain
  drain_scope(scope, {&r});
}

TEST(DependencyFrontier, WriterOrdersAfterWriterAndAllReaders) {
  detail::DepScope scope;
  Task w1{}, r1{}, r2{}, w2{};
  int x = 0;
  const Dep dw = dout(&x);
  const Dep dr = din(&x);
  EXPECT_EQ(scope.register_task(&w1, &dw, 1), 0u);
  EXPECT_EQ(scope.register_task(&r1, &dr, 1), 1u);
  EXPECT_EQ(scope.register_task(&r2, &dr, 1), 1u);
  // Collapse: the new writer conflicts with the old writer AND both
  // readers; afterwards the frontier is just w2.
  EXPECT_EQ(scope.register_task(&w2, &dw, 1), 3u);
  EXPECT_EQ(scope.reader_count(&x), 0u);
  EXPECT_EQ(scope.last_writer(&x), &w2);
  drain_scope(scope, {&w1, &r1, &r2, &w2});
}

TEST(Dependency, InoutChainThenReaderSeesFinalValue) {
  // End-to-end spelling of the regression: the reader must observe the
  // value after the *last* writer of the chain.
  const auto rt_h = RuntimeRegistry::make_xtask(cfg4(DlbKind::kWorkSteal));
  Runtime& rt = *rt_h;
  long v = 0;
  long seen = -1;
  rt.run([&](TaskContext& ctx) {
    for (int i = 0; i < 20; ++i)
      ctx.spawn([&](TaskContext&) { v = v * 2 + 1; }, {dinout(&v)});
    ctx.spawn([&](TaskContext&) { seen = v; }, {din(&v)});
    ctx.taskwait();
  });
  long expect = 0;
  for (int i = 0; i < 20; ++i) expect = expect * 2 + 1;
  EXPECT_EQ(v, expect);
  EXPECT_EQ(seen, expect);
}

TEST(Dependency, CountersStillBalance) {
  const auto rt_h = RuntimeRegistry::make_xtask(cfg4(DlbKind::kRedirectPush));
  Runtime& rt = *rt_h;
  int a = 0;
  int b = 0;
  rt.run([&](TaskContext& ctx) {
    for (int i = 0; i < 200; ++i) {
      ctx.spawn([&](TaskContext&) { ++a; }, {dout(&a)});
      ctx.spawn([&](TaskContext&) { ++b; }, {dout(&b), din(&a)});
    }
    ctx.taskwait();
  });
  EXPECT_EQ(a, 200);
  EXPECT_EQ(b, 200);
  const Counters c = rt.profiler().total_counters();
  EXPECT_EQ(c.ntasks_created, c.ntasks_executed);
}

}  // namespace
}  // namespace xtask
