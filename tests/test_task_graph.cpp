// Task-graph engine tests (core/task_graph.hpp): capture/replay structure,
// replay determinism and exact accounting, BOTS kernels as dependency
// graphs matching their taskwait formulations bit-for-bit, serve-side
// graph handles, and the registry's graph spec keys.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "bots/graph_workloads.hpp"
#include "core/task_graph.hpp"
#include "registry/registry.hpp"
#include "serve/service.hpp"

namespace xtask {
namespace {

Config cfg4(DlbKind dlb = DlbKind::kWorkSteal) {
  Config cfg;
  cfg.num_threads = 4;
  cfg.numa_zones = 2;
  cfg.dlb = dlb;
  cfg.dlb_cfg.t_interval = 64;
  return cfg;
}

// --- structure -------------------------------------------------------------

TEST(TaskGraph, DiamondStructure) {
  int a = 0, b = 0;
  TaskGraph g = TaskGraph::record([&](TaskGraph::Capture& cap) {
    cap.node([](TaskContext&) {}, {dout(&a)});                 // source
    cap.node([](TaskContext&) {}, {din(&a), dout(&b)});        // left
    cap.node([](TaskContext&) {}, {din(&a)});                  // right
    cap.node([](TaskContext&) {}, {din(&b), dinout(&a)});      // sink
  });
  EXPECT_TRUE(g.sealed());
  EXPECT_EQ(g.num_nodes(), 4u);
  // Edges: 0->1 and 0->2 (readers of a after its writer), 1->3 (b's
  // writer), and the sink's dinout(a) collapsing a's frontier with edges
  // from readers {1, 2} (the 1->3 duplicate is a legitimate parallel edge
  // over two addresses). Roots: just the source; longest chain 0->1->3.
  EXPECT_EQ(g.num_roots(), 1u);
  EXPECT_EQ(g.critical_path(), 3u);
  EXPECT_GE(g.num_edges(), 4u);
}

TEST(TaskGraph, MoveTransfersOwnership) {
  int a = 0;
  TaskGraph g = TaskGraph::record([&](TaskGraph::Capture& cap) {
    cap.node([](TaskContext&) {}, {dout(&a)});
    cap.node([](TaskContext&) {}, {din(&a)});
  });
  TaskGraph h = std::move(g);
  EXPECT_TRUE(h.sealed());
  EXPECT_EQ(h.num_nodes(), 2u);
  EXPECT_EQ(g.num_nodes(), 0u);  // NOLINT(bugprone-use-after-move): pinned
}

TEST(TaskGraph, EmptyGraphReplaysWithoutHanging) {
  const auto rt_h = RuntimeRegistry::make_xtask(cfg4());
  TaskGraph g = TaskGraph::record([](TaskGraph::Capture&) {});
  g.replay(*rt_h, 3);
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.critical_path(), 0u);
}

// --- capture & replay semantics --------------------------------------------

TEST(TaskGraph, CaptureExecutesTheWorkloadOnce) {
  const auto rt_h = RuntimeRegistry::make_xtask(cfg4());
  std::atomic<int> runs{0};
  int tok = 0;
  TaskGraph g = TaskGraph::capture(*rt_h, [&](TaskGraph::Capture& cap) {
    for (int i = 0; i < 8; ++i)
      cap.node([&runs](TaskContext&) { runs.fetch_add(1); }, {dinout(&tok)});
  });
  EXPECT_EQ(runs.load(), 8);  // capture == one execution
  g.replay(*rt_h, 2);
  EXPECT_EQ(runs.load(), 24);
}

TEST(TaskGraph, ReplayDeterminism100) {
  // Same graph, 100 replays: every node executes exactly once per replay
  // (identical executed-node counts), and runtime task accounting closes
  // exactly (submitted == executed). A wide-ish DAG with chains, a
  // reduction fan-in, and independent islands exercises the release path
  // across workers; run under TSAN in CI.
  const auto rt_h = RuntimeRegistry::make_xtask(cfg4(DlbKind::kAdaptive));
  Runtime& rt = *rt_h;
  constexpr int kChains = 8, kLen = 8;
  constexpr int kNodes = kChains * kLen + 1;  // + reduction sink
  auto counts = std::make_unique<std::atomic<std::uint32_t>[]>(kNodes);
  for (int i = 0; i < kNodes; ++i) counts[i].store(0);
  int tokens[kChains];
  TaskGraph g = TaskGraph::record([&](TaskGraph::Capture& cap) {
    for (int c = 0; c < kChains; ++c)
      for (int s = 0; s < kLen; ++s)
        cap.node(
            [p = &counts[c * kLen + s]](TaskContext&) { p->fetch_add(1); },
            {dinout(&tokens[c])});
    std::initializer_list<Dep> all = {din(&tokens[0]), din(&tokens[1]),
                                      din(&tokens[2]), din(&tokens[3]),
                                      din(&tokens[4]), din(&tokens[5]),
                                      din(&tokens[6]), din(&tokens[7])};
    cap.node([p = &counts[kNodes - 1]](TaskContext&) { p->fetch_add(1); },
             all);
  });
  EXPECT_EQ(g.num_nodes(), static_cast<std::uint32_t>(kNodes));
  EXPECT_EQ(g.num_roots(), static_cast<std::uint32_t>(kChains));
  EXPECT_EQ(g.critical_path(), static_cast<std::uint32_t>(kLen + 1));

  constexpr int kReplays = 100;
  g.replay(rt, kReplays);
  for (int i = 0; i < kNodes; ++i)
    ASSERT_EQ(counts[i].load(), static_cast<std::uint32_t>(kReplays))
        << "node " << i;

  const Counters total = rt.profiler().total_counters();
  EXPECT_EQ(total.ntasks_created, total.ntasks_executed);  // exact books
  EXPECT_EQ(total.ngraph_replays, static_cast<std::uint64_t>(kReplays));
  EXPECT_EQ(total.ngraph_nodes_run,
            static_cast<std::uint64_t>(kReplays) * kNodes);
  EXPECT_EQ(total.ngraph_edges_released,
            static_cast<std::uint64_t>(kReplays) * g.num_edges());
}

TEST(TaskGraph, ArmHookFiresExactlyOncePerReplay) {
  const auto rt_h = RuntimeRegistry::make_xtask(cfg4());
  int tok = 0;
  TaskGraph g = TaskGraph::record([&](TaskGraph::Capture& cap) {
    for (int i = 0; i < 16; ++i)
      cap.node([](TaskContext&) {}, {dinout(&tok)});
  });
  TaskGraph::Instance inst(g);
  EXPECT_TRUE(inst.idle());
  std::atomic<int> fired{0};
  for (int r = 0; r < 5; ++r) {
    inst.reset();
    inst.arm([](void* arg) { static_cast<std::atomic<int>*>(arg)->fetch_add(1); },
             &fired);
    rt_h->run([&](TaskContext& ctx) { g.replay_async(ctx, &inst); });
    EXPECT_TRUE(inst.idle());
    EXPECT_EQ(fired.load(), r + 1);
  }
}

// --- BOTS kernels as dependency graphs -------------------------------------

TEST(TaskGraph, SparseLuDepsMatchesTaskwaitExactly) {
  bots::SparseLuParams p;
  p.blocks = 8;
  p.block_size = 8;
  const double serial = bots::sparselu_serial(p);
  const auto rt_h = RuntimeRegistry::make_xtask(cfg4(DlbKind::kAdaptive));
  double parallel, deps;
  {
    const auto rt2 = RuntimeRegistry::make_xtask(cfg4(DlbKind::kAdaptive));
    parallel = bots::sparselu_parallel(*rt2, p);
  }
  deps = bots::sparselu_deps(*rt_h, p);
  EXPECT_EQ(parallel, serial);
  EXPECT_EQ(deps, serial);  // bit-identical: same kernels, same order
}

TEST(TaskGraph, SparseLuGraphReplayMatchesTaskwaitExactly) {
  bots::SparseLuParams p;
  p.blocks = 8;
  p.block_size = 8;
  const double serial = bots::sparselu_serial(p);
  const auto rt_h = RuntimeRegistry::make_xtask(cfg4(DlbKind::kAdaptive));
  bots::SparseMatrix m(p, /*fill=*/true);
  TaskGraph g = bots::sparselu_record(&m);
  EXPECT_GT(g.num_edges(), g.num_nodes());  // densely chained DAG
  g.replay(*rt_h, 1);  // first replay = the factorization
  EXPECT_EQ(m.checksum(), serial);
}

TEST(TaskGraph, StrassenDepsAndGraphMatchParallelExactly) {
  constexpr std::size_t kN = 128, kCutoff = 32;
  const std::vector<double> a = bots::strassen_input(kN, 3);
  const std::vector<double> b = bots::strassen_input(kN, 5);
  std::vector<double> ref;
  {
    const auto rt = RuntimeRegistry::make_xtask(cfg4());
    ref = bots::strassen_parallel(*rt, a, b, kN, kCutoff);
  }
  const auto rt_h = RuntimeRegistry::make_xtask(cfg4(DlbKind::kAdaptive));
  const std::vector<double> viadeps =
      bots::strassen_deps(*rt_h, a, b, kN, kCutoff);
  ASSERT_EQ(viadeps.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i)
    ASSERT_EQ(viadeps[i], ref[i]) << "deps element " << i;

  std::vector<double> c(kN * kN, 0.0);
  bots::StrassenDepState s(a.data(), b.data(), c.data(), kN, kCutoff);
  TaskGraph g = bots::strassen_record(&s);
  EXPECT_EQ(g.num_nodes(), 21u);  // 10 preps + 7 muls + 4 combines
  EXPECT_EQ(g.critical_path(), 3u);
  g.replay(*rt_h, 1);
  for (std::size_t i = 0; i < ref.size(); ++i)
    ASSERT_EQ(c[i], ref[i]) << "graph element " << i;
}

// --- serve front-end: graph-shaped requests --------------------------------

TEST(TaskGraphServe, GraphRequestsAccountExactly) {
  serve::ServeConfig cfg;
  cfg.runtime_spec = "xtask:threads=2,dlb=naws";
  cfg.tenants = TenantSpec::parse_list(
      "a:rate=1000000,quota=100000,burst=100000");
  serve::TaskService svc(std::move(cfg));

  static std::atomic<std::uint64_t> node_runs{0};
  node_runs.store(0);
  int tok = 0;
  constexpr std::uint32_t kGraphNodes = 12;
  TaskGraph g = TaskGraph::record([&](TaskGraph::Capture& cap) {
    for (std::uint32_t i = 0; i < kGraphNodes; ++i)
      cap.node([](TaskContext&) { node_runs.fetch_add(1); }, {dinout(&tok)});
  });
  const std::uint32_t handle = svc.register_graph(std::move(g));
  ASSERT_EQ(handle, 1u);
  EXPECT_EQ(svc.num_graphs(), 1);

  constexpr int kRequests = 300;
  for (int i = 0; i < kRequests; ++i) {
    serve::Request r;
    r.graph = handle;
    svc.submit(0, r);
  }
  svc.stop();

  const serve::TenantStats s = svc.tenant_stats(0);
  EXPECT_EQ(s.submitted, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(s.executed + s.shed + s.rejected, s.submitted);
  EXPECT_EQ(s.in_flight, 0u);
  // Every executed graph request ran the whole DAG exactly once.
  EXPECT_EQ(node_runs.load(), s.executed * kGraphNodes);
  EXPECT_EQ(svc.graph_replays(handle), s.executed);
  EXPECT_GT(s.executed, 0u);
}

TEST(TaskGraphServe, UnknownGraphHandleIsRejected) {
  serve::ServeConfig cfg;
  cfg.runtime_spec = "xtask:threads=2";
  cfg.tenants = TenantSpec::parse_list("a:rate=1000,quota=100");
  serve::TaskService svc(std::move(cfg));
  serve::Request r;
  r.graph = 7;  // never registered
  const serve::Submit s = svc.submit(0, r);
  EXPECT_EQ(s.status, serve::SubmitStatus::kRejected);
  EXPECT_EQ(s.retry_after_us, 0u);  // client bug, not pressure
  svc.stop();
  EXPECT_EQ(svc.tenant_stats(0).rejected, 1u);
}

TEST(TaskGraphServe, RegisterGraphValidates) {
  serve::ServeConfig cfg;
  cfg.runtime_spec = "xtask:threads=2";
  cfg.tenants = TenantSpec::parse_list("a:rate=1000,quota=100");
  serve::TaskService svc(std::move(cfg));
  EXPECT_THROW(svc.register_graph(TaskGraph{}), std::invalid_argument);
  svc.stop();
}

// --- registry grammar ------------------------------------------------------

TEST(TaskGraphRegistry, GraphKeysParse) {
  const Config off = RuntimeRegistry::xtask_config(BackendSpec::parse("xtask"));
  EXPECT_EQ(off.graph_mode, GraphMode::kOff);
  EXPECT_EQ(off.graph_replays, 1);

  const Config cap = RuntimeRegistry::xtask_config(
      BackendSpec::parse("xtask:graph=capture"));
  EXPECT_EQ(cap.graph_mode, GraphMode::kCapture);

  const Config rep = RuntimeRegistry::xtask_config(
      BackendSpec::parse("xtask:graph=replay,greplays=16"));
  EXPECT_EQ(rep.graph_mode, GraphMode::kReplay);
  EXPECT_EQ(rep.graph_replays, 16);
}

TEST(TaskGraphRegistry, GraphKeysValidate) {
  EXPECT_THROW(RuntimeRegistry::xtask_config(
                   BackendSpec::parse("xtask:graph=sometimes")),
               std::invalid_argument);
  // greplays without graph=replay is a contradiction, not a default.
  EXPECT_THROW(
      RuntimeRegistry::xtask_config(BackendSpec::parse("xtask:greplays=4")),
      std::invalid_argument);
  EXPECT_THROW(RuntimeRegistry::xtask_config(
                   BackendSpec::parse("xtask:graph=capture,greplays=4")),
               std::invalid_argument);
  EXPECT_THROW(
      RuntimeRegistry::xtask_config(BackendSpec::parse("xtask:greplays=0")),
      std::invalid_argument);
  // Typo'd key fails loudly through check_keys.
  EXPECT_THROW(
      RuntimeRegistry::xtask_config(BackendSpec::parse("xtask:grpah=replay")),
      std::invalid_argument);
}

TEST(TaskGraphRegistry, SmokeSpecsIncludeGraphAndStayValid) {
  bool saw_graph = false;
  for (const std::string& spec : RuntimeRegistry::smoke_specs()) {
    if (spec.find("graph=") != std::string::npos) saw_graph = true;
    const BackendSpec parsed = BackendSpec::parse(spec);
    if (parsed.backend == "xtask")
      EXPECT_NO_THROW(RuntimeRegistry::xtask_config(parsed)) << spec;
  }
  EXPECT_TRUE(saw_graph);
}

}  // namespace
}  // namespace xtask
