// Cross-runtime BOTS matrix: every kernel against every runtime flavour
// (xtask/XGOMPTB, xtask/XGOMP, GOMP-like, LOMP-like, XLOMP-mode), each
// checked against the serial reference — the "BOTS compiles against any
// OpenMP runtime" property the paper's methodology rests on. Flavours are
// registry spec strings; the kernels run through the type-erased
// AnyRuntime handle, so this file also proves the registry surface is
// enough to host the whole suite.
#include <gtest/gtest.h>

#include "bots/bots.hpp"
#include "registry/registry.hpp"

namespace xtask {
namespace {

struct Flavor {
  const char* name;
  const char* spec;
};

constexpr Flavor kFlavors[] = {
    {"xgomptb", "xtask:threads=4,zones=2"},
    {"xgomp", "xtask:threads=4,zones=2,barrier=central,alloc=malloc"},
    {"xgomptb_naws", "xtask:threads=4,zones=2,dlb=naws,tint=128"},
    {"gomp", "gomp:threads=4"},
    {"lomp", "lomp:threads=4"},
    {"xlomp", "xlomp:threads=4"},
};

/// Run `kernel(rt)` on the requested runtime flavour through the
/// type-erased registry handle.
template <typename KernelFn>
void with_runtime(const Flavor& f, KernelFn&& kernel) {
  AnyRuntime rt = RuntimeRegistry::make(f.spec);
  kernel(rt);
}

class BotsMatrix : public ::testing::TestWithParam<Flavor> {};

TEST_P(BotsMatrix, Fib) {
  with_runtime(GetParam(), [](auto& rt) {
    EXPECT_EQ(bots::fib_parallel(rt, 16), bots::fib_serial(16));
  });
}

TEST_P(BotsMatrix, NQueens) {
  with_runtime(GetParam(), [](auto& rt) {
    EXPECT_EQ(bots::nqueens_parallel(rt, 8, 2), 92);
  });
}

TEST_P(BotsMatrix, Fft) {
  with_runtime(GetParam(), [](auto& rt) {
    auto in = bots::fft_input(1024, 3);
    auto expect = bots::fft_serial(in);
    auto got = bots::fft_parallel(rt, in, 128);
    for (std::size_t i = 0; i < in.size(); ++i) {
      ASSERT_NEAR(got[i].real(), expect[i].real(), 1e-9);
      ASSERT_NEAR(got[i].imag(), expect[i].imag(), 1e-9);
    }
  });
}

TEST_P(BotsMatrix, Floorplan) {
  with_runtime(GetParam(), [](auto& rt) {
    auto cells = bots::floorplan_cells(6);
    EXPECT_EQ(bots::floorplan_parallel(rt, cells, 2),
              bots::floorplan_serial(cells));
  });
}

TEST_P(BotsMatrix, Health) {
  with_runtime(GetParam(), [](auto& rt) {
    bots::HealthParams p;
    p.levels = 3;
    p.timesteps = 4;
    const auto expect = bots::health_serial(p);
    const auto got = bots::health_parallel(rt, p);
    EXPECT_EQ(got.generated, expect.generated);
    EXPECT_EQ(got.work_sum, expect.work_sum);
  });
}

TEST_P(BotsMatrix, Uts) {
  with_runtime(GetParam(), [](auto& rt) {
    bots::UtsParams p;
    p.root_children = 20;
    p.q = 0.15;
    EXPECT_EQ(bots::uts_parallel(rt, p), bots::uts_serial(p));
  });
}

TEST_P(BotsMatrix, Strassen) {
  with_runtime(GetParam(), [](auto& rt) {
    const std::size_t n = 64;
    auto a = bots::strassen_input(n, 5);
    auto b = bots::strassen_input(n, 6);
    auto expect = bots::matmul_serial(a, b, n);
    auto got = bots::strassen_parallel(rt, a, b, n, 16);
    for (std::size_t i = 0; i < got.size(); ++i)
      ASSERT_NEAR(got[i], expect[i], 1e-9);
  });
}

TEST_P(BotsMatrix, Sort) {
  with_runtime(GetParam(), [](auto& rt) {
    auto data = bots::sort_input(20'000, 8);
    auto expect = data;
    std::sort(expect.begin(), expect.end());
    ASSERT_TRUE(bots::sort_parallel(rt, data, 512, 512));
    EXPECT_EQ(data, expect);
  });
}

TEST_P(BotsMatrix, Alignment) {
  with_runtime(GetParam(), [](auto& rt) {
    auto seqs = bots::alignment_sequences(6, 30, 60, 21);
    EXPECT_EQ(bots::alignment_parallel(rt, seqs),
              bots::alignment_serial(seqs));
  });
}

INSTANTIATE_TEST_SUITE_P(AllRuntimes, BotsMatrix,
                         ::testing::ValuesIn(kFlavors),
                         [](const ::testing::TestParamInfo<Flavor>& info) {
                           return info.param.name;
                         });

}  // namespace
}  // namespace xtask
