// Golden-trace regression suite (label `trace`): record a scheduler trace
// from the real runtime, replay it — on the real runtime through the
// type-erased registry surface and on the simulator — and demand the
// replayed execution reproduces the recorded task DAG exactly.
//
// The invariant under test is *structural*: a trace's spawn forest, hashed
// by Trace::dag_fingerprint (ids, workers, timestamps and costs excluded),
// must survive record -> replay -> re-record across every DLB protocol
// (NA-RP, NA-WS, adaptive). Timings legitimately differ per run and per
// backend; the DAG and the exact task counts may not.
//
// Three checked-in golden traces (tests/golden/*.jsonl) pin known
// workloads — fib recursion, sparselu's phased block sweep, a bursty
// serve-style arrival pattern — so a format or replay regression is caught
// against files an older build wrote, not just against this build's own
// recordings. Regenerate with:
//   XTASK_REGEN_GOLDENS=1 ./test_trace_replay --gtest_also_run_disabled_tests
//       --gtest_filter='*RegenerateGoldenFiles*'
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "core/runtime.hpp"
#include "registry/registry.hpp"
#include "sim/engine.hpp"
#include "trace/format.hpp"
#include "trace/recorder.hpp"
#include "trace/replay.hpp"

#ifndef XTASK_GOLDEN_DIR
#define XTASK_GOLDEN_DIR "tests/golden"
#endif

namespace xtask {
namespace {

// ---------------------------------------------------------------------------
// Reference workloads. Structure is a pure function of the workload code —
// never of worker ids, timing, or scheduling — so the recorded DAG is
// deterministic on every backend even though the schedule is not.

void fib_task(AnyContext& ctx, int n) {
  if (n < 2) {
    trace::spin_cycles(400);
    return;
  }
  ctx.spawn([n](AnyContext& c) { fib_task(c, n - 1); });
  ctx.spawn([n](AnyContext& c) { fib_task(c, n - 2); });
  trace::spin_cycles(200);
  ctx.taskwait();
}

/// Phased block sweep in the shape of BOTS sparselu: per elimination step
/// a diagonal factor, then a row/column panel wave, then the trailing
/// update wave, with a taskwait barrier between waves.
void sparselu_root(AnyContext& ctx, int nblocks) {
  for (int k = 0; k < nblocks; ++k) {
    trace::spin_cycles(1'500);  // lu0 on the diagonal block
    for (int j = k + 1; j < nblocks; ++j) {
      ctx.spawn([](AnyContext&) { trace::spin_cycles(900); });   // fwd
      ctx.spawn([](AnyContext&) { trace::spin_cycles(1'100); }); // bdiv
    }
    ctx.taskwait();
    for (int i = k + 1; i < nblocks; ++i)
      for (int j = k + 1; j < nblocks; ++j)
        ctx.spawn([](AnyContext&) { trace::spin_cycles(700); }); // bmod
    ctx.taskwait();
  }
}

/// Serve-style bursts: seeded SplitMix64 drives burst sizes and per-task
/// cost classes, and a third of the tasks fan out into two subtasks — the
/// irregular, bursty arrival pattern the overload experiments use.
void bursty_serve_root(AnyContext& ctx, std::uint64_t seed, int bursts) {
  std::uint64_t s = seed;
  const auto next = [&s]() {
    std::uint64_t z = (s += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  };
  for (int b = 0; b < bursts; ++b) {
    const int burst = 4 + static_cast<int>(next() % 12);
    for (int i = 0; i < burst; ++i) {
      const std::uint64_t cost = 500 * (1 + next() % 8);
      const bool fan_out = next() % 3 == 0;
      ctx.spawn([cost, fan_out](AnyContext& c) {
        trace::spin_cycles(cost);
        if (fan_out) {
          c.spawn([cost](AnyContext&) { trace::spin_cycles(cost / 2); });
          c.spawn([cost](AnyContext&) { trace::spin_cycles(cost / 2); });
          c.taskwait();
        }
      });
    }
    ctx.taskwait();
  }
}

struct GoldenCase {
  const char* file;
  void (*root)(AnyContext&);
};

void golden_fib(AnyContext& ctx) { fib_task(ctx, 12); }
void golden_sparselu(AnyContext& ctx) { sparselu_root(ctx, 5); }
void golden_bursty(AnyContext& ctx) {
  bursty_serve_root(ctx, 0xB1657Eull, 6);
}

const GoldenCase kGoldens[] = {
    {"fib.jsonl", &golden_fib},
    {"sparselu.jsonl", &golden_sparselu},
    {"bursty_serve.jsonl", &golden_bursty},
};

/// The DLB protocols the replay must hold across (§IV): redirect-push,
/// work-steal, and the adaptive layer. All record while they run.
const char* kRecordingBackends[] = {
    "xtask:topo=2x2,dlb=narp,trace=record",
    "xtask:topo=2x2,dlb=naws,tint=128,trace=record",
    "xtask:topo=2x2,dlb=adaptive,trace=record",
};

/// Record `root` on `spec` (which must name a trace=record xtask backend)
/// and return the built trace.
trace::Trace record(const std::string& spec,
                    const std::function<void(AnyContext&)>& root) {
  AnyRuntime rt = RuntimeRegistry::make(spec);
  Runtime* xrt = rt.get_if<Runtime>();
  if (xrt == nullptr || xrt->tracer() == nullptr) {
    ADD_FAILURE() << "spec '" << spec << "' did not produce a recording "
                  << "xtask runtime";
    return {};
  }
  rt.run(root);
  return xrt->tracer()->build();
}

std::string golden_path(const char* file) {
  return std::string(XTASK_GOLDEN_DIR) + "/" + file;
}

// ---------------------------------------------------------------------------
// Recording from the live runtime.

TEST(TraceRecord, RecordedTraceIsWellFormedAndExact) {
  const trace::Trace tr =
      record("xtask:topo=2x2,trace=record", &golden_fib);
  ASSERT_NO_THROW(tr.validate());
  EXPECT_EQ(tr.nworkers, 4u);
  EXPECT_GT(tr.cycles_per_us, 0.0);
  EXPECT_EQ(tr.backend, "xtask");
  // fib(12) tasks: 2*fib_nodes(12)-1 spawns below the root, plus the root.
  const std::function<std::uint64_t(int)> nodes = [&](int n) -> std::uint64_t {
    return n < 2 ? 1 : 1 + nodes(n - 1) + nodes(n - 2);
  };
  const std::uint64_t expect = nodes(12) - 1 + 1;  // root body is fib(12)
  EXPECT_EQ(tr.spawn_count(), expect);
  // Every spawn executed exactly once — counts are exact, not approximate.
  EXPECT_EQ(tr.exec_count(), tr.spawn_count());
}

TEST(TraceRecord, SelfCostExcludesWaitPollingAndNestedChildren) {
  // One parent spins S cycles and taskwaits on a child spinning C; with
  // pause/resume bracketing the wait loop, the parent's recorded self cost
  // must be ~S — not S + C + the (unbounded) poll time. Single worker
  // forces the child to run nested inside the parent's taskwait, which is
  // exactly the case frame pausing exists for.
  const trace::Trace tr = record(
      "xtask:threads=1,trace=record", [](AnyContext& ctx) {
        ctx.spawn([](AnyContext&) { trace::spin_cycles(2'000'000); });
        trace::spin_cycles(100'000);
        ctx.taskwait();
      });
  std::uint64_t root_self = 0, child_self = 0;
  for (const trace::TraceRecord& r : tr.records) {
    if (r.kind != static_cast<std::uint8_t>(trace::RecordKind::kExec))
      continue;
    // Two exec records; the cost classes are far enough apart (100k vs 2M)
    // to identify each regardless of id assignment.
    if (r.ref >= 1'500'000)
      child_self = r.ref;
    else
      root_self = r.ref;
  }
  ASSERT_GT(child_self, 0u);
  ASSERT_GT(root_self, 0u);
  // Parent self ≈ 100k: allow generous slack for the spin poll overshoot
  // and hook overhead, but it must be nowhere near the child's 2M.
  EXPECT_LT(root_self, 1'000'000u);
  EXPECT_GE(root_self, 100'000u);
}

TEST(TraceRecord, ClearReArmsTheRecorderBetweenRegions) {
  AnyRuntime rt = RuntimeRegistry::make("xtask:topo=2x2,trace=record");
  Runtime* xrt = rt.get_if<Runtime>();
  ASSERT_NE(xrt, nullptr);
  rt.run(&golden_fib);
  const trace::Trace first = xrt->tracer()->build();
  xrt->tracer()->clear();
  rt.run(&golden_fib);
  const trace::Trace second = xrt->tracer()->build();
  // Same workload, fresh buffers: same structure, not an accumulation.
  EXPECT_EQ(second.spawn_count(), first.spawn_count());
  EXPECT_EQ(second.dag_fingerprint(), first.dag_fingerprint());
}

TEST(TraceRecord, TracefileSinkIsWrittenOnShutdown) {
  const std::string path = "/tmp/xtask_replay_sink_test.jsonl";
  std::remove(path.c_str());
  {
    AnyRuntime rt = RuntimeRegistry::make(
        "xtask:topo=2x2,trace=record,tracefile=" + path);
    rt.run(&golden_fib);
    // The dump happens in the runtime destructor (end of this scope).
  }
  const trace::Trace tr = trace::read_file(path);
  ASSERT_NO_THROW(tr.validate());
  EXPECT_GT(tr.spawn_count(), 0u);
  EXPECT_EQ(tr.exec_count(), tr.spawn_count());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Record -> replay -> re-record: the DAG must survive, exactly.

TEST(TraceReplay, RerecordedReplayReproducesDagAcrossProtocols) {
  for (const GoldenCase& g : kGoldens) {
    const trace::Trace reference =
        record("xtask:topo=2x2,trace=record", g.root);
    const std::uint64_t want_fp = reference.dag_fingerprint();
    const trace::ReplayTree tree = trace::ReplayTree::build(reference);
    ASSERT_EQ(tree.size(), reference.spawn_count()) << g.file;
    for (const char* backend : kRecordingBackends) {
      AnyRuntime rt = RuntimeRegistry::make(backend);
      Runtime* xrt = rt.get_if<Runtime>();
      ASSERT_NE(xrt, nullptr) << backend;
      const trace::RealReplayResult res = trace::replay_real(rt, tree, 0.25);
      EXPECT_EQ(res.tasks, tree.size()) << backend;
      const trace::Trace rerec = xrt->tracer()->build();
      ASSERT_NO_THROW(rerec.validate()) << backend << " " << g.file;
      // Exact counts: every recorded task replays exactly once.
      EXPECT_EQ(rerec.spawn_count(), reference.spawn_count())
          << backend << " " << g.file;
      EXPECT_EQ(rerec.exec_count(), reference.exec_count())
          << backend << " " << g.file;
      // Identical DAG, even though every id, worker and timing differs.
      EXPECT_EQ(rerec.dag_fingerprint(), want_fp)
          << backend << " " << g.file;
    }
  }
}

TEST(TraceReplay, ReplayIsIdempotentThroughASerializedRoundTrip) {
  // record -> serialize -> parse -> replay -> re-record -> serialize must
  // reach the same fingerprint: the on-disk formats carry everything
  // structural.
  const trace::Trace reference =
      record("xtask:topo=2x2,trace=record", &golden_bursty);
  std::stringstream ss;
  trace::write_jsonl(reference, ss);
  const trace::Trace parsed = trace::read_jsonl(ss);
  const trace::ReplayTree tree = trace::ReplayTree::build(parsed);
  const trace::Trace rerec = [&] {
    AnyRuntime rt = RuntimeRegistry::make(kRecordingBackends[1]);
    trace::replay_real(rt, tree, 0.25);
    return rt.get_if<Runtime>()->tracer()->build();
  }();
  EXPECT_EQ(rerec.dag_fingerprint(), reference.dag_fingerprint());
  EXPECT_EQ(rerec.spawn_count(), reference.spawn_count());
}

// ---------------------------------------------------------------------------
// Golden files: regressions are caught against committed artifacts.

TEST(TraceGolden, GoldenFilesParseValidateAndFingerprint) {
  for (const GoldenCase& g : kGoldens) {
    SCOPED_TRACE(g.file);
    trace::Trace tr;
    ASSERT_NO_THROW(tr = trace::read_file(golden_path(g.file)));
    ASSERT_NO_THROW(tr.validate());
    EXPECT_GT(tr.spawn_count(), 0u);
    EXPECT_EQ(tr.exec_count(), tr.spawn_count());
    EXPECT_NE(tr.dag_fingerprint(), 0u);
  }
}

TEST(TraceGolden, GoldenStructureMatchesLiveWorkload) {
  // The committed trace and a fresh recording of the same workload must
  // fingerprint identically — this is what pins the recorder's structural
  // output across refactors.
  for (const GoldenCase& g : kGoldens) {
    SCOPED_TRACE(g.file);
    const trace::Trace golden = trace::read_file(golden_path(g.file));
    const trace::Trace live =
        record("xtask:topo=2x2,trace=record", g.root);
    EXPECT_EQ(live.spawn_count(), golden.spawn_count());
    EXPECT_EQ(live.dag_fingerprint(), golden.dag_fingerprint());
  }
}

TEST(TraceGolden, GoldenReplaysOnEveryProtocolWithExactCounts) {
  for (const GoldenCase& g : kGoldens) {
    SCOPED_TRACE(g.file);
    const trace::Trace golden = trace::read_file(golden_path(g.file));
    const trace::ReplayTree tree = trace::ReplayTree::build(golden);
    for (const char* backend : kRecordingBackends) {
      AnyRuntime rt = RuntimeRegistry::make(backend);
      const trace::RealReplayResult res = trace::replay_real(rt, tree, 0.25);
      EXPECT_EQ(res.tasks, tree.size()) << backend;
      const trace::Trace rerec = rt.get_if<Runtime>()->tracer()->build();
      EXPECT_EQ(rerec.spawn_count(), golden.spawn_count()) << backend;
      EXPECT_EQ(rerec.exec_count(), golden.exec_count()) << backend;
      EXPECT_EQ(rerec.dag_fingerprint(), golden.dag_fingerprint())
          << backend;
    }
  }
}

TEST(TraceGolden, GoldenReplaysOnSimulatorConservingTasksAndWork) {
  for (const GoldenCase& g : kGoldens) {
    SCOPED_TRACE(g.file);
    const trace::Trace golden = trace::read_file(golden_path(g.file));
    const trace::ReplayTree tree = trace::ReplayTree::build(golden);
    sim::SimConfig cfg;
    cfg.machine.topo = Topology::synthetic(8, 2);
    cfg.dlb = sim::SimDlb::kWorkSteal;
    cfg.record_trace = true;
    sim::SimEngine eng(cfg);
    const sim::SimResult res = trace::replay_sim(cfg, tree, 1.0);
    // Task conservation: the sim runs exactly the recorded task set.
    EXPECT_EQ(res.tasks, tree.size());
    // Work conservation: busy cycles equal the trace's total self cost
    // (mem_intensity=0 means no NUMA inflation distorts the sum).
    std::uint64_t busy = 0;
    for (const std::uint64_t b : res.busy_per_worker) busy += b;
    EXPECT_EQ(busy, tree.total_self_cycles());
  }
}

TEST(TraceGolden, SimReplayRecordsAReplayableTraceItself) {
  // Close the loop the other way: a sim replay of a golden, itself
  // recorded, reproduces the golden's DAG — the two executors agree on
  // structure in both directions.
  const trace::Trace golden = trace::read_file(golden_path("fib.jsonl"));
  const trace::ReplayTree tree = trace::ReplayTree::build(golden);
  sim::SimConfig cfg;
  cfg.machine.topo = Topology::synthetic(8, 2);
  cfg.record_trace = true;
  sim::SimEngine eng(cfg);
  eng.run([&tree](sim::SimContext& ctx) {
    // Single root: the region root is the trace root (mirrors replay_sim).
    for (const std::uint32_t c : tree.nodes[tree.roots[0]].children)
      ctx.spawn([&tree, c](sim::SimContext& inner) {
        const std::function<void(sim::SimContext&, std::uint32_t)> rec =
            [&tree, &rec](sim::SimContext& cc, std::uint32_t idx) {
              for (const std::uint32_t k : tree.nodes[idx].children)
                cc.spawn([&tree, &rec, k](sim::SimContext& i2) {
                  rec(i2, k);
                });
              cc.compute(tree.nodes[idx].self_cycles);
              if (!tree.nodes[idx].children.empty()) cc.taskwait();
            };
        rec(inner, c);
      });
    ctx.compute(tree.nodes[tree.roots[0]].self_cycles);
    ctx.taskwait();
  });
  EXPECT_EQ(eng.trace().dag_fingerprint(), golden.dag_fingerprint());
  EXPECT_EQ(eng.trace().spawn_count(), golden.spawn_count());
}

TEST(TraceReplay, WorkScaleScalesReplayedSelfCost) {
  const trace::Trace golden = trace::read_file(golden_path("fib.jsonl"));
  const trace::ReplayTree tree = trace::ReplayTree::build(golden);
  sim::SimConfig cfg;
  cfg.machine.topo = Topology::synthetic(4, 1);
  const sim::SimResult at1 = trace::replay_sim(cfg, tree, 1.0);
  const sim::SimResult at2 = trace::replay_sim(cfg, tree, 2.0);
  std::uint64_t busy1 = 0, busy2 = 0;
  for (const std::uint64_t b : at1.busy_per_worker) busy1 += b;
  for (const std::uint64_t b : at2.busy_per_worker) busy2 += b;
  EXPECT_NEAR(static_cast<double>(busy2),
              2.0 * static_cast<double>(busy1),
              0.01 * static_cast<double>(busy2));
}

// ---------------------------------------------------------------------------
// Golden regeneration (opt-in; see file header).

TEST(TraceGolden, DISABLED_RegenerateGoldenFiles) {
  if (std::getenv("XTASK_REGEN_GOLDENS") == nullptr)
    GTEST_SKIP() << "set XTASK_REGEN_GOLDENS=1 to rewrite tests/golden";
  for (const GoldenCase& g : kGoldens) {
    const trace::Trace tr =
        record("xtask:topo=2x2,trace=record", g.root);
    tr.validate();
    trace::write_file(tr, golden_path(g.file));
    std::fprintf(stderr, "wrote %s: %llu tasks, fingerprint %016llx\n",
                 golden_path(g.file).c_str(),
                 static_cast<unsigned long long>(tr.spawn_count()),
                 static_cast<unsigned long long>(tr.dag_fingerprint()));
  }
}

}  // namespace
}  // namespace xtask
