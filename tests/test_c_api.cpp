// C API facade tests, exercised through the C surface only (no C++ types
// cross the calls): recursion, taskwait, yield, stats, DLB modes.
#include <gtest/gtest.h>

#include <atomic>

#include "core/xtask_c.h"

namespace {

struct FibJob {
  int n;
  long result;
};

extern "C" void c_fib(xtask_context_t* ctx, void* arg) {
  auto* job = static_cast<FibJob*>(arg);
  if (job->n < 2) {
    job->result = job->n;
    return;
  }
  FibJob a{job->n - 1, 0};
  FibJob b{job->n - 2, 0};
  xtask_spawn(ctx, &c_fib, &a);
  xtask_spawn(ctx, &c_fib, &b);
  xtask_taskwait(ctx);
  job->result = a.result + b.result;
}

long fib_ref(int n) { return n < 2 ? n : fib_ref(n - 1) + fib_ref(n - 2); }

TEST(CApi, RecursiveFib) {
  xtask_runtime_t* rt = xtask_create(4, XTASK_DLB_NONE);
  FibJob job{18, -1};
  xtask_run(rt, &c_fib, &job);
  EXPECT_EQ(job.result, fib_ref(18));
  xtask_stats_t stats{};
  xtask_get_stats(rt, &stats);
  EXPECT_EQ(stats.tasks_created, stats.tasks_executed);
  EXPECT_GT(stats.tasks_created, 1000u);
  xtask_destroy(rt);
}

struct CounterJob {
  std::atomic<int>* counter;
  int spawns;
};

extern "C" void c_leaf(xtask_context_t*, void* arg) {
  static_cast<std::atomic<int>*>(arg)->fetch_add(1,
                                                 std::memory_order_relaxed);
}

extern "C" void c_fanout(xtask_context_t* ctx, void* arg) {
  auto* job = static_cast<CounterJob*>(arg);
  for (int i = 0; i < job->spawns; ++i)
    xtask_spawn(ctx, &c_leaf, job->counter);
  xtask_taskwait(ctx);
}

TEST(CApi, FanoutWithEachDlbMode) {
  for (xtask_dlb_t dlb : {XTASK_DLB_NONE, XTASK_DLB_REDIRECT_PUSH,
                          XTASK_DLB_WORK_STEAL, XTASK_DLB_ADAPTIVE}) {
    xtask_runtime_t* rt = xtask_create(4, dlb);
    std::atomic<int> counter{0};
    CounterJob job{&counter, 500};
    xtask_run(rt, &c_fanout, &job);
    EXPECT_EQ(counter.load(), 500) << "dlb mode " << dlb;
    xtask_destroy(rt);
  }
}

extern "C" void c_worker_id_probe(xtask_context_t* ctx, void* arg) {
  *static_cast<int*>(arg) = xtask_worker_id(ctx);
}

TEST(CApi, WorkerIdAndYield) {
  xtask_runtime_t* rt = xtask_create(2, XTASK_DLB_NONE);
  int wid = -1;
  xtask_run(rt, &c_worker_id_probe, &wid);
  EXPECT_EQ(wid, 0);  // the root runs on the calling thread = worker 0
  xtask_destroy(rt);
}

extern "C" void c_yield_probe(xtask_context_t* ctx, void* arg) {
  // Nothing queued: yield must report 0 and return.
  *static_cast<int*>(arg) = xtask_taskyield(ctx);
}

TEST(CApi, YieldWithEmptyQueues) {
  xtask_runtime_t* rt = xtask_create(1, XTASK_DLB_NONE);
  int yielded = 99;
  xtask_run(rt, &c_yield_probe, &yielded);
  EXPECT_EQ(yielded, 0);
  xtask_destroy(rt);
}

TEST(CApi, DefaultThreadCount) {
  xtask_runtime_t* rt = xtask_create(0, XTASK_DLB_NONE);  // auto
  FibJob job{10, -1};
  xtask_run(rt, &c_fib, &job);
  EXPECT_EQ(job.result, fib_ref(10));
  xtask_destroy(rt);
}

}  // namespace
