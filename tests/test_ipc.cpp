// In-process tests for the shared-memory transport (src/serve/ipc): the
// crash-tolerant ring's torn-slot classification in isolation, the
// SessionTracker lease machine, the TransportSpec grammar, and
// client/server end-to-end over a real shm segment — including lease
// expiry with orphan accounting, torn-slot skip, injected
// kTransportTorn/kClientVanish faults, and fail-fast on poison. The
// multi-process (fork+exec, SIGKILL) coverage lives in
// test_ipc_crash.cpp; everything here runs in one process so it can
// assert on both sides of the boundary directly.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/fault.hpp"
#include "registry/registry.hpp"
#include "serve/ipc/client.hpp"
#include "serve/ipc/server.hpp"

namespace xtask::ipc {
namespace {

using namespace std::chrono_literals;
using serve::ServeConfig;
using serve::TenantStats;

std::uint64_t echo_handler(std::uint32_t op, std::uint64_t arg,
                           std::uint64_t) {
  return arg + op + 1;
}

// Unique segment name per test so parallel ctest runs never collide.
std::string seg_name(const char* tag) {
  return std::string(tag) + "_" + std::to_string(::getpid());
}

ServeConfig small_cfg() {
  ServeConfig cfg;
  cfg.runtime_spec = "xtask:threads=2,dlb=naws";
  cfg.tenants = TenantSpec::parse_list(
      "alpha:rate=1000000,quota=100000,burst=100000;"
      "beta:rate=1000000,quota=100000,burst=100000");
  return cfg;
}

void expect_closed(const TenantStats& t) {
  EXPECT_EQ(t.submitted, t.executed + t.shed + t.rejected + t.orphaned)
      << "submitted=" << t.submitted << " executed=" << t.executed
      << " shed=" << t.shed << " rejected=" << t.rejected
      << " orphaned=" << t.orphaned;
  EXPECT_EQ(t.in_flight, 0u);
}

// --- CrashRingView in isolation ------------------------------------------

TEST(CrashRing, PushPopRoundTripsPayloadAndChecksum) {
  std::vector<char> mem(CrashRingView<ReqPayload>::bytes(8));
  CrashRingView<ReqPayload>::init_at(mem.data(), 8);
  CrashRingView<ReqPayload> ring;
  ring.attach(mem.data(), 8);

  ReqPayload p;
  p.id = 42;
  p.arg = 7;
  p.t_submit_ns = 1234;
  p.op = 3;
  p.tenant = 1;
  ASSERT_TRUE(ring.try_push(p, /*salt=*/5));

  ReqPayload out;
  ASSERT_EQ(ring.try_pop(&out, 5), CrashRingView<ReqPayload>::Pop::kOk);
  EXPECT_EQ(out.id, 42u);
  EXPECT_EQ(out.arg, 7u);
  EXPECT_EQ(out.t_submit_ns, 1234u);
  EXPECT_EQ(out.op, 3u);
  EXPECT_EQ(out.tenant, 1u);
  EXPECT_EQ(ring.try_pop(&out, 5), CrashRingView<ReqPayload>::Pop::kEmpty);
}

TEST(CrashRing, WrongSaltClassifiesTorn) {
  // A zombie producer publishing under a stale generation must never
  // deliver: the checksum salt is the generation.
  std::vector<char> mem(CrashRingView<ReqPayload>::bytes(8));
  CrashRingView<ReqPayload>::init_at(mem.data(), 8);
  CrashRingView<ReqPayload> ring;
  ring.attach(mem.data(), 8);
  ASSERT_TRUE(ring.try_push(ReqPayload{}, /*salt=*/1));
  ReqPayload out;
  EXPECT_EQ(ring.try_pop(&out, /*salt=*/2),
            CrashRingView<ReqPayload>::Pop::kTorn);
  // The torn slot was consumed; the ring is usable again.
  EXPECT_EQ(ring.try_pop(&out, 2), CrashRingView<ReqPayload>::Pop::kEmpty);
  ASSERT_TRUE(ring.try_push(ReqPayload{}, 2));
  EXPECT_EQ(ring.try_pop(&out, 2), CrashRingView<ReqPayload>::Pop::kOk);
}

TEST(CrashRing, ClaimedUnpublishedSlotIsNotReadyThenSkippable) {
  // The footprint of a client SIGKILLed between claim and publish: the
  // consumer sees kNotReady (never garbage), and skip_head() recovers the
  // ring. A request published BEHIND the dead claim is still delivered
  // afterwards — one death costs one slot, not the ring.
  std::vector<char> mem(CrashRingView<ReqPayload>::bytes(8));
  CrashRingView<ReqPayload>::init_at(mem.data(), 8);
  CrashRingView<ReqPayload> ring;
  ring.attach(mem.data(), 8);

  ASSERT_TRUE(ring.claim_and_abandon());
  ReqPayload live;
  live.id = 7;
  ASSERT_TRUE(ring.try_push(live, 0));

  ReqPayload out;
  EXPECT_EQ(ring.try_pop(&out, 0),
            CrashRingView<ReqPayload>::Pop::kNotReady);
  ring.skip_head();
  ASSERT_EQ(ring.try_pop(&out, 0), CrashRingView<ReqPayload>::Pop::kOk);
  EXPECT_EQ(out.id, 7u);
}

TEST(CrashRing, ReclaimClassifiesPublishedVsTorn) {
  std::vector<char> mem(CrashRingView<ReqPayload>::bytes(8));
  CrashRingView<ReqPayload>::init_at(mem.data(), 8);
  CrashRingView<ReqPayload> ring;
  ring.attach(mem.data(), 8);

  ReqPayload p;
  p.id = 1;
  ASSERT_TRUE(ring.try_push(p, 3));
  ASSERT_TRUE(ring.claim_and_abandon());
  p.id = 2;
  ASSERT_TRUE(ring.try_push(p, 3));

  std::vector<std::uint64_t> ids;
  const auto counts =
      ring.reclaim([&](const ReqPayload& r) { ids.push_back(r.id); }, 3);
  EXPECT_EQ(counts.published, 2u);
  EXPECT_EQ(counts.torn, 1u);
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], 1u);
  EXPECT_EQ(ids[1], 2u);
  // reclaim() reinitializes: full capacity is available again.
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.try_push(p, 4));
  EXPECT_FALSE(ring.try_push(p, 4));
}

// --- SessionTracker -------------------------------------------------------

TEST(SessionTrackerTest, HealthySuspectExpiredWalk) {
  SessionTracker tr(/*grace_ns=*/100);
  EXPECT_EQ(tr.observe(50, 60), SessionTracker::Verdict::kNone);
  // Deadline passed -> suspect; grace starts.
  EXPECT_EQ(tr.observe(61, 60), SessionTracker::Verdict::kBecameSuspect);
  EXPECT_TRUE(tr.suspect());
  // A refresh clears suspicion.
  EXPECT_EQ(tr.observe(70, 200), SessionTracker::Verdict::kSuspectCleared);
  // Overdue again; expires only after the grace elapses.
  EXPECT_EQ(tr.observe(201, 200), SessionTracker::Verdict::kBecameSuspect);
  EXPECT_EQ(tr.observe(250, 200), SessionTracker::Verdict::kNone);
  EXPECT_EQ(tr.observe(301, 200), SessionTracker::Verdict::kExpired);
  EXPECT_TRUE(tr.expired());
  // Terminal until reset.
  EXPECT_EQ(tr.observe(1000, 5000), SessionTracker::Verdict::kNone);
  tr.reset();
  EXPECT_EQ(tr.observe(1000, 5000), SessionTracker::Verdict::kNone);
  EXPECT_FALSE(tr.expired());
}

TEST(SessionTrackerTest, VanishInjectionExpiresImmediately) {
  SessionTracker tr(1'000'000'000);
  EXPECT_EQ(tr.observe(10, 1000, /*vanish=*/true),
            SessionTracker::Verdict::kExpired);
  EXPECT_TRUE(tr.expired());
}

// --- TransportSpec grammar ------------------------------------------------

TEST(TransportSpecTest, ParsesDefaultsAndRoundTrips) {
  const TransportSpec t = TransportSpec::parse("ipc=shm,seg=demo");
  EXPECT_EQ(t.kind, "shm");
  EXPECT_EQ(t.seg, "demo");
  EXPECT_EQ(t.sessions, 8u);
  EXPECT_EQ(t.ring, 256u);
  EXPECT_EQ(t.cmpl, 0u);
  EXPECT_EQ(t.effective_cmpl(), 512u);
  EXPECT_EQ(t.lease_ms, 100u);
  EXPECT_EQ(t.shm_name(), "/xtask_demo");
  // describe() is a parse fixpoint.
  const TransportSpec u = TransportSpec::parse(t.describe());
  EXPECT_EQ(u.describe(), t.describe());
}

TEST(TransportSpecTest, ParsesAllKeysAndRoundsRings) {
  const TransportSpec t = TransportSpec::parse(
      "ipc=shm,seg=x_1.a-b,sessions=3,ring=100,cmpl=9,lease_ms=250");
  EXPECT_EQ(t.sessions, 3u);
  EXPECT_EQ(t.ring, 128u);   // rounded up to pow2
  EXPECT_EQ(t.cmpl, 16u);    // rounded up to pow2
  EXPECT_EQ(t.lease_ms, 250u);
}

TEST(TransportSpecTest, DiagnosticsNameTheKeySet) {
  EXPECT_THROW(TransportSpec::parse("ipc=shm"), std::invalid_argument);
  EXPECT_THROW(TransportSpec::parse("seg=demo"), std::invalid_argument);
  EXPECT_THROW(TransportSpec::parse("ipc=tcp,seg=demo"),
               std::invalid_argument);
  EXPECT_THROW(TransportSpec::parse("ipc=shm,seg=bad/name"),
               std::invalid_argument);
  try {
    TransportSpec::parse("ipc=shm,seg=demo,bogus=1");
    FAIL() << "unknown key must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("lease_ms"), std::string::npos)
        << "diagnostic must name the known key set: " << e.what();
  }
}

// --- End-to-end over a real shm segment -----------------------------------

TEST(IpcEndToEnd, SubmitPollCompleteAndGracefulClose) {
  // cmpl sized to hold every completion: the client can stall in
  // submit-backoff without polling, so outstanding completions reach kN
  // and anything smaller would (by design) drop the overflow.
  TransportSpec tspec = TransportSpec::parse(
      "ipc=shm,seg=" + seg_name("e2e") + ",sessions=2,ring=64,cmpl=512");
  IpcServer server(small_cfg(), tspec, &echo_handler);

  Client c;
  ASSERT_EQ(c.connect(tspec, /*tenant=*/0), ClientStatus::kOk);
  constexpr std::uint64_t kN = 200;
  std::uint64_t completed = 0, ok = 0;
  CmplPayload out[64];
  for (std::uint64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(c.submit(/*op=*/2, /*arg=*/i, /*id=*/i,
                       now_ns() + 1'000'000'000ull),
              ClientStatus::kOk);
    completed += c.poll(out, 64);
  }
  const std::uint64_t deadline = now_ns() + 5'000'000'000ull;
  while (completed < kN && now_ns() < deadline) {
    const std::size_t n = c.poll(out, 64);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(out[i].status, kCmplDone);
      EXPECT_EQ(out[i].result, out[i].id + 3u);  // echo: arg + op + 1
      ++ok;
    }
    completed += n;
    if (n == 0) std::this_thread::sleep_for(100us);
  }
  EXPECT_EQ(completed, kN) << "every accepted request gets a completion";
  c.disconnect();

  // The server notices the graceful close and frees the session.
  const std::uint64_t d2 = now_ns() + 2'000'000'000ull;
  while (server.live_sessions() != 0 && now_ns() < d2)
    std::this_thread::sleep_for(1ms);
  EXPECT_EQ(server.live_sessions(), 0u);

  server.stop();
  const TenantStats t = server.service().totals();
  expect_closed(t);
  EXPECT_EQ(t.executed, kN);
  EXPECT_EQ(server.stats().sessions_closed, 1u);
  EXPECT_EQ(server.stats().sessions_expired, 0u);
  EXPECT_EQ(server.stats().completions_dropped, 0u);
}

TEST(IpcEndToEnd, DeadClientLeaseExpiresSlotsReclaimedOrphansAccounted) {
  // Short lease so expiry is fast. The "client" stops heartbeating with
  // published-but-undrained requests in its ring (drain paused), plus one
  // torn claim — the server must reclaim, account orphans exactly, and
  // count the torn slot without executing it.
  TransportSpec tspec = TransportSpec::parse(
      "ipc=shm,seg=" + seg_name("dead") + ",sessions=2,ring=64,lease_ms=20");
  IpcServer server(small_cfg(), tspec, &echo_handler);

  Client::Options copt;
  copt.start_heartbeat = false;  // die of lease expiry
  Client c;
  ASSERT_EQ(c.connect(tspec, 1, copt), ClientStatus::kOk);

  server.service().pause_drain();  // also pauses the transport pump
  std::this_thread::sleep_for(5ms);
  constexpr std::uint64_t kBurst = 16;
  for (std::uint64_t i = 0; i < kBurst; ++i)
    ASSERT_EQ(c.submit(0, i, i, 0), ClientStatus::kOk);
  ASSERT_TRUE(c.debug_claim_and_abandon());  // die mid-publish

  // Let the lease + grace expire with the pump paused, then resume.
  std::this_thread::sleep_for(60ms);
  server.service().resume_drain();

  // Wait for the expiry itself (live_sessions()==0 is trivially true
  // before the pump has registered the session at all).
  const std::uint64_t deadline = now_ns() + 5'000'000'000ull;
  while (server.stats().sessions_expired == 0 && now_ns() < deadline)
    std::this_thread::sleep_for(1ms);
  ASSERT_EQ(server.stats().sessions_expired, 1u)
      << "dead session must be lease-expired";
  ASSERT_EQ(server.live_sessions(), 0u) << "expired session must be freed";

  // The evicted client observes the generation bump and fails fast.
  EXPECT_EQ(c.submit(0, 99, 99, 0), ClientStatus::kEvicted);
  EXPECT_TRUE(c.evicted());

  server.stop();
  const TenantStats t = server.service().totals();
  expect_closed(t);
  const TransportStats ts = server.stats();
  SCOPED_TRACE(::testing::Message()
               << "submitted=" << t.submitted << " executed=" << t.executed
               << " shed=" << t.shed << " rejected=" << t.rejected
               << " orphaned=" << t.orphaned << " | opened="
               << ts.sessions_opened << " expired=" << ts.sessions_expired
               << " closed=" << ts.sessions_closed << " torn="
               << ts.slots_torn << " ingested=" << ts.requests_ingested);
  EXPECT_EQ(ts.sessions_expired, 1u);
  EXPECT_EQ(ts.slots_torn, 1u) << "the abandoned claim counts torn";
  // Requests drained before the pause executed; the rest orphaned. Either
  // way: executed + orphaned == kBurst and nothing vanished.
  EXPECT_EQ(t.executed + t.orphaned, kBurst);
  EXPECT_EQ(ts.orphaned, t.orphaned);
}

TEST(IpcEndToEnd, PoisonedSegmentFailsClientsFast) {
  TransportSpec tspec = TransportSpec::parse(
      "ipc=shm,seg=" + seg_name("poison") + ",sessions=2,ring=64");
  auto server = std::make_unique<IpcServer>(small_cfg(), tspec,
                                            &echo_handler);
  Client c;
  ASSERT_EQ(c.connect(tspec, 0), ClientStatus::kOk);
  ASSERT_EQ(c.submit(0, 1, 1, now_ns() + 1'000'000'000ull),
            ClientStatus::kOk);

  server->stop();
  EXPECT_EQ(c.submit(0, 2, 2, now_ns() + 1'000'000'000ull),
            ClientStatus::kPoisoned);
  EXPECT_TRUE(c.poisoned());
  c.disconnect();
  expect_closed(server->service().totals());

  // A fresh connect to the (unlinked) segment times out cleanly.
  Client c2;
  Client::Options copt;
  copt.connect_timeout_ns = 50'000'000;
  EXPECT_NE(c2.connect(tspec, 0, copt), ClientStatus::kOk);
}

TEST(IpcEndToEnd, InjectedTornAndVanishFaultsKeepAccountingExact) {
  // kTransportTorn: valid slots are deliberately skipped as torn.
  // kClientVanish: sessions are reclaimed regardless of lease. Under
  // both, the invariant must stay exact and the server must not hang.
  TransportSpec tspec = TransportSpec::parse(
      "ipc=shm,seg=" + seg_name("chaos") + ",sessions=4,ring=64");
  IpcServer server(small_cfg(), tspec, &echo_handler);

  FaultInjector fi(0xC4A05);
  fi.set_fail_rate(FaultPoint::kTransportTorn, 0.05);
  fi.set_fail_rate(FaultPoint::kClientVanish, 0.001);
  FaultScope scope(fi);

  constexpr int kClients = 3;
  constexpr std::uint64_t kPer = 300;
  std::vector<std::thread> threads;
  std::atomic<std::uint64_t> client_completions{0};
  for (int k = 0; k < kClients; ++k) {
    threads.emplace_back([&, k] {
      CmplPayload out[64];
      for (;;) {
        Client c;
        Client::Options copt;
        copt.backoff_seed = 77 + static_cast<std::uint64_t>(k);
        if (c.connect(tspec, static_cast<std::uint32_t>(k % 2), copt) !=
            ClientStatus::kOk)
          return;  // poisoned/teardown race: fine
        std::uint64_t sent = 0;
        while (sent < kPer) {
          const auto st =
              c.submit(1, sent, sent, now_ns() + 200'000'000ull);
          if (st == ClientStatus::kEvicted) break;  // vanished: reconnect
          if (st == ClientStatus::kPoisoned) return;
          if (st == ClientStatus::kOk) ++sent;
          client_completions.fetch_add(c.poll(out, 64),
                                       std::memory_order_relaxed);
        }
        client_completions.fetch_add(c.poll(out, 64),
                                     std::memory_order_relaxed);
        if (sent >= kPer) {
          c.disconnect();
          return;
        }
        // else: evicted mid-burst; loop reconnects as a new session.
      }
    });
  }
  for (auto& t : threads) t.join();
  server.stop();

  const TenantStats t = server.service().totals();
  expect_closed(t);
  const TransportStats ts = server.stats();
  EXPECT_GT(t.executed, 0u);
  EXPECT_GT(ts.slots_torn, 0u) << "torn injection at 5% must fire";
  // Whatever was injected, nothing hangs and nothing goes unaccounted;
  // torn slots never execute (they are not in submitted at all).
}

}  // namespace
}  // namespace xtask::ipc
