// Backend registry tests: the `backend:key=val,...` spec grammar
// (round-trips, bad keys, bad values, clamping), the defaults table that
// bench/tests/examples used to each re-invent, XTASK_BACKEND /
// XTASK_TOPOLOGY override precedence, and the type-erased AnyRuntime
// surface (run/spawn/taskwait/stats/get_if) on every registered backend.
#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <string>

#include "bots/fib.hpp"
#include "registry/registry.hpp"

namespace xtask {
namespace {

/// Scoped environment override (POSIX setenv/unsetenv), restored on exit
/// so tests cannot leak state into each other.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) {
      had_old_ = true;
      old_ = old;
    }
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  std::string old_;
  bool had_old_ = false;
};

// ---------------------------------------------------------------------------
// Spec grammar

TEST(BackendSpecGrammar, ParsesBackendAndOptions) {
  const auto s = BackendSpec::parse("xtask:dlb=naws,zones=4,qcap=8192");
  EXPECT_EQ(s.backend, "xtask");
  ASSERT_EQ(s.options.size(), 3u);
  ASSERT_NE(s.find("dlb"), nullptr);
  EXPECT_EQ(*s.find("dlb"), "naws");
  EXPECT_EQ(*s.find("qcap"), "8192");
  EXPECT_EQ(s.find("missing"), nullptr);
}

TEST(BackendSpecGrammar, BareBackendHasNoOptions) {
  const auto s = BackendSpec::parse("gomp");
  EXPECT_EQ(s.backend, "gomp");
  EXPECT_TRUE(s.options.empty());
}

TEST(BackendSpecGrammar, DescribeRoundTrips) {
  for (const char* spec :
       {"gomp", "lomp:threads=8", "xtask:dlb=naws,zones=4,qcap=8192",
        "xtask:barrier=tree,dlb=narp,tint=128,plocal=0.5"}) {
    const auto parsed = BackendSpec::parse(spec);
    EXPECT_EQ(parsed.describe(), spec);
    const auto again = BackendSpec::parse(parsed.describe());
    EXPECT_EQ(again.backend, parsed.backend);
    EXPECT_EQ(again.options, parsed.options);
  }
}

TEST(BackendSpecGrammar, SetOverwritesLastBinding) {
  auto s = BackendSpec::parse("xtask:threads=2");
  s.set("threads", "8");
  EXPECT_EQ(*s.find("threads"), "8");
  ASSERT_EQ(s.options.size(), 1u);
  s.set("dlb", "naws");
  EXPECT_EQ(s.describe(), "xtask:threads=8,dlb=naws");
}

TEST(BackendSpecGrammar, MalformedSpecsThrow) {
  for (const char* spec : {"", ":dlb=naws", "xtask:dlb", "xtask:=naws",
                           "xtask:dlb=", "xtask:dlb=naws,,zones=2"}) {
    EXPECT_THROW(BackendSpec::parse(spec), std::invalid_argument)
        << "'" << spec << "'";
  }
}

// ---------------------------------------------------------------------------
// Key validation and the defaults table

TEST(RegistryConfig, UnknownBackendThrows) {
  EXPECT_THROW(RuntimeRegistry::make("openmp"), std::invalid_argument);
}

TEST(RegistryConfig, UnknownKeysThrow) {
  EXPECT_THROW(RuntimeRegistry::make("xtask:queue=9"), std::invalid_argument);
  EXPECT_THROW(RuntimeRegistry::make("gomp:dlb=naws"), std::invalid_argument);
  EXPECT_THROW(RuntimeRegistry::make("serial:threads=2"),
               std::invalid_argument);
}

TEST(RegistryConfig, BadValuesThrow) {
  EXPECT_THROW(RuntimeRegistry::make("xtask:dlb=bogus"),
               std::invalid_argument);
  EXPECT_THROW(RuntimeRegistry::make("xtask:barrier=flat"),
               std::invalid_argument);
  EXPECT_THROW(RuntimeRegistry::make("xtask:threads=abc"),
               std::invalid_argument);
  EXPECT_THROW(RuntimeRegistry::make("xtask:plocal=2.0"),
               std::invalid_argument);
  EXPECT_THROW(RuntimeRegistry::make("xtask:profile=maybe"),
               std::invalid_argument);
}

TEST(RegistryConfig, DefaultsComeFromTheTable) {
  ScopedEnv topo("XTASK_TOPOLOGY", nullptr);
  const Config cfg = RuntimeRegistry::xtask_config(
      BackendSpec::parse("xtask:threads=4"));
  EXPECT_EQ(cfg.queue_capacity, RegistryDefaults::kQueueCapacity);
  EXPECT_EQ(cfg.topology.num_workers(), 4);
  EXPECT_EQ(cfg.topology.num_zones(), RegistryDefaults::zones_for(4));
  // The drifting constants this table replaced.
  EXPECT_EQ(RegistryDefaults::kQueueCapacity, 8192u);
  EXPECT_EQ(RegistryDefaults::zones_for(4), 2);
  EXPECT_EQ(RegistryDefaults::zones_for(3), 1);
}

TEST(RegistryConfig, SpecKeysReachTheConfig) {
  ScopedEnv topo("XTASK_TOPOLOGY", nullptr);
  const Config cfg = RuntimeRegistry::xtask_config(BackendSpec::parse(
      "xtask:threads=6,zones=3,qcap=256,barrier=central,dlb=naws,"
      "alloc=malloc,tint=99,nvictim=2,nsteal=5,plocal=0.25,seed=7,"
      "wdog=1000,yield=32,profile=1,hb=25,quarantine=on"));
  EXPECT_EQ(cfg.topology.num_workers(), 6);
  EXPECT_EQ(cfg.topology.num_zones(), 3);
  EXPECT_EQ(cfg.queue_capacity, 256u);
  EXPECT_EQ(cfg.barrier, BarrierKind::kCentral);
  EXPECT_EQ(cfg.dlb, DlbKind::kWorkSteal);
  EXPECT_EQ(cfg.allocator, AllocatorMode::kMalloc);
  EXPECT_EQ(cfg.dlb_cfg.t_interval, 99u);
  EXPECT_EQ(cfg.dlb_cfg.n_victim, 2);
  EXPECT_EQ(cfg.dlb_cfg.n_steal, 5);
  EXPECT_DOUBLE_EQ(cfg.dlb_cfg.p_local, 0.25);
  EXPECT_EQ(cfg.seed, 7u);
  EXPECT_EQ(cfg.watchdog_timeout_ms, 1000u);
  EXPECT_EQ(cfg.yield_after_idle, 32);
  EXPECT_TRUE(cfg.profile_events);
  EXPECT_EQ(cfg.heartbeat_ms, 25u);
  EXPECT_TRUE(cfg.quarantine);
}

TEST(RegistryConfig, HealthKeysDefaultOffAndValidateTogether) {
  ScopedEnv topo("XTASK_TOPOLOGY", nullptr);
  const Config cfg =
      RuntimeRegistry::xtask_config(BackendSpec::parse("xtask:threads=2"));
  EXPECT_EQ(cfg.heartbeat_ms, 0u);  // monitoring is opt-in
  EXPECT_FALSE(cfg.quarantine);
  // quarantine=on is meaningless without a heartbeat to judge workers by;
  // rejected at parse time rather than silently ignored.
  EXPECT_THROW(RuntimeRegistry::make("xtask:threads=2,quarantine=on"),
               std::invalid_argument);
  EXPECT_THROW(RuntimeRegistry::make("xtask:threads=2,hb=bogus"),
               std::invalid_argument);
}

TEST(RegistryConfig, AdaptiveDispatchModeKey) {
  ScopedEnv topo("XTASK_TOPOLOGY", nullptr);
  // Round-trip: every dmode value parses, reaches the Config, and the
  // describe() form re-parses to the same Config.
  const struct {
    const char* value;
    DispatchModePolicy policy;
  } kCases[] = {
      {"auto", DispatchModePolicy::kAuto},
      {"messaging", DispatchModePolicy::kMessaging},
      {"direct", DispatchModePolicy::kDirect},
  };
  for (const auto& c : kCases) {
    const std::string spec =
        std::string("xtask:threads=4,dlb=adaptive,dmode=") + c.value;
    const BackendSpec parsed = BackendSpec::parse(spec);
    const Config cfg = RuntimeRegistry::xtask_config(parsed);
    EXPECT_EQ(cfg.dlb, DlbKind::kAdaptive) << c.value;
    EXPECT_EQ(cfg.dispatch_mode, c.policy) << c.value;
    const Config again =
        RuntimeRegistry::xtask_config(BackendSpec::parse(parsed.describe()));
    EXPECT_EQ(again.dispatch_mode, c.policy) << c.value;
  }
  // Default is auto, and dmode without dlb=adaptive is rejected: the mode
  // controller is part of the adaptive layer.
  EXPECT_EQ(RuntimeRegistry::xtask_config(
                BackendSpec::parse("xtask:dlb=adaptive"))
                .dispatch_mode,
            DispatchModePolicy::kAuto);
  EXPECT_THROW(RuntimeRegistry::make("xtask:dmode=direct"),
               std::invalid_argument);
  EXPECT_THROW(RuntimeRegistry::make("xtask:dlb=naws,dmode=direct"),
               std::invalid_argument);
  EXPECT_THROW(RuntimeRegistry::make("xtask:dlb=adaptive,dmode=bogus"),
               std::invalid_argument);
}

TEST(RegistryConfig, BarrierAutoSelection) {
  ScopedEnv topo("XTASK_TOPOLOGY", nullptr);
  // barrier=auto parses for any backend config...
  EXPECT_EQ(RuntimeRegistry::xtask_config(
                BackendSpec::parse("xtask:threads=4,barrier=auto"))
                .barrier,
            BarrierKind::kAuto);
  // ...and is the implicit default for the adaptive layer, while an
  // explicit barrier key still pins the kind.
  EXPECT_EQ(RuntimeRegistry::xtask_config(
                BackendSpec::parse("xtask:threads=4,dlb=adaptive"))
                .barrier,
            BarrierKind::kAuto);
  EXPECT_EQ(RuntimeRegistry::xtask_config(
                BackendSpec::parse("xtask:threads=4,dlb=adaptive,"
                                   "barrier=tree"))
                .barrier,
            BarrierKind::kTree);
  // Non-adaptive configs keep the tree default untouched.
  EXPECT_EQ(RuntimeRegistry::xtask_config(
                BackendSpec::parse("xtask:threads=4,dlb=naws"))
                .barrier,
            BarrierKind::kTree);
  // A constructed runtime always resolves kAuto to a concrete barrier: a
  // 4-thread team is small (or oversubscribed on a small CI host), so the
  // snapshot must report the centralized task-count barrier.
  AnyRuntime rt = RuntimeRegistry::make("xtask:threads=4,dlb=adaptive");
  EXPECT_NE(rt.get_if<Runtime>()->debug_snapshot().find("barrier=central"),
            std::string::npos);
}

TEST(RegistryConfig, QueueCapacityRoundsUpToPowerOfTwo) {
  ScopedEnv topo("XTASK_TOPOLOGY", nullptr);
  EXPECT_EQ(RuntimeRegistry::xtask_config(
                BackendSpec::parse("xtask:qcap=100"))
                .queue_capacity,
            128u);
  EXPECT_EQ(RuntimeRegistry::xtask_config(BackendSpec::parse("xtask:qcap=1"))
                .queue_capacity,
            2u);  // clamped to the floor, then power-of-two
}

TEST(RegistryConfig, ZonesClampToThreads) {
  ScopedEnv topo("XTASK_TOPOLOGY", nullptr);
  const Config cfg = RuntimeRegistry::xtask_config(
      BackendSpec::parse("xtask:threads=2,zones=64"));
  EXPECT_EQ(cfg.topology.num_zones(), 2);
}

TEST(RegistryConfig, XlompDefaultsToXQueue) {
  ScopedEnv topo("XTASK_TOPOLOGY", nullptr);
  EXPECT_TRUE(
      RuntimeRegistry::lomp_config(BackendSpec::parse("xlomp")).use_xqueue);
  EXPECT_FALSE(
      RuntimeRegistry::lomp_config(BackendSpec::parse("lomp")).use_xqueue);
  EXPECT_FALSE(RuntimeRegistry::lomp_config(
                   BackendSpec::parse("xlomp:xqueue=0"))
                   .use_xqueue);
}

// ---------------------------------------------------------------------------
// Environment override precedence

TEST(RegistryEnv, TopologyEnvBeatsSpecKeys) {
  ScopedEnv topo("XTASK_TOPOLOGY", "3x2");
  const Config cfg = RuntimeRegistry::xtask_config(
      BackendSpec::parse("xtask:threads=12,zones=1,topo=2x2"));
  EXPECT_EQ(cfg.topology.num_workers(), 6);
  EXPECT_EQ(cfg.topology.num_zones(), 3);
  EXPECT_EQ(cfg.topology.spec(), "3x2");
}

TEST(RegistryEnv, TopoKeyBeatsThreadsAndZones) {
  ScopedEnv topo("XTASK_TOPOLOGY", nullptr);
  const Config cfg = RuntimeRegistry::xtask_config(
      BackendSpec::parse("xtask:threads=12,zones=1,topo=2x2"));
  EXPECT_EQ(cfg.topology.num_workers(), 4);
  EXPECT_EQ(cfg.topology.num_zones(), 2);
}

TEST(RegistryEnv, BackendEnvReplacesFallback) {
  ScopedEnv topo("XTASK_TOPOLOGY", nullptr);
  {
    ScopedEnv backend("XTASK_BACKEND", "serial");
    AnyRuntime rt = RuntimeRegistry::make_env("xtask:threads=2");
    EXPECT_EQ(rt.spec(), "serial");
    EXPECT_EQ(rt.num_threads(), 1);
  }
  {
    ScopedEnv backend("XTASK_BACKEND", nullptr);
    AnyRuntime rt = RuntimeRegistry::make_env("gomp:threads=2");
    EXPECT_EQ(rt.spec(), "gomp:threads=2");
    EXPECT_EQ(rt.num_threads(), 2);
  }
}

TEST(RegistryEnv, BadEnvTopologyThrows) {
  ScopedEnv topo("XTASK_TOPOLOGY", "8x24x2");
  EXPECT_THROW(RuntimeRegistry::make("xtask"), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// The type-erased runtime surface

TEST(AnyRuntimeSurface, RunsKernelsOnEveryBackend) {
  ScopedEnv topo("XTASK_TOPOLOGY", nullptr);
  const long expected = bots::fib_serial(12);
  for (const std::string& name : RuntimeRegistry::backends()) {
    const std::string spec =
        name == "serial" ? name : name + ":threads=2";
    AnyRuntime rt = RuntimeRegistry::make(spec);
    EXPECT_EQ(bots::fib_parallel(rt, 12), expected) << spec;
    EXPECT_EQ(rt.spec(), spec);
    EXPECT_GE(rt.num_threads(), 1) << spec;
    EXPECT_FALSE(rt.describe().empty()) << spec;
  }
}

TEST(AnyRuntimeSurface, SpawnTaskwaitWorkerIdThroughAnyContext) {
  ScopedEnv topo("XTASK_TOPOLOGY", nullptr);
  AnyRuntime rt = RuntimeRegistry::make("xtask:threads=2");
  int leaves = 0;
  rt.run([&](AnyContext& ctx) {
    EXPECT_GE(ctx.worker_id(), 0);
    int a = 0;
    int b = 0;
    ctx.spawn([&a](AnyContext&) { a = 1; });
    ctx.spawn([&b](AnyContext& c) {
      c.spawn([&b](AnyContext&) { ++b; });
      c.taskwait();
      ++b;
    });
    ctx.taskwait();
    leaves = a + b;
  });
  EXPECT_EQ(leaves, 3);
  const Counters total = rt.total_counters();
  EXPECT_EQ(total.ntasks_created, total.ntasks_executed);
  EXPECT_GE(total.ntasks_executed, 3u);
}

TEST(AnyRuntimeSurface, GetIfRecoversTheConcreteType) {
  ScopedEnv topo("XTASK_TOPOLOGY", nullptr);
  AnyRuntime rt = RuntimeRegistry::make("xtask:threads=2,wdog=30000");
  ASSERT_NE(rt.get_if<Runtime>(), nullptr);
  EXPECT_EQ(rt.get_if<gomp::GompRuntime>(), nullptr);
  EXPECT_EQ(rt.get_if<Runtime>()->watchdog_stalls(), 0u);

  AnyRuntime baseline = RuntimeRegistry::make("gomp:threads=2");
  EXPECT_EQ(baseline.get_if<Runtime>(), nullptr);
  ASSERT_NE(baseline.get_if<gomp::GompRuntime>(), nullptr);
}

TEST(AnyRuntimeSurface, WithRunsTheConcreteRuntime) {
  ScopedEnv topo("XTASK_TOPOLOGY", nullptr);
  int calls = 0;
  RuntimeRegistry::with("xtask:threads=2", [&](auto& rt) {
    ++calls;
    EXPECT_EQ(bots::fib_parallel(rt, 10), bots::fib_serial(10));
  });
  RuntimeRegistry::with("lomp:threads=2", [&](auto& rt) {
    ++calls;
    EXPECT_EQ(bots::fib_parallel(rt, 10), bots::fib_serial(10));
  });
  EXPECT_EQ(calls, 2);
  EXPECT_THROW(RuntimeRegistry::with("serial", [](auto&) {}),
               std::invalid_argument);
}

TEST(RegistryCatalogues, EverySmokeAndBenchSpecConstructs) {
  ScopedEnv topo("XTASK_TOPOLOGY", nullptr);
  for (const std::string& spec : RuntimeRegistry::smoke_specs()) {
    BackendSpec parsed = BackendSpec::parse(spec);
    if (parsed.backend != "serial") parsed.set("threads", "2");
    AnyRuntime rt = RuntimeRegistry::make(parsed);
    EXPECT_EQ(bots::fib_parallel(rt, 10), bots::fib_serial(10)) << spec;
  }
  for (const NamedConfig& c : RuntimeRegistry::bench_configs()) {
    BackendSpec parsed = BackendSpec::parse(c.spec);
    parsed.set("threads", "2");
    AnyRuntime rt = RuntimeRegistry::make(parsed);
    EXPECT_EQ(bots::fib_parallel(rt, 10), bots::fib_serial(10)) << c.name;
  }
}

}  // namespace
}  // namespace xtask
