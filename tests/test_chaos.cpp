// Deterministic chaos harness: run real BOTS workloads across every
// {BarrierKind} x {DlbKind} configuration while a seeded FaultInjector
// forces the runtime's rare paths — queue-full backpressure, spurious pop
// misses, lost steal requests, delayed round completions, census stalls,
// idle wakeups. Every injected fault lands on a recovery path that must
// already be correct, so the assertion is simply: results exact, counters
// balanced, region terminates (a watchdog bounds the failure mode of a
// genuine hang to a loud test failure instead of a CI timeout).
//
// Configurations are registry spec strings; the concrete Runtime is
// recovered through AnyRuntime::get_if for the watchdog-stall check.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "bots/fib.hpp"
#include "bots/nqueens.hpp"
#include "bots/sparselu.hpp"
#include "registry/registry.hpp"

namespace xtask {
namespace {

using bots::SparseLuParams;
using bots::fib_parallel;
using bots::fib_serial;
using bots::nqueens_parallel;
using bots::nqueens_serial;
using bots::sparselu_parallel;
using bots::sparselu_serial;

struct ChaosCase {
  const char* name;
  const char* spec;
};

// Frequent DLB rounds (tint=200) under injection, small queues (qcap=64)
// for real overflow pressure, and a watchdog so a wedged configuration
// dies loudly with a snapshot instead of hanging the suite — 20 s is far
// above any healthy run here (<1 s each).
#define CHAOS_KNOBS "threads=4,zones=2,tint=200,qcap=64,wdog=20000"
const ChaosCase kCases[] = {
    {"central_none", "xtask:barrier=central,dlb=none," CHAOS_KNOBS},
    {"central_narp", "xtask:barrier=central,dlb=narp," CHAOS_KNOBS},
    {"central_naws", "xtask:barrier=central,dlb=naws," CHAOS_KNOBS},
    {"central_adaptive", "xtask:barrier=central,dlb=adaptive," CHAOS_KNOBS},
    {"tree_none", "xtask:barrier=tree,dlb=none," CHAOS_KNOBS},
    {"tree_narp", "xtask:barrier=tree,dlb=narp," CHAOS_KNOBS},
    {"tree_naws", "xtask:barrier=tree,dlb=naws," CHAOS_KNOBS},
    {"tree_adaptive", "xtask:barrier=tree,dlb=adaptive," CHAOS_KNOBS},
};
#undef CHAOS_KNOBS

/// Rates tuned so every point fires often (thousands of injections per
/// run) while forward progress stays certain: fail rates stay below the
/// retry budget, perturb rates only stretch race windows.
void arm(FaultInjector& fi) {
  fi.set_fail_rate(FaultPoint::kQueuePush, 0.05);
  fi.set_fail_rate(FaultPoint::kQueuePop, 0.05);
  fi.set_fail_rate(FaultPoint::kStealRequest, 0.25);
  fi.set_yield_rate(FaultPoint::kStealComplete, 0.25);
  fi.set_yield_rate(FaultPoint::kCensusPublish, 0.10);
  fi.set_yield_rate(FaultPoint::kIdleWakeup, 0.02);
}

void expect_balanced(AnyRuntime& rt, const std::string& label) {
  const Counters total = rt.total_counters();
  EXPECT_EQ(total.ntasks_created, total.ntasks_executed) << label;
  Runtime* concrete = rt.get_if<Runtime>();
  ASSERT_NE(concrete, nullptr) << label;
  EXPECT_EQ(concrete->watchdog_stalls(), 0u) << label;
}

class ChaosSweep : public ::testing::TestWithParam<ChaosCase> {};

TEST_P(ChaosSweep, FibExactUnderInjection) {
  const long expected = fib_serial(16);  // 987
  for (const std::uint64_t seed : {1ull, 7ull, 1234ull, 0xdeadbeefull}) {
    FaultInjector fi(seed);
    arm(fi);
    FaultScope scope(fi);
    AnyRuntime rt = RuntimeRegistry::make(GetParam().spec);
    const long got = fib_parallel(rt, 16, 4);
    EXPECT_EQ(got, expected) << GetParam().name << " seed=" << seed;
    expect_balanced(rt, GetParam().name);
    // The harness actually injected: the workload is large enough that a
    // 5% queue rate cannot round to zero.
    EXPECT_GT(fi.total_injected(), 0u);
  }
}

TEST_P(ChaosSweep, NqueensExactUnderInjection) {
  const long expected = nqueens_serial(7);  // 40
  for (const std::uint64_t seed : {3ull, 99ull, 4096ull}) {
    FaultInjector fi(seed);
    arm(fi);
    FaultScope scope(fi);
    AnyRuntime rt = RuntimeRegistry::make(GetParam().spec);
    const long got = nqueens_parallel(rt, 7, 3);
    EXPECT_EQ(got, expected) << GetParam().name << " seed=" << seed;
    expect_balanced(rt, GetParam().name);
  }
}

TEST_P(ChaosSweep, SparseLuChecksumUnderInjection) {
  SparseLuParams p;
  p.blocks = 6;
  p.block_size = 8;
  const double expected = sparselu_serial(p);
  for (const std::uint64_t seed : {5ull, 77ull, 31337ull}) {
    FaultInjector fi(seed);
    arm(fi);
    FaultScope scope(fi);
    AnyRuntime rt = RuntimeRegistry::make(GetParam().spec);
    const double got = sparselu_parallel(rt, p);
    EXPECT_DOUBLE_EQ(got, expected) << GetParam().name << " seed=" << seed;
    expect_balanced(rt, GetParam().name);
  }
}

TEST_P(ChaosSweep, ExceptionPropagatesUnderInjection) {
  // Error delivery must survive chaos too: a nested spawn throws, the
  // first exception (and only an exception of our type) surfaces from
  // run(), and the runtime remains usable for a clean verification run.
  struct ChaosError : std::runtime_error {
    using std::runtime_error::runtime_error;
  };
  for (const std::uint64_t seed : {11ull, 222ull, 3333ull}) {
    FaultInjector fi(seed);
    arm(fi);
    FaultScope scope(fi);
    AnyRuntime rt = RuntimeRegistry::make(GetParam().spec);
    const std::string msg = "chaos boom seed " + std::to_string(seed);
    bool caught = false;
    try {
      rt.run([&](AnyContext& ctx) {
        for (int i = 0; i < 64; ++i)
          ctx.spawn([&, i](AnyContext& c) {
            if (i == 13) throw ChaosError(msg);
            c.spawn([](AnyContext&) {});  // extra depth under injection
          });
        ctx.taskwait();
      });
    } catch (const ChaosError& e) {
      EXPECT_EQ(std::string(e.what()), msg);
      caught = true;
    }
    EXPECT_TRUE(caught) << GetParam().name << " seed=" << seed;
    // Clean region afterwards, still under injection.
    std::atomic<int> ran{0};
    rt.run([&](AnyContext& ctx) {
      for (int i = 0; i < 128; ++i)
        ctx.spawn([&](AnyContext&) { ran.fetch_add(1); });
      ctx.taskwait();
    });
    EXPECT_EQ(ran.load(), 128) << GetParam().name << " seed=" << seed;
    expect_balanced(rt, GetParam().name);
  }
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, ChaosSweep, ::testing::ValuesIn(kCases),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

// ---------------------------------------------------------------------------
// Targeted high-rate runs: each point individually at a brutal rate, so a
// regression in one recovery path cannot hide behind the mixed sweep.

TEST(ChaosTargeted, QueuePushAlwaysFullStillExact) {
  // Every push fails: the whole workload runs through the inline
  // backpressure path, serializing on the spawner.
  FaultInjector fi(42);
  fi.set_fail_rate(FaultPoint::kQueuePush, 1.0);
  FaultScope scope(fi);
  AnyRuntime rt =
      RuntimeRegistry::make("xtask:threads=4,zones=2,wdog=20000");
  EXPECT_EQ(fib_parallel(rt, 14, 4), fib_serial(14));
  const Counters total = rt.total_counters();
  EXPECT_EQ(total.ntasks_created, total.ntasks_executed);
  // All non-root tasks ran inline.
  EXPECT_EQ(total.overflow.total, total.ntasks_created - 1);
}

TEST(ChaosTargeted, HeavyPopMissesStillTerminate) {
  // 40% forced pop misses stress the termination detection: queues appear
  // empty to consumers most of the time, yet the census/task-count must
  // not release early nor hang.
  for (const char* barrier : {"central", "tree"}) {
    FaultInjector fi(7);
    fi.set_fail_rate(FaultPoint::kQueuePop, 0.4);
    FaultScope scope(fi);
    AnyRuntime rt = RuntimeRegistry::make(
        std::string("xtask:threads=4,zones=2,wdog=20000,barrier=") + barrier);
    EXPECT_EQ(fib_parallel(rt, 15, 4), fib_serial(15));
    const Counters total = rt.total_counters();
    EXPECT_EQ(total.ntasks_created, total.ntasks_executed);
  }
}

// ---------------------------------------------------------------------------
// Self-healing under injection: kWorkerStall forces every worker
// heartbeat-silent once per region (wedged mid-task or mid-poll, whichever
// comes first); the monitor must quarantine them, peers must keep the
// region alive (reclamation + barrier proxy), and readmission must follow
// the heartbeat resuming — with exact results throughout. This is the
// acceptance gate for the recovery subsystem, swept across both barriers
// and both DLB strategies.

struct HealCase {
  const char* name;
  const char* spec;
};

#define HEAL_KNOBS \
  "threads=4,zones=2,tint=200,qcap=64,wdog=20000,hb=5,quarantine=on"
const HealCase kHealCases[] = {
    {"central_narp", "xtask:barrier=central,dlb=narp," HEAL_KNOBS},
    {"central_naws", "xtask:barrier=central,dlb=naws," HEAL_KNOBS},
    {"tree_narp", "xtask:barrier=tree,dlb=narp," HEAL_KNOBS},
    {"tree_naws", "xtask:barrier=tree,dlb=naws," HEAL_KNOBS},
    // Adaptive dispatch must coexist with quarantine: a direct-mode thief
    // and the monitor contend for the same guard cells, and the mode
    // controller's census must not stall recovery (or vice versa).
    {"central_adaptive", "xtask:barrier=central,dlb=adaptive," HEAL_KNOBS},
    {"tree_adaptive", "xtask:barrier=tree,dlb=adaptive," HEAL_KNOBS},
};
#undef HEAL_KNOBS

void expect_healed(AnyRuntime& rt, const std::string& label) {
  expect_balanced(rt, label);
  Runtime* concrete = rt.get_if<Runtime>();
  ASSERT_NE(concrete, nullptr) << label;
  const HealthStats hs = concrete->health_stats();
  // Workers stalled and were quarantined; the region completing at all
  // means at least one was readmitted to execute the in-flight tasks.
  EXPECT_GE(hs.quarantines, 1u) << label;
  EXPECT_GE(hs.readmissions, 1u) << label;
  EXPECT_GE(hs.quarantines, hs.readmissions) << label;
  const Counters total = rt.total_counters();
  EXPECT_GE(total.nquarantined, 1u) << label;
  EXPECT_GE(total.nreadmitted, 1u) << label;
}

class SelfHealingSweep : public ::testing::TestWithParam<HealCase> {};

TEST_P(SelfHealingSweep, FibExactWhileWorkersStallAndRecover) {
  const long expected = fib_serial(16);  // 987
  for (const std::uint64_t seed : {1ull, 42ull, 31337ull}) {
    FaultInjector fi(seed);
    fi.set_fail_rate(FaultPoint::kWorkerStall, 1.0);
    FaultScope scope(fi);
    AnyRuntime rt = RuntimeRegistry::make(GetParam().spec);
    const long got = fib_parallel(rt, 16, 4);
    EXPECT_EQ(got, expected) << GetParam().name << " seed=" << seed;
    expect_healed(rt, GetParam().name);
  }
}

TEST_P(SelfHealingSweep, NqueensExactWhileWorkersStallAndRecover) {
  const long expected = nqueens_serial(7);  // 40
  FaultInjector fi(99);
  fi.set_fail_rate(FaultPoint::kWorkerStall, 1.0);
  FaultScope scope(fi);
  AnyRuntime rt = RuntimeRegistry::make(GetParam().spec);
  EXPECT_EQ(nqueens_parallel(rt, 7, 3), expected) << GetParam().name;
  expect_healed(rt, GetParam().name);
}

TEST_P(SelfHealingSweep, SparseLuChecksumWhileWorkersStallAndRecover) {
  SparseLuParams p;
  p.blocks = 6;
  p.block_size = 8;
  const double expected = sparselu_serial(p);
  FaultInjector fi(31337);
  fi.set_fail_rate(FaultPoint::kWorkerStall, 1.0);
  FaultScope scope(fi);
  AnyRuntime rt = RuntimeRegistry::make(GetParam().spec);
  EXPECT_DOUBLE_EQ(sparselu_parallel(rt, p), expected) << GetParam().name;
  expect_healed(rt, GetParam().name);
}

TEST_P(SelfHealingSweep, StallsComposeWithTheFullInjectionMix) {
  // The recovery machinery must coexist with every other fault: queue
  // overflows, pop misses, lost requests, census perturbations — all while
  // workers go silent and come back.
  const long expected = fib_serial(15);
  FaultInjector fi(7);
  arm(fi);
  fi.set_fail_rate(FaultPoint::kWorkerStall, 1.0);
  FaultScope scope(fi);
  AnyRuntime rt = RuntimeRegistry::make(GetParam().spec);
  EXPECT_EQ(fib_parallel(rt, 15, 4), expected) << GetParam().name;
  expect_healed(rt, GetParam().name);
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, SelfHealingSweep,
                         ::testing::ValuesIn(kHealCases),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

TEST(ChaosTargeted, WorkerSlowOnlySuspectsInDetectionMode) {
  // kWorkerSlow naps just long enough to be suspected; with hb=<ms> but no
  // quarantine=on the monitor publishes suspicion, takes no recovery
  // action, and clears it when the heartbeat resumes.
  FaultInjector fi(5);
  fi.set_fail_rate(FaultPoint::kWorkerSlow, 1.0);
  FaultScope scope(fi);
  AnyRuntime rt =
      RuntimeRegistry::make("xtask:threads=4,zones=2,wdog=20000,hb=5");
  EXPECT_EQ(fib_parallel(rt, 14, 4), fib_serial(14));
  expect_balanced(rt, "worker_slow");
  Runtime* concrete = rt.get_if<Runtime>();
  ASSERT_NE(concrete, nullptr);
  const HealthStats hs = concrete->health_stats();
  EXPECT_GE(hs.suspects, 1u);
  EXPECT_EQ(hs.quarantines, 0u);
  EXPECT_EQ(hs.readmissions, 0u);
  for (int t = 0; t < 4; ++t)
    EXPECT_NE(concrete->worker_health(t), WorkerHealth::kQuarantined);
}

TEST(ChaosTargeted, AllStealRequestsLostStillBalances) {
  // Every steal request vanishes in flight: thieves must survive on the
  // timeout/retry path and the workload on static balancing alone.
  FaultInjector fi(9);
  fi.set_fail_rate(FaultPoint::kStealRequest, 1.0);
  FaultScope scope(fi);
  AnyRuntime rt = RuntimeRegistry::make(
      "xtask:threads=4,zones=2,dlb=naws,tint=100,wdog=20000");
  EXPECT_EQ(nqueens_parallel(rt, 7, 3), nqueens_serial(7));
  const Counters total = rt.total_counters();
  EXPECT_EQ(total.ntasks_created, total.ntasks_executed);
  EXPECT_GT(fi.failed(FaultPoint::kStealRequest), 0u);
}

}  // namespace
}  // namespace xtask
