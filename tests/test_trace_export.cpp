// Trace exporter tests: JSON structure, normalization, filtering, and an
// end-to-end dump from a real runtime run.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/runtime.hpp"
#include "prof/trace_export.hpp"
#include "registry/registry.hpp"

namespace xtask {
namespace {

TEST(TraceExport, EmptyProfilerYieldsMetadataOnly) {
  Profiler prof(2, true);
  const std::string json = trace_to_json(prof);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_EQ(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_EQ(json.front(), '[');
}

TEST(TraceExport, EventsBecomeCompleteSpans) {
  Profiler prof(1, true);
  prof.thread(0).record(EventKind::kTask, 21'000, 42'000);
  prof.thread(0).record(EventKind::kStall, 42'000, 63'000);
  TraceExportOptions opts;
  opts.cycles_per_us = 2100.0;
  const std::string json = trace_to_json(prof, opts);
  // Normalized to t0 = 21000; 21000 cycles = 10us at 2.1GHz.
  EXPECT_NE(json.find("\"name\":\"TASK\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":0.000,\"dur\":10.000"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"STALL\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":10.000"), std::string::npos);
}

TEST(TraceExport, RawCyclesRideAlongsideScaledDisplay) {
  // cycles_per_us is display-only: changing it must rescale ts/dur but
  // leave the raw cycle payload ("sc"/"dc") and the clock metadata intact,
  // and the legacy ts/dur fields must keep their exact shape so existing
  // consumers parse unchanged.
  Profiler prof(1, true);
  prof.thread(0).record(EventKind::kTask, 21'000, 42'000);
  TraceExportOptions opts;
  opts.cycles_per_us = 2100.0;
  const std::string at_2100 = trace_to_json(prof, opts);
  opts.cycles_per_us = 1050.0;
  const std::string at_1050 = trace_to_json(prof, opts);
  // Back-compat: the scaled fields look exactly as they always did.
  EXPECT_NE(at_2100.find("\"ts\":0.000,\"dur\":10.000"), std::string::npos);
  EXPECT_NE(at_1050.find("\"ts\":0.000,\"dur\":20.000"), std::string::npos);
  // Raw cycles are rate-independent.
  EXPECT_NE(at_2100.find("\"args\":{\"sc\":0,\"dc\":21000}"),
            std::string::npos);
  EXPECT_NE(at_1050.find("\"args\":{\"sc\":0,\"dc\":21000}"),
            std::string::npos);
  // The clock record names the display rate and the absolute t0 anchor.
  EXPECT_NE(at_2100.find("\"name\":\"xtask_clock\""), std::string::npos);
  EXPECT_NE(at_2100.find("\"cycles_per_us\":2100.000"), std::string::npos);
  EXPECT_NE(at_2100.find("\"t0_cycles\":21000"), std::string::npos);
  EXPECT_NE(at_1050.find("\"cycles_per_us\":1050.000"), std::string::npos);
}

TEST(TraceExport, MinCyclesFilters) {
  Profiler prof(1, true);
  prof.thread(0).record(EventKind::kTask, 0, 10);      // 10 cycles
  prof.thread(0).record(EventKind::kBarrier, 0, 10'000);
  TraceExportOptions opts;
  opts.min_cycles = 100;
  const std::string json = trace_to_json(prof, opts);
  EXPECT_EQ(json.find("\"name\":\"TASK\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"BARRIER\""), std::string::npos);
}

TEST(TraceExport, EndToEndDumpIsParsableJson) {
  Config cfg;
  cfg.num_threads = 2;
  cfg.profile_events = true;
  const auto rt_h = RuntimeRegistry::make_xtask(cfg);
  Runtime& rt = *rt_h;
  rt.run([](TaskContext& ctx) {
    for (int i = 0; i < 20; ++i) ctx.spawn([](TaskContext&) {});
    ctx.taskwait();
  });
  const std::string path = "/tmp/xtask_trace_test.json";
  ASSERT_TRUE(dump_trace_json(rt.profiler(), path));
  std::ifstream f(path);
  std::string content((std::istreambuf_iterator<char>(f)),
                      std::istreambuf_iterator<char>());
  // Cheap structural validation: array document, balanced braces.
  ASSERT_FALSE(content.empty());
  EXPECT_EQ(content.front(), '[');
  EXPECT_EQ(content[content.size() - 2], ']');
  const auto opens = std::count(content.begin(), content.end(), '{');
  const auto closes = std::count(content.begin(), content.end(), '}');
  EXPECT_EQ(opens, closes);
  EXPECT_NE(content.find("\"name\":\"TASK\""), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace xtask
