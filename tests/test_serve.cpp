// Overload-resilience tests for the task-service front-end (src/serve):
// the submission ring and token bucket in isolation, then the service's
// contract under hostile conditions — rings filled to capacity with the
// drain paused (reject-with-retry-after, never a hang), a chaos-wedged
// admission path (shed, never deadlock), and a quarantined worker
// (admission tightens automatically while the service keeps serving).
// The closing assertion everywhere is the accounting invariant: after
// stop(), submitted == executed + shed + rejected and nothing is in
// flight.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/fault.hpp"
#include "registry/registry.hpp"
#include "serve/admission.hpp"
#include "serve/ring.hpp"
#include "serve/service.hpp"

namespace xtask::serve {
namespace {

using namespace std::chrono_literals;

// Per-tenant execution counters the request fn bumps; index = stamped
// tenant id. Reset per test.
std::atomic<std::uint64_t> g_executed[8];

void count_request(const Request& req) {
  g_executed[req.tenant].fetch_add(1, std::memory_order_relaxed);
}

void reset_executed() {
  for (auto& c : g_executed) c.store(0, std::memory_order_relaxed);
}

void throwing_request(const Request&) { throw std::runtime_error("boom"); }

void expect_accounting_closed(TaskService& svc) {
  const TenantStats total = svc.totals();
  EXPECT_EQ(total.submitted,
            total.executed + total.shed + total.rejected + total.orphaned)
      << "submitted=" << total.submitted << " executed=" << total.executed
      << " shed=" << total.shed << " rejected=" << total.rejected
      << " orphaned=" << total.orphaned;
  EXPECT_EQ(total.in_flight, 0u);
  EXPECT_EQ(total.ring_depth, 0u);
}

// --- SubmitRing ----------------------------------------------------------

TEST(SubmitRing, FifoFillAndDrain) {
  SubmitRing<int> ring(8);
  EXPECT_EQ(ring.capacity(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99)) << "full ring must refuse, not wait";
  EXPECT_EQ(ring.size_approx(), 8u);
  int v = -1;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(ring.try_pop(&v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(ring.try_pop(&v));
  EXPECT_EQ(ring.size_approx(), 0u);
  // Freed slots are reusable (wrap-around).
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.try_push(100 + i));
  EXPECT_FALSE(ring.try_push(0));
}

TEST(SubmitRing, PopBatchRespectsMax) {
  SubmitRing<int> ring(16);
  for (int i = 0; i < 10; ++i) ring.try_push(i);
  int out[16];
  EXPECT_EQ(ring.pop_batch(out, 4), 4u);
  EXPECT_EQ(out[0], 0);
  EXPECT_EQ(out[3], 3);
  EXPECT_EQ(ring.pop_batch(out, 16), 6u);
  EXPECT_EQ(ring.pop_batch(out, 16), 0u);
}

TEST(SubmitRing, ManyProducersOneConsumerLosesNothing) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2000;
  SubmitRing<std::uint32_t> ring(256);
  std::atomic<bool> done{false};
  std::vector<std::uint32_t> seen(kProducers * kPerProducer, 0);
  std::thread consumer([&] {
    std::uint32_t v;
    std::size_t got = 0;
    while (got < kProducers * kPerProducer) {
      if (ring.try_pop(&v)) {
        ++seen[v];
        ++got;
      } else if (done.load(std::memory_order_acquire) &&
                 ring.size_approx() == 0 && !ring.try_pop(&v)) {
        break;
      } else {
        std::this_thread::yield();
      }
    }
  });
  std::vector<std::thread> producers;
  std::atomic<int> started{0};
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      started.fetch_add(1);
      while (started.load() < kProducers) std::this_thread::yield();
      for (int i = 0; i < kPerProducer; ++i) {
        const auto v = static_cast<std::uint32_t>(p * kPerProducer + i);
        while (!ring.try_push(v)) std::this_thread::yield();
      }
    });
  }
  for (auto& t : producers) t.join();
  done.store(true, std::memory_order_release);
  consumer.join();
  for (std::size_t i = 0; i < seen.size(); ++i)
    ASSERT_EQ(seen[i], 1u) << "value " << i;
}

// --- TokenBucket ---------------------------------------------------------

TEST(TokenBucket, StartsFullAndDrains) {
  TokenBucket b(100, 4);
  EXPECT_EQ(b.available(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(b.try_take());
  EXPECT_FALSE(b.try_take());
}

TEST(TokenBucket, RefillIsCappedAtBurst) {
  TokenBucket b(1000, 8);
  b.refill(10.0, 1.0);  // 10000 tokens of credit, burst is 8
  EXPECT_EQ(b.available(), 8u);
}

TEST(TokenBucket, FactorScalesRefillAndZeroStopsIt) {
  TokenBucket b(1000, 1000);
  while (b.try_take()) {
  }
  b.refill(0.1, 0.0);
  EXPECT_FALSE(b.try_take()) << "factor 0 must not refill";
  b.refill(0.1, 0.5);  // 1000 * 0.1 * 0.5 = 50 tokens
  const std::uint64_t avail = b.available();
  EXPECT_GE(avail, 49u);
  EXPECT_LE(avail, 51u);
}

TEST(TokenBucket, FractionalCreditAccumulates) {
  TokenBucket b(10, 100);
  while (b.try_take()) {
  }
  b.refill(0.05, 1.0);  // 0.5 token: not yet
  EXPECT_EQ(b.available(), 0u);
  b.refill(0.05, 1.0);  // accumulates to 1.0
  EXPECT_EQ(b.available(), 1u);
}

// --- TenantSpec plumbing (grammar details live in test_spec_props) -------

TEST(ServeConfigTest, TenantListParsesIntoService) {
  ServeConfig cfg;
  cfg.runtime_spec = "xtask:threads=2,dlb=naws";
  cfg.tenants = TenantSpec::parse_list(
      "free:rate=100,quota=16;paid:rate=1000,quota=64,prio=3");
  TaskService svc(std::move(cfg));
  EXPECT_EQ(svc.num_tenants(), 2);
  EXPECT_EQ(svc.tenant_stats(0).name, "free");
  EXPECT_EQ(svc.tenant_stats(1).name, "paid");
  svc.stop();
  expect_accounting_closed(svc);
}

TEST(ServeConfigTest, RejectsNonXtaskBackendsAndBadThresholds) {
  ServeConfig cfg;
  cfg.tenants = TenantSpec::parse_list("t:rate=10,quota=4");
  cfg.runtime_spec = "gomp";
  EXPECT_THROW(TaskService{cfg}, std::invalid_argument);
  cfg.runtime_spec = "xtask:threads=2";
  cfg.throttle_at = 0.9;
  cfg.shed_at = 0.5;
  EXPECT_THROW(TaskService{cfg}, std::invalid_argument);
  ServeConfig empty;
  EXPECT_THROW(TaskService{empty}, std::invalid_argument);
}

// --- Service: happy path -------------------------------------------------

TEST(TaskServiceTest, ExecutesEverythingUnderLightLoad) {
  reset_executed();
  ServeConfig cfg;
  cfg.runtime_spec = "xtask:threads=2,dlb=naws";
  cfg.tenants = TenantSpec::parse_list(
      "a:rate=1000000,quota=100000,burst=100000;"
      "b:rate=1000000,quota=100000,burst=100000,prio=3");
  TaskService svc(std::move(cfg));

  constexpr int kEach = 500;
  std::uint64_t accepted[2] = {0, 0};
  for (int i = 0; i < kEach; ++i) {
    for (int t = 0; t < 2; ++t) {
      Request r;
      r.fn = count_request;
      r.a = static_cast<std::uint64_t>(i);
      Submit s = svc.submit(t, r);
      if (s.status == SubmitStatus::kAccepted) ++accepted[t];
      // Light load: quotas and rates are far above the offered load, so
      // the only legitimate non-accept is transient ring pressure.
      if (s.status == SubmitStatus::kRejected) {
        EXPECT_GT(s.retry_after_us, 0u);
      }
    }
  }
  svc.stop();
  expect_accounting_closed(svc);
  for (int t = 0; t < 2; ++t) {
    const TenantStats s = svc.tenant_stats(t);
    EXPECT_EQ(s.submitted, static_cast<std::uint64_t>(kEach));
    // The request fn ran exactly once per executed request (tenant ids in
    // the fn are 0-based = stamped index).
    EXPECT_EQ(g_executed[t].load(), s.executed);
    EXPECT_EQ(s.executed + s.shed + s.rejected, s.submitted);
  }
  // Executed requests flow into the profiler's serve counters: every
  // spawned request (all of them under light load) is counted at drain.
  const Counters total = svc.runtime().profiler().total_counters();
  EXPECT_EQ(total.nserve_requests, svc.totals().executed);
  EXPECT_GT(total.nserve_requests, 0u);
}

TEST(TaskServiceTest, ThrowingRequestsAreContained) {
  ServeConfig cfg;
  cfg.runtime_spec = "xtask:threads=2";
  cfg.tenants = TenantSpec::parse_list("t:rate=100000,quota=1000,burst=1000");
  TaskService svc(std::move(cfg));
  for (int i = 0; i < 50; ++i) {
    Request r;
    r.fn = throwing_request;
    svc.submit(0, r);
  }
  svc.stop();
  expect_accounting_closed(svc);
  EXPECT_GT(svc.totals().executed, 0u);
}

TEST(TaskServiceTest, OutOfRangeTenantIsRejectedWithoutRetry) {
  ServeConfig cfg;
  cfg.runtime_spec = "xtask:threads=2";
  cfg.tenants = TenantSpec::parse_list("t:rate=10,quota=4");
  TaskService svc(std::move(cfg));
  const Submit s = svc.submit(7, Request{});
  EXPECT_EQ(s.status, SubmitStatus::kRejected);
  EXPECT_EQ(s.retry_after_us, 0u);
}

// --- Service: overload & backpressure ------------------------------------

TEST(TaskServiceTest, FullRingsRejectWithRetryAfterNeverHang) {
  reset_executed();
  ServeConfig cfg;
  cfg.runtime_spec = "xtask:threads=2,dlb=naws";
  cfg.ring_capacity = 64;
  // Rate/quota far above the ring: the ring itself is the bottleneck.
  cfg.tenants =
      TenantSpec::parse_list("t:rate=1000000000,quota=100000,burst=1000000");
  TaskService svc(std::move(cfg));
  svc.pause_drain();
  // Give the loop a beat to observe the pause (it may drain a few first).
  std::this_thread::sleep_for(5ms);

  constexpr int kFlood = 1000;
  std::uint64_t accepted = 0, nonaccepted = 0;
  for (int i = 0; i < kFlood; ++i) {
    Request r;
    r.fn = count_request;
    const Submit s = svc.submit(0, r);
    if (s.status == SubmitStatus::kAccepted) {
      ++accepted;
    } else {
      ++nonaccepted;
      EXPECT_GT(s.retry_after_us, 0u)
          << "every reject/shed must carry a bounded retry hint";
      EXPECT_LE(s.retry_after_us, 1000000u);
    }
  }
  // The ring (64 slots, maybe a few drained pre-pause) bounds admission;
  // the vast majority of the flood was pushed back immediately.
  EXPECT_GT(nonaccepted, static_cast<std::uint64_t>(kFlood) / 2);
  EXPECT_GT(accepted, 0u);

  svc.resume_drain();
  svc.stop();
  expect_accounting_closed(svc);
  EXPECT_EQ(svc.totals().submitted, static_cast<std::uint64_t>(kFlood));
}

TEST(TaskServiceTest, ConcurrentMultiTenantSubmittersAccountExactly) {
  reset_executed();
  ServeConfig cfg;
  cfg.runtime_spec = "xtask:threads=4,zones=2,dlb=naws,tint=200";
  cfg.ring_capacity = 128;
  cfg.tenants = TenantSpec::parse_list(
      "bulk:rate=50000,quota=256,prio=0;"
      "std:rate=50000,quota=256,prio=1;"
      "prio:rate=50000,quota=256,prio=5");
  TaskService svc(std::move(cfg));

  constexpr int kPerTenant = 3000;
  std::vector<std::thread> clients;
  std::atomic<std::uint64_t> accepted[3] = {};
  for (int t = 0; t < 3; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kPerTenant; ++i) {
        Request r;
        r.fn = count_request;
        r.a = static_cast<std::uint64_t>(i);
        const Submit s = svc.submit(t, r);
        if (s.status == SubmitStatus::kAccepted)
          accepted[t].fetch_add(1, std::memory_order_relaxed);
        if ((i & 63) == 0) std::this_thread::yield();
      }
    });
  }
  for (auto& c : clients) c.join();
  svc.stop();
  expect_accounting_closed(svc);
  for (int t = 0; t < 3; ++t) {
    const TenantStats s = svc.tenant_stats(t);
    EXPECT_EQ(s.submitted, static_cast<std::uint64_t>(kPerTenant)) << s.name;
    EXPECT_EQ(s.executed + s.shed + s.rejected, s.submitted) << s.name;
    EXPECT_EQ(g_executed[t].load(), s.executed) << s.name;
  }
  // Trace metadata carries the per-tenant ledgers.
  const auto meta = svc.trace_meta();
  ASSERT_EQ(meta.size(), 4u);  // serve_state + 3 tenants
  EXPECT_EQ(meta[0].first, "serve_state");
  EXPECT_NE(meta[1].second.find("\"submitted\":"), std::string::npos);
}

// --- Service: chaos ------------------------------------------------------

TEST(TaskServiceChaos, WedgedAdmissionShedsInsteadOfDeadlocking) {
  reset_executed();
  FaultInjector fi(0xC0FFEE);
  fi.set_fail_rate(FaultPoint::kAdmissionStall, 0.3);
  fi.set_yield_rate(FaultPoint::kAdmissionStall, 0.2);
  FaultScope scope(fi);

  ServeConfig cfg;
  cfg.runtime_spec = "xtask:threads=2,dlb=naws,tint=200";
  cfg.ring_capacity = 64;
  cfg.tenants = TenantSpec::parse_list("t:rate=100000,quota=512,burst=1024");
  TaskService svc(std::move(cfg));

  constexpr int kTotal = 4000;
  std::uint64_t shed_seen = 0;
  for (int i = 0; i < kTotal; ++i) {
    const Submit s = svc.submit(0, Request{count_request});
    if (s.status == SubmitStatus::kShed) ++shed_seen;
    if ((i & 127) == 0) std::this_thread::sleep_for(100us);
  }
  svc.stop();
  expect_accounting_closed(svc);
  EXPECT_GT(shed_seen, 0u) << "a 30% wedged admission path must shed";
  EXPECT_GT(svc.totals().executed, 0u) << "and still make forward progress";
  EXPECT_GT(fi.failed(FaultPoint::kAdmissionStall), 0u);
}

TEST(TaskServiceChaos, QuarantinedWorkerTightensAdmission) {
  reset_executed();
  ServeConfig cfg;
  // Heartbeats + quarantine on; 4 workers so losing one is a 25% capacity
  // cut the admission factor must reflect.
  cfg.runtime_spec = "xtask:threads=4,zones=2,dlb=naws,hb=25,quarantine=on";
  // The bucket must be the binding constraint in BOTH phases (offered load
  // far above rate), so the measured accept rate tracks the admission
  // factor instead of CPU-scheduling noise: ~rate when healthy, ~rate x
  // (threads-1)/threads once a worker is quarantined.
  cfg.tenants = TenantSpec::parse_list("t:rate=1000,quota=100000,burst=16");
  TaskService svc(std::move(cfg));
  Runtime& rt = svc.runtime();
  const int threads = rt.config().num_threads;

  // Phase A: healthy baseline — no injector installed, nobody stalls.
  auto measure = [&](std::chrono::milliseconds window, bool only_degraded) {
    const auto t0 = std::chrono::steady_clock::now();
    std::uint64_t acc = 0, sub = 0;
    double min_factor = 1.0;
    while (std::chrono::steady_clock::now() - t0 < window) {
      if (only_degraded && rt.healthy_workers() == threads) break;
      min_factor = std::min(min_factor, svc.admission_factor());
      const Submit s = svc.submit(0, Request{count_request});
      ++sub;
      if (s.status == SubmitStatus::kAccepted) ++acc;
      std::this_thread::yield();
    }
    const double dt = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    struct R {
      double rate;
      double min_factor;
      double seconds;
    };
    return R{dt > 0 ? static_cast<double>(acc) / dt : 0.0, min_factor, dt};
  };
  const auto healthy = measure(200ms, false);
  EXPECT_GT(healthy.rate, 0.0);

  // Now arm kWorkerStall: the next time an idle worker passes its
  // injection point it stalls past the heartbeat deadline and the monitor
  // quarantines it.
  FaultInjector fi(0xDEAD);
  fi.set_fail_rate(FaultPoint::kWorkerStall, 1.0);
  FaultScope scope(fi);

  bool degraded = false;
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (std::chrono::steady_clock::now() < deadline) {
    if (rt.healthy_workers() < threads) {
      degraded = true;
      break;
    }
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_TRUE(degraded) << "kWorkerStall at rate 1.0 must quarantine";

  const auto sick = measure(300ms, true);
  // The admission factor reflects the lost capacity directly...
  EXPECT_LT(sick.min_factor, 1.0);
  EXPECT_LE(sick.min_factor,
            static_cast<double>(threads - 1) / threads + 0.01);
  // ...and the measured accept rate drops while the service keeps serving.
  if (sick.seconds > 0.025) {
    EXPECT_LT(sick.rate, healthy.rate);
  }

  const std::uint64_t exec_before = svc.totals().executed;
  std::this_thread::sleep_for(50ms);
  svc.stop();
  expect_accounting_closed(svc);
  EXPECT_GE(svc.totals().executed, exec_before);
  EXPECT_GT(svc.totals().executed, 0u) << "no deadlock: work kept flowing";
  EXPECT_GE(rt.health_stats().quarantines, 1u);
}

// --- Shutdown status, retry jitter, orphan accounting --------------------

TEST(TaskServiceTest, StoppedServiceAnswersShutdownNotZeroHintReject) {
  ServeConfig cfg;
  cfg.runtime_spec = "xtask:threads=2";
  cfg.tenants = TenantSpec::parse_list("t:rate=10,quota=4");
  TaskService svc(std::move(cfg));
  svc.stop();
  Request r;
  r.fn = count_request;
  const Submit s = svc.submit(0, r);
  EXPECT_EQ(s.status, SubmitStatus::kShutdown)
      << "a stopped service must be distinguishable from a zero-hint "
         "reject (bad tenant / unknown graph)";
  EXPECT_EQ(s.retry_after_us, 0u);
  expect_accounting_closed(svc);
}

TEST(TaskServiceTest, RetryHintsAreJitteredAcrossRejects) {
  // Identical rejects (same tenant, same reason, same admission factor)
  // must NOT get identical retry hints, or synchronized clients re-arrive
  // in lockstep. Fill the ring with the drain paused and sample the
  // ring-full reject hints.
  reset_executed();
  ServeConfig cfg;
  cfg.runtime_spec = "xtask:threads=2,dlb=naws";
  cfg.ring_capacity = 32;
  // Modest rate so the base hint is thousands of µs — wide enough that
  // the ±25% window yields visibly distinct integers.
  cfg.tenants =
      TenantSpec::parse_list("t:rate=1000,quota=100000,burst=1000000");
  TaskService svc(std::move(cfg));
  svc.pause_drain();
  std::this_thread::sleep_for(5ms);

  std::vector<std::uint64_t> hints;
  for (int i = 0; i < 400 && hints.size() < 64; ++i) {
    Request r;
    r.fn = count_request;
    const Submit s = svc.submit(0, r);
    if (s.status == SubmitStatus::kRejected && s.retry_after_us > 0)
      hints.push_back(s.retry_after_us);
  }
  ASSERT_GE(hints.size(), 16u) << "expected a flood of ring-full rejects";

  std::uint64_t lo = hints[0], hi = hints[0];
  std::size_t distinct = 0;
  std::vector<std::uint64_t> sorted = hints;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i == 0 || sorted[i] != sorted[i - 1]) ++distinct;
    lo = std::min(lo, sorted[i]);
    hi = std::max(hi, sorted[i]);
  }
  EXPECT_GE(distinct, 4u) << "hints are deterministic multiples again";
  // ±25% window: max/min stays under 1.25/0.75 (plus integer-math slack).
  EXPECT_LE(static_cast<double>(hi),
            static_cast<double>(lo) * (1.25 / 0.75) * 1.10 + 2.0);

  svc.resume_drain();
  svc.stop();
  expect_accounting_closed(svc);
}

TEST(TaskServiceTest, OrphanAccountingKeepsInvariantExact) {
  reset_executed();
  ServeConfig cfg;
  cfg.runtime_spec = "xtask:threads=2";
  cfg.tenants = TenantSpec::parse_list("t:rate=100000,quota=1000");
  TaskService svc(std::move(cfg));
  for (int i = 0; i < 10; ++i) {
    Request r;
    r.fn = count_request;
    svc.submit(0, r);
  }
  // Transport path: 5 published requests of a dead client, never drained.
  svc.account_orphaned(0, 5);
  // Out-of-range tenants are ignored (a crashed client's ring can hold
  // arbitrary bytes).
  svc.account_orphaned(7, 3);
  svc.account_orphaned(-1, 3);
  svc.stop();
  expect_accounting_closed(svc);
  EXPECT_EQ(svc.totals().orphaned, 5u);
  EXPECT_EQ(svc.tenant_stats(0).orphaned, 5u);
}

}  // namespace
}  // namespace xtask::serve
