// Centralized barrier tests: the XGOMP-style arrival + atomic task-count
// release protocol, including multi-generation reuse and threaded stress.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/central_barrier.hpp"

namespace xtask {
namespace {

TEST(CentralBarrier, ReleasesOnlyWhenAllArrivedAndDrained) {
  CentralBarrier cb(3);
  cb.task_created();
  cb.arrive(1);
  cb.arrive(1);
  EXPECT_FALSE(cb.poll(1));  // missing one arrival, count > 0
  cb.arrive(1);
  EXPECT_FALSE(cb.poll(1));  // all arrived but one task in flight
  cb.task_finished();
  EXPECT_TRUE(cb.poll(1));
  EXPECT_TRUE(cb.poll(1));  // idempotent for the same generation
}

TEST(CentralBarrier, TaskCountTracksCreateFinish) {
  CentralBarrier cb(1);
  EXPECT_EQ(cb.task_count(), 0);
  cb.task_created();
  cb.task_created();
  EXPECT_EQ(cb.task_count(), 2);
  cb.task_finished();
  EXPECT_EQ(cb.task_count(), 1);
  cb.task_finished();
  EXPECT_EQ(cb.task_count(), 0);
}

TEST(CentralBarrier, MultipleGenerations) {
  CentralBarrier cb(2);
  for (std::uint64_t gen = 1; gen <= 4; ++gen) {
    cb.task_created();
    cb.arrive(gen);
    cb.arrive(gen);
    EXPECT_FALSE(cb.poll(gen)) << gen;
    cb.task_finished();
    EXPECT_TRUE(cb.poll(gen)) << gen;
  }
}

TEST(CentralBarrierStress, ThreadedProducersDrainAndRelease) {
  constexpr int kN = 6;
  CentralBarrier cb(kN);
  std::atomic<int> released{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < kN; ++w) {
    threads.emplace_back([&, w] {
      // Phase 1: create and finish some tasks.
      for (int i = 0; i < 100 + w * 13; ++i) {
        cb.task_created();
        cb.task_finished();
      }
      // Phase 2: barrier.
      cb.arrive(1);
      int spins = 0;
      while (!cb.poll(1)) {
        if (++spins % 32 == 0) std::this_thread::yield();
      }
      released.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(released.load(), kN);
  EXPECT_EQ(cb.task_count(), 0);
}

}  // namespace
}  // namespace xtask
