// B-Queue unit + stress tests: SPSC ordering, capacity semantics, the
// batching probe, consumer backtracking, and a producer/consumer stress
// run checking that every element arrives exactly once and in order.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/bqueue.hpp"

namespace xtask {
namespace {

// Tests push/pop raw pointers; values are fabricated non-null addresses.
int* val(std::uintptr_t i) { return reinterpret_cast<int*>(i << 4 | 0x8); }

TEST(BQueue, StartsEmpty) {
  BQueue<int*> q(16, 4);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.pop(), nullptr);
  EXPECT_EQ(q.capacity(), 16u);
}

TEST(BQueue, FifoSingleThread) {
  BQueue<int*> q(16, 4);
  for (std::uintptr_t i = 1; i <= 8; ++i) ASSERT_TRUE(q.push(val(i)));
  for (std::uintptr_t i = 1; i <= 8; ++i) EXPECT_EQ(q.pop(), val(i));
  EXPECT_EQ(q.pop(), nullptr);
}

TEST(BQueue, InterleavedPushPop) {
  BQueue<int*> q(8, 2);
  std::uintptr_t next_push = 1;
  std::uintptr_t next_pop = 1;
  for (int round = 0; round < 100; ++round) {
    if (q.push(val(next_push))) ++next_push;
    if (round % 3 == 0) {
      int* p = q.pop();
      if (p != nullptr) {
        EXPECT_EQ(p, val(next_pop));
        ++next_pop;
      }
    }
  }
  for (int* p = q.pop(); p != nullptr; p = q.pop()) {
    EXPECT_EQ(p, val(next_pop));
    ++next_pop;
  }
  EXPECT_EQ(next_pop, next_push);
}

TEST(BQueue, ReportsFullViaBatchProbe) {
  // With capacity 8 and batch 4 the producer declares full once the slot
  // 4 ahead is still occupied — conservative, never overruns.
  BQueue<int*> q(8, 4);
  int pushed = 0;
  while (q.push(val(static_cast<std::uintptr_t>(pushed + 1)))) ++pushed;
  EXPECT_GE(pushed, 4);   // at least one batch fits
  EXPECT_LE(pushed, 8);   // never exceeds capacity
  // Draining frees space for the producer again.
  for (int i = 0; i < pushed; ++i) ASSERT_NE(q.pop(), nullptr);
  EXPECT_TRUE(q.push(val(99)));
}

TEST(BQueue, BacktrackingFindsPartialBatch) {
  // Push fewer than one batch; the consumer must halve its probe distance
  // down to 1 and still find the elements.
  BQueue<int*> q(64, 32);
  ASSERT_TRUE(q.push(val(1)));
  EXPECT_EQ(q.pop(), val(1));
  EXPECT_EQ(q.pop(), nullptr);
  ASSERT_TRUE(q.push(val(2)));
  ASSERT_TRUE(q.push(val(3)));
  ASSERT_TRUE(q.push(val(4)));
  EXPECT_EQ(q.pop(), val(2));
  EXPECT_EQ(q.pop(), val(3));
  EXPECT_EQ(q.pop(), val(4));
}

TEST(BQueue, WrapsAroundManyTimes) {
  BQueue<int*> q(8, 2);
  std::uintptr_t v = 1;
  for (int lap = 0; lap < 1000; ++lap) {
    ASSERT_TRUE(q.push(val(v)));
    ASSERT_TRUE(q.push(val(v + 1)));
    EXPECT_EQ(q.pop(), val(v));
    EXPECT_EQ(q.pop(), val(v + 1));
    v += 2;
  }
}

TEST(BQueue, MinimalCapacityTwo) {
  BQueue<int*> q(2, 1);
  EXPECT_TRUE(q.push(val(1)));
  EXPECT_EQ(q.pop(), val(1));
  EXPECT_TRUE(q.push(val(2)));
  EXPECT_EQ(q.pop(), val(2));
}

TEST(BQueueStress, SpscTwoThreadsAllDeliveredInOrder) {
  constexpr std::uintptr_t kCount = 200'000;
  BQueue<int*> q(1024, 64);
  std::vector<std::uintptr_t> received;
  received.reserve(kCount);
  std::thread consumer([&] {
    while (received.size() < kCount) {
      int* p = q.pop();
      if (p != nullptr)
        received.push_back(reinterpret_cast<std::uintptr_t>(p) >> 4);
      else
        std::this_thread::yield();
    }
  });
  for (std::uintptr_t i = 1; i <= kCount; ++i) {
    while (!q.push(val(i))) std::this_thread::yield();
  }
  consumer.join();
  ASSERT_EQ(received.size(), kCount);
  for (std::uintptr_t i = 0; i < kCount; ++i)
    ASSERT_EQ(received[i], i + 1) << "at " << i;
}

class BQueueCapacities : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(BQueueCapacities, FillDrainCycleIsLossless) {
  const std::uint32_t cap = GetParam();
  BQueue<int*> q(cap, cap / 2);
  std::uintptr_t pushed = 0;
  std::uintptr_t popped = 0;
  for (int cycle = 0; cycle < 50; ++cycle) {
    while (q.push(val(pushed + 1))) ++pushed;
    for (int* p = q.pop(); p != nullptr; p = q.pop()) {
      ++popped;
      ASSERT_EQ(reinterpret_cast<std::uintptr_t>(p) >> 4, popped);
    }
  }
  EXPECT_EQ(pushed, popped);
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, BQueueCapacities,
                         ::testing::Values(2u, 4u, 8u, 32u, 128u, 1024u,
                                           4096u));

}  // namespace
}  // namespace xtask
