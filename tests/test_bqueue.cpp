// B-Queue unit + stress tests: SPSC ordering, capacity semantics, the
// batching probe, consumer backtracking, and a producer/consumer stress
// run checking that every element arrives exactly once and in order.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/bqueue.hpp"
#include "core/fault.hpp"

namespace xtask {
namespace {

// Tests push/pop raw pointers; values are fabricated non-null addresses.
int* val(std::uintptr_t i) { return reinterpret_cast<int*>(i << 4 | 0x8); }

TEST(BQueue, StartsEmpty) {
  BQueue<int*> q(16, 4);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.pop(), nullptr);
  EXPECT_EQ(q.capacity(), 16u);
}

TEST(BQueue, FifoSingleThread) {
  BQueue<int*> q(16, 4);
  for (std::uintptr_t i = 1; i <= 8; ++i) ASSERT_TRUE(q.push(val(i)));
  for (std::uintptr_t i = 1; i <= 8; ++i) EXPECT_EQ(q.pop(), val(i));
  EXPECT_EQ(q.pop(), nullptr);
}

TEST(BQueue, InterleavedPushPop) {
  BQueue<int*> q(8, 2);
  std::uintptr_t next_push = 1;
  std::uintptr_t next_pop = 1;
  for (int round = 0; round < 100; ++round) {
    if (q.push(val(next_push))) ++next_push;
    if (round % 3 == 0) {
      int* p = q.pop();
      if (p != nullptr) {
        EXPECT_EQ(p, val(next_pop));
        ++next_pop;
      }
    }
  }
  for (int* p = q.pop(); p != nullptr; p = q.pop()) {
    EXPECT_EQ(p, val(next_pop));
    ++next_pop;
  }
  EXPECT_EQ(next_pop, next_push);
}

TEST(BQueue, ReportsFullViaBatchProbe) {
  // With capacity 8 and batch 4 the producer declares full once the slot
  // 4 ahead is still occupied — conservative, never overruns.
  BQueue<int*> q(8, 4);
  int pushed = 0;
  while (q.push(val(static_cast<std::uintptr_t>(pushed + 1)))) ++pushed;
  EXPECT_GE(pushed, 4);   // at least one batch fits
  EXPECT_LE(pushed, 8);   // never exceeds capacity
  // Draining frees space for the producer again.
  for (int i = 0; i < pushed; ++i) ASSERT_NE(q.pop(), nullptr);
  EXPECT_TRUE(q.push(val(99)));
}

TEST(BQueue, BacktrackingFindsPartialBatch) {
  // Push fewer than one batch; the consumer must halve its probe distance
  // down to 1 and still find the elements.
  BQueue<int*> q(64, 32);
  ASSERT_TRUE(q.push(val(1)));
  EXPECT_EQ(q.pop(), val(1));
  EXPECT_EQ(q.pop(), nullptr);
  ASSERT_TRUE(q.push(val(2)));
  ASSERT_TRUE(q.push(val(3)));
  ASSERT_TRUE(q.push(val(4)));
  EXPECT_EQ(q.pop(), val(2));
  EXPECT_EQ(q.pop(), val(3));
  EXPECT_EQ(q.pop(), val(4));
}

TEST(BQueue, WrapsAroundManyTimes) {
  BQueue<int*> q(8, 2);
  std::uintptr_t v = 1;
  for (int lap = 0; lap < 1000; ++lap) {
    ASSERT_TRUE(q.push(val(v)));
    ASSERT_TRUE(q.push(val(v + 1)));
    EXPECT_EQ(q.pop(), val(v));
    EXPECT_EQ(q.pop(), val(v + 1));
    v += 2;
  }
}

TEST(BQueue, MinimalCapacityTwo) {
  BQueue<int*> q(2, 1);
  EXPECT_TRUE(q.push(val(1)));
  EXPECT_EQ(q.pop(), val(1));
  EXPECT_TRUE(q.push(val(2)));
  EXPECT_EQ(q.pop(), val(2));
}

TEST(BQueueStress, SpscTwoThreadsAllDeliveredInOrder) {
  constexpr std::uintptr_t kCount = 200'000;
  BQueue<int*> q(1024, 64);
  std::vector<std::uintptr_t> received;
  received.reserve(kCount);
  std::thread consumer([&] {
    while (received.size() < kCount) {
      int* p = q.pop();
      if (p != nullptr)
        received.push_back(reinterpret_cast<std::uintptr_t>(p) >> 4);
      else
        std::this_thread::yield();
    }
  });
  for (std::uintptr_t i = 1; i <= kCount; ++i) {
    while (!q.push(val(i))) std::this_thread::yield();
  }
  consumer.join();
  ASSERT_EQ(received.size(), kCount);
  for (std::uintptr_t i = 0; i < kCount; ++i)
    ASSERT_EQ(received[i], i + 1) << "at " << i;
}

TEST(BQueueCounters, SizeApproxTracksPushPop) {
  BQueue<int*> q(16, 4);
  EXPECT_EQ(q.size_approx(), 0u);
  for (std::uintptr_t i = 1; i <= 5; ++i) ASSERT_TRUE(q.push(val(i)));
  EXPECT_EQ(q.size_approx(), 5u);
  EXPECT_FALSE(q.empty());
  ASSERT_NE(q.pop(), nullptr);
  ASSERT_NE(q.pop(), nullptr);
  EXPECT_EQ(q.size_approx(), 3u);
  while (q.pop() != nullptr) {
  }
  EXPECT_EQ(q.size_approx(), 0u);
  EXPECT_TRUE(q.empty());
}

TEST(BQueueCounters, ExactAcrossManyWraps) {
  // The counters are free-running uint32s; occupancy must stay exact after
  // the indices lap the ring many times.
  BQueue<int*> q(8, 2);
  std::uintptr_t v = 1;
  for (int lap = 0; lap < 5000; ++lap) {
    ASSERT_TRUE(q.push(val(v)));
    ASSERT_TRUE(q.push(val(v + 1)));
    EXPECT_EQ(q.size_approx(), 2u);
    EXPECT_EQ(q.pop(), val(v));
    EXPECT_EQ(q.pop(), val(v + 1));
    EXPECT_TRUE(q.empty());
    v += 2;
  }
}

TEST(BQueueBatch, RoundTrip) {
  BQueue<int*> q(16, 4);
  int* in[8];
  for (std::uintptr_t i = 0; i < 8; ++i) in[i] = val(i + 1);
  EXPECT_EQ(q.push_batch(in, 8), 8u);
  EXPECT_EQ(q.size_approx(), 8u);
  int* out[16] = {};
  EXPECT_EQ(q.pop_batch(out, 16), 8u);
  for (std::uintptr_t i = 0; i < 8; ++i) EXPECT_EQ(out[i], val(i + 1));
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.pop_batch(out, 16), 0u);
}

TEST(BQueueBatch, PartialBatchAgainstFullQueue) {
  // push_batch uses the exact counters, so unlike the scalar push's
  // conservative probe it can fill the ring completely — and no further.
  BQueue<int*> q(8, 4);
  int* in[12];
  for (std::uintptr_t i = 0; i < 12; ++i) in[i] = val(i + 1);
  EXPECT_EQ(q.push_batch(in, 12), 8u);
  EXPECT_EQ(q.size_approx(), 8u);
  EXPECT_EQ(q.push_batch(in, 1), 0u);
  int* out[4] = {};
  EXPECT_EQ(q.pop_batch(out, 4), 4u);
  for (std::uintptr_t i = 0; i < 4; ++i) EXPECT_EQ(out[i], val(i + 1));
  // Four slots freed: the next oversized batch lands exactly four.
  EXPECT_EQ(q.push_batch(in, 12), 4u);
  // FIFO across the partial batches: 5..8 from the first, 1..4 from the
  // second.
  for (std::uintptr_t i = 5; i <= 8; ++i) EXPECT_EQ(q.pop(), val(i));
  for (std::uintptr_t i = 1; i <= 4; ++i) EXPECT_EQ(q.pop(), val(i));
  EXPECT_TRUE(q.empty());
}

TEST(BQueueBatch, WrapAroundManyLaps) {
  BQueue<int*> q(8, 2);
  std::uintptr_t v = 1;
  int* in[6];
  int* out[6] = {};
  for (int lap = 0; lap < 2000; ++lap) {
    for (std::uintptr_t i = 0; i < 6; ++i) in[i] = val(v + i);
    ASSERT_EQ(q.push_batch(in, 6), 6u);
    ASSERT_EQ(q.pop_batch(out, 6), 6u);
    for (std::uintptr_t i = 0; i < 6; ++i) ASSERT_EQ(out[i], val(v + i));
    v += 6;
  }
  EXPECT_TRUE(q.empty());
}

TEST(BQueueBatch, MixesWithScalarOps) {
  // Batch and scalar paths share the same indices and counters; interleave
  // them and check FIFO order plus the probe invariants (a scalar push
  // after a partial pop_batch must not overrun undrained slots).
  BQueue<int*> q(16, 4);
  int* in[4] = {val(1), val(2), val(3), val(4)};
  ASSERT_EQ(q.push_batch(in, 4), 4u);
  ASSERT_TRUE(q.push(val(5)));
  int* out[2] = {};
  ASSERT_EQ(q.pop_batch(out, 2), 2u);
  EXPECT_EQ(out[0], val(1));
  EXPECT_EQ(out[1], val(2));
  EXPECT_EQ(q.pop(), val(3));
  in[0] = val(6);
  ASSERT_EQ(q.push_batch(in, 1), 1u);
  EXPECT_EQ(q.pop(), val(4));
  EXPECT_EQ(q.pop(), val(5));
  EXPECT_EQ(q.pop(), val(6));
  EXPECT_TRUE(q.empty());
}

TEST(BQueueBatch, FaultHooksGateBatchPaths) {
  // The chaos harness must be able to force the batch paths onto their
  // backpressure/retry branches exactly like the scalar ones.
  BQueue<int*> q(16, 4);
  int* in[4] = {val(1), val(2), val(3), val(4)};
  int* out[4] = {};
  FaultInjector fi(1234);
  FaultScope scope(fi);

  fi.set_fail_rate(FaultPoint::kQueuePush, 1.0);
  EXPECT_EQ(q.push_batch(in, 4), 0u);
  EXPECT_GE(fi.failed(FaultPoint::kQueuePush), 1u);
  EXPECT_TRUE(q.empty());

  fi.set_fail_rate(FaultPoint::kQueuePush, 0.0);
  ASSERT_EQ(q.push_batch(in, 4), 4u);

  fi.set_fail_rate(FaultPoint::kQueuePop, 1.0);
  EXPECT_EQ(q.pop_batch(out, 4), 0u);
  EXPECT_GE(fi.failed(FaultPoint::kQueuePop), 1u);
  EXPECT_EQ(q.size_approx(), 4u);  // nothing was consumed

  fi.set_fail_rate(FaultPoint::kQueuePop, 0.0);
  ASSERT_EQ(q.pop_batch(out, 4), 4u);
  for (std::uintptr_t i = 0; i < 4; ++i) EXPECT_EQ(out[i], val(i + 1));
}

TEST(BQueueBatchStress, SpscBatchesDeliveredInOrder) {
  // Producer pushes variable-size batches, consumer drains with pop_batch:
  // the counter handshake must deliver every element exactly once, in
  // order, across thread boundaries (TSAN exercises the release/acquire
  // pairing).
  constexpr std::uintptr_t kCount = 100'000;
  BQueue<int*> q(256, 32);
  std::vector<std::uintptr_t> received;
  received.reserve(kCount);
  std::thread consumer([&] {
    int* out[48];
    while (received.size() < kCount) {
      const std::size_t got = q.pop_batch(out, 48);
      if (got == 0) {
        std::this_thread::yield();
        continue;
      }
      for (std::size_t i = 0; i < got; ++i)
        received.push_back(reinterpret_cast<std::uintptr_t>(out[i]) >> 4);
    }
  });
  int* in[37];
  std::uintptr_t next = 1;
  while (next <= kCount) {
    std::size_t n = (next * 7) % 37 + 1;  // varying batch sizes
    if (next + n - 1 > kCount) n = kCount - next + 1;
    for (std::size_t i = 0; i < n; ++i) in[i] = val(next + i);
    std::size_t sent = 0;
    while (sent < n) {
      const std::size_t k = q.push_batch(in + sent, n - sent);
      if (k == 0) std::this_thread::yield();
      sent += k;
    }
    next += n;
  }
  consumer.join();
  ASSERT_EQ(received.size(), kCount);
  for (std::uintptr_t i = 0; i < kCount; ++i)
    ASSERT_EQ(received[i], i + 1) << "at " << i;
}

class BQueueCapacities : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(BQueueCapacities, FillDrainCycleIsLossless) {
  const std::uint32_t cap = GetParam();
  BQueue<int*> q(cap, cap / 2);
  std::uintptr_t pushed = 0;
  std::uintptr_t popped = 0;
  for (int cycle = 0; cycle < 50; ++cycle) {
    while (q.push(val(pushed + 1))) ++pushed;
    for (int* p = q.pop(); p != nullptr; p = q.pop()) {
      ++popped;
      ASSERT_EQ(reinterpret_cast<std::uintptr_t>(p) >> 4, popped);
    }
  }
  EXPECT_EQ(pushed, popped);
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, BQueueCapacities,
                         ::testing::Values(2u, 4u, 8u, 32u, 128u, 1024u,
                                           4096u));

}  // namespace
}  // namespace xtask
