// Property/fuzz tests for the scheduler-trace format (src/trace/format.hpp):
//   * arbitrary generated traces round-trip through both encodings;
//   * truncated, corrupted, and version-skewed inputs fail with a
//     TraceError naming the offending record/line — and never crash,
//     hang, or throw anything else;
//   * the DAG fingerprint is invariant under relabeling/retiming and
//     sensitive to structure.
// Generation uses the same hand-rolled SplitMix64 driver as
// test_spec_props.cpp: deterministic, seed printed on failure, no external
// property-testing dependency.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "trace/format.hpp"

namespace xtask::trace {
namespace {

/// SplitMix64: tiny, seedable, good enough to drive case generation.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  /// Uniform in [lo, hi] (inclusive).
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
    return lo + next() % (hi - lo + 1);
  }

 private:
  std::uint64_t state_;
};

/// Meta strings restricted to the sanitizer-stable charset, so write ->
/// read reproduces them byte-for-byte.
std::string arb_meta(Rng& rng) {
  static const char cs[] = "abcdefghijklmnopqrstuvwxyz0123456789:=,.x-";
  std::string s;
  const std::size_t n = rng.range(0, 24);
  for (std::size_t i = 0; i < n; ++i)
    s += cs[rng.range(0, sizeof(cs) - 2)];
  return s;
}

/// An arbitrary *well-formed* trace: valid kinds, in-range workers/peers,
/// unique nonzero spawn ids, ordered intervals — i.e. anything a real
/// recorder could legally emit.
Trace arb_trace(Rng& rng) {
  Trace tr;
  tr.nworkers = static_cast<std::uint32_t>(rng.range(1, 16));
  // %.3f-exact rate so the JSONL round trip is lossless.
  tr.cycles_per_us = static_cast<double>(rng.range(0, 40'000)) * 0.125;
  tr.backend = arb_meta(rng);
  tr.topology = arb_meta(rng);
  const std::size_t n = rng.range(0, 200);
  std::uint64_t next_id = 1;
  std::vector<std::uint64_t> ids;
  for (std::size_t i = 0; i < n; ++i) {
    TraceRecord r;
    r.kind = static_cast<std::uint8_t>(rng.range(1, 6));
    r.worker = static_cast<std::uint16_t>(rng.range(0, tr.nworkers - 1));
    r.zone = static_cast<std::uint8_t>(rng.range(0, 3));
    switch (static_cast<RecordKind>(r.kind)) {
      case RecordKind::kSpawn:
        r.id = next_id++;
        r.t0 = rng.next() >> 16;
        r.ref = ids.empty() ? 0 : ids[rng.range(0, ids.size() - 1)];
        ids.push_back(r.id);
        break;
      case RecordKind::kExec:
        r.id = ids.empty() ? next_id++ : ids[rng.range(0, ids.size() - 1)];
        r.t0 = rng.next() >> 16;
        r.t1 = r.t0 + rng.range(0, 1 << 20);
        r.ref = rng.range(0, 1 << 20);
        break;
      case RecordKind::kStealMsg:
      case RecordKind::kStealDirect:
        r.aux = static_cast<std::uint32_t>(rng.range(0, tr.nworkers - 1));
        r.t0 = rng.next() >> 16;
        r.t1 = r.t0;
        r.ref = rng.range(1, 64);
        break;
      case RecordKind::kIdle:
        r.t0 = rng.next() >> 16;
        r.t1 = r.t0 + rng.range(0, 1 << 24);
        break;
      case RecordKind::kDep:
        r.id = ids.empty() ? next_id++ : ids.back();
        r.aux = static_cast<std::uint32_t>(rng.range(0, 2));
        r.ref = rng.next();
        break;
    }
    tr.records.push_back(r);
  }
  return tr;
}

void expect_equal(const Trace& a, const Trace& b, const std::string& ctx) {
  ASSERT_EQ(a.version, b.version) << ctx;
  ASSERT_EQ(a.nworkers, b.nworkers) << ctx;
  ASSERT_DOUBLE_EQ(a.cycles_per_us, b.cycles_per_us) << ctx;
  ASSERT_EQ(a.backend, b.backend) << ctx;
  ASSERT_EQ(a.topology, b.topology) << ctx;
  ASSERT_EQ(a.records.size(), b.records.size()) << ctx;
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    const TraceRecord& x = a.records[i];
    const TraceRecord& y = b.records[i];
    ASSERT_EQ(x.kind, y.kind) << ctx << " record " << i;
    ASSERT_EQ(x.zone, y.zone) << ctx << " record " << i;
    ASSERT_EQ(x.worker, y.worker) << ctx << " record " << i;
    ASSERT_EQ(x.aux, y.aux) << ctx << " record " << i;
    ASSERT_EQ(x.id, y.id) << ctx << " record " << i;
    ASSERT_EQ(x.t0, y.t0) << ctx << " record " << i;
    ASSERT_EQ(x.t1, y.t1) << ctx << " record " << i;
    ASSERT_EQ(x.ref, y.ref) << ctx << " record " << i;
  }
}

// ---------------------------------------------------------------------------
// Round trips.

TEST(TraceFormatProps, BinaryRoundTripsArbitraryTraces) {
  Rng rng(0xB1A5Full);
  for (int i = 0; i < 200; ++i) {
    const Trace tr = arb_trace(rng);
    std::stringstream ss;
    write_binary(tr, ss);
    const Trace back = read_binary(ss);
    expect_equal(tr, back, "binary case " + std::to_string(i));
    ASSERT_NO_THROW(back.validate()) << "case " << i;
  }
}

TEST(TraceFormatProps, JsonlRoundTripsArbitraryTraces) {
  Rng rng(0x15C0DEull);
  for (int i = 0; i < 200; ++i) {
    const Trace tr = arb_trace(rng);
    std::stringstream ss;
    write_jsonl(tr, ss);
    const Trace back = read_jsonl(ss);
    expect_equal(tr, back, "jsonl case " + std::to_string(i));
  }
}

TEST(TraceFormatProps, EncodingsAgreeOnDerivedViews) {
  Rng rng(0xD1CEull);
  for (int i = 0; i < 50; ++i) {
    const Trace tr = arb_trace(rng);
    std::stringstream sb, sj;
    write_binary(tr, sb);
    write_jsonl(tr, sj);
    const Trace b = read_binary(sb);
    const Trace j = read_jsonl(sj);
    ASSERT_EQ(b.dag_fingerprint(), j.dag_fingerprint()) << i;
    ASSERT_EQ(b.spawn_count(), j.spawn_count()) << i;
    ASSERT_EQ(b.makespan_cycles(), j.makespan_cycles()) << i;
    ASSERT_EQ(b.busy_per_worker(), j.busy_per_worker()) << i;
  }
}

// ---------------------------------------------------------------------------
// Hostile inputs: fail loudly, name the damage, never crash or hang.

std::string binary_bytes(const Trace& tr) {
  std::stringstream ss;
  write_binary(tr, ss);
  return ss.str();
}

TEST(TraceFormatProps, TruncatedBinaryNamesTheCut) {
  Rng rng(0x7142Cull);
  const Trace tr = arb_trace(rng);
  const std::string full = binary_bytes(tr);
  // Every proper prefix must be rejected with a TraceError; prefixes long
  // enough to reach the record stream must name the record index.
  for (std::size_t cut = 0; cut < full.size(); cut += 7) {
    std::stringstream ss(full.substr(0, cut));
    try {
      read_binary(ss);
      FAIL() << "prefix of " << cut << " bytes parsed as a full trace";
    } catch (const TraceError& e) {
      const std::string msg = e.what();
      EXPECT_TRUE(msg.find("truncated") != std::string::npos ||
                  msg.find("bad magic") != std::string::npos ||
                  msg.find("cut short") != std::string::npos)
          << "cut=" << cut << ": " << msg;
    }
  }
}

TEST(TraceFormatProps, TruncationDiagnosticNamesRecordIndex) {
  Trace tr;
  tr.nworkers = 2;
  for (int i = 0; i < 5; ++i) {
    TraceRecord r;
    r.kind = static_cast<std::uint8_t>(RecordKind::kSpawn);
    r.id = static_cast<std::uint64_t>(i + 1);
    tr.records.push_back(r);
  }
  const std::string full = binary_bytes(tr);
  // Cut mid-way through record 3.
  std::stringstream ss(
      full.substr(0, full.size() - 2 * sizeof(TraceRecord) + 5));
  try {
    read_binary(ss);
    FAIL() << "truncated stream parsed";
  } catch (const TraceError& e) {
    EXPECT_NE(std::string(e.what()).find("record 3 of 5"), std::string::npos)
        << e.what();
  }
}

TEST(TraceFormatProps, VersionSkewIsRejectedByBothEncodings) {
  Trace tr;
  tr.nworkers = 1;
  std::string bytes = binary_bytes(tr);
  bytes[4] = 99;  // version field follows the 4-byte magic
  std::stringstream sb(bytes);
  try {
    read_binary(sb);
    FAIL() << "version 99 accepted";
  } catch (const TraceError& e) {
    EXPECT_NE(std::string(e.what()).find("unsupported trace version 99"),
              std::string::npos)
        << e.what();
  }
  std::stringstream sj("{\"xtask_trace\":99,\"nworkers\":1}\n");
  try {
    read_jsonl(sj);
    FAIL() << "version 99 accepted";
  } catch (const TraceError& e) {
    EXPECT_NE(std::string(e.what()).find("unsupported trace version 99"),
              std::string::npos)
        << e.what();
  }
}

TEST(TraceFormatProps, BadMagicIsNamed) {
  std::stringstream ss(std::string("NOPE") + std::string(64, '\0'));
  try {
    read_binary(ss);
    FAIL() << "bad magic accepted";
  } catch (const TraceError& e) {
    EXPECT_NE(std::string(e.what()).find("bad magic"), std::string::npos);
  }
}

TEST(TraceFormatProps, SingleByteCorruptionNeverCrashes) {
  Rng rng(0xC0442ull);
  for (int i = 0; i < 300; ++i) {
    Trace tr = arb_trace(rng);
    std::string bytes = binary_bytes(tr);
    if (bytes.empty()) continue;
    const std::size_t at = rng.range(0, bytes.size() - 1);
    bytes[at] = static_cast<char>(rng.next());
    std::stringstream ss(bytes);
    try {
      const Trace back = read_binary(ss);
      // Parse may legitimately succeed (the flip landed in a timestamp);
      // validation may still object, which must also be a clean TraceError.
      try {
        back.validate();
      } catch (const TraceError&) {
      }
    } catch (const TraceError&) {
      // Named rejection is the expected failure mode.
    }
  }
}

TEST(TraceFormatProps, RandomGarbageNeverCrashesEitherReader) {
  Rng rng(0x6A46A6Eull);
  for (int i = 0; i < 300; ++i) {
    std::string junk;
    const std::size_t n = rng.range(0, 512);
    for (std::size_t b = 0; b < n; ++b)
      junk += static_cast<char>(rng.next());
    // Half the cases get a plausible prefix so the readers run deeper.
    if (rng.next() & 1) junk = std::string("XTRC", 4) + junk;
    std::stringstream sb(junk);
    try {
      read_binary(sb);
    } catch (const TraceError&) {
    }
    std::stringstream sj(junk);
    try {
      read_jsonl(sj);
    } catch (const TraceError&) {
    }
  }
}

TEST(TraceFormatProps, JsonlDiagnosticsNameLineAndRecord) {
  std::stringstream ss(
      "{\"xtask_trace\":1,\"nworkers\":2}\n"
      "{\"k\":\"spawn\",\"w\":0,\"id\":1,\"t0\":5,\"ref\":0}\n"
      "{\"w\":1,\"id\":2}\n");  // record 1 on line 3: no "k"
  try {
    read_jsonl(ss);
    FAIL() << "record without kind accepted";
  } catch (const TraceError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
    EXPECT_NE(msg.find("record 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("\"k\""), std::string::npos) << msg;
  }
}

TEST(TraceFormatProps, JsonlUnknownKindNamesTheKind) {
  std::stringstream ss(
      "{\"xtask_trace\":1,\"nworkers\":1}\n"
      "{\"k\":\"teleport\",\"w\":0}\n");
  try {
    read_jsonl(ss);
    FAIL() << "unknown kind accepted";
  } catch (const TraceError& e) {
    EXPECT_NE(std::string(e.what()).find("unknown record kind 'teleport'"),
              std::string::npos)
        << e.what();
  }
}

TEST(TraceFormatProps, HeaderlessJsonlIsRejected) {
  std::stringstream ss("{\"k\":\"spawn\",\"w\":0,\"id\":1}\n");
  EXPECT_THROW(read_jsonl(ss), TraceError);
  std::stringstream empty("");
  EXPECT_THROW(read_jsonl(empty), TraceError);
}

TEST(TraceFormatProps, OverflowingNumbersAreRejectedNotWrapped) {
  std::stringstream ss(
      "{\"xtask_trace\":1,\"nworkers\":1}\n"
      "{\"k\":\"spawn\",\"w\":99999999999999999999999,\"id\":1}\n");
  EXPECT_THROW(read_jsonl(ss), TraceError);
}

// ---------------------------------------------------------------------------
// Validation.

TEST(TraceFormatProps, ValidateNamesDuplicateSpawn) {
  Trace tr;
  tr.nworkers = 1;
  TraceRecord r;
  r.kind = static_cast<std::uint8_t>(RecordKind::kSpawn);
  r.id = 7;
  tr.records.push_back(r);
  tr.records.push_back(r);
  try {
    tr.validate();
    FAIL() << "duplicate spawn id accepted";
  } catch (const TraceError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("record 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("duplicate spawn of task id 7"), std::string::npos)
        << msg;
  }
}

TEST(TraceFormatProps, ValidateNamesWorkerOutOfRange) {
  Trace tr;
  tr.nworkers = 2;
  TraceRecord r;
  r.kind = static_cast<std::uint8_t>(RecordKind::kIdle);
  r.worker = 5;
  tr.records.push_back(r);
  try {
    tr.validate();
    FAIL() << "out-of-range worker accepted";
  } catch (const TraceError& e) {
    EXPECT_NE(std::string(e.what()).find("worker 5 out of range"),
              std::string::npos)
        << e.what();
  }
}

// ---------------------------------------------------------------------------
// Fingerprint invariants.

TEST(TraceFormatProps, FingerprintIgnoresIdsWorkersAndTiming) {
  Rng rng(0xF16Eull);
  for (int i = 0; i < 100; ++i) {
    const Trace tr = arb_trace(rng);
    Trace relabeled = tr;
    // Order-preserving relabel (shift every id), scramble workers/times.
    constexpr std::uint64_t kShift = 1'000'000;
    for (TraceRecord& r : relabeled.records) {
      if (r.id != 0) r.id += kShift;
      if (r.kind == static_cast<std::uint8_t>(RecordKind::kSpawn) &&
          r.ref != 0)
        r.ref += kShift;
      r.worker = static_cast<std::uint16_t>(rng.range(0, 15));
      r.t0 = rng.next();
      if (r.kind == static_cast<std::uint8_t>(RecordKind::kExec))
        r.ref = rng.next();  // costs are not structure
    }
    ASSERT_EQ(tr.dag_fingerprint(), relabeled.dag_fingerprint())
        << "case " << i;
  }
}

TEST(TraceFormatProps, FingerprintSeesStructuralChange) {
  // a -> {b, c} vs a -> b -> c: same node count, different shape.
  const auto spawn = [](std::uint64_t id, std::uint64_t parent) {
    TraceRecord r;
    r.kind = static_cast<std::uint8_t>(RecordKind::kSpawn);
    r.id = id;
    r.ref = parent;
    return r;
  };
  Trace wide, deep;
  wide.nworkers = deep.nworkers = 1;
  wide.records = {spawn(1, 0), spawn(2, 1), spawn(3, 1)};
  deep.records = {spawn(1, 0), spawn(2, 1), spawn(3, 2)};
  EXPECT_NE(wide.dag_fingerprint(), deep.dag_fingerprint());
  // Sibling order is part of the structure (replay spawns in record
  // order), so swapping two siblings with different subtrees changes it.
  Trace ab, ba;
  ab.nworkers = ba.nworkers = 1;
  ab.records = {spawn(1, 0), spawn(2, 1), spawn(3, 1), spawn(4, 2)};
  ba.records = {spawn(1, 0), spawn(2, 1), spawn(3, 1), spawn(4, 3)};
  EXPECT_NE(ab.dag_fingerprint(), ba.dag_fingerprint());
}

// ---------------------------------------------------------------------------
// File helpers.

TEST(TraceFormatProps, FileRoundTripPicksEncodingByExtension) {
  Rng rng(0xF11Eull);
  const Trace tr = arb_trace(rng);
  const std::string jpath = "/tmp/xtask_trace_props.jsonl";
  const std::string bpath = "/tmp/xtask_trace_props.trace";
  write_file(tr, jpath);
  write_file(tr, bpath);
  // JSONL file must be line-oriented text starting with the header.
  {
    std::ifstream f(jpath);
    std::string first;
    std::getline(f, first);
    EXPECT_EQ(first.rfind("{\"xtask_trace\":1", 0), 0u) << first;
  }
  expect_equal(tr, read_file(jpath), "jsonl file");
  expect_equal(tr, read_file(bpath), "binary file");
  std::remove(jpath.c_str());
  std::remove(bpath.c_str());
}

TEST(TraceFormatProps, MissingFileIsNamed) {
  try {
    read_file("/tmp/xtask_no_such_trace_file.bin");
    FAIL() << "missing file accepted";
  } catch (const TraceError& e) {
    EXPECT_NE(std::string(e.what()).find("xtask_no_such_trace_file"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace xtask::trace
