// GOMP-like and LOMP-like baseline runtime tests: correctness of tasking,
// priorities (GNU), stealing (LOMP), XLOMP mode, and counter invariants.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "gomp/gomp_runtime.hpp"
#include "gomp/lomp_runtime.hpp"
#include "registry/registry.hpp"

namespace xtask {
namespace {

TEST(GompRuntime, FlatSpawnCompletes) {
  gomp::GompRuntime::Config cfg;
  cfg.num_threads = 4;
  const auto rt_h = RuntimeRegistry::make_gomp(cfg);
  gomp::GompRuntime& rt = *rt_h;
  std::atomic<int> done{0};
  rt.run([&](gomp::GompContext& ctx) {
    for (int i = 0; i < 5000; ++i)
      ctx.spawn([&](gomp::GompContext&) {
        done.fetch_add(1, std::memory_order_relaxed);
      });
    ctx.taskwait();
  });
  EXPECT_EQ(done.load(), 5000);
  const Counters c = rt.profiler().total_counters();
  EXPECT_EQ(c.ntasks_created, 5001u);
  EXPECT_EQ(c.ntasks_executed, 5001u);
}

TEST(GompRuntime, NestedRecursionCompletes) {
  gomp::GompRuntime::Config cfg;
  cfg.num_threads = 3;
  const auto rt_h = RuntimeRegistry::make_gomp(cfg);
  gomp::GompRuntime& rt = *rt_h;
  struct Rec {
    static void go(gomp::GompContext& ctx, int depth,
                   std::atomic<int>* count) {
      count->fetch_add(1, std::memory_order_relaxed);
      if (depth == 0) return;
      for (int i = 0; i < 2; ++i)
        ctx.spawn([depth, count](gomp::GompContext& c) {
          go(c, depth - 1, count);
        });
      ctx.taskwait();
    }
  };
  std::atomic<int> count{0};
  rt.run([&](gomp::GompContext& ctx) { Rec::go(ctx, 8, &count); });
  EXPECT_EQ(count.load(), (1 << 9) - 1);
}

TEST(GompRuntime, PriorityOrdersSingleThreadedExecution) {
  // With one worker, a higher-priority task spawned later runs before
  // earlier priority-0 tasks (GNU semantics).
  gomp::GompRuntime::Config cfg;
  cfg.num_threads = 1;
  const auto rt_h = RuntimeRegistry::make_gomp(cfg);
  gomp::GompRuntime& rt = *rt_h;
  std::vector<int> order;
  rt.run([&](gomp::GompContext& ctx) {
    ctx.spawn([&](gomp::GompContext&) { order.push_back(1); }, 0);
    ctx.spawn([&](gomp::GompContext&) { order.push_back(2); }, 0);
    ctx.spawn([&](gomp::GompContext&) { order.push_back(3); }, 5);
    ctx.taskwait();
  });
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 3);  // priority 5 first
}

TEST(GompRuntime, RepeatedRegions) {
  gomp::GompRuntime::Config cfg;
  cfg.num_threads = 4;
  const auto rt_h = RuntimeRegistry::make_gomp(cfg);
  gomp::GompRuntime& rt = *rt_h;
  for (int r = 0; r < 3; ++r) {
    std::atomic<int> done{0};
    rt.run([&](gomp::GompContext& ctx) {
      for (int i = 0; i < 100; ++i)
        ctx.spawn([&](gomp::GompContext&) { done.fetch_add(1); });
      ctx.taskwait();
    });
    ASSERT_EQ(done.load(), 100) << "region " << r;
  }
}

TEST(LompRuntime, FlatSpawnCompletes) {
  lomp::LompRuntime::Config cfg;
  cfg.num_threads = 4;
  const auto rt_h = RuntimeRegistry::make_lomp(cfg);
  lomp::LompRuntime& rt = *rt_h;
  std::atomic<int> done{0};
  rt.run([&](lomp::LompContext& ctx) {
    for (int i = 0; i < 5000; ++i)
      ctx.spawn([&](lomp::LompContext&) {
        done.fetch_add(1, std::memory_order_relaxed);
      });
    ctx.taskwait();
  });
  EXPECT_EQ(done.load(), 5000);
}

TEST(LompRuntime, StealingMovesWorkOffTheProducer) {
  lomp::LompRuntime::Config cfg;
  cfg.num_threads = 4;
  const auto rt_h = RuntimeRegistry::make_lomp(cfg);
  lomp::LompRuntime& rt = *rt_h;
  // On an oversubscribed host the producer can occasionally drain its own
  // deque before the helpers are scheduled; repeat regions until a steal
  // is observed (each region is ~10 ms of task work).
  bool stolen = false;
  for (int attempt = 0; attempt < 5 && !stolen; ++attempt) {
    std::atomic<int> done{0};
    rt.run([&](lomp::LompContext& ctx) {
      for (int i = 0; i < 2000; ++i)
        ctx.spawn([&](lomp::LompContext&) {
          volatile int x = 0;
          for (int j = 0; j < 2000; ++j) x = x + j;
          done.fetch_add(1, std::memory_order_relaxed);
        });
      ctx.taskwait();
    });
    ASSERT_EQ(done.load(), 2000);
    const Counters c = rt.profiler().total_counters();
    stolen = c.ntasks_local + c.ntasks_remote + c.nsteal_local +
                 c.nsteal_remote >
             0;
  }
  EXPECT_TRUE(stolen) << "no task left the producer across 5 regions";
}

TEST(LompRuntime, XQueueModeCompletes) {
  lomp::LompRuntime::Config cfg;
  cfg.num_threads = 4;
  cfg.use_xqueue = true;  // XLOMP
  cfg.queue_capacity = 64;
  const auto rt_h = RuntimeRegistry::make_lomp(cfg);
  lomp::LompRuntime& rt = *rt_h;
  struct Rec {
    static void go(lomp::LompContext& ctx, int depth,
                   std::atomic<int>* count) {
      count->fetch_add(1, std::memory_order_relaxed);
      if (depth == 0) return;
      for (int i = 0; i < 3; ++i)
        ctx.spawn([depth, count](lomp::LompContext& c) {
          go(c, depth - 1, count);
        });
      ctx.taskwait();
    }
  };
  std::atomic<int> count{0};
  rt.run([&](lomp::LompContext& ctx) { Rec::go(ctx, 7, &count); });
  EXPECT_EQ(count.load(), (2187 * 3 - 1) / 2);  // (3^8 - 1) / 2
}

TEST(LompRuntime, PoolAllocatorRecycles) {
  lomp::LompRuntime::Config cfg;
  cfg.num_threads = 2;
  const auto rt_h = RuntimeRegistry::make_lomp(cfg);
  lomp::LompRuntime& rt = *rt_h;
  for (int r = 0; r < 3; ++r) {
    std::atomic<int> done{0};
    rt.run([&](lomp::LompContext& ctx) {
      for (int i = 0; i < 1000; ++i)
        ctx.spawn([&](lomp::LompContext&) { done.fetch_add(1); });
      ctx.taskwait();
    });
    ASSERT_EQ(done.load(), 1000);
  }
}

}  // namespace
}  // namespace xtask
