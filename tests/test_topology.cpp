// Topology tests: synthetic zone striping, locality queries, detection
// fallback, the machine-shape spec grammar (parse/spec round-trips, bad
// specs), and edge cases (more zones than workers, single worker).
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/topology.hpp"

namespace xtask {
namespace {

TEST(Topology, SyntheticStripesContiguously) {
  // 8 workers over 4 zones, "close" affinity: [0,1][2,3][4,5][6,7].
  const auto t = Topology::synthetic(8, 4);
  EXPECT_EQ(t.num_workers(), 8);
  EXPECT_EQ(t.num_zones(), 4);
  EXPECT_EQ(t.zone_of(0), 0);
  EXPECT_EQ(t.zone_of(1), 0);
  EXPECT_EQ(t.zone_of(2), 1);
  EXPECT_EQ(t.zone_of(7), 3);
  EXPECT_TRUE(t.local(0, 1));
  EXPECT_FALSE(t.local(1, 2));
}

TEST(Topology, UnevenDivisionBalancedWithinOne) {
  const auto t = Topology::synthetic(10, 3);
  std::size_t min_size = 100;
  std::size_t max_size = 0;
  for (int z = 0; z < t.num_zones(); ++z) {
    min_size = std::min(min_size, t.zone_members(z).size());
    max_size = std::max(max_size, t.zone_members(z).size());
  }
  EXPECT_LE(max_size - min_size, 1u);
}

TEST(Topology, EveryWorkerInExactlyOneZone) {
  const auto t = Topology::synthetic(192, 8);
  std::size_t total = 0;
  for (int z = 0; z < t.num_zones(); ++z) {
    for (int w : t.zone_members(z)) EXPECT_EQ(t.zone_of(w), z);
    total += t.zone_members(z).size();
  }
  EXPECT_EQ(total, 192u);
  EXPECT_EQ(t.zone_members(0).size(), 24u);  // Skylake-192 shape
}

TEST(Topology, MoreZonesThanWorkersClamps) {
  const auto t = Topology::synthetic(3, 8);
  EXPECT_EQ(t.num_zones(), 3);
  for (int w = 0; w < 3; ++w)
    EXPECT_EQ(t.zone_members(t.zone_of(w)).size(), 1u);
}

TEST(Topology, SingleWorkerSingleZone) {
  const auto t = Topology::synthetic(1, 1);
  EXPECT_EQ(t.num_zones(), 1);
  EXPECT_TRUE(t.local(0, 0));
  EXPECT_EQ(t.peers_of(0).size(), 1u);
}

TEST(Topology, PeersIncludeSelf) {
  const auto t = Topology::synthetic(12, 4);
  for (int w = 0; w < 12; ++w) {
    const auto& peers = t.peers_of(w);
    EXPECT_NE(std::find(peers.begin(), peers.end(), w), peers.end());
  }
}

TEST(Topology, DetectNeverFails) {
  // On any host this must return a usable topology (>= 1 zone, all
  // workers mapped).
  const auto t = Topology::detect(6);
  EXPECT_EQ(t.num_workers(), 6);
  EXPECT_GE(t.num_zones(), 1);
  for (int w = 0; w < 6; ++w) {
    EXPECT_GE(t.zone_of(w), 0);
    EXPECT_LT(t.zone_of(w), t.num_zones());
  }
}

TEST(Topology, DescribeMentionsCounts) {
  const auto t = Topology::synthetic(8, 2);
  const std::string d = t.describe();
  EXPECT_NE(d.find("8 workers"), std::string::npos);
  EXPECT_NE(d.find("2 zones"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Spec grammar: the single machine-shape string shared by the real
// runtimes, the simulator, and the registry's XTASK_TOPOLOGY override.

TEST(TopologySpec, ZxWForm) {
  const auto t = Topology::parse("8x24");  // the paper's Skylake-192
  EXPECT_EQ(t.num_workers(), 192);
  EXPECT_EQ(t.num_zones(), 8);
  EXPECT_EQ(t.zone_members(0).size(), 24u);
  EXPECT_EQ(t.zone_of(0), 0);
  EXPECT_EQ(t.zone_of(24), 1);   // contiguous "close" striping
  EXPECT_EQ(t.zone_of(191), 7);
}

TEST(TopologySpec, ColonFormUnevenZones) {
  const auto t = Topology::parse("3:1:2");
  EXPECT_EQ(t.num_workers(), 6);
  EXPECT_EQ(t.num_zones(), 3);
  EXPECT_EQ(t.zone_members(0).size(), 3u);
  EXPECT_EQ(t.zone_members(1).size(), 1u);
  EXPECT_EQ(t.zone_members(2).size(), 2u);
  EXPECT_EQ(t.zone_of(3), 1);
  EXPECT_EQ(t.zone_of(4), 2);
}

TEST(TopologySpec, PlainCountIsOneZone) {
  const auto t = Topology::parse("6");
  EXPECT_EQ(t.num_workers(), 6);
  EXPECT_EQ(t.num_zones(), 1);
}

TEST(TopologySpec, AutoDetects) {
  const auto t = Topology::parse("auto", 4);
  EXPECT_EQ(t.num_workers(), 4);
  EXPECT_GE(t.num_zones(), 1);
  // With no default, auto falls back to hardware concurrency (>= 1).
  EXPECT_GE(Topology::parse("auto").num_workers(), 1);
}

TEST(TopologySpec, RoundTripsThroughSpec) {
  for (const char* s : {"8x24", "2x4", "1x1", "3:1:2", "7:7:7:1"}) {
    const auto t = Topology::parse(s);
    const auto again = Topology::parse(t.spec());
    EXPECT_EQ(again.num_workers(), t.num_workers()) << s;
    EXPECT_EQ(again.num_zones(), t.num_zones()) << s;
    for (int w = 0; w < t.num_workers(); ++w)
      ASSERT_EQ(again.zone_of(w), t.zone_of(w)) << s << " worker " << w;
    // The canonical form is a fixed point.
    EXPECT_EQ(again.spec(), t.spec()) << s;
  }
}

TEST(TopologySpec, CanonicalFormPrefersZxW) {
  EXPECT_EQ(Topology::parse("2x3").spec(), "2x3");
  EXPECT_EQ(Topology::parse("3:3").spec(), "2x3");   // uniform -> ZxW
  EXPECT_EQ(Topology::parse("3:2").spec(), "3:2");   // uneven stays colon
  EXPECT_EQ(Topology::parse("5").spec(), "1x5");
  EXPECT_EQ(Topology::synthetic(10, 3).spec(), "4:3:3");
}

TEST(TopologySpec, BadSpecsThrow) {
  for (const char* s : {"", "x", "4x", "x4", "0x4", "4x0", "-1", "3:",
                        ":3", "3::2", "a", "8x24x2", "1e3", " 4", "4 "}) {
    EXPECT_THROW(Topology::parse(s), std::invalid_argument) << "'" << s << "'";
  }
}

}  // namespace
}  // namespace xtask
