// Plot-file persistence tests: round trip, on-disk ordering, proofs from
// disk matching in-memory proofs, corruption detection, and error paths.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>

#include "core/runtime.hpp"
#include "posp/plot_file.hpp"
#include "registry/registry.hpp"

namespace xtask::posp {
namespace {

class PlotFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    PospConfig cfg;
    cfg.k = 12;
    cfg.batch = 64;
    plot_ = std::make_unique<Plot>(cfg);
    Config rc;
    rc.num_threads = 4;
    const auto rt_h = RuntimeRegistry::make_xtask(rc);
    Runtime& rt = *rt_h;
    plot_->generate(rt);
    path_ = "/tmp/xtask_test_plot.bin";
    ASSERT_TRUE(write_plot_file(*plot_, path_));
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::unique_ptr<Plot> plot_;
  std::string path_;
};

TEST_F(PlotFileTest, HeaderRoundTrips) {
  PlotFileReader reader(path_);
  ASSERT_TRUE(reader.ok()) << reader.error();
  EXPECT_EQ(reader.header().k, 12u);
  EXPECT_EQ(reader.header().total_puzzles, 4096u);
  EXPECT_EQ(reader.header().plot_seed, plot_->config().plot_seed);
  EXPECT_EQ(reader.num_buckets(), plot_->num_buckets());
}

TEST_F(PlotFileTest, AllPuzzlesPresentAndSorted) {
  PlotFileReader reader(path_);
  ASSERT_TRUE(reader.ok());
  std::uint64_t total = 0;
  for (std::uint64_t b = 0; b < reader.num_buckets(); ++b) {
    const auto puzzles = reader.read_bucket(b);
    EXPECT_EQ(puzzles.size(), plot_->bucket(b).size()) << "bucket " << b;
    for (std::size_t i = 1; i < puzzles.size(); ++i)
      EXPECT_LE(std::memcmp(puzzles[i - 1].hash, puzzles[i].hash, 28), 0);
    total += puzzles.size();
  }
  EXPECT_EQ(total, 4096u);
  EXPECT_TRUE(reader.verify_all());
}

TEST_F(PlotFileTest, DiskProofMatchesMemoryProofQuality) {
  // Memory buckets are insertion-ordered, disk buckets hash-sorted, so
  // equal-quality ties can resolve to different nonces; the *score* must
  // match and both proofs must verify.
  auto score_of = [](const Puzzle& p, const std::uint8_t challenge[28]) {
    int score = 0;
    for (int i = 0; i < 28; ++i) {
      const auto x = static_cast<std::uint8_t>(p.hash[i] ^ challenge[i]);
      if (x == 0) {
        score += 8;
        continue;
      }
      for (int bit = 7; bit >= 0; --bit) {
        if ((x >> bit) & 1) break;
        ++score;
      }
      break;
    }
    return score;
  };
  PlotFileReader reader(path_);
  ASSERT_TRUE(reader.ok());
  for (int i = 0; i < 8; ++i) {
    std::uint8_t challenge[28];
    char msg[16];
    std::snprintf(msg, sizeof(msg), "ch-%d", i);
    Blake3::hash(msg, std::strlen(msg), challenge, sizeof(challenge));
    Puzzle mem_proof{};
    Puzzle disk_proof{};
    ASSERT_TRUE(plot_->best_proof(challenge, &mem_proof));
    ASSERT_TRUE(reader.best_proof(challenge, &disk_proof));
    EXPECT_EQ(score_of(mem_proof, challenge), score_of(disk_proof, challenge))
        << "challenge " << i;
    EXPECT_TRUE(plot_->verify(disk_proof));
    EXPECT_TRUE(plot_->verify(mem_proof));
  }
}

TEST_F(PlotFileTest, CorruptionIsDetected) {
  // Flip one byte in the record area; verify_all must fail.
  std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good());
  f.seekp(-17, std::ios::end);
  char byte = 0;
  f.read(&byte, 1);
  f.seekp(-17, std::ios::end);
  byte = static_cast<char>(byte ^ 0x40);
  f.write(&byte, 1);
  f.close();
  PlotFileReader reader(path_);
  ASSERT_TRUE(reader.ok());
  EXPECT_FALSE(reader.verify_all());
}

TEST_F(PlotFileTest, TruncatedFileRejected) {
  // Cut the file inside the offset table.
  std::ifstream in(path_, std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  out.write(content.data(), static_cast<long>(sizeof(PlotFileHeader) + 37));
  out.close();
  PlotFileReader reader(path_);
  EXPECT_FALSE(reader.ok());
  EXPECT_NE(reader.error().find("truncated"), std::string::npos);
}

TEST(PlotFile, MissingFileReportsError) {
  PlotFileReader reader("/tmp/definitely_not_here.bin");
  EXPECT_FALSE(reader.ok());
}

TEST(PlotFile, BadMagicRejected) {
  const std::string path = "/tmp/xtask_badmagic.bin";
  std::ofstream f(path, std::ios::binary);
  const std::uint64_t junk[8] = {0xdeadbeef, 1, 2, 3, 4, 5, 6, 7};
  f.write(reinterpret_cast<const char*>(junk), sizeof(junk));
  f.close();
  PlotFileReader reader(path);
  EXPECT_FALSE(reader.ok());
  EXPECT_NE(reader.error().find("header"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace xtask::posp
