// SparseLU tests: parallel factorization matches the serial reference,
// fill-in appears, the factorization is numerically correct on a dense
// instance, and all runtimes agree.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "bots/serial_ctx.hpp"
#include "bots/sparselu.hpp"
#include "core/runtime.hpp"
#include "gomp/gomp_runtime.hpp"
#include "registry/registry.hpp"

namespace xtask::bots {
namespace {

TEST(SparseLu, ParallelMatchesSerialChecksum) {
  SparseLuParams p;
  p.blocks = 10;
  p.block_size = 8;
  const double expect = sparselu_serial(p);
  Config cfg;
  cfg.num_threads = 4;
  cfg.numa_zones = 2;
  const auto rt_h = RuntimeRegistry::make_xtask(cfg);
  Runtime& rt = *rt_h;
  EXPECT_DOUBLE_EQ(sparselu_parallel(rt, p), expect);
}

TEST(SparseLu, WorkStealAndGompRuntimesAgree) {
  SparseLuParams p;
  p.blocks = 8;
  p.block_size = 8;
  p.seed = 77;
  const double expect = sparselu_serial(p);
  {
    Config cfg;
    cfg.num_threads = 4;
    cfg.dlb = DlbKind::kWorkSteal;
    const auto rt_h = RuntimeRegistry::make_xtask(cfg);
    Runtime& rt = *rt_h;
    EXPECT_DOUBLE_EQ(sparselu_parallel(rt, p), expect);
  }
  {
    gomp::GompRuntime::Config cfg;
    cfg.num_threads = 4;
    const auto rt_h = RuntimeRegistry::make_gomp(cfg);
    gomp::GompRuntime& rt = *rt_h;
    EXPECT_DOUBLE_EQ(sparselu_parallel(rt, p), expect);
  }
}

TEST(SparseLu, FillInMaterializes) {
  // A factorized sparse matrix has more live blocks than the input.
  SparseLuParams p;
  p.blocks = 12;
  p.block_size = 4;
  SparseMatrix before(p, true);
  int live_before = 0;
  for (int i = 0; i < p.blocks; ++i)
    for (int j = 0; j < p.blocks; ++j)
      if (before.block(i, j) != nullptr) ++live_before;

  SparseMatrix after(p, true);
  SerialRuntime sr;
  sr.run([&](auto& ctx) { detail::sparselu_task(ctx, &after); });
  int live_after = 0;
  for (int i = 0; i < p.blocks; ++i)
    for (int j = 0; j < p.blocks; ++j)
      if (after.block(i, j) != nullptr) ++live_after;
  EXPECT_GT(live_after, live_before);
}

TEST(SparseLu, DenseFactorizationReconstructsMatrix) {
  // With a 1x1 block grid, sparselu is a plain dense LU of one block:
  // check L*U == A on a small instance.
  SparseLuParams p;
  p.blocks = 1;
  p.block_size = 6;
  p.seed = 5;
  SparseMatrix original(p, true);
  const int bs = p.block_size;
  std::vector<double> a(static_cast<std::size_t>(bs) * bs);
  for (int e = 0; e < bs * bs; ++e) a[static_cast<std::size_t>(e)] =
      original.block(0, 0)[e];

  SerialRuntime sr;
  sr.run([&](auto& ctx) { detail::sparselu_task(ctx, &original); });
  const double* lu = original.block(0, 0);
  for (int i = 0; i < bs; ++i) {
    for (int j = 0; j < bs; ++j) {
      // (L*U)[i][j] with L unit-lower and U upper, both packed in `lu`.
      double sum = 0.0;
      for (int k = 0; k < bs; ++k) {
        const double l = i == k ? 1.0 : (i > k ? lu[i * bs + k] : 0.0);
        const double u = k <= j ? lu[k * bs + j] : 0.0;
        sum += l * u;
      }
      EXPECT_NEAR(sum, a[static_cast<std::size_t>(i * bs + j)], 1e-9)
          << i << "," << j;
    }
  }
}

}  // namespace
}  // namespace xtask::bots
