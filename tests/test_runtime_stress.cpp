// Property-style stress tests of the xtask runtime: randomized task DAGs
// executed across a sweep of thread counts, queue capacities, and DLB
// configurations, checking the core invariants — every spawned task runs
// exactly once, results are schedule-independent, and counters balance.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "core/runtime.hpp"
#include "registry/registry.hpp"

namespace xtask {
namespace {

/// Deterministic hash for schedule-independent random structure.
std::uint64_t mix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Random DAG: node `id` spawns 0-3 children up to a node budget; each
/// node adds mix(id) to a global checksum. The checksum and node count
/// are schedule-independent.
struct RandomDag {
  std::atomic<std::uint64_t> checksum{0};
  std::atomic<std::uint64_t> nodes{0};

  void node(TaskContext& ctx, std::uint64_t id, int depth) {
    checksum.fetch_add(mix(id), std::memory_order_relaxed);
    nodes.fetch_add(1, std::memory_order_relaxed);
    if (depth == 0) return;
    const int kids = static_cast<int>(mix(id ^ 0xabc) % 4);
    for (int k = 0; k < kids; ++k) {
      const std::uint64_t child = mix(id * 8 + static_cast<std::uint64_t>(k) + 1);
      ctx.spawn([this, child, depth](TaskContext& c) {
        node(c, child, depth - 1);
      });
    }
    if (kids > 0 && mix(id ^ 0x17) % 3 != 0) ctx.taskwait();
    // ~1/3 of parents intentionally do NOT taskwait: exercises the
    // fire-and-forget lifetime path (children outliving parent's body).
  }

  // Serial reference for the same structure.
  void serial(std::uint64_t id, int depth, std::uint64_t* sum,
              std::uint64_t* count) const {
    *sum += mix(id);
    ++*count;
    if (depth == 0) return;
    const int kids = static_cast<int>(mix(id ^ 0xabc) % 4);
    for (int k = 0; k < kids; ++k)
      serial(mix(id * 8 + static_cast<std::uint64_t>(k) + 1), depth - 1, sum,
             count);
  }
};

struct StressParam {
  const char* name;
  int threads;
  std::uint32_t qcap;
  BarrierKind barrier;
  DlbKind dlb;
};

class RuntimeStress : public ::testing::TestWithParam<StressParam> {};

TEST_P(RuntimeStress, RandomDagsExecuteExactlyOnce) {
  const StressParam& p = GetParam();
  Config cfg;
  cfg.num_threads = p.threads;
  cfg.numa_zones = 2;
  cfg.queue_capacity = p.qcap;
  cfg.barrier = p.barrier;
  cfg.dlb = p.dlb;
  cfg.dlb_cfg.n_victim = 2;
  cfg.dlb_cfg.n_steal = 4;
  cfg.dlb_cfg.t_interval = 64;
  const auto rt_h = RuntimeRegistry::make_xtask(cfg);
  Runtime& rt = *rt_h;

  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    RandomDag dag;
    std::uint64_t expect_sum = 0;
    std::uint64_t expect_count = 0;
    dag.serial(seed, 7, &expect_sum, &expect_count);
    rt.run([&](TaskContext& ctx) { dag.node(ctx, seed, 7); });
    EXPECT_EQ(dag.nodes.load(), expect_count) << "seed " << seed;
    EXPECT_EQ(dag.checksum.load(), expect_sum) << "seed " << seed;
  }
  const Counters c = rt.profiler().total_counters();
  EXPECT_EQ(c.ntasks_created, c.ntasks_executed);
  // Dispatch accounting: every created task was statically pushed,
  // executed immediately (full queue), redirected by NA-RP (counted in
  // nsteal_*), or was one of the 4 region roots. NA-WS migrations move
  // already-pushed tasks, so they do not enter this equation.
  const std::uint64_t redirected =
      p.dlb == DlbKind::kRedirectPush ? c.nsteal_local + c.nsteal_remote : 0;
  EXPECT_EQ(c.ntasks_static_push + c.ntasks_imm_exec + redirected +
                /*roots=*/4,
            c.ntasks_created);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RuntimeStress,
    ::testing::Values(
        StressParam{"t1", 1, 64, BarrierKind::kTree, DlbKind::kNone},
        StressParam{"t2_tiny_q", 2, 4, BarrierKind::kTree, DlbKind::kNone},
        StressParam{"t4_central", 4, 64, BarrierKind::kCentral,
                    DlbKind::kNone},
        StressParam{"t4_tree", 4, 64, BarrierKind::kTree, DlbKind::kNone},
        StressParam{"t7_tree", 7, 32, BarrierKind::kTree, DlbKind::kNone},
        StressParam{"t4_narp", 4, 32, BarrierKind::kTree,
                    DlbKind::kRedirectPush},
        StressParam{"t4_naws", 4, 32, BarrierKind::kTree,
                    DlbKind::kWorkSteal},
        StressParam{"t7_naws_tiny_q", 7, 4, BarrierKind::kTree,
                    DlbKind::kWorkSteal},
        StressParam{"t5_narp_central", 5, 16, BarrierKind::kCentral,
                    DlbKind::kRedirectPush}),
    [](const ::testing::TestParamInfo<StressParam>& info) {
      return info.param.name;
    });

TEST(RuntimeStressMisc, ManyConsecutiveRegions) {
  Config cfg;
  cfg.num_threads = 4;
  cfg.barrier = BarrierKind::kTree;
  cfg.dlb = DlbKind::kWorkSteal;
  cfg.dlb_cfg.t_interval = 32;
  const auto rt_h = RuntimeRegistry::make_xtask(cfg);
  Runtime& rt = *rt_h;
  std::atomic<int> total{0};
  for (int r = 0; r < 50; ++r) {
    rt.run([&](TaskContext& ctx) {
      for (int i = 0; i < 20; ++i)
        ctx.spawn([&](TaskContext&) {
          total.fetch_add(1, std::memory_order_relaxed);
        });
      ctx.taskwait();
    });
  }
  EXPECT_EQ(total.load(), 50 * 20);
}

TEST(RuntimeStressMisc, SpawnInsideSpawnWithoutWaitDrainsAtBarrier) {
  // Fire-and-forget chains: nobody calls taskwait; the region barrier
  // alone must drain everything (tests quiescence under pure migration).
  Config cfg;
  cfg.num_threads = 4;
  cfg.barrier = BarrierKind::kTree;
  const auto rt_h = RuntimeRegistry::make_xtask(cfg);
  Runtime& rt = *rt_h;
  std::atomic<int> fired{0};
  rt.run([&](TaskContext& ctx) {
    struct Chain {
      static void go(TaskContext& c, int depth, std::atomic<int>* n) {
        n->fetch_add(1, std::memory_order_relaxed);
        if (depth == 0) return;
        c.spawn([depth, n](TaskContext& cc) { go(cc, depth - 1, n); });
        c.spawn([depth, n](TaskContext& cc) { go(cc, depth - 1, n); });
        // no taskwait
      }
    };
    Chain::go(ctx, 10, &fired);
  });
  EXPECT_EQ(fired.load(), (1 << 11) - 1);
}

TEST(RuntimeStressMisc, LargePayloadClosuresFitExactly) {
  // Closure right at the payload limit must work (compile-time guarded
  // beyond it).
  Config cfg;
  cfg.num_threads = 2;
  const auto rt_h = RuntimeRegistry::make_xtask(cfg);
  Runtime& rt = *rt_h;
  struct Big {
    char bytes[96];  // + vtable-free lambda overhead stays <= 128
  };
  Big big{};
  big.bytes[0] = 42;
  std::atomic<int> sum{0};
  rt.run([&](TaskContext& ctx) {
    ctx.spawn([big, &sum](TaskContext&) {
      sum.fetch_add(big.bytes[0], std::memory_order_relaxed);
    });
    ctx.taskwait();
  });
  EXPECT_EQ(sum.load(), 42);
}

}  // namespace
}  // namespace xtask
