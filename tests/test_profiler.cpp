// Profiler tests (§V tooling): event recording, per-kind aggregation,
// counter totals, CSV dumps, and the Fig. 3-style timeline report.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/runtime.hpp"
#include "prof/profiler.hpp"
#include "registry/registry.hpp"

namespace xtask {
namespace {

TEST(Profiler, EventsDisabledByDefaultRecordNothing) {
  Profiler prof(2, /*events_enabled=*/false);
  prof.thread(0).record(EventKind::kTask, 100, 200);
  EXPECT_TRUE(prof.thread(0).events().empty());
}

TEST(Profiler, EventAggregationByKind) {
  Profiler prof(1, true);
  prof.thread(0).record(EventKind::kTask, 100, 150);
  prof.thread(0).record(EventKind::kTask, 200, 260);
  prof.thread(0).record(EventKind::kBarrier, 300, 310);
  const auto cycles = prof.thread(0).cycles_by_kind();
  EXPECT_EQ(cycles[static_cast<int>(EventKind::kTask)], 110u);
  EXPECT_EQ(cycles[static_cast<int>(EventKind::kBarrier)], 10u);
  EXPECT_EQ(cycles[static_cast<int>(EventKind::kStall)], 0u);
}

TEST(Profiler, TotalCountersSumAcrossThreads) {
  Profiler prof(3, false);
  prof.thread(0).counters.ntasks_self = 5;
  prof.thread(1).counters.ntasks_self = 7;
  prof.thread(2).counters.nreq_sent = 11;
  const Counters total = prof.total_counters();
  EXPECT_EQ(total.ntasks_self, 12u);
  EXPECT_EQ(total.nreq_sent, 11u);
}

TEST(Profiler, ScopedEventRecordsInterval) {
  Profiler prof(1, true);
  {
    ScopedEvent ev(prof.thread(0), EventKind::kTaskWait);
  }
  ASSERT_EQ(prof.thread(0).events().size(), 1u);
  const PerfEvent& e = prof.thread(0).events()[0];
  EXPECT_EQ(e.kind, EventKind::kTaskWait);
  EXPECT_GE(e.end, e.start);
}

TEST(Profiler, CsvDumpsAreWellFormed) {
  Profiler prof(2, true);
  prof.thread(0).record(EventKind::kTask, 1, 2);
  prof.thread(1).record(EventKind::kStall, 3, 9);
  prof.thread(1).counters.ntasks_executed = 4;

  const std::string events_path = "/tmp/xtask_test_events.csv";
  const std::string counters_path = "/tmp/xtask_test_counters.csv";
  ASSERT_TRUE(prof.dump_events_csv(events_path));
  ASSERT_TRUE(prof.dump_counters_csv(counters_path));

  std::ifstream ef(events_path);
  std::string line;
  std::getline(ef, line);
  EXPECT_EQ(line, "tid,kind,start,end");
  int rows = 0;
  while (std::getline(ef, line)) ++rows;
  EXPECT_EQ(rows, 2);

  std::ifstream cf(counters_path);
  std::getline(cf, line);
  EXPECT_NE(line.find("ntasks_executed"), std::string::npos);
  rows = 0;
  while (std::getline(cf, line)) ++rows;
  EXPECT_EQ(rows, 2);  // one per thread
  std::remove(events_path.c_str());
  std::remove(counters_path.c_str());
}

TEST(Profiler, TimelineReportShowsEveryThread) {
  Profiler prof(4, true);
  for (int t = 0; t < 4; ++t)
    prof.thread(t).record(EventKind::kTask, 0,
                          100 * static_cast<std::uint64_t>(t + 1));
  const std::string report = prof.timeline_report(40);
  EXPECT_NE(report.find("t000"), std::string::npos);
  EXPECT_NE(report.find("t003"), std::string::npos);
  // The longest-running thread's bar must be the longest.
  std::istringstream ss(report);
  std::string line;
  std::getline(ss, line);  // legend
  std::size_t len0 = 0;
  std::size_t len3 = 0;
  while (std::getline(ss, line)) {
    const auto hashes =
        static_cast<std::size_t>(std::count(line.begin(), line.end(), '#'));
    if (line.find("t000") == 0) len0 = hashes;
    if (line.find("t003") == 0) len3 = hashes;
  }
  EXPECT_GT(len3, len0);
}

TEST(Profiler, RuntimeIntegrationProducesEvents) {
  Config cfg;
  cfg.num_threads = 2;
  cfg.profile_events = true;
  const auto rt_h = RuntimeRegistry::make_xtask(cfg);
  Runtime& rt = *rt_h;
  rt.run([](TaskContext& ctx) {
    for (int i = 0; i < 50; ++i)
      ctx.spawn([](TaskContext&) {});
    ctx.taskwait();
  });
  const auto summaries = rt.profiler().summarize();
  ASSERT_EQ(summaries.size(), 2u);
  std::uint64_t task_cycles = 0;
  for (const auto& s : summaries)
    task_cycles += s.cycles[static_cast<int>(EventKind::kTask)];
  EXPECT_GT(task_cycles, 0u);
  const Counters total = rt.profiler().total_counters();
  EXPECT_EQ(total.ntasks_created, 51u);  // 50 children + root
  EXPECT_EQ(total.ntasks_executed, 51u);
}

}  // namespace
}  // namespace xtask
