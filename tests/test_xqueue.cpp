// XQueue unit + stress tests: the SPSC matrix invariants, master-first
// pop order, full-queue reporting, aux-queue fairness, and an MPMC stress
// run where every worker produces into every other worker's queue set.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "core/task.hpp"
#include "core/xqueue.hpp"

namespace xtask {
namespace {

Task* tval(std::uintptr_t i) { return reinterpret_cast<Task*>(i << 6); }
std::uintptr_t tid(Task* t) { return reinterpret_cast<std::uintptr_t>(t) >> 6; }

TEST(XQueue, MasterQueueHasPriority) {
  XQueue xq(3, 16);
  // Producer 1 pushes into worker 0's aux; worker 0 itself pushes into its
  // master. Master entries must come out first.
  ASSERT_TRUE(xq.push(/*producer=*/1, /*target=*/0, tval(100)));
  ASSERT_TRUE(xq.push(/*producer=*/0, /*target=*/0, tval(200)));
  EXPECT_EQ(tid(xq.pop(0)), 200u);
  EXPECT_EQ(tid(xq.pop(0)), 100u);
  EXPECT_EQ(xq.pop(0), nullptr);
}

TEST(XQueue, EveryProducerIsEventuallyScanned) {
  // Regression for the rotation bug: after consuming from producer A, the
  // consumer must still find elements pushed by producer B, wherever the
  // cursor points.
  XQueue xq(4, 16);
  for (int p = 1; p < 4; ++p)
    ASSERT_TRUE(xq.push(p, 0, tval(static_cast<std::uintptr_t>(p))));
  std::set<std::uintptr_t> seen;
  for (int i = 0; i < 3; ++i) {
    Task* t = xq.pop(0);
    ASSERT_NE(t, nullptr);
    seen.insert(tid(t));
  }
  EXPECT_EQ(seen, (std::set<std::uintptr_t>{1, 2, 3}));
  // Now push again from a single producer; must still be found.
  ASSERT_TRUE(xq.push(2, 0, tval(42)));
  EXPECT_EQ(tid(xq.pop(0)), 42u);
}

TEST(XQueue, FullQueueReportsFalse) {
  XQueue xq(2, 4);  // tiny queues: full after a couple of pushes
  int pushed = 0;
  while (xq.push(0, 1, tval(static_cast<std::uintptr_t>(pushed + 1)))) {
    ++pushed;
    ASSERT_LT(pushed, 100);  // must report full eventually
  }
  EXPECT_GT(pushed, 0);
  // Consumer drains; producer can push again.
  int drained = 0;
  while (xq.pop(1) != nullptr) ++drained;
  EXPECT_EQ(drained, pushed);
  EXPECT_TRUE(xq.push(0, 1, tval(7)));
}

TEST(XQueue, QueuesAreIndependentPerTargetPair) {
  XQueue xq(3, 4);
  // Fill 0->1 completely; 0->2 must still accept.
  while (xq.push(0, 1, tval(1))) {
  }
  EXPECT_TRUE(xq.push(0, 2, tval(2)));
  EXPECT_TRUE(xq.push(2, 1, tval(3)));  // different producer, same target
}

TEST(XQueue, SingleWorkerSelfQueue) {
  XQueue xq(1, 8);
  ASSERT_TRUE(xq.push(0, 0, tval(5)));
  EXPECT_EQ(tid(xq.pop(0)), 5u);
  EXPECT_EQ(xq.pop(0), nullptr);
}

TEST(XQueueBitmap, PublishAndRetireTrackOccupancy) {
  XQueue xq(3, 16);
  EXPECT_FALSE(xq.hint_set(0, 1));
  ASSERT_TRUE(xq.push(1, 0, tval(7)));
  EXPECT_TRUE(xq.hint_set(0, 1));       // publish armed the bit
  EXPECT_EQ(tid(xq.pop(0)), 7u);
  EXPECT_TRUE(xq.hint_set(0, 1));       // one pop leaves the bit set
  EXPECT_EQ(xq.pop(0), nullptr);        // miss retires the drained bit
  EXPECT_FALSE(xq.hint_set(0, 1));
  // Self-pushes go to the master queue and never arm a bit.
  ASSERT_TRUE(xq.push(0, 0, tval(9)));
  EXPECT_FALSE(xq.hint_set(0, 0));
  EXPECT_EQ(tid(xq.pop(0)), 9u);
}

TEST(XQueueBitmap, OccupiedMaskAndCensusAgree) {
  XQueue xq(4, 16);
  EXPECT_EQ(xq.occupied_mask(), 0u);
  ASSERT_TRUE(xq.push(1, 0, tval(1)));  // row 0 occupied via aux
  ASSERT_TRUE(xq.push(2, 2, tval(2)));  // row 2 occupied via master
  ASSERT_TRUE(xq.push(0, 3, tval(3)));  // row 3 occupied via aux
  EXPECT_EQ(xq.occupied_mask(), 0b1101u);
  const XQueue::Census census = xq.census();
  EXPECT_EQ(census.occupied_queues, 3);
  EXPECT_EQ(census.queued, 3u);
  while (xq.pop(0) != nullptr) {
  }
  while (xq.pop(2) != nullptr) {
  }
  while (xq.pop(3) != nullptr) {
  }
  EXPECT_EQ(xq.occupied_mask(), 0u);
  EXPECT_EQ(xq.census().queued, 0u);
}

TEST(XQueueBitmap, ZeroWordSkipCountsInScanStats) {
  XQueue xq(4, 16);
  // Drive the consumer past kFullScanPeriod misses on an empty row: every
  // full scan must take the zero-word skip, never the probe loop.
  for (std::uint32_t i = 0; i < 3 * XQueue::kFullScanPeriod + 3; ++i)
    EXPECT_EQ(xq.pop(0), nullptr);
  const XQueue::ScanStats stats = xq.scan_stats(0);
  EXPECT_GE(stats.full_scans, 3u);
  // The rotation start can fall mid-word, visiting the word twice with
  // complementary masks — so skips count at least once per sweep.
  EXPECT_GE(stats.zero_skips, stats.full_scans);
  // A published bit makes the next full scan probe instead of skipping —
  // and the task is still found by the very next pop, proving staleness
  // cannot hide behind the skip.
  ASSERT_TRUE(xq.push(2, 0, tval(11)));
  EXPECT_EQ(tid(xq.pop(0)), 11u);
}

TEST(XQueueStress, ManyProducersOneConsumerDeliversAll) {
  constexpr int kProducers = 3;
  constexpr std::uintptr_t kPerProducer = 50'000;
  XQueue xq(kProducers + 1, 256);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      // Producer ids 1..3 all target worker 0. Values encode producer and
      // sequence so ordering per producer can be checked.
      for (std::uintptr_t i = 0; i < kPerProducer; ++i) {
        const std::uintptr_t v =
            (static_cast<std::uintptr_t>(p + 1) << 40) | (i + 1);
        while (!xq.push(p + 1, 0, tval(v))) std::this_thread::yield();
      }
    });
  }
  std::vector<std::uintptr_t> last(kProducers + 1, 0);
  std::uintptr_t total = 0;
  while (total < kProducers * kPerProducer) {
    Task* t = xq.pop(0);
    if (t == nullptr) {
      std::this_thread::yield();
      continue;
    }
    const std::uintptr_t v = tid(t);
    const std::size_t p = v >> 40;
    const std::uintptr_t seq = v & ((1ull << 40) - 1);
    ASSERT_EQ(seq, last[p] + 1) << "per-producer FIFO violated";
    last[p] = seq;
    ++total;
  }
  for (auto& th : producers) th.join();
  EXPECT_EQ(xq.pop(0), nullptr);
}

TEST(XQueueStress, StealPatternStaysSpsc) {
  // Emulates NA-WS: worker 1 (victim) pops its own row and re-produces
  // into worker 2 (thief), while worker 0 keeps producing to worker 1.
  constexpr std::uintptr_t kCount = 30'000;
  XQueue xq(3, 128);
  std::atomic<bool> done{false};
  std::atomic<std::uintptr_t> received{0};
  std::thread victim([&] {
    // Migrates everything it receives to the thief.
    while (!done.load(std::memory_order_acquire) || !xq.all_empty(1)) {
      Task* t = xq.pop(1);
      if (t == nullptr) {
        std::this_thread::yield();
        continue;
      }
      while (!xq.push(1, 2, t)) std::this_thread::yield();
    }
  });
  std::thread thief([&] {
    while (received.load(std::memory_order_relaxed) < kCount) {
      if (xq.pop(2) != nullptr)
        received.fetch_add(1, std::memory_order_relaxed);
      else
        std::this_thread::yield();
    }
  });
  for (std::uintptr_t i = 1; i <= kCount; ++i)
    while (!xq.push(0, 1, tval(i))) std::this_thread::yield();
  done.store(true, std::memory_order_release);
  victim.join();
  thief.join();
  EXPECT_EQ(received.load(), kCount);
}

}  // namespace
}  // namespace xtask
