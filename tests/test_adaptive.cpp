// Adaptive DLB tests: correctness under the self-tuning strategy and the
// sampling machinery's basic behaviour.
#include <gtest/gtest.h>

#include <atomic>

#include "bots/bots.hpp"
#include "core/runtime.hpp"
#include "registry/registry.hpp"

namespace xtask {
namespace {

Config adaptive_cfg(int threads = 4) {
  Config cfg;
  cfg.num_threads = threads;
  cfg.numa_zones = 2;
  cfg.dlb = DlbKind::kAdaptive;
  return cfg;
}

TEST(AdaptiveDlb, FibIsCorrect) {
  const auto rt_h = RuntimeRegistry::make_xtask(adaptive_cfg());
  Runtime& rt = *rt_h;
  EXPECT_EQ(bots::fib_parallel(rt, 18), bots::fib_serial(18));
}

TEST(AdaptiveDlb, CoarseTasksAreCorrect) {
  // Coarse tasks (>1e4 cycles) push the workers into the RP regime; the
  // result must be unaffected.
  const auto rt_h = RuntimeRegistry::make_xtask(adaptive_cfg());
  Runtime& rt = *rt_h;
  std::atomic<long> sum{0};
  rt.run([&](TaskContext& ctx) {
    for (int i = 0; i < 500; ++i) {
      ctx.spawn([&, i](TaskContext&) {
        volatile long acc = 0;
        for (int k = 0; k < 20'000; ++k) acc = acc + (k ^ i);
        sum.fetch_add(1 + acc * 0, std::memory_order_relaxed);
      });
    }
    ctx.taskwait();
  });
  EXPECT_EQ(sum.load(), 500);
  const Counters c = rt.profiler().total_counters();
  EXPECT_EQ(c.ntasks_created, c.ntasks_executed);
}

TEST(AdaptiveDlb, MixedGranularityRegionsAcrossRuns) {
  // Alternate fine- and coarse-grained regions on one team: the moving
  // average must adapt without breaking anything.
  const auto rt_h = RuntimeRegistry::make_xtask(adaptive_cfg());
  Runtime& rt = *rt_h;
  for (int round = 0; round < 3; ++round) {
    EXPECT_EQ(bots::fib_parallel(rt, 14), bots::fib_serial(14));
    auto data = bots::sort_input(1 << 15, static_cast<std::uint64_t>(round));
    EXPECT_TRUE(bots::sort_parallel(rt, data, 1 << 10, 1 << 10));
  }
}

TEST(AdaptiveDlb, WorksWithDependences) {
  const auto rt_h = RuntimeRegistry::make_xtask(adaptive_cfg());
  Runtime& rt = *rt_h;
  long value = 0;
  rt.run([&](TaskContext& ctx) {
    for (int i = 0; i < 64; ++i)
      ctx.spawn([&](TaskContext&) { value = value * 2 + 1; },
                {dout(&value)});
    ctx.taskwait();
  });
  long expect = 0;
  for (int i = 0; i < 64; ++i) expect = expect * 2 + 1;
  EXPECT_EQ(value, expect);
}

TEST(AdaptiveDlb, SingleThreadDegenerates) {
  const auto rt_h = RuntimeRegistry::make_xtask(adaptive_cfg(1));
  Runtime& rt = *rt_h;
  EXPECT_EQ(bots::fib_parallel(rt, 12), bots::fib_serial(12));
}

}  // namespace
}  // namespace xtask
