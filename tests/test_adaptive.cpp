// Adaptive DLB tests: correctness under the self-tuning strategy and the
// sampling machinery's basic behaviour.
#include <gtest/gtest.h>

#include <atomic>

#include "bots/bots.hpp"
#include "core/runtime.hpp"
#include "registry/registry.hpp"

namespace xtask {
namespace {

Config adaptive_cfg(int threads = 4) {
  Config cfg;
  cfg.num_threads = threads;
  cfg.numa_zones = 2;
  cfg.dlb = DlbKind::kAdaptive;
  return cfg;
}

TEST(AdaptiveDlb, FibIsCorrect) {
  const auto rt_h = RuntimeRegistry::make_xtask(adaptive_cfg());
  Runtime& rt = *rt_h;
  EXPECT_EQ(bots::fib_parallel(rt, 18), bots::fib_serial(18));
}

TEST(AdaptiveDlb, CoarseTasksAreCorrect) {
  // Coarse tasks (>1e4 cycles) push the workers into the RP regime; the
  // result must be unaffected.
  const auto rt_h = RuntimeRegistry::make_xtask(adaptive_cfg());
  Runtime& rt = *rt_h;
  std::atomic<long> sum{0};
  rt.run([&](TaskContext& ctx) {
    for (int i = 0; i < 500; ++i) {
      ctx.spawn([&, i](TaskContext&) {
        volatile long acc = 0;
        for (int k = 0; k < 20'000; ++k) acc = acc + (k ^ i);
        sum.fetch_add(1 + acc * 0, std::memory_order_relaxed);
      });
    }
    ctx.taskwait();
  });
  EXPECT_EQ(sum.load(), 500);
  const Counters c = rt.profiler().total_counters();
  EXPECT_EQ(c.ntasks_created, c.ntasks_executed);
}

TEST(AdaptiveDlb, MixedGranularityRegionsAcrossRuns) {
  // Alternate fine- and coarse-grained regions on one team: the moving
  // average must adapt without breaking anything.
  const auto rt_h = RuntimeRegistry::make_xtask(adaptive_cfg());
  Runtime& rt = *rt_h;
  for (int round = 0; round < 3; ++round) {
    EXPECT_EQ(bots::fib_parallel(rt, 14), bots::fib_serial(14));
    auto data = bots::sort_input(1 << 15, static_cast<std::uint64_t>(round));
    EXPECT_TRUE(bots::sort_parallel(rt, data, 1 << 10, 1 << 10));
  }
}

TEST(AdaptiveDlb, WorksWithDependences) {
  const auto rt_h = RuntimeRegistry::make_xtask(adaptive_cfg());
  Runtime& rt = *rt_h;
  // 48 chained doublings stay below the signed-long limit (2^48 - 1).
  long value = 0;
  rt.run([&](TaskContext& ctx) {
    for (int i = 0; i < 48; ++i)
      ctx.spawn([&](TaskContext&) { value = value * 2 + 1; },
                {dout(&value)});
    ctx.taskwait();
  });
  long expect = 0;
  for (int i = 0; i < 48; ++i) expect = expect * 2 + 1;
  EXPECT_EQ(value, expect);
}

TEST(AdaptiveDlb, SingleThreadDegenerates) {
  const auto rt_h = RuntimeRegistry::make_xtask(adaptive_cfg(1));
  Runtime& rt = *rt_h;
  EXPECT_EQ(bots::fib_parallel(rt, 12), bots::fib_serial(12));
}

// ---------------------------------------------------------------------------
// ModeController: the per-team dispatch-mode state machine in isolation.

ModeThresholds small_host() {
  // A host where the 4-thread team is oversubscribed (1 hw thread) —
  // matches the CI containers this suite actually runs on.
  ModeThresholds thr;
  thr.hw_threads = 1;
  return thr;
}

ModeThresholds big_host() {
  ModeThresholds thr;
  thr.hw_threads = 256;
  return thr;
}

TEST(ModeController, OversubscriptionForcesDirect) {
  // healthy > hw_threads: messaging round trips cost scheduling quanta,
  // so the gate pins direct mode regardless of occupancy signals.
  ModeController ctl(small_host(), 4, 2);
  EXPECT_EQ(ctl.mode(), DispatchMode::kDirect);
  ModeSignals s;
  s.occupied_queues = 4;
  s.queued_tasks = 100'000;
  s.healthy_workers = 4;
  s.zones = 2;
  for (int i = 0; i < 20; ++i) EXPECT_EQ(ctl.observe(s), DispatchMode::kDirect);
  EXPECT_EQ(ctl.switches(), 0u);
}

TEST(ModeController, LargeTeamsAndManyZonesStayMessaging) {
  // Above the static scale caps the messaging protocol's O(1) victim-side
  // cost wins; direct stealing's shared-guard traffic does not scale.
  ModeController wide(big_host(), 64, 2);
  EXPECT_EQ(wide.mode(), DispatchMode::kMessaging);
  ModeController zoned(big_host(), 8, 4);
  EXPECT_EQ(zoned.mode(), DispatchMode::kMessaging);
}

// Synthetic signal helpers for a 4-worker, 2-zone team on a big host.
// `busy` clears both leave gates (occ 16/4 = 4 >= 3.0, depth 4096/4 =
// 1024 >= 512) so it argues for messaging; `starved` sits below both
// enter gates and argues for direct.
ModeSignals busy_signals() {
  ModeSignals s;
  s.occupied_queues = 16;
  s.queued_tasks = 4096;
  s.healthy_workers = 4;
  s.zones = 2;
  return s;
}

ModeSignals starved_signals() {
  ModeSignals s = busy_signals();
  s.occupied_queues = 1;
  s.queued_tasks = 2;
  return s;
}

TEST(ModeController, SustainedLoadSwitchesModesBothWays) {
  // A small team starts direct; sustained broad+deep load flips it to
  // messaging after exactly confirm_epochs agreeing epochs, and a
  // sustained starve flips it back.
  ModeThresholds thr = big_host();
  ModeController ctl(thr, 4, 2);
  ASSERT_EQ(ctl.mode(), DispatchMode::kDirect);
  for (int i = 0; i + 1 < thr.confirm_epochs; ++i)
    EXPECT_EQ(ctl.observe(busy_signals()), DispatchMode::kDirect) << i;
  EXPECT_EQ(ctl.observe(busy_signals()), DispatchMode::kMessaging);
  EXPECT_EQ(ctl.switches(), 1u);
  for (int i = 0; i + 1 < thr.confirm_epochs; ++i)
    EXPECT_EQ(ctl.observe(starved_signals()), DispatchMode::kMessaging) << i;
  EXPECT_EQ(ctl.observe(starved_signals()), DispatchMode::kDirect);
  EXPECT_EQ(ctl.switches(), 2u);
}

TEST(ModeController, HysteresisIgnoresOccupancySquareWave) {
  // A square wave flipping faster than confirm_epochs must never switch
  // the mode: every epoch agreeing with the current mode resets the
  // confirmation streak.
  ModeThresholds thr = big_host();
  for (int period = 1; period < thr.confirm_epochs; ++period) {
    ModeController ctl(thr, 4, 2);
    ASSERT_EQ(ctl.mode(), DispatchMode::kDirect);
    for (int epoch = 0; epoch < 64; ++epoch) {
      const ModeSignals s =
          (epoch / period) % 2 == 0 ? busy_signals() : starved_signals();
      EXPECT_EQ(ctl.observe(s), DispatchMode::kDirect)
          << "period=" << period << " epoch=" << epoch;
    }
    EXPECT_EQ(ctl.switches(), 0u) << "period=" << period;
  }
}

TEST(ModeController, BandGapPreventsPingPong) {
  // Signals inside the hysteresis band (above the enter gates, below the
  // leave gates) renew whichever mode is current — the band gap is what
  // stops a boundary-hovering signal from oscillating the decision.
  ModeThresholds thr = big_host();
  ModeSignals mid = busy_signals();
  mid.occupied_queues = 8;   // 2.0/worker: in (occ_enter, occ_leave)
  mid.queued_tasks = 512;    // 128/worker: in (depth_enter, depth_leave)

  ModeController in_direct(thr, 4, 2);
  ASSERT_EQ(in_direct.mode(), DispatchMode::kDirect);
  for (int i = 0; i < 32; ++i)
    EXPECT_EQ(in_direct.observe(mid), DispatchMode::kDirect);
  EXPECT_EQ(in_direct.switches(), 0u);

  ModeController in_messaging(thr, 4, 2);
  for (int i = 0; i < thr.confirm_epochs; ++i)
    in_messaging.observe(busy_signals());
  ASSERT_EQ(in_messaging.mode(), DispatchMode::kMessaging);
  for (int i = 0; i < 32; ++i)
    EXPECT_EQ(in_messaging.observe(mid), DispatchMode::kMessaging);
  EXPECT_EQ(in_messaging.switches(), 1u);
}

// ---------------------------------------------------------------------------
// Forced dispatch modes: correctness is mode-independent, so each policy
// must produce exact results. No test asserts which mode dmode=auto picks
// on a real run — that is machine-dependent by design.

TEST(AdaptiveDispatch, ForcedDirectIsCorrect) {
  AnyRuntime rt = RuntimeRegistry::make(
      "xtask:threads=4,zones=2,dlb=adaptive,dmode=direct");
  EXPECT_EQ(bots::fib_parallel(rt, 18, 4), bots::fib_serial(18));
  const Counters total = rt.total_counters();
  EXPECT_EQ(total.ntasks_created, total.ntasks_executed);
  // Direct mode never opens messaging rounds.
  EXPECT_EQ(total.nsteal_rounds, 0u);
}

TEST(AdaptiveDispatch, ForcedMessagingIsCorrect) {
  AnyRuntime rt = RuntimeRegistry::make(
      "xtask:threads=4,zones=2,dlb=adaptive,dmode=messaging");
  EXPECT_EQ(bots::fib_parallel(rt, 18, 4), bots::fib_serial(18));
  const Counters total = rt.total_counters();
  EXPECT_EQ(total.ntasks_created, total.ntasks_executed);
  // Messaging mode never direct-steals.
  EXPECT_EQ(total.nsteal_direct, 0u);
  Runtime* concrete = rt.get_if<Runtime>();
  ASSERT_NE(concrete, nullptr);
  EXPECT_EQ(concrete->dispatch_mode_now(), DispatchMode::kMessaging);
  EXPECT_EQ(concrete->mode_switches(), 0u);
}

TEST(AdaptiveDispatch, AutoIsCorrectAcrossRegions) {
  AnyRuntime rt =
      RuntimeRegistry::make("xtask:threads=4,zones=2,dlb=adaptive");
  for (int round = 0; round < 3; ++round)
    EXPECT_EQ(bots::fib_parallel(rt, 16, 4), bots::fib_serial(16)) << round;
  const Counters total = rt.total_counters();
  EXPECT_EQ(total.ntasks_created, total.ntasks_executed);
}

TEST(AdaptiveDispatch, ForcedDirectSingleZone) {
  AnyRuntime rt = RuntimeRegistry::make(
      "xtask:threads=4,zones=1,dlb=adaptive,dmode=direct");
  EXPECT_EQ(bots::nqueens_parallel(rt, 7, 3), bots::nqueens_serial(7));
}

TEST(AdaptiveDispatch, ForcedDirectWithSmallQueuesOverflows) {
  // Tiny queues force the direct-mode overflow path (inline execution)
  // and thief-requeue overflow; results must stay exact.
  AnyRuntime rt = RuntimeRegistry::make(
      "xtask:threads=4,zones=2,qcap=8,dlb=adaptive,dmode=direct");
  EXPECT_EQ(bots::fib_parallel(rt, 17, 4), bots::fib_serial(17));
  const Counters total = rt.total_counters();
  EXPECT_EQ(total.ntasks_created, total.ntasks_executed);
}

}  // namespace
}  // namespace xtask
