// Multi-level task allocator tests: recycling levels, malloc mode,
// spill-to-shared-pool behaviour, cross-thread recycling, and stats.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/task_allocator.hpp"

namespace xtask {
namespace {

TEST(TaskAllocator, MallocModeAlwaysHitsSystem) {
  TaskAllocator::SharedPool pool(AllocatorMode::kMalloc);
  TaskAllocator alloc(pool);
  std::vector<Task*> tasks;
  for (int i = 0; i < 10; ++i) tasks.push_back(alloc.allocate());
  EXPECT_EQ(pool.system_allocs(), 10u);
  for (Task* t : tasks) alloc.release(t);
  // Released memory goes back to the system, not a free list.
  alloc.allocate();
  EXPECT_EQ(pool.system_allocs(), 11u);
  EXPECT_EQ(alloc.local_hits(), 0u);
}

TEST(TaskAllocator, MultiLevelRecyclesLocally) {
  TaskAllocator::SharedPool pool(AllocatorMode::kMultiLevel);
  TaskAllocator alloc(pool);
  Task* t = alloc.allocate();
  const auto before = pool.system_allocs();
  alloc.release(t);
  Task* t2 = alloc.allocate();
  EXPECT_EQ(t2, t);  // same descriptor reused
  EXPECT_EQ(pool.system_allocs(), before);
  EXPECT_EQ(alloc.local_hits(), 1u);
  alloc.release(t2);
}

TEST(TaskAllocator, SteadyStateStopsCallingSystem) {
  TaskAllocator::SharedPool pool(AllocatorMode::kMultiLevel);
  TaskAllocator alloc(pool);
  // Warm up with a working set of 64, then churn.
  std::vector<Task*> live;
  for (int i = 0; i < 64; ++i) live.push_back(alloc.allocate());
  for (Task* t : live) alloc.release(t);
  live.clear();
  const auto warm = pool.system_allocs();
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 64; ++i) live.push_back(alloc.allocate());
    for (Task* t : live) alloc.release(t);
    live.clear();
  }
  EXPECT_EQ(pool.system_allocs(), warm);
  EXPECT_GE(alloc.local_hits(), 6400u);
}

TEST(TaskAllocator, SpillsToSharedPoolAndOthersBenefit) {
  TaskAllocator::SharedPool pool(AllocatorMode::kMultiLevel);
  TaskAllocator producer(pool);
  // Release far more than the local cache keeps: half spills to the pool.
  std::vector<Task*> tasks;
  for (int i = 0; i < 600; ++i) tasks.push_back(producer.allocate());
  for (Task* t : tasks) producer.release(t);
  const auto before = pool.system_allocs();
  TaskAllocator consumer(pool);
  Task* t = consumer.allocate();  // must come from the shared pool
  EXPECT_EQ(pool.system_allocs(), before);
  consumer.release(t);
}

TEST(TaskAllocator, CrossThreadProducerConsumerPattern) {
  // One thread allocates, the other releases (executor-side recycling);
  // the spill path must keep the producer supplied without unbounded
  // system allocation.
  TaskAllocator::SharedPool pool(AllocatorMode::kMultiLevel);
  constexpr int kRounds = 2000;
  constexpr int kWindow = 64;  // bounded handoff so recycling circulates
  std::vector<Task*> handoff(kRounds, nullptr);
  std::atomic<int> ready{0};
  std::atomic<int> consumed{0};
  std::thread producer([&] {
    TaskAllocator alloc(pool);
    for (int i = 0; i < kRounds; ++i) {
      while (i - consumed.load(std::memory_order_acquire) >= kWindow)
        std::this_thread::yield();
      handoff[static_cast<std::size_t>(i)] = alloc.allocate();
      ready.store(i + 1, std::memory_order_release);
    }
  });
  std::thread consumer([&] {
    TaskAllocator alloc(pool);
    int seen = 0;
    while (seen < kRounds) {
      if (ready.load(std::memory_order_acquire) > seen) {
        alloc.release(handoff[static_cast<std::size_t>(seen)]);
        ++seen;
        consumed.store(seen, std::memory_order_release);
      } else {
        std::this_thread::yield();
      }
    }
  });
  producer.join();
  consumer.join();
  // The producer's working set is 1; the system should have been asked
  // for far fewer descriptors than kRounds once spills circulate back.
  EXPECT_LT(pool.system_allocs(), static_cast<std::uint64_t>(kRounds));
}

TEST(TaskAllocator, TaskAlignmentIsCacheLine) {
  TaskAllocator::SharedPool pool(AllocatorMode::kMultiLevel);
  TaskAllocator alloc(pool);
  for (int i = 0; i < 16; ++i) {
    Task* t = alloc.allocate();
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(t) % kCacheLine, 0u);
    alloc.release(t);
  }
}

}  // namespace
}  // namespace xtask
