// Fiber substrate tests: creation, ping-pong switching, argument passing,
// stack isolation, many fibers, and deep stacks within the guard limit.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/fiber.hpp"

namespace xtask::sim {
namespace {

// Simple cooperative harness: fibers switch back to `main_ctx` to yield.
struct Harness {
  FiberContext main_ctx;
  Fiber fiber;
  bool finished = false;
};

struct PingPongState {
  Harness h;
  int counter = 0;
};

void ping_pong_entry(void* arg) {
  auto* st = static_cast<PingPongState*>(arg);
  for (int i = 0; i < 1000; ++i) {
    ++st->counter;
    Fiber::switch_to(&st->h.fiber.context(), &st->h.main_ctx);
  }
  st->h.finished = true;
  Fiber::switch_to(&st->h.fiber.context(), &st->h.main_ctx);
  ADD_FAILURE() << "finished fiber resumed";
}

TEST(Fiber, PingPongPreservesState) {
  PingPongState st;
  st.h.fiber.create(&ping_pong_entry, &st);
  int resumes = 0;
  while (!st.h.finished) {
    Fiber::switch_to(&st.h.main_ctx, &st.h.fiber.context());
    ++resumes;
  }
  EXPECT_EQ(st.counter, 1000);
  EXPECT_EQ(resumes, 1001);  // 1000 yields + final switch-out
}

struct StackState {
  Harness h;
  std::uintptr_t observed_sp = 0;
  std::uint64_t checksum = 0;
};

void stack_user_entry(void* arg) {
  auto* st = static_cast<StackState*>(arg);
  // Use a healthy chunk of stack and verify contents survive a switch.
  volatile std::uint8_t buf[16 * 1024];
  for (std::size_t i = 0; i < sizeof(buf); ++i)
    buf[i] = static_cast<std::uint8_t>(i * 31);
  int probe = 0;
  st->observed_sp = reinterpret_cast<std::uintptr_t>(&probe);
  Fiber::switch_to(&st->h.fiber.context(), &st->h.main_ctx);
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < sizeof(buf); ++i) sum += buf[i];
  st->checksum = sum;
  st->h.finished = true;
  Fiber::switch_to(&st->h.fiber.context(), &st->h.main_ctx);
}

TEST(Fiber, OwnStackSurvivesSwitches) {
  StackState st;
  st.h.fiber.create(&stack_user_entry, &st, 128 * 1024);
  Fiber::switch_to(&st.h.main_ctx, &st.h.fiber.context());
  int here = 0;
  // The fiber runs on its own mapping, far from this thread's stack.
  EXPECT_NE(st.observed_sp, 0u);
  const std::uintptr_t host_sp = reinterpret_cast<std::uintptr_t>(&here);
  const std::uintptr_t delta = st.observed_sp > host_sp
                                   ? st.observed_sp - host_sp
                                   : host_sp - st.observed_sp;
  EXPECT_GT(delta, 1024u * 1024u);
  Fiber::switch_to(&st.h.main_ctx, &st.h.fiber.context());
  EXPECT_TRUE(st.h.finished);
  std::uint64_t expect = 0;
  for (std::size_t i = 0; i < 16 * 1024; ++i)
    expect += static_cast<std::uint8_t>(i * 31);
  EXPECT_EQ(st.checksum, expect);
}

struct CounterState {
  Harness h;
  int id = 0;
  int* order_cursor = nullptr;
  std::vector<int>* order = nullptr;
};

void ordered_entry(void* arg) {
  auto* st = static_cast<CounterState*>(arg);
  st->order->push_back(st->id);
  st->h.finished = true;
  Fiber::switch_to(&st->h.fiber.context(), &st->h.main_ctx);
}

TEST(Fiber, ManyFibersRunIndependently) {
  constexpr int kN = 64;
  std::vector<int> order;
  std::vector<std::unique_ptr<CounterState>> fibers;
  for (int i = 0; i < kN; ++i) {
    auto st = std::make_unique<CounterState>();
    st->id = i;
    st->order = &order;
    st->h.fiber.create(&ordered_entry, st.get(), 64 * 1024);
    fibers.push_back(std::move(st));
  }
  // Run in reverse order; completion order must match resume order.
  for (int i = kN - 1; i >= 0; --i) {
    auto& st = *fibers[static_cast<std::size_t>(i)];
    Fiber::switch_to(&st.h.main_ctx, &st.h.fiber.context());
    EXPECT_TRUE(st.h.finished);
  }
  ASSERT_EQ(order.size(), static_cast<std::size_t>(kN));
  for (int i = 0; i < kN; ++i)
    EXPECT_EQ(order[static_cast<std::size_t>(i)], kN - 1 - i);
}

struct RecursionState {
  Harness h;
  int depth = 0;
  long result = 0;
};

long deep_sum(int n) {
  // Non-tail recursion with a local buffer: real stack consumption.
  volatile char pad[128];
  pad[0] = static_cast<char>(n);
  if (n == 0) return pad[0];
  return deep_sum(n - 1) + 1;
}

void recursion_entry(void* arg) {
  auto* st = static_cast<RecursionState*>(arg);
  st->result = deep_sum(st->depth);
  st->h.finished = true;
  Fiber::switch_to(&st->h.fiber.context(), &st->h.main_ctx);
}

TEST(Fiber, DeepRecursionWithinStackBudget) {
  RecursionState st;
  st.depth = 1000;  // ~ 1000 * ~200B frames, well inside 512 KiB
  st.h.fiber.create(&recursion_entry, &st, 512 * 1024);
  Fiber::switch_to(&st.h.main_ctx, &st.h.fiber.context());
  EXPECT_TRUE(st.h.finished);
  EXPECT_EQ(st.result, 1000);
}

}  // namespace
}  // namespace xtask::sim
