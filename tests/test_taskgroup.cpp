// taskgroup / taskyield tests: subtree completion (grandchildren included
// — the semantics taskwait does not give), nesting, and yield behaviour.
#include <gtest/gtest.h>

#include <atomic>

#include "core/runtime.hpp"
#include "registry/registry.hpp"

namespace xtask {
namespace {

Config cfg4() {
  Config cfg;
  cfg.num_threads = 4;
  cfg.numa_zones = 2;
  return cfg;
}

TEST(TaskGroup, WaitsForGrandchildren) {
  // Children spawn grandchildren and return WITHOUT taskwait: a plain
  // taskwait would not cover the grandchildren, taskgroup must.
  const auto rt_h = RuntimeRegistry::make_xtask(cfg4());
  Runtime& rt = *rt_h;
  std::atomic<int> grandchildren{0};
  bool all_done_inside = false;
  rt.run([&](TaskContext& ctx) {
    ctx.taskgroup([&](TaskContext& g) {
      for (int i = 0; i < 8; ++i) {
        g.spawn([&](TaskContext& c) {
          for (int j = 0; j < 8; ++j)
            c.spawn([&](TaskContext&) {
              grandchildren.fetch_add(1, std::memory_order_relaxed);
            });
          // no taskwait — fire and forget
        });
      }
    });
    all_done_inside = grandchildren.load() == 64;
  });
  EXPECT_TRUE(all_done_inside)
      << "taskgroup returned before grandchildren finished";
  EXPECT_EQ(grandchildren.load(), 64);
}

TEST(TaskGroup, TaskwaitAloneDoesNotCoverGrandchildren) {
  // Control experiment for the test above: document the weaker taskwait
  // semantics the group exists to strengthen. (Grandchildren may or may
  // not be done at the observation point; the region barrier still drains
  // them, so the final count is exact.)
  const auto rt_h = RuntimeRegistry::make_xtask(cfg4());
  Runtime& rt = *rt_h;
  std::atomic<int> done{0};
  rt.run([&](TaskContext& ctx) {
    for (int i = 0; i < 4; ++i) {
      ctx.spawn([&](TaskContext& c) {
        c.spawn([&](TaskContext&) { done.fetch_add(1); });
      });
    }
    ctx.taskwait();  // waits for children only
  });
  EXPECT_EQ(done.load(), 4);  // barrier drained everything by region end
}

TEST(TaskGroup, NestedGroups) {
  const auto rt_h = RuntimeRegistry::make_xtask(cfg4());
  Runtime& rt = *rt_h;
  std::atomic<int> inner_total{0};
  std::atomic<int> outer_total{0};
  rt.run([&](TaskContext& ctx) {
    ctx.taskgroup([&](TaskContext& g) {
      for (int i = 0; i < 4; ++i) {
        g.spawn([&](TaskContext& c) {
          std::atomic<int> mine{0};  // this outer task's inner group only
          c.taskgroup([&](TaskContext& inner) {
            for (int j = 0; j < 4; ++j)
              inner.spawn([&](TaskContext&) {
                mine.fetch_add(1);
                inner_total.fetch_add(1);
              });
          });
          // Inner group complete here by definition.
          EXPECT_EQ(mine.load(), 4);
          outer_total.fetch_add(1);
        });
      }
    });
  });
  EXPECT_EQ(inner_total.load(), 16);
  EXPECT_EQ(outer_total.load(), 4);
}

TEST(TaskGroup, EmptyGroupReturnsImmediately) {
  const auto rt_h = RuntimeRegistry::make_xtask(cfg4());
  Runtime& rt = *rt_h;
  int ran = 0;
  rt.run([&](TaskContext& ctx) {
    ctx.taskgroup([&](TaskContext&) { ++ran; });
  });
  EXPECT_EQ(ran, 1);
}

TEST(TaskGroup, CountersBalanceWithGroups) {
  const auto rt_h = RuntimeRegistry::make_xtask(cfg4());
  Runtime& rt = *rt_h;
  std::atomic<int> n{0};
  rt.run([&](TaskContext& ctx) {
    ctx.taskgroup([&](TaskContext& g) {
      for (int i = 0; i < 100; ++i)
        g.spawn([&](TaskContext& c) {
          c.spawn([&](TaskContext&) { n.fetch_add(1); });
        });
    });
  });
  EXPECT_EQ(n.load(), 100);
  const Counters c = rt.profiler().total_counters();
  EXPECT_EQ(c.ntasks_created, c.ntasks_executed);
}

TEST(TaskYield, RunsAnotherTaskWhenAvailable) {
  Config cfg;
  cfg.num_threads = 1;  // deterministic: all tasks on one worker
  const auto rt_h = RuntimeRegistry::make_xtask(cfg);
  Runtime& rt = *rt_h;
  std::vector<int> order;
  rt.run([&](TaskContext& ctx) {
    ctx.spawn([&](TaskContext&) { order.push_back(1); });
    ctx.spawn([&](TaskContext& c) {
      order.push_back(2);
      // Yield mid-task: task 3 (queued after us) runs inside the yield.
      const bool ran = c.taskyield();
      order.push_back(ran ? 4 : -4);
    });
    ctx.spawn([&](TaskContext&) { order.push_back(3); });
    ctx.taskwait();
  });
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
  EXPECT_EQ(order[2], 3);  // executed inside the yield
  EXPECT_EQ(order[3], 4);
}

TEST(TaskYield, ReturnsFalseWhenNothingQueued) {
  Config cfg;
  cfg.num_threads = 1;
  const auto rt_h = RuntimeRegistry::make_xtask(cfg);
  Runtime& rt = *rt_h;
  bool yielded = true;
  rt.run([&](TaskContext& ctx) {
    ctx.spawn([&](TaskContext& c) { yielded = c.taskyield(); });
    ctx.taskwait();
  });
  EXPECT_FALSE(yielded);
}

}  // namespace
}  // namespace xtask
