// Property-based round-trip tests for the two user-facing spec grammars:
// Topology::parse/spec (machine shapes) and BackendSpec/RuntimeRegistry
// (backend spec strings). A hand-rolled SplitMix64 generator drives a few
// hundred seeded cases per property — deterministic (the seed is fixed and
// printed on failure), no external property-testing dependency.
//
// Properties:
//   * parse(t.spec()) reproduces t's shape, and spec() is a fixpoint;
//   * generated shapes survive parse -> spec -> parse;
//   * BackendSpec::describe() round-trips through BackendSpec::parse;
//   * near-miss strings (one edit away from valid) are rejected, and key
//     typos name the known key set in the error.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/topology.hpp"
#include "registry/registry.hpp"

namespace {

/// SplitMix64: tiny, seedable, good enough to drive case generation.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  /// Uniform in [lo, hi] (inclusive).
  int range(int lo, int hi) {
    return lo + static_cast<int>(next() % static_cast<std::uint64_t>(
                                             hi - lo + 1));
  }
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    return v[static_cast<std::size_t>(range(0, static_cast<int>(v.size()) -
                                               1))];
  }

 private:
  std::uint64_t state_;
};

std::vector<int> zone_sizes(const xtask::Topology& t) {
  std::vector<int> sizes;
  for (int z = 0; z < t.num_zones(); ++z)
    sizes.push_back(static_cast<int>(t.zone_members(z).size()));
  return sizes;
}

/// Shape equality plus the canonical-striping contract: workers appear in
/// id order, contiguously per zone.
void expect_same_shape(const xtask::Topology& a, const xtask::Topology& b,
                       const std::string& context) {
  ASSERT_EQ(a.num_workers(), b.num_workers()) << context;
  ASSERT_EQ(a.num_zones(), b.num_zones()) << context;
  EXPECT_EQ(zone_sizes(a), zone_sizes(b)) << context;
  for (int w = 0; w < a.num_workers(); ++w)
    ASSERT_EQ(a.zone_of(w), b.zone_of(w)) << context << " worker " << w;
}

// ---------------------------------------------------------------------------
// Topology round trips.

TEST(SpecProps, TopologyUniformShapeRoundTrips) {
  Rng rng(0xA11CE5EEDull);
  for (int i = 0; i < 300; ++i) {
    const int z = rng.range(1, 8);
    const int w = rng.range(1, 16);
    const std::string spec = std::to_string(z) + "x" + std::to_string(w);
    const xtask::Topology t = xtask::Topology::parse(spec);
    ASSERT_EQ(t.num_zones(), z) << spec;
    ASSERT_EQ(t.num_workers(), z * w) << spec;
    for (int zi = 0; zi < z; ++zi)
      ASSERT_EQ(static_cast<int>(t.zone_members(zi).size()), w) << spec;
    const xtask::Topology back = xtask::Topology::parse(t.spec());
    expect_same_shape(t, back, spec);
    // spec() is a fixpoint: canonical form re-canonicalizes to itself.
    EXPECT_EQ(back.spec(), t.spec()) << spec;
  }
}

TEST(SpecProps, TopologyExplicitShapeRoundTrips) {
  Rng rng(0xBEEFCAFEull);
  for (int i = 0; i < 300; ++i) {
    const int z = rng.range(1, 6);
    std::vector<int> counts;
    std::string spec;
    for (int zi = 0; zi < z; ++zi) {
      counts.push_back(rng.range(1, 9));
      if (zi > 0) spec += ":";
      spec += std::to_string(counts.back());
    }
    const xtask::Topology t = xtask::Topology::parse(spec);
    ASSERT_EQ(zone_sizes(t), counts) << spec;
    const xtask::Topology back = xtask::Topology::parse(t.spec());
    expect_same_shape(t, back, spec);
    EXPECT_EQ(back.spec(), t.spec()) << spec;
  }
}

TEST(SpecProps, TopologySyntheticSpecRoundTrips) {
  Rng rng(0x70D0ull);
  for (int i = 0; i < 300; ++i) {
    const int w = rng.range(1, 32);
    const int z = rng.range(1, 8);  // synthetic() clamps to [1, w]
    const xtask::Topology t = xtask::Topology::synthetic(w, z);
    const xtask::Topology back = xtask::Topology::parse(t.spec());
    expect_same_shape(t, back, t.spec());
  }
}

TEST(SpecProps, TopologySingleNumberIsOneZone) {
  Rng rng(0x1ull);
  for (int i = 0; i < 100; ++i) {
    const int n = rng.range(1, 64);
    const xtask::Topology t = xtask::Topology::parse(std::to_string(n));
    EXPECT_EQ(t.num_zones(), 1);
    EXPECT_EQ(t.num_workers(), n);
  }
}

// Near-misses: one corruption away from a valid shape. Every operator
// below produces a string the strict grammar must reject.
TEST(SpecProps, TopologyNearMissesAreRejected) {
  Rng rng(0xDEAD5EEDull);
  for (int i = 0; i < 300; ++i) {
    const int z = rng.range(1, 8);
    const int w = rng.range(1, 16);
    std::string s = std::to_string(z) + "x" + std::to_string(w);
    switch (rng.range(0, 5)) {
      case 0: s = "0x" + std::to_string(w); break;   // zero zone count
      case 1: s = std::to_string(z) + "x0"; break;   // zero worker count
      case 2: s += "x"; break;                       // trailing separator
      case 3: s.insert(0, ":"); break;               // empty first segment
      case 4: s[static_cast<std::size_t>(rng.range(
                  0, static_cast<int>(s.size()) - 1))] = '?';
              break;                                 // junk character
      case 5: s = ""; break;                         // empty spec
    }
    EXPECT_THROW(xtask::Topology::parse(s), std::invalid_argument)
        << "accepted near-miss '" << s << "'";
  }
}

// ---------------------------------------------------------------------------
// Backend spec round trips.

TEST(SpecProps, BackendSpecDescribeRoundTrips) {
  Rng rng(0xB4C83ull);
  const std::vector<std::string> backends = {"serial", "gomp", "lomp",
                                             "xlomp", "xtask"};
  const std::vector<std::string> keys = {"threads", "zones", "qcap", "dlb",
                                         "seed",    "topo",  "yield"};
  const std::vector<std::string> values = {"1",    "8",    "naws", "4096",
                                           "true", "8x24", "off"};
  for (int i = 0; i < 300; ++i) {
    xtask::BackendSpec spec;
    spec.backend = rng.pick(backends);
    const int nopts = rng.range(0, 4);
    for (int k = 0; k < nopts; ++k)
      spec.options.emplace_back(rng.pick(keys), rng.pick(values));
    const std::string text = spec.describe();
    const xtask::BackendSpec back = xtask::BackendSpec::parse(text);
    ASSERT_EQ(back.backend, spec.backend) << text;
    ASSERT_EQ(back.options, spec.options) << text;
    EXPECT_EQ(back.describe(), text) << "describe() not a fixpoint";
  }
}

TEST(SpecProps, BackendSpecLastDuplicateWins) {
  Rng rng(0xD0Dull);
  for (int i = 0; i < 100; ++i) {
    const int a = rng.range(1, 64);
    const int b = rng.range(1, 64);
    const std::string text = "xtask:threads=" + std::to_string(a) +
                             ",threads=" + std::to_string(b);
    const xtask::BackendSpec spec = xtask::BackendSpec::parse(text);
    const std::string* v = spec.find("threads");
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, std::to_string(b)) << text;
  }
}

/// One-edit mutations of a valid key: drop last char, double a char, swap
/// two adjacent chars, append a char. Skips the (rare) mutation that lands
/// on another valid key.
std::string mutate_key(Rng& rng, const std::string& key) {
  std::string m = key;
  switch (rng.range(0, 3)) {
    case 0: m.pop_back(); break;
    case 1: m += m[static_cast<std::size_t>(rng.range(
                0, static_cast<int>(m.size()) - 1))];
            break;
    case 2: {
      if (m.size() >= 2) {
        const auto p = static_cast<std::size_t>(
            rng.range(0, static_cast<int>(m.size()) - 2));
        std::swap(m[p], m[p + 1]);
      }
      break;
    }
    case 3: m += 's'; break;
  }
  return m;
}

TEST(SpecProps, NearMissKeysNameTheKnownKeySet) {
  Rng rng(0x5EED2ull);
  struct Backend {
    std::string name;
    std::vector<std::string> keys;
  };
  // Key sets mirror registry.cpp's check_keys call per backend.
  const std::vector<Backend> table = {
      {"xtask",
       {"threads", "zones", "topo", "qcap", "barrier", "dlb", "alloc",
        "tint", "nvictim", "nsteal", "plocal", "seed", "wdog", "yield",
        "profile", "hb", "quarantine"}},
      {"gomp", {"threads", "zones", "topo", "yield", "profile"}},
      {"lomp",
       {"threads", "zones", "topo", "qcap", "seed", "xqueue", "yield",
        "profile"}},
  };
  int tested = 0;
  for (int i = 0; i < 300; ++i) {
    const Backend& be = table[static_cast<std::size_t>(
        rng.range(0, static_cast<int>(table.size()) - 1))];
    const std::set<std::string> valid(be.keys.begin(), be.keys.end());
    const std::string typo = mutate_key(
        rng, be.keys[static_cast<std::size_t>(
                 rng.range(0, static_cast<int>(be.keys.size()) - 1))]);
    if (valid.count(typo) != 0 || typo.empty()) continue;  // not a typo
    xtask::BackendSpec spec;
    spec.backend = be.name;
    spec.options.emplace_back(typo, "1");
    try {
      if (be.name == "xtask") {
        (void)xtask::RuntimeRegistry::xtask_config(spec);
      } else if (be.name == "gomp") {
        (void)xtask::RuntimeRegistry::gomp_config(spec);
      } else {
        (void)xtask::RuntimeRegistry::lomp_config(spec);
      }
      FAIL() << be.name << " accepted unknown key '" << typo << "'";
    } catch (const std::invalid_argument& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find(typo), std::string::npos) << msg;
      EXPECT_NE(msg.find("known"), std::string::npos)
          << "error for '" << typo << "' does not name the known keys: "
          << msg;
      // The suggestion list must actually contain the key that was meant.
      EXPECT_NE(msg.find(be.keys.front()), std::string::npos) << msg;
    }
    ++tested;
  }
  EXPECT_GT(tested, 200) << "mutation filter rejected too many cases";
}

// ---------------------------------------------------------------------------
// Tenant spec round trips (the serve front-end's admission grammar).

TEST(SpecProps, TenantSpecDescribeRoundTrips) {
  Rng rng(0x7E4A47ull);
  const std::vector<std::string> names = {"free", "paid", "batch", "t0",
                                          "svc-a", "svc_b"};
  for (int i = 0; i < 300; ++i) {
    xtask::TenantSpec t;
    t.name = rng.pick(names);
    t.rate = static_cast<std::uint64_t>(rng.range(1, 1000000));
    t.quota = static_cast<std::uint64_t>(rng.range(1, 100000));
    t.burst = static_cast<std::uint64_t>(rng.range(0, 5000));  // 0 = default
    t.priority = rng.range(0, 7);
    const std::string text = t.describe();
    const xtask::TenantSpec back = xtask::TenantSpec::parse(text);
    ASSERT_EQ(back.name, t.name) << text;
    ASSERT_EQ(back.rate, t.rate) << text;
    ASSERT_EQ(back.quota, t.quota) << text;
    ASSERT_EQ(back.burst, t.burst) << text;
    ASSERT_EQ(back.priority, t.priority) << text;
    EXPECT_EQ(back.describe(), text) << "describe() not a fixpoint";
    // The optional tenant= prefix parses to the same spec.
    const xtask::TenantSpec prefixed =
        xtask::TenantSpec::parse("tenant=" + text);
    EXPECT_EQ(prefixed.describe(), text) << text;
  }
}

TEST(SpecProps, TenantSpecListRoundTripsAndRejectsDuplicates) {
  Rng rng(0x11575EEDull);
  for (int i = 0; i < 200; ++i) {
    const int n = rng.range(1, 5);
    std::vector<xtask::TenantSpec> in;
    std::string text;
    for (int k = 0; k < n; ++k) {
      xtask::TenantSpec t;
      t.name = std::string("t") + std::to_string(k);
      t.rate = static_cast<std::uint64_t>(rng.range(1, 100000));
      t.quota = static_cast<std::uint64_t>(rng.range(1, 10000));
      t.priority = rng.range(0, 7);
      in.push_back(t);
      if (k > 0) text += ";";
      text += t.describe();
    }
    const auto out = xtask::TenantSpec::parse_list(text);
    ASSERT_EQ(out.size(), in.size()) << text;
    for (std::size_t k = 0; k < out.size(); ++k)
      EXPECT_EQ(out[k].describe(), in[k].describe()) << text;
    // Appending any existing tenant again must be rejected by name.
    std::string dup = text;
    dup += ";";
    dup += in[0].describe();
    EXPECT_THROW(xtask::TenantSpec::parse_list(dup), std::invalid_argument)
        << dup;
  }
}

TEST(SpecProps, NearMissTenantKeysNameTheKnownKeySet) {
  Rng rng(0x7E4A5EEDull);
  const std::vector<std::string> keys = {"rate", "quota", "burst", "prio"};
  const std::set<std::string> valid(keys.begin(), keys.end());
  int tested = 0;
  for (int i = 0; i < 300; ++i) {
    const std::string typo = mutate_key(rng, rng.pick(keys));
    if (valid.count(typo) != 0 || typo.empty()) continue;
    const std::string text = "t:rate=10,quota=4," + typo + "=1";
    try {
      (void)xtask::TenantSpec::parse(text);
      FAIL() << "accepted unknown tenant key '" << typo << "'";
    } catch (const std::invalid_argument& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find(typo), std::string::npos) << msg;
      EXPECT_NE(msg.find("known"), std::string::npos)
          << "error for '" << typo << "' does not name the known keys: "
          << msg;
      EXPECT_NE(msg.find("rate"), std::string::npos) << msg;
    }
    ++tested;
  }
  EXPECT_GT(tested, 200) << "mutation filter rejected too many cases";
}

TEST(SpecProps, TenantSpecMalformedValuesAndMissingKeysAreRejected) {
  const std::vector<std::string> bad = {
      "",                       // empty
      ":rate=10,quota=4",       // empty name
      "t",                      // no options
      "t:rate=10",              // missing quota
      "t:quota=4",              // missing rate
      "t:rate=x,quota=4",       // non-numeric
      "t:rate=10,quota=4,prio=-1",  // negative (sign is not a digit)
      "t:rate=10,,quota=4",     // empty option
      "t:rate,quota=4",         // option without '='
  };
  for (const std::string& s : bad)
    EXPECT_THROW(xtask::TenantSpec::parse(s), std::invalid_argument)
        << "accepted '" << s << "'";
  EXPECT_THROW(xtask::TenantSpec::parse_list(""), std::invalid_argument);
  EXPECT_THROW(xtask::TenantSpec::parse_list(";;"), std::invalid_argument);
}

TEST(SpecProps, NearMissBackendsNameTheKnownBackends) {
  Rng rng(0xFADEull);
  const std::set<std::string> valid = {"serial", "gomp", "lomp", "xlomp",
                                       "xtask"};
  int tested = 0;
  for (int i = 0; i < 200; ++i) {
    std::vector<std::string> names(valid.begin(), valid.end());
    const std::string typo = mutate_key(rng, rng.pick(names));
    if (valid.count(typo) != 0 || typo.empty()) continue;
    try {
      (void)xtask::RuntimeRegistry::make(typo);
      FAIL() << "accepted unknown backend '" << typo << "'";
    } catch (const std::invalid_argument& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("known"), std::string::npos) << msg;
      EXPECT_NE(msg.find("xtask"), std::string::npos) << msg;
    }
    ++tested;
  }
  EXPECT_GT(tested, 150);
}

}  // namespace
