// Correctness of every BOTS kernel: task-parallel result (on the xtask
// runtime, the GOMP-like and the LOMP-like baselines) must equal the
// serial reference produced by the same kernel source with SerialContext.
#include <gtest/gtest.h>

#include <cmath>

#include "bots/bots.hpp"
#include "core/runtime.hpp"
#include "gomp/gomp_runtime.hpp"
#include "gomp/lomp_runtime.hpp"
#include "registry/registry.hpp"

namespace xtask {
namespace {

using bots::SerialRuntime;

Config small_cfg(DlbKind dlb = DlbKind::kNone) {
  Config cfg;
  cfg.num_threads = 4;
  cfg.numa_zones = 2;
  cfg.barrier = BarrierKind::kTree;
  cfg.dlb = dlb;
  cfg.dlb_cfg.t_interval = 200;
  return cfg;
}

// ---------------------------------------------------------------- Fib ----
TEST(BotsFib, MatchesSerialOnAllRuntimes) {
  const long expect = bots::fib_serial(18);
  {
    const auto rt_h = RuntimeRegistry::make_xtask(small_cfg());
    Runtime& rt = *rt_h;
    EXPECT_EQ(bots::fib_parallel(rt, 18), expect);
  }
  {
    gomp::GompRuntime::Config gc;
    gc.num_threads = 4;
    const auto rt_h = RuntimeRegistry::make_gomp(gc);
    gomp::GompRuntime& rt = *rt_h;
    EXPECT_EQ(bots::fib_parallel(rt, 18), expect);
  }
  {
    lomp::LompRuntime::Config lc;
    lc.num_threads = 4;
    const auto rt_h = RuntimeRegistry::make_lomp(lc);
    lomp::LompRuntime& rt = *rt_h;
    EXPECT_EQ(bots::fib_parallel(rt, 18), expect);
  }
  {
    lomp::LompRuntime::Config lc;
    lc.num_threads = 4;
    lc.use_xqueue = true;  // XLOMP
    const auto rt_h = RuntimeRegistry::make_lomp(lc);
    lomp::LompRuntime& rt = *rt_h;
    EXPECT_EQ(bots::fib_parallel(rt, 18), expect);
  }
}

TEST(BotsFib, CutoffDoesNotChangeResult) {
  const auto rt_h = RuntimeRegistry::make_xtask(small_cfg());
  Runtime& rt = *rt_h;
  EXPECT_EQ(bots::fib_parallel(rt, 20, /*cutoff=*/8),
            bots::fib_serial(20));
}

// ------------------------------------------------------------ NQueens ----
TEST(BotsNQueens, KnownSolutionCounts) {
  // OEIS A000170.
  EXPECT_EQ(bots::nqueens_serial(6), 4);
  EXPECT_EQ(bots::nqueens_serial(8), 92);
  EXPECT_EQ(bots::nqueens_serial(9), 352);
}

TEST(BotsNQueens, ParallelMatchesSerial) {
  const auto rt_h = RuntimeRegistry::make_xtask(small_cfg(DlbKind::kWorkSteal));
  Runtime& rt = *rt_h;
  EXPECT_EQ(bots::nqueens_parallel(rt, 9, /*cutoff=*/3),
            bots::nqueens_serial(9));
  EXPECT_EQ(bots::nqueens_parallel(rt, 8, /*cutoff=*/0),
            bots::nqueens_serial(8));
}

// ---------------------------------------------------------------- Sort ----
TEST(BotsSort, SortsAndPreservesMultiset) {
  auto data = bots::sort_input(100'000, 3);
  auto copy = data;
  std::sort(copy.begin(), copy.end());
  const auto rt_h = RuntimeRegistry::make_xtask(small_cfg());
  Runtime& rt = *rt_h;
  ASSERT_TRUE(bots::sort_parallel(rt, data, /*sort_cutoff=*/512,
                                  /*merge_cutoff=*/512));
  EXPECT_EQ(data, copy);
}

TEST(BotsSort, TinyAndAlreadySortedInputs) {
  const auto rt_h = RuntimeRegistry::make_xtask(small_cfg());
  Runtime& rt = *rt_h;
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{5},
                        std::size_t{4096}}) {
    auto data = bots::sort_input(n, 9);
    ASSERT_TRUE(bots::sort_parallel(rt, data, 64, 64)) << n;
    auto sorted = data;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(data, sorted) << n;
  }
}

// ------------------------------------------------------------ Strassen ----
TEST(BotsStrassen, MatchesNaiveMultiply) {
  const std::size_t n = 128;
  auto a = bots::strassen_input(n, 1);
  auto b = bots::strassen_input(n, 2);
  auto expect = bots::matmul_serial(a, b, n);
  const auto rt_h = RuntimeRegistry::make_xtask(small_cfg());
  Runtime& rt = *rt_h;
  auto got = bots::strassen_parallel(rt, a, b, n, /*cutoff=*/32);
  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t i = 0; i < got.size(); ++i)
    ASSERT_NEAR(got[i], expect[i], 1e-9) << "at " << i;
}

// ---------------------------------------------------------------- FFT ----
TEST(BotsFft, MatchesSerialFft) {
  const std::size_t n = 4096;
  auto in = bots::fft_input(n);
  auto expect = bots::fft_serial(in);
  const auto rt_h = RuntimeRegistry::make_xtask(small_cfg());
  Runtime& rt = *rt_h;
  auto got = bots::fft_parallel(rt, in, /*cutoff=*/256);
  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_NEAR(got[i].real(), expect[i].real(), 1e-9) << i;
    ASSERT_NEAR(got[i].imag(), expect[i].imag(), 1e-9) << i;
  }
}

TEST(BotsFft, ParsevalEnergyConserved) {
  const std::size_t n = 1024;
  auto in = bots::fft_input(n, 5);
  const auto rt_h = RuntimeRegistry::make_xtask(small_cfg());
  Runtime& rt = *rt_h;
  auto out = bots::fft_parallel(rt, in, 128);
  double e_time = 0.0;
  double e_freq = 0.0;
  for (const auto& x : in) e_time += std::norm(x);
  for (const auto& x : out) e_freq += std::norm(x);
  EXPECT_NEAR(e_freq, e_time * static_cast<double>(n), 1e-6 * e_time * n);
}

// ------------------------------------------------------------------ UTS ----
TEST(BotsUts, ParallelCountMatchesSerial) {
  auto p = bots::uts_tiny();
  const std::uint64_t expect = bots::uts_serial(p);
  EXPECT_GT(expect, 100u);  // tree is nontrivial
  const auto rt_h = RuntimeRegistry::make_xtask(small_cfg(DlbKind::kRedirectPush));
  Runtime& rt = *rt_h;
  EXPECT_EQ(bots::uts_parallel(rt, p), expect);
}

TEST(BotsUts, CutoffDoesNotChangeCount) {
  auto p = bots::uts_tiny();
  const std::uint64_t expect = bots::uts_serial(p);
  p.cutoff_depth = 4;
  const auto rt_h = RuntimeRegistry::make_xtask(small_cfg());
  Runtime& rt = *rt_h;
  EXPECT_EQ(bots::uts_parallel(rt, p), expect);
}

// ------------------------------------------------------------ Floorplan ----
TEST(BotsFloorplan, OptimalAreaMatchesSerial) {
  auto cells = bots::floorplan_cells(7);
  const int expect = bots::floorplan_serial(cells);
  EXPECT_LT(expect, bots::detail::kBoardMax * bots::detail::kBoardMax);
  const auto rt_h = RuntimeRegistry::make_xtask(small_cfg(DlbKind::kWorkSteal));
  Runtime& rt = *rt_h;
  EXPECT_EQ(bots::floorplan_parallel(rt, cells, /*cutoff=*/2), expect);
}

// -------------------------------------------------------------- Health ----
TEST(BotsHealth, StatsMatchSerial) {
  auto p = bots::health_small();
  const auto expect = bots::health_serial(p);
  EXPECT_GT(expect.generated, 0u);
  const auto rt_h = RuntimeRegistry::make_xtask(small_cfg());
  Runtime& rt = *rt_h;
  const auto got = bots::health_parallel(rt, p);
  EXPECT_EQ(got.generated, expect.generated);
  EXPECT_EQ(got.treated_local, expect.treated_local);
  EXPECT_EQ(got.referred, expect.referred);
  EXPECT_EQ(got.work_sum, expect.work_sum);
}

// ----------------------------------------------------------- Alignment ----
TEST(BotsAlignment, ScoresMatchSerial) {
  auto seqs = bots::alignment_sequences(8, 40, 80);
  const auto expect = bots::alignment_serial(seqs);
  const auto rt_h = RuntimeRegistry::make_xtask(small_cfg());
  Runtime& rt = *rt_h;
  EXPECT_EQ(bots::alignment_parallel(rt, seqs), expect);
}

TEST(BotsAlignment, IdenticalSequencesScoreHighest) {
  auto seqs = bots::alignment_sequences(2, 50, 50, 17);
  std::vector<std::string> same = {seqs[0], seqs[0]};
  const auto self_score = bots::alignment_serial(same)[0];
  EXPECT_EQ(self_score, 3 * static_cast<int>(seqs[0].size()));
  const auto cross = bots::alignment_serial(seqs)[0];
  EXPECT_LE(cross, self_score);
}

}  // namespace
}  // namespace xtask
