// Self-healing worker tests: the HealthTracker state machine in isolation
// (deterministic, no threads), then end-to-end recovery through the real
// runtime — a worker wedged inside a task is quarantined, its queued rows
// are reclaimed by healthy peers, the barrier is proxied so the region
// completes, and the worker is readmitted once its heartbeat resumes.
// Chaos-driven (FaultPoint::kWorkerStall/kWorkerSlow) sweeps live in
// test_chaos.cpp; these tests force the transitions by hand instead.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "core/heartbeat.hpp"
#include "core/runtime.hpp"
#include "registry/registry.hpp"

namespace xtask {
namespace {

using Verdict = HealthTracker::Verdict;

// ---------------------------------------------------------------------------
// HealthTracker: pure state machine, driven tick by tick.

TEST(HealthTracker, WalksSuspectQuarantineReadmit) {
  HealthTracker t(3, 2);  // suspect after 3 frozen ticks, eligible after 5
  EXPECT_EQ(t.observe(1, true), Verdict::kNone);  // moving
  EXPECT_EQ(t.observe(2, true), Verdict::kNone);  // moving
  EXPECT_EQ(t.observe(2, true), Verdict::kNone);  // frozen 1
  EXPECT_EQ(t.observe(2, true), Verdict::kNone);  // frozen 2
  EXPECT_EQ(t.observe(2, true), Verdict::kBecameSuspect);  // frozen 3
  EXPECT_EQ(t.health(), WorkerHealth::kSuspect);
  EXPECT_EQ(t.observe(2, true), Verdict::kNone);  // frozen 4
  EXPECT_EQ(t.observe(2, true), Verdict::kQuarantineEligible);  // frozen 5
  // A failed guard CAS leaves the tracker uncommitted: the verdict
  // re-fires on the next frozen tick.
  EXPECT_EQ(t.observe(2, true), Verdict::kQuarantineEligible);
  t.commit_quarantine(/*in_task=*/true);
  EXPECT_EQ(t.health(), WorkerHealth::kQuarantined);
  EXPECT_TRUE(t.quarantined_in_task());
  EXPECT_EQ(t.observe(2, true), Verdict::kNone);  // still frozen
  EXPECT_EQ(t.observe(3, true), Verdict::kHeartbeatResumed);
  // Failed readmit CAS (a reclaimer borrowed the guard): re-fires as long
  // as the heartbeat keeps moving.
  EXPECT_EQ(t.observe(4, true), Verdict::kHeartbeatResumed);
  t.commit_readmit();
  EXPECT_EQ(t.health(), WorkerHealth::kHealthy);
}

TEST(HealthTracker, MovementClearsSuspect) {
  HealthTracker t(2, 2);
  EXPECT_EQ(t.observe(5, true), Verdict::kNone);
  EXPECT_EQ(t.observe(5, true), Verdict::kNone);           // frozen 1
  EXPECT_EQ(t.observe(5, true), Verdict::kBecameSuspect);  // frozen 2
  EXPECT_EQ(t.observe(6, true), Verdict::kSuspectCleared);
  EXPECT_EQ(t.health(), WorkerHealth::kHealthy);
}

TEST(HealthTracker, ParkedWorkersAreNeverSuspected) {
  // A frozen heartbeat while non-schedulable (parked between regions, or
  // no region active) is by design, not a stall.
  HealthTracker t(2, 2);
  EXPECT_EQ(t.observe(7, true), Verdict::kNone);
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(t.observe(7, false), Verdict::kNone);
  EXPECT_EQ(t.health(), WorkerHealth::kHealthy);
}

TEST(HealthTracker, ParkingClearsAnExistingSuspicion) {
  HealthTracker t(2, 2);
  EXPECT_EQ(t.observe(3, true), Verdict::kNone);
  EXPECT_EQ(t.observe(3, true), Verdict::kNone);
  EXPECT_EQ(t.observe(3, true), Verdict::kBecameSuspect);
  // The region ended before the worker got worse: suspicion clears.
  EXPECT_EQ(t.observe(3, false), Verdict::kSuspectCleared);
  EXPECT_EQ(t.health(), WorkerHealth::kHealthy);
}

TEST(HealthTracker, QuarantinedWorkerResumingWhileParkedIsReadmitted) {
  // A worker quarantined at region end may bump its heartbeat again only
  // at the next region's entry; the movement must still earn readmission
  // even if the sample lands while the worker looks non-schedulable.
  HealthTracker t(1, 1);
  EXPECT_EQ(t.observe(1, true), Verdict::kNone);
  EXPECT_EQ(t.observe(1, true), Verdict::kBecameSuspect);
  EXPECT_EQ(t.observe(1, true), Verdict::kQuarantineEligible);
  t.commit_quarantine(false);
  EXPECT_EQ(t.observe(2, false), Verdict::kHeartbeatResumed);
}

// ---------------------------------------------------------------------------
// End-to-end recovery through the real runtime.

TEST(SelfHealing, WedgedWorkerIsQuarantinedReclaimedAndReadmitted) {
  // Layout: the root (on worker 0) first spawns a wedge task — the static
  // round-robin starts at the spawner's own master queue, so it lands in
  // q[0][0] and worker 0 runs it first — then kTasks counter tasks spread
  // over the team. dlb=none means the counter tasks parked in worker 0's
  // row can ONLY run via the reclamation path while worker 0 is wedged:
  // the region completing at all proves quarantine -> reclaim -> proxy
  // worked, and the wedge exiting proves the full loop ended in
  // readmission.
  Config cfg;
  cfg.num_threads = 4;
  cfg.numa_zones = 2;
  cfg.dlb = DlbKind::kNone;
  cfg.heartbeat_ms = 5;
  cfg.quarantine = true;
  cfg.watchdog_timeout_ms = 20'000;
  const auto rt_h = RuntimeRegistry::make_xtask(cfg);
  Runtime& rt = *rt_h;

  constexpr int kTasks = 512;
  std::atomic<int> done{0};
  std::atomic<bool> saw_quarantine{false};
  rt.run([&](TaskContext& ctx) {
    ctx.spawn([&](TaskContext&) {
      // Wedge: heartbeat-silent until every counter task completed
      // elsewhere. Time-capped so a recovery bug fails assertions
      // instead of hanging the suite.
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(30);
      while (done.load(std::memory_order_acquire) < kTasks &&
             std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      if (rt.worker_health(0) == WorkerHealth::kQuarantined)
        saw_quarantine.store(true, std::memory_order_relaxed);
    });
    for (int i = 0; i < kTasks; ++i)
      ctx.spawn([&](TaskContext&) {
        done.fetch_add(1, std::memory_order_release);
      });
  });

  EXPECT_EQ(done.load(), kTasks);
  EXPECT_TRUE(saw_quarantine.load());
  EXPECT_EQ(rt.worker_health(0), WorkerHealth::kHealthy);  // readmitted
  EXPECT_EQ(rt.watchdog_stalls(), 0u);

  const HealthStats hs = rt.health_stats();
  EXPECT_GE(hs.suspects, 1u);
  EXPECT_GE(hs.quarantines, 1u);
  EXPECT_GE(hs.quarantines_in_task, 1u);
  EXPECT_GE(hs.readmissions, 1u);
  EXPECT_GE(hs.tasks_reclaimed, 1u);

  const Counters total = rt.profiler().total_counters();
  EXPECT_EQ(total.ntasks_created, total.ntasks_executed);
  EXPECT_GE(total.nquarantined, 1u);
  EXPECT_GE(total.nreadmitted, 1u);
  EXPECT_GE(total.nreclaimed, 1u);

  // The runtime stays fully usable after a quarantine episode.
  std::atomic<int> again{0};
  rt.run([&](TaskContext& ctx) {
    for (int i = 0; i < 100; ++i)
      ctx.spawn([&](TaskContext&) { again.fetch_add(1); });
    ctx.taskwait();
  });
  EXPECT_EQ(again.load(), 100);
}

TEST(SelfHealing, DetectionOnlyModeSuspectsButNeverQuarantines) {
  // hb=<ms> without quarantine=on: the monitor classifies (suspect
  // transitions are published and counted) but takes no recovery action.
  Config cfg;
  cfg.num_threads = 2;
  cfg.heartbeat_ms = 5;
  cfg.quarantine = false;
  const auto rt_h = RuntimeRegistry::make_xtask(cfg);
  Runtime& rt = *rt_h;
  rt.run([&](TaskContext& ctx) {
    ctx.spawn([](TaskContext&) {
      // Long silent task: several heartbeat windows.
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
    });
    ctx.taskwait();
  });
  const HealthStats hs = rt.health_stats();
  EXPECT_GE(hs.suspects, 1u);
  EXPECT_EQ(hs.quarantines, 0u);
  EXPECT_EQ(hs.readmissions, 0u);
  EXPECT_EQ(hs.tasks_reclaimed, 0u);
  EXPECT_EQ(rt.profiler().total_counters().nquarantined, 0u);
}

TEST(SelfHealing, DisabledSubsystemStaysAllZero) {
  Config cfg;
  cfg.num_threads = 2;
  const auto rt_h = RuntimeRegistry::make_xtask(cfg);
  Runtime& rt = *rt_h;
  std::atomic<int> ran{0};
  rt.run([&](TaskContext& ctx) {
    for (int i = 0; i < 64; ++i)
      ctx.spawn([&](TaskContext&) { ran.fetch_add(1); });
    ctx.taskwait();
  });
  EXPECT_EQ(ran.load(), 64);
  const HealthStats hs = rt.health_stats();
  EXPECT_EQ(hs.suspects, 0u);
  EXPECT_EQ(hs.quarantines, 0u);
  EXPECT_EQ(hs.readmissions, 0u);
  EXPECT_EQ(rt.worker_health(0), WorkerHealth::kHealthy);
}

TEST(SelfHealing, QuarantineWithoutHeartbeatIsRejected) {
  Config cfg;
  cfg.num_threads = 2;
  cfg.quarantine = true;  // heartbeat_ms stays 0
  EXPECT_THROW(RuntimeRegistry::make_xtask(cfg), std::exception);
}

}  // namespace
}  // namespace xtask
