// Lock-less messaging protocol tests (Alg. 1 & 2): cell packing, the
// request/round handshake, overwrite semantics, victim-selection
// distribution, and a two-thread stress run checking that every handled
// round is handled exactly once.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>

#include "core/steal_protocol.hpp"

namespace xtask {
namespace {

TEST(StealCells, PackUnpackRoundTrip) {
  for (int tid : {0, 1, 24, 191, steal::kMaxWorkerId}) {
    for (std::uint64_t round :
         {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{123456789},
          steal::kRoundMask}) {
      const std::uint64_t req = steal::pack(tid, round);
      EXPECT_EQ(steal::thief_of(req), tid);
      EXPECT_EQ(steal::round_of(req), round);
    }
  }
}

TEST(StealCells, RoundStartsAtOne) {
  StealCells c;
  EXPECT_EQ(c.round.load(), 1u);
  EXPECT_EQ(c.poll_request(), -1);  // request 0 carries round 0 != 1
}

TEST(StealCells, RequestHandshake) {
  StealCells c;
  // Thief 5 registers.
  EXPECT_TRUE(c.try_request(5));
  // A second thief cannot register while the first is pending.
  EXPECT_FALSE(c.try_request(7));
  // Victim sees thief 5, completes the round.
  EXPECT_EQ(c.poll_request(), 5);
  c.complete_round();
  // Old request is now stale.
  EXPECT_EQ(c.poll_request(), -1);
  // New requests are accepted again.
  EXPECT_TRUE(c.try_request(7));
  EXPECT_EQ(c.poll_request(), 7);
}

TEST(StealCells, StaleRequestNeverValid) {
  StealCells c;
  EXPECT_TRUE(c.try_request(3));
  c.complete_round();
  c.complete_round();  // round advanced twice; nothing pending
  EXPECT_EQ(c.poll_request(), -1);
}

TEST(StealCellsStress, EveryRoundHandledAtMostOnce) {
  // One victim completing rounds, one thief re-requesting: the number of
  // successful polls must equal the number of completed rounds, with no
  // double-handling of a round.
  StealCells c;
  constexpr int kRounds = 5'000;
  std::atomic<int> handled{0};
  std::atomic<bool> stop{false};
  std::thread victim([&] {
    int spins = 0;
    while (handled.load(std::memory_order_relaxed) < kRounds) {
      if (c.poll_request() >= 0) {
        handled.fetch_add(1, std::memory_order_relaxed);
        c.complete_round();
      } else if (++spins % 16 == 0) {
        std::this_thread::yield();  // oversubscribed-host liveness
      }
    }
    stop.store(true, std::memory_order_release);
  });
  std::thread thief([&] {
    int spins = 0;
    while (!stop.load(std::memory_order_acquire)) {
      if (!c.try_request(9) && ++spins % 16 == 0)
        std::this_thread::yield();
    }
  });
  victim.join();
  thief.join();
  EXPECT_EQ(handled.load(), kRounds);
  // Round counter advanced exactly once per handled request.
  EXPECT_EQ(c.round.load(), 1u + kRounds);
}

TEST(PickVictim, NeverPicksSelfAndRespectsRange) {
  const auto topo = Topology::synthetic(16, 4);
  XorShift rng(7);
  for (int self = 0; self < 16; ++self) {
    for (int i = 0; i < 200; ++i) {
      const int v = pick_victim(topo, self, 0.5, rng);
      ASSERT_GE(v, 0);
      ASSERT_LT(v, 16);
      ASSERT_NE(v, self);
    }
  }
}

TEST(PickVictim, FullyLocalStaysInZone) {
  const auto topo = Topology::synthetic(16, 4);
  XorShift rng(11);
  for (int i = 0; i < 500; ++i) {
    const int v = pick_victim(topo, 5, 1.0, rng);
    EXPECT_TRUE(topo.local(5, v)) << v;
  }
}

TEST(PickVictim, FullyRemoteLeavesZone) {
  const auto topo = Topology::synthetic(16, 4);
  XorShift rng(13);
  for (int i = 0; i < 500; ++i) {
    const int v = pick_victim(topo, 5, 0.0, rng);
    EXPECT_FALSE(topo.local(5, v)) << v;
  }
}

TEST(PickVictim, ProbabilityRoughlySplits) {
  const auto topo = Topology::synthetic(16, 4);
  XorShift rng(17);
  int local = 0;
  constexpr int kTrials = 20'000;
  for (int i = 0; i < kTrials; ++i)
    if (topo.local(5, pick_victim(topo, 5, 0.5, rng))) ++local;
  EXPECT_NEAR(static_cast<double>(local) / kTrials, 0.5, 0.03);
}

TEST(PickVictim, SingleZoneFallsBackToAnyOther) {
  const auto topo = Topology::synthetic(8, 1);
  XorShift rng(19);
  for (int i = 0; i < 100; ++i) {
    const int v = pick_victim(topo, 2, 0.0, rng);  // remote requested,
                                                   // none exists
    ASSERT_GE(v, 0);
    ASSERT_NE(v, 2);
  }
}

TEST(PickVictim, LoneWorkerReturnsMinusOne) {
  const auto topo = Topology::synthetic(1, 1);
  XorShift rng(23);
  EXPECT_EQ(pick_victim(topo, 0, 1.0, rng), -1);
}

TEST(PickVictim, UniformAcrossRemoteWorkers) {
  const auto topo = Topology::synthetic(8, 4);  // zones of 2
  XorShift rng(29);
  std::map<int, int> counts;
  constexpr int kTrials = 60'000;
  for (int i = 0; i < kTrials; ++i) counts[pick_victim(topo, 0, 0.0, rng)]++;
  // 6 remote workers (zones 1-3), each ~1/6.
  EXPECT_EQ(counts.size(), 6u);
  for (const auto& [w, n] : counts) {
    EXPECT_FALSE(topo.local(0, w));
    EXPECT_NEAR(static_cast<double>(n) / kTrials, 1.0 / 6, 0.02) << w;
  }
}

}  // namespace
}  // namespace xtask
