// Integration tests of the xtask runtime: recursive task graphs across
// every barrier × DLB × allocator combination, repeated-region reuse, and
// counter invariants.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "core/runtime.hpp"
#include "registry/registry.hpp"

namespace xtask {
namespace {

// Recursive fib with results written through a pointer; exercises spawn,
// taskwait, nesting, and queue overflow (immediate execution).
void fib_task(TaskContext& ctx, int n, long* out) {
  if (n < 2) {
    *out = n;
    return;
  }
  long a = 0;
  long b = 0;
  ctx.spawn([n, &a](TaskContext& c) { fib_task(c, n - 1, &a); });
  ctx.spawn([n, &b](TaskContext& c) { fib_task(c, n - 2, &b); });
  ctx.taskwait();
  *out = a + b;
}

long fib_serial(int n) {
  return n < 2 ? n : fib_serial(n - 1) + fib_serial(n - 2);
}

struct ParamCase {
  const char* name;
  BarrierKind barrier;
  DlbKind dlb;
  AllocatorMode alloc;
};

class RuntimeFib : public ::testing::TestWithParam<ParamCase> {};

TEST_P(RuntimeFib, Fib16FourThreads) {
  const ParamCase& p = GetParam();
  Config cfg;
  cfg.num_threads = 4;
  cfg.numa_zones = 2;
  cfg.barrier = p.barrier;
  cfg.dlb = p.dlb;
  cfg.allocator = p.alloc;
  cfg.queue_capacity = 64;  // small queues force the overflow path
  const auto rt_h = RuntimeRegistry::make_xtask(cfg);
  Runtime& rt = *rt_h;
  long result = -1;
  rt.run([&](TaskContext& ctx) { fib_task(ctx, 16, &result); });
  EXPECT_EQ(result, fib_serial(16));

  const Counters c = rt.profiler().total_counters();
  EXPECT_EQ(c.ntasks_created, c.ntasks_executed);
  EXPECT_EQ(c.ntasks_self + c.ntasks_local + c.ntasks_remote,
            c.ntasks_executed);
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, RuntimeFib,
    ::testing::Values(
        ParamCase{"central_slb_malloc", BarrierKind::kCentral, DlbKind::kNone,
                  AllocatorMode::kMalloc},
        ParamCase{"central_slb_pool", BarrierKind::kCentral, DlbKind::kNone,
                  AllocatorMode::kMultiLevel},
        ParamCase{"tree_slb_malloc", BarrierKind::kTree, DlbKind::kNone,
                  AllocatorMode::kMalloc},
        ParamCase{"tree_slb_pool", BarrierKind::kTree, DlbKind::kNone,
                  AllocatorMode::kMultiLevel},
        ParamCase{"tree_narp", BarrierKind::kTree, DlbKind::kRedirectPush,
                  AllocatorMode::kMultiLevel},
        ParamCase{"tree_naws", BarrierKind::kTree, DlbKind::kWorkSteal,
                  AllocatorMode::kMultiLevel},
        ParamCase{"central_narp", BarrierKind::kCentral,
                  DlbKind::kRedirectPush, AllocatorMode::kMalloc},
        ParamCase{"central_naws", BarrierKind::kCentral, DlbKind::kWorkSteal,
                  AllocatorMode::kMalloc}),
    [](const ::testing::TestParamInfo<ParamCase>& info) {
      return info.param.name;
    });

TEST(Runtime, SingleThreadRuns) {
  Config cfg;
  cfg.num_threads = 1;
  const auto rt_h = RuntimeRegistry::make_xtask(cfg);
  Runtime& rt = *rt_h;
  long result = -1;
  rt.run([&](TaskContext& ctx) { fib_task(ctx, 12, &result); });
  EXPECT_EQ(result, fib_serial(12));
}

TEST(Runtime, RepeatedRegionsReuseTeam) {
  Config cfg;
  cfg.num_threads = 4;
  cfg.barrier = BarrierKind::kTree;
  const auto rt_h = RuntimeRegistry::make_xtask(cfg);
  Runtime& rt = *rt_h;
  for (int i = 0; i < 5; ++i) {
    long result = -1;
    rt.run([&](TaskContext& ctx) { fib_task(ctx, 12, &result); });
    ASSERT_EQ(result, fib_serial(12)) << "region " << i;
  }
}

TEST(Runtime, EmptyRegionCompletes) {
  Config cfg;
  cfg.num_threads = 4;
  cfg.barrier = BarrierKind::kTree;
  const auto rt_h = RuntimeRegistry::make_xtask(cfg);
  Runtime& rt = *rt_h;
  int ran = 0;
  rt.run([&](TaskContext&) { ++ran; });
  EXPECT_EQ(ran, 1);
}

TEST(Runtime, WideFlatSpawn) {
  // One producer, many leaf tasks: stresses round-robin dispatch and the
  // barrier with no nesting at all.
  Config cfg;
  cfg.num_threads = 4;
  cfg.barrier = BarrierKind::kTree;
  const auto rt_h = RuntimeRegistry::make_xtask(cfg);
  Runtime& rt = *rt_h;
  constexpr int kTasks = 10'000;
  std::atomic<int> done{0};
  rt.run([&](TaskContext& ctx) {
    for (int i = 0; i < kTasks; ++i)
      ctx.spawn([&](TaskContext&) {
        done.fetch_add(1, std::memory_order_relaxed);
      });
    ctx.taskwait();
  });
  EXPECT_EQ(done.load(), kTasks);
}

TEST(Runtime, DeepChainCompletes) {
  // Serial dependency chain via nested spawn+taskwait: worst case for the
  // barrier (constant single in-flight task).
  Config cfg;
  cfg.num_threads = 4;
  cfg.barrier = BarrierKind::kTree;
  const auto rt_h = RuntimeRegistry::make_xtask(cfg);
  Runtime& rt = *rt_h;
  std::atomic<int> depth{0};
  struct Chain {
    static void step(TaskContext& ctx, int remaining, std::atomic<int>* d) {
      d->fetch_add(1, std::memory_order_relaxed);
      if (remaining == 0) return;
      ctx.spawn(
          [remaining, d](TaskContext& c) { step(c, remaining - 1, d); });
      ctx.taskwait();
    }
  };
  rt.run([&](TaskContext& ctx) { Chain::step(ctx, 300, &depth); });
  EXPECT_EQ(depth.load(), 301);
}

TEST(Runtime, DlbCountersConsistent) {
  Config cfg;
  cfg.num_threads = 4;
  cfg.numa_zones = 2;
  cfg.barrier = BarrierKind::kTree;
  cfg.dlb = DlbKind::kWorkSteal;
  cfg.dlb_cfg.n_victim = 2;
  cfg.dlb_cfg.n_steal = 4;
  cfg.dlb_cfg.t_interval = 100;
  const auto rt_h = RuntimeRegistry::make_xtask(cfg);
  Runtime& rt = *rt_h;
  long result = -1;
  rt.run([&](TaskContext& ctx) { fib_task(ctx, 18, &result); });
  EXPECT_EQ(result, fib_serial(18));
  const Counters c = rt.profiler().total_counters();
  // Every handled request is one of: produced a steal, found the source
  // empty, or hit a full target.
  EXPECT_LE(c.nreq_has_steal, c.nreq_handled);
  EXPECT_EQ(c.ntasks_created, c.ntasks_executed);
}

}  // namespace
}  // namespace xtask
