// Simulator tests: fiber mechanics, virtual-time invariants, determinism,
// task conservation across policies, and the qualitative orderings the
// cost model must reproduce (GOMP collapse, tree-barrier advantage, NUMA
// inflation).
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "sim/engine.hpp"
#include "sim/workloads.hpp"
#include "trace/format.hpp"

namespace xtask::sim {
namespace {

SimConfig cfg_with(SimPolicy p, int cores = 16, int zones = 4) {
  SimConfig cfg;
  cfg.machine.topo = Topology::synthetic(cores, zones);
  cfg.policy = p;
  return cfg;
}

TEST(SimEngine, SingleTaskRuns) {
  SimEngine eng(cfg_with(SimPolicy::kXGompTB, 4, 2));
  int ran = 0;
  auto res = eng.run([&](SimContext& ctx) {
    ctx.compute(1000);
    ++ran;
  });
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(res.tasks, 1u);
  EXPECT_GE(res.makespan, 1000u);
}

TEST(SimEngine, SpawnAndTaskwaitCompleteAllTasks) {
  for (SimPolicy p : {SimPolicy::kGomp, SimPolicy::kLomp, SimPolicy::kXlomp,
                      SimPolicy::kXGomp, SimPolicy::kXGompTB}) {
    SimEngine eng(cfg_with(p, 8, 2));
    int leaves = 0;
    auto res = eng.run([&](SimContext& ctx) {
      for (int i = 0; i < 200; ++i)
        ctx.spawn([&](SimContext& c) {
          c.compute(500);
          ++leaves;
        });
      ctx.taskwait();
    });
    EXPECT_EQ(leaves, 200) << sim_policy_name(p);
    EXPECT_EQ(res.tasks, 201u) << sim_policy_name(p);
    EXPECT_EQ(res.totals.ntasks_created, res.totals.ntasks_executed)
        << sim_policy_name(p);
  }
}

TEST(SimEngine, DeterministicAcrossRuns) {
  auto wl = wl_fib(16);
  SimConfig cfg = cfg_with(SimPolicy::kXGompTB, 16, 4);
  const auto r1 = simulate(cfg, wl);
  const auto r2 = simulate(cfg, wl);
  EXPECT_EQ(r1.makespan, r2.makespan);
  EXPECT_EQ(r1.tasks, r2.tasks);
  EXPECT_EQ(r1.totals.ntasks_self, r2.totals.ntasks_self);
}

TEST(SimEngine, TraceRecordingIsBitIdenticalAcrossRuns) {
  // The fiber scheduler resumes the smallest virtual clock first, so for a
  // fixed seed the event interleaving — and therefore the recorded trace —
  // is fully deterministic. Serialize the trace of 10 fresh engines and
  // demand byte equality, which is what lets a trace serve as a regression
  // artifact (tests/golden) rather than a flaky snapshot.
  SimConfig cfg = cfg_with(SimPolicy::kXGompTB, 16, 4);
  cfg.dlb = SimDlb::kWorkSteal;
  cfg.record_trace = true;
  std::string first;
  for (int run = 0; run < 10; ++run) {
    SimEngine eng(cfg);
    const auto wl = wl_fib(14);
    const auto res = eng.run(wl.root);
    const trace::Trace& tr = eng.trace();
    ASSERT_NO_THROW(tr.validate()) << "run " << run;
    ASSERT_EQ(tr.spawn_count(), res.tasks) << "run " << run;
    ASSERT_EQ(tr.exec_count(), res.tasks) << "run " << run;
    std::ostringstream os;
    trace::write_binary(tr, os);
    if (run == 0) {
      first = os.str();
      ASSERT_FALSE(first.empty());
    } else {
      ASSERT_EQ(os.str(), first) << "trace diverged on run " << run;
    }
  }
}

TEST(SimEngine, TraceOffRecordsNothing) {
  SimEngine eng(cfg_with(SimPolicy::kXGompTB, 8, 2));
  const auto wl = wl_fib(10);
  eng.run(wl.root);
  EXPECT_TRUE(eng.trace().records.empty());
}

TEST(SimEngine, RecursiveFibTaskCountIsExact) {
  // fib task graph: T(n) = T(n-1) + T(n-2) + 1, T(<2) = 1, plus the root.
  SimEngine eng(cfg_with(SimPolicy::kXGompTB, 8, 2));
  auto res = eng.run([](SimContext& ctx) {
    // local copy of the generator to count tasks exactly
    wl_fib(12).root(ctx);
  });
  std::uint64_t expect = 1;  // root
  // count fib nodes
  struct F {
    static std::uint64_t nodes(int n) {
      return n < 2 ? 1 : 1 + nodes(n - 1) + nodes(n - 2);
    }
  };
  expect += F::nodes(12) - 1;  // root body *is* the fib(12) node
  EXPECT_EQ(res.tasks, expect);
}

TEST(SimEngine, ParallelismShortensMakespan) {
  auto wl = wl_irregular(2000, 20'000, 0.0);
  auto c1 = cfg_with(SimPolicy::kXGompTB, 1, 1);
  auto c16 = cfg_with(SimPolicy::kXGompTB, 16, 4);
  const auto r1 = simulate(c1, wl);
  const auto r16 = simulate(c16, wl);
  EXPECT_LT(r16.makespan * 6, r1.makespan)
      << "16 cores should be >6x faster than 1";
}

TEST(SimEngine, GompCollapsesOnFineGrainedTasks) {
  // The global-lock policy must be at least an order of magnitude slower
  // than XGOMPTB on a fib-style fine-grained graph (the paper's headline).
  auto wl = wl_fib(15);
  const auto gomp = simulate(cfg_with(SimPolicy::kGomp, 32, 4), wl);
  const auto tb = simulate(cfg_with(SimPolicy::kXGompTB, 32, 4), wl);
  EXPECT_GT(gomp.makespan, 10 * tb.makespan);
}

TEST(SimEngine, TreeBarrierBeatsAtomicCountOnFineTasks) {
  auto wl = wl_fib(16);
  const auto xgomp = simulate(cfg_with(SimPolicy::kXGomp, 32, 4), wl);
  const auto tb = simulate(cfg_with(SimPolicy::kXGompTB, 32, 4), wl);
  EXPECT_GT(xgomp.makespan, tb.makespan);
}

TEST(SimEngine, RemoteExecutionInflatesMemoryBoundWork) {
  // Two-core run where worker 1 executes worker 0's task: with high mem
  // intensity and different zones the makespan must inflate.
  SimConfig near = cfg_with(SimPolicy::kXGompTB, 2, 1);
  SimConfig far = cfg_with(SimPolicy::kXGompTB, 2, 2);
  near.mem_intensity = 1.0;
  far.mem_intensity = 1.0;
  auto body = [](SimContext& ctx) {
    for (int i = 0; i < 64; ++i)
      ctx.spawn([](SimContext& c) { c.compute(100'000); });
    ctx.taskwait();
  };
  SimEngine e1(near);
  SimEngine e2(far);
  const auto r_near = e1.run(body);
  const auto r_far = e2.run(body);
  EXPECT_GT(r_far.makespan, r_near.makespan);
}

TEST(SimEngine, WorkStealMovesTasks) {
  SimConfig cfg = cfg_with(SimPolicy::kXGompTB, 16, 4);
  cfg.dlb = SimDlb::kWorkSteal;
  cfg.dlb_cfg.n_victim = 4;
  cfg.dlb_cfg.n_steal = 8;
  cfg.dlb_cfg.t_interval = 2'000;
  const auto res = simulate(cfg, wl_irregular(3000, 50'000, 0.2));
  EXPECT_GT(res.totals.nreq_sent, 0u);
  EXPECT_GT(res.totals.nsteal_local + res.totals.nsteal_remote, 0u);
  EXPECT_EQ(res.totals.ntasks_created, res.totals.ntasks_executed);
}

TEST(SimEngine, RedirectPushMovesTasks) {
  SimConfig cfg = cfg_with(SimPolicy::kXGompTB, 16, 4);
  cfg.dlb = SimDlb::kRedirectPush;
  cfg.dlb_cfg.n_victim = 4;
  cfg.dlb_cfg.n_steal = 8;
  cfg.dlb_cfg.t_interval = 2'000;
  const auto res = simulate(cfg, wl_irregular(3000, 50'000, 0.2));
  EXPECT_GT(res.totals.nreq_handled, 0u);
  EXPECT_EQ(res.totals.ntasks_created, res.totals.ntasks_executed);
}

TEST(SimEngine, QueueWsCompletesButStealsRarely) {
  // The rejected §IV-D design must still be *correct* (all tasks run);
  // its defining property is a collapsed request funnel relative to the
  // worker-granularity protocol on the same workload.
  const auto wl = wl_irregular(3000, 50'000, 0.2);
  SimConfig qcfg = cfg_with(SimPolicy::kXGompTB, 16, 4);
  qcfg.dlb = SimDlb::kQueueWorkSteal;
  qcfg.dlb_cfg = {4, 8, 2'000, 1.0};
  const auto qres = simulate(qcfg, wl);
  EXPECT_EQ(qres.totals.ntasks_created, qres.totals.ntasks_executed);

  SimConfig wcfg = qcfg;
  wcfg.dlb = SimDlb::kWorkSteal;
  const auto wres = simulate(wcfg, wl);
  ASSERT_GT(qres.totals.nreq_sent, 0u);
  ASSERT_GT(wres.totals.nreq_sent, 0u);
  const double q_yield =
      static_cast<double>(qres.totals.nreq_has_steal) /
      static_cast<double>(qres.totals.nreq_sent);
  const double w_yield =
      static_cast<double>(wres.totals.nreq_has_steal) /
      static_cast<double>(wres.totals.nreq_sent);
  EXPECT_LT(q_yield, w_yield);
}

TEST(SimWorkloads, SuiteRunsAtSweepScale) {
  for (const auto& wl : bots_suite(Scale::kSweep)) {
    SimConfig cfg = cfg_with(SimPolicy::kXGompTB, 24, 4);
    const auto res = simulate(cfg, wl);
    EXPECT_GT(res.tasks, 10u) << wl.name;
    EXPECT_EQ(res.totals.ntasks_created, res.totals.ntasks_executed)
        << wl.name;
    EXPECT_GT(res.makespan, 0u) << wl.name;
  }
}

TEST(SimWorkloads, PospThroughputPeaksAtModerateBatch) {
  // Fig. 8 shape: tiny batches are runtime-bound, huge batches imbalance.
  const std::uint64_t puzzles = 1 << 16;
  double best_small = 0;
  double best_mid = 0;
  for (std::uint64_t batch : {std::uint64_t{1}, std::uint64_t{1024}}) {
    SimConfig cfg = cfg_with(SimPolicy::kXGompTB, 48, 8);
    const auto res = simulate(cfg, wl_posp(puzzles, batch));
    const double mhs = static_cast<double>(puzzles) /
                       static_cast<double>(res.makespan);
    if (batch == 1)
      best_small = mhs;
    else
      best_mid = mhs;
  }
  EXPECT_GT(best_mid, best_small);
}

}  // namespace
}  // namespace xtask::sim
