// Fork-based crash chaos for the shared-memory transport: real external
// client processes (the ipc_client example, fork+exec'd so the
// multithreaded gtest parent never runs library code after fork) are
// SIGKILLed mid-burst, exit without publishing a claimed ring ticket,
// or stop heartbeating while holding a session. After every scenario the
// server must have expired the dead leases, reclaimed the ring slots,
// and kept the accounting invariant EXACT:
//
//   submitted == executed + shed + rejected + orphaned
//
// with no hangs (every wait here carries a deadline and FAILs instead of
// blocking forever). CI runs this suite under ASAN with
// `--repeat until-fail:3`, plus a kill-loop soak sized by the
// XTASK_IPC_SOAK_SECONDS env var (default: a short smoke).
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "registry/registry.hpp"
#include "serve/ipc/server.hpp"

#ifndef XTASK_IPC_CLIENT_BIN
#error "XTASK_IPC_CLIENT_BIN must point at the ipc_client example binary"
#endif

namespace xtask::ipc {
namespace {

using namespace std::chrono_literals;
using serve::ServeConfig;
using serve::TenantStats;

std::uint64_t busy_handler(std::uint32_t op, std::uint64_t arg,
                           std::uint64_t) {
  return arg * 2 + op;
}

std::string seg_name(const char* tag) {
  return std::string(tag) + "_" + std::to_string(::getpid());
}

ServeConfig serve_cfg() {
  ServeConfig cfg;
  cfg.runtime_spec = "xtask:threads=2,dlb=naws";
  cfg.tenants = TenantSpec::parse_list(
      "alpha:rate=1000000,quota=100000,burst=100000;"
      "beta:rate=1000000,quota=100000,burst=100000");
  return cfg;
}

// fork+exec one ipc_client child. Returns the pid; -1 on failure. The
// parent is multithreaded, so the child must do nothing between fork and
// exec beyond async-signal-safe calls.
pid_t spawn_client(const std::string& spec, const char* mode, int tenant,
                   std::uint64_t count, std::uint64_t seed) {
  const std::string tenant_s = std::to_string(tenant);
  const std::string count_s = std::to_string(count);
  const std::string seed_s = std::to_string(seed);
  const char* argv[] = {XTASK_IPC_CLIENT_BIN,
                        "--spec",   spec.c_str(),
                        "--mode",   mode,
                        "--tenant", tenant_s.c_str(),
                        "--count",  count_s.c_str(),
                        "--seed",   seed_s.c_str(),
                        nullptr};
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::execv(XTASK_IPC_CLIENT_BIN, const_cast<char* const*>(argv));
    ::_exit(127);  // exec failed
  }
  return pid;
}

// waitpid with a deadline: a hung child is a test FAILURE, not a hang.
// Returns the exit status (or -1 on timeout, after SIGKILLing the child).
int wait_child(pid_t pid, std::uint64_t timeout_ns) {
  const std::uint64_t deadline = now_ns() + timeout_ns;
  int status = 0;
  for (;;) {
    const pid_t r = ::waitpid(pid, &status, WNOHANG);
    if (r == pid) return status;
    if (r < 0) return -1;
    if (now_ns() >= deadline) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, &status, 0);
      return -1;
    }
    std::this_thread::sleep_for(1ms);
  }
}

void expect_closed(const TenantStats& t) {
  EXPECT_EQ(t.submitted, t.executed + t.shed + t.rejected + t.orphaned)
      << "submitted=" << t.submitted << " executed=" << t.executed
      << " shed=" << t.shed << " rejected=" << t.rejected
      << " orphaned=" << t.orphaned;
  EXPECT_EQ(t.in_flight, 0u);
}

// Wait (bounded) until the server has no live sessions.
::testing::AssertionResult sessions_drain(IpcServer& server,
                                          std::uint64_t timeout_ns) {
  const std::uint64_t deadline = now_ns() + timeout_ns;
  while (now_ns() < deadline) {
    if (server.live_sessions() == 0) return ::testing::AssertionSuccess();
    std::this_thread::sleep_for(2ms);
  }
  return ::testing::AssertionFailure()
         << server.live_sessions() << " sessions still live after "
         << timeout_ns / 1'000'000 << " ms";
}

TEST(IpcCrash, WellBehavedExternalClientsComplete) {
  // Sanity anchor before the chaos: 3 real processes, everyone finishes,
  // everything closes gracefully.
  const TransportSpec tspec = TransportSpec::parse(
      "ipc=shm,seg=" + seg_name("ok") + ",sessions=4,ring=128");
  IpcServer server(serve_cfg(), tspec, &busy_handler);

  std::vector<pid_t> kids;
  for (int k = 0; k < 3; ++k)
    kids.push_back(
        spawn_client(tspec.describe(), "normal", k % 2, 200, 11 + k));
  for (const pid_t pid : kids) {
    const int st = wait_child(pid, 60'000'000'000ull);
    ASSERT_NE(st, -1) << "client hung";
    ASSERT_TRUE(WIFEXITED(st));
    EXPECT_EQ(WEXITSTATUS(st), 0);
  }
  EXPECT_TRUE(sessions_drain(server, 5'000'000'000ull));
  server.stop();
  const TenantStats t = server.service().totals();
  expect_closed(t);
  EXPECT_EQ(t.executed, 600u);
  EXPECT_EQ(server.stats().sessions_expired, 0u);
  EXPECT_EQ(server.stats().slots_torn, 0u);
}

TEST(IpcCrash, SigkillMidFloodExpiresLeaseAndReclaims) {
  // Clients flooding the ring are SIGKILLed at arbitrary points — the
  // canonical mid-submit death. Leases expire, slots are reclaimed
  // (published ones counted orphaned, unpublished claims torn), and the
  // accounting closes exactly.
  const TransportSpec tspec = TransportSpec::parse(
      "ipc=shm,seg=" + seg_name("kill") + ",sessions=4,ring=128,lease_ms=40");
  IpcServer server(serve_cfg(), tspec, &busy_handler);

  constexpr int kVictims = 3;
  std::vector<pid_t> kids;
  for (int k = 0; k < kVictims; ++k)
    kids.push_back(
        spawn_client(tspec.describe(), "flood", k % 2, 0, 101 + k));
  // Let them connect and flood, then kill at staggered instants.
  std::this_thread::sleep_for(50ms);
  for (int k = 0; k < kVictims; ++k) {
    ::kill(kids[k], SIGKILL);
    std::this_thread::sleep_for(std::chrono::milliseconds(3 + 7 * k));
  }
  for (const pid_t pid : kids) {
    const int st = wait_child(pid, 10'000'000'000ull);
    ASSERT_NE(st, -1);
    ASSERT_TRUE(WIFSIGNALED(st));
    EXPECT_EQ(WTERMSIG(st), SIGKILL);
  }

  // Wait on the expiry count, not live_sessions()==0 (trivially true
  // before the pump registers the sessions).
  const std::uint64_t deadline = now_ns() + 10'000'000'000ull;
  while (server.stats().sessions_expired <
             static_cast<std::uint64_t>(kVictims) &&
         now_ns() < deadline)
    std::this_thread::sleep_for(2ms);
  EXPECT_TRUE(sessions_drain(server, 5'000'000'000ull))
      << "dead floods must be lease-expired and reclaimed";
  server.stop();
  const TenantStats t = server.service().totals();
  expect_closed(t);
  EXPECT_GT(t.executed, 0u) << "some flood requests must have run";
  const TransportStats ts = server.stats();
  EXPECT_GE(ts.sessions_expired, static_cast<std::uint64_t>(kVictims));
  EXPECT_EQ(ts.orphaned, t.orphaned);
}

TEST(IpcCrash, TornExitLeavesDetectableSlotNeverExecuted) {
  // The client claims a ring ticket and dies without publishing: the
  // server must classify that slot torn — never execute it — and still
  // deliver the requests published before the death.
  const TransportSpec tspec = TransportSpec::parse(
      "ipc=shm,seg=" + seg_name("torn") + ",sessions=2,ring=64,lease_ms=40");
  IpcServer server(serve_cfg(), tspec, &busy_handler);

  const pid_t pid = spawn_client(tspec.describe(), "torn", 0, 0, 5);
  const int st = wait_child(pid, 10'000'000'000ull);
  ASSERT_NE(st, -1);
  ASSERT_TRUE(WIFEXITED(st));
  EXPECT_EQ(WEXITSTATUS(st), 0);

  // Wait on the expiry, not live_sessions()==0 (trivially true before
  // the pump registers the session).
  const std::uint64_t deadline = now_ns() + 10'000'000'000ull;
  while (server.stats().sessions_expired == 0 && now_ns() < deadline)
    std::this_thread::sleep_for(2ms);
  EXPECT_TRUE(sessions_drain(server, 5'000'000'000ull));
  server.stop();
  const TenantStats t = server.service().totals();
  expect_closed(t);
  const TransportStats ts = server.stats();
  EXPECT_GE(ts.slots_torn, 1u) << "the abandoned claim must count torn";
  // The 4 published requests either executed (drained before expiry) or
  // were reclaimed as orphans — but they are all accounted.
  EXPECT_EQ(t.executed + t.orphaned, 4u);
  EXPECT_EQ(ts.sessions_expired, 1u);
}

TEST(IpcCrash, NoHeartbeatAndHeldSessionsBothExpire) {
  // Two lease-death shapes at once: a client that never heartbeats and
  // exits silently, and a wedged client that holds its session (alive,
  // lease armed once, heartbeat stopped) until SIGKILL.
  const TransportSpec tspec = TransportSpec::parse(
      "ipc=shm,seg=" + seg_name("lease") + ",sessions=4,ring=64,lease_ms=40");
  IpcServer server(serve_cfg(), tspec, &busy_handler);

  const pid_t quiet = spawn_client(tspec.describe(), "no-heartbeat", 0,
                                   /*count=*/8, 21);
  const pid_t held = spawn_client(tspec.describe(), "hold", 1,
                                  /*count=*/8, 22);
  const int st = wait_child(quiet, 10'000'000'000ull);
  ASSERT_NE(st, -1);
  ASSERT_TRUE(WIFEXITED(st) && WEXITSTATUS(st) == 0);

  // The held client sleeps forever; its lease must expire under it even
  // though the process is alive. Wait on the expiry count itself —
  // live_sessions()==0 is trivially true before the pump has registered
  // either session — then kill the held process.
  const std::uint64_t deadline = now_ns() + 10'000'000'000ull;
  while (server.stats().sessions_expired < 2 && now_ns() < deadline)
    std::this_thread::sleep_for(2ms);
  EXPECT_EQ(server.stats().sessions_expired, 2u)
      << "no-heartbeat exit and expired-lease holder must both expire";
  EXPECT_EQ(server.live_sessions(), 0u);
  ::kill(held, SIGKILL);
  wait_child(held, 10'000'000'000ull);

  server.stop();
  const TenantStats t = server.service().totals();
  expect_closed(t);
  EXPECT_EQ(server.stats().sessions_expired, 2u);
}

TEST(IpcCrash, KillLoopSoak) {
  // Continuous churn: keep a population of flood/normal/torn clients and
  // SIGKILL a random one every few milliseconds, for
  // XTASK_IPC_SOAK_SECONDS (default 2 — CI sets 30). The server must
  // never hang, never execute a torn slot, reclaim every dead session,
  // and close the accounting at the end.
  std::uint64_t soak_s = 2;
  if (const char* env = std::getenv("XTASK_IPC_SOAK_SECONDS"))
    soak_s = std::strtoull(env, nullptr, 10);
  const TransportSpec tspec = TransportSpec::parse(
      "ipc=shm,seg=" + seg_name("soak") + ",sessions=6,ring=128,lease_ms=40");
  IpcServer server(serve_cfg(), tspec, &busy_handler);

  const char* kModes[] = {"flood", "normal", "torn", "no-heartbeat"};
  std::uint64_t rng = 0x50A4'50A4'50A4'50A4ull;
  std::uint64_t spawned = 0, killed = 0;
  std::vector<pid_t> kids;
  const std::uint64_t deadline = now_ns() + soak_s * 1'000'000'000ull;
  while (now_ns() < deadline) {
    // Keep ~3 children alive.
    while (kids.size() < 3) {
      rng = rng * 6364136223846793005ull + 1442695040888963407ull;
      const char* mode = kModes[(rng >> 33) % 4];
      const pid_t pid = spawn_client(tspec.describe(), mode,
                                     static_cast<int>((rng >> 17) % 2),
                                     /*count=*/64, rng >> 48);
      ASSERT_GT(pid, 0);
      kids.push_back(pid);
      ++spawned;
    }
    std::this_thread::sleep_for(5ms);
    // Kill one at random; reap any that finished on their own.
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    const std::size_t victim = (rng >> 29) % kids.size();
    ::kill(kids[victim], SIGKILL);
    ++killed;
    for (std::size_t i = 0; i < kids.size();) {
      int st = 0;
      const pid_t r = ::waitpid(kids[i], &st, WNOHANG);
      if (r == kids[i]) {
        kids.erase(kids.begin() + i);
      } else {
        ++i;
      }
    }
  }
  for (const pid_t pid : kids) {
    ::kill(pid, SIGKILL);
    wait_child(pid, 10'000'000'000ull);
  }

  EXPECT_TRUE(sessions_drain(server, 10'000'000'000ull))
      << "soak left unreclaimed sessions";
  server.stop();
  const TenantStats t = server.service().totals();
  expect_closed(t);
  const TransportStats ts = server.stats();
  EXPECT_GT(spawned, 0u);
  EXPECT_GT(killed, 0u);
  EXPECT_GT(t.submitted, 0u);
  ::testing::Test::RecordProperty("soak_spawned",
                                  static_cast<int>(spawned));
  ::testing::Test::RecordProperty("soak_sessions_expired",
                                  static_cast<int>(ts.sessions_expired));
  ::testing::Test::RecordProperty("soak_slots_torn",
                                  static_cast<int>(ts.slots_torn));
}

}  // namespace
}  // namespace xtask::ipc
