// Concurrency stress for the lock-free shared descriptor pool: many
// threads hammer acquire/release through their PoolAllocator front-ends
// (bursts larger than the local cache, so every iteration crosses the
// shared level), while per-descriptor stamps written into the task payload
// prove that no descriptor is ever handed to two owners at once, lost, or
// scribbled on while pooled (the pool moves batches as dense pointer
// arrays and never writes a pooled descriptor's payload).
//
// The stamps are plain (non-atomic) writes on purpose: the pool's ring
// handoff must provide the release/acquire edge that makes exclusive
// ownership real, and a TSAN build of this test verifies exactly that.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "core/task.hpp"
#include "core/task_allocator.hpp"

namespace xtask {
namespace {

constexpr std::uint64_t kMagic = 0x7461736b706f6f6cull;  // "taskpool"
constexpr std::size_t kStampOffset = 0;  // pool must not touch any payload byte

struct Stamp {
  std::uint64_t magic;  // set once, must survive pool residency
  std::uint64_t owner;  // 0 when free; owner tag while held
  std::uint64_t trips;  // times this descriptor was handed out
};
static_assert(kStampOffset + sizeof(Stamp) <= Task::kPayloadBytes);

Stamp* stamp_of(Task* t) {
  return reinterpret_cast<Stamp*>(t->payload + kStampOffset);
}

/// Claim a freshly allocated descriptor for `tag`: first-touch initializes
/// the stamp, a recycled descriptor must come back unowned and with its
/// magic intact (the pool never writes a pooled descriptor's payload).
void claim(Task* t, std::uint64_t tag) {
  Stamp* s = stamp_of(t);
  if (s->magic != kMagic) {
    ::new (static_cast<void*>(s)) Stamp{kMagic, 0, 0};
  }
  ASSERT_EQ(s->magic, kMagic) << "payload corrupted while pooled";
  ASSERT_EQ(s->owner, 0u) << "descriptor handed out twice";
  s->owner = tag;
  ++s->trips;
}

void disclaim(Task* t, std::uint64_t tag) {
  Stamp* s = stamp_of(t);
  ASSERT_EQ(s->magic, kMagic);
  ASSERT_EQ(s->owner, tag) << "descriptor stolen while held";
  s->owner = 0;
}

TEST(PoolStress, EightThreadBurstChurnNoLossNoDoubleHandout) {
  constexpr int kThreads = 8;
  constexpr int kZones = 2;
  constexpr int kRounds = 200;
  // Bursts larger than the allocator's local cache force shared-pool
  // refills on the way up and spills on the way down, every round.
  constexpr std::size_t kBurst = 400;

  TaskAllocator::SharedPool pool(AllocatorMode::kMultiLevel, kZones);
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      TaskAllocator alloc(pool, tid % kZones);
      const std::uint64_t tag = static_cast<std::uint64_t>(tid) + 1;
      std::vector<Task*> held;
      held.reserve(kBurst);
      for (int round = 0; round < kRounds && !failed.load(); ++round) {
        for (std::size_t i = 0; i < kBurst; ++i) {
          Task* t = alloc.allocate();
          claim(t, tag);
          if (::testing::Test::HasFatalFailure()) {
            failed.store(true);
            break;
          }
          held.push_back(t);
        }
        // Stagger the drain so release order differs from acquire order
        // and batches re-chain in fresh permutations.
        while (!held.empty()) {
          Task* t = held.back();
          held.pop_back();
          disclaim(t, tag);
          if (::testing::Test::HasFatalFailure()) {
            failed.store(true);
            break;
          }
          alloc.release(t);
        }
      }
      for (Task* t : held) alloc.release(t);  // failure path cleanup
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_FALSE(failed.load());
  // Conservation: everything went back to the pool (or the system via
  // overflow); the destructors reclaim the rest — ASAN covers leaks.
  EXPECT_GT(pool.system_allocs(), 0u);
}

TEST(PoolStress, PayloadSurvivesSharedRoundTrip) {
  // Single-threaded determinism check of the same guarantee: a stamp in
  // the payload must survive release -> shared-pool residency -> reacquire
  // by a *different* allocator (so the descriptors provably crossed the
  // shared level, not just the local cache).
  TaskAllocator::SharedPool pool(AllocatorMode::kMultiLevel);
  constexpr std::size_t kCount = 600;  // > local cache: forces spills
  std::vector<Task*> tasks;
  {
    TaskAllocator producer(pool);
    for (std::size_t i = 0; i < kCount; ++i) {
      Task* t = producer.allocate();
      Stamp* s = stamp_of(t);
      ::new (static_cast<void*>(s)) Stamp{kMagic, i + 1, 0};
      tasks.push_back(t);
    }
    for (Task* t : tasks) producer.release(t);
    // producer's destructor flushes its local cache to the shared pool.
  }
  TaskAllocator consumer(pool);
  const std::uint64_t before = pool.system_allocs();
  std::size_t recycled = 0;
  std::vector<Task*> reacquired;  // hold everything so nothing recirculates
  reacquired.reserve(kCount);
  for (std::size_t i = 0; i < kCount; ++i) {
    Task* t = consumer.allocate();
    Stamp* s = stamp_of(t);
    if (s->magic == kMagic) {
      ++recycled;
      EXPECT_GE(s->owner, 1u);
      EXPECT_LE(s->owner, kCount);
      s->owner = 0;
    }
    reacquired.push_back(t);
  }
  for (Task* t : reacquired) consumer.release(t);
  // Everything the producer pooled was available for reuse without new
  // system allocations, payloads intact.
  EXPECT_EQ(pool.system_allocs(), before);
  EXPECT_EQ(recycled, kCount);
}

TEST(PoolStress, DirectBatchApiConcurrentAcquireRelease) {
  // Hammer SharedPool::acquire_batch/release_batch directly (the interface
  // the allocator spill paths and future bulk users sit on), checking the
  // batch cells never duplicate or drop a descriptor under contention.
  constexpr int kThreads = 8;
  constexpr int kRounds = 500;
  TaskAllocator::SharedPool pool(AllocatorMode::kMultiLevel, 4);

  // Seed the pool with descriptors from a scratch allocator.
  {
    TaskAllocator seeder(pool);
    std::vector<Task*> seed;
    for (int i = 0; i < 1024; ++i) {
      Task* t = seeder.allocate();
      ::new (static_cast<void*>(stamp_of(t))) Stamp{kMagic, 0, 0};
      seed.push_back(t);
    }
    for (Task* t : seed) seeder.release(t);
  }

  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      const std::uint64_t tag = 100 + static_cast<std::uint64_t>(tid);
      Task* batch[TaskAllocator::kBatch];
      for (int round = 0; round < kRounds && !failed.load(); ++round) {
        // Vary the ask so batches split and re-chain in the pool.
        const std::size_t want = 1 + static_cast<std::size_t>(
                                         (tid + round) %
                                         static_cast<int>(
                                             TaskAllocator::kBatch));
        const std::size_t got = pool.acquire_batch(batch, want, tid % 4);
        for (std::size_t i = 0; i < got; ++i) {
          claim(batch[i], tag);
          if (::testing::Test::HasFatalFailure()) failed.store(true);
        }
        if (failed.load()) {
          pool.release_batch(batch, got, tid % 4);
          return;
        }
        for (std::size_t i = 0; i < got; ++i) {
          disclaim(batch[i], tag);
          if (::testing::Test::HasFatalFailure()) failed.store(true);
        }
        pool.release_batch(batch, got, tid % 4);
        if (failed.load()) return;
      }
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_FALSE(failed.load());
}

}  // namespace
}  // namespace xtask
