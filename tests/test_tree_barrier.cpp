// Distributed tree barrier tests: single-worker release, quiescence
// detection with monotone counters, the double-pass rule (no premature
// release while counters still move), multi-generation reuse, and a
// threaded stress run with simulated task activity.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/tree_barrier.hpp"

namespace xtask {
namespace {

TEST(TreeBarrier, SingleWorkerReleasesWhenQuiescent) {
  TreeBarrier tb(1);
  // created != executed: never releases.
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(tb.poll(0, 5, 4, 1));
  // Balanced counters: two stable passes then release.
  bool released = false;
  for (int i = 0; i < 10 && !released; ++i) released = tb.poll(0, 5, 5, 1);
  EXPECT_TRUE(released);
}

TEST(TreeBarrier, RequiresTwoStablePasses) {
  // Root alone; counters change between polls — each change must reset
  // the stability requirement.
  TreeBarrier tb(1);
  EXPECT_FALSE(tb.poll(0, 1, 1, 1));  // pass with (1,1)
  EXPECT_FALSE(tb.poll(0, 2, 2, 1));  // counters moved: (2,2) != (1,1)
  EXPECT_FALSE(tb.poll(0, 3, 3, 1));  // moved again
  bool released = false;
  for (int i = 0; i < 5 && !released; ++i) released = tb.poll(0, 3, 3, 1);
  EXPECT_TRUE(released);
}

TEST(TreeBarrier, AllWorkersMustParticipate) {
  TreeBarrier tb(4);
  // Workers 0..2 poll; worker 3 never does: no release possible.
  bool released = false;
  for (int i = 0; i < 200; ++i) {
    released = tb.poll(0, 0, 0, 1) || released;
    released = tb.poll(1, 0, 0, 1) || released;
    released = tb.poll(2, 0, 0, 1) || released;
  }
  EXPECT_FALSE(released);
  // Worker 3 joins: release reaches everyone.
  std::vector<bool> done(4, false);
  for (int i = 0; i < 200 && !(done[0] && done[1] && done[2] && done[3]);
       ++i) {
    for (int w = 0; w < 4; ++w)
      if (tb.poll(w, 0, 0, 1)) done[static_cast<std::size_t>(w)] = true;
  }
  EXPECT_TRUE(done[0] && done[1] && done[2] && done[3]);
}

TEST(TreeBarrier, UnbalancedCountersBlockRelease) {
  TreeBarrier tb(2);
  bool released = false;
  for (int i = 0; i < 300; ++i) {
    released = tb.poll(0, 10, 9, 1) || released;  // one task in flight
    released = tb.poll(1, 0, 0, 1) || released;
  }
  EXPECT_FALSE(released);
}

TEST(TreeBarrier, CountersSplitAcrossWorkersStillBalance) {
  // Created on worker 0, executed on worker 1 — totals match, release.
  TreeBarrier tb(2);
  std::vector<bool> done(2, false);
  for (int i = 0; i < 300 && !(done[0] && done[1]); ++i) {
    if (tb.poll(0, 100, 0, 1)) done[0] = true;
    if (tb.poll(1, 0, 100, 1)) done[1] = true;
  }
  EXPECT_TRUE(done[0] && done[1]);
}

TEST(TreeBarrier, MultipleGenerations) {
  TreeBarrier tb(3);
  for (std::uint64_t gen = 1; gen <= 5; ++gen) {
    std::vector<bool> done(3, false);
    const std::uint64_t c = gen * 7;  // counters grow monotonically
    for (int i = 0; i < 500 && !(done[0] && done[1] && done[2]); ++i) {
      for (int w = 0; w < 3; ++w)
        if (tb.poll(w, c, c, gen)) done[static_cast<std::size_t>(w)] = true;
    }
    ASSERT_TRUE(done[0] && done[1] && done[2]) << "generation " << gen;
  }
}

TEST(TreeBarrier, LargeTeamReleases) {
  constexpr int kN = 64;
  TreeBarrier tb(kN);
  std::vector<bool> done(kN, false);
  int done_count = 0;
  for (int i = 0; i < 50'000 && done_count < kN; ++i) {
    for (int w = 0; w < kN; ++w) {
      if (!done[static_cast<std::size_t>(w)] && tb.poll(w, 3, 3, 1)) {
        done[static_cast<std::size_t>(w)] = true;
        ++done_count;
      }
    }
  }
  EXPECT_EQ(done_count, kN);
}

TEST(TreeBarrierStress, ThreadedWithLiveCountersNeverReleasesEarly) {
  // Workers "execute tasks" (bump executed up to created) while polling.
  // The barrier must release every worker, and only after all activity
  // has stopped (checked by asserting the final totals are balanced when
  // release is observed).
  constexpr int kN = 8;
  TreeBarrier tb(kN);
  std::vector<std::atomic<std::uint64_t>> created(kN);
  std::vector<std::atomic<std::uint64_t>> executed(kN);
  std::atomic<int> released_count{0};
  std::atomic<bool> premature{false};
  std::vector<std::thread> threads;
  for (int w = 0; w < kN; ++w) {
    threads.emplace_back([&, w] {
      XorShift rng(static_cast<std::uint64_t>(w) + 1);
      // Phase 1: do some "work": create tasks, execute them.
      const int my_tasks = 50 + static_cast<int>(rng.below(100));
      for (int i = 0; i < my_tasks; ++i) {
        created[static_cast<std::size_t>(w)].fetch_add(1);
        std::this_thread::yield();
        executed[static_cast<std::size_t>(w)].fetch_add(1);
      }
      // Phase 2: idle at barrier.
      while (!tb.poll(w,
                      created[static_cast<std::size_t>(w)].load(),
                      executed[static_cast<std::size_t>(w)].load(), 1)) {
        std::this_thread::yield();
      }
      // On release, the global totals must balance.
      std::uint64_t c = 0;
      std::uint64_t e = 0;
      for (int i = 0; i < kN; ++i) {
        c += created[static_cast<std::size_t>(i)].load();
        e += executed[static_cast<std::size_t>(i)].load();
      }
      if (c != e) premature.store(true);
      released_count.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(released_count.load(), kN);
  EXPECT_FALSE(premature.load());
}

}  // namespace
}  // namespace xtask
