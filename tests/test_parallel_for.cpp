// parallel_for tests: coverage (each index exactly once), grain handling,
// empty/degenerate ranges, all runtimes, and nesting.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "bots/serial_ctx.hpp"
#include "core/parallel_for.hpp"
#include "core/runtime.hpp"
#include "gomp/gomp_runtime.hpp"
#include "registry/registry.hpp"

namespace xtask {
namespace {

TEST(ParallelFor, EveryIndexExactlyOnce) {
  Config cfg;
  cfg.num_threads = 4;
  const auto rt_h = RuntimeRegistry::make_xtask(cfg);
  Runtime& rt = *rt_h;
  constexpr std::size_t kN = 100'000;
  std::vector<std::atomic<std::uint8_t>> hits(kN);
  parallel_for(rt, 0, kN, 1024, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i)
      hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i)
    ASSERT_EQ(hits[i].load(), 1u) << "index " << i;
}

TEST(ParallelFor, GrainOneAndHugeGrain) {
  Config cfg;
  cfg.num_threads = 2;
  const auto rt_h = RuntimeRegistry::make_xtask(cfg);
  Runtime& rt = *rt_h;
  std::atomic<std::size_t> sum{0};
  parallel_for(rt, 10, 20, 1, [&](std::size_t lo, std::size_t hi) {
    EXPECT_EQ(hi - lo, 1u);  // grain 1: single-index chunks
    sum.fetch_add(lo);
  });
  EXPECT_EQ(sum.load(), 10u + 11 + 12 + 13 + 14 + 15 + 16 + 17 + 18 + 19);
  std::atomic<int> chunks{0};
  parallel_for(rt, 0, 100, 1'000'000, [&](std::size_t lo, std::size_t hi) {
    EXPECT_EQ(lo, 0u);
    EXPECT_EQ(hi, 100u);
    chunks.fetch_add(1);
  });
  EXPECT_EQ(chunks.load(), 1);  // grain larger than range: one chunk
}

TEST(ParallelFor, EmptyAndReversedRangesAreNoops) {
  Config cfg;
  cfg.num_threads = 2;
  const auto rt_h = RuntimeRegistry::make_xtask(cfg);
  Runtime& rt = *rt_h;
  int calls = 0;
  rt.run([&](TaskContext& ctx) {
    parallel_for(ctx, 5, 5, 8, [&](std::size_t, std::size_t) { ++calls; });
    parallel_for(ctx, 9, 3, 8, [&](std::size_t, std::size_t) { ++calls; });
  });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, ZeroGrainTreatedAsOne) {
  Config cfg;
  cfg.num_threads = 2;
  const auto rt_h = RuntimeRegistry::make_xtask(cfg);
  Runtime& rt = *rt_h;
  std::atomic<int> n{0};
  parallel_for(rt, 0, 16, 0, [&](std::size_t, std::size_t) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 16);
}

TEST(ParallelFor, WorksInsideExistingRegionAndNested) {
  Config cfg;
  cfg.num_threads = 4;
  const auto rt_h = RuntimeRegistry::make_xtask(cfg);
  Runtime& rt = *rt_h;
  std::atomic<std::uint64_t> total{0};
  rt.run([&](TaskContext& ctx) {
    parallel_for(ctx, 0, 32, 4, [&](std::size_t lo, std::size_t hi) {
      // The body runs inside a task; we cannot nest another parallel_for
      // here without a context, so just accumulate.
      for (std::size_t i = lo; i < hi; ++i) total.fetch_add(i);
    });
  });
  EXPECT_EQ(total.load(), 32u * 31 / 2);
}

TEST(ParallelFor, WorksOnGompBaselineAndSerial) {
  gomp::GompRuntime::Config gc;
  gc.num_threads = 3;
  const auto grt_h = RuntimeRegistry::make_gomp(gc);
  gomp::GompRuntime& grt = *grt_h;
  std::atomic<std::size_t> gsum{0};
  parallel_for(grt, 0, 1000, 64, [&](std::size_t lo, std::size_t hi) {
    gsum.fetch_add(hi - lo);
  });
  EXPECT_EQ(gsum.load(), 1000u);

  bots::SerialRuntime sr;
  std::size_t ssum = 0;
  parallel_for(sr, 0, 1000, 64, [&](std::size_t lo, std::size_t hi) {
    ssum += hi - lo;
  });
  EXPECT_EQ(ssum, 1000u);
}

}  // namespace
}  // namespace xtask
