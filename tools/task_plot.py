#!/usr/bin/env python3
"""Per-worker execution timeline from a scheduler trace.

Reads a trace produced by the runtime (``xtask:trace=record,tracefile=...``
or ``bench_replay --trace-out``) in the JSONL encoding and renders one
horizontal lane per worker: execution intervals as filled blocks colored
by NUMA zone, idle episodes as pale underlays, and steal migrations as
tick marks on the thief's lane. This is the Fig. 3-style load-balance
picture — a glance shows which workers starved, where bursts serialized,
and whether the DLB protocol actually moved work across the zone boundary.

Output is standalone SVG (no third-party plotting dependency, so it runs
in CI and renders in any browser or GitHub artifact preview).

Usage:
  python3 tools/task_plot.py TRACE.jsonl [-o OUT.svg] [--max-records N]
"""

from __future__ import annotations

import argparse
import html
import json
import pathlib
import sys

# One fill color per NUMA zone (cycled), chosen to stay distinguishable
# when blocks shrink to a pixel or two.
ZONE_COLORS = ["#4878cf", "#d65f5f", "#59a14f", "#b07aa1",
               "#e49444", "#76b7b2", "#edc948", "#9c755f"]
IDLE_COLOR = "#e8e8e8"
STEAL_COLOR = "#222222"

LANE_H = 26        # lane height including gap
BAR_H = 18         # exec bar height
MARGIN_L = 70      # room for worker labels
MARGIN_T = 34      # room for the title
MARGIN_B = 30      # room for the time axis
PLOT_W = 1100      # drawable timeline width


def load_jsonl(path: pathlib.Path, max_records: int):
    with path.open("r", encoding="utf-8") as fh:
        lines = [ln for ln in (l.strip() for l in fh) if ln]
    if not lines:
        raise SystemExit(f"{path}: empty trace")
    header = json.loads(lines[0])
    if "xtask_trace" not in header:
        raise SystemExit(f"{path}: not a JSONL xtask trace (binary traces "
                         "can be converted by recording with a .jsonl sink)")
    records = [json.loads(ln) for ln in lines[1:]]
    if len(records) > max_records:
        print(f"note: plotting first {max_records} of {len(records)} "
              "records", file=sys.stderr)
        records = records[:max_records]
    return header, records


def fmt_time(us: float) -> str:
    if us >= 1000.0:
        return f"{us / 1000.0:.2f} ms"
    return f"{us:.0f} µs"


def render(header: dict, records: list[dict]) -> str:
    nworkers = max(int(header.get("nworkers", 0)), 1)
    cyc_per_us = float(header.get("cycles_per_us", 0.0)) or 1.0
    execs = [r for r in records if r.get("k") == "exec" and r["t1"] > r["t0"]]
    idles = [r for r in records if r.get("k") == "idle" and r["t1"] > r["t0"]]
    steals = [r for r in records if r.get("k") in ("steal", "dsteal")]
    spans = execs + idles
    if not spans:
        raise SystemExit("trace has no exec/idle intervals to plot")
    t_min = min(r["t0"] for r in spans)
    t_max = max(r["t1"] for r in spans)
    span = max(t_max - t_min, 1)

    def x_of(t: int) -> float:
        return MARGIN_L + (t - t_min) / span * PLOT_W

    width = MARGIN_L + PLOT_W + 20
    height = MARGIN_T + nworkers * LANE_H + MARGIN_B
    out = []
    out.append(f'<svg xmlns="http://www.w3.org/2000/svg" '
               f'width="{width}" height="{height}" '
               f'font-family="sans-serif" font-size="11">')
    out.append(f'<rect width="{width}" height="{height}" fill="white"/>')
    title = (f'{html.escape(header.get("backend", "?"))} on '
             f'{html.escape(header.get("topology", "?"))} — '
             f'{len(execs)} tasks over {fmt_time(span / cyc_per_us)}')
    out.append(f'<text x="{MARGIN_L}" y="18" font-size="13">{title}</text>')

    def lane_y(w: int) -> float:
        return MARGIN_T + w * LANE_H

    for w in range(nworkers):
        y = lane_y(w) + BAR_H / 2
        out.append(f'<text x="6" y="{y + 4:.0f}">w{w}</text>')
        out.append(f'<line x1="{MARGIN_L}" y1="{y:.0f}" '
                   f'x2="{MARGIN_L + PLOT_W}" y2="{y:.0f}" '
                   f'stroke="#f0f0f0"/>')
    # Idle underlays first, exec blocks on top.
    for r in idles:
        y = lane_y(r["w"]) + (LANE_H - BAR_H) / 2
        x0, x1 = x_of(r["t0"]), x_of(r["t1"])
        out.append(f'<rect x="{x0:.2f}" y="{y:.1f}" '
                   f'width="{max(x1 - x0, 0.3):.2f}" height="{BAR_H}" '
                   f'fill="{IDLE_COLOR}"/>')
    for r in execs:
        y = lane_y(r["w"]) + (LANE_H - BAR_H) / 2
        x0, x1 = x_of(r["t0"]), x_of(r["t1"])
        color = ZONE_COLORS[r.get("z", 0) % len(ZONE_COLORS)]
        us = (r["t1"] - r["t0"]) / cyc_per_us
        out.append(f'<rect x="{x0:.2f}" y="{y:.1f}" '
                   f'width="{max(x1 - x0, 0.4):.2f}" height="{BAR_H}" '
                   f'fill="{color}" stroke="white" stroke-width="0.2">'
                   f'<title>task {r["id"]} on w{r["w"]} '
                   f'({fmt_time(us)})</title></rect>')
    # Steal migrations: a tick on the thief's lane at the record time.
    for r in steals:
        thief = r["w"] if r.get("k") == "dsteal" else r.get("aux", 0)
        if not 0 <= thief < nworkers:
            continue
        x = x_of(r["t0"])
        y = lane_y(thief)
        out.append(f'<line x1="{x:.2f}" y1="{y - 1:.1f}" x2="{x:.2f}" '
                   f'y2="{y + LANE_H - 7:.1f}" stroke="{STEAL_COLOR}" '
                   f'stroke-width="1"><title>steal of {r.get("ref", "?")} '
                   f'task(s)</title></line>')
    # Time axis: five ticks in display units.
    axis_y = MARGIN_T + nworkers * LANE_H + 8
    out.append(f'<line x1="{MARGIN_L}" y1="{axis_y}" '
               f'x2="{MARGIN_L + PLOT_W}" y2="{axis_y}" stroke="#666"/>')
    for i in range(6):
        frac = i / 5.0
        x = MARGIN_L + frac * PLOT_W
        t_us = frac * span / cyc_per_us
        out.append(f'<line x1="{x:.1f}" y1="{axis_y}" x2="{x:.1f}" '
                   f'y2="{axis_y + 4}" stroke="#666"/>')
        out.append(f'<text x="{x:.1f}" y="{axis_y + 16}" '
                   f'text-anchor="middle">{fmt_time(t_us)}</text>')
    out.append("</svg>")
    return "\n".join(out) + "\n"


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace", type=pathlib.Path, help="JSONL trace file")
    ap.add_argument("-o", "--out", type=pathlib.Path,
                    help="output SVG (default: trace name with .svg)")
    ap.add_argument("--max-records", type=int, default=200_000)
    args = ap.parse_args()
    header, records = load_jsonl(args.trace, args.max_records)
    out = args.out or args.trace.with_suffix(".svg")
    out.write_text(render(header, records))
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
