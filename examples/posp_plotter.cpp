// Proof-of-Space plotter (§VII): generate a plot of BLAKE3 puzzles with
// task parallelism, answer a challenge, and verify the proof — the
// blockchain-consensus application the paper accelerates.
//
//   $ ./examples/posp_plotter            # K=16, batch=64, 4 threads
//   $ ./examples/posp_plotter 18 1024 8  # K, batch, threads
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "posp/posp.hpp"
#include "registry/registry.hpp"

int main(int argc, char** argv) {
  xtask::posp::PospConfig pc;
  pc.k = argc > 1 ? std::atoi(argv[1]) : 16;
  pc.batch = argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 64;
  const int threads = argc > 3 ? std::atoi(argv[3]) : 4;

  // NA-WS tolerates the plot's uneven bucket costs.
  xtask::AnyRuntime rt = xtask::RuntimeRegistry::make(
      "xtask:dlb=naws,threads=" + std::to_string(threads));

  std::printf("plotting 2^%d puzzles, batch %u, %d threads...\n", pc.k,
              pc.batch, threads);
  xtask::posp::Plot plot(pc);
  const double secs = plot.generate(rt);
  const double mhs =
      static_cast<double>(plot.total_puzzles()) / (secs * 1e6);
  std::printf("done: %.3fs, %.3f MH/s, %zu buckets\n", secs, mhs,
              plot.num_buckets());

  // Farmer loop: answer a few challenges and verify the proofs.
  int verified = 0;
  for (int i = 0; i < 5; ++i) {
    std::uint8_t challenge[28];
    char msg[32];
    std::snprintf(msg, sizeof(msg), "block-%d", i);
    xtask::posp::Blake3::hash(msg, std::strlen(msg), challenge,
                              sizeof(challenge));
    xtask::posp::Puzzle proof{};
    if (plot.best_proof(challenge, &proof) && plot.verify(proof)) {
      ++verified;
      std::printf("challenge %d -> proof nonce %u (hash %02x%02x%02x...)\n",
                  i, proof.nonce, proof.hash[0], proof.hash[1],
                  proof.hash[2]);
    }
  }
  std::printf("%d/5 proofs verified\n", verified);
  return verified == 5 ? 0 : 1;
}
