// BOTS explorer: run any of the nine benchmark kernels on any runtime
// configuration and print timing plus the §V profiling statistics — a
// command-line playground for the knobs the paper studies.
//
//   $ ./examples/bots_explorer                 # defaults: fib, best config
//   $ ./examples/bots_explorer nqueens naws    # NQueens with NA-WS
//   $ ./examples/bots_explorer sort central    # Sort, XGOMP-style barrier
//   $ ./examples/bots_explorer fib gomp        # any registry spec works
//   $ ./examples/bots_explorer uts xtask:dlb=adaptive,qcap=4096 8
//
// Arguments: [app] [config] [threads]
//   app:    fib nqueens fft floorplan health uts strassen sort align
//   config: a registry backend spec ("gomp", "xtask:dlb=naws,zones=4", ...)
//           or a shorthand: slb (XGOMPTB) | central (XGOMP) | narp | naws
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "bots/bots.hpp"
#include "registry/registry.hpp"

using namespace xtask;

namespace {

double run_app(AnyRuntime& rt, const std::string& app) {
  const auto t0 = std::chrono::steady_clock::now();
  bool ok = true;
  if (app == "fib") {
    ok = bots::fib_parallel(rt, 27) == bots::fib_serial(27);
  } else if (app == "nqueens") {
    ok = bots::nqueens_parallel(rt, 10) == 724;
  } else if (app == "fft") {
    auto in = bots::fft_input(1 << 16);
    auto out = bots::fft_parallel(rt, in, 1024);
    ok = out.size() == in.size();
  } else if (app == "floorplan") {
    auto cells = bots::floorplan_cells(8);
    ok = bots::floorplan_parallel(rt, cells) ==
         bots::floorplan_serial(cells);
  } else if (app == "health") {
    auto p = bots::health_medium();
    ok = bots::health_parallel(rt, p).generated > 0;
  } else if (app == "uts") {
    auto p = bots::uts_tiny();
    ok = bots::uts_parallel(rt, p) == bots::uts_serial(p);
  } else if (app == "strassen") {
    const std::size_t n = 256;
    auto a = bots::strassen_input(n, 1);
    auto b = bots::strassen_input(n, 2);
    ok = !bots::strassen_parallel(rt, a, b, n, 64).empty();
  } else if (app == "sort") {
    auto data = bots::sort_input(1 << 21);
    ok = bots::sort_parallel(rt, data, 1 << 12, 1 << 12);
  } else if (app == "align") {
    auto seqs = bots::alignment_sequences(16, 80, 160);
    ok = !bots::alignment_parallel(rt, seqs).empty();
  } else {
    std::fprintf(stderr, "unknown app '%s'\n", app.c_str());
    return -1;
  }
  const auto t1 = std::chrono::steady_clock::now();
  if (!ok) {
    std::fprintf(stderr, "%s: WRONG RESULT\n", app.c_str());
    return -1;
  }
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string app = argc > 1 ? argv[1] : "fib";
  const std::string mode = argc > 2 ? argv[2] : "slb";
  const int threads = argc > 3 ? std::atoi(argv[3]) : 4;

  // Shorthands for the paper's four xtask operating points; anything else
  // is passed to the registry verbatim as a backend spec.
  std::string spec = mode;
  if (mode == "slb") spec = "xtask";
  else if (mode == "central") spec = "xtask:barrier=central,alloc=malloc";
  else if (mode == "narp") spec = "xtask:dlb=narp,nvictim=4,nsteal=16";
  else if (mode == "naws") spec = "xtask:dlb=naws,nvictim=4,nsteal=16";

  BackendSpec parsed = BackendSpec::parse(spec);
  parsed.set("threads", std::to_string(threads));
  parsed.set("zones", "2");
  AnyRuntime rt;
  try {
    rt = RuntimeRegistry::make(parsed);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  const double secs = run_app(rt, app);
  if (secs < 0) return 1;

  std::printf("%s on %s: %.3fs\n", app.c_str(), rt.describe().c_str(),
              secs);
  const Counters c = rt.profiler().total_counters();
  std::printf("tasks: created=%llu executed=%llu (self=%llu local=%llu "
              "remote=%llu)\n",
              static_cast<unsigned long long>(c.ntasks_created),
              static_cast<unsigned long long>(c.ntasks_executed),
              static_cast<unsigned long long>(c.ntasks_self),
              static_cast<unsigned long long>(c.ntasks_local),
              static_cast<unsigned long long>(c.ntasks_remote));
  std::printf("dispatch: static_push=%llu imm_exec=%llu\n",
              static_cast<unsigned long long>(c.ntasks_static_push),
              static_cast<unsigned long long>(c.ntasks_imm_exec));
  if (c.nreq_sent > 0) {
    std::printf("DLB: requests sent=%llu handled=%llu with-steal=%llu "
                "stolen(local/remote)=%llu/%llu\n",
                static_cast<unsigned long long>(c.nreq_sent),
                static_cast<unsigned long long>(c.nreq_handled),
                static_cast<unsigned long long>(c.nreq_has_steal),
                static_cast<unsigned long long>(c.nsteal_local),
                static_cast<unsigned long long>(c.nsteal_remote));
  }
  return 0;
}
