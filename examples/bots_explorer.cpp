// BOTS explorer: run any of the nine benchmark kernels on any runtime
// configuration and print timing plus the §V profiling statistics — a
// command-line playground for the knobs the paper studies.
//
//   $ ./examples/bots_explorer                 # defaults: fib, best config
//   $ ./examples/bots_explorer nqueens naws    # NQueens with NA-WS
//   $ ./examples/bots_explorer sort central    # Sort, XGOMP-style barrier
//
// Arguments: [app] [config] [threads]
//   app:    fib nqueens fft floorplan health uts strassen sort align
//   config: slb (XGOMPTB) | central (XGOMP) | narp | naws
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "bots/bots.hpp"
#include "core/xtask.hpp"

using namespace xtask;

namespace {

double run_app(Runtime& rt, const std::string& app) {
  const auto t0 = std::chrono::steady_clock::now();
  bool ok = true;
  if (app == "fib") {
    ok = bots::fib_parallel(rt, 27) == bots::fib_serial(27);
  } else if (app == "nqueens") {
    ok = bots::nqueens_parallel(rt, 10) == 724;
  } else if (app == "fft") {
    auto in = bots::fft_input(1 << 16);
    auto out = bots::fft_parallel(rt, in, 1024);
    ok = out.size() == in.size();
  } else if (app == "floorplan") {
    auto cells = bots::floorplan_cells(8);
    ok = bots::floorplan_parallel(rt, cells) ==
         bots::floorplan_serial(cells);
  } else if (app == "health") {
    auto p = bots::health_medium();
    ok = bots::health_parallel(rt, p).generated > 0;
  } else if (app == "uts") {
    auto p = bots::uts_tiny();
    ok = bots::uts_parallel(rt, p) == bots::uts_serial(p);
  } else if (app == "strassen") {
    const std::size_t n = 256;
    auto a = bots::strassen_input(n, 1);
    auto b = bots::strassen_input(n, 2);
    ok = !bots::strassen_parallel(rt, a, b, n, 64).empty();
  } else if (app == "sort") {
    auto data = bots::sort_input(1 << 21);
    ok = bots::sort_parallel(rt, data, 1 << 12, 1 << 12);
  } else if (app == "align") {
    auto seqs = bots::alignment_sequences(16, 80, 160);
    ok = !bots::alignment_parallel(rt, seqs).empty();
  } else {
    std::fprintf(stderr, "unknown app '%s'\n", app.c_str());
    return -1;
  }
  const auto t1 = std::chrono::steady_clock::now();
  if (!ok) {
    std::fprintf(stderr, "%s: WRONG RESULT\n", app.c_str());
    return -1;
  }
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string app = argc > 1 ? argv[1] : "fib";
  const std::string mode = argc > 2 ? argv[2] : "slb";
  const int threads = argc > 3 ? std::atoi(argv[3]) : 4;

  Config cfg;
  cfg.num_threads = threads;
  cfg.numa_zones = 2;
  if (mode == "central") {
    cfg.barrier = BarrierKind::kCentral;
    cfg.allocator = AllocatorMode::kMalloc;
  } else if (mode == "narp") {
    cfg.dlb = DlbKind::kRedirectPush;
    cfg.dlb_cfg = {4, 16, 5'000, 1.0};
  } else if (mode == "naws") {
    cfg.dlb = DlbKind::kWorkSteal;
    cfg.dlb_cfg = {4, 16, 5'000, 1.0};
  }  // "slb": defaults (tree barrier, no DLB)

  Runtime rt(cfg);
  const double secs = run_app(rt, app);
  if (secs < 0) return 1;

  std::printf("%s on %d threads (%s): %.3fs\n", app.c_str(), threads,
              mode.c_str(), secs);
  const Counters c = rt.profiler().total_counters();
  std::printf("tasks: created=%llu executed=%llu (self=%llu local=%llu "
              "remote=%llu)\n",
              static_cast<unsigned long long>(c.ntasks_created),
              static_cast<unsigned long long>(c.ntasks_executed),
              static_cast<unsigned long long>(c.ntasks_self),
              static_cast<unsigned long long>(c.ntasks_local),
              static_cast<unsigned long long>(c.ntasks_remote));
  std::printf("dispatch: static_push=%llu imm_exec=%llu\n",
              static_cast<unsigned long long>(c.ntasks_static_push),
              static_cast<unsigned long long>(c.ntasks_imm_exec));
  if (c.nreq_sent > 0) {
    std::printf("DLB: requests sent=%llu handled=%llu with-steal=%llu "
                "stolen(local/remote)=%llu/%llu\n",
                static_cast<unsigned long long>(c.nreq_sent),
                static_cast<unsigned long long>(c.nreq_handled),
                static_cast<unsigned long long>(c.nreq_has_steal),
                static_cast<unsigned long long>(c.nsteal_local),
                static_cast<unsigned long long>(c.nsteal_remote));
  }
  return 0;
}
