// ipc_client — external-process client for the shared-memory task
// service transport (src/serve/ipc). Quick start:
//
//   # terminal 1: any IpcServer, e.g. bench_serve --transport=ipc
//   # terminal 2:
//   ./ipc_client --spec "ipc=shm,seg=demo" --tenant 0 --count 1000
//
// Besides the normal mode it can impersonate every misbehaving client the
// crash fault model covers — the fork-chaos tests exec this binary:
//
//   --mode normal        submit N, poll all completions, disconnect. [0]
//   --mode torn          submit a few, claim a ring ticket, die without
//                        publishing (the mid-publish SIGKILL footprint).
//   --mode no-heartbeat  connect without a heartbeat, submit a burst,
//                        vanish: lease expiry + orphaned requests.
//   --mode hold          connect, submit, stop heartbeating, sleep until
//                        killed (the wedged-client shape).
//   --mode flood         submit as fast as possible until killed.
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "serve/ipc/client.hpp"

using xtask::ipc::Client;
using xtask::ipc::ClientStatus;
using xtask::ipc::CmplPayload;

int main(int argc, char** argv) {
  std::string spec_str = "ipc=shm,seg=demo";
  std::string mode = "normal";
  std::uint32_t tenant = 0;
  std::uint64_t count = 100;
  std::uint64_t seed = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", a.c_str());
        std::exit(64);
      }
      return argv[++i];
    };
    if (a == "--spec") spec_str = next();
    else if (a == "--mode") mode = next();
    else if (a == "--tenant") tenant = std::strtoul(next(), nullptr, 10);
    else if (a == "--count") count = std::strtoull(next(), nullptr, 10);
    else if (a == "--seed") seed = std::strtoull(next(), nullptr, 10);
    else {
      std::fprintf(stderr, "unknown flag %s\n", a.c_str());
      return 64;
    }
  }

  xtask::TransportSpec tspec;
  try {
    tspec = xtask::TransportSpec::parse(spec_str);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bad --spec: %s\n", e.what());
    return 64;
  }

  Client c;
  Client::Options opt;
  opt.backoff_seed = seed;
  opt.start_heartbeat = mode != "no-heartbeat";
  const ClientStatus cs = c.connect(tspec, tenant, opt);
  if (cs != ClientStatus::kOk) {
    std::fprintf(stderr, "connect: %s\n", xtask::ipc::to_string(cs));
    return 3;
  }

  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  CmplPayload cmpl[64];
  auto drain = [&] {
    std::size_t n;
    while ((n = c.poll(cmpl, 64)) != 0) completed += n;
  };

  if (mode == "torn") {
    for (std::uint64_t i = 0; i < 4; ++i)
      c.submit(0, i, i, xtask::ipc::now_ns() + 100'000'000);
    c.debug_claim_and_abandon();
    _exit(0);  // no disconnect, no destructors: a crash in shoes
  }
  if (mode == "no-heartbeat") {
    for (std::uint64_t i = 0; i < count; ++i)
      if (c.submit(0, i, i, xtask::ipc::now_ns() + 50'000'000) !=
          ClientStatus::kOk)
        ++failed;
    _exit(0);
  }
  if (mode == "hold") {
    for (std::uint64_t i = 0; i < count; ++i)
      c.submit(0, i, i, xtask::ipc::now_ns() + 50'000'000);
    c.debug_stop_heartbeat();
    for (;;) ::sleep(3600);  // until SIGKILL
  }
  if (mode == "flood") {
    for (std::uint64_t i = 0;; ++i) {
      c.submit(0, i, i, xtask::ipc::now_ns() + 20'000'000);
      if ((i & 63) == 0) drain();
      if (c.poisoned() || c.evicted()) _exit(0);
    }
  }

  // normal
  const std::uint64_t deadline = xtask::ipc::now_ns() + 30'000'000'000ull;
  for (std::uint64_t i = 0; i < count; ++i) {
    const ClientStatus st = c.submit(0, i, i, xtask::ipc::now_ns() +
                                                  2'000'000'000ull);
    if (st != ClientStatus::kOk) ++failed;
    if ((i & 31) == 0) drain();
  }
  while (completed + failed < count && xtask::ipc::now_ns() < deadline) {
    if (c.poisoned() || c.evicted()) break;
    drain();
    ::usleep(500);
  }
  drain();
  std::printf("submitted=%llu completed=%llu failed=%llu status=%s\n",
              static_cast<unsigned long long>(c.submitted()),
              static_cast<unsigned long long>(completed),
              static_cast<unsigned long long>(failed),
              c.poisoned() ? "poisoned" : (c.evicted() ? "evicted" : "ok"));
  c.disconnect();
  return 0;
}
