// Machine-simulator example: compare scheduling policies on a virtual
// multi-socket machine — the what-if tool behind the paper-reproduction
// benchmarks. The machine shape is an xtask::Topology spec string, the
// same grammar the real runtimes and the backend registry use ("8x24" =
// 8 NUMA zones x 24 cores, the paper's Skylake-192).
//
//   $ ./examples/machine_sim              # 8x24 (192 cores), fib
//   $ ./examples/machine_sim 2x24 sort    # topology spec, app
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>

#include "sim/workloads.hpp"

using namespace xtask::sim;
using xtask::Topology;

int main(int argc, char** argv) {
  const std::string topo_spec = argc > 1 ? argv[1] : "8x24";
  const std::string app = argc > 2 ? argv[2] : "fib";
  Topology topo;
  try {
    topo = Topology::parse(topo_spec);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }

  SimWorkload wl = wl_fib(21);
  if (app == "sort") wl = wl_sort(1 << 18, 1 << 11);
  else if (app == "strassen") wl = wl_strassen(1024, 32);
  else if (app == "uts") wl = wl_uts(100, 0.18, 562);
  else if (app == "posp") wl = wl_posp(1 << 20, 256);
  else if (app != "fib") {
    std::fprintf(stderr,
                 "unknown app '%s' (fib|sort|strassen|uts|posp)\n",
                 app.c_str());
    return 1;
  }

  std::printf("simulating '%s' on %s (%d cores / %d NUMA zones)\n",
              wl.name.c_str(), topo.spec().c_str(), topo.num_workers(),
              topo.num_zones());
  std::printf("%-22s %14s %12s %10s\n", "policy", "makespan(cyc)",
              "time@2.1GHz", "tasks");
  for (SimPolicy p : {SimPolicy::kGomp, SimPolicy::kLomp, SimPolicy::kXlomp,
                      SimPolicy::kXGomp, SimPolicy::kXGompTB}) {
    SimConfig cfg;
    cfg.machine.topo = topo;
    cfg.policy = p;
    const auto res = simulate(cfg, wl);
    std::printf("%-22s %14llu %11.4fs %10llu\n", sim_policy_name(p),
                static_cast<unsigned long long>(res.makespan),
                res.seconds(),
                static_cast<unsigned long long>(res.tasks));
  }
  // The paper's contribution stack: tree barrier + the two DLBs.
  for (auto [dlb, name] :
       {std::pair{SimDlb::kRedirectPush, "XGOMPTB + NA-RP"},
        std::pair{SimDlb::kWorkSteal, "XGOMPTB + NA-WS"}}) {
    SimConfig cfg;
    cfg.machine.topo = topo;
    cfg.policy = SimPolicy::kXGompTB;
    cfg.dlb = dlb;
    cfg.dlb_cfg = {8, 16, 5'000, 1.0};
    const auto res = simulate(cfg, wl);
    std::printf("%-22s %14llu %11.4fs %10llu\n", name,
                static_cast<unsigned long long>(res.makespan),
                res.seconds(),
                static_cast<unsigned long long>(res.tasks));
  }
  return 0;
}
