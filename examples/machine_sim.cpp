// Machine-simulator example: compare scheduling policies on a virtual
// multi-socket machine — the what-if tool behind the paper-reproduction
// benchmarks. Users can point it at their own machine shape.
//
//   $ ./examples/machine_sim              # 192 cores / 8 zones, fib
//   $ ./examples/machine_sim 48 2 sort    # cores, zones, app
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "sim/workloads.hpp"

using namespace xtask::sim;

int main(int argc, char** argv) {
  const int cores = argc > 1 ? std::atoi(argv[1]) : 192;
  const int zones = argc > 2 ? std::atoi(argv[2]) : 8;
  const std::string app = argc > 3 ? argv[3] : "fib";

  SimWorkload wl = wl_fib(21);
  if (app == "sort") wl = wl_sort(1 << 18, 1 << 11);
  else if (app == "strassen") wl = wl_strassen(1024, 32);
  else if (app == "uts") wl = wl_uts(100, 0.18, 562);
  else if (app == "posp") wl = wl_posp(1 << 20, 256);
  else if (app != "fib") {
    std::fprintf(stderr,
                 "unknown app '%s' (fib|sort|strassen|uts|posp)\n",
                 app.c_str());
    return 1;
  }

  std::printf("simulating '%s' on %d cores / %d NUMA zones\n",
              wl.name.c_str(), cores, zones);
  std::printf("%-22s %14s %12s %10s\n", "policy", "makespan(cyc)",
              "time@2.1GHz", "tasks");
  for (SimPolicy p : {SimPolicy::kGomp, SimPolicy::kLomp, SimPolicy::kXlomp,
                      SimPolicy::kXGomp, SimPolicy::kXGompTB}) {
    SimConfig cfg;
    cfg.machine.cores = cores;
    cfg.machine.zones = zones;
    cfg.policy = p;
    const auto res = simulate(cfg, wl);
    std::printf("%-22s %14llu %11.4fs %10llu\n", sim_policy_name(p),
                static_cast<unsigned long long>(res.makespan),
                res.seconds(),
                static_cast<unsigned long long>(res.tasks));
  }
  // The paper's contribution stack: tree barrier + the two DLBs.
  for (auto [dlb, name] :
       {std::pair{SimDlb::kRedirectPush, "XGOMPTB + NA-RP"},
        std::pair{SimDlb::kWorkSteal, "XGOMPTB + NA-WS"}}) {
    SimConfig cfg;
    cfg.machine.cores = cores;
    cfg.machine.zones = zones;
    cfg.policy = SimPolicy::kXGompTB;
    cfg.dlb = dlb;
    cfg.dlb_cfg = {8, 16, 5'000, 1.0};
    const auto res = simulate(cfg, wl);
    std::printf("%-22s %14llu %11.4fs %10llu\n", name,
                static_cast<unsigned long long>(res.makespan),
                res.seconds(),
                static_cast<unsigned long long>(res.tasks));
  }
  return 0;
}
