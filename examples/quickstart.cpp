// Quickstart: the smallest useful xtask program.
//
//   $ ./examples/quickstart
//   $ XTASK_BACKEND=gomp ./examples/quickstart       # same program, GOMP
//   $ XTASK_TOPOLOGY=2x2 ./examples/quickstart       # 2 zones x 2 workers
//
// Builds a runtime from a backend spec string through the registry, runs
// one parallel region that decomposes a sum over a range into recursive
// tasks, and prints the runtime's task-locality statistics. Shows the
// three calls a user needs: RuntimeRegistry::make_env -> run(), plus
// spawn()/taskwait() inside tasks.
#include <cstdio>
#include <numeric>
#include <vector>

#include "registry/registry.hpp"

using xtask::AnyContext;
using xtask::AnyRuntime;
using xtask::RuntimeRegistry;

namespace {

// Recursive divide-and-conquer sum of data[lo, hi).
void sum_task(AnyContext& ctx, const double* data, std::size_t lo,
              std::size_t hi, double* out) {
  if (hi - lo <= 4096) {  // leaf: sequential work
    *out = std::accumulate(data + lo, data + hi, 0.0);
    return;
  }
  const std::size_t mid = lo + (hi - lo) / 2;
  double left = 0.0;
  double right = 0.0;
  ctx.spawn([=, &left](AnyContext& c) {
    sum_task(c, data, lo, mid, &left);
  });
  ctx.spawn([=, &right](AnyContext& c) {
    sum_task(c, data, mid, hi, &right);
  });
  ctx.taskwait();  // children write left/right before we read them
  *out = left + right;
}

}  // namespace

int main() {
  // 1. Name a backend configuration. The default spec is the paper's best
  //    setup (xtask: XQueue + distributed tree barrier + multi-level
  //    allocator) with NUMA-aware work stealing; XTASK_BACKEND swaps the
  //    whole spec, XTASK_TOPOLOGY just the machine shape.
  AnyRuntime rt = RuntimeRegistry::make_env("xtask:threads=4,dlb=naws");
  std::printf("backend: %s\n", rt.describe().c_str());

  // 2. Run parallel regions (worker threads persist across regions).
  std::vector<double> data(1 << 20);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<double>(i % 1000) * 0.5;

  double total = 0.0;
  rt.run([&](AnyContext& ctx) {
    sum_task(ctx, data.data(), 0, data.size(), &total);
  });

  const double expect = std::accumulate(data.begin(), data.end(), 0.0);
  std::printf("parallel sum  = %.1f\n", total);
  std::printf("serial check  = %.1f (%s)\n", expect,
              total == expect ? "match" : "MISMATCH");

  // 3. Inspect the stats snapshot.
  const xtask::Counters c = rt.total_counters();
  std::printf("tasks executed: %llu (self %llu, NUMA-local %llu, "
              "remote %llu)\n",
              static_cast<unsigned long long>(c.ntasks_executed),
              static_cast<unsigned long long>(c.ntasks_self),
              static_cast<unsigned long long>(c.ntasks_local),
              static_cast<unsigned long long>(c.ntasks_remote));
  std::printf("%s\n", rt.topology().describe().c_str());
  return total == expect ? 0 : 1;
}
