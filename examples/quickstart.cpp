// Quickstart: the smallest useful xtask program.
//
//   $ ./examples/quickstart
//
// Creates a team of workers, runs one parallel region that decomposes a
// sum over a range into recursive tasks, and prints the runtime's
// task-locality statistics. Shows the three calls a user needs:
// Config -> Runtime -> run(), plus spawn()/taskwait() inside tasks.
#include <cstdio>
#include <numeric>
#include <vector>

#include "core/xtask.hpp"

using xtask::Config;
using xtask::Runtime;
using xtask::TaskContext;

namespace {

// Recursive divide-and-conquer sum of data[lo, hi).
void sum_task(TaskContext& ctx, const double* data, std::size_t lo,
              std::size_t hi, double* out) {
  if (hi - lo <= 4096) {  // leaf: sequential work
    *out = std::accumulate(data + lo, data + hi, 0.0);
    return;
  }
  const std::size_t mid = lo + (hi - lo) / 2;
  double left = 0.0;
  double right = 0.0;
  ctx.spawn([=, &left](TaskContext& c) {
    sum_task(c, data, lo, mid, &left);
  });
  ctx.spawn([=, &right](TaskContext& c) {
    sum_task(c, data, mid, hi, &right);
  });
  ctx.taskwait();  // children write left/right before we read them
  *out = left + right;
}

}  // namespace

int main() {
  // 1. Configure the runtime. Defaults give the paper's best setup:
  //    XQueue + distributed tree barrier + multi-level allocator.
  Config cfg;
  cfg.num_threads = 4;
  cfg.dlb = xtask::DlbKind::kWorkSteal;  // NUMA-aware work stealing

  // 2. Create the team (worker threads persist across regions).
  Runtime rt(cfg);

  // 3. Run parallel regions.
  std::vector<double> data(1 << 20);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<double>(i % 1000) * 0.5;

  double total = 0.0;
  rt.run([&](TaskContext& ctx) {
    sum_task(ctx, data.data(), 0, data.size(), &total);
  });

  const double expect = std::accumulate(data.begin(), data.end(), 0.0);
  std::printf("parallel sum  = %.1f\n", total);
  std::printf("serial check  = %.1f (%s)\n", expect,
              total == expect ? "match" : "MISMATCH");

  const xtask::Counters c = rt.profiler().total_counters();
  std::printf("tasks executed: %llu (self %llu, NUMA-local %llu, "
              "remote %llu)\n",
              static_cast<unsigned long long>(c.ntasks_executed),
              static_cast<unsigned long long>(c.ntasks_self),
              static_cast<unsigned long long>(c.ntasks_local),
              static_cast<unsigned long long>(c.ntasks_remote));
  std::printf("%s\n", rt.topology().describe().c_str());
  return total == expect ? 0 : 1;
}
