// Wavefront: dynamic-programming grid computed with OpenMP-style task
// dependences (`spawn(body, {din(...), dout(...)})`) — the classic
// pattern that needs the depend clause rather than taskwait barriers.
// Also demonstrates the Chrome-trace exporter: pass a path to write a
// trace you can open in chrome://tracing or https://ui.perfetto.dev.
//
//   $ ./examples/wavefront                 # 24x24 grid, 4 threads
//   $ ./examples/wavefront 48 8 trace.json # grid, threads, trace output
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "prof/trace_export.hpp"
#include "registry/registry.hpp"

using namespace xtask;

namespace {

/// Block (i,j) cost: a little LCS-like inner kernel so the trace shows
/// real task spans.
long block_work(long up, long left, int i, int j) {
  long acc = up ^ (left << 1);
  for (int k = 0; k < 20'000; ++k)
    acc = acc * 6364136223846793005L + i * 31 + j;
  return (up > left ? up : left) + (acc & 0xff) + 1;
}

}  // namespace

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 24;
  const int threads = argc > 2 ? std::atoi(argv[2]) : 4;
  const char* trace_path = argc > 3 ? argv[3] : nullptr;

  // Dependent spawns and the trace exporter are concrete-Runtime surface,
  // so this example uses the registry's typed escape hatch rather than the
  // type-erased handle.
  Config cfg;
  cfg.num_threads = threads;
  cfg.dlb = DlbKind::kWorkSteal;
  cfg.profile_events = trace_path != nullptr;
  const auto rt_owner = RuntimeRegistry::make_xtask(cfg);
  Runtime& rt = *rt_owner;

  std::vector<std::vector<long>> grid(static_cast<std::size_t>(n),
                                      std::vector<long>(static_cast<std::size_t>(n), 0));
  rt.run([&](TaskContext& ctx) {
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        ctx.spawn(
            [&grid, i, j](TaskContext&) {
              const long up = i > 0 ? grid[i - 1][j] : 0;
              const long left = j > 0 ? grid[i][j - 1] : 0;
              grid[i][j] = block_work(up, left, i, j);
            },
            {dout(&grid[i][j]),
             din(&grid[i > 0 ? i - 1 : 0][j]),
             din(&grid[i][j > 0 ? j - 1 : 0])});
      }
    }
    ctx.taskwait();
  });

  std::printf("wavefront %dx%d on %d threads: corner value = %ld\n", n, n,
              threads, grid[n - 1][n - 1]);
  const Counters c = rt.profiler().total_counters();
  std::printf("tasks executed: %llu (self %llu / local %llu / remote %llu)\n",
              static_cast<unsigned long long>(c.ntasks_executed),
              static_cast<unsigned long long>(c.ntasks_self),
              static_cast<unsigned long long>(c.ntasks_local),
              static_cast<unsigned long long>(c.ntasks_remote));
  if (trace_path != nullptr) {
    if (dump_trace_json(rt.profiler(), trace_path))
      std::printf("trace written to %s (open in chrome://tracing)\n",
                  trace_path);
    else
      std::fprintf(stderr, "failed to write %s\n", trace_path);
  }
  return 0;
}
