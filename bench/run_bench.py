#!/usr/bin/env python3
"""Benchmark protocol driver for the reproduction.

Runs the google-benchmark microbenchmark binary (``micro_primitives``) and
the cross-runtime BOTS kernel driver (``bench_bots``) and records the
results as JSON at the repository root:

  BENCH_primitives.json  — one record per microbenchmark
  BENCH_bots.json        — one record per (kernel, runtime-config) cell
  BENCH_serve.json       — overload sweep: one record per load phase of
                           the task-service front-end (``bench_serve``)
  BENCH_graph.json       — graph capture/replay: the request-pipeline
                           rebuild-vs-replay comparison plus the BOTS
                           kernels as dependency graphs (``bench_graph``)
  BENCH_replay.json      — sim↔real cross-calibration: a trace recorded
                           from the real runtime replayed on both
                           executors, with the fitted overhead multiplier
                           and the residual makespan/busy-share error
                           (``bench_replay``)

Every record follows the schema
  {"bench": ..., "config": ..., "threads": N, "ns_per_op": X | "ms": X,
   "timestamp": iso8601}

``--smoke`` runs a trimmed single-rep pass and compares the microbenchmark
results against the checked-in floor (``bench/perf_floor.json``), failing
only on a more-than-``--smoke-factor``x regression — wide enough that a
noisy CI host does not flap, tight enough that an accidental O(n) slip or
a reintroduced lock on the hot path is caught.

``perf_floor.json`` has three sections (a legacy flat file of micro floors
is still accepted and treated as ``primitives``):

  "primitives"  — {bench name: floor ns/op} for the smoke microbenches
  "bots"        — real-thread end-to-end gate: the watched xtask config's
                  kernel time must stay within ``max_ratio[bench]`` x of
                  the baseline config's (ratios are host-relative, so this
                  gate needs no per-host calibration)
  "serve"       — overload-goodput gate: at the 1.0x phase goodput must be
                  >= ``min_goodput_frac_1x`` of the offered rate, and the
                  2.0x phase must keep >= ``min_2x_goodput_vs_1x`` of the
                  1.0x goodput (graceful degradation, not collapse)
  "graph"       — capture/replay gate: replaying the recorded request
                  pipeline must be >= ``min_replay_speedup`` x faster than
                  re-registering its dependences every iteration. Measured
                  single-threaded: the gate isolates the per-iteration
                  rebuild cost (frontier hashing, dep-state allocation,
                  release-list pushes) from scheduler latency, which a
                  loaded CI host would otherwise fold into both sides
  "replay"      — cross-calibration gate: the simulator's best-fit replay
                  of a trace recorded from the real runtime must land
                  within ``max_makespan_err`` (relative) of the measured
                  real-replay makespan, with the sorted per-worker
                  busy-share distribution within ``max_busy_err``. Both
                  are within-run comparisons of the same trace, so the
                  gate needs no per-host calibration

``--gate-bots`` / ``--gate-serve`` / ``--gate-graph`` / ``--gate-replay``
run those sections standalone against a fresh trimmed run — CI's
perf-smoke and trace-replay jobs chain them after ``--smoke``.

``--task-plot [SVG]`` records a fresh trace through ``bench_replay
--trace-out`` and renders its per-worker execution timeline with
``tools/task_plot.py`` (pass an existing trace with ``--trace``).

Usage:
  python3 bench/run_bench.py [--build-dir build] [--threads 4] [--reps 3]
  python3 bench/run_bench.py --smoke
  python3 bench/run_bench.py --gate-bots --gate-serve --gate-graph
  python3 bench/run_bench.py --gate-replay
  python3 bench/run_bench.py --task-plot task_timeline.svg
"""

from __future__ import annotations

import argparse
import datetime as _dt
import json
import pathlib
import re
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
FLOOR_FILE = pathlib.Path(__file__).resolve().parent / "perf_floor.json"

# Benchmarks exercised by the smoke gate: the hot-path primitives this
# reproduction's performance story rests on (allocator churn, queue ops,
# occupancy probes). Keys must match google-benchmark's reported names.
SMOKE_BENCHES = [
    "BM_BQueuePushPop",
    "BM_BQueueBatchPushPop/32",
    "BM_BQueueSizeApprox",
    "BM_XQueuePushPopSelf/4",
    "BM_XQueueOccupancyMask/4",
    "BM_AllocatorMultiLevel",
    "AllocatorChurn/SharedPool/real_time/threads:1",
    "AllocatorChurn/SharedPool/real_time/threads:4",
]


def _now() -> str:
    return _dt.datetime.now(_dt.timezone.utc).isoformat(timespec="seconds")


def _run(cmd: list[str], timeout: int) -> str:
    proc = subprocess.run(
        cmd, capture_output=True, text=True, timeout=timeout, check=False
    )
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise SystemExit(f"command failed ({proc.returncode}): {' '.join(cmd)}")
    return proc.stdout


def _threads_of(name: str) -> int:
    m = re.search(r"/threads:(\d+)$", name)
    return int(m.group(1)) if m else 1


def run_primitives(build_dir: pathlib.Path, min_time: float,
                   bench_filter: str | None) -> list[dict]:
    binary = build_dir / "bench" / "micro_primitives"
    if not binary.exists():
        raise SystemExit(f"missing {binary}; build the repo first")
    cmd = [
        str(binary),
        "--benchmark_format=json",
        f"--benchmark_min_time={min_time}",
    ]
    if bench_filter:
        cmd.append(f"--benchmark_filter={bench_filter}")
    raw = json.loads(_run(cmd, timeout=1800))
    stamp = _now()
    records = []
    for b in raw.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        # google-benchmark reports per-iteration real time in `time_unit`s;
        # normalize to nanoseconds per iteration.
        unit = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[b["time_unit"]]
        records.append({
            "bench": b["name"],
            "config": "xtask",
            "threads": _threads_of(b["name"]),
            "ns_per_op": b["real_time"] * unit,
            "timestamp": stamp,
        })
    return records


def list_bots_configs(build_dir: pathlib.Path) -> dict[str, str]:
    """Config list from the binary's registry (``--list-configs``): the
    single source of truth for which runtime configurations the protocol
    compares. Returns {name: backend spec}."""
    binary = build_dir / "bench" / "bench_bots"
    if not binary.exists():
        raise SystemExit(f"missing {binary}; build the repo first")
    configs = {}
    for line in _run([str(binary), "--list-configs"], timeout=60).splitlines():
        name, _, spec = line.strip().partition("\t")
        if name:
            configs[name] = spec
    if not configs:
        raise SystemExit("bench_bots --list-configs returned no configs")
    return configs


def run_bots(build_dir: pathlib.Path, threads: int, reps: int) -> list[dict]:
    binary = build_dir / "bench" / "bench_bots"
    configs = list_bots_configs(build_dir)
    stamp = _now()
    records = []
    for line in _run([str(binary), str(threads), str(reps)],
                     timeout=3600).splitlines():
        line = line.strip()
        if not line.startswith("{"):
            continue
        rec = json.loads(line)
        rec["timestamp"] = stamp
        rec["spec"] = configs.get(rec.get("config", ""), "")
        records.append(rec)
    # Every registered config must have produced at least one record —
    # a silently skipped column would corrupt the comparison.
    seen = {r["config"] for r in records}
    missing = sorted(set(configs) - seen)
    if missing:
        raise SystemExit(f"bench_bots produced no records for: {missing}")
    return records


def run_serve(build_dir: pathlib.Path, seconds: float,
              seed: int) -> list[dict]:
    """Overload experiment: bench_serve sweeps 0.5x/1.0x/2.0x of its
    calibrated sustainable rate with bursty open-loop arrivals and reports
    per-phase goodput + latency percentiles. ``--check`` makes accounting
    violations fatal, so a corrupt run raises instead of writing JSON."""
    binary = build_dir / "bench" / "bench_serve"
    if not binary.exists():
        raise SystemExit(f"missing {binary}; build the repo first")
    stamp = _now()
    records = []
    # Two sweeps into one stream: the in-process overload phases, then the
    # cross-process (shm transport) comparison — records carry a
    # "transport" field and the ipc run adds a serve_ipc_summary record
    # with the cross-process/in-process goodput ratio.
    for extra in ([], ["--transport", "ipc"]):
        out = _run([str(binary), "--seconds", str(seconds),
                    "--seed", str(seed), "--check"] + extra, timeout=600)
        for line in out.splitlines():
            line = line.strip()
            if not line.startswith("{"):
                continue
            rec = json.loads(line)
            rec["timestamp"] = stamp
            records.append(rec)
    phases = {r.get("phase") for r in records if r.get("bench") == "serve"}
    missing = {"0.5x", "1.0x", "2.0x", "ipc-1.0x"} - phases
    if missing:
        raise SystemExit(f"bench_serve produced no records for: "
                         f"{sorted(missing)}")
    return records


def run_graph(build_dir: pathlib.Path, iters: int) -> list[dict]:
    """Graph capture/replay experiment: the request-pipeline rebuild-vs-
    replay comparison plus sparselu/strassen as dependency graphs, with
    ``--check`` making exact-equality violations fatal. Single-threaded on
    purpose — see the "graph" section note in the module docstring."""
    binary = build_dir / "bench" / "bench_graph"
    if not binary.exists():
        raise SystemExit(f"missing {binary}; build the repo first")
    stamp = _now()
    records = []
    out = _run([str(binary), "--threads", "1", "--iters", str(iters),
                "--check"], timeout=600)
    for line in out.splitlines():
        line = line.strip()
        if not line.startswith("{"):
            continue
        rec = json.loads(line)
        rec["timestamp"] = stamp
        records.append(rec)
    have = {(r["bench"], r["config"]) for r in records}
    need = {("graph_pipeline", "rebuild"), ("graph_pipeline", "replay"),
            ("graph_pipeline", "speedup"), ("sparselu_graph", "replay"),
            ("strassen_graph", "replay")}
    missing = need - have
    if missing:
        raise SystemExit(f"bench_graph produced no records for: "
                         f"{sorted(missing)}")
    return records


def run_replay(build_dir: pathlib.Path, reps: int,
               trace_out: pathlib.Path | None = None) -> list[dict]:
    """Cross-calibration experiment: bench_replay records a reference
    workload on the real runtime, replays the trace on both executors, and
    fits the simulator's overhead multiplier. ``--check`` makes trace
    validation and exact-count violations fatal, so a corrupt run raises
    instead of writing JSON."""
    binary = build_dir / "bench" / "bench_replay"
    if not binary.exists():
        raise SystemExit(f"missing {binary}; build the repo first")
    stamp = _now()
    cmd = [str(binary), "--reps", str(reps), "--check"]
    if trace_out is not None:
        cmd += ["--trace-out", str(trace_out)]
    records = []
    for line in _run(cmd, timeout=600).splitlines():
        line = line.strip()
        if not line.startswith("{"):
            continue
        rec = json.loads(line)
        rec["timestamp"] = stamp
        records.append(rec)
    if not any(r.get("bench") == "replay_calibration" for r in records):
        raise SystemExit("bench_replay produced no calibration summary")
    return records


def load_floors() -> dict:
    """Floor file with all three gate sections. A legacy flat file —
    every top-level value numeric — is promoted to {"primitives": ...} so
    older checkouts keep gating."""
    if not FLOOR_FILE.exists():
        return {}
    raw = json.loads(FLOOR_FILE.read_text())
    if raw and all(isinstance(v, (int, float)) for v in raw.values()):
        return {"primitives": raw}
    return raw


def check_floor(records: list[dict], factor: float) -> int:
    floors = load_floors().get("primitives")
    if not floors:
        print(f"no primitives section in {FLOOR_FILE.name}; skipping gate")
        return 0
    by_name = {r["bench"]: r for r in records}
    failures = 0
    for name, floor_ns in sorted(floors.items()):
        rec = by_name.get(name)
        if rec is None:
            print(f"FAIL {name}: benchmark missing from run")
            failures += 1
            continue
        got = rec["ns_per_op"]
        limit = floor_ns * factor
        verdict = "ok" if got <= limit else "FAIL"
        print(f"{verdict:4s} {name}: {got:.1f} ns/op "
              f"(floor {floor_ns:.1f}, limit {limit:.1f})")
        if got > limit:
            failures += 1
    return failures


def check_bots_ratio(records: list[dict]) -> int:
    """End-to-end real-thread gate: the watched config (the adaptive
    dispatch build) must stay within ``max_ratio`` of the baseline runtime
    per kernel. Ratios compare two configs measured in the same run on the
    same host, so no noise factor is applied beyond the checked-in slack."""
    gate = load_floors().get("bots")
    if not gate:
        print(f"no bots section in {FLOOR_FILE.name}; skipping gate")
        return 0
    watched = gate["config"]
    baseline = gate["baseline"]
    ms = {(r["bench"], r["config"]): r["ms"] for r in records}
    failures = 0
    for bench, max_ratio in sorted(gate["max_ratio"].items()):
        base = ms.get((bench, baseline))
        got = ms.get((bench, watched))
        if base is None or got is None:
            print(f"FAIL bots/{bench}: missing record "
                  f"({baseline}={base}, {watched}={got})")
            failures += 1
            continue
        ratio = got / base
        verdict = "ok" if ratio <= max_ratio else "FAIL"
        print(f"{verdict:4s} bots/{bench}: {watched} {got:.1f} ms vs "
              f"{baseline} {base:.1f} ms = {ratio:.2f}x "
              f"(max {max_ratio:.2f}x)")
        if ratio > max_ratio:
            failures += 1
    return failures


def check_serve_goodput(records: list[dict]) -> int:
    """Overload gate: sustainable-load goodput must track the offered rate,
    and 2x overload must degrade gracefully relative to 1x — both are
    within-run ratios, robust to host speed."""
    gate = load_floors().get("serve")
    if not gate:
        print(f"no serve section in {FLOOR_FILE.name}; skipping gate")
        return 0
    by_phase = {r["phase"]: r for r in records if r.get("bench") == "serve"
                and r.get("transport", "inproc") == "inproc"}
    failures = 0
    p1 = by_phase.get("1.0x")
    p2 = by_phase.get("2.0x")
    if p1 is None or p2 is None:
        print(f"FAIL serve: missing phases (have {sorted(by_phase)})")
        return 1
    frac_1x = p1["goodput_rps"] / p1["offered_rps"]
    floor_1x = gate["min_goodput_frac_1x"]
    verdict = "ok" if frac_1x >= floor_1x else "FAIL"
    print(f"{verdict:4s} serve/1.0x: goodput {p1['goodput_rps']:.0f} rps = "
          f"{frac_1x:.2f} of offered (floor {floor_1x:.2f})")
    failures += frac_1x < floor_1x
    frac_2x = p2["goodput_rps"] / max(p1["goodput_rps"], 1.0)
    floor_2x = gate["min_2x_goodput_vs_1x"]
    verdict = "ok" if frac_2x >= floor_2x else "FAIL"
    print(f"{verdict:4s} serve/2.0x: goodput {p2['goodput_rps']:.0f} rps = "
          f"{frac_2x:.2f} of 1.0x goodput (floor {floor_2x:.2f})")
    failures += frac_2x < floor_2x
    # Cross-process transport gate: the shm transport's goodput at 1.0x
    # must stay within 1.5x of the in-process path (ratio >= 2/3), from the
    # serve_ipc_summary record of the same run — a within-run ratio, so no
    # host-speed noise factor applies.
    floor_ipc = gate.get("min_ipc_vs_inproc_goodput")
    ipc_sum = next((r for r in records
                    if r.get("bench") == "serve_ipc_summary"), None)
    if floor_ipc is not None:
        if ipc_sum is None:
            print("FAIL serve/ipc: no serve_ipc_summary record")
            failures += 1
        else:
            ratio = ipc_sum["ipc_vs_inproc_goodput"]
            verdict = "ok" if ratio >= floor_ipc else "FAIL"
            print(f"{verdict:4s} serve/ipc: cross-process goodput = "
                  f"{ratio:.2f} of in-process (floor {floor_ipc:.2f})")
            failures += ratio < floor_ipc
    return failures


def check_graph_speedup(records: list[dict]) -> int:
    """Capture/replay gate: the recorded pipeline's replay throughput must
    beat per-iteration dependence rebuild by the checked-in factor — a
    within-run ratio on the same host, so no noise factor applies."""
    gate = load_floors().get("graph")
    if not gate:
        print(f"no graph section in {FLOOR_FILE.name}; skipping gate")
        return 0
    speedup = next((r["speedup"] for r in records
                    if r.get("bench") == "graph_pipeline"
                    and r.get("config") == "speedup"), None)
    if speedup is None:
        print("FAIL graph: no speedup record in run")
        return 1
    floor = gate["min_replay_speedup"]
    verdict = "ok" if speedup >= floor else "FAIL"
    print(f"{verdict:4s} graph/pipeline: replay {speedup:.2f}x rebuild "
          f"(floor {floor:.2f}x)")
    return int(speedup < floor)


def check_replay_error(records: list[dict]) -> int:
    """Cross-calibration gate: the best-fit sim replay must track the real
    replay of the same trace within the checked-in relative error — a
    within-run comparison on the same host, so no noise factor applies."""
    gate = load_floors().get("replay")
    if not gate:
        print(f"no replay section in {FLOOR_FILE.name}; skipping gate")
        return 0
    summary = next((r for r in records
                    if r.get("bench") == "replay_calibration"), None)
    if summary is None:
        print("FAIL replay: no replay_calibration record in run")
        return 1
    failures = 0
    err = summary["makespan_err"]
    ceil = gate["max_makespan_err"]
    verdict = "ok" if err <= ceil else "FAIL"
    print(f"{verdict:4s} replay/makespan: sim {summary['sim_ms']:.3f} ms vs "
          f"real {summary['real_ms']:.3f} ms = {err:.1%} error "
          f"(max {ceil:.0%}, overhead_mult {summary['overhead_mult']:.2f})")
    failures += err > ceil
    busy_ceil = gate.get("max_busy_err")
    if busy_ceil is not None:
        busy = summary["busy_err"]
        verdict = "ok" if busy <= busy_ceil else "FAIL"
        print(f"{verdict:4s} replay/busy-share: {busy:.1%} mean deviation "
              f"(max {busy_ceil:.0%})")
        failures += busy > busy_ceil
    return failures


def task_plot(build_dir: pathlib.Path, out_svg: pathlib.Path,
              trace: pathlib.Path | None, reps: int) -> int:
    """Render a per-worker execution timeline. Without ``--trace``, record
    a fresh one through bench_replay --trace-out first."""
    if trace is None:
        trace = REPO_ROOT / "BENCH_replay_trace.jsonl"
        run_replay(build_dir, reps, trace_out=trace)
        print(f"wrote {trace.name}")
    _run([sys.executable, str(REPO_ROOT / "tools" / "task_plot.py"),
          str(trace), "-o", str(out_svg)], timeout=120)
    print(f"wrote {out_svg}")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build-dir", default="build", type=pathlib.Path)
    ap.add_argument("--threads", default=4, type=int)
    ap.add_argument("--reps", default=3, type=int)
    ap.add_argument("--min-time", default=0.2, type=float,
                    help="google-benchmark min seconds per benchmark")
    ap.add_argument("--smoke", action="store_true",
                    help="quick pass + perf_floor.json regression gate; "
                    "skips the BOTS matrix and writes no JSON files")
    ap.add_argument("--smoke-factor", default=3.0, type=float,
                    help="fail the smoke gate only above floor*factor")
    ap.add_argument("--gate-bots", action="store_true",
                    help="trimmed bench_bots run + adaptive-vs-baseline "
                    "ratio gate; writes no JSON files")
    ap.add_argument("--gate-serve", action="store_true",
                    help="trimmed bench_serve run + goodput gate; writes "
                    "no JSON files")
    ap.add_argument("--gate-graph", action="store_true",
                    help="trimmed bench_graph run + replay-speedup gate; "
                    "writes no JSON files")
    ap.add_argument("--gate-replay", action="store_true",
                    help="bench_replay cross-calibration run + sim-vs-real "
                    "makespan-error gate; writes no JSON files")
    ap.add_argument("--task-plot", nargs="?", const="task_timeline.svg",
                    metavar="SVG",
                    help="render a per-worker execution timeline SVG from "
                    "a recorded trace (records a fresh one unless --trace "
                    "is given), then exit")
    ap.add_argument("--trace", type=pathlib.Path,
                    help="existing trace file for --task-plot")
    ap.add_argument("--graph-iters", default=150, type=int,
                    help="pipeline iterations per bench_graph config")
    ap.add_argument("--serve-seconds", default=3.0, type=float,
                    help="seconds per bench_serve load phase")
    ap.add_argument("--serve-seed", default=42, type=int)
    args = ap.parse_args()

    build_dir = args.build_dir
    if not build_dir.is_absolute():
        build_dir = REPO_ROOT / build_dir

    if args.task_plot is not None:
        return task_plot(build_dir, pathlib.Path(args.task_plot),
                         args.trace, reps=max(args.reps, 2))

    if (args.smoke or args.gate_bots or args.gate_serve or args.gate_graph
            or args.gate_replay):
        failures = 0
        if args.smoke:
            pattern = "|".join(re.escape(n) for n in SMOKE_BENCHES)
            records = run_primitives(build_dir, min_time=0.05,
                                     bench_filter=pattern)
            failures += check_floor(records, args.smoke_factor)
        if args.gate_bots:
            failures += check_bots_ratio(
                run_bots(build_dir, args.threads, reps=max(args.reps, 2)))
        if args.gate_serve:
            failures += check_serve_goodput(
                run_serve(build_dir, min(args.serve_seconds, 2.0),
                          args.serve_seed))
        if args.gate_graph:
            failures += check_graph_speedup(
                run_graph(build_dir, args.graph_iters))
        if args.gate_replay:
            failures += check_replay_error(
                run_replay(build_dir, reps=max(args.reps, 3)))
        if failures:
            print(f"{failures} perf gate failure(s)")
            return 1
        print("perf gates passed")
        return 0

    primitives = run_primitives(build_dir, args.min_time, None)
    (REPO_ROOT / "BENCH_primitives.json").write_text(
        json.dumps(primitives, indent=2) + "\n")
    print(f"wrote BENCH_primitives.json ({len(primitives)} records)")

    bots = run_bots(build_dir, args.threads, args.reps)
    (REPO_ROOT / "BENCH_bots.json").write_text(
        json.dumps(bots, indent=2) + "\n")
    print(f"wrote BENCH_bots.json ({len(bots)} records)")

    serve = run_serve(build_dir, args.serve_seconds, args.serve_seed)
    (REPO_ROOT / "BENCH_serve.json").write_text(
        json.dumps(serve, indent=2) + "\n")
    print(f"wrote BENCH_serve.json ({len(serve)} records)")

    graph = run_graph(build_dir, args.graph_iters)
    (REPO_ROOT / "BENCH_graph.json").write_text(
        json.dumps(graph, indent=2) + "\n")
    print(f"wrote BENCH_graph.json ({len(graph)} records)")

    replay = run_replay(build_dir, args.reps,
                        trace_out=REPO_ROOT / "BENCH_replay_trace.jsonl")
    (REPO_ROOT / "BENCH_replay.json").write_text(
        json.dumps(replay, indent=2) + "\n")
    print(f"wrote BENCH_replay.json ({len(replay)} records)")

    # Full runs gate too: a protocol run that regressed the adaptive
    # ratio, overload goodput, replay speedup, or sim↔real calibration
    # should not silently refresh the JSONs.
    failures = (check_bots_ratio(bots) + check_serve_goodput(serve) +
                check_graph_speedup(graph) + check_replay_error(replay))
    if failures:
        print(f"{failures} perf gate failure(s)")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
