// Reproduces Fig. 1: execution times of the BOTS benchmarks under GOMP,
// LOMP, and XLOMP with 192 threads, showing the orders-of-magnitude gap
// between GNU's global-lock runtime and the LLVM-style runtimes.
//
// Paper shape to reproduce: GOMP is up to >1000x slower than LOMP and
// >4400x slower than XLOMP on the fine-grained benchmarks (Fib, NQueens,
// FP, UTS); the gap narrows to ~1x for the coarsest (Align).
#include "bench_util.hpp"

using namespace xbench;

int main() {
  print_header("Fig. 1 — BOTS execution time: GOMP vs LOMP vs XLOMP",
               "192 simulated cores, 8 NUMA zones; sweep-scale inputs "
               "(EXPERIMENTS.md maps scales). Times in simulated seconds "
               "@2.1 GHz.");
  std::printf("%-10s %12s %12s %12s %12s %12s\n", "app", "GOMP(s)",
              "LOMP(s)", "XLOMP(s)", "GOMP/LOMP", "GOMP/XLOMP");
  for (const auto& wl : xtask::sim::bots_suite(Scale::kSweep)) {
    const auto gomp = simulate(paper_machine(SimPolicy::kGomp), wl);
    const auto lomp = simulate(paper_machine(SimPolicy::kLomp), wl);
    const auto xlomp = simulate(paper_machine(SimPolicy::kXlomp), wl);
    std::printf("%-10s %12.4f %12.4f %12.4f %11.1fx %11.1fx\n",
                wl.name.c_str(), gomp.seconds(), lomp.seconds(),
                xlomp.seconds(),
                static_cast<double>(gomp.makespan) /
                    static_cast<double>(lomp.makespan),
                static_cast<double>(gomp.makespan) /
                    static_cast<double>(xlomp.makespan));
  }
  return 0;
}
