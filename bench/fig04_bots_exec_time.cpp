// Reproduces Fig. 4: absolute execution time of the nine BOTS benchmarks
// (ordered by task size, small to large) under all five runtimes.
//
// Paper shape: every XQueue-based runtime and LOMP is orders of magnitude
// faster than GOMP. LOMP/XLOMP win the task-creation-bound apps (Fib,
// NQueens, FP, Health, UTS — multi-level allocator); XGOMP/XGOMPTB win the
// execution-bound apps (FFT, STRAS, Sort, Align — allocator benefit fades
// and LOMP's buffer stealing costs locality).
#include "bench_util.hpp"

using namespace xbench;

int main() {
  print_header("Fig. 4 — BOTS execution time, all runtimes",
               "192 simulated cores; simulated seconds @2.1 GHz; apps in "
               "task-size order.");
  constexpr SimPolicy kPolicies[] = {SimPolicy::kGomp, SimPolicy::kXGomp,
                                     SimPolicy::kXGompTB, SimPolicy::kLomp,
                                     SimPolicy::kXlomp};
  std::printf("%-10s", "app");
  for (SimPolicy p : kPolicies) std::printf(" %11s", sim_policy_name(p));
  std::printf("\n");
  for (const auto& wl : xtask::sim::bots_suite(Scale::kSweep)) {
    std::printf("%-10s", wl.name.c_str());
    for (SimPolicy p : kPolicies) {
      const auto res = simulate(paper_machine(p), wl);
      std::printf(" %11.4f", res.seconds());
    }
    std::printf("\n");
  }
  return 0;
}
