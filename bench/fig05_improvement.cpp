// Reproduces Fig. 5: performance improvement of XGOMP and XGOMPTB over
// GOMP per BOTS application (192 threads).
//
// Paper shape: improvements up to 96.5x (XGOMP) and 1522.8x (XGOMPTB);
// small-task apps (Fib, NQueens, FP) benefit most from the tree barrier,
// large-task apps (Align) least.
#include "bench_util.hpp"

using namespace xbench;

int main() {
  print_header("Fig. 5 — XGOMP / XGOMPTB improvement over GOMP",
               "192 simulated cores; ratio of simulated makespans "
               "(higher is better).");
  std::printf("%-10s %14s %14s %18s\n", "app", "XGOMP/GOMP(x)",
              "XGOMPTB/GOMP(x)", "TB extra over XGOMP");
  double max_xgomp = 0;
  double max_tb = 0;
  for (const auto& wl : xtask::sim::bots_suite(Scale::kSweep)) {
    const auto gomp = simulate(paper_machine(SimPolicy::kGomp), wl);
    const auto xgomp = simulate(paper_machine(SimPolicy::kXGomp), wl);
    const auto tb = simulate(paper_machine(SimPolicy::kXGompTB), wl);
    const double r1 = static_cast<double>(gomp.makespan) /
                      static_cast<double>(xgomp.makespan);
    const double r2 = static_cast<double>(gomp.makespan) /
                      static_cast<double>(tb.makespan);
    std::printf("%-10s %13.1fx %14.1fx %17.1fx\n", wl.name.c_str(), r1, r2,
                r2 / r1);
    max_xgomp = std::max(max_xgomp, r1);
    max_tb = std::max(max_tb, r2);
  }
  std::printf("\nmax improvement: XGOMP %.1fx, XGOMPTB %.1fx "
              "(paper: 96.5x / 1522.8x at full input scale)\n",
              max_xgomp, max_tb);
  return 0;
}
