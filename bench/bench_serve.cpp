// Open-loop bursty load generator for the task-service front-end
// (src/serve): the overload experiment behind DESIGN.md's "Overload
// control" section. A seeded arrival process (exponential inter-arrival
// times modulated by a square-wave burst factor) drives a multi-tenant
// mix into a TaskService at 0.5x / 1.0x / 2.0x of a calibrated
// sustainable rate, reporting per-phase goodput and accepted-request
// latency percentiles (p50/p99/p999) as JSON lines.
//
// The interesting claim is the 2.0x phase: a service WITHOUT admission
// control melts there (unbounded queues, seconds of latency, zero
// goodput headroom); this one must keep p99 within a small multiple of
// the uncontended value and goodput within 10% of the 1.0x plateau while
// every request is accounted (executed + shed + rejected == submitted).
//
//   bench_serve [--seconds S] [--seed N] [--work-us U] [--burst B]
//               [--spec "xtask:..."] [--phases all|2x] [--check]
//               [--check-slo] [--transport inproc|ipc]
//
// --check makes accounting violations and hangs a nonzero exit (the CI
// overload-soak gate); --check-slo additionally enforces the p99 and
// goodput ratios (local tuning, too machine-sensitive for shared CI).
//
// --transport ipc swaps the experiment: after calibration it runs ONE
// 1.0x in-process phase as the reference, then the same offered load
// through the shared-memory transport (src/serve/ipc) with one real
// child process per tenant (fork+exec of this binary in a hidden
// --ipc-child mode) submitting at the tenant's share of the rate. Both
// phases land in the JSON stream ("transport" field) plus a
// serve_ipc_summary record with the cross-process/in-process goodput
// ratio — the transport's overhead, measured end to end. Latency for the
// ipc phase is recorded server-side from the client's submit stamp (both
// sides share CLOCK_MONOTONIC).
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <functional>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/common.hpp"
#include "registry/registry.hpp"
#include "serve/ipc/client.hpp"
#include "serve/ipc/server.hpp"
#include "serve/service.hpp"

namespace {

using xtask::XorShift;
using xtask::serve::Request;
using xtask::serve::ServeConfig;
using xtask::serve::Submit;
using xtask::serve::SubmitStatus;
using xtask::serve::TaskService;
using xtask::serve::TenantStats;
using xtask::TenantSpec;

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// --- latency histogram ----------------------------------------------------
// Log-linear buckets: 16 sub-buckets per octave of nanoseconds, 64
// octaves. ~6% relative resolution, wait-free concurrent recording.

constexpr int kSubBits = 4;
constexpr int kBuckets = 64 << kSubBits;
std::atomic<std::uint64_t> g_hist[kBuckets];
std::atomic<std::uint64_t> g_completed{0};

int bucket_of(std::uint64_t ns) {
  if (ns < (1u << kSubBits)) return static_cast<int>(ns);
  const int exp = 63 - __builtin_clzll(ns);
  const int sub = static_cast<int>((ns >> (exp - kSubBits)) & ((1 << kSubBits) - 1));
  return ((exp - kSubBits + 1) << kSubBits) | sub;
}

double bucket_value_ns(int b) {
  const int exp = (b >> kSubBits) + kSubBits - 1;
  const int sub = b & ((1 << kSubBits) - 1);
  if (exp < kSubBits) return b;  // the linear region
  return std::ldexp(1.0 + (sub + 0.5) / (1 << kSubBits), exp);
}

void hist_reset() {
  for (auto& h : g_hist) h.store(0, std::memory_order_relaxed);
  g_completed.store(0, std::memory_order_relaxed);
}

double hist_percentile(double p) {
  const std::uint64_t total = g_completed.load(std::memory_order_relaxed);
  if (total == 0) return 0.0;
  const auto target = static_cast<std::uint64_t>(p * static_cast<double>(total));
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += g_hist[b].load(std::memory_order_relaxed);
    if (seen > target) return bucket_value_ns(b);
  }
  return bucket_value_ns(kBuckets - 1);
}

// --- the request body -----------------------------------------------------

std::uint64_t g_work_ns = 2000;

void serve_request(const Request& req) {
  const std::uint64_t start = now_ns();
  g_hist[bucket_of(start - req.t_submit_ns)].fetch_add(
      1, std::memory_order_relaxed);
  g_completed.fetch_add(1, std::memory_order_relaxed);
  // Synthetic work: spin for the configured service time.
  while (now_ns() - start < g_work_ns) xtask::cpu_pause();
}

// --- the load generator ---------------------------------------------------

struct PhaseResult {
  std::string name;
  std::string transport = "inproc";
  double offered_rps = 0;
  double goodput_rps = 0;
  double duration_s = 0;
  double p50_us = 0, p99_us = 0, p999_us = 0;
  TenantStats totals;
  bool accounting_ok = false;
};

struct Options {
  std::string spec = "xtask:dlb=naws,tint=128";
  std::string transport = "inproc";  // or "ipc"
  double seconds = 2.0;
  std::uint64_t seed = 42;
  double burst = 3.0;       // square-wave peak multiplier
  double burst_duty = 0.25; // fraction of each period spent at the peak
  double burst_period_s = 0.2;
  bool phases_all = true;   // false: only the 2.0x soak phase
  bool check = false;
  bool check_slo = false;
};

// The multi-tenant mix: shares of the offered load, distinct priorities
// (bulk is the shed-first class).
struct Mix {
  const char* name;
  double share;
  int prio;
};
constexpr Mix kMix[] = {
    {"interactive", 0.5, 5}, {"standard", 0.3, 3}, {"bulk", 0.2, 0}};
constexpr int kTenants = static_cast<int>(sizeof(kMix) / sizeof(kMix[0]));

std::vector<TenantSpec> make_tenants(double total_rate) {
  std::vector<TenantSpec> out;
  for (const Mix& m : kMix) {
    TenantSpec t;
    t.name = m.name;
    t.rate = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(total_rate * m.share));
    t.quota = std::max<std::uint64_t>(64, t.rate);  // rings/queues backstop
    t.burst = std::max<std::uint64_t>(4, t.rate / 50);
    t.priority = m.prio;
    out.push_back(t);
  }
  return out;
}

/// Open-loop arrivals for `seconds`: exponential inter-arrival times at a
/// square-wave-modulated rate. Open loop means rejected requests are NOT
/// retried and arrivals never wait for completions — exactly the regime
/// where a service without admission control builds an unbounded backlog.
PhaseResult run_phase(const Options& opt, const std::string& name,
                      double offered_rps, double sustainable_rps) {
  hist_reset();
  ServeConfig cfg;
  cfg.runtime_spec = opt.spec;
  cfg.tenants = make_tenants(sustainable_rps);
  TaskService svc(std::move(cfg));

  XorShift rng(opt.seed ^ std::hash<std::string>{}(name));
  // Normalize the square wave so the mean offered rate stays offered_rps:
  // peak = burst x base during `duty`, trough covers the remainder.
  const double duty = opt.burst_duty;
  const double peak = offered_rps * opt.burst;
  const double trough =
      std::max(0.0, offered_rps * (1.0 - opt.burst * duty) / (1.0 - duty));
  const std::uint64_t period_ns =
      static_cast<std::uint64_t>(opt.burst_period_s * 1e9);

  const std::uint64_t t0 = now_ns();
  const std::uint64_t t_end =
      t0 + static_cast<std::uint64_t>(opt.seconds * 1e9);
  std::uint64_t next_arrival = t0;
  std::uint64_t submitted = 0;
  while (true) {
    const std::uint64_t now = now_ns();
    if (now >= t_end) break;
    if (now < next_arrival) {
      const std::uint64_t wait = next_arrival - now;
      if (wait > 200'000) {
        std::this_thread::sleep_for(
            std::chrono::nanoseconds(wait - 100'000));
      } else {
        std::this_thread::yield();
      }
      continue;
    }
    // Submit EVERY arrival that is due by now (bounded per poll so the
    // clock stays fresh): open loop means arrivals happen on schedule
    // whether or not the service — or this generator thread — kept up.
    for (int due = 0; due < 256 && next_arrival <= now; ++due) {
      const double u = rng.uniform();
      int tenant = kTenants - 1;
      double acc = 0.0;
      for (int t = 0; t < kTenants; ++t) {
        acc += kMix[t].share;
        if (u < acc) {
          tenant = t;
          break;
        }
      }
      Request r;
      r.fn = serve_request;
      r.a = submitted;
      (void)svc.submit(tenant, r);
      ++submitted;

      const bool in_burst =
          (next_arrival - t0) % period_ns <
          static_cast<std::uint64_t>(duty * period_ns);
      const double rate = in_burst ? peak : trough;
      if (rate <= 0.0) {
        // Trough is empty: jump to the next burst window.
        const std::uint64_t pos = (next_arrival - t0) % period_ns;
        next_arrival += period_ns - pos;
      } else {
        const double gap_s = -std::log(1.0 - rng.uniform()) / rate;
        next_arrival +=
            static_cast<std::uint64_t>(std::min(gap_s, 0.1) * 1e9) + 1;
      }
    }
  }
  svc.stop();

  PhaseResult res;
  res.name = name;
  res.offered_rps = offered_rps;
  res.duration_s = static_cast<double>(now_ns() - t0) / 1e9;
  res.totals = svc.totals();
  res.goodput_rps =
      static_cast<double>(res.totals.executed) / res.duration_s;
  res.p50_us = hist_percentile(0.50) / 1e3;
  res.p99_us = hist_percentile(0.99) / 1e3;
  res.p999_us = hist_percentile(0.999) / 1e3;
  res.accounting_ok =
      res.totals.submitted == res.totals.executed + res.totals.shed +
                                  res.totals.rejected + res.totals.orphaned &&
      res.totals.in_flight == 0 &&
      res.totals.submitted == submitted;
  return res;
}

/// Calibrate the sustainable executed-request rate: unlimited admission,
/// tight-loop submission, measure what actually completes per second.
double calibrate(const Options& opt) {
  hist_reset();
  ServeConfig cfg;
  cfg.runtime_spec = opt.spec;
  cfg.tenants = make_tenants(1e9);
  TaskService svc(std::move(cfg));
  const std::uint64_t t0 = now_ns();
  const std::uint64_t t_end = t0 + 600'000'000ull;  // 0.6 s
  std::uint64_t i = 0;
  while (now_ns() < t_end) {
    Request r;
    r.fn = serve_request;
    const Submit s = svc.submit(static_cast<int>(i % kTenants), r);
    ++i;
    // Open the loop just enough to keep the ring from being the limiter.
    if (s.status != SubmitStatus::kAccepted) std::this_thread::yield();
  }
  svc.stop();
  const double dt = static_cast<double>(now_ns() - t0) / 1e9;
  const double rate = static_cast<double>(svc.totals().executed) / dt;
  return std::max(rate, 100.0);
}

// --- the ipc (cross-process) phase ----------------------------------------

/// Server-side request body for the ipc phase: same synthetic spin as
/// serve_request, latency measured from the CLIENT's submit stamp (both
/// processes share CLOCK_MONOTONIC), so the recorded percentiles include
/// the transport hop.
std::uint64_t ipc_handler(std::uint32_t, std::uint64_t arg,
                          std::uint64_t t_submit_ns) {
  const std::uint64_t start = now_ns();
  g_hist[bucket_of(start - t_submit_ns)].fetch_add(
      1, std::memory_order_relaxed);
  g_completed.fetch_add(1, std::memory_order_relaxed);
  while (now_ns() - start < g_work_ns) xtask::cpu_pause();
  return arg;
}

/// The hidden --ipc-child body: one external loadgen process submitting
/// open-loop exponential arrivals at `rps` as `tenant`. Arrivals that
/// cannot be submitted within a short deadline are dropped, not retried —
/// same open-loop regime as run_phase. Silent on stdout (the parent owns
/// the JSON stream).
int run_ipc_child(const std::string& spec_str, int tenant, double rps,
                  double seconds, std::uint64_t seed) {
  xtask::TransportSpec tspec;
  try {
    tspec = xtask::TransportSpec::parse(spec_str);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ipc-child: bad spec: %s\n", e.what());
    return 3;
  }
  xtask::ipc::Client c;
  xtask::ipc::Client::Options copt;
  copt.backoff_seed = seed;
  if (c.connect(tspec, static_cast<std::uint32_t>(tenant), copt) !=
      xtask::ipc::ClientStatus::kOk) {
    std::fprintf(stderr, "ipc-child: connect failed\n");
    return 3;
  }
  XorShift rng(seed);
  xtask::ipc::CmplPayload cmpl[64];
  const std::uint64_t t0 = now_ns();
  const std::uint64_t t_end = t0 + static_cast<std::uint64_t>(seconds * 1e9);
  std::uint64_t next_arrival = t0;
  std::uint64_t id = 0;
  while (now_ns() < t_end) {
    const std::uint64_t now = now_ns();
    if (now < next_arrival) {
      const std::uint64_t wait = next_arrival - now;
      if (wait > 200'000) {
        std::this_thread::sleep_for(std::chrono::nanoseconds(wait - 100'000));
      } else {
        std::this_thread::yield();
      }
      continue;
    }
    for (int due = 0; due < 256 && next_arrival <= now; ++due) {
      (void)c.submit(0, id, id, now + 5'000'000);  // 5 ms, then drop
      ++id;
      const double gap_s = -std::log(1.0 - rng.uniform()) / rps;
      next_arrival +=
          static_cast<std::uint64_t>(std::min(gap_s, 0.1) * 1e9) + 1;
    }
    if (c.poisoned() || c.evicted()) break;
    (void)c.poll(cmpl, 64);
  }
  // Drain the completion tail so the server's pushes don't hit a full
  // ring, then say goodbye properly.
  const std::uint64_t drain_end = now_ns() + 500'000'000ull;
  while (now_ns() < drain_end && c.poll(cmpl, 64) != 0) {
  }
  c.disconnect();
  return 0;
}

PhaseResult run_ipc_phase(const Options& opt, const std::string& name,
                          double offered_rps, double sustainable_rps,
                          const char* self_exe) {
  hist_reset();
  ServeConfig cfg;
  cfg.runtime_spec = opt.spec;
  cfg.tenants = make_tenants(sustainable_rps);
  const std::string seg = "bench_serve_" + std::to_string(::getpid());
  xtask::TransportSpec tspec = xtask::TransportSpec::parse(
      "ipc=shm,seg=" + seg + ",sessions=8,ring=1024,lease_ms=200");
  xtask::ipc::IpcServer server(std::move(cfg), tspec, &ipc_handler);

  const std::uint64_t t0 = now_ns();
  std::vector<pid_t> kids;
  for (int t = 0; t < kTenants; ++t) {
    const double rps = std::max(1.0, offered_rps * kMix[t].share);
    const std::string spec_s = tspec.describe();
    const std::string tenant_s = std::to_string(t);
    const std::string rate_s = std::to_string(rps);
    const std::string seconds_s = std::to_string(opt.seconds);
    const std::string seed_s =
        std::to_string(opt.seed + static_cast<std::uint64_t>(t) * 7919);
    const char* cargv[] = {self_exe,      "--ipc-child",
                           "--ipc-spec",  spec_s.c_str(),
                           "--tenant",    tenant_s.c_str(),
                           "--rate",      rate_s.c_str(),
                           "--seconds",   seconds_s.c_str(),
                           "--seed",      seed_s.c_str(),
                           nullptr};
    const pid_t pid = ::fork();
    if (pid == 0) {
      ::execv(self_exe, const_cast<char* const*>(cargv));
      ::_exit(127);
    }
    if (pid > 0) kids.push_back(pid);
  }

  bool children_ok = !kids.empty();
  const std::uint64_t wait_deadline =
      now_ns() + static_cast<std::uint64_t>((opt.seconds + 30.0) * 1e9);
  for (const pid_t pid : kids) {
    int status = 0;
    for (;;) {
      const pid_t r = ::waitpid(pid, &status, WNOHANG);
      if (r == pid) break;
      if (r < 0 || now_ns() >= wait_deadline) {
        ::kill(pid, SIGKILL);
        ::waitpid(pid, &status, 0);
        children_ok = false;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    if (!(WIFEXITED(status) && WEXITSTATUS(status) == 0))
      children_ok = false;
  }
  // Let graceful closes drain before stopping.
  const std::uint64_t drain_deadline = now_ns() + 2'000'000'000ull;
  while (server.live_sessions() != 0 && now_ns() < drain_deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  const double duration_s = static_cast<double>(now_ns() - t0) / 1e9;
  server.stop();

  PhaseResult res;
  res.name = name;
  res.transport = "ipc";
  res.offered_rps = offered_rps;
  res.duration_s = duration_s;
  res.totals = server.service().totals();
  res.goodput_rps =
      static_cast<double>(res.totals.executed) / std::max(duration_s, 1e-9);
  res.p50_us = hist_percentile(0.50) / 1e3;
  res.p99_us = hist_percentile(0.99) / 1e3;
  res.p999_us = hist_percentile(0.999) / 1e3;
  res.accounting_ok =
      res.totals.submitted == res.totals.executed + res.totals.shed +
                                  res.totals.rejected + res.totals.orphaned &&
      res.totals.in_flight == 0 && children_ok;
  return res;
}

void print_phase(const PhaseResult& r, int threads,
                 const std::string& spec) {
  std::printf(
      "{\"bench\":\"serve\",\"phase\":\"%s\",\"transport\":\"%s\","
      "\"offered_rps\":%.0f,"
      "\"submitted\":%llu,\"accepted\":%llu,\"executed\":%llu,"
      "\"shed\":%llu,\"rejected\":%llu,\"orphaned\":%llu,"
      "\"goodput_rps\":%.0f,"
      "\"p50_us\":%.1f,\"p99_us\":%.1f,\"p999_us\":%.1f,"
      "\"duration_s\":%.2f,\"threads\":%d,\"config\":\"%s\","
      "\"accounting_ok\":%s}\n",
      r.name.c_str(), r.transport.c_str(), r.offered_rps,
      static_cast<unsigned long long>(r.totals.submitted),
      static_cast<unsigned long long>(r.totals.admitted),
      static_cast<unsigned long long>(r.totals.executed),
      static_cast<unsigned long long>(r.totals.shed),
      static_cast<unsigned long long>(r.totals.rejected),
      static_cast<unsigned long long>(r.totals.orphaned), r.goodput_rps,
      r.p50_us, r.p99_us, r.p999_us, r.duration_s, threads, spec.c_str(),
      r.accounting_ok ? "true" : "false");
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  bool ipc_child = false;
  std::string child_spec;
  int child_tenant = 0;
  double child_rate = 100.0;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", a.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--seconds") opt.seconds = std::atof(next());
    else if (a == "--seed") opt.seed = static_cast<std::uint64_t>(std::atoll(next()));
    else if (a == "--work-us") g_work_ns = static_cast<std::uint64_t>(std::atof(next()) * 1e3);
    else if (a == "--burst") opt.burst = std::atof(next());
    else if (a == "--spec") opt.spec = next();
    else if (a == "--phases") opt.phases_all = std::string(next()) != "2x";
    else if (a == "--check") opt.check = true;
    else if (a == "--check-slo") { opt.check = true; opt.check_slo = true; }
    else if (a == "--transport") opt.transport = next();
    else if (a.rfind("--transport=", 0) == 0)
      opt.transport = a.substr(std::strlen("--transport="));
    else if (a == "--ipc-child") ipc_child = true;
    else if (a == "--ipc-spec") child_spec = next();
    else if (a == "--tenant") child_tenant = std::atoi(next());
    else if (a == "--rate") child_rate = std::atof(next());
    else {
      std::fprintf(stderr,
                   "usage: bench_serve [--seconds S] [--seed N] "
                   "[--work-us U] [--burst B] [--spec SPEC] "
                   "[--phases all|2x] [--check] [--check-slo] "
                   "[--transport inproc|ipc]\n");
      return 2;
    }
  }
  if (ipc_child)
    return run_ipc_child(child_spec, child_tenant, child_rate, opt.seconds,
                         opt.seed);
  if (opt.transport != "inproc" && opt.transport != "ipc") {
    std::fprintf(stderr, "unknown --transport '%s' (inproc|ipc)\n",
                 opt.transport.c_str());
    return 2;
  }
  if (opt.burst * opt.burst_duty > 1.0) {
    // Peaks this tall would need a negative trough; flatten instead.
    opt.burst = 1.0 / opt.burst_duty;
  }

  const int threads = xtask::RuntimeRegistry::xtask_config(
                          xtask::BackendSpec::parse(opt.spec))
                          .num_threads;
  const double sustainable = calibrate(opt);
  std::printf("{\"bench\":\"serve_calibration\",\"sustainable_rps\":%.0f,"
              "\"threads\":%d,\"work_us\":%.1f}\n",
              sustainable, threads,
              static_cast<double>(g_work_ns) / 1e3);
  std::fflush(stdout);

  if (opt.transport == "ipc") {
    // Cross-process experiment: an in-process 1.0x reference, then the
    // same offered load through the shm transport with real child
    // processes. The ratio is the transport's end-to-end overhead.
    bool ok = true;
    const PhaseResult inproc =
        run_phase(opt, "1.0x", 1.0 * sustainable, sustainable);
    print_phase(inproc, threads, opt.spec);
    const PhaseResult ipc = run_ipc_phase(opt, "ipc-1.0x", 1.0 * sustainable,
                                          sustainable, "/proc/self/exe");
    print_phase(ipc, threads, opt.spec);
    for (const PhaseResult* r : {&inproc, &ipc}) {
      if (!r->accounting_ok) {
        std::fprintf(stderr, "FAIL %s: accounting violated\n",
                     r->name.c_str());
        ok = false;
      }
      if (r->totals.executed == 0) {
        std::fprintf(stderr, "FAIL %s: nothing executed (hang?)\n",
                     r->name.c_str());
        ok = false;
      }
    }
    const double ratio = inproc.goodput_rps > 0
                             ? ipc.goodput_rps / inproc.goodput_rps
                             : 0.0;
    std::printf(
        "{\"bench\":\"serve_ipc_summary\",\"sustainable_rps\":%.0f,"
        "\"inproc_goodput_rps\":%.0f,\"ipc_goodput_rps\":%.0f,"
        "\"ipc_vs_inproc_goodput\":%.3f}\n",
        sustainable, inproc.goodput_rps, ipc.goodput_rps, ratio);
    std::fflush(stdout);
    return opt.check && !ok ? 1 : 0;
  }

  std::vector<std::pair<std::string, double>> phases;
  if (opt.phases_all) {
    phases.emplace_back("0.5x", 0.5 * sustainable);
    phases.emplace_back("1.0x", 1.0 * sustainable);
  }
  phases.emplace_back("2.0x", 2.0 * sustainable);

  std::vector<PhaseResult> results;
  bool ok = true;
  for (const auto& [name, rps] : phases) {
    results.push_back(run_phase(opt, name, rps, sustainable));
    const PhaseResult& r = results.back();
    print_phase(r, threads, opt.spec);
    if (!r.accounting_ok) {
      std::fprintf(stderr, "FAIL %s: accounting violated\n", name.c_str());
      ok = false;
    }
    if (r.totals.executed == 0) {
      std::fprintf(stderr, "FAIL %s: nothing executed (hang?)\n",
                   name.c_str());
      ok = false;
    }
  }

  if (opt.phases_all && results.size() == 3) {
    const PhaseResult& low = results[0];
    const PhaseResult& mid = results[1];
    const PhaseResult& high = results[2];
    const double p99_ratio =
        low.p99_us > 0 ? high.p99_us / low.p99_us : 0.0;
    const double goodput_ratio =
        mid.goodput_rps > 0 ? high.goodput_rps / mid.goodput_rps : 0.0;
    std::printf(
        "{\"bench\":\"serve_summary\",\"sustainable_rps\":%.0f,"
        "\"slo_p99_ratio\":%.2f,\"slo_goodput_ratio\":%.2f}\n",
        sustainable, p99_ratio, goodput_ratio);
    std::fflush(stdout);
    if (opt.check_slo) {
      if (p99_ratio > 5.0) {
        std::fprintf(stderr,
                     "FAIL slo: p99(2.0x)/p99(0.5x) = %.2f > 5\n",
                     p99_ratio);
        ok = false;
      }
      if (goodput_ratio < 0.9) {
        std::fprintf(stderr,
                     "FAIL slo: goodput(2.0x)/goodput(1.0x) = %.2f < 0.9\n",
                     goodput_ratio);
        ok = false;
      }
    }
  }
  return opt.check && !ok ? 1 : 0;
}
