// Graph capture/replay benchmark: the cost model behind DESIGN.md's
// "Task-graph engine" section, as runnable numbers.
//
// Workloads (JSON lines to stdout, collected by run_bench.py into
// BENCH_graph.json):
//
//   graph_pipeline — a synthetic request pipeline: L layers x W stages,
//     every stage reading all W outputs of the previous layer (the dense
//     fan-in/fan-out shape of a batched inference or feature-join
//     request). Run N times two ways:
//       rebuild — one parallel region per iteration, dependences
//         registered live through ctx.spawn(body, deps): the full
//         frontier-hash + TaskDepState + release-list cost, every time.
//       replay  — TaskGraph::record once, then replay N times: counter
//         resets only.
//     The ratio rebuild/replay is the record run_bench.py --gate-graph
//     checks against perf_floor.json's min_replay_speedup (>= 3x).
//
//   sparselu_graph / strassen_graph — the BOTS kernels as dependency
//     graphs (src/bots/graph_workloads.hpp): taskwait/spawn baseline vs
//     spawn-with-deps vs graph replay, with exact-equality checks (the
//     graph formulations are bit-identical by construction).
//
//   bench_graph [--threads N] [--iters N] [--layers L] [--width W]
//               [--spec "xtask:graph=replay,greplays=N"] [--check]
//               [--smoke]
//
// --spec routes through the registry grammar: graph=replay runs only the
// replay side (greplays = iteration count), graph=capture|off only the
// rebuild side — so the spec keys drive the same code paths here that
// they select in the serve front-end. --check makes correctness or
// accounting violations a nonzero exit (the ctest `graph` smoke gate);
// --smoke shrinks every size for CI.
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bots/graph_workloads.hpp"
#include "bots/sparselu.hpp"
#include "bots/strassen.hpp"
#include "core/runtime.hpp"
#include "core/task_graph.hpp"
#include "registry/registry.hpp"

namespace {

using xtask::BackendSpec;
using xtask::Config;
using xtask::Dep;
using xtask::din;
using xtask::dout;
using xtask::GraphMode;
using xtask::Runtime;
using xtask::RuntimeRegistry;
using xtask::TaskContext;
using xtask::TaskGraph;

int g_failures = 0;

void fail(const char* what) {
  std::fprintf(stderr, "bench_graph: CHECK FAILED: %s\n", what);
  ++g_failures;
}

double time_ms(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

// --- the request pipeline ---------------------------------------------------
// L layers x W stages; stage (l, w) reads every slot of layer l-1 and
// writes its own. Dense edges (W^2 per layer gap) make the per-edge cost
// difference between live registration and counter decrement visible.

struct Pipeline {
  int layers;
  int width;
  std::vector<double> slots;                    // dependence tokens
  std::unique_ptr<std::atomic<std::uint32_t>[]> runs;  // per-node counter

  Pipeline(int l, int w)
      : layers(l), width(w), slots(static_cast<std::size_t>(l) * w, 0.0),
        runs(new std::atomic<std::uint32_t>[static_cast<std::size_t>(l) * w]) {
    for (int i = 0; i < l * w; ++i) runs[i].store(0, std::memory_order_relaxed);
  }

  double* slot(int l, int w) { return &slots[static_cast<std::size_t>(l) * width + w]; }

  template <typename Emit>
  void build(Emit&& emit) {
    std::vector<Dep> deps;
    deps.reserve(static_cast<std::size_t>(width) + 1);
    for (int l = 0; l < layers; ++l)
      for (int w = 0; w < width; ++w) {
        deps.clear();
        if (l > 0)
          for (int p = 0; p < width; ++p) deps.push_back(din(slot(l - 1, p)));
        deps.push_back(dout(slot(l, w)));
        auto* counter = &runs[static_cast<std::size_t>(l) * width + w];
        emit([counter](TaskContext&) {
          counter->fetch_add(1, std::memory_order_relaxed);
        }, deps.data(), deps.size());
      }
  }

  bool check_runs(std::uint32_t expected) const {
    for (int i = 0; i < layers * width; ++i)
      if (runs[i].load(std::memory_order_relaxed) != expected) return false;
    return true;
  }
};

void run_pipeline(Runtime& rt, int threads, int iters, int layers, int width,
                  bool do_rebuild, bool do_replay, bool check) {
  double rebuild_ms = 0.0, replay_ms = 0.0;
  std::uint32_t nodes = 0, edges = 0, cpath = 0;

  if (do_rebuild) {
    Pipeline p(layers, width);
    // One region, one taskgroup-bounded registration pass per iteration —
    // the same region-amortized shape TaskGraph::replay uses, so the two
    // configs differ only in the per-iteration dependence-rebuild cost.
    auto run_iters = [&](int n_iters) {
      rt.run([&](TaskContext& ctx) {
        for (int i = 0; i < n_iters; ++i)
          ctx.taskgroup([&p](TaskContext& c) {
            p.build([&c](auto&& f, const Dep* deps, std::size_t n) {
              c.spawn(std::forward<decltype(f)>(f), deps, n);
            });
          });
      });
    };
    run_iters(1);  // warm allocator pools and the team
    rebuild_ms = time_ms([&] { run_iters(iters); });
    if (check && !p.check_runs(static_cast<std::uint32_t>(iters) + 1))
      fail("pipeline rebuild: per-node run counts != iterations");
    std::printf("{\"bench\": \"graph_pipeline\", \"config\": \"rebuild\", "
                "\"threads\": %d, \"iters\": %d, \"layers\": %d, "
                "\"width\": %d, \"ms\": %.3f, \"us_per_iter\": %.2f}\n",
                threads, iters, layers, width, rebuild_ms,
                1e3 * rebuild_ms / iters);
  }

  if (do_replay) {
    Pipeline p(layers, width);
    TaskGraph g = TaskGraph::record([&](TaskGraph::Capture& cap) {
      p.build([&cap](auto&& f, const Dep* deps, std::size_t n) {
        cap.node(std::forward<decltype(f)>(f), deps, n);
      });
    });
    nodes = g.num_nodes();
    edges = g.num_edges();
    cpath = g.critical_path();
    g.replay(rt, 1);  // warm
    replay_ms = time_ms([&] { g.replay(rt, iters); });
    if (check && !p.check_runs(static_cast<std::uint32_t>(iters) + 1))
      fail("pipeline replay: per-node run counts != replays");
    std::printf("{\"bench\": \"graph_pipeline\", \"config\": \"replay\", "
                "\"threads\": %d, \"iters\": %d, \"nodes\": %u, "
                "\"edges\": %u, \"critical_path\": %u, \"ms\": %.3f, "
                "\"us_per_iter\": %.2f}\n",
                threads, iters, nodes, edges, cpath, replay_ms,
                1e3 * replay_ms / iters);
  }

  if (do_rebuild && do_replay && replay_ms > 0.0)
    std::printf("{\"bench\": \"graph_pipeline\", \"config\": \"speedup\", "
                "\"threads\": %d, \"speedup\": %.2f}\n",
                threads, rebuild_ms / replay_ms);
}

// --- BOTS kernels as graphs -------------------------------------------------

void run_sparselu(Runtime& rt, int threads, int blocks, int bs, int replays,
                  bool check) {
  xtask::bots::SparseLuParams p;
  p.blocks = blocks;
  p.block_size = bs;

  double base_ck = 0.0, deps_ck = 0.0, graph_ck = 0.0;
  const double base_ms =
      time_ms([&] { base_ck = xtask::bots::sparselu_parallel(rt, p); });
  const double deps_ms =
      time_ms([&] { deps_ck = xtask::bots::sparselu_deps(rt, p); });

  // Replay: one matrix, recorded once; each replay re-factorizes in
  // place, so re-fill between replays and time only the graph runs.
  xtask::bots::SparseMatrix m(p, /*fill=*/true);
  TaskGraph g = xtask::bots::sparselu_record(&m);
  double graph_ms = 0.0;
  for (int r = 0; r < replays; ++r) {
    m.refill();
    xtask::bots::sparselu_prefill(&m);
    graph_ms += time_ms([&] { g.replay(rt, 1); });
  }
  graph_ck = m.checksum();

  if (check) {
    if (deps_ck != base_ck) fail("sparselu deps checksum != taskwait");
    if (graph_ck != base_ck) fail("sparselu graph checksum != taskwait");
  }
  std::printf("{\"bench\": \"sparselu_graph\", \"config\": \"taskwait\", "
              "\"threads\": %d, \"ms\": %.3f, \"checksum\": %.6f}\n",
              threads, base_ms, base_ck);
  std::printf("{\"bench\": \"sparselu_graph\", \"config\": \"deps\", "
              "\"threads\": %d, \"ms\": %.3f, \"checksum\": %.6f}\n",
              threads, deps_ms, deps_ck);
  std::printf("{\"bench\": \"sparselu_graph\", \"config\": \"replay\", "
              "\"threads\": %d, \"ms\": %.3f, \"checksum\": %.6f, "
              "\"nodes\": %u, \"edges\": %u, \"replays\": %d}\n",
              threads, graph_ms / replays, graph_ck, g.num_nodes(),
              g.num_edges(), replays);
}

void run_strassen(Runtime& rt, int threads, std::size_t n, std::size_t cutoff,
                  bool check) {
  const std::vector<double> a = xtask::bots::strassen_input(n, 1);
  const std::vector<double> b = xtask::bots::strassen_input(n, 2);

  std::vector<double> c_spawn, c_deps;
  const double spawn_ms = time_ms(
      [&] { c_spawn = xtask::bots::strassen_parallel(rt, a, b, n, cutoff); });
  const double deps_ms =
      time_ms([&] { c_deps = xtask::bots::strassen_deps(rt, a, b, n, cutoff); });

  std::vector<double> c_graph(n * n, 0.0);
  xtask::bots::StrassenDepState s(a.data(), b.data(), c_graph.data(), n,
                                  cutoff);
  TaskGraph g = xtask::bots::strassen_record(&s);
  const double graph_ms = time_ms([&] { g.replay(rt, 1); });

  if (check) {
    if (std::memcmp(c_deps.data(), c_spawn.data(), n * n * sizeof(double)) != 0)
      fail("strassen deps product != spawn product");
    if (std::memcmp(c_graph.data(), c_spawn.data(), n * n * sizeof(double)) !=
        0)
      fail("strassen graph product != spawn product");
  }
  std::printf("{\"bench\": \"strassen_graph\", \"config\": \"spawn\", "
              "\"threads\": %d, \"n\": %zu, \"ms\": %.3f}\n",
              threads, n, spawn_ms);
  std::printf("{\"bench\": \"strassen_graph\", \"config\": \"deps\", "
              "\"threads\": %d, \"n\": %zu, \"ms\": %.3f}\n",
              threads, n, deps_ms);
  std::printf("{\"bench\": \"strassen_graph\", \"config\": \"replay\", "
              "\"threads\": %d, \"n\": %zu, \"ms\": %.3f, \"nodes\": %u, "
              "\"edges\": %u, \"critical_path\": %u}\n",
              threads, n, graph_ms, g.num_nodes(), g.num_edges(),
              g.critical_path());
}

}  // namespace

int main(int argc, char** argv) {
  int threads = 4;
  int iters = 200;
  int layers = 16;
  int width = 16;
  bool check = false;
  bool smoke = false;
  std::string spec;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_graph: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--threads") threads = std::atoi(next());
    else if (arg == "--iters") iters = std::atoi(next());
    else if (arg == "--layers") layers = std::atoi(next());
    else if (arg == "--width") width = std::atoi(next());
    else if (arg == "--spec") spec = next();
    else if (arg == "--check") check = true;
    else if (arg == "--smoke") smoke = true;
    else {
      std::fprintf(stderr,
                   "usage: bench_graph [--threads N] [--iters N] [--layers L] "
                   "[--width W] [--spec S] [--check] [--smoke]\n");
      return 2;
    }
  }
  if (smoke) {
    iters = 30;
    layers = 8;
    width = 8;
  }

  // The registry grammar selects which side of the comparison runs:
  // graph=replay (greplays = iteration count) runs only the replay path,
  // graph=off/capture only the rebuild path; no spec runs both.
  bool do_rebuild = true, do_replay = true;
  Config cfg;
  if (!spec.empty()) {
    cfg = RuntimeRegistry::xtask_config(BackendSpec::parse(spec));
    do_replay = cfg.graph_mode == GraphMode::kReplay;
    do_rebuild = !do_replay;
    if (do_replay && cfg.graph_replays > 1) iters = cfg.graph_replays;
  }
  cfg.num_threads = threads;

  const std::unique_ptr<Runtime> rt = RuntimeRegistry::make_xtask(cfg);
  run_pipeline(*rt, threads, iters, layers, width, do_rebuild, do_replay,
               check);
  run_sparselu(*rt, threads, smoke ? 6 : 10, 8, smoke ? 2 : 4, check);
  run_strassen(*rt, threads, smoke ? 64 : 128, smoke ? 16 : 32, check);

  if (g_failures != 0) {
    std::fprintf(stderr, "bench_graph: %d check failure(s)\n", g_failures);
    return check ? 1 : 0;
  }
  return 0;
}
