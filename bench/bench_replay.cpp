// Sim↔real cross-calibration benchmark: the quantitative answer to "how
// far is the simulator from the real runtime on the same schedule?"
//
// Pipeline (JSON lines to stdout, collected by run_bench.py into
// BENCH_replay.json):
//
//   1. record  — run a deterministic irregular reference workload on the
//      real runtime with trace=record: the trace captures the task DAG
//      plus every task's measured self-cost in host tsc cycles.
//   2. real replay — replay_real() the trace on --spec (fresh runtime per
//      rep, min makespan across reps). Work is a calibrated rdtscp spin
//      of the recorded cycles, so the replay measures *scheduling*, with
//      the work term held fixed by construction.
//   3. sim replay — replay_sim() the identical tree on the simulated
//      machine of the same shape. Self-costs are the same recorded host
//      cycles, so sim and real makespans are directly comparable in
//      recorded-cycle units; what differs is the runtime-overhead model.
//      A two-stage grid sweeps one overhead multiplier applied to every
//      MachineConfig cost knob (queue ops, atomics, malloc, polling) and
//      keeps the fit minimizing relative makespan error.
//   4. report — one replay_fit record per candidate multiplier and a
//      replay_calibration summary with the best fit's makespan error and
//      the per-worker busy-share error (sorted busy fractions of a
//      re-recorded real replay vs the sim's busy_per_worker; sorted
//      because worker identity is not preserved across executors).
//
//   bench_replay [--spec S] [--reps N] [--tasks N] [--trace-out PATH]
//                [--smoke] [--check]
//
// --check makes trace-validation or exact-count violations a nonzero
// exit (the ctest bench-smoke gate); the makespan-error threshold itself
// lives in run_bench.py --gate-replay against perf_floor.json's "replay"
// section, like every other perf floor in this repo.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "core/runtime.hpp"
#include "registry/registry.hpp"
#include "sim/engine.hpp"
#include "trace/format.hpp"
#include "trace/replay.hpp"

namespace {

using xtask::AnyContext;
using xtask::AnyRuntime;
using xtask::Runtime;
using xtask::RuntimeRegistry;
using xtask::Topology;

int g_failures = 0;

void fail(const char* what) {
  std::fprintf(stderr, "bench_replay: CHECK FAILED: %s\n", what);
  ++g_failures;
}

// --- reference workload -----------------------------------------------------
// Deterministic irregular bursts: phases of uneven fan-out with a mix of
// leaf tasks and two-child subtrees, costs spanning ~2k..32k cycles. The
// shape exercises exactly what the calibration must price — queue churn,
// steals under imbalance, and taskwait polling — without being so skewed
// that one straggler hides the overhead term.

struct SplitMix64 {
  std::uint64_t s;
  std::uint64_t next() noexcept {
    std::uint64_t z = (s += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }
};

void reference_root(AnyContext& ctx, int ntasks) {
  SplitMix64 rng{0xCA11B8A7Eull};
  const int bursts = 8;
  const int per_burst = std::max(1, ntasks / bursts);
  for (int b = 0; b < bursts; ++b) {
    for (int i = 0; i < per_burst; ++i) {
      const std::uint64_t cost = 2'000 + rng.next() % 30'000;
      const bool fan = rng.next() % 3 == 0;
      ctx.spawn([cost, fan](AnyContext& c) {
        if (fan) {
          for (int k = 0; k < 2; ++k)
            c.spawn([cost](AnyContext&) {
              xtask::trace::spin_cycles(cost / 2);
            });
        }
        xtask::trace::spin_cycles(cost);
        if (fan) c.taskwait();
      });
    }
    ctx.taskwait();
  }
}

// --- recording --------------------------------------------------------------

xtask::trace::Trace record(const std::string& spec, int ntasks) {
  AnyRuntime rt = RuntimeRegistry::make(spec);
  Runtime* xrt = rt.get_if<Runtime>();
  if (xrt == nullptr || xrt->tracer() == nullptr) {
    std::fprintf(stderr, "bench_replay: spec '%s' is not a recording xtask "
                 "runtime\n", spec.c_str());
    std::exit(2);
  }
  rt.run([ntasks](AnyContext& ctx) { reference_root(ctx, ntasks); });
  return xrt->tracer()->build();
}

// --- calibration ------------------------------------------------------------

/// Scale every runtime-overhead knob of the cost model by `m`. Work-time
/// inflation penalties are workload properties, not runtime overheads, so
/// they stay fixed.
xtask::sim::MachineConfig scaled_machine(const xtask::sim::MachineConfig& base,
                                         double m) {
  auto s = [m](std::uint32_t v) {
    return static_cast<std::uint32_t>(std::llround(v * m));
  };
  xtask::sim::MachineConfig c = base;
  c.spsc_op = s(base.spsc_op);
  c.queue_probe = s(base.queue_probe);
  c.deque_lock_op = s(base.deque_lock_op);
  c.atomic_local_work = s(base.atomic_local_work);
  c.atomic_transfer = s(base.atomic_transfer);
  c.lock_local_work = s(base.lock_local_work);
  c.cell_local = s(base.cell_local);
  c.cell_remote = s(base.cell_remote);
  c.malloc_work = s(base.malloc_work);
  c.malloc_serial = s(base.malloc_serial);
  c.pool_alloc = s(base.pool_alloc);
  c.task_setup = s(base.task_setup);
  c.idle_poll = s(base.idle_poll);
  c.barrier_poll = s(base.barrier_poll);
  return c;
}

xtask::sim::SimConfig sim_config_for(const std::string& topo, double mult) {
  xtask::sim::SimConfig cfg;
  cfg.machine = scaled_machine(xtask::sim::MachineConfig{}, mult);
  cfg.machine.topo = Topology::parse(topo);
  cfg.policy = xtask::sim::SimPolicy::kXGompTB;
  cfg.dlb = xtask::sim::SimDlb::kWorkSteal;
  return cfg;
}

/// Mean absolute difference between the *sorted* per-worker busy shares
/// of two executions: a load-balance shape comparison that is invariant
/// to which physical worker ended up with which share.
double busy_share_error(const std::vector<std::uint64_t>& a,
                        const std::vector<std::uint64_t>& b) {
  auto shares = [](const std::vector<std::uint64_t>& v) {
    std::vector<double> out(v.size(), 0.0);
    long double total = 0;
    for (std::uint64_t x : v) total += static_cast<long double>(x);
    if (total <= 0) return out;
    for (std::size_t i = 0; i < v.size(); ++i)
      out[i] = static_cast<double>(v[i] / total);
    std::sort(out.begin(), out.end(), std::greater<double>());
    return out;
  };
  const std::vector<double> sa = shares(a);
  const std::vector<double> sb = shares(b);
  const std::size_t n = std::max(sa.size(), sb.size());
  if (n == 0) return 0.0;
  double err = 0;
  for (std::size_t i = 0; i < n; ++i)
    err += std::fabs((i < sa.size() ? sa[i] : 0.0) -
                     (i < sb.size() ? sb[i] : 0.0));
  return err / static_cast<double>(n);
}

}  // namespace

int main(int argc, char** argv) {
  // Size the machine to the cores this host can actually run in parallel:
  // oversubscribed real workers would serialize spin work the simulator
  // prices as parallel, turning host shape into calibration error. On a
  // >=4-core host the default is the 2-zone 2x2 shape (stealing crosses a
  // simulated zone boundary); below that, a flat topology of what's there.
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::string topo = hw >= 4 ? "2x2" : hw >= 2 ? "1x2" : "1x1";
  std::string spec;  // defaulted from topo after flag parsing
  std::string trace_out;
  int reps = 5;
  int ntasks = 600;
  bool smoke = false;
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_replay: %s needs a value\n", a.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--spec") {
      spec = next();
    } else if (a == "--topo") {
      topo = next();
    } else if (a == "--reps") {
      reps = std::atoi(next());
    } else if (a == "--tasks") {
      ntasks = std::atoi(next());
    } else if (a == "--trace-out") {
      trace_out = next();
    } else if (a == "--smoke") {
      smoke = true;
    } else if (a == "--check") {
      check = true;
    } else {
      std::fprintf(stderr, "bench_replay: unknown arg %s\n", a.c_str());
      return 2;
    }
  }
  if (smoke) {
    reps = std::min(reps, 2);
    ntasks = std::min(ntasks, 160);
  }
  if (spec.empty())
    spec = "xtask:topo=" + topo + ",dlb=naws,tint=128";

  // 1. Record the reference workload on the real runtime.
  const std::string record_spec = spec + ",trace=record";
  const xtask::trace::Trace tr = record(record_spec, ntasks);
  if (check) {
    try {
      tr.validate();
    } catch (const xtask::trace::TraceError& e) {
      fail(e.what());
    }
    if (tr.exec_count() != tr.spawn_count()) fail("recorded counts diverge");
  }
  if (!trace_out.empty()) xtask::trace::write_file(tr, trace_out);
  const xtask::trace::ReplayTree tree = xtask::trace::ReplayTree::build(tr);
  // All timestamps and self-costs in the trace are host tsc cycles; use
  // the recorded rate to report milliseconds. Sim virtual cycles consume
  // the same recorded-cycle work units, so one rate serves both sides.
  const double cyc_per_ms = std::max(tr.cycles_per_us, 1.0) * 1e3;
  std::printf("{\"bench\":\"replay_trace\",\"config\":\"%s\","
              "\"threads\":%u,\"tasks\":%zu,\"total_self_ms\":%.3f}\n",
              spec.c_str(), tr.nworkers, tree.size(),
              static_cast<double>(tree.total_self_cycles()) / cyc_per_ms);

  // 2. Real replay: min makespan across reps, fresh runtime per rep.
  std::uint64_t real_makespan = ~std::uint64_t{0};
  for (int r = 0; r < reps; ++r) {
    AnyRuntime rt = RuntimeRegistry::make(spec);
    const xtask::trace::RealReplayResult res =
        xtask::trace::replay_real(rt, tree);
    real_makespan = std::min(real_makespan, res.makespan_cycles);
    if (check && res.tasks != tree.size()) fail("real replay lost tasks");
  }

  // Re-record one real replay to get its per-worker busy distribution
  // (and, under --check, prove the replayed DAG is the recorded DAG).
  std::vector<std::uint64_t> real_busy;
  {
    AnyRuntime rt = RuntimeRegistry::make(record_spec);
    xtask::trace::replay_real(rt, tree);
    const xtask::trace::Trace rerec = rt.get_if<Runtime>()->tracer()->build();
    real_busy = rerec.busy_per_worker();
    if (check && rerec.dag_fingerprint() != tr.dag_fingerprint())
      fail("re-recorded replay DAG fingerprint diverged");
  }

  // 3. Sim replay: two-stage grid over the overhead multiplier.
  std::vector<double> grid = smoke
      ? std::vector<double>{0.5, 1.0, 2.0}
      : std::vector<double>{0.25, 0.35, 0.5, 0.71, 1.0, 1.41, 2.0, 2.83, 4.0};
  double best_mult = 1.0;
  double best_err = HUGE_VAL;
  std::uint64_t best_sim = 0;
  std::vector<std::uint64_t> best_busy;
  auto try_mult = [&](double m) {
    const xtask::sim::SimResult res =
        xtask::trace::replay_sim(sim_config_for(topo, m), tree);
    if (check && res.tasks != tree.size()) fail("sim replay lost tasks");
    const double err =
        (static_cast<double>(res.makespan) -
         static_cast<double>(real_makespan)) /
        static_cast<double>(real_makespan);
    std::printf("{\"bench\":\"replay_fit\",\"config\":\"%s\","
                "\"overhead_mult\":%.3f,\"sim_ms\":%.3f,\"err\":%.4f}\n",
                spec.c_str(), m,
                static_cast<double>(res.makespan) / cyc_per_ms, err);
    if (std::fabs(err) < std::fabs(best_err)) {
      best_err = err;
      best_mult = m;
      best_sim = res.makespan;
      best_busy = res.busy_per_worker;
    }
  };
  for (double m : grid) try_mult(m);
  if (!smoke) {
    for (double f : {0.8, 0.9, 1.1, 1.25}) {
      const double m = best_mult * f;
      if (std::none_of(grid.begin(), grid.end(), [m](double g) {
            return std::fabs(g - m) < 1e-9;
          }))
        try_mult(m);
    }
  }

  // 4. Summary record — the one run_bench.py --gate-replay reads.
  const double busy_err = busy_share_error(real_busy, best_busy);
  std::printf("{\"bench\":\"replay_calibration\",\"config\":\"%s\","
              "\"threads\":%u,\"real_ms\":%.3f,\"sim_ms\":%.3f,"
              "\"makespan_err\":%.4f,\"overhead_mult\":%.3f,"
              "\"busy_err\":%.4f}\n",
              spec.c_str(), tr.nworkers,
              static_cast<double>(real_makespan) / cyc_per_ms,
              static_cast<double>(best_sim) / cyc_per_ms,
              std::fabs(best_err), best_mult, busy_err);

  if (g_failures != 0) {
    std::fprintf(stderr, "bench_replay: %d check failure(s)\n", g_failures);
    return 1;
  }
  return 0;
}
