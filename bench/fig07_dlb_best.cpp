// Reproduces Fig. 7 + Table I: per-application DLB parameter sweep. For
// each BOTS app and each strategy (NA-RP, NA-WS), sweep {N_victim,
// N_steal, T_interval, P_local}, report the best configuration and its
// improvement over XGOMPTB's static load balancing.
//
// Paper shape: all apps except Fib improve under some DLB setting; NA-RP
// gives ~4x on STRAS/Sort (memory-bound, co-location wins), ~2.6x on FP
// (imbalance), and *degrades* Fib (tiny tasks pushed away from their
// creators). NA-WS improves every app at least slightly.
#include "bench_util.hpp"

using namespace xbench;

namespace {

struct Best {
  double time = 1e300;
  SimDlbConfig cfg;
};

Best sweep(const SimWorkload& wl, SimDlb strategy) {
  // Grid reduced from the paper's full sweep to keep the whole-suite run
  // under ~5 minutes on one host core; fig07 with a denser grid is a
  // one-line edit here.
  Best best;
  for (int n_victim : {1, 24}) {
    for (int n_steal : {1, 32}) {
      for (std::uint64_t t_int : {std::uint64_t{1'000}, std::uint64_t{100'000}}) {
        for (double p_local : {0.03, 1.0}) {
          SimConfig cfg = paper_machine(SimPolicy::kXGompTB);
          cfg.dlb = strategy;
          cfg.dlb_cfg = {n_victim, n_steal, t_int, p_local};
          const auto res = simulate(cfg, wl);
          if (res.seconds() < best.time) {
            best.time = res.seconds();
            best.cfg = cfg.dlb_cfg;
          }
        }
      }
    }
  }
  return best;
}

}  // namespace

int main() {
  print_header(
      "Fig. 7 + Table I — best DLB configuration vs static balancing",
      "XGOMPTB base; sweep N_victim x N_steal x T_interval x P_local; "
      "'x vs SLB' > 1 means the DLB wins.");
  std::printf("%-10s %10s | %10s %6s %6s %8s %7s %8s | %10s %6s %6s %8s "
              "%7s %8s\n",
              "app", "SLB(s)", "NA-RP(s)", "Nv", "Ns", "Tint", "Ploc",
              "x vs SLB", "NA-WS(s)", "Nv", "Ns", "Tint", "Ploc",
              "x vs SLB");
  for (const auto& wl : xtask::sim::bots_suite(Scale::kSweep)) {
    const auto slb = simulate(paper_machine(SimPolicy::kXGompTB), wl);
    const Best rp = sweep(wl, SimDlb::kRedirectPush);
    const Best ws = sweep(wl, SimDlb::kWorkSteal);
    std::printf(
        "%-10s %10.4f | %10.4f %6d %6d %8llu %7.2f %7.2fx | %10.4f %6d %6d "
        "%8llu %7.2f %7.2fx\n",
        wl.name.c_str(), slb.seconds(), rp.time, rp.cfg.n_victim,
        rp.cfg.n_steal,
        static_cast<unsigned long long>(rp.cfg.t_interval), rp.cfg.p_local,
        slb.seconds() / rp.time, ws.time, ws.cfg.n_victim, ws.cfg.n_steal,
        static_cast<unsigned long long>(ws.cfg.t_interval), ws.cfg.p_local,
        slb.seconds() / ws.time);
  }
  return 0;
}
