// Shared helpers for the paper-reproduction benchmark binaries: fixed-width
// table printing and the standard policy/config sets used across figures.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/workloads.hpp"

namespace xbench {

using xtask::sim::MachineConfig;
using xtask::sim::Scale;
using xtask::sim::SimConfig;
using xtask::sim::SimDlb;
using xtask::sim::SimDlbConfig;
using xtask::sim::simulate;
using xtask::sim::SimPolicy;
using xtask::sim::sim_policy_name;
using xtask::sim::SimResult;
using xtask::sim::SimWorkload;

/// Default paper machine: Skylake-192, 8 zones.
inline SimConfig paper_machine(SimPolicy policy) {
  SimConfig cfg;
  cfg.policy = policy;
  return cfg;
}

inline void print_header(const char* title, const char* note) {
  std::printf("\n==== %s ====\n", title);
  if (note != nullptr && note[0] != '\0') std::printf("%s\n", note);
}

inline void print_row(const std::string& label,
                      const std::vector<double>& values, const char* fmt) {
  std::printf("%-10s", label.c_str());
  for (double v : values) std::printf(fmt, v);
  std::printf("\n");
}

/// Human-friendly count (paper tables use K/M/B suffixes).
inline std::string human(double v) {
  char buf[32];
  if (v >= 1e9)
    std::snprintf(buf, sizeof(buf), "%.1fB", v / 1e9);
  else if (v >= 1e6)
    std::snprintf(buf, sizeof(buf), "%.1fM", v / 1e6);
  else if (v >= 1e3)
    std::snprintf(buf, sizeof(buf), "%.1fK", v / 1e3);
  else
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  return buf;
}

}  // namespace xbench
