// Reproduces Fig. 8: Proof-of-Space puzzle-generation throughput (MH/s)
// for GOMP vs XGOMPTB as the batch size grows, on the simulated 192-core
// machine — plus a real-threads PoSp run with actual BLAKE3 hashing on
// this host for an absolute sanity point.
//
// Paper shape: at batch 1 XGOMPTB is ~195x faster (7.8 vs 0.04 MH/s) —
// the runtime's per-task overhead dominates; GOMP catches up as batches
// amortize the lock; XGOMPTB peaks around batch 1024 and very large
// batches lose parallelism (load imbalance); XGOMPTB's best beats GOMP's
// best by ~30%.
#include "bench_util.hpp"
#include "core/runtime.hpp"
#include "gomp/gomp_runtime.hpp"
#include "posp/posp.hpp"
#include "registry/registry.hpp"

using namespace xbench;

int main() {
  print_header("Fig. 8 — PoSp throughput vs batch size",
               "2^22 simulated puzzles on 192 cores; MH/s = 1e6 hashes "
               "per simulated second @2.1 GHz.");
  const std::uint64_t puzzles = 1ull << 20;  // keeps the GOMP batch-1
                                             // simulation under a minute
  std::printf("%-10s %12s %12s %10s\n", "batch", "GOMP MH/s", "XGOMPTB MH/s",
              "ratio");
  double best_gomp = 0;
  double best_tb = 0;
  for (std::uint64_t batch : {1ull, 4ull, 16ull, 64ull, 256ull, 1024ull,
                              4096ull, 8192ull, 32768ull, 131072ull}) {
    const auto wl = xtask::sim::wl_posp(puzzles, batch);
    const auto g = simulate(paper_machine(SimPolicy::kGomp), wl);
    const auto tb = simulate(paper_machine(SimPolicy::kXGompTB), wl);
    const double g_mhs =
        static_cast<double>(puzzles) / (g.seconds() * 1e6);
    const double tb_mhs =
        static_cast<double>(puzzles) / (tb.seconds() * 1e6);
    best_gomp = std::max(best_gomp, g_mhs);
    best_tb = std::max(best_tb, tb_mhs);
    std::printf("%-10llu %12.3f %12.3f %9.1fx\n",
                static_cast<unsigned long long>(batch), g_mhs, tb_mhs,
                tb_mhs / g_mhs);
  }
  std::printf("\nbest: GOMP %.1f MH/s, XGOMPTB %.1f MH/s (+%.0f%%) — paper: "
              "164 vs 217 MH/s (+32%%)\n",
              best_gomp, best_tb, 100.0 * (best_tb / best_gomp - 1.0));

  // Real-threads sanity point: actual BLAKE3 plot on this host.
  std::printf("\n-- real-threads PoSp on this host (2^16 puzzles, "
              "xtask runtime) --\n");
  for (std::uint32_t batch : {16u, 1024u}) {
    xtask::posp::PospConfig pc;
    pc.k = 16;
    pc.batch = batch;
    xtask::posp::Plot plot(pc);
    xtask::Config rc;
    rc.num_threads = 4;
    const auto rt_h = xtask::RuntimeRegistry::make_xtask(rc);
    xtask::Runtime& rt = *rt_h;
    const double secs = plot.generate(rt);
    std::printf("batch %-6u  %8.3f MH/s (%.3fs)\n", batch,
                static_cast<double>(plot.total_puzzles()) / (secs * 1e6),
                secs);
  }
  return 0;
}
