// google-benchmark microbenchmarks of the runtime's building blocks on
// the *host* machine (real code, not the simulator): B-Queue ops, XQueue
// push/pop, the steal-protocol cells, the multi-level allocator vs
// malloc, tree vs centralized barrier polling, and BLAKE3 throughput.
//
// These are the ablation evidence for DESIGN.md's claims: queue ops in
// tens of cycles, zero-RMW protocol cells cheaper than atomics, pool
// allocation ~constant vs malloc.
#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>
#include <vector>

#include "core/bqueue.hpp"
#include "core/central_barrier.hpp"
#include "core/steal_protocol.hpp"
#include "core/task_allocator.hpp"
#include "core/tree_barrier.hpp"
#include "core/xqueue.hpp"
#include "posp/blake3.hpp"

namespace {

using namespace xtask;

void BM_BQueuePushPop(benchmark::State& state) {
  BQueue<Task*> q(2048, 64);
  auto* t = reinterpret_cast<Task*>(0x40);
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.push(t));
    benchmark::DoNotOptimize(q.pop());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BQueuePushPop);

void BM_BQueueBatchPushPop(benchmark::State& state) {
  // Batched transfer (the NA-WS migration building block): amortizes the
  // ring indexing and the occupancy-counter publication over the batch.
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  BQueue<Task*> q(2048, 64);
  std::vector<Task*> batch(n, reinterpret_cast<Task*>(0x40));
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.push_batch(batch.data(), n));
    benchmark::DoNotOptimize(q.pop_batch(batch.data(), n));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_BQueueBatchPushPop)->Arg(8)->Arg(32)->Arg(64);

void BM_BQueueSizeApprox(benchmark::State& state) {
  // The O(1) occupancy probe: two counter loads, independent of capacity
  // or fill level (the slot-scan it replaced walked the ring).
  BQueue<Task*> q(2048, 64);
  auto* t = reinterpret_cast<Task*>(0x40);
  for (int i = 0; i < 1000; ++i) q.push(t);
  for (auto _ : state) benchmark::DoNotOptimize(q.size_approx());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BQueueSizeApprox);

void BM_XQueuePushPopSelf(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  XQueue xq(n, 2048);
  auto* t = reinterpret_cast<Task*>(0x40);
  for (auto _ : state) {
    benchmark::DoNotOptimize(xq.push(0, 0, t));
    benchmark::DoNotOptimize(xq.pop(0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_XQueuePushPopSelf)->Arg(4)->Arg(16)->Arg(64)->Arg(192);

void BM_XQueueEmptyScan(benchmark::State& state) {
  // Cost of an idle worker's full scan — the stall-path building block.
  const int n = static_cast<int>(state.range(0));
  XQueue xq(n, 2048);
  for (auto _ : state) benchmark::DoNotOptimize(xq.pop(0));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_XQueueEmptyScan)->Arg(4)->Arg(16)->Arg(64)->Arg(192);

void BM_XQueueOccupancyMask(benchmark::State& state) {
  // Bitmap census probe: the per-epoch mode-controller input and the
  // NA-WS victim filter both ride on this word-OR sweep.
  const int n = static_cast<int>(state.range(0));
  XQueue xq(n, 2048);
  auto* t = reinterpret_cast<Task*>(0x40);
  for (int w = 1; w < n; w += 2) xq.push(w, 0, t);  // arm a few bits
  for (auto _ : state) benchmark::DoNotOptimize(xq.occupied_mask());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_XQueueOccupancyMask)->Arg(4)->Arg(16)->Arg(64);

void BM_StealCellHandshake(benchmark::State& state) {
  StealCells cells;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cells.try_request(7));
    benchmark::DoNotOptimize(cells.poll_request());
    cells.complete_round();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StealCellHandshake);

void BM_AtomicFetchAddBaseline(benchmark::State& state) {
  // The operation the steal cells avoid; compare ns/op with the handshake.
  std::atomic<std::uint64_t> counter{0};
  for (auto _ : state)
    benchmark::DoNotOptimize(
        counter.fetch_add(1, std::memory_order_acq_rel));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AtomicFetchAddBaseline);

void BM_AllocatorMalloc(benchmark::State& state) {
  TaskAllocator::SharedPool pool(AllocatorMode::kMalloc);
  TaskAllocator alloc(pool);
  for (auto _ : state) {
    Task* t = alloc.allocate();
    benchmark::DoNotOptimize(t);
    alloc.release(t);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AllocatorMalloc);

void BM_AllocatorMultiLevel(benchmark::State& state) {
  TaskAllocator::SharedPool pool(AllocatorMode::kMultiLevel);
  TaskAllocator alloc(pool);
  for (auto _ : state) {
    Task* t = alloc.allocate();
    benchmark::DoNotOptimize(t);
    alloc.release(t);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AllocatorMultiLevel);

// Shared-pool churn: every thread allocates a burst larger than the local
// cache and releases it all, so each iteration is forced through the
// shared overflow pool (acquire on the way up, spill on the way down).
// This is the serialization case the mutex pool loses on; run at 1 and 4
// threads to expose the scaling cliff.
class AllocatorChurn : public benchmark::Fixture {
 public:
  // SetUp/TearDown run on every benchmark thread: only thread 0 builds and
  // tears down the shared state, and the per-thread allocators are fixture
  // members (not body locals) so their pool-draining destructors cannot
  // race the pool teardown — every thread has passed the state-loop end
  // barrier before thread 0 runs TearDown.
  void SetUp(const benchmark::State& state) override {
    if (state.thread_index() != 0) return;
    pool_ = std::make_unique<TaskAllocator::SharedPool>(
        AllocatorMode::kMultiLevel);
    allocs_.clear();
    for (int t = 0; t < state.threads(); ++t)
      allocs_.push_back(std::make_unique<TaskAllocator>(*pool_));
  }
  void TearDown(const benchmark::State& state) override {
    if (state.thread_index() != 0) return;
    allocs_.clear();
    pool_.reset();
  }

 protected:
  std::unique_ptr<TaskAllocator::SharedPool> pool_;
  std::vector<std::unique_ptr<TaskAllocator>> allocs_;
};

BENCHMARK_DEFINE_F(AllocatorChurn, SharedPool)(benchmark::State& state) {
  constexpr std::size_t kBurst = 512;  // 2x the local cache limit
  // Fixture members are safe to touch only once the state loop's start
  // barrier has passed (thread 0 populates them in SetUp); pick up this
  // thread's allocator on the first iteration.
  TaskAllocator* alloc = nullptr;
  std::vector<Task*> burst(kBurst, nullptr);
  for (auto _ : state) {
    if (alloc == nullptr)
      alloc = allocs_[static_cast<std::size_t>(state.thread_index())].get();
    for (auto& t : burst) t = alloc->allocate();
    benchmark::DoNotOptimize(burst.data());
    for (Task* t : burst) alloc->release(t);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBurst));
}
BENCHMARK_REGISTER_F(AllocatorChurn, SharedPool)->Threads(1)->Threads(4)
    ->UseRealTime();

void BM_TreeBarrierPoll(benchmark::State& state) {
  // Steady-state poll cost of a non-root node (no release): the per-idle-
  // iteration overhead XGOMPTB pays.
  TreeBarrier tb(64);
  for (auto _ : state) benchmark::DoNotOptimize(tb.poll(5, 10, 9, 1));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TreeBarrierPoll);

void BM_CentralBarrierTaskCount(benchmark::State& state) {
  // The XGOMP per-task barrier traffic (single-threaded floor; on a
  // loaded machine each op also pays the cache-line handoff).
  CentralBarrier cb(64);
  for (auto _ : state) {
    cb.task_created();
    cb.task_finished();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CentralBarrierTaskCount);

void BM_Blake3_32B(benchmark::State& state) {
  std::uint8_t msg[32] = {1, 2, 3};
  std::uint8_t out[28];
  for (auto _ : state) {
    posp::Blake3::hash(msg, sizeof(msg), out, sizeof(out));
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 32);
}
BENCHMARK(BM_Blake3_32B);

void BM_Blake3_8K(benchmark::State& state) {
  std::vector<std::uint8_t> msg(8192, 0xab);
  std::uint8_t out[32];
  for (auto _ : state) {
    posp::Blake3::hash(msg.data(), msg.size(), out, sizeof(out));
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          8192);
}
BENCHMARK(BM_Blake3_8K);

}  // namespace

BENCHMARK_MAIN();
