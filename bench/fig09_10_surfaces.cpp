// Reproduces Figs. 9 & 10: DLB improvement over XGOMPTB as a function of
// task size and steal size S_steal = N_steal * N_victim / log10(T_interval)
// (Eq. 1), for NA-RP and NA-WS, on synthetic irregular workloads.
//
// Paper shape:
//   NA-RP (Fig. 9): degradation for tasks < 1e2 cycles; flat for 1e2-1e4;
//     large tasks benefit from large steal sizes, up to ~4x.
//   NA-WS (Fig. 10): degradation only for small tasks + large steal size;
//     improvement grows with task size; less configuration-sensitive.
#include <cmath>

#include "bench_util.hpp"

using namespace xbench;

namespace {

void surface(SimDlb strategy, const char* title) {
  std::printf("\n-- %s: improvement (x) over XGOMPTB SLB --\n", title);
  std::printf("rows: task size (cycles); cols: S_steal = "
              "Nsteal*Nvictim/log10(Tint)\n");
  struct Knob {
    int n_victim;
    int n_steal;
    std::uint64_t t_int;
  };
  // Chosen so S_steal spans ~1e0 .. ~2.6e2 (log-spaced columns).
  const Knob knobs[] = {
      {1, 4, 10'000}, {2, 8, 10'000}, {8, 16, 10'000}, {24, 32, 10'000}};
  std::printf("%10s", "task_size");
  for (const Knob& k : knobs)
    std::printf(" %9.0f",
                k.n_steal * k.n_victim /
                    std::log10(static_cast<double>(k.t_int)));
  std::printf("\n");
  for (std::uint64_t task_cycles :
       {50ull, 500ull, 5'000ull, 50'000ull, 500'000ull}) {
    // Keep total work roughly constant, but never fewer than ~8 tasks per
    // worker — with one task per core there is nothing to balance and any
    // DLB can only lose.
    const std::uint64_t ntasks =
        std::max<std::uint64_t>(192 * 8, 40'000'000 / task_cycles);
    const auto wl = xtask::sim::wl_irregular(ntasks, task_cycles, 0.5);
    const auto slb = simulate(paper_machine(SimPolicy::kXGompTB), wl);
    std::printf("%10llu", static_cast<unsigned long long>(task_cycles));
    for (const Knob& k : knobs) {
      SimConfig cfg = paper_machine(SimPolicy::kXGompTB);
      cfg.dlb = strategy;
      cfg.dlb_cfg = {k.n_victim, k.n_steal, k.t_int, 1.0};
      const auto res = simulate(cfg, wl);
      std::printf(" %8.2fx", static_cast<double>(slb.makespan) /
                                 static_cast<double>(res.makespan));
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  print_header("Figs. 9 & 10 — DLB improvement surfaces",
               "synthetic heavy-tailed workloads, 192 simulated cores, "
               "mem_intensity 0.5.");
  surface(SimDlb::kRedirectPush, "Fig. 9  NA-RP");
  surface(SimDlb::kWorkSteal, "Fig. 10 NA-WS");
  return 0;
}
