// Ablation (DESIGN.md): how much of XGOMPTB's win comes from which barrier
// property. Compares, on fine-grained workloads across thread counts:
//   GOMP       — barrier state under the global task lock,
//   XGOMP      — atomic global task count (2 contended RMW per task),
//   XGOMPTB    — distributed tree barrier (zero RMW),
//   XGOMPTB-R  — tree barrier whose release/gather cells cost as much as
//                contended RMWs (what a lock-free *atomic* tree would pay;
//                isolates the paper's "lock-less releasing" claim).
#include "bench_util.hpp"

using namespace xbench;

int main() {
  print_header("Ablation — barrier designs on fine-grained tasking",
               "Fib(21); simulated seconds @2.1 GHz per thread count.");
  std::printf("%-12s %10s %10s %10s %10s\n", "threads", "GOMP", "XGOMP",
              "XGOMPTB", "XGOMPTB-R");
  const auto wl = xtask::sim::wl_fib(21);
  for (int threads : {24, 96, 192}) {
    auto run_with = [&](SimPolicy p, bool expensive_cells) {
      SimConfig cfg;
      cfg.policy = p;
      cfg.machine.topo =
          xtask::Topology::synthetic(threads, std::max(1, threads / 24));
      if (expensive_cells) {
        // Tree cells become RMW-priced: poll cost includes an atomic op.
        cfg.machine.barrier_poll += cfg.machine.atomic_transfer / 2;
      }
      return simulate(cfg, wl).seconds();
    };
    std::printf("%-12d %10.4f %10.4f %10.4f %10.4f\n", threads,
                run_with(SimPolicy::kGomp, false),
                run_with(SimPolicy::kXGomp, false),
                run_with(SimPolicy::kXGompTB, false),
                run_with(SimPolicy::kXGompTB, true));
  }
  std::printf("\nreading: XGOMP pays per *task*; both tree variants pay per"
              " *poll*, so even\nRMW-priced tree cells beat the global"
              " counter — but the lock-less cells keep\nthe idle-poll tax"
              " low, which is the §III-B design point.\n");
  return 0;
}
