// Ablation (paper §X future work, implemented here): the adaptive DLB —
// workers sample their own task sizes and self-select the Table IV
// guideline row — compared against static balancing and the two fixed
// strategies with mid-range settings, across the BOTS suite.
//
// Expected shape: adaptive ≈ the better of the fixed strategies on each
// app without per-app tuning, and never far below SLB.
#include "bench_util.hpp"

using namespace xbench;

int main() {
  print_header("Ablation — adaptive DLB vs fixed strategies",
               "192 simulated cores; fixed strategies use mid-range "
               "settings {8,16,1e4,1.0}; adaptive self-tunes per worker.");
  std::printf("%-10s %10s %10s %10s %10s | %9s\n", "app", "SLB(s)",
              "NA-RP(s)", "NA-WS(s)", "adapt(s)", "adapt/SLB");
  const SimDlbConfig fixed{8, 16, 10'000, 1.0};
  for (const auto& wl : xtask::sim::bots_suite(Scale::kSweep)) {
    const auto slb = simulate(paper_machine(SimPolicy::kXGompTB), wl);
    auto run_with = [&](SimDlb d) {
      SimConfig cfg = paper_machine(SimPolicy::kXGompTB);
      cfg.dlb = d;
      cfg.dlb_cfg = fixed;
      return simulate(cfg, wl);
    };
    const auto rp = run_with(SimDlb::kRedirectPush);
    const auto ws = run_with(SimDlb::kWorkSteal);
    const auto ad = run_with(SimDlb::kAdaptive);
    std::printf("%-10s %10.4f %10.4f %10.4f %10.4f | %8.2fx\n",
                wl.name.c_str(), slb.seconds(), rp.seconds(), ws.seconds(),
                ad.seconds(), slb.seconds() / ad.seconds());
  }
  return 0;
}
