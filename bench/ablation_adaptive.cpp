// Ablation (paper §X future work, implemented here): the adaptive DLB —
// workers sample their own task sizes and self-select the Table IV
// guideline row — compared against static balancing and the two fixed
// strategies with mid-range settings, across the BOTS suite.
//
// Expected shape: adaptive ≈ the better of the fixed strategies on each
// app without per-app tuning, and never far below SLB.
//
// A second, real-thread section ablates the hybrid dispatch layer: the
// same BOTS kernels on the actual runtime with the steal protocol forced
// on (dmode=messaging), bypassed (dmode=direct), and self-selecting
// (auto), against the LOMP-like baseline the perf gate compares against.
#include <chrono>

#include "bench_util.hpp"
#include "bots/bots.hpp"
#include "registry/registry.hpp"

using namespace xbench;

namespace {

using xtask::bots::fib_parallel;
using xtask::bots::nqueens_parallel;

double kernel_ms(const std::string& spec, const char* app, int reps) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    xtask::AnyRuntime rt = xtask::RuntimeRegistry::make(spec);
    const auto t0 = std::chrono::steady_clock::now();
    if (std::string(app) == "fib")
      fib_parallel(rt, 22, 8);
    else
      nqueens_parallel(rt, 9, 3);
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

void real_thread_section() {
  print_header("Ablation — hybrid dispatch on real threads",
               "4 threads, 2 zones; best of 3 reps per cell. `auto` is "
               "the per-epoch mode controller; messaging/direct pin it.");
  std::printf("%-10s %10s %10s %10s %10s | %11s\n", "app", "lomp(ms)",
              "msg(ms)", "direct(ms)", "auto(ms)", "auto/lomp");
  const char* base = "xtask:threads=4,zones=2,dlb=adaptive";
  for (const char* app : {"fib", "nqueens"}) {
    const double lomp = kernel_ms("lomp:threads=4", app, 3);
    const double msg = kernel_ms(std::string(base) + ",dmode=messaging",
                                 app, 3);
    const double dir = kernel_ms(std::string(base) + ",dmode=direct",
                                 app, 3);
    const double aut = kernel_ms(base, app, 3);
    std::printf("%-10s %10.2f %10.2f %10.2f %10.2f | %10.2fx\n", app, lomp,
                msg, dir, aut, aut / lomp);
  }
}

}  // namespace

int main() {
  real_thread_section();
  print_header("Ablation — adaptive DLB vs fixed strategies",
               "192 simulated cores; fixed strategies use mid-range "
               "settings {8,16,1e4,1.0}; adaptive self-tunes per worker.");
  std::printf("%-10s %10s %10s %10s %10s | %9s\n", "app", "SLB(s)",
              "NA-RP(s)", "NA-WS(s)", "adapt(s)", "adapt/SLB");
  const SimDlbConfig fixed{8, 16, 10'000, 1.0};
  for (const auto& wl : xtask::sim::bots_suite(Scale::kSweep)) {
    const auto slb = simulate(paper_machine(SimPolicy::kXGompTB), wl);
    auto run_with = [&](SimDlb d) {
      SimConfig cfg = paper_machine(SimPolicy::kXGompTB);
      cfg.dlb = d;
      cfg.dlb_cfg = fixed;
      return simulate(cfg, wl);
    };
    const auto rp = run_with(SimDlb::kRedirectPush);
    const auto ws = run_with(SimDlb::kWorkSteal);
    const auto ad = run_with(SimDlb::kAdaptive);
    std::printf("%-10s %10.4f %10.4f %10.4f %10.4f | %8.2fx\n",
                wl.name.c_str(), slb.seconds(), rp.seconds(), ws.seconds(),
                ad.seconds(), slb.seconds() / ad.seconds());
  }
  return 0;
}
