// Reproduces Fig. 6: scaling of GOMP, XGOMP, and XGOMPTB as the thread
// count grows from one socket (24) to eight (192), per BOTS application.
//
// Paper shape: XGOMP/XGOMPTB improve with threads but sub-linearly (work
// time inflation: remote-socket memory access grows with the team); GOMP
// *degrades* with threads on fine-grained apps (more lock contention);
// Align is comparable across runtimes at low thread counts.
#include "bench_util.hpp"

using namespace xbench;

int main() {
  print_header("Fig. 6 — thread scaling per application",
               "simulated seconds @2.1 GHz; 24 threads = 1 NUMA zone.");
  constexpr int kThreads[] = {24, 48, 96, 192};
  constexpr SimPolicy kPolicies[] = {SimPolicy::kGomp, SimPolicy::kXGomp,
                                     SimPolicy::kXGompTB};
  for (const auto& wl : xtask::sim::bots_suite(Scale::kSweep)) {
    std::printf("\n%s\n%-9s", wl.name.c_str(), "threads");
    for (int t : kThreads) std::printf(" %11d", t);
    std::printf("\n");
    for (SimPolicy p : kPolicies) {
      std::printf("%-9s", sim_policy_name(p));
      for (int t : kThreads) {
        SimConfig cfg = paper_machine(p);
        // 24 cores per zone, the paper's Skylake zone width.
        cfg.machine.topo = xtask::Topology::synthetic(t, (t + 23) / 24);
        const auto res = simulate(cfg, wl);
        std::printf(" %11.4f", res.seconds());
      }
      std::printf("\n");
    }
  }
  return 0;
}
