// Reproduces Fig. 3: per-thread load-imbalance profile of Fib and Sort
// under XGOMP, using the *real* threaded runtime and the §V profiling
// tools (not the simulator): a timeline summary (share of cycles per
// state per thread) and the created/executed task counts per thread.
//
// Paper shape: Fib is imbalanced in both utilization and task counts
// (low-id threads do less); Sort has balanced task counts but mid-range
// threads carry more utilized time.
//
// Note: thread count scales to the host (the paper used 192 cores); the
// imbalance pattern, not its absolute width, is the artifact.
#include <algorithm>
#include <cstdio>
#include <string>

#include "bots/bots.hpp"
#include "core/runtime.hpp"
#include "sim/workloads.hpp"
#include "registry/registry.hpp"

using namespace xtask;

namespace {

Config xgomp_cfg(int threads) {
  Config cfg;
  cfg.num_threads = threads;
  cfg.numa_zones = 2;
  cfg.barrier = BarrierKind::kCentral;  // XGOMP configuration
  cfg.allocator = AllocatorMode::kMalloc;
  cfg.profile_events = true;
  return cfg;
}

}  // namespace

int main() {
  const int threads = 8;  // scaled to a small host; paper used 192

  std::printf("==== Fig. 3 — per-thread load imbalance under XGOMP ====\n");
  std::printf("real threaded runtime, %d threads, profiling events on\n",
              threads);

  {
    std::printf("\n--- Fib(24) ---\n");
    const auto rt_h = RuntimeRegistry::make_xtask(xgomp_cfg(threads));
    Runtime& rt = *rt_h;
    bots::fib_parallel(rt, 24);
    std::fputs(rt.profiler().timeline_report().c_str(), stdout);
  }
  {
    std::printf("\n--- Sort(2^20) ---\n");
    const auto rt_h = RuntimeRegistry::make_xtask(xgomp_cfg(threads));
    Runtime& rt = *rt_h;
    auto data = bots::sort_input(1 << 20, 3);
    bots::sort_parallel(rt, data, 1 << 13, 1 << 13);
    std::fputs(rt.profiler().timeline_report().c_str(), stdout);
  }
  std::printf(
      "\nexpected pattern: Fib rows differ in both bar length (utilization)"
      "\nand task counts; Sort rows have similar counts but uneven bars.\n");

  // Simulated 192-core version (paper scale): per-worker utilization and
  // task-count summaries from the XGOMP policy, condensed to zone
  // aggregates (24 workers each) so the table stays readable.
  std::printf("\n--- simulated 192 cores (XGOMP policy), per-NUMA-zone "
              "aggregates ---\n");
  for (const char* app : {"Fib", "Sort"}) {
    sim::SimWorkload wl = std::string(app) == "Fib"
                              ? sim::wl_fib(21)
                              : sim::wl_sort(1 << 18, 1 << 11);
    sim::SimConfig cfg;
    cfg.policy = sim::SimPolicy::kXGomp;
    const auto res = sim::simulate(cfg, wl);
    std::printf("%s: makespan %.4fs\n", app, res.seconds());
    std::printf("%-6s %14s %12s %12s\n", "zone", "busy(cycles)", "created",
                "executed");
    for (int z = 0; z < 8; ++z) {
      std::uint64_t busy = 0;
      std::uint64_t created = 0;
      std::uint64_t executed = 0;
      for (int w = z * 24; w < (z + 1) * 24; ++w) {
        busy += res.busy_per_worker[static_cast<std::size_t>(w)];
        created +=
            res.per_worker[static_cast<std::size_t>(w)].ntasks_created;
        executed +=
            res.per_worker[static_cast<std::size_t>(w)].ntasks_executed;
      }
      std::printf("z%-5d %14llu %12llu %12llu\n", z,
                  static_cast<unsigned long long>(busy),
                  static_cast<unsigned long long>(created),
                  static_cast<unsigned long long>(executed));
    }
  }
  return 0;
}
