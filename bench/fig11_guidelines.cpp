// Reproduces Table IV + Fig. 11: apply the paper's tuning guidelines —
// pick the DLB strategy and parameters from the application's task-size
// class — and compare XGOMPTB (SLB), NA-RP(guideline), NA-WS(guideline)
// on the BOTS suite.
//
// Paper guidelines (Table IV):
//   task size 1e1-1e2   -> WS, P_local 100%, S_steal 1e0-1e1
//   task size ~1e2      -> WS, P_local 100%, S_steal 1e1-1e2
//   task size ~1e3      -> WS, P_local 100%, S_steal 1e2-1e2.5
//   task size 1e3-1e4   -> WS, P_local 3-50%, S_steal 1e2.5-1e3
//   task size >1e4      -> RP, P_local 3-12%... (RP best fully local in
//                          Table I; the guideline row lists small P_local)
// Paper shape (Fig. 11): guideline settings beat or match XGOMP/SLB on
// every app, with the big wins on the coarse memory-bound apps.
#include "bench_util.hpp"

using namespace xbench;

namespace {

/// Approximate per-app modal task size in cycles (§VI-A measurements).
std::uint64_t task_size_class(const std::string& app) {
  if (app == "Fib") return 50;
  if (app == "NQueens") return 100;
  if (app == "UTS") return 300;
  if (app == "FP") return 500;
  if (app == "Health") return 3'000;
  if (app == "FFT") return 5'000;
  if (app == "STRAS") return 30'000;
  if (app == "Sort") return 100'000;
  return 1'000'000;  // Align
}

/// Table IV row selection.
void guideline_for(std::uint64_t s_task, SimDlb* strategy,
                   SimDlbConfig* cfg) {
  if (s_task > 10'000) {
    *strategy = SimDlb::kRedirectPush;
    *cfg = {24, 32, 1'000, 0.08};  // max steal size, P_local 3-12% row
    return;
  }
  *strategy = SimDlb::kWorkSteal;
  if (s_task <= 100) {
    *cfg = {1, 4, 10'000, 1.0};  // S_steal ~1e0-1e1, fully local
  } else if (s_task <= 1'000) {
    *cfg = {4, 16, 10'000, 1.0};  // S_steal ~1e1-1e2
  } else {
    *cfg = {8, 32, 10'000, 0.5};  // S_steal ~1e2.5, mixed locality
  }
}

}  // namespace

int main() {
  print_header("Table IV + Fig. 11 — guideline-driven DLB settings",
               "per-app strategy chosen from task-size class only; "
               "simulated seconds @2.1 GHz.");
  std::printf("%-10s %9s | %-6s %10s %9s %9s\n", "app", "SLB(s)", "pick",
              "guided(s)", "vs SLB", "S_task");
  for (const auto& wl : xtask::sim::bots_suite(Scale::kSweep)) {
    const auto slb = simulate(paper_machine(SimPolicy::kXGompTB), wl);
    SimDlb strategy{};
    SimDlbConfig dlb_cfg{};
    const std::uint64_t s_task = task_size_class(wl.name);
    guideline_for(s_task, &strategy, &dlb_cfg);
    SimConfig cfg = paper_machine(SimPolicy::kXGompTB);
    cfg.dlb = strategy;
    cfg.dlb_cfg = dlb_cfg;
    const auto guided = simulate(cfg, wl);
    std::printf("%-10s %9.4f | %-6s %10.4f %8.2fx %9llu\n", wl.name.c_str(),
                slb.seconds(),
                strategy == SimDlb::kRedirectPush ? "RP" : "WS",
                guided.seconds(), slb.seconds() / guided.seconds(),
                static_cast<unsigned long long>(s_task));
  }
  std::printf(
      "\nnote: the >1e4-cycle RP row applies Table IV literally (N_steal "
      "32).\nIn this simulator large redirect batches over-cluster work "
      "(EXPERIMENTS.md,\n\"Known fidelity deviations\"); RP with N_steal 1 "
      "is the sim's own best for\nthose apps (see fig07_dlb_best).\n");
  return 0;
}
