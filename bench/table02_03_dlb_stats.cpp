// Reproduces Tables II & III: runtime statistics (task locality, static
// pushes, immediate executions, steal-request funnel, stolen-task
// locality) per BOTS application under NA-RP, NA-WS, and static balancing.
//
// Paper shape: Fib/NQueens execute almost everything on the creating core
// (huge imm-exec counts); Health/STRAS/Sort run mostly remote under SLB
// and the DLBs pull work back to self/local; most handled requests carry
// steals; fully-local settings steal locally only.
#include "bench_util.hpp"

using namespace xbench;

namespace {

void print_stats(const char* strategy, const SimWorkload& wl,
                 const SimResult& r) {
  const xtask::Counters& c = r.totals;
  std::printf(
      "%-10s %-5s %9.4f %9s %9s %9s %9s %9s %9s %9s %9s %9s %9s\n",
      wl.name.c_str(), strategy, r.seconds(),
      human(static_cast<double>(c.ntasks_self)).c_str(),
      human(static_cast<double>(c.ntasks_local)).c_str(),
      human(static_cast<double>(c.ntasks_remote)).c_str(),
      human(static_cast<double>(c.ntasks_static_push)).c_str(),
      human(static_cast<double>(c.ntasks_imm_exec)).c_str(),
      human(static_cast<double>(c.nreq_sent)).c_str(),
      human(static_cast<double>(c.nreq_handled)).c_str(),
      human(static_cast<double>(c.nreq_has_steal)).c_str(),
      human(static_cast<double>(c.nsteal_local + c.nsteal_remote)).c_str(),
      human(static_cast<double>(c.nsteal_local)).c_str());
}

}  // namespace

int main() {
  print_header("Tables II & III — runtime statistics: NA-RP / NA-WS / SLB",
               "192 simulated cores; counters aggregated over workers.");
  std::printf("%-10s %-5s %9s %9s %9s %9s %9s %9s %9s %9s %9s %9s %9s\n",
              "app", "strat", "time(s)", "self", "local", "remote", "push",
              "immexec", "reqsent", "reqhndl", "reqsteal", "totsteal",
              "locsteal");
  // Representative good settings (Table I's pattern: large batches and
  // full locality for the memory-bound apps, small/local for fine tasks).
  const SimDlbConfig rp_cfg{24, 32, 1'000, 1.0};
  const SimDlbConfig ws_cfg{8, 32, 1'000, 1.0};
  for (const auto& wl : xtask::sim::bots_suite(Scale::kSweep)) {
    {
      SimConfig cfg = paper_machine(SimPolicy::kXGompTB);
      cfg.dlb = SimDlb::kRedirectPush;
      cfg.dlb_cfg = rp_cfg;
      print_stats("RP", wl, simulate(cfg, wl));
    }
    {
      SimConfig cfg = paper_machine(SimPolicy::kXGompTB);
      cfg.dlb = SimDlb::kWorkSteal;
      cfg.dlb_cfg = ws_cfg;
      print_stats("WS", wl, simulate(cfg, wl));
    }
    print_stats("SLB", wl, simulate(paper_machine(SimPolicy::kXGompTB), wl));
  }
  return 0;
}
