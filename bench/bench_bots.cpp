// Real-runtime BOTS kernel timings across the benchmark-protocol runtime
// configurations (RuntimeRegistry::bench_configs: GOMP-like, LOMP-like,
// and xtask under NA-RP and NA-WS). One JSON object per line on stdout so
// bench/run_bench.py can collect the results into BENCH_bots.json without
// scraping a table:
//
//   {"bench": "fib", "config": "xtask-naws", "threads": 4, "ms": 123.4}
//
// Usage:
//   bench_bots [threads] [reps]   each (kernel, config) cell reports the
//                                 best of `reps` runs (default 3) — min,
//                                 not mean: shared-host noise is one-sided
//   bench_bots --list-configs     print "name<TAB>spec" per protocol config
//   bench_bots --list-smoke       print the registry's smoke spec list
//   bench_bots --smoke SPEC       run one tiny kernel on SPEC (any
//                                 registry spec; honours XTASK_TOPOLOGY)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bots/bots.hpp"
#include "registry/registry.hpp"

namespace {

using namespace xtask;

/// Time one kernel run in milliseconds.
template <typename Fn>
double time_ms(Fn&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

template <typename KernelFn>
void report(const char* bench, int threads, int reps, KernelFn&& kernel) {
  for (const NamedConfig& config : RuntimeRegistry::bench_configs()) {
    BackendSpec spec = BackendSpec::parse(config.spec);
    spec.set("threads", std::to_string(threads));
    double best = 0.0;
    for (int r = 0; r < reps; ++r) {
      const double ms = time_ms([&] { RuntimeRegistry::with(spec, kernel); });
      if (r == 0 || ms < best) best = ms;
    }
    std::printf("{\"bench\": \"%s\", \"config\": \"%s\", \"threads\": %d, "
                "\"ms\": %.3f}\n",
                bench, config.name.c_str(), threads, best);
    std::fflush(stdout);
  }
}

/// One tiny-but-real kernel through the type-erased handle: enough tasking
/// to exercise the backend's scheduler, small enough for a CI smoke matrix
/// cell. Returns 0 on success.
int run_smoke(const std::string& spec) {
  // make_env: XTASK_BACKEND (when set) overrides the matrix cell, so CI
  // can drive one smoke run through an arbitrary spec end-to-end.
  AnyRuntime rt = RuntimeRegistry::make_env(spec);
  const long want = bots::fib_serial(18);
  const long got = bots::fib_parallel(rt, 18);
  const auto counters = rt.total_counters();
  std::printf("smoke %-40s fib(18)=%ld tasks=%llu\n", rt.describe().c_str(),
              got, static_cast<unsigned long long>(counters.ntasks_executed));
  if (got != want) {
    std::fprintf(stderr, "smoke FAILED for '%s': got %ld want %ld\n",
                 spec.c_str(), got, want);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--list-configs") == 0) {
    for (const NamedConfig& c : RuntimeRegistry::bench_configs())
      std::printf("%s\t%s\n", c.name.c_str(), c.spec.c_str());
    return 0;
  }
  if (argc > 1 && std::strcmp(argv[1], "--list-smoke") == 0) {
    for (const std::string& s : RuntimeRegistry::smoke_specs())
      std::printf("%s\n", s.c_str());
    return 0;
  }
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) {
    if (argc < 3) {
      std::fprintf(stderr, "usage: bench_bots --smoke SPEC\n");
      return 2;
    }
    try {
      return run_smoke(argv[2]);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "smoke FAILED for '%s': %s\n", argv[2], e.what());
      return 1;
    }
  }

  const int threads = argc > 1 ? std::atoi(argv[1]) : 4;
  const int reps = argc > 2 ? std::atoi(argv[2]) : 3;

  // Problem sizes follow the tier-1 matrix tests, scaled up enough that a
  // run is dominated by tasking rather than runtime construction, but
  // small enough to finish quickly on a constrained CI host.
  report("fib", threads, reps, [](auto& rt) {
    const long got = bots::fib_parallel(rt, 22);
    if (got != 17711) std::abort();  // fib(22); guards against dead-code
  });
  report("nqueens", threads, reps, [](auto& rt) {
    const long got = bots::nqueens_parallel(rt, 9, 3);
    if (got != 352) std::abort();
  });
  report("sparselu", threads, reps, [](auto& rt) {
    bots::SparseLuParams p;
    p.blocks = 12;
    p.block_size = 16;
    const double got = bots::sparselu_parallel(rt, p);
    if (!(got == got)) std::abort();  // NaN guard
  });
  return 0;
}
