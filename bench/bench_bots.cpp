// Real-runtime BOTS kernel timings across the four concrete runtimes of
// the reproduction: GOMP-like, LOMP-like, and xtask under NA-RP and NA-WS.
// One JSON object per line on stdout so bench/run_bench.py can collect the
// results into BENCH_bots.json without scraping a table:
//
//   {"bench": "fib", "config": "xtask-naws", "threads": 4, "ms": 123.4}
//
// Usage: bench_bots [threads] [reps]
// Each (kernel, config) cell reports the best of `reps` runs (default 3) —
// min, not mean, because on a shared host the noise is one-sided.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bots/bots.hpp"
#include "core/runtime.hpp"
#include "gomp/gomp_runtime.hpp"
#include "gomp/lomp_runtime.hpp"

namespace {

using namespace xtask;

constexpr const char* kConfigs[] = {"gomp", "lomp", "xtask-narp",
                                    "xtask-naws"};

/// Run `kernel(rt)` on the named runtime configuration (mirrors the
/// tests/test_bots_matrix.cpp flavour table, restricted to the four
/// configurations the benchmark protocol compares).
template <typename KernelFn>
void with_runtime(const std::string& config, int threads, KernelFn&& kernel) {
  if (config == "gomp") {
    gomp::GompRuntime::Config cfg;
    cfg.num_threads = threads;
    gomp::GompRuntime rt(cfg);
    kernel(rt);
  } else if (config == "lomp") {
    lomp::LompRuntime::Config cfg;
    cfg.num_threads = threads;
    lomp::LompRuntime rt(cfg);
    kernel(rt);
  } else if (config == "xtask-narp") {
    Config cfg;
    cfg.num_threads = threads;
    cfg.numa_zones = threads >= 4 ? 2 : 1;
    cfg.dlb = DlbKind::kRedirectPush;
    // Generous queues: overflow pushes execute inline and recurse, and at
    // benchmark task counts a deep inline cascade can exhaust the stack.
    cfg.queue_capacity = 8192;
    Runtime rt(cfg);
    kernel(rt);
  } else {  // xtask-naws
    Config cfg;
    cfg.num_threads = threads;
    cfg.numa_zones = threads >= 4 ? 2 : 1;
    cfg.dlb = DlbKind::kWorkSteal;
    cfg.dlb_cfg.t_interval = 128;
    cfg.queue_capacity = 8192;
    Runtime rt(cfg);
    kernel(rt);
  }
}

/// Time one kernel run in milliseconds.
template <typename Fn>
double time_ms(Fn&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

template <typename KernelFn>
void report(const char* bench, int threads, int reps, KernelFn&& kernel) {
  for (const char* config : kConfigs) {
    double best = 0.0;
    for (int r = 0; r < reps; ++r) {
      const double ms =
          time_ms([&] { with_runtime(config, threads, kernel); });
      if (r == 0 || ms < best) best = ms;
    }
    std::printf("{\"bench\": \"%s\", \"config\": \"%s\", \"threads\": %d, "
                "\"ms\": %.3f}\n",
                bench, config, threads, best);
    std::fflush(stdout);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int threads = argc > 1 ? std::atoi(argv[1]) : 4;
  const int reps = argc > 2 ? std::atoi(argv[2]) : 3;

  // Problem sizes follow the tier-1 matrix tests, scaled up enough that a
  // run is dominated by tasking rather than runtime construction, but
  // small enough to finish quickly on a constrained CI host.
  report("fib", threads, reps, [](auto& rt) {
    const long got = bots::fib_parallel(rt, 22);
    if (got != 17711) std::abort();  // fib(22); guards against dead-code
  });
  report("nqueens", threads, reps, [](auto& rt) {
    const long got = bots::nqueens_parallel(rt, 9, 3);
    if (got != 352) std::abort();
  });
  report("sparselu", threads, reps, [](auto& rt) {
    bots::SparseLuParams p;
    p.blocks = 12;
    p.block_size = 16;
    const double got = bots::sparselu_parallel(rt, p);
    if (!(got == got)) std::abort();  // NaN guard
  });
  return 0;
}
