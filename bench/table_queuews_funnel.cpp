// Reproduces the §IV-D request funnel for the *rejected* queue-based
// work-stealing design: requests are addressed to individual SPSC queues
// (one producer/consumer per cell, no overwrites) but victims can only
// scan a few cells per scheduling point.
//
// Paper shape: with millions of requests sent, only a tiny fraction of
// handled requests are valid and almost none produce steals ("62% of
// requests are handled ... less than 1% valid ... ~0.01% successful"),
// so the strategy neither balances load nor pays for its traffic —
// motivating the worker-granularity protocol (NA-WS).
#include "bench_util.hpp"

using namespace xbench;

int main() {
  print_header("§IV-D — queue-based WS request funnel (rejected design)",
               "XGOMPTB + queue-granularity request cells; compare against "
               "worker-granularity NA-WS on the same workloads.");
  std::printf("%-10s %-9s %10s %10s %10s %10s %10s %10s\n", "app", "design",
              "time(s)", "sent", "handled", "w/steal", "stolen",
              "steal/sent");
  for (const auto& wl : xtask::sim::bots_suite(Scale::kSweep)) {
    for (SimDlb d : {SimDlb::kQueueWorkSteal, SimDlb::kWorkSteal}) {
      SimConfig cfg = paper_machine(SimPolicy::kXGompTB);
      cfg.dlb = d;
      cfg.dlb_cfg = {8, 8, 10'000, 1.0};
      const auto res = simulate(cfg, wl);
      const auto& c = res.totals;
      const double stolen =
          static_cast<double>(c.nsteal_local + c.nsteal_remote);
      std::printf(
          "%-10s %-9s %10.4f %10s %10s %10s %10s %9.4f%%\n", wl.name.c_str(),
          d == SimDlb::kQueueWorkSteal ? "queue-WS" : "NA-WS", res.seconds(),
          human(static_cast<double>(c.nreq_sent)).c_str(),
          human(static_cast<double>(c.nreq_handled)).c_str(),
          human(static_cast<double>(c.nreq_has_steal)).c_str(),
          human(stolen).c_str(),
          c.nreq_sent == 0
              ? 0.0
              : 100.0 * static_cast<double>(c.nreq_has_steal) /
                    static_cast<double>(c.nreq_sent));
    }
  }
  return 0;
}
