// Portable BLAKE3 cryptographic hash (O'Connor et al., 2019), implemented
// from the public specification. The Proof-of-Space application (§VII)
// hashes nonces with BLAKE3 exactly as the paper's PoSp implementation
// does; this is a complete single-threaded implementation (keyed mode and
// extendable output included), not a stub.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace xtask::posp {

class Blake3 {
 public:
  static constexpr std::size_t kOutLen = 32;  // default digest bytes

  /// Regular hashing.
  Blake3();
  /// Keyed hashing with a 32-byte key.
  explicit Blake3(const std::uint8_t key[32]);

  /// Absorb `len` bytes.
  void update(const void* data, std::size_t len);

  /// Produce `out_len` bytes of output (XOF: any length). May be called
  /// once per hasher state; does not modify the absorbed state.
  void finalize(std::uint8_t* out, std::size_t out_len) const;

  /// One-shot convenience.
  static void hash(const void* data, std::size_t len, std::uint8_t* out,
                   std::size_t out_len = kOutLen);

  /// Hex digest convenience (tests, logging).
  static std::string hex(const void* data, std::size_t len,
                         std::size_t out_len = kOutLen);

 private:
  struct Output;  // chaining-value producer (spec's "output" object)

  struct ChunkState {
    std::array<std::uint32_t, 8> cv;
    std::uint64_t chunk_counter = 0;
    std::uint8_t block[64] = {};
    std::uint8_t block_len = 0;
    std::uint8_t blocks_compressed = 0;
    std::uint32_t flags = 0;

    std::size_t len() const noexcept {
      return 64 * static_cast<std::size_t>(blocks_compressed) + block_len;
    }
  };

  void add_chunk_cv(const std::array<std::uint32_t, 8>& cv,
                    std::uint64_t total_chunks);

  std::array<std::uint32_t, 8> key_;
  ChunkState chunk_;
  // Stack of subtree chaining values (one per set bit of the chunk count).
  std::array<std::array<std::uint32_t, 8>, 54> cv_stack_;
  std::uint8_t cv_stack_len_ = 0;
  std::uint32_t base_flags_ = 0;
};

}  // namespace xtask::posp
