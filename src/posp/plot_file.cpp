#include "posp/plot_file.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace xtask::posp {

namespace {

constexpr std::size_t kRecordBytes = 32;  // 28-byte hash + 4-byte nonce

void encode_record(const Puzzle& p, std::uint8_t out[kRecordBytes]) {
  std::memcpy(out, p.hash, 28);
  for (int i = 0; i < 4; ++i)
    out[28 + i] = static_cast<std::uint8_t>(p.nonce >> (8 * i));
}

Puzzle decode_record(const std::uint8_t in[kRecordBytes]) {
  Puzzle p;
  std::memcpy(p.hash, in, 28);
  p.nonce = static_cast<std::uint32_t>(in[28]) |
            (static_cast<std::uint32_t>(in[29]) << 8) |
            (static_cast<std::uint32_t>(in[30]) << 16) |
            (static_cast<std::uint32_t>(in[31]) << 24);
  return p;
}

bool hash_less(const Puzzle& a, const Puzzle& b) {
  return std::memcmp(a.hash, b.hash, 28) < 0;
}

/// RAII FILE handle.
struct File {
  std::FILE* f = nullptr;
  explicit File(const char* path, const char* mode)
      : f(std::fopen(path, mode)) {}
  ~File() {
    if (f != nullptr) std::fclose(f);
  }
  explicit operator bool() const { return f != nullptr; }
};

}  // namespace

bool write_plot_file(const Plot& plot, const std::string& path) {
  File file(path.c_str(), "wb");
  if (!file) return false;

  PlotFileHeader header;
  header.plot_seed = plot.config().plot_seed;
  header.k = static_cast<std::uint32_t>(plot.config().k);
  header.bucket_bits = static_cast<std::uint32_t>(plot.config().bucket_bits);
  header.total_puzzles = plot.total_puzzles();
  if (std::fwrite(&header, sizeof(header), 1, file.f) != 1) return false;

  // Offset table (record indices, prefix sum over bucket sizes).
  const std::size_t buckets = plot.num_buckets();
  std::vector<std::uint64_t> offsets(buckets + 1, 0);
  for (std::size_t b = 0; b < buckets; ++b)
    offsets[b + 1] = offsets[b] + plot.bucket(b).size();
  if (std::fwrite(offsets.data(), sizeof(std::uint64_t), offsets.size(),
                  file.f) != offsets.size())
    return false;

  // Records, bucket by bucket, hash-sorted within each bucket.
  std::vector<Puzzle> sorted;
  std::vector<std::uint8_t> encoded;
  for (std::size_t b = 0; b < buckets; ++b) {
    sorted.assign(plot.bucket(b).begin(), plot.bucket(b).end());
    std::sort(sorted.begin(), sorted.end(), hash_less);
    encoded.resize(sorted.size() * kRecordBytes);
    for (std::size_t i = 0; i < sorted.size(); ++i)
      encode_record(sorted[i], encoded.data() + i * kRecordBytes);
    if (!encoded.empty() &&
        std::fwrite(encoded.data(), 1, encoded.size(), file.f) !=
            encoded.size())
      return false;
  }
  return std::fflush(file.f) == 0;
}

PlotFileReader::PlotFileReader(const std::string& path) : path_(path) {
  File file(path.c_str(), "rb");
  if (!file) {
    error_ = "cannot open " + path;
    return;
  }
  if (std::fread(&header_, sizeof(header_), 1, file.f) != 1 ||
      header_.magic != PlotFileHeader::kMagic) {
    error_ = "bad plot file header";
    return;
  }
  if (header_.bucket_bits > 24) {
    error_ = "implausible bucket_bits";
    return;
  }
  const std::uint64_t buckets = 1ull << header_.bucket_bits;
  offsets_.resize(buckets + 1);
  if (std::fread(offsets_.data(), sizeof(std::uint64_t), offsets_.size(),
                 file.f) != offsets_.size()) {
    error_ = "truncated offset table";
    offsets_.clear();
    return;
  }
  if (offsets_.back() != header_.total_puzzles) {
    error_ = "offset table does not cover all puzzles";
    offsets_.clear();
    return;
  }
  records_start_ =
      sizeof(header_) + offsets_.size() * sizeof(std::uint64_t);
}

std::vector<Puzzle> PlotFileReader::read_bucket(std::uint64_t bucket) const {
  std::vector<Puzzle> out;
  if (!ok() || bucket + 1 >= offsets_.size()) return out;
  const std::uint64_t first = offsets_[bucket];
  const std::uint64_t count = offsets_[bucket + 1] - first;
  if (count == 0) return out;
  File file(path_.c_str(), "rb");
  if (!file) return out;
  if (std::fseek(file.f,
                 static_cast<long>(records_start_ + first * kRecordBytes),
                 SEEK_SET) != 0)
    return out;
  std::vector<std::uint8_t> buf(count * kRecordBytes);
  if (std::fread(buf.data(), 1, buf.size(), file.f) != buf.size())
    return out;
  out.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i)
    out.push_back(decode_record(buf.data() + i * kRecordBytes));
  return out;
}

bool PlotFileReader::best_proof(const std::uint8_t challenge[28],
                                Puzzle* out) const {
  if (!ok()) return false;
  const std::uint32_t prefix =
      (static_cast<std::uint32_t>(challenge[0]) << 16) |
      (static_cast<std::uint32_t>(challenge[1]) << 8) |
      static_cast<std::uint32_t>(challenge[2]);
  const std::uint64_t bucket = prefix >> (24 - header_.bucket_bits);
  const auto puzzles = read_bucket(bucket);
  int best_score = -1;
  for (const Puzzle& p : puzzles) {
    int score = 0;
    for (int i = 0; i < 28; ++i) {
      const auto x = static_cast<std::uint8_t>(p.hash[i] ^ challenge[i]);
      if (x == 0) {
        score += 8;
        continue;
      }
      for (int bit = 7; bit >= 0; --bit) {
        if ((x >> bit) & 1) break;
        ++score;
      }
      break;
    }
    if (score > best_score) {
      best_score = score;
      *out = p;
    }
  }
  return best_score >= 0;
}

bool PlotFileReader::verify_all() const {
  if (!ok()) return false;
  PospConfig cfg;
  cfg.k = static_cast<int>(header_.k);
  cfg.bucket_bits = static_cast<int>(header_.bucket_bits);
  cfg.plot_seed = header_.plot_seed;
  Plot reference(cfg);  // only used for make_puzzle()
  std::uint64_t seen = 0;
  for (std::uint64_t b = 0; b + 1 < offsets_.size(); ++b) {
    const auto puzzles = read_bucket(b);
    for (std::size_t i = 0; i < puzzles.size(); ++i) {
      const Puzzle expect = reference.make_puzzle(puzzles[i].nonce);
      if (std::memcmp(expect.hash, puzzles[i].hash, 28) != 0) return false;
      if (i > 0 && hash_less(puzzles[i], puzzles[i - 1])) return false;
      ++seen;
    }
  }
  return seen == header_.total_puzzles;
}

}  // namespace xtask::posp
