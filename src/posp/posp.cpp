#include "posp/posp.hpp"

#include <chrono>
#include <cstring>

#include "core/common.hpp"

namespace xtask::posp {

Plot::Plot(const PospConfig& cfg)
    : cfg_(cfg),
      buckets_(static_cast<std::size_t>(1) << cfg.bucket_bits) {
  XTASK_CHECK(cfg.k >= 1 && cfg.k <= 32);
  XTASK_CHECK(cfg.bucket_bits >= 1 && cfg.bucket_bits <= 20);
}

Puzzle Plot::make_puzzle(std::uint32_t nonce) const {
  // Message: 8-byte plot seed || 4-byte nonce, little endian — the same
  // "hash a nonce into the plot" structure as the paper's PoSp.
  std::uint8_t msg[12];
  for (int i = 0; i < 8; ++i)
    msg[i] = static_cast<std::uint8_t>(cfg_.plot_seed >> (8 * i));
  for (int i = 0; i < 4; ++i)
    msg[8 + i] = static_cast<std::uint8_t>(nonce >> (8 * i));
  Puzzle p;
  Blake3::hash(msg, sizeof(msg), p.hash, sizeof(p.hash));
  p.nonce = nonce;
  return p;
}

void Plot::fill_range(std::uint32_t first, std::uint32_t count) {
  // Hash outside the lock; group appends per bucket to shorten critical
  // sections (the runtime under test is the tasking layer, not these
  // app-level bucket mutexes).
  for (std::uint32_t i = 0; i < count; ++i) {
    const Puzzle p = make_puzzle(first + i);
    Bucket& b = buckets_[bucket_index(p.hash)];
    std::lock_guard<std::mutex> lock(b.mu);
    b.puzzles.push_back(p);
  }
}

bool Plot::best_proof(const std::uint8_t challenge[28], Puzzle* out) const {
  const Bucket& b = buckets_[bucket_index(challenge)];
  // Score = common prefix bits with the challenge (higher is better).
  int best_score = -1;
  for (const Puzzle& p : b.puzzles) {
    int score = 0;
    for (int i = 0; i < 28; ++i) {
      const std::uint8_t x = static_cast<std::uint8_t>(p.hash[i] ^ challenge[i]);
      if (x == 0) {
        score += 8;
        continue;
      }
      for (int bit = 7; bit >= 0; --bit) {
        if ((x >> bit) & 1) break;
        ++score;
      }
      break;
    }
    if (score > best_score) {
      best_score = score;
      *out = p;
    }
  }
  return best_score >= 0;
}

bool Plot::verify(const Puzzle& proof) const {
  const Puzzle expect = make_puzzle(proof.nonce);
  return std::memcmp(expect.hash, proof.hash, sizeof(expect.hash)) == 0;
}

}  // namespace xtask::posp
