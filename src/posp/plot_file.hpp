// Plot-file persistence for Proof-of-Space (§VII): production PoSp chains
// (Chia, §VII's reference point) store the 2^K puzzles "in a single file"
// organized for efficient retrieval. This module serializes a Plot into
// that shape — a header, a bucket index, and bucket-sorted puzzle records
// — and answers challenges directly from the file without loading the
// whole plot.
//
// Layout (little-endian):
//   [PlotFileHeader]
//   [bucket offset table: (buckets+1) × u64]   — record indices, prefix-sum
//   [puzzle records: 32 bytes each, grouped by bucket, hash-sorted]
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "posp/posp.hpp"

namespace xtask::posp {

struct PlotFileHeader {
  static constexpr std::uint64_t kMagic = 0x58504c4f54763101ull;  // XPLOTv1
  std::uint64_t magic = kMagic;
  std::uint64_t plot_seed = 0;
  std::uint32_t k = 0;
  std::uint32_t bucket_bits = 0;
  std::uint64_t total_puzzles = 0;
};

/// Write `plot` to `path`. Buckets are emitted in index order with their
/// puzzles sorted by hash (binary-search-friendly). Returns false on I/O
/// failure.
bool write_plot_file(const Plot& plot, const std::string& path);

/// A plot stored on disk; answers challenges by reading one bucket.
class PlotFileReader {
 public:
  /// Open and validate the file. Throws nothing: check ok() after
  /// construction; error() describes the failure.
  explicit PlotFileReader(const std::string& path);

  bool ok() const noexcept { return error_.empty(); }
  const std::string& error() const noexcept { return error_; }
  const PlotFileHeader& header() const noexcept { return header_; }
  std::uint64_t num_buckets() const noexcept {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }

  /// Load one bucket's puzzles (ordered by hash).
  std::vector<Puzzle> read_bucket(std::uint64_t bucket) const;

  /// Best stored proof for `challenge` (same scoring as Plot::best_proof)
  /// touching only the matching bucket. Returns false on empty bucket.
  bool best_proof(const std::uint8_t challenge[28], Puzzle* out) const;

  /// Full-file integrity scan: recompute every puzzle hash and check the
  /// per-bucket ordering. Expensive; tooling/tests only.
  bool verify_all() const;

 private:
  std::string path_;
  std::string error_;
  PlotFileHeader header_{};
  std::vector<std::uint64_t> offsets_;  // record index per bucket, +1 end
  std::uint64_t records_start_ = 0;     // byte offset of first record
};

}  // namespace xtask::posp
