#include "posp/blake3.hpp"

#include <cstring>

namespace xtask::posp {

namespace {

constexpr std::uint32_t kIV[8] = {0x6A09E667u, 0xBB67AE85u, 0x3C6EF372u,
                                  0xA54FF53Au, 0x510E527Fu, 0x9B05688Cu,
                                  0x1F83D9ABu, 0x5BE0CD19u};

// Flags (spec §2.3).
constexpr std::uint32_t kChunkStart = 1u << 0;
constexpr std::uint32_t kChunkEnd = 1u << 1;
constexpr std::uint32_t kParent = 1u << 2;
constexpr std::uint32_t kRoot = 1u << 3;
constexpr std::uint32_t kKeyedHash = 1u << 4;

constexpr int kMsgPermutation[16] = {2, 6,  3,  10, 7, 0,  4,  13,
                                     1, 11, 12, 5,  9, 14, 15, 8};

inline std::uint32_t rotr(std::uint32_t x, int n) noexcept {
  return (x >> n) | (x << (32 - n));
}

inline void g(std::uint32_t* state, int a, int b, int c, int d,
              std::uint32_t mx, std::uint32_t my) noexcept {
  state[a] = state[a] + state[b] + mx;
  state[d] = rotr(state[d] ^ state[a], 16);
  state[c] = state[c] + state[d];
  state[b] = rotr(state[b] ^ state[c], 12);
  state[a] = state[a] + state[b] + my;
  state[d] = rotr(state[d] ^ state[a], 8);
  state[c] = state[c] + state[d];
  state[b] = rotr(state[b] ^ state[c], 7);
}

inline void round_fn(std::uint32_t state[16], const std::uint32_t m[16]) {
  // Columns.
  g(state, 0, 4, 8, 12, m[0], m[1]);
  g(state, 1, 5, 9, 13, m[2], m[3]);
  g(state, 2, 6, 10, 14, m[4], m[5]);
  g(state, 3, 7, 11, 15, m[6], m[7]);
  // Diagonals.
  g(state, 0, 5, 10, 15, m[8], m[9]);
  g(state, 1, 6, 11, 12, m[10], m[11]);
  g(state, 2, 7, 8, 13, m[12], m[13]);
  g(state, 3, 4, 9, 14, m[14], m[15]);
}

/// The compression function. Produces the full 16-word extended state;
/// callers take the first 8 words as a chaining value or all 16 for XOF.
void compress(const std::array<std::uint32_t, 8>& cv,
              const std::uint32_t block_words[16], std::uint64_t counter,
              std::uint32_t block_len, std::uint32_t flags,
              std::uint32_t out[16]) {
  std::uint32_t state[16] = {
      cv[0],
      cv[1],
      cv[2],
      cv[3],
      cv[4],
      cv[5],
      cv[6],
      cv[7],
      kIV[0],
      kIV[1],
      kIV[2],
      kIV[3],
      static_cast<std::uint32_t>(counter),
      static_cast<std::uint32_t>(counter >> 32),
      block_len,
      flags,
  };
  std::uint32_t m[16];
  std::memcpy(m, block_words, sizeof(m));
  for (int r = 0;; ++r) {
    round_fn(state, m);
    if (r == 6) break;
    std::uint32_t permuted[16];
    for (int i = 0; i < 16; ++i) permuted[i] = m[kMsgPermutation[i]];
    std::memcpy(m, permuted, sizeof(m));
  }
  for (int i = 0; i < 8; ++i) {
    out[i] = state[i] ^ state[i + 8];
    out[i + 8] = state[i + 8] ^ cv[i];
  }
}

void words_from_le_bytes(const std::uint8_t block[64],
                         std::uint32_t words[16]) {
  for (int i = 0; i < 16; ++i) {
    words[i] = static_cast<std::uint32_t>(block[4 * i]) |
               (static_cast<std::uint32_t>(block[4 * i + 1]) << 8) |
               (static_cast<std::uint32_t>(block[4 * i + 2]) << 16) |
               (static_cast<std::uint32_t>(block[4 * i + 3]) << 24);
  }
}

}  // namespace

/// Spec's "output object": enough state to produce a chaining value or an
/// arbitrary-length root output.
struct Blake3::Output {
  std::array<std::uint32_t, 8> cv;
  std::uint32_t block_words[16];
  std::uint64_t counter;
  std::uint32_t block_len;
  std::uint32_t flags;

  std::array<std::uint32_t, 8> chaining_value() const {
    std::uint32_t out[16];
    compress(cv, block_words, counter, block_len, flags, out);
    std::array<std::uint32_t, 8> result;
    std::memcpy(result.data(), out, sizeof(result));
    return result;
  }

  void root_bytes(std::uint8_t* out, std::size_t out_len) const {
    std::uint64_t output_counter = 0;
    while (out_len > 0) {
      std::uint32_t words[16];
      compress(cv, block_words, output_counter, block_len, flags | kRoot,
               words);
      for (int w = 0; w < 16 && out_len > 0; ++w) {
        for (int b = 0; b < 4 && out_len > 0; ++b) {
          *out++ = static_cast<std::uint8_t>(words[w] >> (8 * b));
          --out_len;
        }
      }
      ++output_counter;
    }
  }
};

Blake3::Blake3() {
  std::memcpy(key_.data(), kIV, sizeof(kIV));
  chunk_.cv = key_;
  base_flags_ = 0;
}

Blake3::Blake3(const std::uint8_t key[32]) {
  for (int i = 0; i < 8; ++i) {
    key_[static_cast<std::size_t>(i)] =
        static_cast<std::uint32_t>(key[4 * i]) |
        (static_cast<std::uint32_t>(key[4 * i + 1]) << 8) |
        (static_cast<std::uint32_t>(key[4 * i + 2]) << 16) |
        (static_cast<std::uint32_t>(key[4 * i + 3]) << 24);
  }
  chunk_.cv = key_;
  base_flags_ = kKeyedHash;
  chunk_.flags = kKeyedHash;
}

namespace {

/// Chunk-state helpers operate through these free functions to keep the
/// class surface minimal.
std::uint32_t start_flag(std::uint8_t blocks_compressed) noexcept {
  return blocks_compressed == 0 ? kChunkStart : 0;
}

}  // namespace

void Blake3::add_chunk_cv(const std::array<std::uint32_t, 8>& cv,
                          std::uint64_t total_chunks) {
  // Merge completed subtrees: for each trailing zero bit of total_chunks,
  // pop a sibling and compress a parent node.
  std::array<std::uint32_t, 8> new_cv = cv;
  std::uint64_t chunks = total_chunks;
  while ((chunks & 1) == 0) {
    const auto& left = cv_stack_[--cv_stack_len_];
    std::uint32_t block_words[16];
    std::memcpy(block_words, left.data(), 32);
    std::memcpy(block_words + 8, new_cv.data(), 32);
    std::uint32_t out[16];
    compress(key_, block_words, 0, 64, kParent | base_flags_, out);
    std::memcpy(new_cv.data(), out, 32);
    chunks >>= 1;
  }
  cv_stack_[cv_stack_len_++] = new_cv;
}

void Blake3::update(const void* data, std::size_t len) {
  const auto* in = static_cast<const std::uint8_t*>(data);
  while (len > 0) {
    // If the current chunk is full, finalize its CV into the tree and
    // start a new chunk.
    if (chunk_.len() == 1024) {
      std::uint32_t block_words[16];
      words_from_le_bytes(chunk_.block, block_words);
      std::uint32_t out[16];
      compress(chunk_.cv, block_words, chunk_.chunk_counter, chunk_.block_len,
               chunk_.flags | start_flag(chunk_.blocks_compressed) |
                   kChunkEnd,
               out);
      std::array<std::uint32_t, 8> cv;
      std::memcpy(cv.data(), out, 32);
      const std::uint64_t total = chunk_.chunk_counter + 1;
      add_chunk_cv(cv, total);
      chunk_ = ChunkState{};
      chunk_.cv = key_;
      chunk_.flags = base_flags_;
      chunk_.chunk_counter = total;
    }
    // If the block buffer is full, compress it (it is not the last block —
    // more input follows).
    if (chunk_.block_len == 64) {
      std::uint32_t block_words[16];
      words_from_le_bytes(chunk_.block, block_words);
      std::uint32_t out[16];
      compress(chunk_.cv, block_words, chunk_.chunk_counter, 64,
               chunk_.flags | start_flag(chunk_.blocks_compressed), out);
      std::memcpy(chunk_.cv.data(), out, 32);
      chunk_.blocks_compressed++;
      chunk_.block_len = 0;
      std::memset(chunk_.block, 0, sizeof(chunk_.block));
    }
    const std::size_t want = 64 - chunk_.block_len;
    const std::size_t take = len < want ? len : want;
    std::memcpy(chunk_.block + chunk_.block_len, in, take);
    chunk_.block_len += static_cast<std::uint8_t>(take);
    in += take;
    len -= take;
  }
}

void Blake3::finalize(std::uint8_t* out, std::size_t out_len) const {
  // Output object for the current (possibly partial) chunk.
  Output output;
  output.cv = chunk_.cv;
  words_from_le_bytes(chunk_.block, output.block_words);
  output.counter = chunk_.chunk_counter;
  output.block_len = chunk_.block_len;
  output.flags =
      chunk_.flags | start_flag(chunk_.blocks_compressed) | kChunkEnd;

  // Merge up the stack of pending subtree CVs.
  int remaining = cv_stack_len_;
  while (remaining > 0) {
    --remaining;
    std::array<std::uint32_t, 8> right_cv = output.chaining_value();
    std::uint32_t block_words[16];
    std::memcpy(block_words,
                cv_stack_[static_cast<std::size_t>(remaining)].data(), 32);
    std::memcpy(block_words + 8, right_cv.data(), 32);
    output.cv = key_;
    std::memcpy(output.block_words, block_words, sizeof(block_words));
    output.counter = 0;
    output.block_len = 64;
    output.flags = kParent | base_flags_;
  }
  output.root_bytes(out, out_len);
}

void Blake3::hash(const void* data, std::size_t len, std::uint8_t* out,
                  std::size_t out_len) {
  Blake3 h;
  h.update(data, len);
  h.finalize(out, out_len);
}

std::string Blake3::hex(const void* data, std::size_t len,
                        std::size_t out_len) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string result(out_len * 2, '0');
  std::uint8_t buf[128];
  std::size_t done = 0;
  Blake3 h;
  h.update(data, len);
  // finalize supports any length directly; chunk through a buffer only to
  // bound stack usage for very long outputs.
  if (out_len <= sizeof(buf)) {
    h.finalize(buf, out_len);
    for (std::size_t i = 0; i < out_len; ++i) {
      result[2 * i] = kHex[buf[i] >> 4];
      result[2 * i + 1] = kHex[buf[i] & 0xf];
    }
    return result;
  }
  std::string bytes(out_len, '\0');
  h.finalize(reinterpret_cast<std::uint8_t*>(bytes.data()), out_len);
  for (std::size_t i = 0; i < out_len; ++i) {
    const auto b = static_cast<std::uint8_t>(bytes[i]);
    result[2 * i] = kHex[b >> 4];
    result[2 * i + 1] = kHex[b & 0xf];
  }
  (void)done;
  return result;
}

}  // namespace xtask::posp
