// Proof-of-Space (PoSp) plot generation (paper §VII): fill buckets with
// cryptographic puzzles — each a 28-byte BLAKE3 hash plus its 4-byte nonce
// — using task parallelism, with a configurable batch size (puzzles per
// task). Mirrors the paper's C/OpenMP PoSp implementation: a single loop
// spawns one task per batch; tasks hash their nonce range and append the
// puzzles to hash-prefix buckets, which a verifier can later scan to
// answer challenges (Chia-style space proofs).
//
// Scale substitution: production PoSp uses K = 32 (2^32 puzzles ≈ 137 GB,
// single file). We default to K in the 16–24 range; the throughput-vs-
// batch-size behaviour being reproduced is a property of the tasking
// runtime, not of the plot size (see EXPERIMENTS.md / Fig. 8).
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <vector>

#include "posp/blake3.hpp"

namespace xtask::posp {

struct Puzzle {
  std::uint8_t hash[28];
  std::uint32_t nonce;
};

struct PospConfig {
  int k = 18;                 // 2^k puzzles in the plot
  std::uint32_t batch = 64;   // puzzles generated per task
  int bucket_bits = 8;        // buckets = 2^bucket_bits, keyed by hash MSBs
  std::uint64_t plot_seed = 0xC41A;  // plot identity, mixed into each hash
};

/// An in-memory plot: puzzles sorted into hash-prefix buckets.
class Plot {
 public:
  explicit Plot(const PospConfig& cfg);

  const PospConfig& config() const noexcept { return cfg_; }
  std::uint64_t total_puzzles() const noexcept { return total_; }
  std::size_t num_buckets() const noexcept { return buckets_.size(); }
  const std::vector<Puzzle>& bucket(std::size_t i) const noexcept {
    return buckets_[i].puzzles;
  }

  /// Compute the puzzle for `nonce` (pure function of plot_seed & nonce).
  Puzzle make_puzzle(std::uint32_t nonce) const;

  /// Append a batch of puzzles for nonces [first, first+count) — hashing
  /// happens outside any lock; only the bucket appends synchronize.
  void fill_range(std::uint32_t first, std::uint32_t count);

  /// Generate the whole plot on runtime `rt` (any runtime with the
  /// spawn/taskwait context API). Returns wall time in seconds.
  template <typename RuntimeT>
  double generate(RuntimeT& rt);

  /// Answer a challenge: the stored puzzle whose hash is closest (by
  /// prefix XOR distance) to `challenge` within its bucket. Returns false
  /// for an empty plot.
  bool best_proof(const std::uint8_t challenge[28], Puzzle* out) const;

  /// Recompute the hash of a claimed proof and check it matches.
  bool verify(const Puzzle& proof) const;

 private:
  struct Bucket {
    std::mutex mu;
    std::vector<Puzzle> puzzles;
  };

  std::size_t bucket_index(const std::uint8_t* hash) const noexcept {
    // Top bucket_bits of the first bytes.
    std::uint32_t v = (static_cast<std::uint32_t>(hash[0]) << 16) |
                      (static_cast<std::uint32_t>(hash[1]) << 8) |
                      static_cast<std::uint32_t>(hash[2]);
    return v >> (24 - cfg_.bucket_bits);
  }

  PospConfig cfg_;
  std::vector<Bucket> buckets_;
  std::uint64_t total_ = 0;  // valid after generate()
};

// ---------------------------------------------------------------------------

template <typename RuntimeT>
double Plot::generate(RuntimeT& rt) {
  const std::uint64_t total = 1ull << cfg_.k;
  const std::uint32_t batch = cfg_.batch == 0 ? 1 : cfg_.batch;
  const auto t0 = std::chrono::steady_clock::now();
  rt.run([&](auto& ctx) {
    for (std::uint64_t first = 0; first < total; first += batch) {
      const auto count = static_cast<std::uint32_t>(
          first + batch <= total ? batch : total - first);
      const auto f32 = static_cast<std::uint32_t>(first);
      ctx.spawn([this, f32, count](auto&) { fill_range(f32, count); });
    }
    ctx.taskwait();
  });
  const auto t1 = std::chrono::steady_clock::now();
  total_ = total;
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace xtask::posp
