#include "prof/profiler.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>

namespace xtask {

const char* event_kind_name(EventKind k) noexcept {
  switch (k) {
    case EventKind::kTask: return "TASK";
    case EventKind::kTaskCreate: return "TASK_CREATE";
    case EventKind::kTaskWait: return "TASKWAIT";
    case EventKind::kBarrier: return "BARRIER";
    case EventKind::kStall: return "STALL";
    default: return "?";
  }
}

Counters& Counters::operator+=(const Counters& o) noexcept {
  ntasks_self += o.ntasks_self;
  ntasks_local += o.ntasks_local;
  ntasks_remote += o.ntasks_remote;
  ntasks_static_push += o.ntasks_static_push;
  ntasks_imm_exec += o.ntasks_imm_exec;
  nreq_sent += o.nreq_sent;
  nreq_handled += o.nreq_handled;
  nreq_has_steal += o.nreq_has_steal;
  nreq_src_empty += o.nreq_src_empty;
  nreq_target_full += o.nreq_target_full;
  nsteal_local += o.nsteal_local;
  nsteal_remote += o.nsteal_remote;
  ntasks_created += o.ntasks_created;
  ntasks_executed += o.ntasks_executed;
  overflow += o.overflow;
  ntasks_cancelled += o.ntasks_cancelled;
  nexceptions += o.nexceptions;
  nidle_yields += o.nidle_yields;
  nquarantined += o.nquarantined;
  nreadmitted += o.nreadmitted;
  nreclaimed += o.nreclaimed;
  nserve_requests += o.nserve_requests;
  nserve_shed += o.nserve_shed;
  nsessions_expired += o.nsessions_expired;
  nslots_torn += o.nslots_torn;
  norphaned += o.norphaned;
  ngraph_replays += o.ngraph_replays;
  ngraph_nodes_run += o.ngraph_nodes_run;
  ngraph_edges_released += o.ngraph_edges_released;
  nmode_switches += o.nmode_switches;
  nsteal_rounds += o.nsteal_rounds;
  nsteal_direct += o.nsteal_direct;
  steal_round_cycles += o.steal_round_cycles;
  for (std::size_t b = 0; b < steal_lat_hist.size(); ++b)
    steal_lat_hist[b] += o.steal_lat_hist[b];
  nqueue_fullscans += o.nqueue_fullscans;
  nqueue_zeroskips += o.nqueue_zeroskips;
  nalloc_refills += o.nalloc_refills;
  nalloc_spills += o.nalloc_spills;
  alloc_refill_cycles += o.alloc_refill_cycles;
  idle_cycles += o.idle_cycles;
  return *this;
}

std::array<std::uint64_t, kEventKinds> ThreadProfile::cycles_by_kind() const {
  std::array<std::uint64_t, kEventKinds> out{};
  for (const PerfEvent& e : events_) {
    if (e.end >= e.start) out[static_cast<int>(e.kind)] += e.end - e.start;
  }
  return out;
}

Profiler::Profiler(int num_threads, bool events_enabled)
    : events_on_(events_enabled),
      profiles_(static_cast<std::size_t>(num_threads)) {
  for (auto& p : profiles_) p.set_events_enabled(events_enabled);
}

Counters Profiler::total_counters() const {
  Counters total;
  for (const auto& p : profiles_) total += p.counters;
  return total;
}

std::vector<ThreadSummary> Profiler::summarize() const {
  std::vector<ThreadSummary> out;
  out.reserve(profiles_.size());
  for (std::size_t i = 0; i < profiles_.size(); ++i) {
    ThreadSummary s;
    s.tid = static_cast<int>(i);
    s.cycles = profiles_[i].cycles_by_kind();
    s.tasks_created = profiles_[i].counters.ntasks_created;
    s.tasks_executed = profiles_[i].counters.ntasks_executed;
    out.push_back(s);
  }
  return out;
}

bool Profiler::dump_events_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f.good()) return false;
  f << "tid,kind,start,end\n";
  for (std::size_t i = 0; i < profiles_.size(); ++i) {
    for (const PerfEvent& e : profiles_[i].events()) {
      f << i << ',' << event_kind_name(e.kind) << ',' << e.start << ','
        << e.end << '\n';
    }
  }
  return f.good();
}

bool Profiler::dump_counters_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f.good()) return false;
  // Column compatibility: overflow_inline stays in its historical slot and
  // emits OverflowStat::total; the new attribution columns append at the
  // end so existing consumers keep parsing by position.
  f << "tid,ntasks_self,ntasks_local,ntasks_remote,ntasks_static_push,"
       "ntasks_imm_exec,nreq_sent,nreq_handled,nreq_has_steal,"
       "nreq_src_empty,nreq_target_full,nsteal_local,nsteal_remote,"
       "ntasks_created,ntasks_executed,overflow_inline,ntasks_cancelled,"
       "nexceptions,nidle_yields,nquarantined,nreadmitted,nreclaimed,"
       "overflow_last_tenant,overflow_last_depth,overflow_max_depth,"
       "nserve_requests,nserve_shed,"
       "nmode_switches,nsteal_rounds,nsteal_direct,steal_round_cycles,"
       "nqueue_fullscans,nqueue_zeroskips,nalloc_refills,nalloc_spills,"
       "alloc_refill_cycles,idle_cycles,"
       "ngraph_replays,ngraph_nodes_run,ngraph_edges_released,"
       "nsessions_expired,nslots_torn,norphaned";
  constexpr std::size_t kHistBuckets =
      std::tuple_size<decltype(Counters::steal_lat_hist)>::value;
  for (std::size_t b = 0; b < kHistBuckets; ++b) f << ",steal_lat_b" << b;
  f << '\n';
  for (std::size_t i = 0; i < profiles_.size(); ++i) {
    const Counters& c = profiles_[i].counters;
    f << i << ',' << c.ntasks_self << ',' << c.ntasks_local << ','
      << c.ntasks_remote << ',' << c.ntasks_static_push << ','
      << c.ntasks_imm_exec << ',' << c.nreq_sent << ',' << c.nreq_handled
      << ',' << c.nreq_has_steal << ',' << c.nreq_src_empty << ','
      << c.nreq_target_full << ',' << c.nsteal_local << ','
      << c.nsteal_remote << ',' << c.ntasks_created << ','
      << c.ntasks_executed << ',' << c.overflow.total << ','
      << c.ntasks_cancelled << ',' << c.nexceptions << ','
      << c.nidle_yields << ',' << c.nquarantined << ','
      << c.nreadmitted << ',' << c.nreclaimed << ','
      << c.overflow.last_tenant << ',' << c.overflow.last_depth << ','
      << c.overflow.max_depth << ',' << c.nserve_requests << ','
      << c.nserve_shed << ',' << c.nmode_switches << ','
      << c.nsteal_rounds << ',' << c.nsteal_direct << ','
      << c.steal_round_cycles << ',' << c.nqueue_fullscans << ','
      << c.nqueue_zeroskips << ',' << c.nalloc_refills << ','
      << c.nalloc_spills << ',' << c.alloc_refill_cycles << ','
      << c.idle_cycles << ',' << c.ngraph_replays << ','
      << c.ngraph_nodes_run << ',' << c.ngraph_edges_released << ','
      << c.nsessions_expired << ',' << c.nslots_torn << ','
      << c.norphaned;
    for (const std::uint64_t v : c.steal_lat_hist) f << ',' << v;
    f << '\n';
  }
  return f.good();
}

std::string Profiler::timeline_report(int bar_width) const {
  // One row per thread: a proportional bar over the event kinds (Fig. 3
  // left), then created/executed counts (Fig. 3 right).
  static constexpr char kGlyph[kEventKinds] = {'#', '+', 'w', 'B', '.'};
  const auto summaries = summarize();
  std::uint64_t max_total = 1;
  for (const auto& s : summaries) {
    std::uint64_t t = 0;
    for (auto c : s.cycles) t += c;
    max_total = std::max(max_total, t);
  }
  std::string out;
  out += "timeline summary  (#=task +=create w=taskwait B=barrier .=stall)\n";
  char line[256];
  for (const auto& s : summaries) {
    std::uint64_t total = 0;
    for (auto c : s.cycles) total += c;
    std::string bar;
    // Scale the row against the longest-running thread so imbalance shows
    // up as short bars, matching the paper's presentation.
    const int row_width = static_cast<int>(
        static_cast<double>(total) / static_cast<double>(max_total) *
        bar_width);
    for (int k = 0; k < kEventKinds; ++k) {
      const int w =
          total == 0 ? 0
                     : static_cast<int>(static_cast<double>(s.cycles[k]) /
                                        static_cast<double>(total) *
                                        row_width);
      bar.append(static_cast<std::size_t>(w), kGlyph[k]);
    }
    std::snprintf(line, sizeof(line), "t%03d |%-*s| created=%llu executed=%llu\n",
                  s.tid, bar_width, bar.c_str(),
                  static_cast<unsigned long long>(s.tasks_created),
                  static_cast<unsigned long long>(s.tasks_executed));
    out += line;
  }
  return out;
}

}  // namespace xtask
