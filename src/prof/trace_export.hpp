// Chrome-trace exporter for the §V profiler: converts a Profiler's event
// log into the Trace Event JSON format that chrome://tracing, Perfetto,
// and Speedscope load directly — per-thread tracks of TASK / TASK_CREATE /
// TASKWAIT / BARRIER / STALL spans.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "prof/profiler.hpp"

namespace xtask {

/// Options for the export.
struct TraceExportOptions {
  /// Cycles per microsecond used to convert rdtscp timestamps; 2100 for
  /// the paper's 2.1 GHz parts. Display-only: every duration event also
  /// carries raw cycle values in args ("sc" start offset, "dc" duration)
  /// and an xtask_clock metadata record names this rate and the t0 anchor,
  /// so a consumer can rescale without re-recording.
  double cycles_per_us = 2100.0;
  /// Drop events shorter than this many cycles (they render as noise).
  std::uint64_t min_cycles = 0;
  /// Extra metadata records, one per entry: {record name, JSON object
  /// text for its "args"}. The caller owns the JSON validity of the
  /// second string. This is how subsystems above prof (the serve
  /// front-end's per-tenant accept/shed/reject counters and ring depths)
  /// attach their state to a trace without prof depending on them.
  std::vector<std::pair<std::string, std::string>> extra_meta;
};

/// Serialize all recorded events as a Trace Event JSON array document.
std::string trace_to_json(const Profiler& prof,
                          const TraceExportOptions& opts = {});

/// Write the JSON to `path`. Returns false on I/O failure.
bool dump_trace_json(const Profiler& prof, const std::string& path,
                     const TraceExportOptions& opts = {});

}  // namespace xtask
