#include "prof/trace_export.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>

namespace xtask {

std::string trace_to_json(const Profiler& prof,
                          const TraceExportOptions& opts) {
  // Normalize timestamps to the earliest event so traces start at t=0.
  std::uint64_t t0 = ~0ull;
  for (int t = 0; t < prof.num_threads(); ++t)
    for (const PerfEvent& e : prof.thread(t).events())
      t0 = std::min(t0, e.start);
  if (t0 == ~0ull) t0 = 0;

  std::string out = "[\n";
  char buf[1024];
  bool first = true;
  // Clock metadata: cycles_per_us only *scales the display* of ts/dur —
  // every duration event also carries its raw rdtscp interval in args
  // ("sc"/"dc", cycles since t0 / duration cycles), so a consumer with the
  // true TSC rate can rescale without re-recording. t0_cycles anchors the
  // normalized timeline back to absolute rdtscp values.
  std::snprintf(buf, sizeof(buf),
                "{\"name\":\"xtask_clock\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
                "\"args\":{\"cycles_per_us\":%.3f,\"t0_cycles\":%llu}}",
                opts.cycles_per_us, static_cast<unsigned long long>(t0));
  out += buf;
  first = false;
  // Caller-supplied metadata records lead the document (service state,
  // per-tenant admission counters, ...); the args payload is caller-built
  // JSON of unbounded size, so it bypasses the snprintf buffer.
  for (const auto& [name, args_json] : opts.extra_meta) {
    out += first ? "" : ",\n";
    out += "{\"name\":\"" + name + "\",\"ph\":\"M\",\"pid\":1,\"tid\":0,";
    out += "\"args\":" + args_json + "}";
    first = false;
  }
  for (int t = 0; t < prof.num_threads(); ++t) {
    // Thread name metadata record.
    std::snprintf(buf, sizeof(buf),
                  "%s{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                  "\"tid\":%d,\"args\":{\"name\":\"worker %d\"}}",
                  first ? "" : ",\n", t, t);
    out += buf;
    first = false;
    // Per-thread statistical counters as a metadata record, so a trace
    // carries the robustness funnel (backpressure overflows, cancelled
    // tasks, escaped exceptions) alongside the timeline.
    const Counters& c = prof.thread(t).counters;
    // overflow_inline keeps its name (= OverflowStat::total) so existing
    // trace consumers stay compatible; the attribution fields are new.
    std::snprintf(
        buf, sizeof(buf),
        ",\n{\"name\":\"xtask_counters\",\"ph\":\"M\",\"pid\":1,"
        "\"tid\":%d,\"args\":{\"ntasks_created\":%llu,"
        "\"ntasks_executed\":%llu,\"overflow_inline\":%llu,"
        "\"overflow_last_tenant\":%llu,\"overflow_max_depth\":%llu,"
        "\"ntasks_cancelled\":%llu,\"nexceptions\":%llu,"
        "\"nidle_yields\":%llu,\"nquarantined\":%llu,"
        "\"nreadmitted\":%llu,\"nreclaimed\":%llu,"
        "\"nserve_requests\":%llu,\"nserve_shed\":%llu,"
        "\"nsessions_expired\":%llu,\"nslots_torn\":%llu,"
        "\"norphaned\":%llu,",
        t, static_cast<unsigned long long>(c.ntasks_created),
        static_cast<unsigned long long>(c.ntasks_executed),
        static_cast<unsigned long long>(c.overflow.total),
        static_cast<unsigned long long>(c.overflow.last_tenant),
        static_cast<unsigned long long>(c.overflow.max_depth),
        static_cast<unsigned long long>(c.ntasks_cancelled),
        static_cast<unsigned long long>(c.nexceptions),
        static_cast<unsigned long long>(c.nidle_yields),
        static_cast<unsigned long long>(c.nquarantined),
        static_cast<unsigned long long>(c.nreadmitted),
        static_cast<unsigned long long>(c.nreclaimed),
        static_cast<unsigned long long>(c.nserve_requests),
        static_cast<unsigned long long>(c.nserve_shed),
        static_cast<unsigned long long>(c.nsessions_expired),
        static_cast<unsigned long long>(c.nslots_torn),
        static_cast<unsigned long long>(c.norphaned));
    out += buf;
    // Adaptive-dispatch instrumentation continues the same args object.
    std::snprintf(
        buf, sizeof(buf),
        "\"nmode_switches\":%llu,\"nsteal_rounds\":%llu,"
        "\"nsteal_direct\":%llu,\"steal_round_cycles\":%llu,"
        "\"nqueue_fullscans\":%llu,\"nqueue_zeroskips\":%llu,"
        "\"nalloc_refills\":%llu,\"nalloc_spills\":%llu,"
        "\"alloc_refill_cycles\":%llu,\"idle_cycles\":%llu,"
        "\"ngraph_replays\":%llu,\"ngraph_nodes_run\":%llu,"
        "\"ngraph_edges_released\":%llu,"
        "\"steal_lat_hist\":[",
        static_cast<unsigned long long>(c.nmode_switches),
        static_cast<unsigned long long>(c.nsteal_rounds),
        static_cast<unsigned long long>(c.nsteal_direct),
        static_cast<unsigned long long>(c.steal_round_cycles),
        static_cast<unsigned long long>(c.nqueue_fullscans),
        static_cast<unsigned long long>(c.nqueue_zeroskips),
        static_cast<unsigned long long>(c.nalloc_refills),
        static_cast<unsigned long long>(c.nalloc_spills),
        static_cast<unsigned long long>(c.alloc_refill_cycles),
        static_cast<unsigned long long>(c.idle_cycles),
        static_cast<unsigned long long>(c.ngraph_replays),
        static_cast<unsigned long long>(c.ngraph_nodes_run),
        static_cast<unsigned long long>(c.ngraph_edges_released));
    out += buf;
    for (std::size_t b = 0; b < c.steal_lat_hist.size(); ++b) {
      std::snprintf(buf, sizeof(buf), "%s%llu", b == 0 ? "" : ",",
                    static_cast<unsigned long long>(c.steal_lat_hist[b]));
      out += buf;
    }
    out += "]}}";
    for (const PerfEvent& e : prof.thread(t).events()) {
      if (e.end < e.start || e.end - e.start < opts.min_cycles) continue;
      const double ts =
          static_cast<double>(e.start - t0) / opts.cycles_per_us;
      const double dur =
          static_cast<double>(e.end - e.start) / opts.cycles_per_us;
      std::snprintf(buf, sizeof(buf),
                    ",\n{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%d,"
                    "\"ts\":%.3f,\"dur\":%.3f,"
                    "\"args\":{\"sc\":%llu,\"dc\":%llu}}",
                    event_kind_name(e.kind), t, ts, dur,
                    static_cast<unsigned long long>(e.start - t0),
                    static_cast<unsigned long long>(e.end - e.start));
      out += buf;
    }
  }
  out += "\n]\n";
  return out;
}

bool dump_trace_json(const Profiler& prof, const std::string& path,
                     const TraceExportOptions& opts) {
  std::ofstream f(path);
  if (!f.good()) return false;
  f << trace_to_json(prof, opts);
  return f.good();
}

}  // namespace xtask
