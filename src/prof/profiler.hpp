// Per-thread performance profiling tools (paper §V): event timelines keyed
// by rdtscp timestamps plus thread-local statistical counters, with a dump
// API equivalent to the paper's xomp_perflog_dump.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/common.hpp"

namespace xtask {

/// Event classes from §V. Each recorded event carries a start and end
/// timestamp in rdtscp cycles.
enum class EventKind : std::uint8_t {
  kTask = 0,      // executing a task body               (paper: TASK)
  kTaskCreate,    // allocating + enqueueing a new task  (paper: GOMP_TASK)
  kTaskWait,      // inside a taskwait                   (paper: TASKWAIT)
  kBarrier,       // inside the team barrier             (paper: BARRIER)
  kStall,         // idle, polling queues                (paper: STALL)
  kCount_,
};
inline constexpr int kEventKinds = static_cast<int>(EventKind::kCount_);

const char* event_kind_name(EventKind k) noexcept;

struct PerfEvent {
  std::uint64_t start;
  std::uint64_t end;
  EventKind kind;
};

/// Backpressure attribution: overflow-inline events (task pushed onto a
/// full queue, executed inline instead) carry which serve-tenant's work was
/// being dispatched and how deep the relevant queue row was at failure
/// time, so shedding decisions can be traced to a tenant instead of a bare
/// count. Single-writer like every other counter; `total` is what the
/// legacy `overflow_inline` CSV/JSON column emits.
struct OverflowStat {
  std::uint64_t total = 0;        // events (the legacy overflow_inline)
  std::uint64_t last_tenant = 0;  // 0 = untagged; serve tenants are idx+1
  std::uint64_t last_depth = 0;   // queue-row occupancy at failure
  std::uint64_t max_depth = 0;    // deepest failure seen

  void note(std::uint64_t tenant, std::uint64_t depth) noexcept {
    ++total;
    last_tenant = tenant;
    last_depth = depth;
    if (depth > max_depth) max_depth = depth;
  }

  OverflowStat& operator+=(const OverflowStat& o) noexcept {
    total += o.total;
    if (o.total != 0) {
      last_tenant = o.last_tenant;
      last_depth = o.last_depth;
    }
    if (o.max_depth > max_depth) max_depth = o.max_depth;
    return *this;
  }
};

/// Statistical counters from §V. All per-thread; aggregation happens at
/// report time so the hot path touches only thread-local cache lines.
struct Counters {
  // Task locality: executed by creator core / creator's NUMA zone / other.
  std::uint64_t ntasks_self = 0;
  std::uint64_t ntasks_local = 0;
  std::uint64_t ntasks_remote = 0;
  // Dispatch: queued by the static balancer vs. executed immediately
  // because the target queue was full.
  std::uint64_t ntasks_static_push = 0;
  std::uint64_t ntasks_imm_exec = 0;
  // DLB messaging funnel.
  std::uint64_t nreq_sent = 0;
  std::uint64_t nreq_handled = 0;
  std::uint64_t nreq_has_steal = 0;
  std::uint64_t nreq_src_empty = 0;
  std::uint64_t nreq_target_full = 0;
  // Stolen-task locality (thief side).
  std::uint64_t nsteal_local = 0;
  std::uint64_t nsteal_remote = 0;
  // Totals.
  std::uint64_t ntasks_created = 0;
  std::uint64_t ntasks_executed = 0;
  // Fault tolerance: tasks pushed onto a full queue and executed inline
  // (explicit backpressure, with tenant/depth attribution), tasks dropped
  // or drained by cancellation, and exceptions that escaped a task body.
  OverflowStat overflow;
  std::uint64_t ntasks_cancelled = 0;
  std::uint64_t nexceptions = 0;
  // Idle backoff: times the worker escalated all the way to sched_yield
  // (spin and pause beats are too cheap to count individually).
  std::uint64_t nidle_yields = 0;
  // Self-healing: quarantine episodes this worker went through and tasks
  // it reclaimed from *other* (quarantined) workers' rows. Episode counts
  // are attributed by the worker itself at readmission so the counters
  // stay single-writer.
  std::uint64_t nquarantined = 0;
  std::uint64_t nreadmitted = 0;
  std::uint64_t nreclaimed = 0;
  // Service front-end (src/serve): admitted requests this worker spawned
  // into the runtime, and requests it shed on the drain side under
  // pressure. Zero outside service regions.
  std::uint64_t nserve_requests = 0;
  std::uint64_t nserve_shed = 0;
  // Cross-process transport health (src/serve/ipc); bumped only by the
  // service drain thread (the single ring consumer), single-writer like
  // the rest. Zero unless an ipc transport is attached.
  std::uint64_t nsessions_expired = 0;  // leases expired -> reclaimed
  std::uint64_t nslots_torn = 0;        // torn/invalid submit slots skipped
  std::uint64_t norphaned = 0;          // published requests from dead clients
  // Task-graph engine (src/core/task_graph.hpp): replays this worker
  // initiated, node bodies it executed, and static successor edges it
  // released after them. All single-writer like the rest; per-graph
  // structure (node/edge/critical-path totals) lives on the TaskGraph
  // itself — these count work actually done by this thread.
  std::uint64_t ngraph_replays = 0;
  std::uint64_t ngraph_nodes_run = 0;
  std::uint64_t ngraph_edges_released = 0;
  // Adaptive dispatch (dlb=adaptive): messaging<->direct mode switches
  // committed by this worker's controller (worker 0 only), request rounds
  // this thief opened, and tasks it took via direct guard-borrowed steals.
  std::uint64_t nmode_switches = 0;
  std::uint64_t nsteal_rounds = 0;
  std::uint64_t nsteal_direct = 0;
  // Steal-round latency: cycles from opening a request round to the next
  // successful pop, summed plus a log2 histogram (bucket b covers
  // [2^(10+b), 2^(11+b)) cycles; bucket 0 is everything under 2^11,
  // bucket 15 everything at/above 2^25).
  std::uint64_t steal_round_cycles = 0;
  std::array<std::uint64_t, 16> steal_lat_hist{};
  // Hot-path churn, synced from owner-private structures at region end:
  // XQueue bitmap-ignoring full scans and the zero-word probe loops they
  // skipped; allocator shared-pool refills/spills with the cycles spent on
  // the refill slow path; cycles resident in the idle backoff loop.
  std::uint64_t nqueue_fullscans = 0;
  std::uint64_t nqueue_zeroskips = 0;
  std::uint64_t nalloc_refills = 0;
  std::uint64_t nalloc_spills = 0;
  std::uint64_t alloc_refill_cycles = 0;
  std::uint64_t idle_cycles = 0;

  /// Record one steal-round completion latency (cycles).
  void note_steal_latency(std::uint64_t cycles) noexcept {
    steal_round_cycles += cycles;
    std::uint64_t b = 0;
    while (b + 1 < steal_lat_hist.size() && cycles >= (2048ull << b)) ++b;
    ++steal_lat_hist[static_cast<std::size_t>(b)];
  }

  Counters& operator+=(const Counters& o) noexcept;
};

/// One thread's profile: counters always on (cheap, thread-local), event
/// log only when the profiler was constructed with events enabled.
class alignas(kCacheLine) ThreadProfile {
 public:
  Counters counters;

  void set_events_enabled(bool on) { events_on_ = on; }

  void record(EventKind kind, std::uint64_t start, std::uint64_t end) {
    if (!events_on_) return;
    events_.push_back(PerfEvent{start, end, kind});
  }

  const std::vector<PerfEvent>& events() const noexcept { return events_; }
  void clear_events() { events_.clear(); }

  /// Total cycles recorded per event kind.
  std::array<std::uint64_t, kEventKinds> cycles_by_kind() const;

 private:
  bool events_on_ = false;
  std::vector<PerfEvent> events_;
};

/// RAII scope that records one event on destruction.
class ScopedEvent {
 public:
  ScopedEvent(ThreadProfile& p, EventKind k) noexcept
      : prof_(p), kind_(k), start_(rdtscp()) {}
  ~ScopedEvent() { prof_.record(kind_, start_, rdtscp()); }

  ScopedEvent(const ScopedEvent&) = delete;
  ScopedEvent& operator=(const ScopedEvent&) = delete;

 private:
  ThreadProfile& prof_;
  EventKind kind_;
  std::uint64_t start_;
};

/// Aggregated per-thread summary used for the Fig. 3-style reports.
struct ThreadSummary {
  int tid = 0;
  std::array<std::uint64_t, kEventKinds> cycles{};  // by EventKind
  std::uint64_t tasks_created = 0;
  std::uint64_t tasks_executed = 0;
};

/// Profiler owning all per-thread profiles for one runtime instance.
class Profiler {
 public:
  Profiler(int num_threads, bool events_enabled);

  ThreadProfile& thread(int tid) noexcept {
    return profiles_[static_cast<std::size_t>(tid)];
  }
  const ThreadProfile& thread(int tid) const noexcept {
    return profiles_[static_cast<std::size_t>(tid)];
  }
  int num_threads() const noexcept {
    return static_cast<int>(profiles_.size());
  }
  bool events_enabled() const noexcept { return events_on_; }

  /// Sum of all threads' counters.
  Counters total_counters() const;

  /// Per-thread aggregates (timeline summary + task count summary).
  std::vector<ThreadSummary> summarize() const;

  /// Write the raw event log as CSV (`tid,kind,start,end`). Equivalent of
  /// the paper's xomp_perflog_dump. Returns false on I/O failure.
  bool dump_events_csv(const std::string& path) const;

  /// Write per-thread counters as CSV. Returns false on I/O failure.
  bool dump_counters_csv(const std::string& path) const;

  /// Render an ASCII Fig. 3-style report: one bar per thread showing the
  /// share of time in each state, plus created/executed task counts.
  std::string timeline_report(int bar_width = 60) const;

 private:
  bool events_on_;
  std::vector<ThreadProfile> profiles_;
};

}  // namespace xtask
