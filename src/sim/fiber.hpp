// Minimal stackful fibers for the discrete-event simulator. Each simulated
// worker runs on its own fiber; the engine switches to whichever worker has
// the smallest virtual clock. A hand-rolled x86-64 context switch keeps a
// switch under ~30 ns (ucontext's swapcontext performs a sigprocmask
// syscall per switch, which would dominate simulation time); other
// architectures fall back to ucontext.
#pragma once

#include <cstddef>
#include <cstdint>

namespace xtask::sim {

#if defined(__x86_64__)

/// Saved machine context: just the stack pointer; everything else lives on
/// the fiber's stack (SysV callee-saved registers are pushed by the switch
/// primitive).
struct FiberContext {
  void* sp = nullptr;
};

extern "C" {
/// Defined in fiber_switch.S: saves callee-saved registers + rsp into
/// *save, restores from load, and returns on the other stack.
void xtask_fiber_switch(void** save_sp, void* load_sp) noexcept;
}

#else
#include <ucontext.h>
struct FiberContext {
  ucontext_t uc;
};
#endif

/// A fiber: entry function + owned stack. Switching is cooperative and
/// single-threaded — exactly one fiber (or the host context) runs at a
/// time, which is what lets the simulator touch shared model state without
/// synchronization.
class Fiber {
 public:
  using EntryFn = void (*)(void* arg);

  Fiber() = default;
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Prepare the fiber to run entry(arg) on a fresh stack of `stack_bytes`
  /// (rounded up to the page size, with a PROT_NONE guard page below).
  void create(EntryFn entry, void* arg, std::size_t stack_bytes = 256 * 1024);

  bool created() const noexcept { return stack_base_ != nullptr; }

  /// Switch from the context stored in `from` to this fiber. On the
  /// fiber's next switch-out, control returns through `from`.
  static void switch_to(FiberContext* from, FiberContext* to) noexcept;

  FiberContext& context() noexcept { return ctx_; }

 private:
  static void trampoline();

  FiberContext ctx_{};
  void* stack_base_ = nullptr;   // mmap base (guard page)
  std::size_t stack_size_ = 0;   // total mapping size
  void* aux_ = nullptr;          // ucontext fallback: owned entry thunk
};

}  // namespace xtask::sim
