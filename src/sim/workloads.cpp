#include "sim/workloads.hpp"

#include <algorithm>
#include <cmath>

namespace xtask::sim {

namespace {

/// Deterministic per-node hash for size jitter (independent of schedule).
std::uint64_t mix(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Jitter `base` by ±frac (deterministic in `id`).
std::uint64_t jitter(std::uint64_t base, std::uint64_t id,
                     double frac = 0.3) noexcept {
  const double u =
      static_cast<double>(mix(id) >> 11) * 0x1.0p-53;  // [0,1)
  const double f = 1.0 - frac + 2.0 * frac * u;
  return static_cast<std::uint64_t>(static_cast<double>(base) * f);
}

// ------------------------------------------------------------------ Fib ----
void sim_fib(SimContext& ctx, int n) {
  if (n < 2) {
    ctx.compute(40);
    return;
  }
  ctx.compute_fixed(15);  // bookkeeping before spawning (creation measured
                          // separately by the engine)
  ctx.spawn([n](SimContext& c) { sim_fib(c, n - 1); });
  ctx.spawn([n](SimContext& c) { sim_fib(c, n - 2); });
  ctx.taskwait();
  ctx.compute(25);  // combine
}

// -------------------------------------------------------------- NQueens ----
void sim_nqueens(SimContext& ctx, std::uint64_t node, int n, int row) {
  // Feasibility checks for this row: ~n*row/3 column scans.
  ctx.compute(30 + static_cast<std::uint64_t>(n) *
                       static_cast<std::uint64_t>(row) / 2);
  if (row == n) return;
  // Average feasible extensions shrink with depth; model with the hash.
  const int branch =
      row == 0 ? n
               : static_cast<int>(mix(node) % static_cast<std::uint64_t>(
                                                  std::max(2, n - row / 2)));
  for (int i = 0; i < branch; ++i) {
    const std::uint64_t child = mix(node * 31 + static_cast<std::uint64_t>(i));
    ctx.spawn([child, n, row](SimContext& c) {
      sim_nqueens(c, child, n, row + 1);
    });
  }
  ctx.taskwait();
}

// ------------------------------------------------------------------ FFT ----
void sim_fft(SimContext& ctx, std::uint64_t n, std::uint64_t cutoff) {
  if (n <= cutoff) {
    // Serial FFT of n points: ~8 cycles per point per level.
    std::uint64_t levels = 1;
    for (std::uint64_t v = n; v > 1; v >>= 1) ++levels;
    ctx.compute(8 * n * levels);
    return;
  }
  const std::uint64_t h = n / 2;
  ctx.spawn([h, cutoff](SimContext& c) { sim_fft(c, h, cutoff); });
  ctx.spawn([h, cutoff](SimContext& c) { sim_fft(c, h, cutoff); });
  ctx.taskwait();
  // Parallel butterfly: one task per `cutoff` points.
  for (std::uint64_t k = 0; k < h; k += cutoff) {
    const std::uint64_t len = std::min(cutoff, h - k);
    ctx.spawn([len](SimContext& c) { c.compute(12 * len); });
  }
  ctx.taskwait();
}

// ------------------------------------------------------------ Floorplan ----
void sim_floorplan(SimContext& ctx, std::uint64_t node, int remaining) {
  // Placement feasibility scan: cost grows as the board fills, with a
  // heavy tail (some placements scan most of the board).
  const std::uint64_t base = 150 + (mix(node) % 7 == 0 ? 20'000 : 600);
  ctx.compute(jitter(base, node, 0.5));
  if (remaining == 0) return;
  // Branch over shapes × frontier positions that survive pruning; the
  // search is progressively cut, producing heavy imbalance.
  const int branch = static_cast<int>(mix(node ^ 0x5bd1e995) % 5);
  for (int i = 0; i < branch; ++i) {
    const std::uint64_t child = mix(node * 131 + static_cast<std::uint64_t>(i));
    ctx.spawn([child, remaining](SimContext& c) {
      sim_floorplan(c, child, remaining - 1);
    });
  }
  ctx.taskwait();
}

// -------------------------------------------------------------- Health ----
void sim_health_village(SimContext& ctx, std::uint64_t village, int level,
                        int levels) {
  if (level + 1 < levels) {
    for (int b = 0; b < 4; ++b) {
      const std::uint64_t child = village * 37 + static_cast<std::uint64_t>(b) + 1;
      ctx.spawn([child, level, levels](SimContext& c) {
        sim_health_village(c, child, level + 1, levels);
      });
    }
  }
  // Local patient processing: a few thousand cycles, village-dependent.
  ctx.compute(jitter(3'000, village, 0.6));
  if (level + 1 < levels) {
    ctx.taskwait();
    ctx.compute(jitter(1'500, village ^ 0xabcd, 0.5));  // referrals
  }
}

// ------------------------------------------------------------------ UTS ----
void sim_uts(SimContext& ctx, std::uint64_t node, int nchildren, double q) {
  ctx.compute(jitter(300, node, 0.4));  // hash evaluation + bookkeeping
  for (int i = 0; i < nchildren; ++i) {
    const std::uint64_t child = mix(node * 2654435761u + static_cast<std::uint64_t>(i));
    const double u = static_cast<double>(mix(child) >> 11) * 0x1.0p-53;
    const int kids = u < q ? 4 : 0;
    ctx.spawn([child, kids, q](SimContext& c) { sim_uts(c, child, kids, q); });
  }
  if (nchildren > 0) ctx.taskwait();
}

// ------------------------------------------------------------- Strassen ----
void sim_strassen(SimContext& ctx, std::uint64_t n, std::uint64_t cutoff) {
  if (n <= cutoff) {
    // Naive multiply of an n×n tile: ~2 cycles per multiply-add.
    ctx.compute(2 * n * n * n);
    return;
  }
  const std::uint64_t h = n / 2;
  ctx.compute(10 * h * h);  // the ten operand additions
  for (int i = 0; i < 7; ++i) {
    ctx.spawn([h, cutoff](SimContext& c) { sim_strassen(c, h, cutoff); });
  }
  ctx.taskwait();
  ctx.compute(8 * h * h);  // combine into C
}

// ----------------------------------------------------------------- Sort ----
void sim_sort_merge(SimContext& ctx, std::uint64_t n, std::uint64_t cutoff) {
  if (n <= cutoff) {
    ctx.compute(6 * n);  // serial merge
    return;
  }
  const std::uint64_t h = n / 2;
  ctx.spawn([h, cutoff](SimContext& c) { sim_sort_merge(c, h, cutoff); });
  ctx.spawn([h, cutoff](SimContext& c) { sim_sort_merge(c, h, cutoff); });
  ctx.taskwait();
}

void sim_sort(SimContext& ctx, std::uint64_t n, std::uint64_t cutoff) {
  if (n <= cutoff) {
    // std::sort of n elements: ~20 n log2 n / 16 cycles.
    std::uint64_t lg = 1;
    for (std::uint64_t v = n; v > 1; v >>= 1) ++lg;
    ctx.compute(2 * n * lg);
    return;
  }
  const std::uint64_t q = n / 4;
  for (int i = 0; i < 4; ++i) {
    const std::uint64_t len = i == 3 ? n - 3 * q : q;
    ctx.spawn([len, cutoff](SimContext& c) { sim_sort(c, len, cutoff); });
  }
  ctx.taskwait();
  ctx.spawn([q, cutoff](SimContext& c) { sim_sort_merge(c, 2 * q, cutoff); });
  ctx.spawn([n, q, cutoff](SimContext& c) {
    sim_sort_merge(c, n - 2 * q, cutoff);
  });
  ctx.taskwait();
  sim_sort_merge(ctx, n, cutoff);
}

}  // namespace

// ---------------------------------------------------------------------------

SimWorkload wl_fib(int n) {
  return {"Fib", 0.05, [n](SimContext& ctx) { sim_fib(ctx, n); }};
}

SimWorkload wl_nqueens(int n) {
  return {"NQueens", 0.05,
          [n](SimContext& ctx) { sim_nqueens(ctx, 0x9111, n, 0); }};
}

SimWorkload wl_fft(std::uint64_t points) {
  return {"FFT", 0.45,
          [points](SimContext& ctx) { sim_fft(ctx, points, 512); }};
}

SimWorkload wl_floorplan(int cells) {
  return {"FP", 0.20, [cells](SimContext& ctx) {
            // Root has full branching over first-cell shapes/positions.
            for (int i = 0; i < 9; ++i) {
              const std::uint64_t child = mix(0xf100 + static_cast<std::uint64_t>(i));
              ctx.spawn([child, cells](SimContext& c) {
                sim_floorplan(c, child, cells - 1);
              });
            }
            ctx.taskwait();
          }};
}

SimWorkload wl_health(int levels, int timesteps) {
  return {"Health", 0.30, [levels, timesteps](SimContext& ctx) {
            for (int t = 0; t < timesteps; ++t) {
              sim_health_village(ctx, 1, 0, levels);
            }
          }};
}

SimWorkload wl_uts(int root_children, double q, std::uint64_t seed) {
  return {"UTS", 0.05, [root_children, q, seed](SimContext& ctx) {
            sim_uts(ctx, seed, root_children, q);
          }};
}

SimWorkload wl_strassen(std::uint64_t n, std::uint64_t cutoff) {
  return {"STRAS", 0.70,
          [n, cutoff](SimContext& ctx) { sim_strassen(ctx, n, cutoff); }};
}

SimWorkload wl_sort(std::uint64_t n, std::uint64_t cutoff) {
  return {"Sort", 0.70,
          [n, cutoff](SimContext& ctx) { sim_sort(ctx, n, cutoff); }};
}

SimWorkload wl_align(int sequences) {
  return {"Align", 0.05, [sequences](SimContext& ctx) {
            // Single producer spawns one ~1e6-cycle task per pair.
            for (int i = 0; i < sequences; ++i) {
              for (int j = i + 1; j < sequences; ++j) {
                const std::uint64_t id =
                    static_cast<std::uint64_t>(i) * 1000 +
                    static_cast<std::uint64_t>(j);
                ctx.spawn([id](SimContext& c) {
                  c.compute(jitter(1'000'000, id, 0.5));
                });
              }
            }
            ctx.taskwait();
          }};
}

SimWorkload wl_posp(std::uint64_t total_puzzles, std::uint64_t batch) {
  return {"PoSp", 0.15, [total_puzzles, batch](SimContext& ctx) {
            constexpr std::uint64_t kCyclesPerHash = 450;  // BLAKE3, 32 B
            for (std::uint64_t done = 0; done < total_puzzles;
                 done += batch) {
              const std::uint64_t n = std::min(batch, total_puzzles - done);
              ctx.spawn([n](SimContext& c) {
                c.compute(n * kCyclesPerHash + 200);  // + bucket append
              });
            }
            ctx.taskwait();
          }};
}

namespace {

/// Recursive irregular generator: 8-ary tree whose leaves carry
/// heavy-tailed work (log-uniform ×1/4..×4 around task_cycles). Internal
/// nodes taskwait, so workers pop *between* spawns — the scheduling-point
/// pattern that lets victims open NA-RP redirect sessions, exactly like
/// the recursive BOTS apps (a flat producer loop never pops and would
/// leave RP inert, §VI-B1's Align effect).
void sim_irregular_node(SimContext& ctx, std::uint64_t id,
                        std::uint64_t leaves, std::uint64_t task_cycles) {
  if (leaves <= 8) {
    for (std::uint64_t i = 0; i < leaves; ++i) {
      const std::uint64_t h = mix(id * 8 + i + 1);
      const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
      const double f = std::pow(2.0, 4.0 * u - 2.0);  // [1/4, 4]
      const auto cyc = static_cast<std::uint64_t>(
          static_cast<double>(task_cycles) * f);
      ctx.spawn([cyc](SimContext& cc) { cc.compute(cyc); });
    }
    ctx.taskwait();
    return;
  }
  const std::uint64_t per = (leaves + 7) / 8;
  std::uint64_t assigned = 0;
  for (int b = 0; b < 8 && assigned < leaves; ++b) {
    const std::uint64_t chunk = std::min(per, leaves - assigned);
    const std::uint64_t child = mix(id * 31 + static_cast<std::uint64_t>(b));
    ctx.spawn([child, chunk, task_cycles](SimContext& c) {
      sim_irregular_node(c, child, chunk, task_cycles);
    });
    assigned += chunk;
  }
  ctx.compute_fixed(200);  // interior bookkeeping between spawn and wait
  ctx.taskwait();
}

}  // namespace

SimWorkload wl_irregular(std::uint64_t ntasks, std::uint64_t task_cycles,
                         double mem, std::uint64_t seed) {
  return {"Irregular", mem,
          [ntasks, task_cycles, seed](SimContext& ctx) {
            sim_irregular_node(ctx, mix(seed), ntasks, task_cycles);
          }};
}

std::vector<SimWorkload> bots_suite(Scale scale) {
  if (scale == Scale::kSweep) {
    return {
        wl_fib(21),                  // ~17k tasks
        wl_nqueens(7),               // irregular fine tasks
        wl_fft(1 << 15),             // 32k points
        wl_floorplan(8),
        wl_health(3, 6),
        wl_uts(60, 0.18, 562),
        wl_strassen(1024, 32),       // 7^5 = 16807 leaf tasks, ~6.5e4 cyc
        wl_sort(1 << 18, 1 << 11),   // 256k elements, ~4.5e4-cycle leaves
        wl_align(12),                // 66 × 1e6-cycle tasks
    };
  }
  return {
      wl_fib(26),                    // ~392k tasks
      wl_nqueens(8),
      wl_fft(1 << 18),
      wl_floorplan(10),
      wl_health(4, 10),
      wl_uts(150, 0.199, 562),
      wl_strassen(2048, 64),         // 7^5 = 16807 leaf tasks
      wl_sort(1 << 21, 1 << 12),
      wl_align(20),                  // 190 tasks
  };
}

SimResult simulate(SimConfig cfg, const SimWorkload& wl) {
  cfg.mem_intensity = wl.mem_intensity;
  SimEngine eng(cfg);
  return eng.run(wl.root);
}

}  // namespace xtask::sim
