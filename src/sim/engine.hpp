// Discrete-event simulator of the paper's runtimes on a multi-socket
// many-core machine (see machine.hpp for the cost model and DESIGN.md for
// why this substrate exists: the paper's Skylake-192 testbed is simulated
// on whatever host builds this repo).
//
// Every simulated worker is a fiber advancing a private virtual clock; the
// engine always resumes the worker with the smallest clock, so shared model
// state (queues, steal cells, resources) is accessed in near-causal order
// without any real synchronization. Workers execute real task closures —
// the BOTS workload generators recurse and spawn exactly like the real
// kernels — but "work" is ctx.compute(cycles) instead of real arithmetic.
//
// Policies reproduce the scheduler structures of §II–§IV:
//   kGomp      global priority queue + global task lock + lock barrier
//   kLomp      per-worker locked deques + random steal + pool allocator
//   kXlomp     XQueue + pool allocator + per-parent atomic termination
//   kXGomp     XQueue + malloc + global atomic task count (central barrier)
//   kXGompTB   XQueue + malloc + distributed tree barrier
// DLB (NA-RP / NA-WS) can be layered on kXGompTB, mirroring §IV.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "core/common.hpp"
#include "core/steal_protocol.hpp"
#include "core/topology.hpp"
#include "prof/profiler.hpp"
#include "sim/fiber.hpp"
#include "sim/machine.hpp"
#include "trace/format.hpp"

namespace xtask::sim {

enum class SimPolicy {
  kGomp,
  kLomp,
  kXlomp,
  kXGomp,
  kXGompTB,
};

const char* sim_policy_name(SimPolicy p) noexcept;

enum class SimDlb {
  kNone,
  kRedirectPush,
  kWorkSteal,
  /// Adaptive (paper §X future work, mirrors DlbKind::kAdaptive in the
  /// real runtime): workers sample their own task sizes and pick the
  /// Table IV guideline row — WS with size-scaled batches below 1e4
  /// cycles, RP with large local batches above.
  kAdaptive,
  /// The queue-granularity stealing design §IV-D evaluates and rejects:
  /// request cells per *queue* instead of per worker. Kept to reproduce
  /// the request funnel (millions sent, almost none become steals).
  kQueueWorkSteal,
};

struct SimDlbConfig {
  int n_victim = 1;
  int n_steal = 8;
  std::uint64_t t_interval = 10'000;  // idle cycles between request rounds
  double p_local = 1.0;
};

struct SimConfig {
  MachineConfig machine;
  SimPolicy policy = SimPolicy::kXGompTB;
  SimDlb dlb = SimDlb::kNone;
  SimDlbConfig dlb_cfg;
  std::uint32_t queue_capacity = 2048;  // per SPSC queue (XQueue policies)
  int malloc_arenas = 12;               // parallelism of the system malloc
  std::uint64_t seed = 42;
  /// Workload property: fraction of task time that is memory-bound and so
  /// subject to NUMA inflation (§VI-A work-time inflation).
  double mem_intensity = 0.0;
  std::size_t fiber_stack_bytes = 512 * 1024;
  /// Idle exponential backoff cap in cycles (models passive waiting).
  std::uint32_t idle_backoff_max = 1'024;
  /// Record a scheduler trace (trace/format.hpp) on the virtual clocks:
  /// every spawn, exec (with compute-cycle self cost) and steal, in fiber
  /// scheduling order — which is deterministic for a fixed seed, so the
  /// serialized trace is bit-identical across runs (the determinism gate
  /// in test_sim.cpp). Read it back via SimEngine::trace() after run().
  bool record_trace = false;
};

struct SimResult {
  std::uint64_t makespan = 0;  // cycles until the last worker left the region
  std::uint64_t tasks = 0;
  Counters totals;
  std::vector<Counters> per_worker;
  /// Cycles each worker spent in ctx.compute() work (utilization for
  /// Fig. 3-style per-worker timeline summaries; excludes runtime
  /// overheads and nested bookkeeping).
  std::vector<std::uint64_t> busy_per_worker;

  double seconds(double ghz = 2.1) const {
    return static_cast<double>(makespan) / (ghz * 1e9);
  }
};

class SimContext;

class SimEngine {
 public:
  explicit SimEngine(SimConfig cfg);
  ~SimEngine();

  SimEngine(const SimEngine&) = delete;
  SimEngine& operator=(const SimEngine&) = delete;

  /// Simulate one parallel region rooted at `root` (executed by worker 0).
  /// An engine instance simulates one region; create a new engine per
  /// measurement (construction is cheap relative to simulation).
  SimResult run(std::function<void(SimContext&)> root);

  const SimConfig& config() const noexcept { return cfg_; }
  const Topology& topology() const noexcept { return topo_; }
  /// The recorded event log (empty unless cfg.record_trace); valid after
  /// run() returns.
  const trace::Trace& trace() const noexcept { return trace_; }

 private:
  friend class SimContext;

  struct SimTask {
    std::function<void(SimContext&)> body;
    SimTask* parent = nullptr;
    int pending_children = 0;
    int creator = 0;
    bool pool_allocated = false;  // recycle through the freelist model
    bool remote_buffer = false;   // descriptor borrowed from a remote peer
    // Trace recording (cfg.record_trace): stable id and accumulated
    // compute cycles. Unlike the real Task, SimTask has no layout budget.
    std::uint64_t trace_id = 0;
    std::uint64_t trace_self = 0;
  };

  struct WorkerState {
    int id = 0;
    SimEngine* eng = nullptr;
    std::uint64_t clock = 0;
    bool done = false;
    bool arrived = false;
    Fiber fiber;

    SimTask* current = nullptr;
    std::uint32_t rr_cursor = 0;
    XorShift rng;
    Counters counters;

    // Idle backoff (models spin-then-sleep waiting).
    std::uint32_t idle_backoff = 0;

    // DLB state (mirrors detail::Worker in the real runtime).
    std::uint64_t round = 1;
    std::uint64_t request = 0;
    int redirect_thief = -1;
    std::uint32_t redirect_pushed = 0;
    std::uint64_t idle_wait = 0;  // cycles idled since last request round
    bool request_open = false;

    // Adaptive DLB: EMA of executed task sizes (virtual cycles).
    std::uint64_t avg_task_cycles = 0;
    std::uint64_t busy_cycles = 0;  // time inside task bodies

    // Queue-based WS (rejected design): per-producer-queue cells.
    std::vector<std::uint64_t> q_round;
    std::vector<std::uint64_t> q_request;
    int q_scan_cursor = 0;

    // LOMP allocator model: recycled descriptors available locally.
    std::uint32_t freelist = 0;

    // LOMP deque lock.
    Resource deque_lock;
    std::deque<SimTask*> deque;
  };

  // --- virtual time ------------------------------------------------------
  void advance(WorkerState& w, std::uint64_t cycles);
  void maybe_switch(WorkerState& w);
  void use_resource(WorkerState& w, Resource& r, std::uint32_t hold);
  [[noreturn]] void worker_finished(WorkerState& w);
  static void fiber_entry(void* arg);
  void worker_main(WorkerState& w);

  // --- tasking -----------------------------------------------------------
  SimTask* allocate_task(WorkerState& w);
  void release_task(WorkerState& w, SimTask* t);
  void spawn(WorkerState& w, std::function<void(SimContext&)> body);
  SimTask* find_task(WorkerState& w);
  void execute(WorkerState& w, SimTask* t);
  void idle_step(WorkerState& w);
  bool barrier_poll(WorkerState& w);
  bool uses_xqueue() const noexcept {
    return cfg_.policy == SimPolicy::kXlomp ||
           cfg_.policy == SimPolicy::kXGomp ||
           cfg_.policy == SimPolicy::kXGompTB;
  }
  bool uses_pool_alloc() const noexcept {
    return cfg_.policy == SimPolicy::kLomp || cfg_.policy == SimPolicy::kXlomp;
  }

  // --- XQueue model ------------------------------------------------------
  std::deque<SimTask*>& q(int consumer, int producer) noexcept {
    return qmatrix_[static_cast<std::size_t>(consumer) *
                        static_cast<std::size_t>(n_) +
                    static_cast<std::size_t>(producer)];
  }
  bool xq_push(WorkerState& w, int target, SimTask* t);
  SimTask* xq_pop(WorkerState& w);

  // --- trace recording ----------------------------------------------------
  /// Append one record to the event log (no-op unless recording).
  void rec(trace::RecordKind kind, int worker, std::uint32_t aux,
           std::uint64_t id, std::uint64_t t0, std::uint64_t t1,
           std::uint64_t ref);

  // --- DLB ---------------------------------------------------------------
  std::uint32_t cell_cost(int a, int b) const noexcept {
    return topo_.local(a, b) ? cfg_.machine.cell_local
                             : cfg_.machine.cell_remote;
  }
  SimDlbConfig effective_dlb(const WorkerState& w) const noexcept;
  void thief_send_requests(WorkerState& w);
  void victim_check(WorkerState& w);
  void queue_ws_send_requests(WorkerState& w);
  void queue_ws_victim_scan(WorkerState& w);
  void do_work_steal(WorkerState& w, int thief);
  void end_redirect_session(WorkerState& w);

  SimConfig cfg_;
  int n_;
  Topology topo_;

  // Fiber orchestration.
  FiberContext main_ctx_;
  std::vector<std::unique_ptr<WorkerState>> workers_;
  using HeapEntry = std::pair<std::uint64_t, int>;  // (clock, worker)
  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      std::greater<HeapEntry>>
      ready_;
  WorkerState* current_ = nullptr;
  int done_count_ = 0;

  // Global model state.
  std::int64_t in_flight_ = 0;
  int arrived_ = 0;
  std::uint64_t total_tasks_ = 0;

  // Trace recording (cfg.record_trace).
  trace::Trace trace_;
  std::uint64_t next_trace_id_ = 0;

  // Shared resources.
  Resource global_lock_;               // GOMP
  Resource global_task_count_;         // XGOMP atomic counter line
  Resource shared_pool_;               // pool allocator level (ii)
  std::vector<Resource> malloc_arenas_;

  // Queues.
  std::deque<SimTask*> global_q_;          // GOMP
  std::vector<std::deque<SimTask*>> qmatrix_;  // XQueue policies
};

/// Handle passed to simulated task bodies (mirrors xtask::TaskContext plus
/// the virtual-work API).
class SimContext {
 public:
  int worker_id() const noexcept { return w_->id; }

  /// Spawn a child task (costs are charged per the active policy).
  void spawn(std::function<void(SimContext&)> body) {
    eng_->spawn(*w_, std::move(body));
  }

  /// Wait for the current task's children, executing other tasks meanwhile.
  void taskwait();

  /// Perform `cycles` of task work, inflated by NUMA locality: running on
  /// the creating core costs `cycles`, in-zone or cross-zone execution
  /// multiplies the memory-bound fraction (cfg.mem_intensity) by the
  /// machine's locality penalties.
  void compute(std::uint64_t cycles);

  /// Uninflated work (pure compute, no memory traffic).
  void compute_fixed(std::uint64_t cycles);

  /// Deterministic per-worker random stream (workload shaping).
  std::uint64_t rand() noexcept { return w_->rng.next(); }

  std::uint64_t now() const noexcept { return w_->clock; }

 private:
  friend class SimEngine;
  SimContext(SimEngine* eng, SimEngine::WorkerState* w) noexcept
      : eng_(eng), w_(w) {}
  SimEngine* eng_;
  SimEngine::WorkerState* w_;
};

}  // namespace xtask::sim
