// Machine model for the discrete-event simulator: a multi-socket many-core
// system described by core/zone counts and a table of operation costs in
// cycles. Defaults approximate the paper's Intel Skylake-192 testbed
// (192 cores, 8 NUMA zones, ~2.1 GHz):
//   * SPSC B-Queue ops ~20 cycles (§II-B),
//   * contended atomic/lock transfers ~100 ns ≈ 200 cycles (§IV-B cites
//     ~100 ns atomic lower bound),
//   * shared-cache cell messages "a few nanoseconds" when NUMA-local
//     (§IV-B), several times that cross-zone.
// Costs are deliberately round numbers: the simulator targets the *shape*
// of the paper's results (who wins, crossover points), not cycle-exact
// prediction; EXPERIMENTS.md documents the calibration.
#pragma once

#include <cstdint>

#include "core/topology.hpp"

namespace xtask::sim {

struct MachineConfig {
  /// Machine shape — the same xtask::Topology object (and spec grammar,
  /// Topology::parse) the real runtimes consume, so a simulated
  /// Skylake-192 ("8x24") and a real-thread synthetic topology are the
  /// same source of truth. Replace via e.g.
  /// `cfg.machine.topo = Topology::parse("2x24");`.
  Topology topo = Topology::parse("8x24");

  int cores() const noexcept { return topo.num_workers(); }
  int zones() const noexcept { return topo.num_zones(); }

  // --- queueing ---------------------------------------------------------
  std::uint32_t spsc_op = 20;        // B-Queue push/pop (§II-B: ~20 cycles)
  std::uint32_t queue_probe = 4;     // probing an empty aux queue
  std::uint32_t probe_cap = 12;      // max probes charged per scan (the
                                     // consumer's rotation hint makes long
                                     // cold scans rare)
  std::uint32_t deque_lock_op = 110;  // LOMP per-deque lock + op (lock line
                                     // shared with thieves)

  // --- synchronization ---------------------------------------------------
  std::uint32_t atomic_local_work = 30;   // RMW issue cost
  std::uint32_t atomic_transfer = 200;    // exclusive cache-line handoff
                                          // between cores (~100 ns)
  std::uint32_t lock_local_work = 60;     // mutex fast path
  /// Serialized cost of one pass through GOMP's global-task-lock critical
  /// region under contention: the lock line handoff plus the handful of
  /// shared bookkeeping lines (queue head, task count, barrier state) that
  /// each ping-pong at ~100 ns, plus the priority-queue operation itself.
  std::uint32_t gomp_critical_section = 900;
  /// Serialized cost of a lock acquisition that only reads barrier state
  /// (idle workers at scheduling points).
  std::uint32_t gomp_lock_poll = 350;
  /// GOMP wakes its sleeping workers whenever tasks are queued, so idle
  /// workers re-poll (and re-acquire the lock) at a short interval instead
  /// of backing off — the thundering-herd behaviour behind Fig. 1's
  /// collapse. This caps their backoff, in cycles.
  std::uint32_t gomp_idle_backoff_max = 4'096;
  std::uint32_t cell_local = 8;      // round/request cell, same zone (cache)
  std::uint32_t cell_remote = 60;    // round/request cell, cross zone

  // --- memory / allocation ------------------------------------------------
  std::uint32_t malloc_work = 90;     // local portion of malloc/free
  std::uint32_t malloc_serial = 110;  // serialized portion (arena lock)
  std::uint32_t pool_alloc = 22;      // multi-level allocator local hit
  std::uint32_t task_setup = 25;      // descriptor init + dependency edges
  /// Extra per-task bookkeeping in the LLVM runtime ("a richer set of
  /// cases", §VI-A) — charged by LOMP and XLOMP on top of task_setup.
  std::uint32_t lomp_task_extra = 140;

  // --- scheduling loop -----------------------------------------------------
  std::uint32_t idle_poll = 120;     // one empty pass over the queues
  std::uint32_t barrier_poll = 35;   // one barrier state check (tree edge
                                     // cells or central counter read)

  // --- locality inflation on task bodies (work-time inflation, §VI-A) -----
  // Effective task cycles = size * (1 + penalty * mem_intensity), where
  // mem_intensity in [0,1] is a per-workload property.
  // Calibrated so a fully memory-bound task (mem_intensity 1.0) runs
  // ~2.5x slower cross-socket — the regime the paper's 4x NA-RP wins on
  // STRAS/Sort imply (§VI-B1: interleaved arrays, all traffic remote).
  double local_penalty = 0.25;   // executed in creator's zone, other core
  double remote_penalty = 1.50;  // executed in a different zone

  const Topology& topology() const noexcept { return topo; }
};

/// A serially reusable resource (a lock, a contended cache line, a malloc
/// arena): each use occupies it for `hold` cycles; acquirers queue up in
/// virtual time.
struct Resource {
  std::uint64_t available_at = 0;

  /// Returns the completion time of a use starting no earlier than `now`.
  std::uint64_t acquire(std::uint64_t now, std::uint32_t hold) noexcept {
    const std::uint64_t start = now > available_at ? now : available_at;
    available_at = start + hold;
    return available_at;
  }

  void reset() noexcept { available_at = 0; }
};

}  // namespace xtask::sim
