#include "sim/fiber.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <cstring>

#include "core/common.hpp"

namespace xtask::sim {

#if defined(__x86_64__)

extern "C" void xtask_fiber_trampoline() noexcept;  // fiber_switch.S

Fiber::~Fiber() {
  if (stack_base_ != nullptr) munmap(stack_base_, stack_size_);
}

void Fiber::create(EntryFn entry, void* arg, std::size_t stack_bytes) {
  XTASK_CHECK(stack_base_ == nullptr);
  const std::size_t page = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
  const std::size_t usable = (stack_bytes + page - 1) & ~(page - 1);
  stack_size_ = usable + page;  // one guard page below the stack
  void* mem = mmap(nullptr, stack_size_, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  XTASK_CHECK(mem != MAP_FAILED);
  XTASK_CHECK(mprotect(mem, page, PROT_NONE) == 0);
  stack_base_ = mem;

  // Seed the stack so the first switch "returns" into the trampoline with
  // r15 = arg and r14 = entry. Layout below the 16-byte-aligned top, in
  // the order xtask_fiber_switch pops: r15 r14 r13 r12 rbx rbp retaddr.
  auto top = reinterpret_cast<std::uintptr_t>(mem) + stack_size_;
  top &= ~static_cast<std::uintptr_t>(15);
  auto* slots = reinterpret_cast<void**>(top) - 7;
  slots[0] = arg;
  slots[1] = reinterpret_cast<void*>(entry);
  slots[2] = nullptr;  // r13
  slots[3] = nullptr;  // r12
  slots[4] = nullptr;  // rbx
  slots[5] = nullptr;  // rbp
  slots[6] = reinterpret_cast<void*>(&xtask_fiber_trampoline);
  ctx_.sp = slots;
}

void Fiber::switch_to(FiberContext* from, FiberContext* to) noexcept {
  xtask_fiber_switch(&from->sp, to->sp);
}

#else  // ucontext fallback (non-x86 hosts)

namespace {
struct Thunk {
  Fiber::EntryFn entry;
  void* arg;
};
void ucontext_entry(unsigned hi, unsigned lo) {
  auto* t = reinterpret_cast<Thunk*>(
      (static_cast<std::uintptr_t>(hi) << 32) | lo);
  t->entry(t->arg);
}
}  // namespace

Fiber::~Fiber() {
  if (stack_base_ != nullptr) {
    munmap(stack_base_, stack_size_);
    delete static_cast<Thunk*>(aux_);
  }
}

void Fiber::create(EntryFn entry, void* arg, std::size_t stack_bytes) {
  // Portable fallback: correctness only; performance-sensitive users are
  // expected to be on x86-64.
  XTASK_CHECK(stack_base_ == nullptr);
  auto* thunk = new Thunk{entry, arg};
  aux_ = thunk;
  void* mem = mmap(nullptr, stack_bytes, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  XTASK_CHECK(mem != MAP_FAILED);
  stack_base_ = mem;
  stack_size_ = stack_bytes;
  getcontext(&ctx_.uc);
  ctx_.uc.uc_stack.ss_sp = mem;
  ctx_.uc.uc_stack.ss_size = stack_bytes;
  ctx_.uc.uc_link = nullptr;
  const auto p = reinterpret_cast<std::uintptr_t>(thunk);
  makecontext(&ctx_.uc, reinterpret_cast<void (*)()>(&ucontext_entry), 2,
              static_cast<unsigned>(p >> 32),
              static_cast<unsigned>(p & 0xffffffffu));
}

void Fiber::switch_to(FiberContext* from, FiberContext* to) noexcept {
  swapcontext(&from->uc, &to->uc);
}

#endif

}  // namespace xtask::sim
