#include "sim/engine.hpp"

#include <algorithm>

namespace xtask::sim {

const char* sim_policy_name(SimPolicy p) noexcept {
  switch (p) {
    case SimPolicy::kGomp: return "GOMP";
    case SimPolicy::kLomp: return "LOMP";
    case SimPolicy::kXlomp: return "XLOMP";
    case SimPolicy::kXGomp: return "XGOMP";
    case SimPolicy::kXGompTB: return "XGOMPTB";
    default: return "?";
  }
}

SimEngine::SimEngine(SimConfig cfg)
    : cfg_(cfg),
      n_(cfg.machine.cores()),
      topo_(cfg.machine.topo),
      malloc_arenas_(static_cast<std::size_t>(std::max(1, cfg.malloc_arenas))) {
  XTASK_CHECK(n_ >= 1);
  workers_.reserve(static_cast<std::size_t>(n_));
  for (int i = 0; i < n_; ++i) {
    auto w = std::make_unique<WorkerState>();
    w->id = i;
    w->eng = this;
    w->rr_cursor = static_cast<std::uint32_t>(i);
    w->rng = XorShift(cfg_.seed + static_cast<std::uint64_t>(i) * 0x9e3779b9);
    if (cfg.dlb == SimDlb::kQueueWorkSteal) {
      w->q_round.assign(static_cast<std::size_t>(n_), 1);
      w->q_request.assign(static_cast<std::size_t>(n_), 0);
    }
    workers_.push_back(std::move(w));
  }
  if (uses_xqueue())
    qmatrix_.resize(static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_));
}

SimEngine::~SimEngine() = default;

// ---------------------------------------------------------------------------
// Virtual time and fiber orchestration.

void SimEngine::advance(WorkerState& w, std::uint64_t cycles) {
  w.clock += cycles;
  maybe_switch(w);
}

void SimEngine::maybe_switch(WorkerState& w) {
  if (ready_.empty() || ready_.top().first >= w.clock) return;
  WorkerState* next = workers_[static_cast<std::size_t>(ready_.top().second)]
                          .get();
  ready_.pop();
  ready_.emplace(w.clock, w.id);
  current_ = next;
  Fiber::switch_to(&w.fiber.context(), &next->fiber.context());
  // Resumed: we are the minimum-clock worker again.
  current_ = &w;
}

void SimEngine::use_resource(WorkerState& w, Resource& r, std::uint32_t hold) {
  w.clock = r.acquire(w.clock, hold);
  maybe_switch(w);
}

void SimEngine::worker_finished(WorkerState& w) {
  w.done = true;
  ++done_count_;
  if (ready_.empty()) {
    // Last worker standing: hand control back to run().
    Fiber::switch_to(&w.fiber.context(), &main_ctx_);
  } else {
    WorkerState* next =
        workers_[static_cast<std::size_t>(ready_.top().second)].get();
    ready_.pop();
    current_ = next;
    Fiber::switch_to(&w.fiber.context(), &next->fiber.context());
  }
  fatal("finished sim worker resumed");
}

void SimEngine::fiber_entry(void* arg) {
  auto* w = static_cast<WorkerState*>(arg);
  w->eng->worker_main(*w);
  w->eng->worker_finished(*w);
}

SimResult SimEngine::run(std::function<void(SimContext&)> root) {
  // Root task, owned by worker 0 (mirrors Runtime::run).
  auto* root_task = new SimTask;
  root_task->body = std::move(root);
  root_task->pending_children = 1;
  root_task->creator = 0;
  ++in_flight_;
  ++total_tasks_;
  workers_[0]->counters.ntasks_created++;
  workers_[0]->current = nullptr;
  if (cfg_.record_trace) {
    trace_.nworkers = static_cast<std::uint32_t>(n_);
    // Virtual clock rate: the machine model is priced at 2.1 GHz (the
    // same constant SimResult::seconds defaults to).
    trace_.cycles_per_us = 2100.0;
    trace_.backend = std::string("sim:") + sim_policy_name(cfg_.policy);
    trace_.topology = topo_.describe();
    root_task->trace_id = ++next_trace_id_;
    rec(trace::RecordKind::kSpawn, 0, 0, root_task->trace_id, 0, 0, 0);
  }
  // Worker 0 discovers the root in its master queue / global queue.
  if (uses_xqueue())
    q(0, 0).push_back(root_task);
  else if (cfg_.policy == SimPolicy::kGomp)
    global_q_.push_back(root_task);
  else
    workers_[0]->deque.push_back(root_task);

  for (int i = 0; i < n_; ++i) {
    workers_[static_cast<std::size_t>(i)]->fiber.create(
        &SimEngine::fiber_entry, workers_[static_cast<std::size_t>(i)].get(),
        cfg_.fiber_stack_bytes);
    if (i != 0) ready_.emplace(0, i);
  }
  current_ = workers_[0].get();
  Fiber::switch_to(&main_ctx_, &workers_[0]->fiber.context());

  // All workers finished.
  SimResult res;
  res.tasks = total_tasks_;
  res.per_worker.reserve(static_cast<std::size_t>(n_));
  res.busy_per_worker.reserve(static_cast<std::size_t>(n_));
  for (const auto& w : workers_) {
    res.makespan = std::max(res.makespan, w->clock);
    res.per_worker.push_back(w->counters);
    res.busy_per_worker.push_back(w->busy_cycles);
    res.totals += w->counters;
  }
  return res;
}

void SimEngine::worker_main(WorkerState& w) {
  for (;;) {
    if (SimTask* t = find_task(w)) {
      w.idle_backoff = 0;
      execute(w, t);
      continue;
    }
    idle_step(w);
    if (barrier_poll(w)) return;
  }
}

// ---------------------------------------------------------------------------
// Allocation model.

SimEngine::SimTask* SimEngine::allocate_task(WorkerState& w) {
  auto* t = new SimTask;  // host allocation; simulated cost below
  advance(w, cfg_.machine.task_setup);
  if (uses_pool_alloc()) {
    t->pool_allocated = true;
    if (w.freelist > 0) {
      --w.freelist;
      advance(w, cfg_.machine.pool_alloc);  // level (i): local free list
    } else {
      // Levels (ii)/(iii): grab a buffer from another thread or fall back
      // to malloc. Both are distributed (buffers come from many peers,
      // malloc from per-arena locks), so this costs like a cheap malloc
      // spread over the arenas rather than one serial pool lock.
      advance(w, cfg_.machine.malloc_work / 2 + cfg_.machine.lock_local_work);
      use_resource(w,
                   malloc_arenas_[w.rng.next() % malloc_arenas_.size()],
                   cfg_.machine.malloc_serial / 2);
      // The borrowed buffer lives in another thread's memory (§VI-A:
      // LOMP "steals" buffer space locality-agnostically), so this task's
      // private data is likely NUMA-remote during execution.
      t->remote_buffer = true;
    }
  } else {
    // GOMP-style: one malloc per task, arenas model the allocator's
    // internal parallelism.
    advance(w, cfg_.machine.malloc_work);
    use_resource(
        w,
        malloc_arenas_[static_cast<std::size_t>(w.id) %
                       malloc_arenas_.size()],
        cfg_.machine.malloc_serial);
  }
  return t;
}

void SimEngine::release_task(WorkerState& w, SimTask* t) {
  if (t->pool_allocated) {
    ++w.freelist;
    advance(w, cfg_.machine.pool_alloc / 2);
  } else {
    advance(w, cfg_.machine.malloc_work / 2);
    use_resource(
        w,
        malloc_arenas_[static_cast<std::size_t>(w.id) %
                       malloc_arenas_.size()],
        cfg_.machine.malloc_serial / 2);
  }
  delete t;
}

// ---------------------------------------------------------------------------
// Queue model.

bool SimEngine::xq_push(WorkerState& w, int target, SimTask* t) {
  auto& queue = q(target, w.id);
  if (queue.size() >= cfg_.queue_capacity) return false;
  advance(w, cfg_.machine.spsc_op);
  queue.push_back(t);
  return true;
}

SimEngine::SimTask* SimEngine::xq_pop(WorkerState& w) {
  auto& master = q(w.id, w.id);
  if (!master.empty()) {
    advance(w, cfg_.machine.spsc_op);
    SimTask* t = master.front();
    master.pop_front();
    return t;
  }
  std::uint32_t probes = 1;  // the master check above
  for (int i = 1; i < n_; ++i) {
    const int p = (w.id + i) % n_;
    auto& aux = q(w.id, p);
    if (!aux.empty()) {
      advance(w, probes * cfg_.machine.queue_probe + cfg_.machine.spsc_op);
      SimTask* t = aux.front();
      aux.pop_front();
      return t;
    }
    // The consumer's rotation hint makes long cold scans rare; cap the
    // charged probes.
    if (probes < cfg_.machine.probe_cap) ++probes;
  }
  advance(w, probes * cfg_.machine.queue_probe);
  return nullptr;
}

// ---------------------------------------------------------------------------
// Tasking.

void SimEngine::spawn(WorkerState& w, std::function<void(SimContext&)> body) {
  SimTask* t = allocate_task(w);
  t->body = std::move(body);
  t->parent = w.current;
  t->pending_children = 1;
  t->creator = w.id;
  if (w.current != nullptr) ++w.current->pending_children;
  ++in_flight_;
  ++total_tasks_;
  w.counters.ntasks_created++;
  if (cfg_.record_trace) {
    t->trace_id = ++next_trace_id_;
    rec(trace::RecordKind::kSpawn, w.id, 0, t->trace_id, w.clock, 0,
        w.current != nullptr ? w.current->trace_id : 0);
  }

  // Termination accounting.
  switch (cfg_.policy) {
    case SimPolicy::kXGomp:
      advance(w, cfg_.machine.atomic_local_work);
      use_resource(w, global_task_count_, cfg_.machine.atomic_transfer);
      break;
    case SimPolicy::kLomp:
    case SimPolicy::kXlomp:
      // Per-parent counter plus LLVM's richer per-task bookkeeping.
      advance(w, cfg_.machine.atomic_local_work +
                     cfg_.machine.lomp_task_extra);
      break;
    default:
      break;  // GOMP folds it into the lock; XGOMPTB has none
  }

  if (cfg_.policy == SimPolicy::kGomp) {
    use_resource(w, global_lock_, cfg_.machine.gomp_critical_section);
    global_q_.push_back(t);
    w.counters.ntasks_static_push++;
    return;
  }
  if (cfg_.policy == SimPolicy::kLomp) {
    use_resource(w, w.deque_lock, cfg_.machine.deque_lock_op);
    w.deque.push_back(t);
    w.counters.ntasks_static_push++;
    return;
  }

  // XQueue policies. Victims handle steal requests only at scheduling
  // points where they *find* tasks (find_task / idle polls), per Alg. 2 —
  // a pure producer that never pops (Align's `single` loop) therefore
  // never redirects, matching §VI-B1. An already-open NA-RP session does
  // redirect the tasks spawned while it lasts (Alg. 3):
  if (w.redirect_thief >= 0) {
    advance(w, cell_cost(w.id, w.redirect_thief));
    if (xq_push(w, w.redirect_thief, t)) {
      ++w.redirect_pushed;
      if (topo_.local(w.id, w.redirect_thief))
        w.counters.nsteal_local++;
      else
        w.counters.nsteal_remote++;
      if (w.redirect_pushed >=
          static_cast<std::uint32_t>(effective_dlb(w).n_steal))
        end_redirect_session(w);
      return;
    }
    w.counters.nreq_target_full++;
    end_redirect_session(w);
  }

  const int target =
      static_cast<int>(w.rr_cursor % static_cast<std::uint32_t>(n_));
  ++w.rr_cursor;
  if (xq_push(w, target, t)) {
    w.counters.ntasks_static_push++;
    return;
  }
  w.counters.ntasks_imm_exec++;
  execute(w, t);
}

SimEngine::SimTask* SimEngine::find_task(WorkerState& w) {
  SimTask* t = nullptr;
  switch (cfg_.policy) {
    case SimPolicy::kGomp: {
      use_resource(w, global_lock_, cfg_.machine.gomp_critical_section);
      if (!global_q_.empty()) {
        t = global_q_.front();
        global_q_.pop_front();
      }
      break;
    }
    case SimPolicy::kLomp: {
      use_resource(w, w.deque_lock, cfg_.machine.deque_lock_op);
      if (!w.deque.empty()) {
        t = w.deque.back();
        w.deque.pop_back();
        break;
      }
      // Random pull-based stealing (libomp thieves retry aggressively).
      for (int attempt = 0; attempt < 4 && t == nullptr && n_ > 1;
           ++attempt) {
        const int v = static_cast<int>(
            w.rng.below(static_cast<std::uint64_t>(n_)));
        if (v == w.id) continue;
        WorkerState& victim = *workers_[static_cast<std::size_t>(v)];
        advance(w, cell_cost(w.id, v));
        use_resource(w, victim.deque_lock, cfg_.machine.deque_lock_op);
        if (!victim.deque.empty()) {
          t = victim.deque.front();
          victim.deque.pop_front();
          if (topo_.local(w.id, v))
            w.counters.nsteal_local++;
          else
            w.counters.nsteal_remote++;
        }
      }
      break;
    }
    default:
      t = xq_pop(w);
      break;
  }
  if (t != nullptr && cfg_.dlb != SimDlb::kNone && uses_xqueue()) {
    if (cfg_.dlb == SimDlb::kQueueWorkSteal)
      queue_ws_victim_scan(w);
    else
      victim_check(w);
  }
  return t;
}

void SimEngine::execute(WorkerState& w, SimTask* t) {
  {
    Counters& c = w.counters;
    if (t->creator == w.id)
      c.ntasks_self++;
    else if (topo_.local(w.id, t->creator))
      c.ntasks_local++;
    else
      c.ntasks_remote++;
  }
  SimTask* saved = w.current;
  w.current = t;
  const std::uint64_t body_start = w.clock;
  {
    SimContext ctx(this, &w);
    t->body(ctx);
    t->body = nullptr;
  }
  if (cfg_.dlb == SimDlb::kAdaptive) {
    const std::uint64_t dt = w.clock - body_start;
    w.avg_task_cycles = w.avg_task_cycles == 0
                            ? dt
                            : w.avg_task_cycles +
                                  (dt - w.avg_task_cycles) / 8;
  }
  w.current = saved;
  if (cfg_.record_trace)
    rec(trace::RecordKind::kExec, w.id, 0, t->trace_id, body_start, w.clock,
        t->trace_self);
  w.counters.ntasks_executed++;
  --in_flight_;

  // Termination accounting on completion.
  switch (cfg_.policy) {
    case SimPolicy::kGomp:
      use_resource(w, global_lock_, cfg_.machine.gomp_lock_poll);
      break;
    case SimPolicy::kXGomp:
      advance(w, cfg_.machine.atomic_local_work);
      use_resource(w, global_task_count_, cfg_.machine.atomic_transfer);
      break;
    case SimPolicy::kLomp:
    case SimPolicy::kXlomp:
      advance(w, cfg_.machine.atomic_local_work);
      break;
    default:
      break;
  }

  // Lifetime: pending_children counts self + live children.
  SimTask* parent = t->parent;
  if (--t->pending_children == 0) release_task(w, t);
  if (parent != nullptr && --parent->pending_children == 0)
    release_task(w, parent);
}

void SimEngine::idle_step(WorkerState& w) {
  if (w.redirect_thief >= 0) end_redirect_session(w);
  if (cfg_.dlb != SimDlb::kNone && uses_xqueue() && n_ > 1) {
    const bool queue_ws = cfg_.dlb == SimDlb::kQueueWorkSteal;
    if (!w.request_open) {
      queue_ws ? queue_ws_send_requests(w) : thief_send_requests(w);
      w.request_open = true;
      w.idle_wait = 0;
    } else if (w.idle_wait >= effective_dlb(w).t_interval) {
      queue_ws ? queue_ws_send_requests(w) : thief_send_requests(w);
      w.idle_wait = 0;
    }
    if (queue_ws)
      queue_ws_victim_scan(w);
    else
      victim_check(w);
  }
  // Exponential backoff models spin-then-sleep idling and keeps simulated
  // idle polling from dominating event counts.
  const std::uint32_t cap = cfg_.policy == SimPolicy::kGomp
                                ? cfg_.machine.gomp_idle_backoff_max
                                : cfg_.idle_backoff_max;
  if (w.idle_backoff == 0)
    w.idle_backoff = cfg_.machine.idle_poll;
  else
    w.idle_backoff = std::min(w.idle_backoff * 2, cap);
  advance(w, w.idle_backoff);
  w.idle_wait += w.idle_backoff;
}

bool SimEngine::barrier_poll(WorkerState& w) {
  if (!w.arrived) {
    w.arrived = true;
    ++arrived_;
  }
  switch (cfg_.policy) {
    case SimPolicy::kGomp:
      // Barrier state is readable only under the global task lock.
      use_resource(w, global_lock_, cfg_.machine.gomp_lock_poll);
      break;
    case SimPolicy::kXGomp:
    case SimPolicy::kLomp:
    case SimPolicy::kXlomp:
      // Poll the shared counter line: hot read, no exclusive hold.
      advance(w, cfg_.machine.barrier_poll +
                     cfg_.machine.atomic_local_work);
      break;
    case SimPolicy::kXGompTB:
      // Tree barrier: touch parent/child cells only.
      advance(w, cfg_.machine.barrier_poll);
      break;
  }
  return in_flight_ == 0 && arrived_ == n_;
}

// ---------------------------------------------------------------------------
// DLB (mirrors Runtime's victim/thief logic with messaging costs).

SimDlbConfig SimEngine::effective_dlb(const WorkerState& w) const noexcept {
  if (cfg_.dlb != SimDlb::kAdaptive) return cfg_.dlb_cfg;
  const std::uint64_t s = w.avg_task_cycles;
  if (s == 0 || s < 100) return {1, 2, 10'000, 1.0};
  if (s < 1'000) return {4, 16, 10'000, 1.0};
  if (s < 10'000) return {8, 32, 10'000, 0.5};
  return {24, 32, 1'000, 0.08};  // RP row (Table IV: P_local 3-12%)
}

void SimEngine::thief_send_requests(WorkerState& w) {
  const SimDlbConfig dc = effective_dlb(w);
  for (int i = 0; i < dc.n_victim; ++i) {
    const int v = pick_victim(topo_, w.id, dc.p_local, w.rng);
    if (v < 0) return;
    WorkerState& victim = *workers_[static_cast<std::size_t>(v)];
    advance(w, cell_cost(w.id, v));  // read round + request
    if (steal::round_of(victim.request) < victim.round) {
      advance(w, cell_cost(w.id, v));  // write request
      victim.request = steal::pack(w.id, victim.round);
      w.counters.nreq_sent++;
    }
  }
}

void SimEngine::victim_check(WorkerState& w) {
  if (w.redirect_thief >= 0) return;
  advance(w, cfg_.machine.cell_local);  // poll own request cell
  if (steal::round_of(w.request) != w.round) return;
  const int thief = steal::thief_of(w.request);
  if (thief == w.id) return;
  w.counters.nreq_handled++;
  const bool redirect =
      cfg_.dlb == SimDlb::kRedirectPush ||
      (cfg_.dlb == SimDlb::kAdaptive && w.avg_task_cycles >= 10'000);
  if (redirect) {
    w.redirect_thief = thief;
    w.redirect_pushed = 0;
  } else {
    do_work_steal(w, thief);
    w.round++;
  }
}

void SimEngine::do_work_steal(WorkerState& w, int thief) {
  const std::uint32_t n_steal =
      static_cast<std::uint32_t>(effective_dlb(w).n_steal);
  std::uint32_t moved = 0;
  while (moved < n_steal) {
    SimTask* t = xq_pop(w);
    if (t == nullptr) {
      if (moved == 0) w.counters.nreq_src_empty++;
      break;
    }
    advance(w, cell_cost(w.id, thief));
    if (!xq_push(w, thief, t)) {
      w.counters.nreq_target_full++;
      if (!xq_push(w, w.id, t)) {
        w.counters.ntasks_imm_exec++;
        execute(w, t);
      }
      break;
    }
    ++moved;
  }
  if (moved > 0) {
    w.counters.nreq_has_steal++;
    if (topo_.local(w.id, thief))
      w.counters.nsteal_local += moved;
    else
      w.counters.nsteal_remote += moved;
    if (cfg_.record_trace)
      rec(trace::RecordKind::kStealMsg, w.id,
          static_cast<std::uint32_t>(thief), 0, w.clock, w.clock, moved);
  }
}

void SimEngine::rec(trace::RecordKind kind, int worker, std::uint32_t aux,
                    std::uint64_t id, std::uint64_t t0, std::uint64_t t1,
                    std::uint64_t ref) {
  if (!cfg_.record_trace) return;
  trace::TraceRecord r;
  r.kind = static_cast<std::uint8_t>(kind);
  r.zone = static_cast<std::uint8_t>(topo_.zone_of(worker));
  r.worker = static_cast<std::uint16_t>(worker);
  r.aux = aux;
  r.id = id;
  r.t0 = t0;
  r.t1 = t1;
  r.ref = ref;
  trace_.records.push_back(r);
}

void SimEngine::queue_ws_send_requests(WorkerState& w) {
  // Rejected design (§IV-D): address a specific SPSC queue of the victim.
  // One producer/consumer per cell avoids overwrites, but the victim can
  // only scan a few cells per scheduling point, so most requests go stale
  // before they are seen.
  for (int i = 0; i < cfg_.dlb_cfg.n_victim; ++i) {
    const int v = pick_victim(topo_, w.id, cfg_.dlb_cfg.p_local, w.rng);
    if (v < 0) return;
    WorkerState& victim = *workers_[static_cast<std::size_t>(v)];
    const auto qi = static_cast<std::size_t>(
        w.rng.below(static_cast<std::uint64_t>(n_)));
    advance(w, cell_cost(w.id, v));
    if (steal::round_of(victim.q_request[qi]) < victim.q_round[qi]) {
      advance(w, cell_cost(w.id, v));
      victim.q_request[qi] = steal::pack(w.id, victim.q_round[qi]);
      w.counters.nreq_sent++;
    }
  }
}

void SimEngine::queue_ws_victim_scan(WorkerState& w) {
  // Scan a subset of the per-queue request cells per scheduling point.
  constexpr int kScan = 8;
  for (int i = 0; i < kScan; ++i) {
    const auto qi = static_cast<std::size_t>(w.q_scan_cursor);
    w.q_scan_cursor = (w.q_scan_cursor + 1) % n_;
    advance(w, cfg_.machine.cell_local);
    const std::uint64_t req = w.q_request[qi];
    if (req == 0) continue;
    w.q_request[qi] = 0;  // consume the cell
    w.counters.nreq_handled++;
    if (steal::round_of(req) != w.q_round[qi]) {
      // Stale round: thief raced a previous scan. Invalid request.
      w.q_round[qi]++;  // reopen the cell
      continue;
    }
    const int thief = steal::thief_of(req);
    // Steal only from the single addressed queue.
    auto& src = q(w.id, static_cast<int>(qi));
    std::uint32_t moved = 0;
    while (moved < static_cast<std::uint32_t>(cfg_.dlb_cfg.n_steal) &&
           !src.empty()) {
      SimTask* t = src.front();
      src.pop_front();
      advance(w, cfg_.machine.spsc_op + cell_cost(w.id, thief));
      if (!xq_push(w, thief, t)) {
        w.counters.nreq_target_full++;
        if (!xq_push(w, w.id, t)) {
          w.counters.ntasks_imm_exec++;
          execute(w, t);
        }
        break;
      }
      ++moved;
    }
    if (moved > 0) {
      w.counters.nreq_has_steal++;
      if (topo_.local(w.id, thief))
        w.counters.nsteal_local += moved;
      else
        w.counters.nsteal_remote += moved;
    } else {
      w.counters.nreq_src_empty++;
    }
    w.q_round[qi]++;
  }
}

void SimEngine::end_redirect_session(WorkerState& w) {
  if (w.redirect_thief < 0) return;
  if (w.redirect_pushed > 0)
    w.counters.nreq_has_steal++;
  else
    w.counters.nreq_src_empty++;
  w.redirect_thief = -1;
  w.redirect_pushed = 0;
  w.round++;
}

// ---------------------------------------------------------------------------
// SimContext.

void SimContext::taskwait() {
  SimEngine::WorkerState& w = *w_;
  SimEngine::SimTask* cur = w.current;
  if (cur == nullptr) return;
  while (cur->pending_children > 1) {
    if (SimEngine::SimTask* t = eng_->find_task(w)) {
      w.idle_backoff = 0;
      eng_->execute(w, t);
      continue;
    }
    eng_->idle_step(w);
  }
}

void SimContext::compute_fixed(std::uint64_t cycles) {
  w_->busy_cycles += cycles;
  if (w_->current != nullptr) w_->current->trace_self += cycles;
  eng_->advance(*w_, cycles);
}

void SimContext::compute(std::uint64_t cycles) {
  SimEngine::WorkerState& w = *w_;
  double factor = 1.0;
  const MachineConfig& m = eng_->cfg_.machine;
  if (w.current != nullptr && w.current->creator != w.id) {
    factor += (eng_->topo_.local(w.id, w.current->creator)
                   ? m.local_penalty
                   : m.remote_penalty) *
              eng_->cfg_.mem_intensity;
  }
  if (w.current != nullptr && w.current->remote_buffer)
    factor += m.remote_penalty * eng_->cfg_.mem_intensity;
  const auto inflated =
      static_cast<std::uint64_t>(static_cast<double>(cycles) * factor);
  w.busy_cycles += inflated;
  if (w.current != nullptr) w.current->trace_self += inflated;
  eng_->advance(w, inflated);
}

}  // namespace xtask::sim
