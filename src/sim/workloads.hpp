// Simulator workloads: task-graph generators that recurse and spawn with
// the same structure as the BOTS kernels (src/bots), but whose "work" is
// virtual cycles drawn from the per-application task-size distributions the
// paper measured with its profiling tools (§VI-A):
//
//   app    task sizes (cycles)        mode        mem-bound fraction
//   Fib    10–80                      ~40         ~0   (register work)
//   NQueens~1e2                       ~1e2        low
//   FFT    1e2–1e6                    1e3–1e4     high (butterflies stream)
//   FP     1e2–1e6                    1e2–1e3     moderate
//   Health 1e3–1e4                    ~3e3        moderate
//   UTS    ~1e2–1e3                   ~3e2        low
//   STRAS  1e3–1e7                    ~1e4        high (array tiles)
//   Sort   ~1e5                       ~1e5        high (streams)
//   Align  1e5–1e7                    ~1e6        ~0   (cache-resident)
//
// Scales are reduced the same way the paper reduces its own DLB-sweep
// inputs (§VI preamble); EXPERIMENTS.md records the mapping.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/engine.hpp"

namespace xtask::sim {

struct SimWorkload {
  std::string name;
  double mem_intensity = 0.0;
  std::function<void(SimContext&)> root;
};

/// Scale presets: `kSweep` keeps DLB parameter sweeps tractable, `kFull`
/// is used for the headline Fig. 4/5 style runs.
enum class Scale { kSweep, kFull };

SimWorkload wl_fib(int n);
SimWorkload wl_nqueens(int n);
SimWorkload wl_fft(std::uint64_t points);
SimWorkload wl_floorplan(int cells);
SimWorkload wl_health(int levels, int timesteps);
SimWorkload wl_uts(int root_children, double q, std::uint64_t seed);
SimWorkload wl_strassen(std::uint64_t n, std::uint64_t cutoff);
SimWorkload wl_sort(std::uint64_t n, std::uint64_t cutoff);
SimWorkload wl_align(int sequences);

/// Proof-of-Space plot generation (§VII): total_puzzles hashes split into
/// tasks of `batch` puzzles, spawned by a single producer loop; each puzzle
/// is one BLAKE3 hash (~450 cycles for a 32-byte message on Skylake).
SimWorkload wl_posp(std::uint64_t total_puzzles, std::uint64_t batch);

/// Synthetic irregular workload for the Fig. 9/10 surfaces: a two-level
/// spawn tree of `ntasks` leaves whose sizes are heavy-tailed around
/// `task_cycles` (×1/4 .. ×4 spread), with `mem` memory intensity.
SimWorkload wl_irregular(std::uint64_t ntasks, std::uint64_t task_cycles,
                         double mem, std::uint64_t seed = 9);

/// The nine-application suite at the given scale, in the paper's
/// task-size order (Fig. 4): Fib, NQueens, FFT, FP, Health, UTS, STRAS,
/// Sort, Align.
std::vector<SimWorkload> bots_suite(Scale scale);

/// Convenience: simulate `wl` under `cfg` (cfg.mem_intensity is set from
/// the workload).
SimResult simulate(SimConfig cfg, const SimWorkload& wl);

}  // namespace xtask::sim
