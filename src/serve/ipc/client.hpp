// xtask::ipc::Client — the client side of the shared-memory transport.
// Lives in an UNTRUSTED external process: everything it does must be
// survivable by the server if this process is SIGKILLed at any point.
//
// Lifecycle: connect() claims a SessionCell (CAS kFree -> kConnecting),
// arms the lease, attaches the session's rings and flips the cell
// kActive; a background heartbeat thread refreshes the lease every
// lease/4. submit() pushes into the session's submit ring with jittered
// exponential backoff (honoring the server's published retry_after_us
// hint) until a deadline; poll() drains completions. disconnect() flips
// the cell to kClosing and lets the server drain + free it.
//
// Fail-fast edges the client observes on every operation:
//   - segment poisoned (server stopped)           -> kPoisoned
//   - cell generation moved (server evicted us)   -> kEvicted
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <thread>

#include "core/common.hpp"
#include "registry/registry.hpp"
#include "serve/ipc/layout.hpp"

namespace xtask::ipc {

enum class ClientStatus : std::uint8_t {
  kOk = 0,
  kTimeout,    // deadline passed while backing off (ring full / no cell)
  kPoisoned,   // server poisoned the segment: stop, do not retry
  kEvicted,    // server reclaimed our session (lease expired under us)
  kNotConnected,
};

const char* to_string(ClientStatus s) noexcept;

class Client {
 public:
  struct Options {
    std::uint64_t connect_timeout_ns = 1'000'000'000;  // magic + free cell
    /// 0 = lease/4. The heartbeat thread also watches for poison/evict.
    std::uint64_t heartbeat_period_ns = 0;
    bool start_heartbeat = true;  // tests turn this off to die of expiry
    std::uint64_t backoff_seed = 0x5eed5eed5eed5eedull;
  };

  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Open the segment named by `spec`, wait for the server's magic, claim
  /// a session cell as `tenant`. kTimeout when no free cell (or no
  /// server) within connect_timeout_ns.
  ClientStatus connect(const TransportSpec& spec, std::uint32_t tenant,
                       Options opt);
  ClientStatus connect(const TransportSpec& spec, std::uint32_t tenant) {
    return connect(spec, tenant, Options());
  }

  /// Push one request; on a full ring, back off (jittered exponential,
  /// floored at the server's retry_after_us hint) and retry until
  /// `deadline_ns` (absolute, now_ns() timebase; 0 = one attempt).
  ClientStatus submit(std::uint32_t op, std::uint64_t arg, std::uint64_t id,
                      std::uint64_t deadline_ns = 0);

  /// Drain up to `max` completions into `out`; returns how many.
  std::size_t poll(CmplPayload* out, std::size_t max);

  /// Refresh the lease immediately (also done by every submit).
  void heartbeat_now();

  /// Graceful goodbye: flip the cell to kClosing (the server drains what
  /// we published, then frees the cell), stop the heartbeat, unmap.
  void disconnect();

  bool connected() const noexcept { return mem_ != nullptr && session_ >= 0; }
  bool poisoned() const noexcept {
    return flag_.load(std::memory_order_acquire) == Flag::kPoisoned;
  }
  bool evicted() const noexcept {
    return flag_.load(std::memory_order_acquire) == Flag::kEvicted;
  }
  std::uint32_t gen() const noexcept { return gen_; }
  int session() const noexcept { return session_; }
  std::uint64_t submitted() const noexcept { return submitted_; }

  /// Test hook: claim a submit-ring ticket and never publish it — the
  /// exact footprint of dying between claim and publish.
  bool debug_claim_and_abandon();
  /// Test hook: stop refreshing the lease (the server will expire us).
  void debug_stop_heartbeat();

 private:
  enum class Flag : std::uint8_t { kLive, kPoisoned, kEvicted };

  ClientStatus check_session() noexcept;
  void heartbeat_loop();
  void unmap() noexcept;

  void* mem_ = nullptr;
  std::size_t map_bytes_ = 0;
  SegmentHeader* hdr_ = nullptr;
  SessionCell* cell_ = nullptr;
  CrashRingView<ReqPayload> req_;
  CrashRingView<CmplPayload> cmpl_;
  int session_ = -1;
  std::uint32_t gen_ = 0;
  std::uint32_t tenant_ = 0;
  std::uint64_t lease_ns_ = 0;
  std::uint64_t hb_period_ns_ = 0;
  std::uint64_t submitted_ = 0;
  XorShift rng_{1};
  std::atomic<Flag> flag_{Flag::kLive};
  std::atomic<bool> hb_stop_{false};
  std::thread hb_thread_;
};

}  // namespace xtask::ipc
