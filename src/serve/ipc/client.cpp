#include "serve/ipc/client.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <string>

namespace xtask::ipc {

const char* to_string(ClientStatus s) noexcept {
  switch (s) {
    case ClientStatus::kOk:
      return "ok";
    case ClientStatus::kTimeout:
      return "timeout";
    case ClientStatus::kPoisoned:
      return "poisoned";
    case ClientStatus::kEvicted:
      return "evicted";
    case ClientStatus::kNotConnected:
      return "not-connected";
  }
  return "?";
}

Client::~Client() { disconnect(); }

void Client::unmap() noexcept {
  if (mem_ != nullptr) {
    ::munmap(mem_, map_bytes_);
    mem_ = nullptr;
    hdr_ = nullptr;
    cell_ = nullptr;
  }
  session_ = -1;
}

ClientStatus Client::connect(const TransportSpec& spec, std::uint32_t tenant,
                             Options opt) {
  if (connected()) return ClientStatus::kOk;
  rng_ = XorShift(opt.backoff_seed ^ static_cast<std::uint64_t>(::getpid()));
  const SegmentMap map =
      SegmentMap::compute(spec.sessions, spec.ring, spec.effective_cmpl());
  const std::uint64_t deadline = now_ns() + opt.connect_timeout_ns;
  const std::string name = spec.shm_name();

  // Phase 1: map the segment and wait for the server's magic.
  for (;;) {
    const int fd = ::shm_open(name.c_str(), O_RDWR, 0);
    if (fd >= 0) {
      struct stat st {};
      const bool sized =
          ::fstat(fd, &st) == 0 &&
          static_cast<std::size_t>(st.st_size) >= map.total;
      if (sized) {
        mem_ = ::mmap(nullptr, map.total, PROT_READ | PROT_WRITE,
                      MAP_SHARED, fd, 0);
        ::close(fd);
        if (mem_ == MAP_FAILED) {
          mem_ = nullptr;
          return ClientStatus::kTimeout;
        }
        map_bytes_ = map.total;
        hdr_ = static_cast<SegmentHeader*>(mem_);
        if (hdr_->magic.load(std::memory_order_acquire) == kMagic) break;
        unmap();  // server still initializing; retry
      } else {
        ::close(fd);
      }
    }
    if (now_ns() >= deadline) return ClientStatus::kTimeout;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }

  if (hdr_->state.load(std::memory_order_acquire) == kSegPoisoned) {
    unmap();
    flag_.store(Flag::kPoisoned, std::memory_order_release);
    return ClientStatus::kPoisoned;
  }
  // The server's geometry wins over ours: a spec mismatch would make the
  // ring views read the wrong bytes.
  if (hdr_->version != kVersion || hdr_->nsessions != spec.sessions ||
      hdr_->req_cap != spec.ring ||
      hdr_->cmpl_cap != spec.effective_cmpl()) {
    unmap();
    return ClientStatus::kTimeout;
  }
  lease_ns_ = hdr_->lease_ns;
  hb_period_ns_ = opt.heartbeat_period_ns != 0 ? opt.heartbeat_period_ns
                                               : lease_ns_ / 4;
  tenant_ = tenant;

  // Phase 2: claim a session cell. Ordering is the crash-safe part: the
  // lease and tenant are in place BEFORE the cell turns kActive, so the
  // server never registers a session whose lease still reads 0.
  auto* cells = reinterpret_cast<SessionCell*>(static_cast<char*>(mem_) +
                                               map.cells);
  for (;;) {
    for (std::uint32_t s = 0; s < spec.sessions; ++s) {
      std::uint32_t expect = kSessFree;
      if (!cells[s].state.compare_exchange_strong(
              expect, kSessConnecting, std::memory_order_acq_rel))
        continue;
      cell_ = cells + s;
      session_ = static_cast<int>(s);
      gen_ = cell_->gen.load(std::memory_order_acquire);
      cell_->tenant.store(tenant_, std::memory_order_relaxed);
      cell_->pid.store(static_cast<std::uint32_t>(::getpid()),
                       std::memory_order_relaxed);
      cell_->lease_deadline_ns.store(now_ns() + lease_ns_,
                                     std::memory_order_release);
      void* block = map.session_block(mem_, s);
      req_.attach(static_cast<char*>(block) + map.req_off, spec.ring);
      cmpl_.attach(static_cast<char*>(block) + map.cmpl_off,
                   spec.effective_cmpl());
      cell_->state.store(kSessActive, std::memory_order_release);
      flag_.store(Flag::kLive, std::memory_order_release);
      if (opt.start_heartbeat) {
        hb_stop_.store(false, std::memory_order_release);
        hb_thread_ = std::thread([this] { heartbeat_loop(); });
      }
      return ClientStatus::kOk;
    }
    if (hdr_->state.load(std::memory_order_acquire) == kSegPoisoned) {
      unmap();
      flag_.store(Flag::kPoisoned, std::memory_order_release);
      return ClientStatus::kPoisoned;
    }
    if (now_ns() >= deadline) {
      unmap();
      return ClientStatus::kTimeout;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

ClientStatus Client::check_session() noexcept {
  if (!connected()) {
    return flag_.load(std::memory_order_acquire) == Flag::kPoisoned
               ? ClientStatus::kPoisoned
               : ClientStatus::kNotConnected;
  }
  if (hdr_->state.load(std::memory_order_acquire) == kSegPoisoned) {
    flag_.store(Flag::kPoisoned, std::memory_order_release);
    return ClientStatus::kPoisoned;
  }
  if (cell_->gen.load(std::memory_order_acquire) != gen_) {
    // The server reclaimed our session (expired lease) and recycled the
    // cell; everything we publish from here on is fenced off by the
    // checksum salt, so just stop.
    flag_.store(Flag::kEvicted, std::memory_order_release);
    return ClientStatus::kEvicted;
  }
  return ClientStatus::kOk;
}

void Client::heartbeat_now() {
  if (connected() && check_session() == ClientStatus::kOk)
    cell_->lease_deadline_ns.store(now_ns() + lease_ns_,
                                   std::memory_order_release);
}

void Client::heartbeat_loop() {
  while (!hb_stop_.load(std::memory_order_acquire)) {
    if (check_session() != ClientStatus::kOk) return;
    cell_->lease_deadline_ns.store(now_ns() + lease_ns_,
                                   std::memory_order_release);
    std::uint64_t slept = 0;
    // Sleep in small slices so disconnect() joins quickly.
    while (slept < hb_period_ns_ &&
           !hb_stop_.load(std::memory_order_acquire)) {
      const std::uint64_t slice =
          std::min<std::uint64_t>(hb_period_ns_ - slept, 2'000'000);
      std::this_thread::sleep_for(std::chrono::nanoseconds(slice));
      slept += slice;
    }
  }
}

ClientStatus Client::submit(std::uint32_t op, std::uint64_t arg,
                            std::uint64_t id, std::uint64_t deadline_ns) {
  std::uint64_t backoff_us = 0;
  for (;;) {
    const ClientStatus st = check_session();
    if (st != ClientStatus::kOk) return st;
    ReqPayload p;
    p.id = id;
    p.arg = arg;
    p.t_submit_ns = now_ns();
    p.op = op;
    p.tenant = tenant_;
    if (req_.try_push(p, gen_)) {
      ++submitted_;
      // Submitting proves liveness as well as any heartbeat.
      cell_->lease_deadline_ns.store(p.t_submit_ns + lease_ns_,
                                     std::memory_order_release);
      return ClientStatus::kOk;
    }
    if (deadline_ns == 0 || now_ns() >= deadline_ns)
      return ClientStatus::kTimeout;
    // Jittered exponential backoff, floored at the server's hint so an
    // overloaded server sets the pace and ±25% jittered so synchronized
    // clients spread out instead of re-arriving in lockstep.
    const std::uint64_t hint =
        hdr_->retry_after_us.load(std::memory_order_relaxed);
    backoff_us = backoff_us == 0 ? 50 : backoff_us * 2;
    if (backoff_us > 50'000) backoff_us = 50'000;
    std::uint64_t wait_us = std::max(backoff_us, hint);
    wait_us = wait_us * (768 + (rng_.next() & 511)) / 1024;
    const std::uint64_t remain_us = (deadline_ns - now_ns()) / 1000;
    if (wait_us > remain_us) wait_us = remain_us;
    if (wait_us > 0)
      std::this_thread::sleep_for(std::chrono::microseconds(wait_us));
  }
}

std::size_t Client::poll(CmplPayload* out, std::size_t max) {
  if (!connected() || check_session() != ClientStatus::kOk) return 0;
  std::size_t n = 0;
  while (n < max) {
    CmplPayload c;
    const auto r = cmpl_.try_pop(&c, gen_);
    if (r == CrashRingView<CmplPayload>::Pop::kOk) {
      out[n++] = c;
      continue;
    }
    if (r == CrashRingView<CmplPayload>::Pop::kTorn) continue;
    break;  // kEmpty / kNotReady (server mid-publish): come back later
  }
  return n;
}

bool Client::debug_claim_and_abandon() {
  if (!connected()) return false;
  return req_.claim_and_abandon();
}

void Client::debug_stop_heartbeat() {
  hb_stop_.store(true, std::memory_order_release);
  if (hb_thread_.joinable()) hb_thread_.join();
}

void Client::disconnect() {
  hb_stop_.store(true, std::memory_order_release);
  if (hb_thread_.joinable()) hb_thread_.join();
  if (connected() && flag_.load(std::memory_order_acquire) == Flag::kLive &&
      cell_->gen.load(std::memory_order_acquire) == gen_) {
    // Leave the lease fresh so the server drains our tail as a graceful
    // close instead of an expiry.
    cell_->lease_deadline_ns.store(now_ns() + lease_ns_,
                                   std::memory_order_release);
    cell_->state.store(kSessClosing, std::memory_order_release);
  }
  unmap();
}

}  // namespace xtask::ipc
