// IpcServer: the server side of the shared-memory cross-process transport
// (ROADMAP "xtask-as-a-service, phase 2"). Owns the shm segment and a
// TaskService; plugs into the service's drain loop via the ServeConfig
// ingest hook, so session rings are pumped by the same single thread that
// drains the in-process tenant rings — one consumer, single-writer
// profiler counters, no new threads.
//
// Crash fault model (see DESIGN.md "Cross-process transport & crash fault
// model"): clients may die at any instruction. The server
//   - skips torn submit slots (claimed-not-published or bad checksum)
//     instead of executing garbage,
//   - expires dead sessions via the lease/SessionTracker machine and
//     reclaims their rings through the same classify path,
//   - accounts every published-but-never-drained request of a dead
//     session as `orphaned`, keeping the service invariant
//     submitted == executed + shed + rejected + orphaned exact,
//   - poisons the segment header at stop() so clients fail fast.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "registry/registry.hpp"
#include "serve/ipc/layout.hpp"
#include "serve/ipc/session.hpp"
#include "serve/service.hpp"

namespace xtask {
struct Counters;
}

namespace xtask::ipc {

/// Transport-level totals (server side, drained from the pump thread).
struct TransportStats {
  std::uint64_t sessions_opened = 0;
  std::uint64_t sessions_expired = 0;   // lease/vanish-reclaimed
  std::uint64_t sessions_closed = 0;    // graceful disconnects
  std::uint64_t slots_torn = 0;         // skipped submit slots
  std::uint64_t orphaned = 0;           // published requests of dead clients
  std::uint64_t requests_ingested = 0;  // handed to TaskService::submit
  std::uint64_t completions_dropped = 0;  // cmpl ring full / session gone
};

class IpcServer {
 public:
  /// What the service executes for an ipc request: op/arg from the client,
  /// t_submit_ns as stamped at submit. The return value travels back in
  /// the completion. Null handler echoes arg.
  using Handler = std::uint64_t (*)(std::uint32_t op, std::uint64_t arg,
                                    std::uint64_t t_submit_ns);

  /// Creates the segment (shm_open O_CREAT|O_EXCL after unlinking any
  /// stale object of the same name) and starts the TaskService with the
  /// transport hooks installed. `scfg.ingest`/`on_drop` must be unset —
  /// the transport owns them.
  IpcServer(serve::ServeConfig scfg, TransportSpec tspec,
            Handler handler = nullptr);
  ~IpcServer();

  IpcServer(const IpcServer&) = delete;
  IpcServer& operator=(const IpcServer&) = delete;

  /// Poison the segment (clients fail fast), reclaim every session,
  /// settle accounting, stop the service, unlink the shm object.
  /// Idempotent.
  void stop();

  serve::TaskService& service() noexcept { return *svc_; }
  const serve::TaskService& service() const noexcept { return *svc_; }
  const TransportSpec& spec() const noexcept { return tspec_; }

  TransportStats stats() const noexcept;

  /// Live (registered, not yet reclaimed) sessions, pump's view.
  std::uint32_t live_sessions() const noexcept {
    return live_sessions_.load(std::memory_order_acquire);
  }

 private:
  struct SessionLocal;

  static std::size_t pump_tramp(TaskContext& ctx, void* arg);
  static void on_drop_tramp(const serve::Request& req,
                            serve::SubmitStatus why, void* arg);
  static void exec_tramp(const serve::Request& req);

  std::size_t pump(TaskContext& ctx);
  std::size_t pump_session(TaskContext& ctx, std::uint32_t s,
                           std::uint64_t now, bool stopping);
  void register_session(std::uint32_t s);
  void reclaim_session(TaskContext& ctx, std::uint32_t s, bool expired);
  void reclaim_core(std::uint32_t s, Counters* c, bool expired);
  void ingest_one(TaskContext& ctx, std::uint32_t s, const ReqPayload& p);
  void complete(std::uint32_t session, std::uint32_t gen,
                const ReqPayload& p, std::uint32_t status,
                std::uint64_t result) noexcept;
  void create_segment();
  void destroy_segment() noexcept;

  TransportSpec tspec_;
  Handler handler_ = nullptr;
  SegmentMap map_{};
  int fd_ = -1;
  void* mem_ = nullptr;
  SegmentHeader* hdr_ = nullptr;
  SessionCell* cells_ = nullptr;
  std::unique_ptr<SessionLocal[]> locals_;
  std::uint64_t stuck_skip_ns_ = 0;  // force-skip a claimed head after this

  std::atomic<bool> stopping_{false};
  std::atomic<bool> svc_ready_{false};
  std::mutex stop_mu_;  // serializes stop() callers
  bool stopped_ = false;
  std::atomic<std::uint32_t> live_sessions_{0};

  // Pump-thread-written, any-thread-read transport totals.
  std::atomic<std::uint64_t> st_sessions_opened_{0};
  std::atomic<std::uint64_t> st_sessions_expired_{0};
  std::atomic<std::uint64_t> st_sessions_closed_{0};
  std::atomic<std::uint64_t> st_slots_torn_{0};
  std::atomic<std::uint64_t> st_orphaned_{0};
  std::atomic<std::uint64_t> st_requests_ingested_{0};
  std::atomic<std::uint64_t> st_completions_dropped_{0};

  std::unique_ptr<serve::TaskService> svc_;  // last member: stops first
};

}  // namespace xtask::ipc
