// Server-side lease tracking for ipc client sessions.
//
// SessionTracker mirrors the shape of core/heartbeat.hpp's HealthTracker:
// a plain, single-threaded state machine (only the service drain thread
// calls it) that turns raw lease observations into edge-triggered
// verdicts. The caller owns all side effects (reclaiming rings, counter
// bumps); the tracker only decides *when*.
//
// The lease cell holds an absolute CLOCK_MONOTONIC deadline the client
// refreshes from its heartbeat thread. States:
//
//   healthy --(deadline passed)--> suspect --(grace elapsed)--> expired
//      ^                              |
//      +---------(refresh seen)-------+
//
// `expired` is terminal until reset() — the server reclaims the session
// and recycles the cell under a new generation, so a late heartbeat from
// the dead client's ghost can never resurrect the old session.
#pragma once

#include <cstdint>

namespace xtask::ipc {

class SessionTracker {
 public:
  enum class Verdict : std::uint8_t {
    kNone,            // no state change
    kBecameSuspect,   // deadline passed; grace timer started
    kSuspectCleared,  // refresh arrived while suspect
    kExpired,         // grace elapsed (or vanish injected): reclaim now
  };

  explicit SessionTracker(std::uint64_t grace_ns = 0) noexcept
      : grace_ns_(grace_ns) {}

  /// Re-arm for a freshly registered session.
  void reset() noexcept {
    state_ = State::kHealthy;
    suspect_since_ns_ = 0;
  }

  /// One observation of the shared lease cell. `vanish` is the
  /// FaultPoint::kClientVanish injection: treat the client as dead right
  /// now regardless of its lease.
  Verdict observe(std::uint64_t now_ns, std::uint64_t lease_deadline_ns,
                  bool vanish = false) noexcept {
    if (state_ == State::kExpired) return Verdict::kNone;
    if (vanish) {
      state_ = State::kExpired;
      return Verdict::kExpired;
    }
    if (now_ns <= lease_deadline_ns) {
      if (state_ == State::kSuspect) {
        state_ = State::kHealthy;
        suspect_since_ns_ = 0;
        return Verdict::kSuspectCleared;
      }
      return Verdict::kNone;
    }
    // Lease overdue.
    if (state_ == State::kHealthy) {
      state_ = State::kSuspect;
      suspect_since_ns_ = now_ns;
      if (grace_ns_ == 0) {
        state_ = State::kExpired;
        return Verdict::kExpired;
      }
      return Verdict::kBecameSuspect;
    }
    if (now_ns - suspect_since_ns_ >= grace_ns_) {
      state_ = State::kExpired;
      return Verdict::kExpired;
    }
    return Verdict::kNone;
  }

  bool expired() const noexcept { return state_ == State::kExpired; }
  bool suspect() const noexcept { return state_ == State::kSuspect; }

 private:
  enum class State : std::uint8_t { kHealthy, kSuspect, kExpired };

  std::uint64_t grace_ns_;
  std::uint64_t suspect_since_ns_ = 0;
  State state_ = State::kHealthy;
};

}  // namespace xtask::ipc
