// Shared-memory segment layout for the cross-process task-service
// transport (DESIGN.md "Cross-process transport & crash fault model").
//
// The segment is a single shm_open + mmap region shared between one
// server process and up to `nsessions` untrusted client processes. The
// failure model is crash-fault: a client may be SIGKILLed between ANY two
// instructions, so every shared word is a lock-free std::atomic (the
// layout never holds a lock a dead process could leave behind), and the
// submission protocol is designed so a death at any point leaves at worst
// one *detectably* torn slot, never executable garbage:
//
//   1. claim  — CAS on the ring's enqueue position takes a ticket
//   2. write  — payload words + checksum land in the claimed slot
//   3. publish— a release store of seq = ticket + 1 makes the slot visible
//
// Death before (1): nothing happened. Death between (1) and (3): the slot
// is claimed-but-never-published — the server sees seq stuck at the ticket
// value while the enqueue position has moved past it, classifies the slot
// as TORN, and skips it. Death after (3): the request is fully published
// and either executes or is accounted as orphaned when the lease expires.
// The checksum (salted with the session generation) additionally rejects
// garbage published by a misbehaving client, or by a zombie producer that
// was descheduled across its own eviction and woke up writing into a
// recycled ring generation.
//
// Payload bytes travel through relaxed atomic words (not plain memcpy) so
// the in-process tests and soaks are exactly as data-race-free as the
// cross-process protocol is crash-safe; the cost is a few extra mov
// instructions per 8 payload bytes.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>

#include "core/common.hpp"

namespace xtask::ipc {

inline constexpr std::uint64_t kMagic = 0x787461736b697063ull;  // "xtaskipc"
inline constexpr std::uint32_t kVersion = 1;

// SegmentHeader::state values.
inline constexpr std::uint32_t kSegLive = 1;
inline constexpr std::uint32_t kSegPoisoned = 2;  // server gone: fail fast

// SessionCell::state values. Clients drive kFree -> kConnecting ->
// kActive -> kClosing; ONLY the server ever returns a cell to kFree (with
// the generation bumped), so a recycled session is always distinguishable
// from the one a stale client still believes it owns.
inline constexpr std::uint32_t kSessFree = 0;
inline constexpr std::uint32_t kSessConnecting = 1;
inline constexpr std::uint32_t kSessActive = 2;
inline constexpr std::uint32_t kSessClosing = 3;

/// Completion status codes (CmplPayload::status).
inline constexpr std::uint32_t kCmplDone = 0;      // executed; result valid
inline constexpr std::uint32_t kCmplRejected = 1;  // result = retry_after_us
inline constexpr std::uint32_t kCmplShed = 2;      // result = retry_after_us
inline constexpr std::uint32_t kCmplShutdown = 3;  // service stopped

inline std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Segment-wide control block. Geometry fields are written once by the
/// server before `magic` is published (release), so any client that
/// observes the magic sees a fully initialized segment.
struct alignas(kCacheLine) SegmentHeader {
  std::atomic<std::uint64_t> magic{0};
  std::uint32_t version = 0;
  std::uint32_t nsessions = 0;
  std::uint32_t req_cap = 0;   // submit-ring slots per session (pow2)
  std::uint32_t cmpl_cap = 0;  // completion-ring slots per session (pow2)
  std::uint64_t lease_ns = 0;  // client lease length
  std::atomic<std::uint32_t> state{kSegLive};
  /// Server-published backoff hint (µs): what a client should wait before
  /// re-trying a full ring / rejected submit. 0 = no pressure.
  std::atomic<std::uint32_t> retry_after_us{0};
};

/// One client session's control cell. The lease is a heartbeat-refreshed
/// absolute deadline on the shared CLOCK_MONOTONIC timebase: the client
/// stores now + lease_ns from a heartbeat thread (and on every submit);
/// the server-side SessionTracker expires the session once the deadline
/// plus a grace period passes without a refresh — exactly the
/// healthy -> suspect -> expired shape of the in-process HealthTracker.
struct alignas(kCacheLine) SessionCell {
  std::atomic<std::uint32_t> state{kSessFree};
  std::atomic<std::uint32_t> gen{0};  // bumped by the server at reclaim
  std::atomic<std::uint64_t> lease_deadline_ns{0};
  std::atomic<std::uint32_t> tenant{0};
  std::atomic<std::uint32_t> pid{0};
};

/// One submitted request as it travels through the submit ring.
struct ReqPayload {
  std::uint64_t id = 0;           // client-assigned correlation id
  std::uint64_t arg = 0;          // handler argument
  std::uint64_t t_submit_ns = 0;  // client clock, CLOCK_MONOTONIC
  std::uint32_t op = 0;           // server handler opcode
  std::uint32_t tenant = 0;       // must match the session's tenant
};

/// One completion as it travels back. For kCmplRejected/kCmplShed the
/// result field carries the server's retry_after_us hint.
struct CmplPayload {
  std::uint64_t id = 0;
  std::uint64_t result = 0;
  std::uint64_t t_submit_ns = 0;
  std::uint32_t status = 0;
  std::uint32_t pad = 0;
};

/// FNV-1a over the payload words, salted with the session generation so a
/// zombie writer publishing into a recycled ring generation can never
/// produce a valid checksum.
inline std::uint32_t payload_checksum(const std::uint64_t* words,
                                      std::size_t n,
                                      std::uint32_t salt) noexcept {
  std::uint64_t h = 1469598103934665603ull ^ salt;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= words[i];
    h *= 1099511628211ull;
  }
  return static_cast<std::uint32_t>(h ^ (h >> 32));
}

/// Ring positions. Producer and consumer words live on separate cache
/// lines; both are plain Vyukov-style monotone counters.
struct alignas(kCacheLine) RingHdr {
  std::atomic<std::uint32_t> enq{0};
  alignas(kCacheLine) std::atomic<std::uint32_t> deq{0};
};

/// A crash-tolerant MPSC ring *view* over raw shared memory. The memory
/// (one RingHdr + cap slots) is owned by the segment; the view is a
/// per-process handle. Producer side: any thread of the owning client.
/// Consumer side: exactly one server thread (the service drain loop).
template <typename P>
class CrashRingView {
  static_assert(std::is_trivially_copyable_v<P>);

 public:
  static constexpr std::size_t kWords = (sizeof(P) + 7) / 8;

  struct alignas(kCacheLine) Slot {
    std::atomic<std::uint32_t> seq{0};
    std::atomic<std::uint32_t> csum{0};
    std::atomic<std::uint64_t> data[kWords];
  };

  static std::size_t bytes(std::uint32_t cap) noexcept {
    return sizeof(RingHdr) + static_cast<std::size_t>(cap) * sizeof(Slot);
  }

  /// Server side, at segment creation: placement-initialize the ring.
  static void init_at(void* mem, std::uint32_t cap) noexcept {
    auto* h = new (mem) RingHdr;
    auto* slots = reinterpret_cast<Slot*>(h + 1);
    for (std::uint32_t i = 0; i < cap; ++i) {
      auto* s = new (slots + i) Slot;
      s->seq.store(i, std::memory_order_relaxed);
    }
  }

  CrashRingView() = default;
  void attach(void* mem, std::uint32_t cap) noexcept {
    hdr_ = static_cast<RingHdr*>(mem);
    slots_ = reinterpret_cast<Slot*>(hdr_ + 1);
    mask_ = cap - 1;
  }
  bool attached() const noexcept { return hdr_ != nullptr; }
  std::uint32_t capacity() const noexcept { return mask_ + 1; }

  /// Producer: claim, write, publish. Returns false when full (the caller
  /// backs off; never waits in here).
  bool try_push(const P& v, std::uint32_t salt) noexcept {
    std::uint32_t pos = hdr_->enq.load(std::memory_order_relaxed);
    for (;;) {
      Slot& c = slots_[pos & mask_];
      const std::uint32_t seq = c.seq.load(std::memory_order_acquire);
      const std::int32_t dif = static_cast<std::int32_t>(seq - pos);
      if (dif == 0) {
        if (hdr_->enq.compare_exchange_weak(pos, pos + 1,
                                            std::memory_order_relaxed)) {
          std::uint64_t w[kWords] = {};
          std::memcpy(w, &v, sizeof(P));
          for (std::size_t i = 0; i < kWords; ++i)
            c.data[i].store(w[i], std::memory_order_relaxed);
          c.csum.store(payload_checksum(w, kWords, salt),
                       std::memory_order_relaxed);
          c.seq.store(pos + 1, std::memory_order_release);  // publish
          return true;
        }
      } else if (dif < 0) {
        return false;  // full
      } else {
        pos = hdr_->enq.load(std::memory_order_relaxed);
      }
    }
  }

  /// Test hook: take a ticket and "die" before publishing — byte-for-byte
  /// what a client SIGKILLed between claim and publish leaves behind.
  /// Returns false when the ring is full.
  bool claim_and_abandon() noexcept {
    std::uint32_t pos = hdr_->enq.load(std::memory_order_relaxed);
    for (;;) {
      Slot& c = slots_[pos & mask_];
      const std::uint32_t seq = c.seq.load(std::memory_order_acquire);
      const std::int32_t dif = static_cast<std::int32_t>(seq - pos);
      if (dif == 0) {
        if (hdr_->enq.compare_exchange_weak(pos, pos + 1,
                                            std::memory_order_relaxed))
          return true;  // claimed; deliberately never published
      } else if (dif < 0) {
        return false;
      } else {
        pos = hdr_->enq.load(std::memory_order_relaxed);
      }
    }
  }

  enum class Pop : std::uint8_t {
    kOk,        // *out valid
    kEmpty,     // nothing claimed
    kNotReady,  // head claimed but not yet published (in-flight or torn)
    kTorn,      // head was published garbage; slot consumed and skipped
  };

  /// Consumer (single thread). kNotReady is returned without consuming:
  /// an alive client publishes within nanoseconds, so the server retries
  /// next pass and only force-skips via skip_head() after a timeout.
  Pop try_pop(P* out, std::uint32_t salt) noexcept {
    const std::uint32_t pos = hdr_->deq.load(std::memory_order_relaxed);
    Slot& c = slots_[pos & mask_];
    const std::uint32_t seq = c.seq.load(std::memory_order_acquire);
    if (seq == pos + 1) {
      std::uint64_t w[kWords];
      for (std::size_t i = 0; i < kWords; ++i)
        w[i] = c.data[i].load(std::memory_order_relaxed);
      const std::uint32_t want = c.csum.load(std::memory_order_relaxed);
      free_slot(c, pos);
      if (payload_checksum(w, kWords, salt) != want) return Pop::kTorn;
      std::memcpy(out, w, sizeof(P));
      return Pop::kOk;
    }
    const std::uint32_t enq = hdr_->enq.load(std::memory_order_acquire);
    if (static_cast<std::int32_t>(enq - pos) <= 0) return Pop::kEmpty;
    return Pop::kNotReady;
  }

  /// Consumer: current head ticket, for stuck-head (torn-claim) tracking.
  std::uint32_t head_pos() const noexcept {
    return hdr_->deq.load(std::memory_order_relaxed);
  }

  /// Consumer: unconditionally consume the head slot without executing it
  /// — the torn-claim recovery path. Safe even if the slot's seq holds
  /// zombie garbage: the slot is re-stamped for the next lap.
  void skip_head() noexcept {
    const std::uint32_t pos = hdr_->deq.load(std::memory_order_relaxed);
    free_slot(slots_[pos & mask_], pos);
  }

  /// Any thread; approximate, clamped.
  std::uint32_t size_approx() const noexcept {
    const std::uint32_t deq = hdr_->deq.load(std::memory_order_acquire);
    const std::uint32_t enq = hdr_->enq.load(std::memory_order_acquire);
    const std::uint32_t d = enq - deq;
    return d > capacity() ? capacity() : d;
  }

  struct ReclaimCounts {
    std::uint32_t published = 0;  // valid requests never executed
    std::uint32_t torn = 0;       // claimed-not-published or bad checksum
  };

  /// Consumer, session-reclaim path: classify every outstanding slot
  /// (published+valid -> on_published, anything else -> torn), then
  /// re-initialize the ring for the next session generation. The caller
  /// guarantees the owning client is dead or evicted (its gen is already
  /// stale), so racing zombie writes are caught by the checksum salt.
  template <typename Fn>
  ReclaimCounts reclaim(Fn&& on_published, std::uint32_t salt) noexcept {
    ReclaimCounts counts;
    std::uint32_t pos = hdr_->deq.load(std::memory_order_relaxed);
    const std::uint32_t enq = hdr_->enq.load(std::memory_order_acquire);
    for (; static_cast<std::int32_t>(enq - pos) > 0; ++pos) {
      Slot& c = slots_[pos & mask_];
      if (c.seq.load(std::memory_order_acquire) != pos + 1) {
        ++counts.torn;  // claimed, never published: mid-publish death
        continue;
      }
      std::uint64_t w[kWords];
      for (std::size_t i = 0; i < kWords; ++i)
        w[i] = c.data[i].load(std::memory_order_relaxed);
      if (payload_checksum(w, kWords, salt) !=
          c.csum.load(std::memory_order_relaxed)) {
        ++counts.torn;
        continue;
      }
      P v;
      std::memcpy(&v, w, sizeof(P));
      ++counts.published;
      on_published(v);
    }
    reinit();
    return counts;
  }

  /// Consumer: reset to the empty gen-0 layout (positions zero, slot i
  /// stamped i). Used at session reclaim; the new generation's checksum
  /// salt fences off any zombie writes that race this.
  void reinit() noexcept {
    const std::uint32_t cap = capacity();
    for (std::uint32_t i = 0; i < cap; ++i)
      slots_[i].seq.store(i, std::memory_order_relaxed);
    hdr_->deq.store(0, std::memory_order_relaxed);
    hdr_->enq.store(0, std::memory_order_release);
  }

 private:
  void free_slot(Slot& c, std::uint32_t pos) noexcept {
    // Stamp the slot for the next producer lap, then advance the consumer
    // position (single consumer, so the deq store needs no RMW).
    c.seq.store(pos + mask_ + 1, std::memory_order_release);
    hdr_->deq.store(pos + 1, std::memory_order_release);
  }

  RingHdr* hdr_ = nullptr;
  Slot* slots_ = nullptr;
  std::uint32_t mask_ = 0;
};

/// Byte offsets of every region in the segment, derived purely from the
/// geometry in the header — server and client compute identical maps.
struct SegmentMap {
  std::size_t total = 0;
  std::size_t cells = 0;        // SessionCell[nsessions]
  std::size_t session_stride = 0;
  std::size_t sessions0 = 0;    // first session block
  std::size_t req_off = 0;      // within a session block
  std::size_t cmpl_off = 0;

  static std::size_t align_up(std::size_t v) noexcept {
    return (v + kCacheLine - 1) & ~(kCacheLine - 1);
  }

  static SegmentMap compute(std::uint32_t nsessions, std::uint32_t req_cap,
                            std::uint32_t cmpl_cap) noexcept {
    SegmentMap m;
    m.cells = align_up(sizeof(SegmentHeader));
    m.sessions0 = align_up(m.cells + nsessions * sizeof(SessionCell));
    m.req_off = 0;
    m.cmpl_off = align_up(CrashRingView<ReqPayload>::bytes(req_cap));
    m.session_stride =
        align_up(m.cmpl_off + CrashRingView<CmplPayload>::bytes(cmpl_cap));
    m.total = m.sessions0 + nsessions * m.session_stride;
    // Page-round so the mapping length is exact.
    m.total = (m.total + 4095) & ~static_cast<std::size_t>(4095);
    return m;
  }

  void* session_block(void* base, std::uint32_t s) const noexcept {
    return static_cast<char*>(base) + sessions0 + s * session_stride;
  }
};

}  // namespace xtask::ipc
