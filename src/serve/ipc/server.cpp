#include "serve/ipc/server.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "core/fault.hpp"
#include "prof/profiler.hpp"

namespace xtask::ipc {

namespace {

/// Heap record for one accepted ipc request while it is in flight inside
/// the service. Request::a carries the pointer; the exec trampoline and
/// the drop hook both own deleting it exactly once (whichever fires).
struct IpcFlight {
  IpcServer* srv;
  std::uint32_t session;
  std::uint32_t gen;
  ReqPayload p;
};

std::uint32_t cmpl_status_for(serve::SubmitStatus s) noexcept {
  switch (s) {
    case serve::SubmitStatus::kAccepted:
      return kCmplDone;  // unreachable on the drop/reject paths
    case serve::SubmitStatus::kShed:
      return kCmplShed;
    case serve::SubmitStatus::kRejected:
      return kCmplRejected;
    case serve::SubmitStatus::kShutdown:
      return kCmplShutdown;
  }
  return kCmplRejected;
}

}  // namespace

/// Server-private per-session state. `dead`/`cmpl_users` form the guard
/// that lets worker threads push completions while the pump thread can
/// still reclaim the session at any moment: workers enter with
/// users++ then re-check dead (both seq_cst); the reclaimer sets dead and
/// spins until users drains to zero before touching the rings.
struct IpcServer::SessionLocal {
  CrashRingView<ReqPayload> req;
  CrashRingView<CmplPayload> cmpl;
  SessionTracker tracker;
  bool registered = false;
  std::uint32_t gen = 0;
  std::uint32_t tenant = 0;
  bool tenant_valid = false;
  std::atomic<std::uint32_t> cmpl_users{0};
  std::atomic<bool> dead{true};
  std::atomic<std::uint32_t> live_gen{0};
  // Stuck-head (torn claim) and stuck-connect timers, pump-private.
  std::uint32_t stuck_pos = 0;
  std::uint64_t stuck_since = 0;
  std::uint64_t connecting_since = 0;
};

IpcServer::IpcServer(serve::ServeConfig scfg, TransportSpec tspec,
                     Handler handler)
    : tspec_(std::move(tspec)), handler_(handler) {
  if (tspec_.kind != "shm")
    throw std::invalid_argument("IpcServer: transport kind must be 'shm'");
  if (scfg.ingest != nullptr || scfg.on_drop != nullptr)
    throw std::invalid_argument(
        "IpcServer: ServeConfig ingest/on_drop hooks belong to the "
        "transport");

  map_ = SegmentMap::compute(tspec_.sessions, tspec_.ring,
                             tspec_.effective_cmpl());
  create_segment();

  locals_ = std::make_unique<SessionLocal[]>(tspec_.sessions);
  const std::uint64_t lease_ns =
      static_cast<std::uint64_t>(tspec_.lease_ms) * 1'000'000ull;
  for (std::uint32_t s = 0; s < tspec_.sessions; ++s) {
    void* block = map_.session_block(mem_, s);
    locals_[s].req.attach(static_cast<char*>(block) + map_.req_off,
                          tspec_.ring);
    locals_[s].cmpl.attach(static_cast<char*>(block) + map_.cmpl_off,
                           tspec_.effective_cmpl());
    locals_[s].tracker = SessionTracker(lease_ns);  // grace = one lease
  }
  // A claimed-but-unpublished head blocks its ring; give the (alive)
  // producer two leases to publish before the slot is ruled torn.
  stuck_skip_ns_ = 2 * lease_ns;

  scfg.ingest = &IpcServer::pump_tramp;
  scfg.ingest_arg = this;
  scfg.on_drop = &IpcServer::on_drop_tramp;
  scfg.on_drop_arg = this;
  svc_ = std::make_unique<serve::TaskService>(std::move(scfg));
  // The drain loop may have called pump_tramp before svc_ was assigned;
  // it no-ops until this publish.
  svc_ready_.store(true, std::memory_order_release);
}

IpcServer::~IpcServer() { stop(); }

void IpcServer::create_segment() {
  const std::string name = tspec_.shm_name();
  ::shm_unlink(name.c_str());  // stale object from a crashed server
  fd_ = ::shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  if (fd_ < 0)
    throw std::runtime_error("IpcServer: shm_open('" + name +
                             "') failed: " + std::strerror(errno));
  if (::ftruncate(fd_, static_cast<off_t>(map_.total)) != 0) {
    const int err = errno;
    ::close(fd_);
    ::shm_unlink(name.c_str());
    throw std::runtime_error("IpcServer: ftruncate failed: " +
                             std::string(std::strerror(err)));
  }
  mem_ = ::mmap(nullptr, map_.total, PROT_READ | PROT_WRITE, MAP_SHARED,
                fd_, 0);
  if (mem_ == MAP_FAILED) {
    const int err = errno;
    mem_ = nullptr;
    ::close(fd_);
    ::shm_unlink(name.c_str());
    throw std::runtime_error("IpcServer: mmap failed: " +
                             std::string(std::strerror(err)));
  }

  hdr_ = new (mem_) SegmentHeader;
  hdr_->version = kVersion;
  hdr_->nsessions = tspec_.sessions;
  hdr_->req_cap = tspec_.ring;
  hdr_->cmpl_cap = tspec_.effective_cmpl();
  hdr_->lease_ns = static_cast<std::uint64_t>(tspec_.lease_ms) * 1'000'000ull;
  cells_ = reinterpret_cast<SessionCell*>(static_cast<char*>(mem_) +
                                          map_.cells);
  for (std::uint32_t s = 0; s < tspec_.sessions; ++s)
    new (cells_ + s) SessionCell;
  for (std::uint32_t s = 0; s < tspec_.sessions; ++s) {
    void* block = map_.session_block(mem_, s);
    CrashRingView<ReqPayload>::init_at(
        static_cast<char*>(block) + map_.req_off, tspec_.ring);
    CrashRingView<CmplPayload>::init_at(
        static_cast<char*>(block) + map_.cmpl_off, tspec_.effective_cmpl());
  }
  // Publish: a client that observes the magic (acquire) sees the whole
  // segment initialized.
  hdr_->magic.store(kMagic, std::memory_order_release);
}

void IpcServer::destroy_segment() noexcept {
  if (mem_ != nullptr) {
    ::munmap(mem_, map_.total);
    mem_ = nullptr;
    hdr_ = nullptr;
    cells_ = nullptr;
  }
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
    ::shm_unlink(tspec_.shm_name().c_str());
  }
}

std::size_t IpcServer::pump_tramp(TaskContext& ctx, void* arg) {
  return static_cast<IpcServer*>(arg)->pump(ctx);
}

void IpcServer::on_drop_tramp(const serve::Request& req,
                              serve::SubmitStatus why, void* arg) {
  // The drop hook fires for every discarded admitted request, including
  // purely in-process ones; only ipc requests carry a flight record.
  if (req.fn != &IpcServer::exec_tramp) return;
  auto* fl = reinterpret_cast<IpcFlight*>(req.a);
  auto* srv = static_cast<IpcServer*>(arg);
  srv->complete(fl->session, fl->gen, fl->p, cmpl_status_for(why),
                srv->svc_ready_.load(std::memory_order_acquire)
                    ? srv->svc_->suggest_retry_us()
                    : 0);
  delete fl;
}

void IpcServer::exec_tramp(const serve::Request& req) {
  auto* fl = reinterpret_cast<IpcFlight*>(req.a);
  IpcServer* srv = fl->srv;
  std::uint64_t result = fl->p.arg;
  if (srv->handler_ != nullptr) {
    try {
      result = srv->handler_(fl->p.op, fl->p.arg, req.t_submit_ns);
    } catch (...) {
      result = 0;  // handler errors are the handler's protocol to signal
    }
  }
  srv->complete(fl->session, fl->gen, fl->p, kCmplDone, result);
  delete fl;
}

void IpcServer::complete(std::uint32_t session, std::uint32_t gen,
                         const ReqPayload& p, std::uint32_t status,
                         std::uint64_t result) noexcept {
  SessionLocal& sl = locals_[session];
  sl.cmpl_users.fetch_add(1);  // seq_cst: pairs with reclaim's dead+spin
  if (sl.dead.load() || sl.live_gen.load() != gen ||
      !sl.cmpl.try_push(CmplPayload{p.id, result, p.t_submit_ns, status, 0},
                        gen)) {
    st_completions_dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  sl.cmpl_users.fetch_sub(1);
}

std::size_t IpcServer::pump(TaskContext& ctx) {
  if (!svc_ready_.load(std::memory_order_acquire)) return 0;
  const bool stopping = stopping_.load(std::memory_order_acquire);
  hdr_->retry_after_us.store(
      static_cast<std::uint32_t>(svc_->suggest_retry_us()),
      std::memory_order_relaxed);
  const std::uint64_t now = now_ns();
  std::size_t moved = 0;
  for (std::uint32_t s = 0; s < tspec_.sessions; ++s)
    moved += pump_session(ctx, s, now, stopping);
  return moved;
}

void IpcServer::register_session(std::uint32_t s) {
  SessionLocal& sl = locals_[s];
  SessionCell& cell = cells_[s];
  sl.gen = cell.gen.load(std::memory_order_acquire);
  sl.tenant = cell.tenant.load(std::memory_order_relaxed);
  sl.tenant_valid = sl.tenant < static_cast<std::uint32_t>(
                                    svc_->num_tenants());
  sl.tracker.reset();
  sl.stuck_since = 0;
  sl.connecting_since = 0;
  sl.live_gen.store(sl.gen);
  sl.dead.store(false);
  sl.registered = true;
  live_sessions_.fetch_add(1, std::memory_order_release);
  st_sessions_opened_.fetch_add(1, std::memory_order_relaxed);
}

std::size_t IpcServer::pump_session(TaskContext& ctx, std::uint32_t s,
                                    std::uint64_t now, bool stopping) {
  SessionCell& cell = cells_[s];
  SessionLocal& sl = locals_[s];
  const std::uint32_t st = cell.state.load(std::memory_order_acquire);

  if (!sl.registered) {
    if (st == kSessActive) {
      register_session(s);
      if (!sl.tenant_valid) {
        // A client naming a tenant the service does not have can never
        // submit successfully; evict immediately (its slots count torn).
        reclaim_session(ctx, s, /*expired=*/false);
        return 0;
      }
    } else if (st == kSessConnecting) {
      // A client that died between claiming the cell and activating it
      // would wedge the slot forever; rule it dead after two leases.
      if (sl.connecting_since == 0) {
        sl.connecting_since = now;
      } else if (now - sl.connecting_since >= stuck_skip_ns_ || stopping) {
        register_session(s);
        sl.tenant_valid = false;  // nothing of it is trustworthy
        reclaim_session(ctx, s, /*expired=*/true);
      }
      return 0;
    } else {
      sl.connecting_since = 0;
      return 0;
    }
  }

  if (stopping) {
    // Shutdown pass: the header is already poisoned; reclaim everyone so
    // orphan accounting settles before the drain loop exits.
    reclaim_session(ctx, s, /*expired=*/false);
    return 0;
  }

  Counters& c = svc_->runtime().profiler().thread(ctx.worker_id()).counters;
  FaultInjector* fi = fault_injector();

  bool vanish = false;
  if (fi != nullptr && fi->inject(FaultPoint::kClientVanish)) {
    fi->perturb(FaultPoint::kClientVanish);
    vanish = true;
  }
  const auto verdict = sl.tracker.observe(
      now, cell.lease_deadline_ns.load(std::memory_order_acquire), vanish);
  if (verdict == SessionTracker::Verdict::kExpired) {
    reclaim_session(ctx, s, /*expired=*/true);
    return 0;
  }

  std::size_t ingested = 0;
  for (std::uint32_t i = 0; i < 64; ++i) {
    ReqPayload p;
    const auto r = sl.req.try_pop(&p, sl.gen);
    if (r == CrashRingView<ReqPayload>::Pop::kOk) {
      sl.stuck_since = 0;
      if (fi != nullptr && fi->inject(FaultPoint::kTransportTorn)) {
        // Chaos: treat this (valid) slot as torn — the skip path must
        // never execute it and never disturb the accounting invariant.
        fi->perturb(FaultPoint::kTransportTorn);
        ++c.nslots_torn;
        st_slots_torn_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      ingest_one(ctx, s, p);
      ++ingested;
      continue;
    }
    if (r == CrashRingView<ReqPayload>::Pop::kTorn) {
      sl.stuck_since = 0;
      ++c.nslots_torn;
      st_slots_torn_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (r == CrashRingView<ReqPayload>::Pop::kNotReady) {
      // Claimed but unpublished head: an alive producer publishes within
      // nanoseconds, so only a death mid-publish holds this for long.
      const std::uint32_t pos = sl.req.head_pos();
      if (sl.stuck_since != 0 && sl.stuck_pos == pos) {
        if (now - sl.stuck_since >= stuck_skip_ns_) {
          sl.req.skip_head();
          sl.stuck_since = 0;
          ++c.nslots_torn;
          st_slots_torn_.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
      } else {
        sl.stuck_pos = pos;
        sl.stuck_since = now;
      }
      break;
    }
    sl.stuck_since = 0;  // kEmpty
    break;
  }

  if (st == kSessClosing && sl.req.size_approx() == 0) {
    // Graceful disconnect: everything the client published was drained.
    reclaim_session(ctx, s, /*expired=*/false);
  }
  return ingested;
}

void IpcServer::ingest_one(TaskContext& ctx, std::uint32_t s,
                           const ReqPayload& p) {
  SessionLocal& sl = locals_[s];
  auto* fl = new IpcFlight{this, s, sl.gen, p};
  serve::Request r;
  r.fn = &IpcServer::exec_tramp;
  r.a = reinterpret_cast<std::uint64_t>(fl);
  // Trust the client's submit stamp only if it is sane on our shared
  // monotonic timebase; otherwise latency accounting starts here.
  const std::uint64_t now = now_ns();
  r.t_submit_ns =
      (p.t_submit_ns != 0 && p.t_submit_ns <= now) ? p.t_submit_ns : now;
  (void)ctx;
  const serve::Submit res =
      svc_->submit(static_cast<int>(sl.tenant), r);
  st_requests_ingested_.fetch_add(1, std::memory_order_relaxed);
  if (res.status != serve::SubmitStatus::kAccepted) {
    complete(s, sl.gen, p, cmpl_status_for(res.status), res.retry_after_us);
    delete fl;
  }
}

void IpcServer::reclaim_session(TaskContext& ctx, std::uint32_t s,
                                bool expired) {
  Counters& c = svc_->runtime().profiler().thread(ctx.worker_id()).counters;
  reclaim_core(s, &c, expired);
}

void IpcServer::reclaim_core(std::uint32_t s, Counters* c, bool expired) {
  SessionLocal& sl = locals_[s];
  SessionCell& cell = cells_[s];
  // Fence off completion producers before touching the rings.
  sl.dead.store(true);  // seq_cst: pairs with complete()'s users++/check
  while (sl.cmpl_users.load() != 0) cpu_pause();

  const auto counts = sl.req.reclaim([](const ReqPayload&) {}, sl.gen);
  std::uint32_t orphans = 0;
  std::uint32_t torn = counts.torn;
  if (sl.tenant_valid) {
    orphans = counts.published;
    svc_->account_orphaned(static_cast<int>(sl.tenant), orphans);
  } else {
    torn += counts.published;  // untrusted session: nothing is a request
  }
  sl.cmpl.reinit();

  st_orphaned_.fetch_add(orphans, std::memory_order_relaxed);
  st_slots_torn_.fetch_add(torn, std::memory_order_relaxed);
  if (expired)
    st_sessions_expired_.fetch_add(1, std::memory_order_relaxed);
  else
    st_sessions_closed_.fetch_add(1, std::memory_order_relaxed);
  if (c != nullptr) {
    c->norphaned += orphans;
    c->nslots_torn += torn;
    if (expired) ++c->nsessions_expired;
  }

  // Recycle the cell under a new generation: a zombie writer holding the
  // old gen can no longer produce a valid checksum, and a stale heartbeat
  // is detected by the gen mismatch client-side.
  cell.gen.store(sl.gen + 1, std::memory_order_relaxed);
  cell.lease_deadline_ns.store(0, std::memory_order_relaxed);
  cell.tenant.store(0, std::memory_order_relaxed);
  cell.pid.store(0, std::memory_order_relaxed);
  cell.state.store(kSessFree, std::memory_order_release);
  sl.registered = false;
  sl.connecting_since = 0;
  live_sessions_.fetch_sub(1, std::memory_order_release);
}

void IpcServer::stop() {
  std::lock_guard<std::mutex> lock(stop_mu_);
  if (stopped_) return;
  stopped_ = true;
  // Order matters: poison first (clients fail fast), then let the pump's
  // stopping pass reclaim sessions and settle accounting, then stop the
  // service (which joins the drain thread), then sweep anything the pump
  // never saw, then tear the segment down.
  hdr_->state.store(kSegPoisoned, std::memory_order_release);
  stopping_.store(true, std::memory_order_release);
  svc_->stop();
  for (std::uint32_t s = 0; s < tspec_.sessions; ++s) {
    if (locals_[s].registered) {
      reclaim_core(s, nullptr, /*expired=*/false);
      continue;
    }
    // Cells claimed after the pump exited: classify their rings directly.
    const std::uint32_t st = cells_[s].state.load(std::memory_order_acquire);
    if (st != kSessFree) {
      register_session(s);
      reclaim_core(s, nullptr, /*expired=*/false);
    }
  }
  destroy_segment();
}

TransportStats IpcServer::stats() const noexcept {
  TransportStats t;
  t.sessions_opened = st_sessions_opened_.load(std::memory_order_relaxed);
  t.sessions_expired = st_sessions_expired_.load(std::memory_order_relaxed);
  t.sessions_closed = st_sessions_closed_.load(std::memory_order_relaxed);
  t.slots_torn = st_slots_torn_.load(std::memory_order_relaxed);
  t.orphaned = st_orphaned_.load(std::memory_order_relaxed);
  t.requests_ingested =
      st_requests_ingested_.load(std::memory_order_relaxed);
  t.completions_dropped =
      st_completions_dropped_.load(std::memory_order_relaxed);
  return t;
}

}  // namespace xtask::ipc
