// TaskService: a long-running in-process task-service front-end over the
// xtask runtime — the "heavy traffic" ingestion path the ROADMAP's
// xtask-as-a-service item asks for. N client threads submit requests
// through per-tenant MPSC rings; token-bucket admission control (rate +
// in-flight quota per tenant) gates entry; a dedicated drain task moves
// admitted requests into the runtime with batched dispatch. Under pressure
// the service degrades through explicit states:
//
//   accept -> throttle -> shed-lowest-priority -> reject-with-retry-after
//
// driven by ring fill, runtime queue pressure, and — via the PR 4
// quarantine machinery — lost worker capacity: a quarantined worker
// shrinks the admission factor automatically, so clients see throttling
// instead of the service building an unbounded backlog it cannot drain.
// Every submitted request is accounted exactly once as executed, shed, or
// rejected; the accounting invariant (submitted == executed + shed +
// rejected after stop()) is what the overload tests and the CI soak pin.
//
// See DESIGN.md "Overload control" for the state machine and the
// admission math.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/runtime.hpp"
#include "core/task_graph.hpp"
#include "registry/registry.hpp"
#include "serve/admission.hpp"
#include "serve/ring.hpp"

namespace xtask::serve {

/// One unit of client work. Trivially copyable: it travels by value
/// through the submission ring and into a task payload. `fn` receives the
/// whole request, so callers can recover their own fields (a, b) and
/// compute end-to-end latency from t_submit_ns.
struct Request {
  void (*fn)(const Request&) = nullptr;
  std::uint64_t a = 0;  // caller payload
  std::uint64_t b = 0;  // caller payload
  std::uint64_t t_submit_ns = 0;  // stamped at admission
  std::uint32_t tenant = 0;       // stamped at admission
  /// 0: plain body request (fn runs once). Otherwise a 1-based handle from
  /// register_graph(): the whole captured DAG replays as this request, and
  /// the request counts as executed when its last node finishes.
  std::uint32_t graph = 0;
  std::uint8_t priority = 0;      // stamped at admission (tenant prio)
};

/// What happened to one submit() call.
enum class SubmitStatus : std::uint8_t {
  kAccepted,  // in the ring; will be executed (or shed under pressure)
  kShed,      // dropped by policy (lowest-priority tenant under kShed+)
  kRejected,  // quota/rate/ring-full/state; retry after retry_after_us
  kShutdown,  // service stopped: do not retry, the request was not taken
};

/// The service's degradation state, most permissive first.
enum class ServiceState : std::uint8_t {
  kAccept = 0,  // normal operation, full admission rate
  kThrottle,    // pressure building: admission factor halves
  kShed,        // shedding the lowest-priority tenant's work
  kReject,      // rejecting everything with retry-after
};

const char* to_string(ServiceState s) noexcept;

/// Result of submit(): the status plus a retry hint (microseconds) for
/// rejects/sheds. A stopped service answers kShutdown (never a zero-hint
/// kRejected), so retry_after_us == 0 on a kRejected now always means
/// "this request can never succeed" (bad tenant index / unknown graph
/// handle), not "the service is gone". Hints carry seeded ±25% jitter so
/// synchronized clients do not re-arrive in lockstep.
struct Submit {
  SubmitStatus status = SubmitStatus::kRejected;
  std::uint64_t retry_after_us = 0;
};

/// Per-tenant accounting snapshot. At any instant
///   submitted >= admitted + shed + rejected + orphaned, and
/// after stop():
///   submitted == executed + shed + rejected + orphaned, in_flight == 0.
struct TenantStats {
  std::string name;
  std::uint64_t submitted = 0;  // every submit() call (+ orphaned intakes)
  std::uint64_t admitted = 0;   // passed admission into the ring
  std::uint64_t executed = 0;   // request fn ran to completion
  std::uint64_t shed = 0;       // dropped by policy (admission or drain)
  std::uint64_t rejected = 0;   // pushed back with retry-after
  /// Published by a client that died before the server drained them: the
  /// ipc transport reclaims the dead session's ring and accounts each
  /// valid-but-never-executed request here (account_orphaned). Always 0
  /// for purely in-process use.
  std::uint64_t orphaned = 0;
  std::uint64_t in_flight = 0;  // admitted, not yet executed/shed
  std::uint32_t ring_depth = 0;
  std::uint32_t ring_capacity = 0;
};

struct ServeConfig {
  /// Runtime spec (registry grammar); must name the xtask backend — the
  /// degradation machinery needs quarantine-aware dispatch.
  std::string runtime_spec = "xtask:dlb=naws,tint=128";
  /// Tenant admission specs (TenantSpec grammar / parse_list).
  std::vector<TenantSpec> tenants;
  /// Per-tenant submission-ring capacity (rounded up to a power of two).
  std::uint32_t ring_capacity = 1024;
  /// Max requests drained per tenant per pass (clamped to [1, 64]).
  std::uint32_t drain_batch = 64;
  /// State thresholds on scaled pressure (pressure / capacity factor):
  /// >= throttle_at -> kThrottle, >= shed_at -> kShed, >= reject_at ->
  /// kReject. Must be increasing and in (0, 1].
  double throttle_at = 0.50;
  double shed_at = 0.75;
  double reject_at = 0.90;
  /// Seed for the ±25% retry-after jitter stream (see retry_after_us).
  std::uint64_t retry_jitter_seed = 0x9e3779b97f4a7c15ull;
  /// Optional transport hook, called once per drain-loop pass on the
  /// drain thread (single caller, so it may use single-writer profiler
  /// counters). Returns how many requests it moved; the loop treats them
  /// like drained work for its idle/backoff decision. The ipc server uses
  /// this to pump session rings into submit().
  std::size_t (*ingest)(TaskContext& ctx, void* arg) = nullptr;
  void* ingest_arg = nullptr;
  /// Optional drop notifier: called for every ADMITTED request the
  /// service discards without running its fn (drain-shed batches and the
  /// stop() straggler sweep). Transports use it to send the client a
  /// shed/shutdown completion instead of leaking the flight record.
  void (*on_drop)(const Request& req, SubmitStatus why, void* arg) = nullptr;
  void* on_drop_arg = nullptr;
};

/// The service. Construction spins up the runtime and the drain region;
/// stop() (or destruction) drains every ring and settles the accounting.
class TaskService {
 public:
  explicit TaskService(ServeConfig cfg);
  ~TaskService();

  TaskService(const TaskService&) = delete;
  TaskService& operator=(const TaskService&) = delete;

  /// Submit one request on behalf of tenant index `tenant` (order of
  /// ServeConfig::tenants). Any thread; never blocks. The req's fn/a/b
  /// (or graph handle) fields are the caller's; tenant/priority/
  /// t_submit_ns are stamped here on admission. A request naming an
  /// unregistered graph handle is rejected with no retry hint.
  Submit submit(int tenant, Request req) noexcept;

  /// Register a captured (sealed) graph as a request shape; returns the
  /// 1-based handle clients put in Request::graph. The service owns the
  /// graph and a pool of replay instances for it — a graph request costs
  /// one instance reset, not a graph rebuild. Any thread, any time before
  /// stop(); handles stay valid for the service's lifetime. Throws when
  /// the graph is unsealed or the slot table (kMaxGraphs) is full.
  std::uint32_t register_graph(TaskGraph g);

  int num_graphs() const noexcept {
    return static_cast<int>(graph_count_.load(std::memory_order_acquire));
  }
  /// Replays served for one registered graph (1-based handle).
  std::uint64_t graph_replays(std::uint32_t handle) const noexcept {
    return graphs_[handle - 1]->replays.load(std::memory_order_relaxed);
  }

  /// Stop accepting, drain everything admitted, settle accounting, and
  /// join the service thread. Idempotent; safe from any thread.
  void stop();

  /// Transport path: account `n` requests that a now-dead client had
  /// fully published but the service never drained. Each counts as
  /// submitted AND orphaned, keeping the closed-accounting invariant
  /// exact without pretending the work was shed or rejected. Tenant
  /// indexes outside [0, num_tenants) are ignored (a crashed client's
  /// ring can hold garbage).
  void account_orphaned(int tenant, std::uint64_t n) noexcept;

  /// A state-driven backoff hint (µs, jittered) suitable for publishing
  /// to clients that cannot name a tenant yet — e.g. the ipc segment
  /// header's retry_after_us cell. 0 while accepting at full rate.
  std::uint64_t suggest_retry_us() const noexcept;

  int num_tenants() const noexcept { return static_cast<int>(tenants_.size()); }
  TenantStats tenant_stats(int tenant) const;
  /// Sum over tenants.
  TenantStats totals() const;

  ServiceState state() const noexcept {
    return static_cast<ServiceState>(
        state_.load(std::memory_order_acquire));
  }

  /// Effective admission scale in [0, 1]: (healthy workers / team size) ×
  /// the state factor (accept 1.0, throttle 0.5, shed 0.25, reject 0).
  /// Tenant buckets refill at rate × this factor, so quarantine-driven
  /// capacity loss tightens admission automatically.
  double admission_factor() const noexcept {
    return static_cast<double>(
               admission_milli_.load(std::memory_order_acquire)) /
           1000.0;
  }

  /// Times each state was entered (index by ServiceState).
  std::uint64_t state_entries(ServiceState s) const noexcept {
    return state_entries_[static_cast<std::size_t>(s)].load(
        std::memory_order_relaxed);
  }

  /// The underlying runtime (profiler, health stats, topology).
  Runtime& runtime() noexcept { return *rt_; }
  const Runtime& runtime() const noexcept { return *rt_; }

  /// Metadata records for TraceExportOptions::extra_meta: service state
  /// plus one record per tenant with its admission counters and ring
  /// depth, so shedding decisions land in the same trace as the timeline.
  std::vector<std::pair<std::string, std::string>> trace_meta() const;

  // --- test hooks ---------------------------------------------------------
  /// Pause/resume the drain loop (admission keeps running): the
  /// backpressure tests fill rings to capacity with workers paused and
  /// assert reject-with-retry-after instead of a hang. Pause is ignored
  /// once stop() is underway, so it can never wedge shutdown.
  void pause_drain() noexcept {
    paused_.store(true, std::memory_order_release);
  }
  void resume_drain() noexcept {
    paused_.store(false, std::memory_order_release);
  }

 private:
  struct Tenant {
    TenantSpec spec;
    SubmitRing<Request> ring;
    TokenBucket bucket;
    atomic<std::uint64_t> submitted{0};
    atomic<std::uint64_t> admitted{0};
    atomic<std::uint64_t> executed{0};
    atomic<std::uint64_t> shed{0};
    atomic<std::uint64_t> rejected{0};
    atomic<std::uint64_t> orphaned{0};
    atomic<std::uint64_t> in_flight{0};

    Tenant(TenantSpec s, std::uint32_t ring_cap)
        : spec(std::move(s)),
          ring(ring_cap),
          bucket(spec.rate, spec.effective_burst()) {}
  };

  /// Task payload wrapping one admitted request (<= Task::kPayloadBytes).
  struct RequestTask {
    TaskService* svc = nullptr;
    Request req{};
    void operator()(TaskContext& ctx);
  };

  /// One registered request graph: the immutable sealed structure plus a
  /// pool of reusable replay instances (each in-flight graph request holds
  /// one; the completion hook returns it). The slot itself is published
  /// once via graph_count_ and never moves, so submit/drain read it
  /// lock-free.
  struct GraphSlot {
    TaskGraph graph;
    std::mutex pool_mu;
    std::vector<std::unique_ptr<TaskGraph::Instance>> pool;
    atomic<std::uint64_t> replays{0};
  };
  /// Heap context threaded through Instance::arm for one graph request.
  struct GraphFlight {
    TaskService* svc;
    Request req;
    GraphSlot* slot;
    TaskGraph::Instance* inst;
  };
  static constexpr std::size_t kMaxGraphs = 16;

  void launch_graph(TaskContext& ctx, const Request& req);
  static void graph_done(void* arg) noexcept;

  void serve_loop(TaskContext& ctx);
  std::size_t drain_once(TaskContext& ctx);
  void update_admission(std::uint64_t now_ns);
  void complete_executed(const Request& req) noexcept;
  void shed_from_ring(Tenant& t, std::size_t n) noexcept;
  void drop_request(const Request& req, SubmitStatus why) noexcept;
  std::uint64_t retry_after_us(const Tenant& t, double factor,
                               std::uint64_t mult) const noexcept;
  std::uint64_t jitter(std::uint64_t us) const noexcept;
  bool rings_empty() const noexcept;
  static std::uint64_t now_ns() noexcept;

  ServeConfig cfg_;
  std::unique_ptr<Runtime> rt_;
  std::vector<std::unique_ptr<Tenant>> tenants_;
  std::array<std::unique_ptr<GraphSlot>, kMaxGraphs> graphs_;
  atomic<std::uint32_t> graph_count_{0};  // published slots (release)
  std::mutex graph_reg_mu_;               // serializes register_graph
  std::uint32_t drain_batch_ = 64;
  int min_priority_ = 0;  // the shed-first priority class

  atomic<std::uint32_t> state_{
      static_cast<std::uint32_t>(ServiceState::kAccept)};
  atomic<std::uint32_t> admission_milli_{1000};
  atomic<std::uint64_t> state_entries_[4] = {};
  atomic<bool> paused_{false};
  atomic<bool> stop_{false};

  // Drain-loop-private refill clock.
  std::uint64_t last_refill_ns_ = 0;

  // Retry-jitter stream: any submitting thread advances it; exact
  // sequencing across threads is irrelevant (any draw de-synchronizes).
  mutable atomic<std::uint64_t> jitter_seq_{0};

  std::mutex stop_mu_;  // serializes stop() callers around the join
  std::thread thread_;  // runs rt_->run(serve_loop)
};

}  // namespace xtask::serve
