#include "serve/service.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "core/fault.hpp"
#include "prof/profiler.hpp"

namespace xtask::serve {

namespace {

constexpr double kStateFactor[4] = {1.0, 0.5, 0.25, 0.0};

std::uint32_t round_up_pow2(std::uint32_t v) noexcept {
  if (v < 2) return 2;
  --v;
  v |= v >> 1;
  v |= v >> 2;
  v |= v >> 4;
  v |= v >> 8;
  v |= v >> 16;
  return v + 1;
}

}  // namespace

const char* to_string(ServiceState s) noexcept {
  switch (s) {
    case ServiceState::kAccept:
      return "accept";
    case ServiceState::kThrottle:
      return "throttle";
    case ServiceState::kShed:
      return "shed";
    case ServiceState::kReject:
      return "reject";
  }
  return "?";
}

std::uint64_t TaskService::now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void TaskService::RequestTask::operator()(TaskContext& ctx) {
  if (req.graph != 0) {
    // Graph-shaped request: the body only launches the replay; the
    // request completes (and accounts as executed) from the instance's
    // done hook when the last node finishes. The serve region's barrier
    // covers every node task, so stop() still waits for all of them.
    svc->launch_graph(ctx, req);
    return;
  }
  ctx.set_tenant(req.tenant + 1);  // profiler tenants are 1-based; 0 = none
  try {
    if (req.fn != nullptr) req.fn(req);
  } catch (...) {
    // A throwing request must not cancel the drain region — it is the
    // service's root task. Swallow and account; the tenant still sees the
    // request as executed (its fn owns its own error reporting).
  }
  ctx.set_tenant(0);
  svc->complete_executed(req);
}

TaskService::TaskService(ServeConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.tenants.empty())
    throw std::invalid_argument("TaskService: no tenants configured");
  if (!(cfg_.throttle_at > 0.0 && cfg_.throttle_at < cfg_.shed_at &&
        cfg_.shed_at < cfg_.reject_at && cfg_.reject_at <= 1.0))
    throw std::invalid_argument(
        "TaskService: thresholds must satisfy 0 < throttle_at < shed_at < "
        "reject_at <= 1");
  for (std::size_t i = 0; i < cfg_.tenants.size(); ++i)
    for (std::size_t j = i + 1; j < cfg_.tenants.size(); ++j)
      if (cfg_.tenants[i].name == cfg_.tenants[j].name)
        throw std::invalid_argument("TaskService: duplicate tenant '" +
                                    cfg_.tenants[i].name + "'");

  const BackendSpec spec = BackendSpec::parse(cfg_.runtime_spec);
  if (spec.backend != "xtask")
    throw std::invalid_argument(
        "TaskService: runtime_spec must name the 'xtask' backend, got '" +
        spec.backend + "'");
  rt_ = RuntimeRegistry::make_xtask(RuntimeRegistry::xtask_config(spec));

  const std::uint32_t ring_cap = round_up_pow2(cfg_.ring_capacity);
  tenants_.reserve(cfg_.tenants.size());
  min_priority_ = cfg_.tenants.front().priority;
  for (const TenantSpec& t : cfg_.tenants) {
    min_priority_ = std::min(min_priority_, t.priority);
    tenants_.push_back(std::make_unique<Tenant>(t, ring_cap));
  }
  drain_batch_ = std::max<std::uint32_t>(1, std::min<std::uint32_t>(
                                                cfg_.drain_batch, 64));

  last_refill_ns_ = now_ns();
  thread_ = std::thread([this] {
    rt_->run([this](TaskContext& ctx) { serve_loop(ctx); });
  });
}

TaskService::~TaskService() { stop(); }

std::uint32_t TaskService::register_graph(TaskGraph g) {
  if (!g.sealed())
    throw std::invalid_argument("register_graph: graph is not sealed");
  std::lock_guard<std::mutex> lock(graph_reg_mu_);
  const std::uint32_t n = graph_count_.load(std::memory_order_relaxed);
  if (n >= kMaxGraphs)
    throw std::length_error("register_graph: graph slot table full");
  auto slot = std::make_unique<GraphSlot>();
  slot->graph = std::move(g);
  graphs_[n] = std::move(slot);
  // Publish: a submit() that reads graph_count_ >= n+1 (acquire) sees the
  // fully-initialized slot.
  graph_count_.store(n + 1, std::memory_order_release);
  return n + 1;
}

void TaskService::launch_graph(TaskContext& ctx, const Request& req) {
  GraphSlot& gs = *graphs_[req.graph - 1];
  std::unique_ptr<TaskGraph::Instance> inst;
  {
    std::lock_guard<std::mutex> lock(gs.pool_mu);
    if (!gs.pool.empty()) {
      inst = std::move(gs.pool.back());
      gs.pool.pop_back();
    }
  }
  if (!inst) inst = std::make_unique<TaskGraph::Instance>(gs.graph);
  inst->reset();
  gs.replays.fetch_add(1, std::memory_order_relaxed);
  auto* flight = new GraphFlight{this, req, &gs, inst.release()};
  flight->inst->arm(&TaskService::graph_done, flight);
  ctx.set_tenant(req.tenant + 1);
  gs.graph.replay_async(ctx, flight->inst);
  ctx.set_tenant(0);
}

void TaskService::graph_done(void* arg) noexcept {
  auto* flight = static_cast<GraphFlight*>(arg);
  // The final node's counter decrement happened-before this hook, so the
  // instance is quiescent: pool it for the next request of this shape.
  {
    std::lock_guard<std::mutex> lock(flight->slot->pool_mu);
    flight->slot->pool.emplace_back(flight->inst);
  }
  flight->svc->complete_executed(flight->req);
  delete flight;
}

std::uint64_t TaskService::jitter(std::uint64_t us) const noexcept {
  // ±25%, from a seeded SplitMix64 stream: N clients rejected in the same
  // instant draw different positions in the stream and re-arrive spread
  // over a half-width window instead of in lockstep (thundering herd).
  std::uint64_t z = cfg_.retry_jitter_seed +
                    jitter_seq_.fetch_add(0x9e3779b97f4a7c15ull,
                                          std::memory_order_relaxed);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  // Factor in [0.75, 1.25): 1024ths in [768, 1280).
  std::uint64_t out = us * (768 + (z & 511)) / 1024;
  if (out < 1) out = 1;
  if (out > 1000000) out = 1000000;
  return out;
}

std::uint64_t TaskService::retry_after_us(const Tenant& t, double factor,
                                          std::uint64_t mult) const noexcept {
  // Time until roughly one token at the current effective rate, scaled by
  // `mult` for harder rejections; clamped to [1us, 1s] so callers always
  // get a usable, bounded hint, then jittered so synchronized clients
  // de-synchronize.
  if (factor < 0.01) factor = 0.01;
  const double eff = std::max(1.0, static_cast<double>(t.spec.rate) * factor);
  double us = 1e6 / eff * static_cast<double>(mult);
  if (us < 1.0) us = 1.0;
  if (us > 1e6) us = 1e6;
  return jitter(static_cast<std::uint64_t>(us));
}

std::uint64_t TaskService::suggest_retry_us() const noexcept {
  switch (state()) {
    case ServiceState::kAccept:
      return 0;
    case ServiceState::kThrottle:
      return jitter(100);
    case ServiceState::kShed:
      return jitter(500);
    case ServiceState::kReject:
      return jitter(2000);
  }
  return 0;
}

Submit TaskService::submit(int tenant, Request req) noexcept {
  if (tenant < 0 || tenant >= num_tenants())
    return {SubmitStatus::kRejected, 0};
  Tenant& t = *tenants_[static_cast<std::size_t>(tenant)];
  t.submitted.fetch_add(1, std::memory_order_relaxed);

  if (stop_.load(std::memory_order_acquire)) {
    t.rejected.fetch_add(1, std::memory_order_relaxed);
    return {SubmitStatus::kShutdown, 0};  // the service is gone for good
  }
  if (req.graph > graph_count_.load(std::memory_order_acquire)) {
    // Unknown graph handle: a client bug, not pressure — no retry hint.
    t.rejected.fetch_add(1, std::memory_order_relaxed);
    return {SubmitStatus::kRejected, 0};
  }

  const double factor = admission_factor();

  // Chaos hook: a wedged admission path must shed, never block.
  if (FaultInjector* fi = fault_injector();
      fi != nullptr && fi->inject(FaultPoint::kAdmissionStall)) {
    fi->perturb(FaultPoint::kAdmissionStall);
    t.shed.fetch_add(1, std::memory_order_relaxed);
    return {SubmitStatus::kShed, retry_after_us(t, factor, 1)};
  }

  const auto st = state();
  if (st == ServiceState::kReject) {
    t.rejected.fetch_add(1, std::memory_order_relaxed);
    return {SubmitStatus::kRejected, retry_after_us(t, factor, 8)};
  }
  if (st == ServiceState::kShed && t.spec.priority == min_priority_) {
    t.shed.fetch_add(1, std::memory_order_relaxed);
    return {SubmitStatus::kShed, retry_after_us(t, factor, 4)};
  }

  if (t.in_flight.load(std::memory_order_acquire) >= t.spec.quota) {
    t.rejected.fetch_add(1, std::memory_order_relaxed);
    return {SubmitStatus::kRejected, retry_after_us(t, factor, 2)};
  }
  if (!t.bucket.try_take()) {
    t.rejected.fetch_add(1, std::memory_order_relaxed);
    return {SubmitStatus::kRejected, retry_after_us(t, factor, 1)};
  }

  req.tenant = static_cast<std::uint32_t>(tenant);
  req.priority = static_cast<std::uint8_t>(t.spec.priority);
  // Transports stamp the client's submit time before the request crosses
  // the process boundary; only stamp here when no one has yet.
  if (req.t_submit_ns == 0) req.t_submit_ns = now_ns();
  t.in_flight.fetch_add(1, std::memory_order_relaxed);
  if (!t.ring.try_push(req)) {
    // Ring full: the drain side is behind. Undo the in-flight claim and
    // push back on the client — this is the hard backpressure edge.
    t.in_flight.fetch_sub(1, std::memory_order_relaxed);
    t.rejected.fetch_add(1, std::memory_order_relaxed);
    return {SubmitStatus::kRejected, retry_after_us(t, factor, 4)};
  }
  t.admitted.fetch_add(1, std::memory_order_relaxed);
  return {SubmitStatus::kAccepted, 0};
}

void TaskService::update_admission(std::uint64_t now) {
  // Pressure: worst ring fill fraction vs. runtime queue occupancy.
  double fill = 0.0;
  for (const auto& t : tenants_) {
    const double f = static_cast<double>(t->ring.size_approx()) /
                     static_cast<double>(t->ring.capacity());
    fill = std::max(fill, f);
  }
  double pressure = std::max(fill, rt_->queue_pressure());
  // Starving workers mean the backlog will drain fast — relax.
  if (rt_->starving_workers() > 0) pressure *= 0.5;

  // Capacity factor: the healthy fraction of the team. Quarantine shrinks
  // it, which inflates scaled pressure AND directly scales admission.
  const int threads = rt_->config().num_threads;
  const double cap_factor =
      std::max(1, rt_->healthy_workers()) / static_cast<double>(threads);
  const double scaled = cap_factor > 0.0 ? pressure / cap_factor : 1.0;

  ServiceState next = ServiceState::kAccept;
  if (scaled >= cfg_.reject_at)
    next = ServiceState::kReject;
  else if (scaled >= cfg_.shed_at)
    next = ServiceState::kShed;
  else if (scaled >= cfg_.throttle_at)
    next = ServiceState::kThrottle;

  const auto prev = static_cast<ServiceState>(
      state_.exchange(static_cast<std::uint32_t>(next),
                      std::memory_order_acq_rel));
  if (prev != next)
    state_entries_[static_cast<std::size_t>(next)].fetch_add(
        1, std::memory_order_relaxed);

  const double factor =
      cap_factor * kStateFactor[static_cast<std::size_t>(next)];
  admission_milli_.store(static_cast<std::uint32_t>(factor * 1000.0 + 0.5),
                         std::memory_order_release);

  const double dt =
      static_cast<double>(now - last_refill_ns_) / 1e9;
  last_refill_ns_ = now;
  for (auto& t : tenants_) t->bucket.refill(dt, factor);
}

void TaskService::complete_executed(const Request& req) noexcept {
  Tenant& t = *tenants_[req.tenant];
  t.executed.fetch_add(1, std::memory_order_relaxed);
  t.in_flight.fetch_sub(1, std::memory_order_release);
}

void TaskService::shed_from_ring(Tenant& t, std::size_t n) noexcept {
  t.shed.fetch_add(n, std::memory_order_relaxed);
  t.in_flight.fetch_sub(n, std::memory_order_release);
}

void TaskService::drop_request(const Request& req, SubmitStatus why) noexcept {
  if (cfg_.on_drop != nullptr) cfg_.on_drop(req, why, cfg_.on_drop_arg);
}

void TaskService::account_orphaned(int tenant, std::uint64_t n) noexcept {
  if (n == 0 || tenant < 0 || tenant >= num_tenants()) return;
  Tenant& t = *tenants_[static_cast<std::size_t>(tenant)];
  t.submitted.fetch_add(n, std::memory_order_relaxed);
  t.orphaned.fetch_add(n, std::memory_order_relaxed);
}

std::size_t TaskService::drain_once(TaskContext& ctx) {
  Counters& c =
      rt_->profiler().thread(ctx.worker_id()).counters;
  const bool shedding =
      state() >= ServiceState::kShed;
  std::size_t moved = 0;
  Request reqs[64];
  RequestTask bodies[64];
  for (std::size_t ti = 0; ti < tenants_.size(); ++ti) {
    Tenant& t = *tenants_[ti];
    const std::size_t n = t.ring.pop_batch(reqs, drain_batch_);
    if (n == 0) continue;
    moved += n;
    if (shedding && t.spec.priority == min_priority_) {
      // Already-admitted work from the shed-first class is dropped here
      // rather than executed — the runtime's queues are the scarce
      // resource in this state. Transports get a per-request drop
      // callback so the client still receives a completion.
      for (std::size_t i = 0; i < n; ++i)
        drop_request(reqs[i], SubmitStatus::kShed);
      shed_from_ring(t, n);
      c.nserve_shed += n;
      continue;
    }
    for (std::size_t i = 0; i < n; ++i) bodies[i] = RequestTask{this, reqs[i]};
    ctx.set_tenant(static_cast<std::uint32_t>(ti) + 1);
    ctx.spawn_batch(bodies, n);
    ctx.set_tenant(0);
    c.nserve_requests += n;
  }
  return moved;
}

void TaskService::serve_loop(TaskContext& ctx) {
  int idle_spins = 0;
  for (;;) {
    // The drain task is long-lived; keep the heartbeat monitor from
    // mistaking it for a stuck worker.
    ctx.keepalive();
    update_admission(now_ns());

    const bool stopping = stop_.load(std::memory_order_acquire);
    if (paused_.load(std::memory_order_acquire) && !stopping) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      continue;
    }

    std::size_t moved = 0;
    if (FaultInjector* fi = fault_injector();
        fi != nullptr && fi->inject(FaultPoint::kAdmissionStall)) {
      // Chaos: skip this drain pass entirely. Pressure builds, the state
      // machine sheds — the service must degrade, not deadlock.
      fi->perturb(FaultPoint::kAdmissionStall);
    } else {
      moved = drain_once(ctx);
    }
    // Transport pump (ipc session rings -> submit()): runs on this thread
    // only, so it can use the single-writer profiler counters. It must
    // run while stopping too — that pass reclaims live sessions and
    // settles orphan accounting before the loop exits.
    if (cfg_.ingest != nullptr) moved += cfg_.ingest(ctx, cfg_.ingest_arg);
    if (moved > 0) {
      idle_spins = 0;
      continue;
    }
    if (stopping && rings_empty()) break;
    if (++idle_spins < 16) {
      cpu_pause();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
  // Wait for every spawned request before the region ends.
  ctx.taskwait();
}

bool TaskService::rings_empty() const noexcept {
  for (const auto& t : tenants_)
    if (t->ring.size_approx() != 0) return false;
  return true;
}

void TaskService::stop() {
  std::lock_guard<std::mutex> lock(stop_mu_);
  if (!thread_.joinable()) return;
  stop_.store(true, std::memory_order_release);
  thread_.join();
  // Defensive sweep: the loop drains rings before exiting, but a request
  // racing past the stop_ check can land after the final empty check.
  // Account any stragglers as shed so the invariant still closes.
  Request r;
  for (auto& t : tenants_)
    while (t->ring.try_pop(&r)) {
      drop_request(r, SubmitStatus::kShutdown);
      shed_from_ring(*t, 1);
    }
}

TenantStats TaskService::tenant_stats(int tenant) const {
  const Tenant& t = *tenants_.at(static_cast<std::size_t>(tenant));
  TenantStats s;
  s.name = t.spec.name;
  s.submitted = t.submitted.load(std::memory_order_relaxed);
  s.admitted = t.admitted.load(std::memory_order_relaxed);
  s.executed = t.executed.load(std::memory_order_relaxed);
  s.shed = t.shed.load(std::memory_order_relaxed);
  s.rejected = t.rejected.load(std::memory_order_relaxed);
  s.orphaned = t.orphaned.load(std::memory_order_relaxed);
  s.in_flight = t.in_flight.load(std::memory_order_relaxed);
  s.ring_depth = t.ring.size_approx();
  s.ring_capacity = t.ring.capacity();
  return s;
}

TenantStats TaskService::totals() const {
  TenantStats sum;
  sum.name = "total";
  for (int i = 0; i < num_tenants(); ++i) {
    const TenantStats s = tenant_stats(i);
    sum.submitted += s.submitted;
    sum.admitted += s.admitted;
    sum.executed += s.executed;
    sum.shed += s.shed;
    sum.rejected += s.rejected;
    sum.orphaned += s.orphaned;
    sum.in_flight += s.in_flight;
    sum.ring_depth += s.ring_depth;
    sum.ring_capacity += s.ring_capacity;
  }
  return sum;
}

std::vector<std::pair<std::string, std::string>> TaskService::trace_meta()
    const {
  std::vector<std::pair<std::string, std::string>> meta;
  {
    std::string v = "{\"state\":\"";
    v += to_string(state());
    v += "\",\"admission_factor\":";
    v += std::to_string(admission_factor());
    v += ",\"healthy_workers\":";
    v += std::to_string(rt_->healthy_workers());
    v += "}";
    meta.emplace_back("serve_state", std::move(v));
  }
  for (int i = 0; i < num_tenants(); ++i) {
    const TenantStats s = tenant_stats(i);
    std::string v = "{\"tenant\":\"" + s.name + "\"";
    v += ",\"submitted\":" + std::to_string(s.submitted);
    v += ",\"admitted\":" + std::to_string(s.admitted);
    v += ",\"executed\":" + std::to_string(s.executed);
    v += ",\"shed\":" + std::to_string(s.shed);
    v += ",\"rejected\":" + std::to_string(s.rejected);
    v += ",\"orphaned\":" + std::to_string(s.orphaned);
    v += ",\"in_flight\":" + std::to_string(s.in_flight);
    v += ",\"ring_depth\":" + std::to_string(s.ring_depth);
    v += ",\"ring_capacity\":" + std::to_string(s.ring_capacity);
    v += "}";
    meta.emplace_back("serve_tenant_" + s.name, std::move(v));
  }
  // One record per registered graph: structure + replays served, so a
  // trace shows which request shapes carried the load.
  const auto ngraphs = graph_count_.load(std::memory_order_acquire);
  for (std::uint32_t i = 0; i < ngraphs; ++i) {
    const GraphSlot& gs = *graphs_[i];
    std::string v = "{\"handle\":" + std::to_string(i + 1);
    v += ",\"nodes\":" + std::to_string(gs.graph.num_nodes());
    v += ",\"edges\":" + std::to_string(gs.graph.num_edges());
    v += ",\"roots\":" + std::to_string(gs.graph.num_roots());
    v += ",\"critical_path\":" + std::to_string(gs.graph.critical_path());
    v += ",\"replays\":" +
         std::to_string(gs.replays.load(std::memory_order_relaxed));
    v += "}";
    meta.emplace_back("serve_graph_" + std::to_string(i + 1), std::move(v));
  }
  return meta;
}

}  // namespace xtask::serve
