// Per-tenant submission ring for the task-service front-end: a bounded
// MPMC ring (Vyukov's sequence-counter design) used in MPSC mode — many
// client threads try_push concurrently, one drain thread pops. Both sides
// are non-blocking: a full ring reports failure to the producer (the
// client-visible backpressure signal admission control turns into a
// reject-with-retry-after) instead of spinning, and an empty ring reports
// failure to the consumer. Per-slot sequence counters keep producers from
// ever waiting on each other beyond one CAS retry loop, matching the
// lock-less submission-structure discipline of the runtime underneath.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "core/common.hpp"

namespace xtask::serve {

/// Bounded MPSC ring of trivially-copyable values. Capacity is a power of
/// two. Thread-safety contract: any thread may call try_push; exactly one
/// thread calls try_pop/pop_batch; capacity/size_approx are safe anywhere.
template <typename T>
class SubmitRing {
 public:
  explicit SubmitRing(std::uint32_t capacity)
      : mask_(capacity - 1), cells_(new Cell[capacity]) {
    XTASK_CHECK(capacity >= 2 && (capacity & (capacity - 1)) == 0);
    for (std::uint32_t i = 0; i < capacity; ++i)
      cells_[i].seq.store(i, std::memory_order_relaxed);
  }

  SubmitRing(const SubmitRing&) = delete;
  SubmitRing& operator=(const SubmitRing&) = delete;

  std::uint32_t capacity() const noexcept { return mask_ + 1; }

  /// Producer side, any thread. Returns false when the ring is full — the
  /// caller must take its backpressure path, never wait.
  bool try_push(const T& v) noexcept {
    std::uint32_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& c = cells_[pos & mask_];
      const std::uint32_t seq = c.seq.load(std::memory_order_acquire);
      const std::int32_t dif = static_cast<std::int32_t>(seq - pos);
      if (dif == 0) {
        // Slot is free for ticket `pos`; claim the ticket, then publish.
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          c.val = v;
          c.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
        // CAS failure reloaded `pos`; retry with the newer ticket.
      } else if (dif < 0) {
        return false;  // the slot still holds an unconsumed value: full
      } else {
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Consumer side, single thread. Returns false when empty.
  bool try_pop(T* out) noexcept {
    const std::uint32_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    Cell& c = cells_[pos & mask_];
    const std::uint32_t seq = c.seq.load(std::memory_order_acquire);
    if (static_cast<std::int32_t>(seq - (pos + 1)) < 0) return false;
    *out = c.val;
    // Free the slot for the producer one lap ahead.
    c.seq.store(pos + mask_ + 1, std::memory_order_release);
    dequeue_pos_.store(pos + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side, single thread. Pops up to `max` values into `out`;
  /// returns how many were dequeued.
  std::size_t pop_batch(T* out, std::size_t max) noexcept {
    std::size_t n = 0;
    while (n < max && try_pop(out + n)) ++n;
    return n;
  }

  /// Approximate occupancy, clamped to [0, capacity]. Safe from any
  /// thread; racing operations make it stale, never sticky.
  std::uint32_t size_approx() const noexcept {
    // Dequeue position first so a racing push inflates rather than
    // underflows the unsigned difference.
    const std::uint32_t deq = dequeue_pos_.load(std::memory_order_acquire);
    const std::uint32_t enq = enqueue_pos_.load(std::memory_order_acquire);
    const std::uint32_t d = enq - deq;
    return d > capacity() ? capacity() : d;
  }

 private:
  struct Cell {
    atomic<std::uint32_t> seq{0};
    T val{};
  };

  const std::uint32_t mask_;
  std::unique_ptr<Cell[]> cells_;
  alignas(kCacheLine) atomic<std::uint32_t> enqueue_pos_{0};
  alignas(kCacheLine) atomic<std::uint32_t> dequeue_pos_{0};
};

}  // namespace xtask::serve
