// Token-bucket admission control for the task-service front-end. Tokens
// are fixed-point (kScale units = one admission) in a single atomic word:
// any client thread takes a token with one CAS loop (lock-less, no waits),
// and the single drain thread refills from wall-clock deltas, scaled by
// the service's current admission factor so degraded capacity (quarantined
// workers, deep queues) tightens every tenant's effective rate without any
// per-tenant coordination.
#pragma once

#include <cstdint>

#include "core/common.hpp"

namespace xtask::serve {

/// One tenant's bucket. Thread-safety contract: any thread calls
/// try_take; exactly one thread (the drain loop) calls refill.
class TokenBucket {
 public:
  /// kScale fixed-point units per whole token.
  static constexpr std::uint64_t kScale = 1ull << 20;

  /// `rate` is admissions per second; `burst` is the bucket depth in whole
  /// tokens (also the initial fill, so a fresh service admits a burst).
  TokenBucket(std::uint64_t rate, std::uint64_t burst) noexcept
      : rate_(rate), burst_scaled_(burst * kScale) {
    tokens_.store(burst_scaled_, std::memory_order_relaxed);
  }

  TokenBucket(const TokenBucket&) = delete;
  TokenBucket& operator=(const TokenBucket&) = delete;

  /// Take one whole token. Returns false (caller rejects) when fewer than
  /// kScale units remain; never waits.
  bool try_take() noexcept {
    std::uint64_t t = tokens_.load(std::memory_order_relaxed);
    while (t >= kScale) {
      if (tokens_.compare_exchange_weak(t, t - kScale,
                                        std::memory_order_relaxed))
        return true;
    }
    return false;
  }

  /// Refiller side (single thread): credit `dt` seconds of rate, scaled by
  /// `factor` in [0, 1] (the service's admission factor). Fractional
  /// credit accumulates across calls so slow tick rates lose nothing.
  void refill(double dt_seconds, double factor) noexcept {
    if (dt_seconds <= 0.0) return;
    if (factor < 0.0) factor = 0.0;
    if (factor > 1.0) factor = 1.0;
    credit_ += dt_seconds * static_cast<double>(rate_) * factor *
               static_cast<double>(kScale);
    if (credit_ < 1.0) return;
    auto add = static_cast<std::uint64_t>(credit_);
    credit_ -= static_cast<double>(add);
    std::uint64_t t = tokens_.load(std::memory_order_relaxed);
    for (;;) {
      const std::uint64_t capped =
          t + add > burst_scaled_ ? burst_scaled_ : t + add;
      if (capped == t) return;  // already full
      if (tokens_.compare_exchange_weak(t, capped,
                                        std::memory_order_relaxed))
        return;
    }
  }

  std::uint64_t rate() const noexcept { return rate_; }

  /// Whole tokens currently available (approximate under concurrency).
  std::uint64_t available() const noexcept {
    return tokens_.load(std::memory_order_relaxed) / kScale;
  }

 private:
  const std::uint64_t rate_;
  const std::uint64_t burst_scaled_;
  alignas(kCacheLine) atomic<std::uint64_t> tokens_{0};
  double credit_ = 0.0;  // refiller-private fractional remainder
};

}  // namespace xtask::serve
