// SerialContext: a drop-in "runtime context" that executes every spawn
// inline. Plugging it into the kernel templates yields the serial
// reference implementation with the exact same arithmetic — used by the
// *_serial entry points and by tests as the ground truth.
#pragma once

#include <utility>

namespace xtask::bots {

struct SerialContext {
  template <typename F>
  void spawn(F&& f) {
    std::forward<F>(f)(*this);
  }
  void taskwait() noexcept {}
  int worker_id() const noexcept { return 0; }
};

/// Mimics the Runtime::run surface so `*_parallel(rt, ...)` helpers can be
/// reused to produce serial results (SerialRuntime sr; fib_parallel(sr, n)).
struct SerialRuntime {
  template <typename F>
  void run(F&& root) {
    SerialContext ctx;
    std::forward<F>(root)(ctx);
  }
};

}  // namespace xtask::bots
