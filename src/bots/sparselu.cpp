#include "bots/sparselu.hpp"

#include <algorithm>

#include "bots/serial_ctx.hpp"
#include "core/common.hpp"

namespace xtask::bots {

SparseMatrix::SparseMatrix(const SparseLuParams& p, bool fill) : p_(p) {
  XTASK_CHECK(p.blocks >= 1 && p.block_size >= 1);
  data_.resize(static_cast<std::size_t>(p.blocks) *
               static_cast<std::size_t>(p.blocks));
  if (!fill) return;
  refill();
}

void SparseMatrix::refill() {
  // Deterministic sparsity pattern (BOTS genmat): diagonal always live,
  // off-diagonal live with ~35% density, values diagonally dominant so
  // the factorization stays well-conditioned without pivoting. Replaying
  // the seeded sequence reproduces the constructor's values exactly;
  // any block outside the pattern (fill-in materialized during a prior
  // factorization) is reset to zero.
  XorShift rng(p_.seed);
  const int n = p_.blocks;
  const int bs = p_.block_size;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      const bool live = i == j || rng.below(100) < 35;
      if (!live) {
        if (double* blk = block(i, j))
          std::fill(blk, blk + static_cast<std::size_t>(bs) * bs, 0.0);
        continue;
      }
      double* blk = materialize(i, j);
      for (int e = 0; e < bs * bs; ++e)
        blk[e] = rng.uniform() * 2.0 - 1.0;
      if (i == j) {
        for (int d = 0; d < bs; ++d)
          blk[d * bs + d] += static_cast<double>(2 * bs);  // dominance
      }
    }
  }
}

double* SparseMatrix::materialize(int i, int j) {
  auto& cell = data_[static_cast<std::size_t>(i * p_.blocks + j)];
  if (cell == nullptr) {
    cell = std::make_unique<double[]>(
        static_cast<std::size_t>(p_.block_size) *
        static_cast<std::size_t>(p_.block_size));
  }
  return cell.get();
}

double SparseMatrix::checksum() const {
  double sum = 0.0;
  const int bs = p_.block_size;
  for (int i = 0; i < p_.blocks; ++i) {
    for (int j = 0; j < p_.blocks; ++j) {
      const double* blk = block(i, j);
      if (blk == nullptr) continue;
      for (int e = 0; e < bs * bs; ++e) sum += std::abs(blk[e]);
    }
  }
  return sum;
}

namespace detail {

void lu0(double* diag, int bs) {
  for (int k = 0; k < bs; ++k) {
    const double pivot = diag[k * bs + k];
    for (int i = k + 1; i < bs; ++i) {
      diag[i * bs + k] /= pivot;
      const double lik = diag[i * bs + k];
      for (int j = k + 1; j < bs; ++j)
        diag[i * bs + j] -= lik * diag[k * bs + j];
    }
  }
}

void fwd(const double* diag, double* col, int bs) {
  // Solve L * X = col (L unit lower triangular from diag).
  for (int k = 0; k < bs; ++k)
    for (int i = k + 1; i < bs; ++i) {
      const double lik = diag[i * bs + k];
      for (int j = 0; j < bs; ++j) col[i * bs + j] -= lik * col[k * bs + j];
    }
}

void bdiv(const double* diag, double* row, int bs) {
  // Solve X * U = row (U upper triangular from diag).
  for (int i = 0; i < bs; ++i) {
    for (int k = 0; k < bs; ++k) {
      row[i * bs + k] /= diag[k * bs + k];
      const double xik = row[i * bs + k];
      for (int j = k + 1; j < bs; ++j)
        row[i * bs + j] -= xik * diag[k * bs + j];
    }
  }
}

void bmod(const double* row, const double* col, double* inner, int bs) {
  for (int i = 0; i < bs; ++i)
    for (int k = 0; k < bs; ++k) {
      const double rik = row[i * bs + k];
      for (int j = 0; j < bs; ++j)
        inner[i * bs + j] -= rik * col[k * bs + j];
    }
}

}  // namespace detail

double sparselu_serial(const SparseLuParams& p) {
  SerialRuntime sr;
  return sparselu_parallel(sr, p);
}

}  // namespace xtask::bots
