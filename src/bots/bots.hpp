// Umbrella header: the nine Barcelona OpenMP Task Suite kernels used by
// the paper's evaluation (§VI), templated over the runtime context so the
// same kernel source runs on xtask, the GOMP-like baseline, and the
// LOMP-like baseline — mirroring how BOTS is compiled once per OpenMP
// implementation.
#pragma once

#include "bots/alignment.hpp"
#include "bots/fib.hpp"
#include "bots/fft.hpp"
#include "bots/floorplan.hpp"
#include "bots/health.hpp"
#include "bots/nqueens.hpp"
#include "bots/serial_ctx.hpp"
#include "bots/sort.hpp"
#include "bots/sparselu.hpp"
#include "bots/strassen.hpp"
#include "bots/uts.hpp"
