// BOTS Align (protein alignment): all-pairs global alignment scores over a
// set of protein sequences. One task per sequence pair, all spawned by a
// single producer (the OpenMP `single` construct in the original — the
// reason NA-RP cannot help this kernel, §VI-B1). Each task runs an
// affine-gap Needleman–Wunsch/Gotoh forward pass in O(len²) time and
// O(len) space; sequences are cache-resident, task sizes ~1e6 cycles.
//
// Sequences are generated deterministically (the original ships
// `prot.100.aa` etc.); scores use a compact hydrophobicity-class matrix.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace xtask::bots {

/// Deterministic synthetic protein set: `count` sequences with lengths in
/// [min_len, max_len] over the 20-letter amino-acid alphabet.
std::vector<std::string> alignment_sequences(int count, int min_len,
                                             int max_len,
                                             std::uint64_t seed = 31);

namespace detail {

/// Substitution score: +3 same residue, +1 same chemical class, -1 else.
int aa_score(char a, char b) noexcept;

/// Affine-gap global alignment score (Gotoh), linear space.
int align_pair(const std::string& a, const std::string& b, int gap_open,
               int gap_extend);

template <typename Ctx>
void align_all_pairs_task(Ctx& ctx, const std::vector<std::string>* seqs,
                          int gap_open, int gap_extend, int* scores) {
  // Single-producer spawn loop (mirrors `#pragma omp single` + task loop).
  const int n = static_cast<int>(seqs->size());
  int pair = 0;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j, ++pair) {
      int* out = scores + pair;
      ctx.spawn([seqs, i, j, gap_open, gap_extend, out](Ctx&) {
        *out = align_pair((*seqs)[static_cast<std::size_t>(i)],
                          (*seqs)[static_cast<std::size_t>(j)], gap_open,
                          gap_extend);
      });
    }
  }
  ctx.taskwait();
}

}  // namespace detail

/// Serial reference: all-pairs scores in pair order (i<j, row-major).
std::vector<int> alignment_serial(const std::vector<std::string>& seqs,
                                  int gap_open = 4, int gap_extend = 1);

/// Task-parallel all-pairs alignment.
template <typename RuntimeT>
std::vector<int> alignment_parallel(RuntimeT& rt,
                                    const std::vector<std::string>& seqs,
                                    int gap_open = 4, int gap_extend = 1) {
  const int n = static_cast<int>(seqs.size());
  std::vector<int> scores(static_cast<std::size_t>(n) * (n - 1) / 2, 0);
  rt.run([&](auto& ctx) {
    detail::align_all_pairs_task(ctx, &seqs, gap_open, gap_extend,
                                 scores.data());
  });
  return scores;
}

}  // namespace xtask::bots
