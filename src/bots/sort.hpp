// BOTS Sort (cilksort / multisort): 4-way divide-and-conquer mergesort
// with task-parallel recursive merges, falling back to serial quicksort
// and serial merge below cutoffs. Task sizes concentrate around 1e5 cycles
// (paper §VI-A) and the working set is memory-bound, which is why the
// paper sees the biggest NUMA-locality effects here and on Strassen.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

namespace xtask::bots {

namespace detail {

using SortT = std::uint32_t;

/// Serial merge [a0,a1) and [b0,b1) into dest.
inline void merge_serial(const SortT* a0, const SortT* a1, const SortT* b0,
                         const SortT* b1, SortT* dest) noexcept {
  std::merge(a0, a1, b0, b1, dest);
}

/// Parallel divide-and-conquer merge: split the larger run at its median,
/// binary-search the split point in the smaller run, merge halves as tasks.
template <typename Ctx>
void merge_task(Ctx& ctx, const SortT* a0, const SortT* a1, const SortT* b0,
                const SortT* b1, SortT* dest, std::size_t merge_cutoff) {
  const std::size_t an = static_cast<std::size_t>(a1 - a0);
  const std::size_t bn = static_cast<std::size_t>(b1 - b0);
  if (an + bn <= merge_cutoff) {
    merge_serial(a0, a1, b0, b1, dest);
    return;
  }
  if (an < bn) {  // keep A the larger run
    merge_task(ctx, b0, b1, a0, a1, dest, merge_cutoff);
    return;
  }
  const SortT* am = a0 + an / 2;
  const SortT* bm = std::lower_bound(b0, b1, *am);
  SortT* dm = dest + (am - a0) + (bm - b0);
  ctx.spawn([a0, am, b0, bm, dest, merge_cutoff](Ctx& c) {
    merge_task(c, a0, am, b0, bm, dest, merge_cutoff);
  });
  ctx.spawn([am, a1, bm, b1, dm, merge_cutoff](Ctx& c) {
    merge_task(c, am, a1, bm, b1, dm, merge_cutoff);
  });
  ctx.taskwait();
}

/// 4-way mergesort of [lo, lo+n) using tmp as scratch of the same size.
template <typename Ctx>
void sort_task(Ctx& ctx, SortT* lo, SortT* tmp, std::size_t n,
               std::size_t sort_cutoff, std::size_t merge_cutoff) {
  if (n <= sort_cutoff) {
    std::sort(lo, lo + n);
    return;
  }
  const std::size_t q1 = n / 4;
  const std::size_t q2 = n / 2;
  const std::size_t q3 = q1 + q2;
  ctx.spawn([=](Ctx& c) { sort_task(c, lo, tmp, q1, sort_cutoff, merge_cutoff); });
  ctx.spawn([=](Ctx& c) {
    sort_task(c, lo + q1, tmp + q1, q2 - q1, sort_cutoff, merge_cutoff);
  });
  ctx.spawn([=](Ctx& c) {
    sort_task(c, lo + q2, tmp + q2, q3 - q2, sort_cutoff, merge_cutoff);
  });
  ctx.spawn([=](Ctx& c) {
    sort_task(c, lo + q3, tmp + q3, n - q3, sort_cutoff, merge_cutoff);
  });
  ctx.taskwait();
  ctx.spawn([=](Ctx& c) {
    merge_task(c, lo, lo + q1, lo + q1, lo + q2, tmp, merge_cutoff);
  });
  ctx.spawn([=](Ctx& c) {
    merge_task(c, lo + q2, lo + q3, lo + q3, lo + n, tmp + q2, merge_cutoff);
  });
  ctx.taskwait();
  merge_task(ctx, tmp, tmp + q2, tmp + q2, tmp + n, lo, merge_cutoff);
}

}  // namespace detail

/// Deterministic pseudo-random input for the sort benchmarks.
std::vector<std::uint32_t> sort_input(std::size_t n, std::uint64_t seed = 7);

/// Task-parallel multisort, in place. Returns false if `data` did not end
/// up sorted (callers assert on it).
template <typename RuntimeT>
bool sort_parallel(RuntimeT& rt, std::vector<std::uint32_t>& data,
                   std::size_t sort_cutoff = 2048,
                   std::size_t merge_cutoff = 2048) {
  std::vector<std::uint32_t> tmp(data.size());
  rt.run([&](auto& ctx) {
    detail::sort_task(ctx, data.data(), tmp.data(), data.size(), sort_cutoff,
                      merge_cutoff);
  });
  return std::is_sorted(data.begin(), data.end());
}

}  // namespace xtask::bots
