// Out-of-line support for the BOTS kernels: deterministic input
// generators, size presets, and the alignment scoring kernel.
#include <algorithm>
#include <cstring>

#include "bots/alignment.hpp"
#include "bots/fft.hpp"
#include "bots/floorplan.hpp"
#include "bots/health.hpp"
#include "bots/serial_ctx.hpp"
#include "bots/sort.hpp"
#include "bots/strassen.hpp"
#include "bots/uts.hpp"
#include "core/common.hpp"

namespace xtask::bots {

std::vector<std::uint32_t> sort_input(std::size_t n, std::uint64_t seed) {
  XorShift rng(seed);
  std::vector<std::uint32_t> v(n);
  for (auto& x : v) x = static_cast<std::uint32_t>(rng.next());
  return v;
}

std::vector<double> strassen_input(std::size_t n, std::uint64_t seed) {
  XorShift rng(seed);
  std::vector<double> m(n * n);
  for (auto& x : m) x = rng.uniform() * 2.0 - 1.0;
  return m;
}

std::vector<Complex> fft_input(std::size_t n, std::uint64_t seed) {
  XorShift rng(seed);
  std::vector<Complex> v(n);
  for (auto& x : v) x = Complex(rng.uniform() - 0.5, rng.uniform() - 0.5);
  return v;
}

UtsParams uts_tiny() {
  UtsParams p;
  p.root_children = 100;
  p.m = 4;
  p.q = 0.18;
  p.seed = 562;
  return p;
}

UtsParams uts_small() {
  UtsParams p;
  p.root_children = 400;
  p.m = 4;
  p.q = 0.200;
  p.seed = 331;
  return p;
}

std::vector<FloorplanCell> floorplan_cells(int n, std::uint64_t seed) {
  XorShift rng(seed);
  std::vector<FloorplanCell> cells(static_cast<std::size_t>(n));
  for (auto& cell : cells) {
    // A base rectangle plus its rotation, and sometimes a squarer variant
    // of the same area class — mirrors the AKM alternative-shape lists.
    const int w = 1 + static_cast<int>(rng.below(5));
    const int h = 1 + static_cast<int>(rng.below(5));
    cell.shapes.push_back({w, h});
    if (w != h) cell.shapes.push_back({h, w});
    if (rng.below(2) == 0) {
      const int s = std::max(1, (w + h) / 2);
      if (s != w && s != h) cell.shapes.push_back({s, s});
    }
  }
  return cells;
}

HealthParams health_small() {
  HealthParams p;
  p.levels = 4;
  p.branching = 4;
  p.timesteps = 20;
  return p;
}

HealthParams health_medium() {
  HealthParams p;
  p.levels = 5;
  p.branching = 4;
  p.timesteps = 40;
  return p;
}

HealthStats health_serial(const HealthParams& p) {
  SerialRuntime sr;
  return health_parallel(sr, p);
}

std::vector<std::string> alignment_sequences(int count, int min_len,
                                             int max_len,
                                             std::uint64_t seed) {
  static constexpr char kAlphabet[] = "ARNDCQEGHILKMFPSTWYV";
  XorShift rng(seed);
  std::vector<std::string> seqs(static_cast<std::size_t>(count));
  for (auto& s : seqs) {
    const int len =
        min_len + static_cast<int>(rng.below(
                      static_cast<std::uint64_t>(max_len - min_len + 1)));
    s.resize(static_cast<std::size_t>(len));
    for (auto& c : s) c = kAlphabet[rng.below(20)];
  }
  return seqs;
}

namespace detail {

int aa_score(char a, char b) noexcept {
  if (a == b) return 3;
  // Chemical classes: hydrophobic / polar / charged / special.
  auto cls = [](char c) noexcept -> int {
    switch (c) {
      case 'A': case 'V': case 'L': case 'I': case 'M': case 'F':
      case 'W': case 'Y':
        return 0;  // hydrophobic
      case 'S': case 'T': case 'N': case 'Q':
        return 1;  // polar
      case 'R': case 'K': case 'H': case 'D': case 'E':
        return 2;  // charged
      default:
        return 3;  // G, C, P — special
    }
  };
  return cls(a) == cls(b) ? 1 : -1;
}

int align_pair(const std::string& a, const std::string& b, int gap_open,
               int gap_extend) {
  // Gotoh affine-gap global alignment, two rolling rows.
  const int n = static_cast<int>(a.size());
  const int m = static_cast<int>(b.size());
  constexpr int kNegInf = -(1 << 28);
  std::vector<int> M(static_cast<std::size_t>(m) + 1);
  std::vector<int> X(static_cast<std::size_t>(m) + 1);  // gap in a (horiz)
  std::vector<int> prevM(static_cast<std::size_t>(m) + 1);
  std::vector<int> prevX(static_cast<std::size_t>(m) + 1);
  std::vector<int> prevY(static_cast<std::size_t>(m) + 1);  // gap in b
  std::vector<int> Y(static_cast<std::size_t>(m) + 1);

  prevM[0] = 0;
  prevX[0] = kNegInf;
  prevY[0] = kNegInf;
  for (int j = 1; j <= m; ++j) {
    prevX[static_cast<std::size_t>(j)] = -gap_open - (j - 1) * gap_extend;
    prevM[static_cast<std::size_t>(j)] = kNegInf;
    prevY[static_cast<std::size_t>(j)] = kNegInf;
  }
  for (int i = 1; i <= n; ++i) {
    M[0] = kNegInf;
    X[0] = kNegInf;
    Y[0] = -gap_open - (i - 1) * gap_extend;
    for (int j = 1; j <= m; ++j) {
      const std::size_t sj = static_cast<std::size_t>(j);
      const int diag = std::max({prevM[sj - 1], prevX[sj - 1], prevY[sj - 1]});
      M[sj] = diag + aa_score(a[static_cast<std::size_t>(i - 1)],
                              b[static_cast<std::size_t>(j - 1)]);
      X[sj] = std::max(M[sj - 1] - gap_open, X[sj - 1] - gap_extend);
      Y[sj] = std::max(prevM[sj] - gap_open, prevY[sj] - gap_extend);
    }
    std::swap(prevM, M);
    std::swap(prevX, X);
    std::swap(prevY, Y);
  }
  return std::max({prevM[static_cast<std::size_t>(m)],
                   prevX[static_cast<std::size_t>(m)],
                   prevY[static_cast<std::size_t>(m)]});
}

}  // namespace detail

std::vector<int> alignment_serial(const std::vector<std::string>& seqs,
                                  int gap_open, int gap_extend) {
  SerialRuntime sr;
  return alignment_parallel(sr, seqs, gap_open, gap_extend);
}

}  // namespace xtask::bots
