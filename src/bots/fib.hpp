// BOTS Fibonacci: the canonical extreme fine-grained tasking stress test.
// Tasks are 10–80 cycles (paper §VI-B1) — the runtime overhead *is* the
// benchmark. Generic over the runtime context (xtask / GOMP-like /
// LOMP-like), mirroring the BOTS source built for each OpenMP runtime.
#pragma once

#include <cstdint>

namespace xtask::bots {

/// Serial reference.
inline long fib_serial(int n) noexcept {
  return n < 2 ? n : fib_serial(n - 1) + fib_serial(n - 2);
}

/// Task-parallel fib. `cutoff` switches to serial recursion below the
/// given depth-remaining (BOTS' manual cutoff; 0 spawns all the way down).
template <typename Ctx>
void fib_task(Ctx& ctx, int n, int cutoff, long* out) {
  if (n < 2) {
    *out = n;
    return;
  }
  if (cutoff > 0 && n <= cutoff) {
    *out = fib_serial(n);
    return;
  }
  long a = 0;
  long b = 0;
  ctx.spawn([n, cutoff, &a](Ctx& c) { fib_task(c, n - 1, cutoff, &a); });
  ctx.spawn([n, cutoff, &b](Ctx& c) { fib_task(c, n - 2, cutoff, &b); });
  ctx.taskwait();
  *out = a + b;
}

/// Convenience entry point: run fib(n) as the root task of `rt`.
template <typename RuntimeT>
long fib_parallel(RuntimeT& rt, int n, int cutoff = 0) {
  long result = -1;
  rt.run([&](auto& ctx) { fib_task(ctx, n, cutoff, &result); });
  return result;
}

}  // namespace xtask::bots
