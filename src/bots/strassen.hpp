// BOTS Strassen: recursive Strassen matrix multiplication. Each recursion
// level spawns the seven sub-multiplications as tasks; below the cutoff a
// blocked naive multiply runs inside the task. Large, memory-heavy tasks
// (1e3–1e7 cycles, mode ~1e4, §VI-A) — the coarse end of the BOTS spectrum.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

namespace xtask::bots {

namespace detail {

/// C += or = A*B over row-major `ld`-strided blocks, naive triple loop
/// with a k-blocked inner kernel.
inline void matmul_naive(const double* a, const double* b, double* c,
                         std::size_t n, std::size_t ld, bool add) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double sum = add ? c[i * ld + j] : 0.0;
      for (std::size_t k = 0; k < n; ++k) sum += a[i * ld + k] * b[k * ld + j];
      c[i * ld + j] = sum;
    }
  }
}

inline void mat_add(const double* a, const double* b, double* out,
                    std::size_t n, std::size_t lda, std::size_t ldb,
                    std::size_t ldo) noexcept {
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      out[i * ldo + j] = a[i * lda + j] + b[i * ldb + j];
}

inline void mat_sub(const double* a, const double* b, double* out,
                    std::size_t n, std::size_t lda, std::size_t ldb,
                    std::size_t ldo) noexcept {
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      out[i * ldo + j] = a[i * lda + j] - b[i * ldb + j];
}

template <typename Ctx>
void strassen_mixed(Ctx& ctx, const double* a, std::size_t lda,
                    const double* b, std::size_t ldb, double* c,
                    std::size_t n, std::size_t cutoff);

/// One Strassen recursion step: C = A*B, all blocks n×n with leading
/// dimension ld (A, B, C) — scratch is allocated per task, as in BOTS.
template <typename Ctx>
void strassen_task(Ctx& ctx, const double* a, const double* b, double* c,
                   std::size_t n, std::size_t ld, std::size_t cutoff) {
  if (n <= cutoff) {
    matmul_naive(a, b, c, n, ld, /*add=*/false);
    return;
  }
  const std::size_t h = n / 2;
  const double* a11 = a;
  const double* a12 = a + h;
  const double* a21 = a + h * ld;
  const double* a22 = a + h * ld + h;
  const double* b11 = b;
  const double* b12 = b + h;
  const double* b21 = b + h * ld;
  const double* b22 = b + h * ld + h;

  // Scratch: 7 products + 10 operand temps, each h×h contiguous.
  struct Scratch {
    std::vector<double> buf;
    std::size_t h;
    double* at(int i) noexcept { return buf.data() + static_cast<std::size_t>(i) * h * h; }
  };
  auto scratch = std::make_shared<Scratch>();
  scratch->h = h;
  scratch->buf.assign(17 * h * h, 0.0);
  double* m[7];
  double* t[10];
  for (int i = 0; i < 7; ++i) m[i] = scratch->at(i);
  for (int i = 0; i < 10; ++i) t[i] = scratch->at(7 + i);

  mat_add(a11, a22, t[0], h, ld, ld, h);  // A11+A22
  mat_add(b11, b22, t[1], h, ld, ld, h);  // B11+B22
  mat_add(a21, a22, t[2], h, ld, ld, h);  // A21+A22
  mat_sub(b12, b22, t[3], h, ld, ld, h);  // B12-B22
  mat_sub(b21, b11, t[4], h, ld, ld, h);  // B21-B11
  mat_add(a11, a12, t[5], h, ld, ld, h);  // A11+A12
  mat_sub(a21, a11, t[6], h, ld, ld, h);  // A21-A11
  mat_add(b11, b12, t[7], h, ld, ld, h);  // B11+B12
  mat_sub(a12, a22, t[8], h, ld, ld, h);  // A12-A22
  mat_add(b21, b22, t[9], h, ld, ld, h);  // B21+B22

  const std::size_t hh = h;
  auto spawn_mul = [&](const double* x, std::size_t ldx, const double* y,
                       std::size_t ldy, double* z) {
    // Mixed leading dimensions are handled by copying into scratch above;
    // here x/y are either original blocks (ld) or temps (h).
    ctx.spawn([x, ldx, y, ldy, z, hh, cutoff, scratch](Ctx& cc) {
      // Temps have ld == h; recurse with a uniform ld by materializing
      // sub-blocks only through pointer math — both strides are passed.
      strassen_mixed(cc, x, ldx, y, ldy, z, hh, cutoff);
    });
  };
  spawn_mul(t[0], h, t[1], h, m[0]);   // M1 = (A11+A22)(B11+B22)
  spawn_mul(t[2], h, b11, ld, m[1]);   // M2 = (A21+A22)B11
  spawn_mul(a11, ld, t[3], h, m[2]);   // M3 = A11(B12-B22)
  spawn_mul(a22, ld, t[4], h, m[3]);   // M4 = A22(B21-B11)
  spawn_mul(t[5], h, b22, ld, m[4]);   // M5 = (A11+A12)B22
  spawn_mul(t[6], h, t[7], h, m[5]);   // M6 = (A21-A11)(B11+B12)
  spawn_mul(t[8], h, t[9], h, m[6]);   // M7 = (A12-A22)(B21+B22)
  ctx.taskwait();

  // C11 = M1+M4-M5+M7 ; C12 = M3+M5 ; C21 = M2+M4 ; C22 = M1-M2+M3+M6
  for (std::size_t i = 0; i < h; ++i) {
    for (std::size_t j = 0; j < h; ++j) {
      const std::size_t s = i * h + j;
      c[i * ld + j] = m[0][s] + m[3][s] - m[4][s] + m[6][s];
      c[i * ld + j + h] = m[2][s] + m[4][s];
      c[(i + h) * ld + j] = m[1][s] + m[3][s];
      c[(i + h) * ld + j + h] = m[0][s] - m[1][s] + m[2][s] + m[5][s];
    }
  }
}

/// Multiply with independent strides for A and B (temps use ld == n).
template <typename Ctx>
void strassen_mixed(Ctx& ctx, const double* a, std::size_t lda,
                    const double* b, std::size_t ldb, double* c,
                    std::size_t n, std::size_t cutoff) {
  if (lda == ldb) {
    strassen_task(ctx, a, b, c, n, lda, cutoff);
    return;
  }
  // Normalize: copy the block with the foreign stride into a compact
  // buffer so the recursion sees one leading dimension.
  std::vector<double> compact(n * n);
  if (lda != n) {
    for (std::size_t i = 0; i < n; ++i)
      std::memcpy(&compact[i * n], a + i * lda, n * sizeof(double));
    strassen_mixed(ctx, compact.data(), n, b, ldb, c, n, cutoff);
  } else {
    for (std::size_t i = 0; i < n; ++i)
      std::memcpy(&compact[i * n], b + i * ldb, n * sizeof(double));
    strassen_mixed(ctx, a, lda, compact.data(), n, c, n, cutoff);
  }
}

}  // namespace detail

/// Deterministic pseudo-random n×n matrix (row-major).
std::vector<double> strassen_input(std::size_t n, std::uint64_t seed);

/// Serial reference multiply (naive), for verification.
inline std::vector<double> matmul_serial(const std::vector<double>& a,
                                         const std::vector<double>& b,
                                         std::size_t n) {
  std::vector<double> c(n * n, 0.0);
  detail::matmul_naive(a.data(), b.data(), c.data(), n, n, false);
  return c;
}

/// Task-parallel Strassen multiply: returns C = A*B. n must be a power of
/// two and >= cutoff.
template <typename RuntimeT>
std::vector<double> strassen_parallel(RuntimeT& rt,
                                      const std::vector<double>& a,
                                      const std::vector<double>& b,
                                      std::size_t n, std::size_t cutoff = 64) {
  std::vector<double> c(n * n, 0.0);
  rt.run([&](auto& ctx) {
    detail::strassen_task(ctx, a.data(), b.data(), c.data(), n, n, cutoff);
  });
  return c;
}

}  // namespace xtask::bots
