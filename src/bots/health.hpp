// BOTS Health: simulation of a hierarchical health-care system. A tree of
// villages is simulated over discrete timesteps; each step descends the
// tree with one task per village, generates patients from a per-village
// deterministic stream, treats some locally (per-patient work loop) and
// refers the rest to the parent hospital, which processes them after its
// subtree completes. Many small tasks around 1e3–1e4 cycles (§VI-A) with
// bursty, level-dependent load.
//
// The original kernel reads `small/medium/large` input files; we generate
// the equivalent village hierarchy from parameters (see health_* presets)
// and track aggregate statistics, which are deterministic by construction
// (sums of per-village streams, independent of scheduling order).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

namespace xtask::bots {

struct HealthParams {
  int levels = 5;        // depth of the village tree
  int branching = 4;     // children per village
  int timesteps = 50;    // simulation steps
  double arrival = 1.3;  // mean patients arriving per village per step
  double treat_local = 0.8;  // probability a patient is treated locally
  int treat_work = 64;       // per-patient work-loop iterations
  std::uint64_t seed = 99;
};

HealthParams health_small();
HealthParams health_medium();

struct HealthStats {
  std::uint64_t generated = 0;
  std::uint64_t treated_local = 0;
  std::uint64_t referred = 0;
  std::uint64_t work_sum = 0;  // checksum of the per-patient work loops
};

namespace detail {

inline std::uint64_t health_mix(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Deterministic per-(village, timestep) patient count and treatment
/// decisions, independent of execution order.
inline std::uint64_t village_stream(std::uint64_t seed, std::uint64_t village,
                                    int step, int draw) noexcept {
  return health_mix(seed ^ (village * 0x9e3779b97f4a7c15ull) ^
                    (static_cast<std::uint64_t>(step) << 32) ^
                    static_cast<std::uint64_t>(draw));
}

/// The per-patient "treatment": a short dependent work loop whose result
/// is accumulated so the optimizer cannot drop it.
inline std::uint64_t treat_patient(std::uint64_t id, int iters) noexcept {
  std::uint64_t acc = id;
  for (int i = 0; i < iters; ++i) acc = health_mix(acc + 1);
  return acc;
}

struct VillageResult {
  std::uint64_t generated = 0;
  std::uint64_t treated = 0;
  std::uint64_t referred = 0;
  std::uint64_t work = 0;
};

/// Simulate one timestep of the subtree rooted at `village` (id encodes
/// the path). Children run as tasks; referrals bubble up as counts and are
/// treated at this level after taskwait.
template <typename Ctx>
void village_step(Ctx& ctx, const HealthParams* p, std::uint64_t village,
                  int level, int step, VillageResult* out) {
  std::vector<VillageResult> child_results;
  if (level + 1 < p->levels) {
    child_results.resize(static_cast<std::size_t>(p->branching));
    for (int b = 0; b < p->branching; ++b) {
      const std::uint64_t child = village * 37 + static_cast<std::uint64_t>(b) + 1;
      VillageResult* slot = &child_results[static_cast<std::size_t>(b)];
      ctx.spawn([p, child, level, step, slot](Ctx& c) {
        village_step(c, p, child, level + 1, step, slot);
      });
    }
  }

  // Local arrivals while the subtree is in flight.
  VillageResult local;
  const std::uint64_t draw0 = village_stream(p->seed, village, step, 0);
  const int arrivals = static_cast<int>(
      draw0 % (2 * static_cast<std::uint64_t>(p->arrival * 1024) / 1024 + 2));
  for (int i = 0; i < arrivals; ++i) {
    const std::uint64_t d = village_stream(p->seed, village, step, i + 1);
    local.generated++;
    const double u = static_cast<double>(d >> 11) * 0x1.0p-53;
    if (u < p->treat_local) {
      local.treated++;
      local.work += treat_patient(d, p->treat_work);
    } else {
      local.referred++;
    }
  }

  if (!child_results.empty()) {
    ctx.taskwait();
    for (const VillageResult& r : child_results) {
      local.generated += r.generated;
      local.treated += r.treated;
      local.work += r.work;
      // Referrals from children get treated here (heavier casework).
      for (std::uint64_t i = 0; i < r.referred; ++i) {
        local.treated++;
        local.work += treat_patient(r.work + i, 2 * p->treat_work);
      }
    }
  }
  *out = local;
}

}  // namespace detail

/// Serial reference (single-threaded recursion, same arithmetic).
HealthStats health_serial(const HealthParams& p);

/// Task-parallel simulation: one root task per timestep, one task per
/// village per step underneath.
template <typename RuntimeT>
HealthStats health_parallel(RuntimeT& rt, const HealthParams& p) {
  HealthStats stats;
  rt.run([&](auto& ctx) {
    for (int step = 0; step < p.timesteps; ++step) {
      detail::VillageResult r;
      detail::village_step(ctx, &p, 1, 0, step, &r);
      stats.generated += r.generated;
      stats.treated_local += r.treated;
      stats.referred += r.referred;
      stats.work_sum += r.work;
    }
  });
  return stats;
}

}  // namespace xtask::bots
