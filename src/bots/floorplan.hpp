// BOTS Floorplan: branch-and-bound placement of cells with alternative
// shapes, minimizing the bounding-box area. Each feasible (shape ×
// position) extension of a partial placement is a task carrying a private
// copy of the board, and a shared atomic best-area bound prunes the
// search. Task sizes are highly varied (1e2–1e6 cycles, §VI-B1), making
// this the most imbalanced BOTS kernel after Fib — the paper reports
// 2.6–2.8× DLB gains here.
//
// Note: the original BOTS kernel reads a Cray AKM cell file; we generate
// an equivalent deterministic cell set (see floorplan_cells) so the
// benchmark is self-contained. The search structure (per-extension tasks,
// board copies, shared bound) matches.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace xtask::bots {

struct FloorplanShape {
  int w;
  int h;
};

struct FloorplanCell {
  std::vector<FloorplanShape> shapes;  // alternative orientations/aspect
};

/// Deterministic cell set of `n` cells with 2–3 shape alternatives each.
std::vector<FloorplanCell> floorplan_cells(int n, std::uint64_t seed = 20);

namespace detail {

constexpr int kBoardMax = 64;

struct Board {
  std::array<std::uint8_t, kBoardMax * kBoardMax> occ{};
  int bb_w = 0;
  int bb_h = 0;

  bool place(int x, int y, int w, int h) noexcept {
    if (x + w > kBoardMax || y + h > kBoardMax) return false;
    for (int j = y; j < y + h; ++j)
      for (int i = x; i < x + w; ++i)
        if (occ[static_cast<std::size_t>(j * kBoardMax + i)]) return false;
    for (int j = y; j < y + h; ++j)
      for (int i = x; i < x + w; ++i)
        occ[static_cast<std::size_t>(j * kBoardMax + i)] = 1;
    if (x + w > bb_w) bb_w = x + w;
    if (y + h > bb_h) bb_h = y + h;
    return true;
  }
};

/// Candidate positions for the next cell: the three bounding-box frontier
/// corners. Keeps the branching factor at |shapes|×3 like the original's
/// footprint positions while remaining admissible (the optimum over this
/// frontier is deterministic, which is all the tests need).
inline std::array<std::pair<int, int>, 3> candidates(const Board& b) noexcept {
  return {{{b.bb_w, 0}, {0, b.bb_h}, {b.bb_w, b.bb_h}}};
}

inline void floorplan_serial_rec(const Board& board,
                                 const std::vector<FloorplanCell>& cells,
                                 std::size_t level, int* best) noexcept {
  if (level == cells.size()) {
    const int area = board.bb_w * board.bb_h;
    if (area < *best) *best = area;
    return;
  }
  for (const FloorplanShape& s : cells[level].shapes) {
    for (const auto& [x, y] : candidates(board)) {
      Board child = board;
      if (!child.place(x, y, s.w, s.h)) continue;
      if (child.bb_w * child.bb_h >= *best) continue;  // bound
      floorplan_serial_rec(child, cells, level + 1, best);
    }
  }
}

template <typename Ctx>
void floorplan_task(Ctx& ctx, const Board& board,
                    const std::vector<FloorplanCell>* cells,
                    std::size_t level, int cutoff, std::atomic<int>* best) {
  if (level == (*cells).size()) {
    const int area = board.bb_w * board.bb_h;
    // Lock-free min update.
    int cur = best->load(std::memory_order_relaxed);
    while (area < cur &&
           !best->compare_exchange_weak(cur, area, std::memory_order_relaxed))
      ;
    return;
  }
  if (static_cast<int>((*cells).size() - level) <= cutoff) {
    int local = best->load(std::memory_order_relaxed);
    const int before = local;
    floorplan_serial_rec(board, *cells, level, &local);
    if (local < before) {
      int cur = best->load(std::memory_order_relaxed);
      while (local < cur && !best->compare_exchange_weak(
                                cur, local, std::memory_order_relaxed))
        ;
    }
    return;
  }
  // Boards are too large for inline task payloads; children own a heap
  // copy via shared_ptr (BOTS likewise memcpys the board per task).
  for (const FloorplanShape& s : (*cells)[level].shapes) {
    for (const auto& [x, y] : candidates(board)) {
      auto child = std::make_shared<Board>(board);
      if (!child->place(x, y, s.w, s.h)) continue;
      if (child->bb_w * child->bb_h >=
          best->load(std::memory_order_relaxed))
        continue;
      ctx.spawn([child, cells, level, cutoff, best](Ctx& c) {
        floorplan_task(c, *child, cells, level + 1, cutoff, best);
      });
    }
  }
  ctx.taskwait();
}

}  // namespace detail

/// Serial reference: minimal bounding-box area.
inline int floorplan_serial(const std::vector<FloorplanCell>& cells) {
  detail::Board board;
  int best = detail::kBoardMax * detail::kBoardMax;
  detail::floorplan_serial_rec(board, cells, 0, &best);
  return best;
}

/// Task-parallel branch and bound. `cutoff`: remaining levels below which
/// the search runs serially inside a task.
template <typename RuntimeT>
int floorplan_parallel(RuntimeT& rt, const std::vector<FloorplanCell>& cells,
                       int cutoff = 2) {
  std::atomic<int> best{detail::kBoardMax * detail::kBoardMax};
  rt.run([&](auto& ctx) {
    detail::Board board;
    detail::floorplan_task(ctx, board, &cells, 0, cutoff, &best);
  });
  return best.load();
}

}  // namespace xtask::bots
