// Dependency-graph formulations of two BOTS kernels, built once and
// emitted through a caller-supplied sink so the *same* builder serves both
// execution styles:
//
//   * live spawn-with-deps: emit = ctx.spawn(body, deps) — one region, no
//     taskwaits; ordering comes entirely from the dependence layer. This
//     is the classic OmpSs formulation (sparselu: lu0 -> fwd/bdiv -> bmod
//     chained per block address).
//   * graph capture: emit = cap.node(body, deps) — the DAG is recorded
//     into a TaskGraph and can replay with zero rebuild cost.
//
// Both produce bit-identical results to the taskwait versions in
// sparselu.hpp / strassen.hpp: the kernels and their arithmetic order are
// unchanged, only the synchronization is expressed differently (the
// tests pin this exactly).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "bots/serial_ctx.hpp"
#include "bots/sparselu.hpp"
#include "bots/strassen.hpp"
#include "core/runtime.hpp"
#include "core/task_graph.hpp"

namespace xtask::bots {

/// Materialize sparselu's full fill pattern up front. The taskwait version
/// materializes fill-in lazily between phases; a static dependence graph
/// needs every eventual block address to exist at build time. The k-ordered
/// sweep reproduces the lazy recurrence exactly (liveness only grows), so
/// the resulting block set — and therefore the checksum domain — is
/// identical.
inline void sparselu_prefill(SparseMatrix* m) {
  const int n = m->blocks();
  for (int k = 0; k < n; ++k)
    for (int i = k + 1; i < n; ++i) {
      if (m->block(i, k) == nullptr) continue;
      for (int j = k + 1; j < n; ++j)
        if (m->block(k, j) != nullptr) m->materialize(i, j);
    }
}

/// Emit the sparselu elimination as dependence-annotated nodes. `emit`
/// must be callable as emit(body, std::initializer_list<Dep>) where body
/// is invocable with (TaskContext&). Block base addresses are the
/// dependence tokens: lu0 inout(diag); fwd/bdiv in(diag) inout(panel);
/// bmod in(row) in(col) inout(inner). The per-address chains across k give
/// the exact phase ordering the taskwait version enforces with barriers —
/// minus the barriers.
template <typename Emit>
void sparselu_dep_build(SparseMatrix* m, Emit&& emit) {
  const int n = m->blocks();
  const int bs = m->bs();
  for (int k = 0; k < n; ++k) {
    double* dkk = m->block(k, k);
    emit([dkk, bs](TaskContext&) { detail::lu0(dkk, bs); }, {dinout(dkk)});
    for (int j = k + 1; j < n; ++j)
      if (double* blk = m->block(k, j))
        emit([dkk, blk, bs](TaskContext&) { detail::fwd(dkk, blk, bs); },
             {din(dkk), dinout(blk)});
    for (int i = k + 1; i < n; ++i)
      if (double* blk = m->block(i, k))
        emit([dkk, blk, bs](TaskContext&) { detail::bdiv(dkk, blk, bs); },
             {din(dkk), dinout(blk)});
    for (int i = k + 1; i < n; ++i) {
      double* row = m->block(i, k);
      if (row == nullptr) continue;
      for (int j = k + 1; j < n; ++j) {
        double* col = m->block(k, j);
        if (col == nullptr) continue;
        double* inner = m->block(i, j);  // exists: sparselu_prefill
        emit(
            [row, col, inner, bs](TaskContext&) {
              detail::bmod(row, col, inner, bs);
            },
            {din(row), din(col), dinout(inner)});
      }
    }
  }
}

/// Spawn-with-deps sparselu; checksum equals sparselu_parallel (and the
/// serial reference) for the same params.
inline double sparselu_deps(Runtime& rt, const SparseLuParams& p) {
  SparseMatrix m(p, /*fill=*/true);
  sparselu_prefill(&m);
  rt.run([&](TaskContext& ctx) {
    sparselu_dep_build(
        &m, [&ctx](auto&& f, std::initializer_list<Dep> deps) {
          ctx.spawn(std::forward<decltype(f)>(f), deps);
        });
  });
  return m.checksum();
}

/// Record sparselu over `m` as a sealed TaskGraph (not executed — the
/// first replay is the first factorization). `m` must outlive the graph.
inline TaskGraph sparselu_record(SparseMatrix* m) {
  sparselu_prefill(m);
  return TaskGraph::record([m](TaskGraph::Capture& cap) {
    sparselu_dep_build(
        m, [&cap](auto&& f, std::initializer_list<Dep> deps) {
          cap.node(std::forward<decltype(f)>(f), deps);
        });
  });
}

/// Borrowed operands + owned scratch for one Strassen decomposition level
/// expressed as a dependence graph. Must outlive any graph recorded over
/// it (node bodies hold raw pointers into it).
struct StrassenDepState {
  StrassenDepState(const double* a_, const double* b_, double* c_,
                   std::size_t n_, std::size_t cutoff_)
      : n(n_), h(n_ / 2), cutoff(cutoff_), a(a_), b(b_), c(c_),
        scratch(17 * (n_ / 2) * (n_ / 2), 0.0) {
    for (int i = 0; i < 7; ++i) m[i] = scratch.data() + i * h * h;
    for (int i = 0; i < 10; ++i) t[i] = scratch.data() + (7 + i) * h * h;
  }
  std::size_t n, h, cutoff;
  const double* a;
  const double* b;
  double* c;
  std::vector<double> scratch;  // 7 products + 10 operand temps, h*h each
  double* m[7];
  double* t[10];
};

/// One Strassen level as nodes: 10 operand preps -> 7 sub-multiplies -> 4
/// quadrant combines (depth 3, width 7). The sub-multiplies run the serial
/// recursion inline — the same code path the spawning version executes,
/// so the product is bit-identical to strassen_parallel.
template <typename Emit>
void strassen_dep_build(StrassenDepState* s, Emit&& emit) {
  using detail::mat_add;
  using detail::mat_sub;
  const std::size_t h = s->h, ld = s->n, cutoff = s->cutoff;
  const double* a11 = s->a;
  const double* a12 = s->a + h;
  const double* a21 = s->a + h * ld;
  const double* a22 = s->a + h * ld + h;
  const double* b11 = s->b;
  const double* b12 = s->b + h;
  const double* b21 = s->b + h * ld;
  const double* b22 = s->b + h * ld + h;
  double** t = s->t;
  double** m = s->m;

  // Operand temps (tN = x op y, all reads from the immutable inputs).
  const struct {
    const double* x;
    const double* y;
    int ti;
    bool add;
  } preps[10] = {
      {a11, a22, 0, true},  {b11, b22, 1, true},  {a21, a22, 2, true},
      {b12, b22, 3, false}, {b21, b11, 4, false}, {a11, a12, 5, true},
      {a21, a11, 6, false}, {b11, b12, 7, true},  {a12, a22, 8, false},
      {b21, b22, 9, true},
  };
  for (const auto& pr : preps) {
    double* out = t[pr.ti];
    emit(
        [x = pr.x, y = pr.y, out, h, ld, add = pr.add](TaskContext&) {
          if (add) mat_add(x, y, out, h, ld, ld, h);
          else mat_sub(x, y, out, h, ld, ld, h);
        },
        {din(pr.x), din(pr.y), dout(out)});
  }

  // The seven products (inputs are temps with stride h or original
  // quadrants with stride ld; strassen_mixed normalizes).
  const struct {
    const double* x;
    std::size_t ldx;
    const double* y;
    std::size_t ldy;
    int mi;
  } muls[7] = {
      {t[0], h, t[1], h, 0},  {t[2], h, b11, ld, 1}, {a11, ld, t[3], h, 2},
      {a22, ld, t[4], h, 3},  {t[5], h, b22, ld, 4}, {t[6], h, t[7], h, 5},
      {t[8], h, t[9], h, 6},
  };
  for (const auto& mu : muls) {
    double* out = m[mu.mi];
    emit(
        [x = mu.x, ldx = mu.ldx, y = mu.y, ldy = mu.ldy, out, h,
         cutoff](TaskContext&) {
          SerialContext sc;
          detail::strassen_mixed(sc, x, ldx, y, ldy, out, h, cutoff);
        },
        {din(mu.x), din(mu.y), dout(out)});
  }

  // Quadrant combines, same single-expression arithmetic as the taskwait
  // version's combine loop (bit-for-bit equality).
  double* c11 = s->c;
  double* c12 = s->c + h;
  double* c21 = s->c + h * ld;
  double* c22 = s->c + h * ld + h;
  emit(
      [m0 = m[0], m3 = m[3], m4 = m[4], m6 = m[6], c11, h, ld](TaskContext&) {
        for (std::size_t i = 0; i < h; ++i)
          for (std::size_t j = 0; j < h; ++j) {
            const std::size_t sidx = i * h + j;
            c11[i * ld + j] = m0[sidx] + m3[sidx] - m4[sidx] + m6[sidx];
          }
      },
      {din(m[0]), din(m[3]), din(m[4]), din(m[6]), dout(c11)});
  emit(
      [m2 = m[2], m4 = m[4], c12, h, ld](TaskContext&) {
        for (std::size_t i = 0; i < h; ++i)
          for (std::size_t j = 0; j < h; ++j) {
            const std::size_t sidx = i * h + j;
            c12[i * ld + j] = m2[sidx] + m4[sidx];
          }
      },
      {din(m[2]), din(m[4]), dout(c12)});
  emit(
      [m1 = m[1], m3 = m[3], c21, h, ld](TaskContext&) {
        for (std::size_t i = 0; i < h; ++i)
          for (std::size_t j = 0; j < h; ++j) {
            const std::size_t sidx = i * h + j;
            c21[i * ld + j] = m1[sidx] + m3[sidx];
          }
      },
      {din(m[1]), din(m[3]), dout(c21)});
  emit(
      [m0 = m[0], m1 = m[1], m2 = m[2], m5 = m[5], c22, h, ld](TaskContext&) {
        for (std::size_t i = 0; i < h; ++i)
          for (std::size_t j = 0; j < h; ++j) {
            const std::size_t sidx = i * h + j;
            c22[i * ld + j] = m0[sidx] - m1[sidx] + m2[sidx] + m5[sidx];
          }
      },
      {din(m[0]), din(m[1]), din(m[2]), din(m[5]), dout(c22)});
}

/// Spawn-with-deps Strassen (one decomposed level); C equals
/// strassen_parallel's output exactly. n must be even and >= 2*cutoff for
/// the decomposition to be meaningful.
inline std::vector<double> strassen_deps(Runtime& rt,
                                         const std::vector<double>& a,
                                         const std::vector<double>& b,
                                         std::size_t n,
                                         std::size_t cutoff = 64) {
  std::vector<double> c(n * n, 0.0);
  StrassenDepState s(a.data(), b.data(), c.data(), n, cutoff);
  rt.run([&](TaskContext& ctx) {
    strassen_dep_build(
        &s, [&ctx](auto&& f, std::initializer_list<Dep> deps) {
          ctx.spawn(std::forward<decltype(f)>(f), deps);
        });
  });
  return c;
}

/// Record one Strassen level over `s` as a sealed TaskGraph (not
/// executed). `s` must outlive the graph.
inline TaskGraph strassen_record(StrassenDepState* s) {
  return TaskGraph::record([s](TaskGraph::Capture& cap) {
    strassen_dep_build(
        s, [&cap](auto&& f, std::initializer_list<Dep> deps) {
          cap.node(std::forward<decltype(f)>(f), deps);
        });
  });
}

}  // namespace xtask::bots
