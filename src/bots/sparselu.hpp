// BOTS SparseLU: LU factorization of a sparse blocked matrix. Not part of
// the paper's nine-app evaluation, but part of the BOTS suite the paper
// draws from; included so the library ships the full benchmark family.
// Each elimination step runs lu0 on the diagonal block, then fwd/bdiv on
// the live row/column blocks, then bmod updates on the trailing submatrix
// — all as tasks with a taskwait between phases (the classic BOTS
// structure). Sparsity: only a deterministic subset of blocks is non-null;
// bmod materializes fill-in blocks, so the task load grows as the
// factorization proceeds — an irregular, phase-structured workload.
#pragma once

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

namespace xtask::bots {

struct SparseLuParams {
  int blocks = 16;      // matrix is blocks×blocks of submatrices
  int block_size = 16;  // each submatrix is block_size²  doubles
  std::uint64_t seed = 44;
};

/// Blocked sparse matrix: null pointer = structurally zero block.
class SparseMatrix {
 public:
  SparseMatrix(const SparseLuParams& p, bool fill);

  int blocks() const noexcept { return p_.blocks; }
  int bs() const noexcept { return p_.block_size; }
  double* block(int i, int j) noexcept {
    return data_[static_cast<std::size_t>(i * p_.blocks + j)].get();
  }
  const double* block(int i, int j) const noexcept {
    return data_[static_cast<std::size_t>(i * p_.blocks + j)].get();
  }
  /// Create (zero-initialized) the block if it is structurally zero.
  double* materialize(int i, int j);

  /// Restore the original seeded values in place: pattern blocks get the
  /// constructor's exact value sequence back, blocks materialized later
  /// (fill-in) are zeroed. No block address changes, so a TaskGraph
  /// recorded over this matrix replays on fresh data (the graph-replay
  /// benchmark re-factorizes between replays this way).
  void refill();

  /// Frobenius-style checksum over all live blocks (order-independent).
  double checksum() const;

 private:
  SparseLuParams p_;
  std::vector<std::unique_ptr<double[]>> data_;
};

namespace detail {

// The four BOTS kernels, operating on bs×bs row-major blocks.
void lu0(double* diag, int bs);
void fwd(const double* diag, double* col, int bs);
void bdiv(const double* diag, double* row, int bs);
void bmod(const double* row, const double* col, double* inner, int bs);

template <typename Ctx>
void sparselu_task(Ctx& ctx, SparseMatrix* m) {
  const int n = m->blocks();
  const int bs = m->bs();
  for (int k = 0; k < n; ++k) {
    lu0(m->block(k, k), bs);
    // Phase 1: panel updates.
    for (int j = k + 1; j < n; ++j) {
      if (m->block(k, j) != nullptr) {
        double* blk = m->block(k, j);
        const double* diag = m->block(k, k);
        ctx.spawn([diag, blk, bs](Ctx&) { fwd(diag, blk, bs); });
      }
    }
    for (int i = k + 1; i < n; ++i) {
      if (m->block(i, k) != nullptr) {
        double* blk = m->block(i, k);
        const double* diag = m->block(k, k);
        ctx.spawn([diag, blk, bs](Ctx&) { bdiv(diag, blk, bs); });
      }
    }
    ctx.taskwait();
    // Phase 2: trailing submatrix updates (materializes fill-in serially
    // on the spawning task, then updates in parallel, as BOTS does).
    for (int i = k + 1; i < n; ++i) {
      if (m->block(i, k) == nullptr) continue;
      for (int j = k + 1; j < n; ++j) {
        if (m->block(k, j) == nullptr) continue;
        double* inner = m->materialize(i, j);
        const double* row = m->block(i, k);
        const double* col = m->block(k, j);
        ctx.spawn([row, col, inner, bs](Ctx&) { bmod(row, col, inner, bs); });
      }
    }
    ctx.taskwait();
  }
}

}  // namespace detail

/// Serial reference: checksum of the factorized matrix.
double sparselu_serial(const SparseLuParams& p);

/// Task-parallel factorization; returns the factorized matrix checksum
/// (equal to the serial reference for the same params).
template <typename RuntimeT>
double sparselu_parallel(RuntimeT& rt, const SparseLuParams& p) {
  SparseMatrix m(p, /*fill=*/true);
  rt.run([&](auto& ctx) { detail::sparselu_task(ctx, &m); });
  return m.checksum();
}

}  // namespace xtask::bots
