// BOTS UTS (Unbalanced Tree Search): count the nodes of an implicitly
// defined, pathologically imbalanced random tree. Child counts derive from
// a splittable hash of the node id (standing in for the SHA-1 stream of
// the original UTS), so the tree is identical regardless of traversal
// order or thread count — the load imbalance is therefore *data-driven*,
// exactly the property the paper's DLB strategies target.
#pragma once

#include <atomic>
#include <cstdint>

namespace xtask::bots {

/// Binomial-tree parameters (UTS "T3"-style): the root has `root_children`
/// children; every other node has `m` children with probability `q`, else
/// none. Expected size is finite when m*q < 1.
struct UtsParams {
  int root_children = 200;   // b0
  int m = 4;                 // children per internal node
  double q = 0.200;          // probability of being internal (m*q = 0.8)
  std::uint64_t seed = 562;  // tree identity
  int cutoff_depth = 0;      // spawn depth limit, 0 = spawn everywhere
};

/// Paper-style size presets (§VI): tiny for sweeps, small for headline.
UtsParams uts_tiny();
UtsParams uts_small();

namespace detail {

/// Splittable node hash (SplitMix64 over parent-hash ⊕ child-index).
inline std::uint64_t uts_child_hash(std::uint64_t parent,
                                    int child_index) noexcept {
  std::uint64_t z = parent + 0x9e3779b97f4a7c15ull *
                                 (static_cast<std::uint64_t>(child_index) + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

inline int uts_num_children(std::uint64_t hash, const UtsParams& p,
                            bool is_root) noexcept {
  if (is_root) return p.root_children;
  // Map the hash to [0,1): internal node iff below q.
  const double u =
      static_cast<double>(hash >> 11) * 0x1.0p-53;  // uniform [0,1)
  return u < p.q ? p.m : 0;
}

inline std::uint64_t uts_count_serial(std::uint64_t hash, const UtsParams& p,
                                      bool is_root) noexcept {
  std::uint64_t count = 1;
  const int kids = uts_num_children(hash, p, is_root);
  for (int i = 0; i < kids; ++i)
    count += uts_count_serial(uts_child_hash(hash, i), p, false);
  return count;
}

template <typename Ctx>
void uts_task(Ctx& ctx, std::uint64_t hash, const UtsParams* p, bool is_root,
              int depth, std::atomic<std::uint64_t>* count) {
  count->fetch_add(1, std::memory_order_relaxed);
  const int kids = uts_num_children(hash, *p, is_root);
  if (kids == 0) return;
  if (p->cutoff_depth > 0 && depth >= p->cutoff_depth) {
    std::uint64_t sub = 0;
    for (int i = 0; i < kids; ++i)
      sub += uts_count_serial(uts_child_hash(hash, i), *p, false);
    count->fetch_add(sub, std::memory_order_relaxed);
    return;
  }
  for (int i = 0; i < kids; ++i) {
    const std::uint64_t child = uts_child_hash(hash, i);
    ctx.spawn([child, p, depth, count](Ctx& c) {
      uts_task(c, child, p, false, depth + 1, count);
    });
  }
  ctx.taskwait();
}

}  // namespace detail

/// Serial reference node count.
inline std::uint64_t uts_serial(const UtsParams& p) noexcept {
  return detail::uts_count_serial(p.seed, p, true);
}

/// Task-parallel node count.
template <typename RuntimeT>
std::uint64_t uts_parallel(RuntimeT& rt, const UtsParams& p) {
  std::atomic<std::uint64_t> count{0};
  rt.run([&](auto& ctx) {
    detail::uts_task(ctx, p.seed, &p, true, 0, &count);
  });
  return count.load();
}

}  // namespace xtask::bots
