// BOTS FFT: task-parallel Cooley–Tukey over complex doubles. Recursion
// spawns the two half-size transforms and splits the butterfly combine;
// below the cutoff an iterative serial FFT runs inside the task. Task
// sizes 1e2–1e6 cycles, mode 1e3–1e4 (§VI-A).
#pragma once

#include <cmath>
#include <complex>
#include <cstdint>
#include <numbers>
#include <vector>

namespace xtask::bots {

using Complex = std::complex<double>;

namespace detail {

/// Serial radix-2 decimation-in-time FFT of length n (power of two),
/// out-of-place from `in` (stride `stride`) into `out`.
inline void fft_serial_rec(const Complex* in, Complex* out, std::size_t n,
                           std::size_t stride) {
  if (n == 1) {
    out[0] = in[0];
    return;
  }
  const std::size_t h = n / 2;
  fft_serial_rec(in, out, h, stride * 2);
  fft_serial_rec(in + stride, out + h, h, stride * 2);
  for (std::size_t k = 0; k < h; ++k) {
    const double ang = -2.0 * std::numbers::pi * static_cast<double>(k) /
                       static_cast<double>(n);
    const Complex w(std::cos(ang), std::sin(ang));
    const Complex e = out[k];
    const Complex o = w * out[k + h];
    out[k] = e + o;
    out[k + h] = e - o;
  }
}

/// Task-parallel DIT step: spawn the half transforms, then split the
/// butterfly loop into `chunks` tasks.
template <typename Ctx>
void fft_task(Ctx& ctx, const Complex* in, Complex* out, std::size_t n,
              std::size_t stride, std::size_t cutoff) {
  if (n <= cutoff) {
    fft_serial_rec(in, out, n, stride);
    return;
  }
  const std::size_t h = n / 2;
  ctx.spawn([in, out, h, stride, cutoff](Ctx& c) {
    fft_task(c, in, out, h, stride * 2, cutoff);
  });
  ctx.spawn([in, out, h, stride, cutoff](Ctx& c) {
    fft_task(c, in + stride, out + h, h, stride * 2, cutoff);
  });
  ctx.taskwait();
  // Parallel butterfly: contiguous k-ranges as tasks.
  const std::size_t chunk = cutoff > 0 ? cutoff : 1024;
  for (std::size_t k0 = 0; k0 < h; k0 += chunk) {
    const std::size_t k1 = k0 + chunk < h ? k0 + chunk : h;
    ctx.spawn([out, n, h, k0, k1](Ctx&) {
      for (std::size_t k = k0; k < k1; ++k) {
        const double ang = -2.0 * std::numbers::pi * static_cast<double>(k) /
                           static_cast<double>(n);
        const Complex w(std::cos(ang), std::sin(ang));
        const Complex e = out[k];
        const Complex o = w * out[k + h];
        out[k] = e + o;
        out[k + h] = e - o;
      }
    });
  }
  ctx.taskwait();
}

}  // namespace detail

/// Serial reference FFT (power-of-two length).
inline std::vector<Complex> fft_serial(const std::vector<Complex>& in) {
  std::vector<Complex> out(in.size());
  detail::fft_serial_rec(in.data(), out.data(), in.size(), 1);
  return out;
}

/// Deterministic pseudo-random complex input.
std::vector<Complex> fft_input(std::size_t n, std::uint64_t seed = 11);

/// Task-parallel FFT. `cutoff` is the sub-transform size below which the
/// serial kernel runs (also the butterfly chunk length).
template <typename RuntimeT>
std::vector<Complex> fft_parallel(RuntimeT& rt, const std::vector<Complex>& in,
                                  std::size_t cutoff = 512) {
  std::vector<Complex> out(in.size());
  rt.run([&](auto& ctx) {
    detail::fft_task(ctx, in.data(), out.data(), in.size(), 1, cutoff);
  });
  return out;
}

}  // namespace xtask::bots
