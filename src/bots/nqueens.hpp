// BOTS NQueens: count all placements of n queens on an n×n board.
// Backtracking search; one task per feasible row extension down to
// `cutoff` remaining depth. Fine-grained and highly irregular — the paper's
// largest XGOMPTB-vs-GOMP win (1522.8×) is on this kernel.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

namespace xtask::bots {

namespace detail {

constexpr int kMaxQueens = 20;

inline bool queen_ok(const std::array<signed char, kMaxQueens>& cols, int row,
                     int col) noexcept {
  for (int r = 0; r < row; ++r) {
    const int c = cols[static_cast<std::size_t>(r)];
    if (c == col || c - col == row - r || col - c == row - r) return false;
  }
  return true;
}

inline long nqueens_count(std::array<signed char, kMaxQueens>& cols, int n,
                          int row) noexcept {
  if (row == n) return 1;
  long total = 0;
  for (int col = 0; col < n; ++col) {
    if (queen_ok(cols, row, col)) {
      cols[static_cast<std::size_t>(row)] = static_cast<signed char>(col);
      total += nqueens_count(cols, n, row + 1);
    }
  }
  return total;
}

template <typename Ctx>
void nqueens_task(Ctx& ctx, std::array<signed char, kMaxQueens> cols, int n,
                  int row, int cutoff, std::atomic<long>* total) {
  if (row == n) {
    total->fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (n - row <= cutoff) {
    const long sub = nqueens_count(cols, n, row);
    if (sub != 0) total->fetch_add(sub, std::memory_order_relaxed);
    return;
  }
  for (int col = 0; col < n; ++col) {
    if (queen_ok(cols, row, col)) {
      // Each child owns a copy of the partial board (BOTS does the same
      // with memcpy) so siblings never share mutable state.
      auto child = cols;
      child[static_cast<std::size_t>(row)] = static_cast<signed char>(col);
      ctx.spawn([child, n, row, cutoff, total](Ctx& c) {
        nqueens_task(c, child, n, row + 1, cutoff, total);
      });
    }
  }
  ctx.taskwait();
}

}  // namespace detail

/// Serial reference: number of n-queens solutions.
inline long nqueens_serial(int n) noexcept {
  std::array<signed char, detail::kMaxQueens> cols{};
  return detail::nqueens_count(cols, n, 0);
}

/// Task-parallel solution count. `cutoff`: remaining rows below which the
/// search runs serially inside one task (BOTS default behaviour is spawn
/// everywhere, cutoff = 0).
template <typename RuntimeT>
long nqueens_parallel(RuntimeT& rt, int n, int cutoff = 3) {
  std::atomic<long> total{0};
  rt.run([&](auto& ctx) {
    std::array<signed char, detail::kMaxQueens> cols{};
    detail::nqueens_task(ctx, cols, n, 0, cutoff, &total);
  });
  return total.load();
}

}  // namespace xtask::bots
