// LOMP-like baseline runtime: reproduces the structure the paper credits
// for LLVM OpenMP's speed on fine-grained tasks (§II, §VI-A):
//   * per-thread task deques, each protected by its own light lock (libomp
//     uses a lock per deque, not a global one),
//   * pull-based random work stealing between deques,
//   * a fast multi-level task allocator (thread-local free lists),
//   * a centralized atomic task counter for termination (LLVM's lock-free
//     barrier equivalent).
// With `use_xqueue = true` the deques are replaced by XQueue, giving the
// paper's "XLOMP" configuration.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/central_barrier.hpp"
#include "core/common.hpp"
#include "core/fault.hpp"
#include "core/task_allocator.hpp"
#include "core/topology.hpp"
#include "core/xqueue.hpp"
#include "prof/profiler.hpp"

namespace xtask::lomp {

class LompRuntime;
class LompContext;

namespace detail {

/// Task descriptor with inline payload (like xtask::Task) so the
/// multi-level allocator — not malloc — bounds creation cost.
struct alignas(kCacheLine) LTask {
  static constexpr std::size_t kPayloadBytes = 128;
  using InvokeFn = void (*)(LTask*, LompContext&, bool skip_body);

  InvokeFn invoke = nullptr;
  LTask* parent = nullptr;
  std::atomic<std::uint32_t> refs{1};
  std::atomic<std::uint32_t> active_children{0};
  std::uint16_t creator = 0;

  alignas(16) unsigned char payload[kPayloadBytes];

  template <typename F>
  void emplace(F&& f) {
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= kPayloadBytes,
                  "task closure too large for inline payload");
    ::new (static_cast<void*>(payload)) Fn(std::forward<F>(f));
    invoke = [](LTask* t, LompContext& ctx, bool skip_body) {
      Fn* fn = std::launder(reinterpret_cast<Fn*>(t->payload));
      // A task drained from a cancelled region skips the body but still
      // destroys the payload so captured resources are released.
      if (!skip_body) (*fn)(ctx);
      fn->~Fn();
    };
  }

  void reset(LTask* p, std::uint16_t creator_tid) noexcept {
    invoke = nullptr;
    parent = p;
    refs.store(1, std::memory_order_relaxed);
    active_children.store(0, std::memory_order_relaxed);
    creator = creator_tid;
  }
};

/// One worker's deque, libomp-style: own lock, LIFO for the owner
/// (work-first depth-first execution), FIFO for thieves.
struct alignas(kCacheLine) LockedDeque {
  std::mutex mu;
  std::deque<LTask*> q;

  bool push(LTask* t) {
    std::lock_guard<std::mutex> lock(mu);
    q.push_back(t);
    return true;
  }
  LTask* pop_local() {
    std::lock_guard<std::mutex> lock(mu);
    if (q.empty()) return nullptr;
    LTask* t = q.back();
    q.pop_back();
    return t;
  }
  LTask* pop_steal() {
    std::lock_guard<std::mutex> lock(mu);
    if (q.empty()) return nullptr;
    LTask* t = q.front();
    q.pop_front();
    return t;
  }
};

struct Worker {
  int id = 0;
  XorShift rng;
  std::uint32_t rr_cursor = 0;  // XQueue mode static balancing
  std::unique_ptr<PoolAllocator<LTask>> alloc;
  std::thread thread;
};

}  // namespace detail

class LompContext {
 public:
  int worker_id() const noexcept { return wid_; }

  template <typename F>
  void spawn(F&& f);

  void taskwait();

  /// Cooperative region cancellation (`omp cancel parallel` granularity):
  /// new spawns are dropped, queued tasks drain without running.
  void cancel() noexcept;
  bool cancelled() const noexcept;

  /// True when the runtime is draining this task from a cancelled region
  /// (the invoke thunk receives the same flag); never true in user bodies.
  bool body_skipped() const noexcept { return skip_body_; }

 private:
  friend class LompRuntime;
  LompContext(LompRuntime* rt, int wid, detail::LTask* current,
              bool skip_body = false) noexcept
      : rt_(rt), wid_(wid), current_(current), skip_body_(skip_body) {}
  LompRuntime* rt_;
  int wid_;
  detail::LTask* current_;
  bool skip_body_;
};

class LompRuntime {
 public:
  struct Config {
    int num_threads = static_cast<int>(std::thread::hardware_concurrency());
    int numa_zones = 1;  // locality accounting only
    bool profile_events = false;
    int yield_after_idle = 64;
    /// false: locked per-thread deques + stealing (LOMP).
    /// true: XQueue static round-robin, no stealing (XLOMP).
    bool use_xqueue = false;
    std::uint32_t queue_capacity = 2048;  // XQueue mode
    std::uint64_t seed = 42;
    /// When non-empty, the machine shape; overrides num_threads and
    /// numa_zones (same contract as xtask::Config::topology).
    Topology topology;
  };

  explicit LompRuntime(Config cfg);
  ~LompRuntime();

  LompRuntime(const LompRuntime&) = delete;
  LompRuntime& operator=(const LompRuntime&) = delete;

  /// One parallel region. Rethrows the first exception that escaped a task
  /// body (fail-fast: the region is cancelled when it is captured); the
  /// runtime stays usable afterwards.
  void run(std::function<void(LompContext&)> root);

  Profiler& profiler() noexcept { return prof_; }
  const Topology& topology() const noexcept { return topo_; }
  const Config& config() const noexcept { return cfg_; }

 private:
  friend class LompContext;
  using LTask = detail::LTask;

  LTask* allocate_task(int wid, LTask* parent);
  void dispatch(int wid, LTask* t);
  LTask* find_task(int wid);
  void execute(int wid, LTask* t);
  void finish(int wid, LTask* t);
  void deref(int wid, LTask* t) noexcept;
  void worker_loop(int wid, std::uint64_t gen);
  void thread_main(int id);

  Config cfg_;
  Topology topo_;
  Profiler prof_;
  CentralBarrier barrier_;
  PoolAllocator<LTask>::SharedPool pool_;
  std::vector<std::unique_ptr<detail::LockedDeque>> deques_;  // LOMP mode
  std::unique_ptr<XQueueT<detail::LTask*>> xq_;               // XLOMP mode

  // Region-scope fault state (reset per run): fail-fast like the GOMP
  // baseline.
  ExceptionSlot region_err_;
  std::atomic<bool> cancel_{false};

  std::vector<std::unique_ptr<detail::Worker>> workers_;
  std::mutex region_mu_;
  std::condition_variable region_cv_;
  std::condition_variable done_cv_;
  std::uint64_t region_gen_ = 0;
  int workers_done_ = 0;
  bool shutdown_ = false;
};

template <typename F>
void LompContext::spawn(F&& f) {
  if (rt_->cancel_.load(std::memory_order_relaxed)) {
    rt_->prof_.thread(wid_).counters.ntasks_cancelled++;
    return;
  }
  ScopedEvent ev(rt_->prof_.thread(wid_), EventKind::kTaskCreate);
  detail::LTask* t = rt_->allocate_task(wid_, current_);
  t->emplace(std::forward<F>(f));
  rt_->dispatch(wid_, t);
}

}  // namespace xtask::lomp
