#include "gomp/gomp_runtime.hpp"

#include <algorithm>

namespace xtask::gomp {

namespace {

/// An explicit Topology overrides the scalar shape knobs (see
/// xtask::Config::topology — one source of truth for machine shape).
GompRuntime::Config normalized(GompRuntime::Config cfg) {
  if (cfg.topology.num_workers() > 0) {
    cfg.num_threads = cfg.topology.num_workers();
    cfg.numa_zones = cfg.topology.num_zones();
  }
  return cfg;
}

}  // namespace

GompRuntime::GompRuntime(Config cfg)
    : cfg_(normalized(std::move(cfg))),
      topo_(cfg_.topology.num_workers() > 0
                ? cfg_.topology
                : Topology::synthetic(cfg_.num_threads,
                                      std::max(1, cfg_.numa_zones))),
      prof_(cfg_.num_threads, cfg_.profile_events) {
  XTASK_CHECK(cfg_.num_threads >= 1);
  threads_.reserve(static_cast<std::size_t>(cfg_.num_threads - 1));
  for (int i = 1; i < cfg_.num_threads; ++i)
    threads_.emplace_back([this, i] { thread_main(i); });
}

GompRuntime::~GompRuntime() {
  {
    std::lock_guard<std::mutex> lock(region_mu_);
    shutdown_ = true;
  }
  region_cv_.notify_all();
  for (auto& t : threads_)
    if (t.joinable()) t.join();
}

void GompRuntime::thread_main(int id) {
  std::uint64_t my_gen = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(region_mu_);
      region_cv_.wait(lock,
                      [&] { return shutdown_ || region_gen_ > my_gen; });
      if (shutdown_ && region_gen_ <= my_gen) return;
      my_gen = region_gen_;
    }
    worker_loop(id, my_gen);
    {
      std::lock_guard<std::mutex> lock(region_mu_);
      ++workers_done_;
    }
    done_cv_.notify_one();
  }
}

void GompRuntime::run(std::function<void(GompContext&)> root) {
  std::uint64_t gen;
  {
    std::lock_guard<std::mutex> lock(region_mu_);
    workers_done_ = 0;
    gen = ++region_gen_;
  }
  // Fresh region: clear fault state. Single-threaded here — the helpers
  // are still parked behind region_cv_.
  cancel_.store(false, std::memory_order_relaxed);
  region_err_.reset();

  auto* root_task = new GTask;
  root_task->fn = std::move(root);
  root_task->creator = 0;
  prof_.thread(0).counters.ntasks_created++;
  {
    std::lock_guard<std::mutex> lock(task_lock_);
    ++in_flight_;  // root counts as in flight until executed
  }
  region_cv_.notify_all();
  execute(0, root_task);
  worker_loop(0, gen);
  {
    std::unique_lock<std::mutex> lock(region_mu_);
    done_cv_.wait(lock,
                  [&] { return workers_done_ == cfg_.num_threads - 1; });
  }
  // Region drained; helpers' stores are ordered before the workers_done_
  // handshake, so this read races with nothing.
  if (region_err_.pending()) {
    if (std::exception_ptr ep = region_err_.take()) std::rethrow_exception(ep);
  }
}

void GompRuntime::enqueue(int wid, GTask* t) {
  (void)wid;
  std::lock_guard<std::mutex> lock(task_lock_);
  ++in_flight_;
  if (t->priority == 0 || queue_.empty()) {
    queue_.push_back(t);
  } else {
    // Priority insertion, FIFO within a level (GNU semantics). Priorities
    // are rare; linear scan from the front is what libgomp effectively
    // pays as well.
    auto it = std::find_if(queue_.begin(), queue_.end(), [&](GTask* q) {
      return q->priority < t->priority;
    });
    queue_.insert(it, t);
  }
}

GompRuntime::GTask* GompRuntime::try_pop(int wid) {
  (void)wid;
  std::lock_guard<std::mutex> lock(task_lock_);
  if (queue_.empty()) return nullptr;
  GTask* t = queue_.front();
  queue_.pop_front();
  return t;
}

void GompRuntime::execute(int wid, GTask* t) {
  {
    Counters& c = prof_.thread(wid).counters;
    if (t->creator == wid)
      c.ntasks_self++;
    else if (topo_.local(wid, t->creator))
      c.ntasks_local++;
    else
      c.ntasks_remote++;
  }
  {
    ScopedEvent ev(prof_.thread(wid), EventKind::kTask);
    GompContext ctx(this, wid, t);
    // Cancelled region: drain the task (captures released, body skipped)
    // but run the full completion protocol so in_flight_ stays exact.
    if (cancel_.load(std::memory_order_relaxed)) {
      prof_.thread(wid).counters.ntasks_cancelled++;
    } else {
      try {
        t->fn(ctx);
      } catch (...) {
        // Fail-fast: first escaped exception cancels the region and is
        // rethrown from run().
        region_err_.try_store(std::current_exception());
        cancel_.store(true, std::memory_order_relaxed);
        prof_.thread(wid).counters.nexceptions++;
      }
    }
    t->fn = nullptr;  // release captures promptly (GOMP frees the body)
  }
  finish(wid, t);
}

void GompRuntime::finish(int wid, GTask* t) {
  prof_.thread(wid).counters.ntasks_executed++;
  {
    std::lock_guard<std::mutex> lock(task_lock_);
    --in_flight_;
  }
  GTask* parent = t->parent;
  deref(t);
  if (parent != nullptr) {
    parent->active_children.fetch_sub(1, std::memory_order_release);
    deref(parent);
  }
}

void GompRuntime::deref(GTask* t) noexcept {
  if (t->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) delete t;
}

void GompRuntime::worker_loop(int wid, std::uint64_t gen) {
  bool arrived = false;
  int consecutive_idle = 0;
  std::uint64_t stall_start = 0;
  ThreadProfile& prof = prof_.thread(wid);

  for (;;) {
    if (GTask* t = try_pop(wid)) {
      if (stall_start != 0) {
        prof.record(EventKind::kStall, stall_start, rdtscp());
        stall_start = 0;
      }
      consecutive_idle = 0;
      execute(wid, t);
      continue;
    }
    if (stall_start == 0 && prof_.events_enabled()) stall_start = rdtscp();

    // Centralized barrier under the global task lock: release when all
    // workers arrived and nothing is queued or running.
    {
      std::lock_guard<std::mutex> lock(task_lock_);
      if (!arrived) {
        ++arrived_;
        arrived = true;
      }
      if (released_gen_ >= gen ||
          (arrived_ == cfg_.num_threads && in_flight_ == 0 &&
           queue_.empty())) {
        if (released_gen_ < gen) {
          released_gen_ = gen;
          arrived_ = 0;
        }
        if (stall_start != 0)
          prof.record(EventKind::kStall, stall_start, rdtscp());
        return;
      }
    }
    if (cfg_.yield_after_idle > 0 &&
        ++consecutive_idle >= cfg_.yield_after_idle) {
      std::this_thread::yield();
      consecutive_idle = 0;
    }
  }
}

void GompContext::cancel() noexcept {
  rt_->cancel_.store(true, std::memory_order_relaxed);
}

bool GompContext::cancelled() const noexcept {
  return rt_->cancel_.load(std::memory_order_relaxed);
}

void GompContext::taskwait() {
  if (current_ == nullptr) return;
  if (current_->active_children.load(std::memory_order_acquire) == 0) return;
  ScopedEvent ev(rt_->prof_.thread(wid_), EventKind::kTaskWait);
  int consecutive_idle = 0;
  while (current_->active_children.load(std::memory_order_acquire) != 0) {
    if (auto* t = rt_->try_pop(wid_)) {
      consecutive_idle = 0;
      rt_->execute(wid_, t);
      continue;
    }
    if (rt_->cfg_.yield_after_idle > 0 &&
        ++consecutive_idle >= rt_->cfg_.yield_after_idle) {
      std::this_thread::yield();
      consecutive_idle = 0;
    }
  }
}

}  // namespace xtask::gomp
