// GOMP-like baseline runtime: reproduces the synchronization structure the
// paper attributes GNU OpenMP's fine-grained-task collapse to (§II-A):
//   * one globally shared FIFO/priority task queue,
//   * one global task lock protecting queueing, bookkeeping, and the
//     centralized team barrier state,
//   * malloc/free per task descriptor.
// It is the "GOMP" column of every comparison in the evaluation. The API
// mirrors xtask::Runtime so the BOTS kernels template over either.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/common.hpp"
#include "core/fault.hpp"
#include "core/topology.hpp"
#include "prof/profiler.hpp"

namespace xtask::gomp {

class GompRuntime;
class GompContext;

namespace detail {

/// Heap-allocated per task, GOMP style (one malloc per task, §VI-A).
struct GTask {
  std::function<void(GompContext&)> fn;
  GTask* parent = nullptr;
  std::atomic<std::uint32_t> refs{1};
  std::atomic<std::uint32_t> active_children{0};
  std::uint16_t creator = 0;
  int priority = 0;
};

}  // namespace detail

class GompContext {
 public:
  int worker_id() const noexcept { return wid_; }

  /// Spawn a child task with optional GNU-style priority (higher runs
  /// earlier when the scheduler picks from the global queue).
  template <typename F>
  void spawn(F&& f, int priority = 0);

  void taskwait();

  /// Cooperative region cancellation: new spawns are dropped, queued tasks
  /// drain without running, running bodies finish unless they poll
  /// cancelled(). The baseline has no taskgroup scoping, so the unit of
  /// cancellation is the whole parallel region (`omp cancel parallel`).
  void cancel() noexcept;
  bool cancelled() const noexcept;

 private:
  friend class GompRuntime;
  GompContext(GompRuntime* rt, int wid, detail::GTask* current) noexcept
      : rt_(rt), wid_(wid), current_(current) {}
  GompRuntime* rt_;
  int wid_;
  detail::GTask* current_;
};

class GompRuntime {
 public:
  struct Config {
    int num_threads = static_cast<int>(std::thread::hardware_concurrency());
    int numa_zones = 1;          // locality accounting only
    bool profile_events = false;
    int yield_after_idle = 16;   // oversubscription escape hatch
    /// When non-empty, the machine shape; overrides num_threads and
    /// numa_zones (same contract as xtask::Config::topology).
    Topology topology;
  };

  explicit GompRuntime(Config cfg);
  ~GompRuntime();

  GompRuntime(const GompRuntime&) = delete;
  GompRuntime& operator=(const GompRuntime&) = delete;

  /// One parallel region; `root` runs on worker 0 (the caller thread).
  /// Rethrows the first exception that escaped a task body (fail-fast:
  /// the region is cancelled as soon as the exception is captured); the
  /// runtime stays usable afterwards.
  void run(std::function<void(GompContext&)> root);

  Profiler& profiler() noexcept { return prof_; }
  const Topology& topology() const noexcept { return topo_; }
  const Config& config() const noexcept { return cfg_; }

 private:
  friend class GompContext;
  using GTask = detail::GTask;

  void enqueue(int wid, GTask* t);           // takes the global lock
  GTask* try_pop(int wid);                   // takes the global lock
  void execute(int wid, GTask* t);
  void finish(int wid, GTask* t);
  void deref(GTask* t) noexcept;
  void worker_loop(int wid, std::uint64_t gen);
  void thread_main(int id);

  Config cfg_;
  Topology topo_;
  Profiler prof_;

  // THE global task lock (§II-A). Guards the queue, the in-flight count,
  // and the barrier arrival state — exactly the entanglement the paper
  // removes.
  std::mutex task_lock_;
  std::deque<GTask*> queue_;   // priority-ordered insertion, FIFO per level
  std::int64_t in_flight_ = 0;
  int arrived_ = 0;
  std::uint64_t released_gen_ = 0;

  // Region-scope fault state (reset per run). The baseline keeps the
  // simple fail-fast model: first escaped exception cancels the region.
  ExceptionSlot region_err_;
  std::atomic<bool> cancel_{false};

  std::vector<std::thread> threads_;
  std::mutex region_mu_;
  std::condition_variable region_cv_;
  std::condition_variable done_cv_;
  std::uint64_t region_gen_ = 0;
  int workers_done_ = 0;
  bool shutdown_ = false;
};

template <typename F>
void GompContext::spawn(F&& f, int priority) {
  if (rt_->cancel_.load(std::memory_order_relaxed)) {
    rt_->prof_.thread(wid_).counters.ntasks_cancelled++;
    return;
  }
  ScopedEvent ev(rt_->prof_.thread(wid_), EventKind::kTaskCreate);
  auto* t = new detail::GTask;  // GOMP: malloc on every task creation
  t->fn = std::forward<F>(f);
  t->parent = current_;
  t->creator = static_cast<std::uint16_t>(wid_);
  t->priority = priority;
  if (current_ != nullptr) {
    current_->refs.fetch_add(1, std::memory_order_relaxed);
    current_->active_children.fetch_add(1, std::memory_order_relaxed);
  }
  rt_->prof_.thread(wid_).counters.ntasks_created++;
  rt_->enqueue(wid_, t);
}

}  // namespace xtask::gomp
