#include "gomp/lomp_runtime.hpp"

#include <algorithm>

namespace xtask::lomp {

namespace {

/// An explicit Topology overrides the scalar shape knobs (see
/// xtask::Config::topology — one source of truth for machine shape).
LompRuntime::Config normalized(LompRuntime::Config cfg) {
  if (cfg.topology.num_workers() > 0) {
    cfg.num_threads = cfg.topology.num_workers();
    cfg.numa_zones = cfg.topology.num_zones();
  }
  return cfg;
}

}  // namespace

LompRuntime::LompRuntime(Config cfg)
    : cfg_(normalized(std::move(cfg))),
      topo_(cfg_.topology.num_workers() > 0
                ? cfg_.topology
                : Topology::synthetic(cfg_.num_threads,
                                      std::max(1, cfg_.numa_zones))),
      prof_(cfg_.num_threads, cfg_.profile_events),
      barrier_(cfg_.num_threads),
      pool_(AllocatorMode::kMultiLevel, topo_.num_zones()) {
  XTASK_CHECK(cfg_.num_threads >= 1);
  if (cfg_.use_xqueue) {
    xq_ = std::make_unique<XQueueT<detail::LTask*>>(cfg_.num_threads,
                                                    cfg_.queue_capacity);
  } else {
    deques_.reserve(static_cast<std::size_t>(cfg_.num_threads));
    for (int i = 0; i < cfg_.num_threads; ++i)
      deques_.push_back(std::make_unique<detail::LockedDeque>());
  }
  workers_.reserve(static_cast<std::size_t>(cfg_.num_threads));
  for (int i = 0; i < cfg_.num_threads; ++i) {
    auto w = std::make_unique<detail::Worker>();
    w->id = i;
    w->rng = XorShift(cfg_.seed + static_cast<std::uint64_t>(i) * 0x2545f491);
    w->rr_cursor = static_cast<std::uint32_t>(i);
    w->alloc = std::make_unique<PoolAllocator<LTask>>(pool_, topo_.zone_of(i));
    workers_.push_back(std::move(w));
  }
  for (int i = 1; i < cfg_.num_threads; ++i)
    workers_[static_cast<std::size_t>(i)]->thread =
        std::thread([this, i] { thread_main(i); });
}

LompRuntime::~LompRuntime() {
  {
    std::lock_guard<std::mutex> lock(region_mu_);
    shutdown_ = true;
  }
  region_cv_.notify_all();
  for (auto& w : workers_)
    if (w->thread.joinable()) w->thread.join();
  workers_.clear();  // allocators drain into pool_ before it dies
}

void LompRuntime::thread_main(int id) {
  std::uint64_t my_gen = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(region_mu_);
      region_cv_.wait(lock,
                      [&] { return shutdown_ || region_gen_ > my_gen; });
      if (shutdown_ && region_gen_ <= my_gen) return;
      my_gen = region_gen_;
    }
    worker_loop(id, my_gen);
    {
      std::lock_guard<std::mutex> lock(region_mu_);
      ++workers_done_;
    }
    done_cv_.notify_one();
  }
}

void LompRuntime::run(std::function<void(LompContext&)> root) {
  std::uint64_t gen;
  {
    std::lock_guard<std::mutex> lock(region_mu_);
    workers_done_ = 0;
    gen = ++region_gen_;
  }
  // Fresh region: clear fault state while the helpers are still parked.
  cancel_.store(false, std::memory_order_relaxed);
  region_err_.reset();

  LTask* root_task = allocate_task(0, nullptr);
  root_task->emplace([fn = std::move(root)](LompContext& ctx) { fn(ctx); });
  region_cv_.notify_all();
  execute(0, root_task);
  worker_loop(0, gen);
  {
    std::unique_lock<std::mutex> lock(region_mu_);
    done_cv_.wait(lock,
                  [&] { return workers_done_ == cfg_.num_threads - 1; });
  }
  if (region_err_.pending()) {
    if (std::exception_ptr ep = region_err_.take()) std::rethrow_exception(ep);
  }
}

LompRuntime::LTask* LompRuntime::allocate_task(int wid, LTask* parent) {
  detail::Worker& w = *workers_[static_cast<std::size_t>(wid)];
  LTask* t = w.alloc->allocate();
  t->reset(parent, static_cast<std::uint16_t>(wid));
  if (parent != nullptr) {
    parent->refs.fetch_add(1, std::memory_order_relaxed);
    parent->active_children.fetch_add(1, std::memory_order_relaxed);
  }
  prof_.thread(wid).counters.ntasks_created++;
  barrier_.task_created();
  return t;
}

void LompRuntime::dispatch(int wid, LTask* t) {
  detail::Worker& w = *workers_[static_cast<std::size_t>(wid)];
  if (cfg_.use_xqueue) {
    const int target = static_cast<int>(
        w.rr_cursor % static_cast<std::uint32_t>(cfg_.num_threads));
    ++w.rr_cursor;
    if (xq_->push(wid, target, t)) {
      prof_.thread(wid).counters.ntasks_static_push++;
      return;
    }
    prof_.thread(wid).counters.ntasks_imm_exec++;
    // No tenant concept in the LOMP baseline; attribute untagged with the
    // refusing row's depth so the CSV total stays comparable.
    prof_.thread(wid).counters.overflow.note(
        0, xq_->consumer_occupancy(target));
    execute(wid, t);
    return;
  }
  deques_[static_cast<std::size_t>(wid)]->push(t);
  prof_.thread(wid).counters.ntasks_static_push++;
}

LompRuntime::LTask* LompRuntime::find_task(int wid) {
  detail::Worker& w = *workers_[static_cast<std::size_t>(wid)];
  if (cfg_.use_xqueue) return xq_->pop(wid);
  if (LTask* t = deques_[static_cast<std::size_t>(wid)]->pop_local())
    return t;
  if (cfg_.num_threads == 1) return nullptr;
  // Pull-based random stealing: a couple of attempts per scheduling point.
  for (int attempt = 0; attempt < 2; ++attempt) {
    const int victim = static_cast<int>(
        w.rng.below(static_cast<std::uint64_t>(cfg_.num_threads)));
    if (victim == wid) continue;
    if (LTask* t = deques_[static_cast<std::size_t>(victim)]->pop_steal()) {
      Counters& c = prof_.thread(wid).counters;
      if (topo_.local(wid, victim))
        c.nsteal_local++;
      else
        c.nsteal_remote++;
      return t;
    }
  }
  return nullptr;
}

void LompRuntime::execute(int wid, LTask* t) {
  {
    Counters& c = prof_.thread(wid).counters;
    if (t->creator == wid)
      c.ntasks_self++;
    else if (topo_.local(wid, t->creator))
      c.ntasks_local++;
    else
      c.ntasks_remote++;
  }
  {
    ScopedEvent ev(prof_.thread(wid), EventKind::kTask);
    // Cancelled region: drain (payload destroyed, body skipped) while the
    // completion protocol below keeps the task counter exact.
    const bool skip = cancel_.load(std::memory_order_relaxed);
    if (skip) prof_.thread(wid).counters.ntasks_cancelled++;
    LompContext ctx(this, wid, t, skip);
    try {
      t->invoke(t, ctx, skip);
    } catch (...) {
      // Fail-fast: first escaped exception cancels the region and is
      // rethrown from run().
      region_err_.try_store(std::current_exception());
      cancel_.store(true, std::memory_order_relaxed);
      prof_.thread(wid).counters.nexceptions++;
    }
  }
  finish(wid, t);
}

void LompRuntime::finish(int wid, LTask* t) {
  prof_.thread(wid).counters.ntasks_executed++;
  barrier_.task_finished();
  LTask* parent = t->parent;
  deref(wid, t);
  if (parent != nullptr) {
    parent->active_children.fetch_sub(1, std::memory_order_release);
    deref(wid, parent);
  }
}

void LompRuntime::deref(int wid, LTask* t) noexcept {
  if (t->refs.fetch_sub(1, std::memory_order_acq_rel) == 1)
    workers_[static_cast<std::size_t>(wid)]->alloc->release(t);
}

void LompRuntime::worker_loop(int wid, std::uint64_t gen) {
  bool arrived = false;
  int consecutive_idle = 0;
  std::uint64_t stall_start = 0;
  ThreadProfile& prof = prof_.thread(wid);

  for (;;) {
    if (LTask* t = find_task(wid)) {
      if (stall_start != 0) {
        prof.record(EventKind::kStall, stall_start, rdtscp());
        stall_start = 0;
      }
      consecutive_idle = 0;
      execute(wid, t);
      continue;
    }
    if (stall_start == 0 && prof_.events_enabled()) stall_start = rdtscp();
    if (!arrived) {
      barrier_.arrive(gen);
      arrived = true;
    }
    if (barrier_.poll(gen)) {
      if (stall_start != 0)
        prof.record(EventKind::kStall, stall_start, rdtscp());
      return;
    }
    if (cfg_.yield_after_idle > 0 &&
        ++consecutive_idle >= cfg_.yield_after_idle) {
      std::this_thread::yield();
      consecutive_idle = 0;
    }
  }
}

void LompContext::cancel() noexcept {
  rt_->cancel_.store(true, std::memory_order_relaxed);
}

bool LompContext::cancelled() const noexcept {
  return rt_->cancel_.load(std::memory_order_relaxed);
}

void LompContext::taskwait() {
  if (current_ == nullptr) return;
  if (current_->active_children.load(std::memory_order_acquire) == 0) return;
  ScopedEvent ev(rt_->prof_.thread(wid_), EventKind::kTaskWait);
  int consecutive_idle = 0;
  while (current_->active_children.load(std::memory_order_acquire) != 0) {
    if (auto* t = rt_->find_task(wid_)) {
      consecutive_idle = 0;
      rt_->execute(wid_, t);
      continue;
    }
    if (rt_->cfg_.yield_after_idle > 0 &&
        ++consecutive_idle >= rt_->cfg_.yield_after_idle) {
      std::this_thread::yield();
      consecutive_idle = 0;
    }
  }
}

}  // namespace xtask::lomp
