// Type-erased runtime handle: the one surface every backend of this
// reproduction exposes — run / spawn / taskwait / worker_id / stats — so
// benchmarks, the test matrix, the chaos harness, trace export, and the
// examples can hold "a runtime" without naming its concrete type. The
// BOTS kernels are templates over a context type; instantiating them with
// AnyContext runs the identical kernel source on whichever backend the
// registry constructed.
//
// Concrete runtime construction happens ONLY in RuntimeRegistry
// (registry.hpp): nothing outside the registry invokes a
// Runtime/GompRuntime/LompRuntime constructor.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <typeinfo>
#include <utility>

#include "core/topology.hpp"
#include "prof/profiler.hpp"

namespace xtask {

class AnyContext;

/// Type-erased task body: what AnyContext::spawn and AnyRuntime::run
/// ultimately carry across the backend boundary.
using AnyBody = std::function<void(AnyContext&)>;

namespace detail_any {

/// One function table per concrete context type (TaskContext,
/// gomp::GompContext, lomp::LompContext, bots::SerialContext, ...).
struct ContextVTable {
  int (*worker_id)(void* ctx);
  void (*spawn)(void* ctx, AnyBody body);
  void (*taskwait)(void* ctx);
};

}  // namespace detail_any

/// Handle passed to type-erased task bodies. Mirrors the common context
/// surface the kernels rely on; valid only during the task invocation it
/// was created for (same lifetime rule as the concrete contexts).
class AnyContext {
 public:
  AnyContext(void* ctx, const detail_any::ContextVTable* vt) noexcept
      : ctx_(ctx), vt_(vt) {}

  int worker_id() const { return vt_->worker_id(ctx_); }

  /// Spawn a child task; `f` must be invocable as f(AnyContext&). The
  /// closure is carried in a std::function, so — unlike the concrete
  /// contexts' inline payloads — captures of any size are accepted.
  template <typename F>
  void spawn(F&& f) {
    vt_->spawn(ctx_, AnyBody(std::forward<F>(f)));
  }

  /// Wait for all children spawned by the current task, executing other
  /// tasks while waiting (OpenMP taskwait semantics on every backend).
  void taskwait() { vt_->taskwait(ctx_); }

 private:
  void* ctx_;
  const detail_any::ContextVTable* vt_;
};

namespace detail_any {

template <typename Ctx>
struct ContextModel {
  static int worker_id(void* c) { return static_cast<Ctx*>(c)->worker_id(); }
  static void taskwait(void* c) { static_cast<Ctx*>(c)->taskwait(); }
  static void spawn(void* c, AnyBody body) {
    // The wrapper capture is one std::function (32 bytes on libstdc++),
    // comfortably inside every backend's inline task payload.
    static_cast<Ctx*>(c)->spawn([body = std::move(body)](Ctx& inner) {
      AnyContext any(&inner, &kVTable);
      body(any);
    });
  }
  static constexpr ContextVTable kVTable{&worker_id, &spawn, &taskwait};
};

}  // namespace detail_any

/// An owning, movable, type-erased runtime. Obtained from
/// RuntimeRegistry::make("spec"); empty when default-constructed.
class AnyRuntime {
 public:
  /// Implementation interface; public so the registry's backend models
  /// (including ad-hoc ones like the serial reference) can derive from it,
  /// but only RuntimeRegistry constructs AnyRuntime instances.
  struct Model {
    virtual ~Model() = default;
    virtual void run(AnyBody root) = 0;
    virtual const Topology& topology() const noexcept = 0;
    virtual Profiler& profiler() const noexcept = 0;
    virtual const std::type_info& type() const noexcept = 0;
    virtual void* raw() noexcept = 0;
  };

  /// Generic model over any backend exposing run/topology/profiler with a
  /// context type `Ctx`.
  template <typename RT, typename Ctx>
  struct ModelT final : Model {
    explicit ModelT(std::unique_ptr<RT> runtime) : rt(std::move(runtime)) {}
    void run(AnyBody root) override {
      rt->run([root = std::move(root)](Ctx& c) {
        AnyContext any(&c, &detail_any::ContextModel<Ctx>::kVTable);
        root(any);
      });
    }
    const Topology& topology() const noexcept override {
      return rt->topology();
    }
    Profiler& profiler() const noexcept override { return rt->profiler(); }
    const std::type_info& type() const noexcept override {
      return typeid(RT);
    }
    void* raw() noexcept override { return rt.get(); }
    std::unique_ptr<RT> rt;
  };

  AnyRuntime() = default;
  AnyRuntime(AnyRuntime&&) = default;
  AnyRuntime& operator=(AnyRuntime&&) = default;

  explicit operator bool() const noexcept { return impl_ != nullptr; }

  /// Execute one parallel region rooted at `root` (worker 0 = the calling
  /// thread on every backend). Rethrows the first escaped task exception.
  void run(AnyBody root) { impl_->run(std::move(root)); }

  const Topology& topology() const noexcept { return impl_->topology(); }
  int num_threads() const noexcept { return topology().num_workers(); }
  Profiler& profiler() noexcept { return impl_->profiler(); }
  const Profiler& profiler() const noexcept { return impl_->profiler(); }

  /// Stats snapshot: lifetime counters summed over all workers.
  Counters total_counters() const { return impl_->profiler().total_counters(); }

  /// Canonical backend spec this runtime was constructed from
  /// (BackendSpec::parse round-trips it).
  const std::string& spec() const noexcept { return spec_; }

  /// Human-readable one-liner: canonical spec plus the resolved topology.
  std::string describe() const {
    return spec_ + " [" + topology().describe() + "]";
  }

  /// Concrete-type escape hatch for consumers that need backend-specific
  /// surface (dependence spawns, watchdog stats, debug snapshots):
  /// returns nullptr when this handle wraps a different backend.
  template <typename RT>
  RT* get_if() noexcept {
    return impl_ != nullptr && impl_->type() == typeid(RT)
               ? static_cast<RT*>(impl_->raw())
               : nullptr;
  }

 private:
  friend class RuntimeRegistry;
  AnyRuntime(std::unique_ptr<Model> impl, std::string spec)
      : impl_(std::move(impl)), spec_(std::move(spec)) {}

  std::unique_ptr<Model> impl_;
  std::string spec_;
};

}  // namespace xtask
