// Runtime-backend registry: the single place where concrete runtimes are
// constructed and where their defaults live. Everything else — benchmarks,
// tests, examples, scripts — names a backend with a spec string:
//
//   "gomp"                                  baseline, all defaults
//   "lomp:threads=8"                        LOMP-like, 8 workers
//   "xlomp"                                 LOMP structure over XQueue
//   "xtask:dlb=naws,zones=4,qcap=8192"      paper runtime, NA-WS DLB
//   "xtask:barrier=central,alloc=malloc"    the XGOMP ablation point
//   "serial"                                inline-execution reference
//
// Grammar: `backend[:key=val[,key=val]*]`. Unknown backends and unknown or
// malformed keys throw std::invalid_argument — a typo'd spec fails loudly
// instead of silently benchmarking the wrong configuration.
//
// Environment overrides (resolved here, nowhere else):
//   XTASK_BACKEND   replaces the whole spec in make_env()
//   XTASK_TOPOLOGY  machine-shape spec (Topology::parse grammar, "8x24");
//                   beats topo=/threads=/zones= keys in any spec
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bots/serial_ctx.hpp"
#include "core/runtime.hpp"
#include "gomp/gomp_runtime.hpp"
#include "gomp/lomp_runtime.hpp"
#include "registry/any_runtime.hpp"

namespace xtask {

/// A parsed `backend[:key=val,...]` spec. Pure syntax: key validation
/// happens when a backend consumes the spec (RuntimeRegistry::make).
struct BackendSpec {
  std::string backend;
  /// Options in spec order; later duplicates win (find returns the last).
  std::vector<std::pair<std::string, std::string>> options;

  /// Parse a spec string. Throws std::invalid_argument on empty backend
  /// names and options that are not `key=value`.
  static BackendSpec parse(const std::string& spec);

  /// Canonical spec string; BackendSpec::parse round-trips it.
  std::string describe() const;

  /// Last value bound to `key`, or nullptr when absent.
  const std::string* find(const std::string& key) const noexcept;

  /// Append or overwrite `key` (overwrites the last binding if present).
  void set(const std::string& key, std::string value);
};

/// A parsed per-tenant admission spec for the serve front-end
/// (src/serve): name plus token-bucket and quota parameters.
///
///   `<name>:rate=<r>,quota=<q>[,burst=<b>][,prio=<0..7>]`
///
/// An optional `tenant=` prefix is accepted (`tenant=free:rate=...`), and
/// parse_list splits `;`-separated tenants:
///
///   "free:rate=1000,quota=64;paid:rate=10000,quota=512,prio=3"
///
/// Same diagnostics contract as BackendSpec: unknown keys, malformed
/// values, and missing required keys throw std::invalid_argument naming
/// the known tenant key set (rate|quota|burst|prio).
struct TenantSpec {
  std::string name;
  std::uint64_t rate = 0;   // admitted requests/second (token refill rate)
  std::uint64_t quota = 0;  // max in-flight (admitted, not yet completed)
  std::uint64_t burst = 0;  // token-bucket depth; 0 = default (rate/8)
  int priority = 1;         // 0..7; the lowest tenant is shed first

  /// Parse one tenant spec. `rate` and `quota` are required.
  static TenantSpec parse(const std::string& spec);

  /// Parse a `;`-separated tenant list; rejects duplicate names.
  static std::vector<TenantSpec> parse_list(const std::string& spec);

  /// Canonical spec string; TenantSpec::parse round-trips it and
  /// describe() is a fixpoint (all keys emitted, burst kept verbatim).
  std::string describe() const;

  /// Bucket depth with the default applied: burst, or max(1, rate/8).
  std::uint64_t effective_burst() const noexcept {
    if (burst != 0) return burst;
    const std::uint64_t b = rate / 8;
    return b == 0 ? 1 : b;
  }
};

/// A parsed cross-process transport spec for the serve front-end
/// (src/serve/ipc): the shared-memory segment geometry a server publishes
/// and a client must agree on.
///
///   `ipc=shm,seg=<name>[,sessions=<1..64>][,ring=<8..65536>]
///        [,cmpl=<8..65536>][,lease_ms=<1..10000>]`
///
/// `ipc` (transport kind; only `shm` today) and `seg` (segment name,
/// [A-Za-z0-9_.-]) are required. Ring capacities are rounded up to powers
/// of two; `cmpl=0` (the default) means 2x the submit ring. Same
/// diagnostics contract as TenantSpec: unknown keys, malformed values,
/// and missing required keys throw std::invalid_argument naming the known
/// key set.
struct TransportSpec {
  std::string kind;        // "shm"
  std::string seg;         // segment name (shm object: "/xtask_<seg>")
  std::uint32_t sessions = 8;
  std::uint32_t ring = 256;    // submit-ring slots per session
  std::uint32_t cmpl = 0;      // completion-ring slots; 0 = 2*ring
  std::uint32_t lease_ms = 100;

  static TransportSpec parse(const std::string& spec);

  /// Canonical spec string; parse round-trips it and describe() is a
  /// fixpoint (all keys emitted, cmpl kept verbatim).
  std::string describe() const;

  /// The POSIX shm object name for this spec.
  std::string shm_name() const { return "/xtask_" + seg; }

  std::uint32_t effective_cmpl() const noexcept {
    return cmpl != 0 ? cmpl : 2 * ring;
  }
};

/// THE defaults table. Every constant that used to drift between
/// bench/bench_bots.cpp, the tests, and the examples lives here once.
struct RegistryDefaults {
  /// Per-SPSC-queue capacity for benchmark-grade runs. Generous on
  /// purpose: overflow pushes execute inline and recurse, and at benchmark
  /// task counts a deep inline cascade can exhaust the stack.
  static constexpr std::uint32_t kQueueCapacity = 8192;

  /// Synthetic NUMA zones for a worker count: two virtual zones once the
  /// team is big enough to exercise the NUMA-aware code paths, one below.
  static int zones_for(int threads) noexcept { return threads >= 4 ? 2 : 1; }

  /// Worker count when a spec names none: the host's concurrency.
  static int default_threads() noexcept {
    const unsigned hc = std::thread::hardware_concurrency();
    return hc == 0 ? 1 : static_cast<int>(hc);
  }
};

/// A named backend configuration, e.g. {"xtask-naws", "xtask:dlb=naws"}.
struct NamedConfig {
  std::string name;
  std::string spec;
};

/// Constructs runtimes from spec strings. All static — the registry holds
/// no state; the defaults table and the spec grammar are the product.
class RuntimeRegistry {
 public:
  /// Build a type-erased runtime from a spec string / parsed spec.
  /// Throws std::invalid_argument on unknown backends, unknown keys, or
  /// malformed values.
  static AnyRuntime make(const std::string& spec);
  static AnyRuntime make(const BackendSpec& spec);

  /// Like make(), but `XTASK_BACKEND` (when set and non-empty) replaces
  /// `fallback_spec` wholesale.
  static AnyRuntime make_env(const std::string& fallback_spec);

  /// Registered backend names: serial, gomp, lomp, xlomp, xtask.
  static std::vector<std::string> backends();

  /// The benchmark-protocol configurations (the columns of bench_bots and
  /// bench/run_bench.py): name -> spec.
  static std::vector<NamedConfig> bench_configs();

  /// One tiny-but-real spec per interesting point of the backend space;
  /// the CI smoke matrix runs every entry.
  static std::vector<std::string> smoke_specs();

  // --- concrete-type construction ---------------------------------------
  // The registry is the one construction site for runtimes. Consumers that
  // need programmatic Config surface the spec grammar cannot express
  // (watchdog handler callbacks, profiler event capture with custom
  // seeds, ...) go through these escape hatches instead of a constructor.
  static std::unique_ptr<Runtime> make_xtask(Config cfg);
  static std::unique_ptr<gomp::GompRuntime> make_gomp(
      gomp::GompRuntime::Config cfg);
  static std::unique_ptr<lomp::LompRuntime> make_lomp(
      lomp::LompRuntime::Config cfg);

  // --- spec -> concrete Config translation ------------------------------
  // Exposed so tests can assert what a spec resolves to without paying for
  // runtime construction. Each validates its backend's key set and
  // resolves the topology (XTASK_TOPOLOGY > topo= > threads=/zones= >
  // defaults).
  static Config xtask_config(const BackendSpec& spec);
  static gomp::GompRuntime::Config gomp_config(const BackendSpec& spec);
  /// Handles both `lomp` and `xlomp` (use_xqueue defaults to the backend).
  static lomp::LompRuntime::Config lomp_config(const BackendSpec& spec);

  /// Run `fn(rt)` with the *concrete* runtime the spec names — the
  /// zero-type-erasure path for timing loops. `fn` is instantiated for
  /// every threaded backend (Runtime, GompRuntime, LompRuntime), so it
  /// must compile against all three; `serial` is not offered here (its
  /// runtime has no profiler surface — use make()).
  template <typename Fn>
  static void with(const BackendSpec& spec, Fn&& fn) {
    if (spec.backend == "xtask") {
      Runtime rt(xtask_config(spec));
      fn(rt);
    } else if (spec.backend == "gomp") {
      gomp::GompRuntime rt(gomp_config(spec));
      fn(rt);
    } else if (spec.backend == "lomp" || spec.backend == "xlomp") {
      lomp::LompRuntime rt(lomp_config(spec));
      fn(rt);
    } else {
      throw std::invalid_argument("with(): unsupported backend '" +
                                  spec.backend + "' (use make())");
    }
  }

  template <typename Fn>
  static void with(const std::string& spec, Fn&& fn) {
    with(BackendSpec::parse(spec), std::forward<Fn>(fn));
  }

 private:
  /// Wrap an owned concrete runtime in the type-erased handle (the only
  /// code path that touches AnyRuntime's private constructor).
  template <typename RT, typename Ctx>
  static AnyRuntime wrap(std::unique_ptr<RT> rt, std::string canonical_spec);
};

}  // namespace xtask
