#include "registry/registry.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <limits>

#include "core/steal_protocol.hpp"

namespace xtask {
namespace {

[[noreturn]] void bad_value(const BackendSpec& spec, const std::string& key,
                            const std::string& value, const char* want) {
  throw std::invalid_argument("bad value '" + value + "' for key '" + key +
                              "' in spec '" + spec.describe() + "' (want " +
                              want + ")");
}

long long parse_ll(const BackendSpec& spec, const std::string& key,
                   const std::string& value, long long lo, long long hi) {
  if (value.empty() || value.size() > 18) bad_value(spec, key, value, "integer");
  long long v = 0;
  for (char c : value) {
    if (c < '0' || c > '9') bad_value(spec, key, value, "integer");
    v = v * 10 + (c - '0');
  }
  return std::clamp(v, lo, hi);
}

double parse_double(const BackendSpec& spec, const std::string& key,
                    const std::string& value) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0')
    bad_value(spec, key, value, "number");
  return v;
}

bool parse_bool(const BackendSpec& spec, const std::string& key,
                const std::string& value) {
  if (value == "1" || value == "true" || value == "on") return true;
  if (value == "0" || value == "false" || value == "off") return false;
  bad_value(spec, key, value, "0|1");
}

/// XQueue capacities must be powers of two; round up and keep them sane.
std::uint32_t parse_qcap(const BackendSpec& spec, const std::string& key,
                         const std::string& value) {
  const auto v = static_cast<std::uint32_t>(
      parse_ll(spec, key, value, 2, 1u << 24));
  std::uint32_t cap = 2;
  while (cap < v) cap <<= 1;
  return cap;
}

/// Reject keys outside `allowed` so typos fail loudly.
void check_keys(const BackendSpec& spec,
                std::initializer_list<const char*> allowed) {
  for (const auto& [key, value] : spec.options) {
    bool ok = false;
    for (const char* a : allowed) ok = ok || key == a;
    if (!ok) {
      std::string want;
      for (const char* a : allowed) {
        if (!want.empty()) want += "|";
        want += a;
      }
      throw std::invalid_argument("unknown key '" + key + "' for backend '" +
                                  spec.backend + "' (known: " +
                                  (want.empty() ? "none" : want) + ")");
    }
  }
}

const char* env_nonempty(const char* name) {
  const char* v = std::getenv(name);
  return (v != nullptr && *v != '\0') ? v : nullptr;
}

/// Resolve the machine shape for a spec: XTASK_TOPOLOGY beats the topo=
/// key, which beats threads=/zones=, which beat the defaults table.
Topology resolve_topology(const BackendSpec& spec, int max_threads) {
  std::string shape;
  if (const char* env = env_nonempty("XTASK_TOPOLOGY")) {
    shape = env;
  } else if (const std::string* topo = spec.find("topo")) {
    shape = *topo;
  }
  if (!shape.empty()) {
    Topology t = Topology::parse(shape, RegistryDefaults::default_threads());
    if (t.num_workers() > max_threads)
      throw std::invalid_argument("topology '" + shape + "' asks for " +
                                  std::to_string(t.num_workers()) +
                                  " workers; backend '" + spec.backend +
                                  "' supports at most " +
                                  std::to_string(max_threads));
    return t;
  }
  int threads = RegistryDefaults::default_threads();
  if (const std::string* v = spec.find("threads"))
    threads = static_cast<int>(parse_ll(spec, "threads", *v, 1, max_threads));
  threads = std::min(threads, max_threads);
  int zones = RegistryDefaults::zones_for(threads);
  if (const std::string* v = spec.find("zones"))
    zones = static_cast<int>(parse_ll(spec, "zones", *v, 1, threads));
  return Topology::synthetic(threads, zones);
}

/// The serial reference does not have a team, a topology, or a profiler of
/// its own; this model supplies inert ones so the AnyRuntime surface works.
struct SerialModel final : AnyRuntime::Model {
  bots::SerialRuntime rt;
  Topology topo = Topology::synthetic(1, 1);
  mutable Profiler prof{1, false};

  void run(AnyBody root) override {
    rt.run([&root](bots::SerialContext& c) {
      AnyContext any(
          &c, &detail_any::ContextModel<bots::SerialContext>::kVTable);
      root(any);
    });
  }
  const Topology& topology() const noexcept override { return topo; }
  Profiler& profiler() const noexcept override { return prof; }
  const std::type_info& type() const noexcept override {
    return typeid(bots::SerialRuntime);
  }
  void* raw() noexcept override { return &rt; }
};

}  // namespace

template <typename RT, typename Ctx>
AnyRuntime RuntimeRegistry::wrap(std::unique_ptr<RT> rt,
                                 std::string canonical_spec) {
  return AnyRuntime(
      std::make_unique<AnyRuntime::ModelT<RT, Ctx>>(std::move(rt)),
      std::move(canonical_spec));
}

// --------------------------------------------------------------------------
// BackendSpec

BackendSpec BackendSpec::parse(const std::string& spec) {
  BackendSpec out;
  const std::size_t colon = spec.find(':');
  out.backend = spec.substr(0, colon);
  if (out.backend.empty())
    throw std::invalid_argument("empty backend name in spec '" + spec + "'");
  if (colon == std::string::npos) return out;

  std::size_t pos = colon + 1;
  while (pos <= spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string opt = spec.substr(pos, comma - pos);
    const std::size_t eq = opt.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= opt.size())
      throw std::invalid_argument("malformed option '" + opt + "' in spec '" +
                                  spec + "' (want key=value)");
    out.options.emplace_back(opt.substr(0, eq), opt.substr(eq + 1));
    pos = comma + 1;
  }
  return out;
}

std::string BackendSpec::describe() const {
  std::string out = backend;
  char sep = ':';
  for (const auto& [key, value] : options) {
    out += sep;
    out += key;
    out += '=';
    out += value;
    sep = ',';
  }
  return out;
}

const std::string* BackendSpec::find(const std::string& key) const noexcept {
  const std::string* hit = nullptr;
  for (const auto& [k, v] : options)
    if (k == key) hit = &v;
  return hit;
}

void BackendSpec::set(const std::string& key, std::string value) {
  for (auto it = options.rbegin(); it != options.rend(); ++it) {
    if (it->first == key) {
      it->second = std::move(value);
      return;
    }
  }
  options.emplace_back(key, std::move(value));
}

// --------------------------------------------------------------------------
// TenantSpec

namespace {

constexpr const char* kTenantKnownKeys = "rate|quota|burst|prio";

[[noreturn]] void bad_tenant_value(const std::string& tenant,
                                   const std::string& key,
                                   const std::string& value,
                                   const char* want) {
  throw std::invalid_argument("bad value '" + value + "' for key '" + key +
                              "' in tenant '" + tenant + "' (want " + want +
                              ")");
}

std::uint64_t tenant_u64(const std::string& tenant, const std::string& key,
                         const std::string& value, std::uint64_t lo,
                         std::uint64_t hi) {
  if (value.empty() || value.size() > 18)
    bad_tenant_value(tenant, key, value, "integer");
  std::uint64_t v = 0;
  for (char c : value) {
    if (c < '0' || c > '9') bad_tenant_value(tenant, key, value, "integer");
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return std::clamp(v, lo, hi);
}

}  // namespace

TenantSpec TenantSpec::parse(const std::string& spec) {
  // Accept the registry-key form `tenant=<name>:...` as a convenience.
  std::string body = spec;
  if (body.rfind("tenant=", 0) == 0) body = body.substr(7);

  TenantSpec out;
  const std::size_t colon = body.find(':');
  out.name = body.substr(0, colon);
  if (out.name.empty() ||
      out.name.find_first_of(",;=") != std::string::npos)
    throw std::invalid_argument("bad tenant name in spec '" + spec +
                                "' (want <name>:rate=<r>,quota=<q>)");
  if (colon == std::string::npos)
    throw std::invalid_argument("tenant '" + out.name +
                                "' missing required keys rate and quota "
                                "(known: " + std::string(kTenantKnownKeys) +
                                ")");
  bool have_rate = false;
  bool have_quota = false;
  std::size_t pos = colon + 1;
  while (pos <= body.size()) {
    std::size_t comma = body.find(',', pos);
    if (comma == std::string::npos) comma = body.size();
    const std::string opt = body.substr(pos, comma - pos);
    const std::size_t eq = opt.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= opt.size())
      throw std::invalid_argument("malformed option '" + opt +
                                  "' in tenant '" + out.name +
                                  "' (want key=value)");
    const std::string key = opt.substr(0, eq);
    const std::string value = opt.substr(eq + 1);
    if (key == "rate") {
      out.rate = tenant_u64(out.name, key, value, 1, 1'000'000'000);
      have_rate = true;
    } else if (key == "quota") {
      out.quota = tenant_u64(out.name, key, value, 1, 1'000'000'000);
      have_quota = true;
    } else if (key == "burst") {
      // 0 keeps the default (rate/8); see effective_burst().
      out.burst = tenant_u64(out.name, key, value, 0, 1'000'000'000);
    } else if (key == "prio") {
      out.priority =
          static_cast<int>(tenant_u64(out.name, key, value, 0, 7));
    } else {
      // Same diagnostics shape as check_keys: typo'd keys fail loudly and
      // name the whole known key set.
      throw std::invalid_argument("unknown key '" + key + "' for tenant '" +
                                  out.name + "' (known: " +
                                  std::string(kTenantKnownKeys) + ")");
    }
    pos = comma + 1;
  }
  if (!have_rate || !have_quota)
    throw std::invalid_argument(
        "tenant '" + out.name + "' missing required key '" +
        (have_rate ? "quota" : "rate") + "' (known: " +
        std::string(kTenantKnownKeys) + ")");
  return out;
}

std::vector<TenantSpec> TenantSpec::parse_list(const std::string& spec) {
  std::vector<TenantSpec> out;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t semi = spec.find(';', pos);
    if (semi == std::string::npos) semi = spec.size();
    const std::string one = spec.substr(pos, semi - pos);
    if (!one.empty()) out.push_back(parse(one));
    pos = semi + 1;
  }
  if (out.empty())
    throw std::invalid_argument("empty tenant list in spec '" + spec + "'");
  for (std::size_t i = 0; i < out.size(); ++i)
    for (std::size_t j = i + 1; j < out.size(); ++j)
      if (out[i].name == out[j].name)
        throw std::invalid_argument("duplicate tenant '" + out[i].name +
                                    "' in spec '" + spec + "'");
  return out;
}

std::string TenantSpec::describe() const {
  return name + ":rate=" + std::to_string(rate) +
         ",quota=" + std::to_string(quota) +
         ",burst=" + std::to_string(burst) +
         ",prio=" + std::to_string(priority);
}

// --------------------------------------------------------------------------
// TransportSpec

namespace {

constexpr const char* kTransportKnownKeys =
    "ipc|seg|sessions|ring|cmpl|lease_ms";

std::uint32_t round_up_pow2_u32(std::uint32_t v) noexcept {
  if (v < 2) return 2;
  --v;
  v |= v >> 1;
  v |= v >> 2;
  v |= v >> 4;
  v |= v >> 8;
  v |= v >> 16;
  return v + 1;
}

}  // namespace

TransportSpec TransportSpec::parse(const std::string& spec) {
  TransportSpec out;
  out.kind.clear();
  bool have_seg = false;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string opt = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (opt.empty()) continue;
    const std::size_t eq = opt.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= opt.size())
      throw std::invalid_argument("malformed option '" + opt +
                                  "' in transport spec '" + spec +
                                  "' (want key=value)");
    const std::string key = opt.substr(0, eq);
    const std::string value = opt.substr(eq + 1);
    if (key == "ipc") {
      if (value != "shm")
        bad_tenant_value("<transport>", key, value, "shm");
      out.kind = value;
    } else if (key == "seg") {
      if (value.find_first_not_of(
              "abcdefghijklmnopqrstuvwxyz"
              "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_.-") !=
          std::string::npos)
        bad_tenant_value("<transport>", key, value, "[A-Za-z0-9_.-]+");
      out.seg = value;
      have_seg = true;
    } else if (key == "sessions") {
      out.sessions = static_cast<std::uint32_t>(
          tenant_u64("<transport>", key, value, 1, 64));
    } else if (key == "ring") {
      out.ring = round_up_pow2_u32(static_cast<std::uint32_t>(
          tenant_u64("<transport>", key, value, 8, 65536)));
    } else if (key == "cmpl") {
      const auto v = tenant_u64("<transport>", key, value, 0, 65536);
      out.cmpl = v == 0 ? 0
                        : round_up_pow2_u32(static_cast<std::uint32_t>(
                              std::max<std::uint64_t>(v, 8)));
    } else if (key == "lease_ms") {
      out.lease_ms = static_cast<std::uint32_t>(
          tenant_u64("<transport>", key, value, 1, 10000));
    } else {
      throw std::invalid_argument("unknown key '" + key +
                                  "' in transport spec '" + spec +
                                  "' (known: " +
                                  std::string(kTransportKnownKeys) + ")");
    }
  }
  if (out.kind.empty() || !have_seg)
    throw std::invalid_argument(
        "transport spec '" + spec + "' missing required key '" +
        (out.kind.empty() ? "ipc" : "seg") + "' (known: " +
        std::string(kTransportKnownKeys) + ")");
  return out;
}

std::string TransportSpec::describe() const {
  return "ipc=" + kind + ",seg=" + seg +
         ",sessions=" + std::to_string(sessions) +
         ",ring=" + std::to_string(ring) + ",cmpl=" + std::to_string(cmpl) +
         ",lease_ms=" + std::to_string(lease_ms);
}

// --------------------------------------------------------------------------
// Spec -> Config translation (one function per backend owns its key set).

Config RuntimeRegistry::xtask_config(const BackendSpec& spec) {
  check_keys(spec, {"threads", "zones", "topo", "qcap", "barrier", "dlb",
                    "dmode", "alloc", "tint", "nvictim", "nsteal", "plocal",
                    "seed", "wdog", "yield", "profile", "hb", "quarantine",
                    "graph", "greplays", "trace", "tracefile"});
  Config cfg;
  cfg.topology = resolve_topology(spec, steal::kMaxWorkerId);
  cfg.queue_capacity = RegistryDefaults::kQueueCapacity;
  if (const std::string* v = spec.find("qcap"))
    cfg.queue_capacity = parse_qcap(spec, "qcap", *v);
  if (const std::string* v = spec.find("barrier")) {
    if (*v == "tree") cfg.barrier = BarrierKind::kTree;
    else if (*v == "central") cfg.barrier = BarrierKind::kCentral;
    else if (*v == "auto") cfg.barrier = BarrierKind::kAuto;
    else bad_value(spec, "barrier", *v, "tree|central|auto");
  }
  if (const std::string* v = spec.find("dlb")) {
    if (*v == "none") cfg.dlb = DlbKind::kNone;
    else if (*v == "narp") cfg.dlb = DlbKind::kRedirectPush;
    else if (*v == "naws") cfg.dlb = DlbKind::kWorkSteal;
    else if (*v == "adaptive") cfg.dlb = DlbKind::kAdaptive;
    else bad_value(spec, "dlb", *v, "none|narp|naws|adaptive");
  }
  // The adaptive layer self-selects its barrier unless the spec pins one:
  // the runtime resolves kAuto by the same static shape gate the mode
  // controller uses (small/oversubscribed team -> central, scale -> tree).
  if (cfg.dlb == DlbKind::kAdaptive && spec.find("barrier") == nullptr)
    cfg.barrier = BarrierKind::kAuto;
  if (const std::string* v = spec.find("dmode")) {
    if (*v == "auto") cfg.dispatch_mode = DispatchModePolicy::kAuto;
    else if (*v == "messaging")
      cfg.dispatch_mode = DispatchModePolicy::kMessaging;
    else if (*v == "direct") cfg.dispatch_mode = DispatchModePolicy::kDirect;
    else bad_value(spec, "dmode", *v, "auto|messaging|direct");
    if (cfg.dlb != DlbKind::kAdaptive)
      throw std::invalid_argument(
          "spec '" + spec.describe() +
          "': dmode requires dlb=adaptive (the dispatch-mode controller is "
          "part of the adaptive layer)");
  }
  if (const std::string* v = spec.find("alloc")) {
    if (*v == "multi") cfg.allocator = AllocatorMode::kMultiLevel;
    else if (*v == "malloc") cfg.allocator = AllocatorMode::kMalloc;
    else bad_value(spec, "alloc", *v, "multi|malloc");
  }
  if (const std::string* v = spec.find("tint"))
    cfg.dlb_cfg.t_interval =
        static_cast<std::uint64_t>(parse_ll(spec, "tint", *v, 1, 1'000'000'000));
  if (const std::string* v = spec.find("nvictim"))
    cfg.dlb_cfg.n_victim = static_cast<int>(parse_ll(spec, "nvictim", *v, 1, 1024));
  if (const std::string* v = spec.find("nsteal"))
    cfg.dlb_cfg.n_steal = static_cast<int>(parse_ll(spec, "nsteal", *v, 1, 1024));
  if (const std::string* v = spec.find("plocal")) {
    cfg.dlb_cfg.p_local = parse_double(spec, "plocal", *v);
    if (cfg.dlb_cfg.p_local < 0.0 || cfg.dlb_cfg.p_local > 1.0)
      bad_value(spec, "plocal", *v, "number in [0,1]");
  }
  if (const std::string* v = spec.find("seed"))
    cfg.seed = static_cast<std::uint64_t>(
        parse_ll(spec, "seed", *v, 0, std::numeric_limits<long long>::max()));
  if (const std::string* v = spec.find("wdog"))
    cfg.watchdog_timeout_ms = static_cast<std::uint64_t>(
        parse_ll(spec, "wdog", *v, 0, 86'400'000));
  if (const std::string* v = spec.find("yield"))
    cfg.yield_after_idle =
        static_cast<int>(parse_ll(spec, "yield", *v, 0, 1'000'000));
  if (const std::string* v = spec.find("profile"))
    cfg.profile_events = parse_bool(spec, "profile", *v);
  if (const std::string* v = spec.find("hb"))
    cfg.heartbeat_ms = static_cast<std::uint64_t>(
        parse_ll(spec, "hb", *v, 0, 86'400'000));
  if (const std::string* v = spec.find("quarantine"))
    cfg.quarantine = parse_bool(spec, "quarantine", *v);
  if (cfg.quarantine && cfg.heartbeat_ms == 0)
    throw std::invalid_argument(
        "spec '" + spec.describe() + "': quarantine=on requires hb=<ms> > 0 "
        "(the recovery path is driven by the heartbeat monitor)");
  if (const std::string* v = spec.find("graph")) {
    if (*v == "off") cfg.graph_mode = GraphMode::kOff;
    else if (*v == "capture") cfg.graph_mode = GraphMode::kCapture;
    else if (*v == "replay") cfg.graph_mode = GraphMode::kReplay;
    else bad_value(spec, "graph", *v, "off|capture|replay");
  }
  if (const std::string* v = spec.find("greplays")) {
    cfg.graph_replays =
        static_cast<int>(parse_ll(spec, "greplays", *v, 1, 1'000'000'000));
    if (cfg.graph_mode != GraphMode::kReplay)
      throw std::invalid_argument(
          "spec '" + spec.describe() +
          "': greplays requires graph=replay (only the replay path runs a "
          "captured graph more than once)");
  }
  if (const std::string* v = spec.find("trace")) {
    if (*v == "off") cfg.trace_mode = TraceMode::kOff;
    else if (*v == "record") cfg.trace_mode = TraceMode::kRecord;
    else if (*v == "replay") cfg.trace_mode = TraceMode::kReplay;
    else bad_value(spec, "trace", *v, "off|record|replay");
  }
  if (const std::string* v = spec.find("tracefile")) {
    cfg.trace_file = *v;
    if (cfg.trace_mode == TraceMode::kOff)
      throw std::invalid_argument(
          "spec '" + spec.describe() +
          "': tracefile requires trace=record|replay (a sink without a "
          "recorder would never be written)");
  }
  return cfg;
}

gomp::GompRuntime::Config RuntimeRegistry::gomp_config(
    const BackendSpec& spec) {
  check_keys(spec, {"threads", "zones", "topo", "yield", "profile"});
  gomp::GompRuntime::Config cfg;
  cfg.topology = resolve_topology(spec, 1 << 16);
  if (const std::string* v = spec.find("yield"))
    cfg.yield_after_idle =
        static_cast<int>(parse_ll(spec, "yield", *v, 0, 1'000'000));
  if (const std::string* v = spec.find("profile"))
    cfg.profile_events = parse_bool(spec, "profile", *v);
  return cfg;
}

lomp::LompRuntime::Config RuntimeRegistry::lomp_config(
    const BackendSpec& spec) {
  check_keys(spec,
             {"threads", "zones", "topo", "qcap", "seed", "xqueue", "yield",
              "profile"});
  lomp::LompRuntime::Config cfg;
  cfg.topology = resolve_topology(spec, 1 << 16);
  cfg.use_xqueue = spec.backend == "xlomp";
  if (const std::string* v = spec.find("xqueue"))
    cfg.use_xqueue = parse_bool(spec, "xqueue", *v);
  cfg.queue_capacity = RegistryDefaults::kQueueCapacity;
  if (const std::string* v = spec.find("qcap"))
    cfg.queue_capacity = parse_qcap(spec, "qcap", *v);
  if (const std::string* v = spec.find("seed"))
    cfg.seed = static_cast<std::uint64_t>(
        parse_ll(spec, "seed", *v, 0, std::numeric_limits<long long>::max()));
  if (const std::string* v = spec.find("yield"))
    cfg.yield_after_idle =
        static_cast<int>(parse_ll(spec, "yield", *v, 0, 1'000'000));
  if (const std::string* v = spec.find("profile"))
    cfg.profile_events = parse_bool(spec, "profile", *v);
  return cfg;
}

// --------------------------------------------------------------------------
// Construction

AnyRuntime RuntimeRegistry::make(const BackendSpec& spec) {
  std::string canon = spec.describe();
  if (spec.backend == "serial") {
    check_keys(spec, {});
    return AnyRuntime(std::make_unique<SerialModel>(), std::move(canon));
  }
  if (spec.backend == "gomp")
    return wrap<gomp::GompRuntime, gomp::GompContext>(
        std::make_unique<gomp::GompRuntime>(gomp_config(spec)),
        std::move(canon));
  if (spec.backend == "lomp" || spec.backend == "xlomp")
    return wrap<lomp::LompRuntime, lomp::LompContext>(
        std::make_unique<lomp::LompRuntime>(lomp_config(spec)),
        std::move(canon));
  if (spec.backend == "xtask")
    return wrap<Runtime, TaskContext>(
        std::make_unique<Runtime>(xtask_config(spec)), std::move(canon));
  throw std::invalid_argument("unknown backend '" + spec.backend +
                              "' (known: serial|gomp|lomp|xlomp|xtask)");
}

AnyRuntime RuntimeRegistry::make(const std::string& spec) {
  return make(BackendSpec::parse(spec));
}

AnyRuntime RuntimeRegistry::make_env(const std::string& fallback_spec) {
  if (const char* env = env_nonempty("XTASK_BACKEND")) return make(env);
  return make(fallback_spec);
}

std::unique_ptr<Runtime> RuntimeRegistry::make_xtask(Config cfg) {
  return std::make_unique<Runtime>(std::move(cfg));
}

std::unique_ptr<gomp::GompRuntime> RuntimeRegistry::make_gomp(
    gomp::GompRuntime::Config cfg) {
  return std::make_unique<gomp::GompRuntime>(std::move(cfg));
}

std::unique_ptr<lomp::LompRuntime> RuntimeRegistry::make_lomp(
    lomp::LompRuntime::Config cfg) {
  return std::make_unique<lomp::LompRuntime>(std::move(cfg));
}

// --------------------------------------------------------------------------
// Catalogues

std::vector<std::string> RuntimeRegistry::backends() {
  return {"serial", "gomp", "lomp", "xlomp", "xtask"};
}

std::vector<NamedConfig> RuntimeRegistry::bench_configs() {
  return {
      {"gomp", "gomp"},
      {"lomp", "lomp"},
      {"xtask-narp", "xtask:dlb=narp"},
      {"xtask-naws", "xtask:dlb=naws,tint=128"},
      {"xtask-adaptive", "xtask:dlb=adaptive"},
  };
}

std::vector<std::string> RuntimeRegistry::smoke_specs() {
  return {
      "serial",
      "gomp",
      "lomp",
      "xlomp",
      "xtask",                              // XGOMPTB
      "xtask:barrier=central,alloc=malloc", // XGOMP
      "xtask:dlb=narp",                     // + NA-RP
      "xtask:dlb=naws,tint=128",            // + NA-WS
      "xtask:dlb=adaptive",
      "xtask:dlb=adaptive,dmode=direct",    // forced direct dispatch
      "xtask:dlb=adaptive,dmode=messaging", // forced messaging dispatch
      "xtask:dlb=naws,hb=50,quarantine=on", // + self-healing workers
      "xtask:graph=replay,greplays=4",      // graph capture/replay drivers
      "xtask:trace=record",                 // scheduler trace recorder
  };
}

}  // namespace xtask
