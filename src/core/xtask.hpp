// Umbrella header for the xtask library: the lock-less fine-grained
// tasking runtime reproducing Wang et al., "Optimizing Fine-Grained
// Parallelism Through Dynamic Load Balancing on Multi-Socket Many-Core
// Systems" (IPPS 2025).
//
// Public entry points:
//   xtask::Runtime / xtask::TaskContext  — the runtime (core/runtime.hpp)
//   xtask::Config                        — barrier / DLB / allocator knobs
//   xtask::Profiler                      — §V profiling tools
//   xtask::gomp::GompRuntime             — GOMP-like baseline comparator
//   xtask::lomp::LompRuntime             — LOMP/XLOMP baseline comparator
#pragma once

#include "core/bqueue.hpp"
#include "core/central_barrier.hpp"
#include "core/common.hpp"
#include "core/dependency.hpp"
#include "core/parallel_for.hpp"
#include "core/runtime.hpp"
#include "core/steal_protocol.hpp"
#include "core/task.hpp"
#include "core/task_allocator.hpp"
#include "core/topology.hpp"
#include "core/tree_barrier.hpp"
#include "core/xqueue.hpp"
#include "prof/profiler.hpp"
