// The xtask runtime: an OpenMP-style task-parallel team built on XQueue,
// with pluggable barriers (centralized vs. distributed tree) and lock-less
// NUMA-aware dynamic load balancing (paper §III-§IV).
//
// Usage:
//   xtask::Config cfg;
//   cfg.num_threads = 8;
//   xtask::Runtime rt(cfg);
//   long result = 0;
//   rt.run([&](xtask::TaskContext& ctx) {
//     ctx.spawn([&](xtask::TaskContext&) { ...child work... });
//     ctx.taskwait();
//   });
//
// The calling thread becomes worker 0 for the duration of run(); the
// remaining workers are persistent threads parked between regions.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/adaptive.hpp"
#include "core/central_barrier.hpp"
#include "core/common.hpp"
#include "core/dependency.hpp"
#include "core/fault.hpp"
#include "core/heartbeat.hpp"
#include "core/steal_protocol.hpp"
#include "core/task.hpp"
#include "core/task_allocator.hpp"
#include "core/topology.hpp"
#include "core/tree_barrier.hpp"
#include "core/watchdog.hpp"
#include "core/xqueue.hpp"
#include "prof/profiler.hpp"
#include "trace/recorder.hpp"

namespace xtask {

/// Which team barrier terminates a parallel region.
enum class BarrierKind {
  /// Centralized: shared arrival counter + atomic global task count. This
  /// is the XGOMP configuration (§III-A) — lock-less queues but one hot
  /// atomic per task create/finish.
  kCentral,
  /// Distributed tree barrier with census-based quiescence detection: the
  /// XGOMPTB configuration (§III-B). No global task count is maintained.
  kTree,
  /// Resolved at construction: central for small or oversubscribed teams
  /// (the census passes of the tree barrier cost scheduler quanta there,
  /// while one core cannot ping-pong the task-count line), tree once the
  /// team is large enough for the shared counter to become the bottleneck.
  kAuto,
};

/// Dynamic load balancing strategy (paper §IV).
enum class DlbKind {
  kNone,          // static round-robin only (SLB)
  kRedirectPush,  // NA-RP: victims redirect newly created tasks (§IV-C)
  kWorkSteal,     // NA-WS: victims migrate queued tasks in batches (§IV-D)
  /// Adaptive (the paper's §X future work), two layers. Per-worker: each
  /// worker samples its own task execution times with rdtscp and derives
  /// its strategy and parameters from the Table IV guidelines — NA-WS
  /// with size-scaled steal batches for fine tasks, NA-RP with large
  /// local batches for tasks above 1e4 cycles; fully distributed, no
  /// shared tuning state. Per-team: a ModeController (adaptive.hpp) fed
  /// by the XQueue occupancy-bitmap census switches the whole dispatch
  /// layer between the messaging protocol and direct deque-style
  /// stealing, per epoch, with hysteresis.
  kAdaptive,
};

/// DLB tuning knobs (§IV-E).
struct DlbConfig {
  int n_victim = 1;       // victims contacted per request round
  int n_steal = 8;        // max tasks stolen/redirected per request
  std::uint64_t t_interval = 10'000;  // idle polls between request rounds
  double p_local = 1.0;   // probability of picking a NUMA-local victim
};

/// How a graph-capable workload driver (bench_graph, graph-aware tests)
/// should execute its DAG. Carried on Config so the registry spec grammar
/// (`graph=capture|replay`, `greplays=<n>`) can select the path uniformly;
/// the runtime itself schedules both paths identically — the difference is
/// whether the driver rebuilds dependences per iteration or replays a
/// sealed TaskGraph.
enum class GraphMode : std::uint8_t {
  kOff,      // spawn/taskwait or per-iteration dependence registration
  kCapture,  // capture a TaskGraph on the first execution, keep rebuilding
  kReplay,   // capture once, then replay (zero rebuild cost per iteration)
};

/// Scheduler-trace mode, carried on Config so the registry spec grammar
/// (`trace=record|replay`, `tracefile=<path>`) selects it uniformly.
/// kRecord arms the runtime's trace recorder (trace/recorder.hpp): every
/// spawn/exec/steal/idle is captured, readable in-memory via
/// Runtime::tracer() and dumped to `trace_file` at runtime destruction.
/// kReplay does not change the runtime's behavior — it tells a
/// trace-capable driver (bench_replay, the golden-trace tests) to replay
/// `trace_file` instead of generating fresh work.
enum class TraceMode : std::uint8_t {
  kOff,
  kRecord,
  kReplay,
};

struct Config {
  int num_threads = static_cast<int>(std::thread::hardware_concurrency());
  std::uint32_t queue_capacity = 2048;  // per SPSC queue, power of two
  BarrierKind barrier = BarrierKind::kTree;
  DlbKind dlb = DlbKind::kNone;
  DlbConfig dlb_cfg;
  AllocatorMode allocator = AllocatorMode::kMultiLevel;
  /// 0 = detect topology from the OS; otherwise build a synthetic topology
  /// with this many NUMA zones (used on single-node hosts and in tests).
  /// Ignored when `topology` is set.
  int numa_zones = 0;
  /// When non-empty, the machine shape — worker count AND zone map both
  /// come from here, overriding num_threads/numa_zones. This is how the
  /// backend registry hands one Topology (parsed from a spec string such
  /// as "8x24", see Topology::parse) to every consumer; the simulator
  /// consumes the same object via sim::MachineConfig::topo.
  Topology topology;
  bool profile_events = false;  // record per-event timelines (§V)
  std::uint64_t seed = 42;      // base seed for per-worker victim RNGs
  /// Call sched_yield after this many consecutive empty polls, so the
  /// runtime stays live when threads outnumber cores (oversubscribed CI
  /// hosts). 0 disables yielding.
  int yield_after_idle = 64;
  /// Watchdog stall window in milliseconds: when > 0, a monitor thread
  /// watches the team's lifetime task counters and fires once no counter
  /// moves for this long while a region is active. 0 disables the
  /// watchdog. Size the window well above the longest single task body —
  /// a task that spawns nothing and runs longer than the window is
  /// indistinguishable from a wedged worker.
  std::uint64_t watchdog_timeout_ms = 0;
  /// Called with Runtime::debug_snapshot() when the watchdog fires. When
  /// empty, the runtime prints the snapshot to stderr and aborts — a CI
  /// job dies loudly with diagnostics instead of hanging until the job
  /// timeout.
  std::function<void(const std::string&)> watchdog_handler;
  /// Per-worker heartbeat window in milliseconds: when > 0, workers bump a
  /// monotone heartbeat at task boundaries and idle polls, and a monitor
  /// thread classifies any worker whose heartbeat freezes for about one
  /// window as suspect (about two windows: quarantine-eligible). 0
  /// disables the heartbeat subsystem entirely (no monitor thread, no
  /// hot-path stores). Spec key: hb=<ms>.
  std::uint64_t heartbeat_ms = 0;
  /// Enable stall *recovery* on top of heartbeat *detection*: quarantined
  /// workers are dropped from DLB victim/redirect selection, their queued
  /// tasks are reclaimed by healthy workers, and the monitor proxies their
  /// barrier participation until the heartbeat resumes (readmission).
  /// Requires heartbeat_ms > 0. Adds one guard CAS per scheduler poll to
  /// every worker, so it is opt-in. Spec key: quarantine=on|off.
  bool quarantine = false;
  /// Dispatch-mode policy for dlb=adaptive (ignored otherwise): kAuto lets
  /// the per-epoch ModeController switch between the messaging protocol
  /// and direct stealing; kMessaging/kDirect pin one mode (ablation,
  /// tests). Spec key: dmode=auto|messaging|direct.
  DispatchModePolicy dispatch_mode = DispatchModePolicy::kAuto;
  /// Graph execution mode for graph-capable drivers (see GraphMode).
  /// Spec keys: graph=off|capture|replay, greplays=<n> (the replay count
  /// a driver should run per captured graph; requires graph=replay).
  GraphMode graph_mode = GraphMode::kOff;
  int graph_replays = 1;
  /// Scheduler-trace mode (see TraceMode). Spec keys:
  /// trace=off|record|replay, tracefile=<path> (requires trace != off).
  TraceMode trace_mode = TraceMode::kOff;
  /// Where to dump (record) or read (replay) the trace. Extension picks
  /// the encoding: .jsonl/.json → JSONL, anything else → binary. Empty
  /// with trace=record keeps the trace in-memory only (tests read it via
  /// Runtime::tracer()).
  std::string trace_file;
};

class Runtime;
class TaskContext;

namespace detail {

/// Adaptive idle backoff: the first few fruitless polls cost nothing (the
/// queues may refill any cycle), then the worker escalates through
/// exponentially longer `pause` bursts (cutting coherence traffic and
/// power while staying on-core), and finally hands the core to the OS with
/// sched_yield once the configured idle budget is spent — the regime that
/// keeps oversubscribed hosts live. Reset on any progress.
struct IdleBackoff {
  static constexpr std::uint32_t kSpinPolls = 8;     // free polls first
  static constexpr std::uint32_t kMaxPauseBurst = 64;

  std::uint32_t idles = 0;        // consecutive fruitless polls
  std::uint32_t pause_burst = 1;  // pauses per beat, doubling to the cap

  void reset() noexcept {
    idles = 0;
    pause_burst = 1;
  }

  /// One backoff beat after a fruitless poll; returns true when it
  /// escalated to a sched_yield. `yield_after` <= 0 disables yielding.
  bool step(int yield_after) noexcept {
    ++idles;
    if (idles <= kSpinPolls) return false;
    if (yield_after > 0 &&
        idles >= static_cast<std::uint32_t>(yield_after) + kSpinPolls) {
      std::this_thread::yield();
      // Stay in the yield regime (pause bursts at the cap between
      // yields) until reset() — the worker is long-term idle.
      idles = kSpinPolls;
      return true;
    }
    for (std::uint32_t i = 0; i < pause_burst; ++i) cpu_pause();
    if (pause_burst < kMaxPauseBurst) pause_burst <<= 1;
    return false;
  }
};

/// Per-worker state. One instance per worker thread, touched almost
/// exclusively by its owner; the shared cells (counters for the census,
/// round/request for the steal protocol) are padded.
struct Worker {
  int id = 0;
  Runtime* rt = nullptr;

  // Monotone lifetime counters, read by the tree barrier census.
  alignas(kCacheLine) atomic<std::uint64_t> created{0};
  atomic<std::uint64_t> executed{0};

  // Lock-less steal-protocol cells (victim role).
  StealCells cells;

  // --- self-healing (heartbeat/quarantine; see heartbeat.hpp) -----------
  // Liveness heartbeat: single-writer (this worker), bumped at task
  // boundaries and idle polls; sampled by the monitor thread.
  alignas(kCacheLine) atomic<std::uint64_t> heartbeat{0};
  // Phase hint for classifying a frozen heartbeat (owner-written).
  atomic<std::uint32_t> hb_phase{hb::kPhaseParked};
  // Consumer-identity guard cell (state machine + owner recursion depth);
  // see the hand-off diagram in heartbeat.hpp. Only used when
  // Config::quarantine is on.
  GuardCell guard;
  // Published health (monitor-written): peers skip kQuarantined workers
  // as DLB victims/targets and reclaim their rows.
  atomic<std::uint32_t> health{
      static_cast<std::uint32_t>(WorkerHealth::kHealthy)};
  // Central-barrier proxy handshake: last generation this worker arrived
  // for itself vs. the last the monitor arrived on its behalf. Both only
  // written under the guard, so they cannot double-arrive.
  atomic<std::uint64_t> arrived_gen{0};
  atomic<std::uint64_t> proxied_gen{0};
  // Set by the monitor at quarantine, consumed by the owner at its next
  // guard acquisition to attribute nquarantined/nreadmitted to its own
  // profiler counters (keeping those single-writer).
  atomic<bool> was_quarantined{false};
  // Owner-private: one forced kWorkerStall / kWorkerSlow per region.
  bool stall_injected = false;
  bool slow_injected = false;
  // Owner-private serve-tenant tag for overflow attribution: dispatches
  // from this worker are attributed to this tenant (0 = untagged; the
  // service tags tenant index + 1 around its drain pushes). Lives here
  // rather than in Task because Task is packed to exactly three cache
  // lines with zero slack.
  std::uint32_t active_tenant = 0;

  // Owner-private scheduling state.
  alignas(kCacheLine) XorShift rng;
  // Adaptive DLB: exponential moving average of sampled task sizes
  // (rdtscp cycles; one task in 16 is timed) — 0 means "no estimate yet".
  std::uint64_t avg_task_cycles = 0;
  std::uint32_t sample_tick = 0;
  std::uint32_t rr_cursor = 0;       // static round-robin push target
  int redirect_thief = -1;           // NA-RP: active redirect target
  std::uint32_t redirect_pushed = 0;
  std::uint64_t idle_polls = 0;      // thief timeout counter (T_interval)
  bool request_round_open = false;   // sent requests, awaiting work
  // Steal-round latency probe: rdtscp at the first request send of the
  // current round; cleared (and the latency histogrammed) at the next
  // successful pop. Owner-private.
  std::uint64_t round_open_tsc = 0;
  // Idle-residency probe: rdtscp when this worker entered its current
  // idle episode (0 = not idle). Owner-private.
  std::uint64_t idle_enter_tsc = 0;
  // Packed zone-peer mask for bitmap victim selection (bit v = worker v
  // shares this worker's NUMA zone; first 64 workers). Set once at team
  // construction.
  std::uint64_t local_mask = 0;
  IdleBackoff backoff;               // spin → pause → yield idle escalation
  std::unique_ptr<TaskAllocator> alloc;
  std::thread thread;                // empty for worker 0 (caller thread)
};

}  // namespace detail

/// Handle passed to every task body; the only way tasks interact with the
/// runtime. Valid only during the task invocation it was created for.
class TaskContext {
 public:
  int worker_id() const noexcept;
  Runtime& runtime() const noexcept { return *rt_; }

  /// Spawn a child task. F must be invocable as f(TaskContext&) and its
  /// captures must fit Task::kPayloadBytes. The child may run on any
  /// worker, immediately on this one if the target queue is full.
  template <typename F>
  void spawn(F&& f);

  /// Spawn a child task ordered by OpenMP-style dependences (see
  /// dependency.hpp): `ctx.spawn(body, {din(&x), dout(&y)})`. Dependences
  /// order this task against *sibling* tasks of the same parent that
  /// named overlapping addresses. A task with unmet predecessors is
  /// deferred and dispatched by whichever worker completes its last
  /// predecessor.
  template <typename F>
  void spawn(F&& f, std::initializer_list<Dep> deps);

  /// Same, with a runtime-sized dependence list (workloads whose fan-in
  /// is a parameter, e.g. the graph-pipeline benchmark).
  template <typename F>
  void spawn(F&& f, const Dep* deps, std::size_t ndeps);

  /// Spawn `n` same-typed children from a contiguous array, moving each
  /// element into its task. Dispatch is batched (XQueue::push_batch) and
  /// remote-first: chunks spread over the *other* workers — the consumers
  /// guaranteed to be polling their rows — so a long-running producer
  /// (the serve drain loop) never strands work in its own master queue;
  /// when every usable queue is full the remainder runs inline here (the
  /// standard overflow backpressure path, with tenant attribution).
  template <typename F>
  void spawn_batch(F* fs, std::size_t n);

  /// Tag subsequent dispatches from this worker with a serve-tenant id
  /// for overflow attribution (0 = untagged). Worker-local, inherited by
  /// nothing: set it around a run of dispatches and clear it after.
  void set_tenant(std::uint32_t tenant) noexcept;
  std::uint32_t tenant() const noexcept;

  /// Bump this worker's liveness heartbeat from inside a long-running
  /// task body without yielding. A body that legitimately runs for many
  /// heartbeat windows (a service drain loop) calls this each iteration
  /// so the monitor never mistakes it for a wedged worker. No-op when the
  /// heartbeat subsystem is off.
  void keepalive() noexcept;

  /// Wait until all children spawned by the current task have completed,
  /// executing other tasks while waiting (OpenMP taskwait semantics).
  /// Note: also waits for deferred dependent children (they are children
  /// like any other).
  void taskwait();

  /// Cooperatively run at most one other ready task, then return (OpenMP
  /// taskyield semantics). Useful inside long-running tasks to keep the
  /// worker responsive to its victim duties; returns true if a task ran.
  bool taskyield();

  /// OpenMP taskgroup: run `body` (which may spawn), then wait until every
  /// task spawned *within the group's dynamic extent on this task* has
  /// completed — including grandchildren, which plain taskwait does not
  /// cover. Implemented by running the body as a synthetic child task and
  /// waiting on its whole subtree. If a member's exception was not
  /// consumed by an inner taskwait, the remainder of the group is
  /// cancelled and the (first) exception is rethrown here.
  template <typename F>
  void taskgroup(F&& body);

  /// Cooperative cancellation, OpenMP `cancel taskgroup` style: mark the
  /// innermost enclosing taskgroup cancelled — or, when the current task
  /// is not in a group, the whole parallel region. New spawns in the
  /// cancelled extent are dropped and already-queued members are drained
  /// without running their bodies; tasks already executing finish normally
  /// unless they poll cancelled() and return early.
  void cancel_group() noexcept;

  /// True when the current task's group (or the region) was cancelled.
  /// Long-running bodies poll this as their cancellation point.
  bool cancelled() const noexcept;

  /// True when the runtime is draining this task from a cancelled group:
  /// the body is not run, only the payload destructor (the invoke thunk
  /// receives the same flag). User bodies never observe true.
  bool body_skipped() const noexcept { return skip_body_; }

  TaskContext(const TaskContext&) = delete;
  TaskContext& operator=(const TaskContext&) = delete;

 private:
  friend class Runtime;
  TaskContext(Runtime* rt, detail::Worker* w, Task* current,
              bool skip_body = false) noexcept
      : rt_(rt), w_(w), current_(current), skip_body_(skip_body) {}

  Runtime* rt_;
  detail::Worker* w_;
  Task* current_;  // task being executed; parent for spawns
  bool skip_body_;  // draining a cancelled task: destroy payload only
  // Dependence scope for this task's children; lazily created on the
  // first dependent spawn, torn down when the task body returns.
  std::unique_ptr<detail::DepScope> dep_scope_;
};

/// A persistent team of workers executing task-parallel regions.
class Runtime {
 public:
  explicit Runtime(Config cfg);
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Execute one parallel region: `root` runs as the root task on worker 0
  /// (the calling thread) and the region ends when all transitively
  /// spawned tasks have completed (implicit team barrier). If any task's
  /// exception reached the region boundary unconsumed, the first such
  /// exception is rethrown here after the region has fully drained; the
  /// runtime stays usable for subsequent regions.
  void run(std::function<void(TaskContext&)> root);

  const Config& config() const noexcept { return cfg_; }
  const Topology& topology() const noexcept { return topo_; }
  Profiler& profiler() noexcept { return prof_; }
  const Profiler& profiler() const noexcept { return prof_; }

  /// Human-readable diagnostic snapshot: per-worker lifetime counters and
  /// queue occupancy, steal-protocol cells, barrier state, cancellation
  /// and error flags. Reads only atomics — safe (if racy) to call from
  /// any thread at any time; this is what the watchdog hands its handler.
  std::string debug_snapshot() const;

  /// Stall episodes the watchdog has detected (0 when disabled).
  std::uint64_t watchdog_stalls() const noexcept { return watchdog_.stalls(); }

  /// The scheduler-trace recorder, or nullptr unless trace_mode=kRecord.
  /// Call tracer()->build() only between regions (the per-worker buffers
  /// are single-writer while a region runs).
  trace::Recorder* tracer() noexcept { return tracer_raw_; }

  /// Aggregate heartbeat/quarantine statistics (all zero when the
  /// heartbeat subsystem is disabled). Safe from any thread.
  HealthStats health_stats() const noexcept;

  /// Published health of worker `tid`. Safe from any thread.
  WorkerHealth worker_health(int tid) const noexcept {
    return static_cast<WorkerHealth>(
        workers_[static_cast<std::size_t>(tid)]->health.load(
            std::memory_order_acquire));
  }

  // --- load/pressure probes (safe from any thread, O(N) or better) ------
  /// Approximate tasks queued across the whole XQueue matrix.
  std::uint64_t queued_approx() const noexcept { return xq_.size_approx(); }

  /// Fraction of one producer's reachable queue capacity currently
  /// occupied, clamped to [0, 1]. The denominator is N × queue_capacity —
  /// what a single producer (the serve drain loop) can address, which is
  /// the scale that matters for admission — not the N² matrix total.
  double queue_pressure() const noexcept {
    const double cap = static_cast<double>(cfg_.num_threads) *
                       static_cast<double>(cfg_.queue_capacity);
    const double p = static_cast<double>(xq_.size_approx()) / cap;
    return p > 1.0 ? 1.0 : p;
  }

  /// Workers not currently quarantined — the team's effective capacity.
  int healthy_workers() const noexcept {
    const int q = num_quarantined_.load(std::memory_order_acquire);
    return q >= cfg_.num_threads ? 0 : cfg_.num_threads - q;
  }

  /// The dispatch mode dlb=adaptive is running right now (kMessaging for
  /// every other dlb). Safe from any thread.
  DispatchMode dispatch_mode_now() const noexcept {
    return static_cast<DispatchMode>(mode_.load(std::memory_order_acquire));
  }

  /// Messaging<->direct switches committed so far (0 unless dmode=auto).
  std::uint64_t mode_switches() const noexcept {
    return mode_switches_pub_.load(std::memory_order_acquire);
  }

  /// Workers with an unanswered steal request parked in their cells: a
  /// cheap idle-demand signal (positive means thieves ran dry and queues
  /// are draining, i.e. pressure is falling, not rising).
  int starving_workers() const noexcept {
    int n = 0;
    for (const auto& w : workers_)
      if (w->cells.has_pending_request()) ++n;
    return n;
  }

 private:
  friend class TaskContext;

  // --- task lifecycle ---------------------------------------------------
  Task* allocate_task(detail::Worker& w, Task* parent);
  /// Queue `t` (redirect session or static round-robin). Returns nullptr
  /// when queued, or `t` back when every queue was full and the caller
  /// must execute it immediately (§II-B).
  Task* dispatch(detail::Worker& w, Task* t);
  /// Batched remote-first dispatch for spawn_batch: chunks round-robin
  /// over the other workers (skipping quarantined targets in degraded
  /// mode); whatever no queue accepts runs inline with overflow
  /// attribution. Never parks work in the caller's own master queue.
  void dispatch_batch(detail::Worker& w, Task* const* ts, std::size_t n);
  void execute(detail::Worker& w, Task* t);           // run + finish
  void finish(detail::Worker& w, Task* t);            // completion protocol
  void deref(detail::Worker& w, Task* t) noexcept;

  // --- scheduling -------------------------------------------------------
  Task* find_task(detail::Worker& w);
  /// Help execute tasks until a taskgroup's live counter drains to zero.
  void group_wait(detail::Worker& w, TaskGroup& group);
  void worker_loop(detail::Worker& w, std::uint64_t gen);
  void idle_step(detail::Worker& w);

  // --- fault tolerance --------------------------------------------------
  /// True when `t` belongs to a cancelled extent (its group, or the
  /// region). Checked at spawn (drop) and dequeue (drain without running).
  bool task_cancelled(const Task* t) const noexcept;
  /// Route an escaped exception to the nearest enclosing consumer: the
  /// parent task when it shares the same group extent, else the group
  /// (cancelling it), else the region slot (cancelling the region).
  void propagate_error(std::exception_ptr ep, Task* parent,
                       TaskGroup* group) noexcept;
  void start_watchdog();

  // --- self-healing (heartbeat monitor + quarantine recovery) -----------
  /// Owner-side heartbeat bump (single-writer store; no-op when the
  /// heartbeat subsystem is off).
  void hb_bump(detail::Worker& w) noexcept {
    if (hb_enabled_)
      w.heartbeat.store(w.heartbeat.load(std::memory_order_relaxed) + 1,
                        std::memory_order_relaxed);
  }
  void hb_set_phase(detail::Worker& w, std::uint32_t phase) noexcept {
    if (hb_enabled_) w.hb_phase.store(phase, std::memory_order_release);
  }
  /// Take this worker's own consumer guard (free -> owner). Returns true
  /// immediately when quarantine is off. On failure (monitor/reclaimer
  /// holds it) bumps the heartbeat — sustained bumps are what earn
  /// readmission — and returns false; the caller treats it as "no work".
  bool acquire_guard(detail::Worker& w) noexcept;
  void release_guard(detail::Worker& w) noexcept {
    if (guards_active_) w.guard.release_owner();
  }
  /// Healthy-worker side of recovery: if any worker is quarantined, try to
  /// take its guard (monitor -> reclaimer), drain its XQueue row via the
  /// batched-steal path, and requeue the tasks locally. Returns true when
  /// any task was reclaimed.
  bool try_reclaim(detail::Worker& w);
  /// kWorkerStall / kWorkerSlow chaos hooks: go heartbeat-silent until the
  /// monitor reacts (quarantine resp. suspect), then resume. The monitor
  /// classifies from hb_phase, so the hook needs no in-task hint.
  void maybe_inject_stall(detail::Worker& w);
  void monitor_main();
  void start_monitor();
  void stop_monitor();

  // --- DLB --------------------------------------------------------------
  /// Effective knobs for `w` right now: the static config, or the
  /// Table IV guideline row for w's measured task size under kAdaptive.
  DlbConfig effective_dlb(const detail::Worker& w) const noexcept;
  /// Strategy `w` applies as a victim (kAdaptive picks RP vs WS by size).
  DlbKind effective_strategy(const detail::Worker& w) const noexcept;
  void victim_check(detail::Worker& w);
  void do_work_steal(detail::Worker& w, int thief);
  void end_redirect_session(detail::Worker& w);
  void thief_send_requests(detail::Worker& w);

  // --- adaptive dispatch (dlb=adaptive; see adaptive.hpp) ---------------
  /// Hot-path predicate: is the direct (self-push + guard-borrowed steal)
  /// dispatch machinery active right now? One relaxed load of a
  /// rarely-written line.
  bool direct_mode() const noexcept {
    return adaptive_dispatch_ &&
           mode_.load(std::memory_order_relaxed) ==
               static_cast<std::uint32_t>(DispatchMode::kDirect);
  }
  /// Worker 0, dmode=auto only: every kModeEvalTicks scheduler iterations
  /// check the epoch clock, and once per epoch feed the bitmap census to
  /// the ModeController and publish its (possibly new) decision.
  void maybe_eval_mode(detail::Worker& w) noexcept;
  /// Direct-mode steal: pick an occupied victim from the bitmap mask,
  /// borrow its guard (free -> thief), pop a batch from its row, requeue
  /// locally. Returns true when any task was taken.
  bool try_direct_steal(detail::Worker& w);
  /// Fold owner-private instrumentation (XQueue scan stats, allocator
  /// churn) into this worker's profiler counters; called at region end.
  void sync_owner_stats(detail::Worker& w) noexcept;

  // --- trace recording (trace_mode=kRecord; all no-ops otherwise) -------
  /// Spawn hook: called by the owning worker right after allocate_task,
  /// before the task can reach any queue (the recorder's inflight-map
  /// insert must happen-before the executing worker's lookup; the queue's
  /// release/acquire transfer provides that order).
  void trace_spawn(detail::Worker& w, Task* t) noexcept {
    if (tracer_raw_ != nullptr) tracer_raw_->on_spawn(w.id, t, rdtscp());
  }
  /// One dependence item of the task just recorded by trace_spawn.
  void trace_dep(detail::Worker& w, const Dep& d) noexcept {
    if (tracer_raw_ != nullptr)
      tracer_raw_->on_dep(w.id, static_cast<std::uint32_t>(d.mode),
                          reinterpret_cast<std::uintptr_t>(d.addr));
  }
  /// Bracket wait loops so polling is not billed as task self-cost.
  void trace_pause(detail::Worker& w) noexcept {
    if (tracer_raw_ != nullptr) tracer_raw_->on_pause(w.id, rdtscp());
  }
  void trace_resume(detail::Worker& w) noexcept {
    if (tracer_raw_ != nullptr) tracer_raw_->on_resume(w.id, rdtscp());
  }

  // --- team management --------------------------------------------------
  void thread_main(int id);

  Config cfg_;
  Topology topo_;
  Profiler prof_;
  XQueue xq_;
  CentralBarrier central_;
  TreeBarrier tree_;
  TaskAllocator::SharedPool pool_;
  std::vector<std::unique_ptr<detail::Worker>> workers_;

  // Region lifecycle: workers park on region_cv_ between runs.
  std::mutex region_mu_;
  std::condition_variable region_cv_;
  std::condition_variable done_cv_;
  std::uint64_t region_gen_ = 0;   // generation being executed
  int workers_done_ = 0;           // helpers finished with current region
  bool shutdown_ = false;

  // Trace recording (cfg_.trace_mode == kRecord). tracer_raw_ caches the
  // unique_ptr's target so the hot-path guard is one plain load.
  std::unique_ptr<trace::Recorder> tracer_;
  trace::Recorder* tracer_raw_ = nullptr;

  // Fault tolerance: region-scope error/cancel state (reset per run) and
  // the stall monitor.
  ExceptionSlot region_err_;
  std::atomic<bool> region_cancel_{false};
  std::atomic<bool> region_active_{false};
  Watchdog watchdog_;

  // Self-healing: cached config switches (hot-path branch predicates), the
  // heartbeat monitor thread, and monitor-side statistics. gen_pub_
  // mirrors region_gen_ as an atomic so the monitor can proxy barrier
  // participation without the region mutex.
  bool hb_enabled_ = false;     // cfg_.heartbeat_ms > 0
  bool guard_enabled_ = false;  // hb_enabled_ && cfg_.quarantine

  // Adaptive dispatch (dlb=adaptive): the published mode, the worker-0
  // epoch controller, and its evaluation cadence. `guards_active_` extends
  // the guard discipline to direct-mode stealing even when quarantine is
  // off — any configuration in which a thief may borrow a consumer
  // identity must route every row consumption through the guard cell.
  static constexpr std::uint32_t kModeEvalTicks = 256;   // rdtscp divider
  static constexpr std::uint64_t kModeEpochCycles = 2'000'000;
  /// Direct-mode work-first throttle: local master depth above which a
  /// spawned child runs inline instead of being queued. Sized to cover a
  /// thief's pop_batch bulk grab (64) so stealable slack never runs dry.
  static constexpr std::uint64_t kDirectInlineDepth = 64;
  bool adaptive_dispatch_ = false;  // dlb==kAdaptive && num_threads > 1
  bool guards_active_ = false;      // guard_enabled_ || direct possible
  std::atomic<std::uint32_t> mode_{
      static_cast<std::uint32_t>(DispatchMode::kMessaging)};
  std::atomic<std::uint64_t> mode_switches_pub_{0};
  ModeController mode_ctl_;          // worker-0-owned (dmode=auto)
  std::uint64_t next_mode_eval_ = 0; // worker-0-owned tsc deadline
  std::uint32_t mode_tick_ = 0;      // worker-0-owned call divider
  std::atomic<std::uint64_t> gen_pub_{0};
  std::atomic<int> num_quarantined_{0};  // gates peers' recovery scans
  std::atomic<std::uint64_t> hb_suspects_{0};
  std::atomic<std::uint64_t> hb_quarantines_{0};
  std::atomic<std::uint64_t> hb_quarantines_in_task_{0};
  std::atomic<std::uint64_t> hb_quarantines_desched_{0};
  std::atomic<std::uint64_t> hb_readmissions_{0};
  std::atomic<std::uint64_t> hb_tasks_reclaimed_{0};
  std::mutex monitor_mu_;
  std::condition_variable monitor_cv_;
  bool monitor_stop_ = false;
  std::thread monitor_;
};

// ---------------------------------------------------------------------------
// Inline / template implementations.

inline int TaskContext::worker_id() const noexcept { return w_->id; }

inline void TaskContext::set_tenant(std::uint32_t tenant) noexcept {
  w_->active_tenant = tenant;
}

inline std::uint32_t TaskContext::tenant() const noexcept {
  return w_->active_tenant;
}

inline void TaskContext::keepalive() noexcept { rt_->hb_bump(*w_); }

template <typename F>
void TaskContext::spawn(F&& f) {
  detail::Worker& w = *w_;
  // Cancelled extent: drop the spawn (OpenMP cancel semantics). The
  // captures are never materialized, so there is nothing to destroy.
  if (rt_->task_cancelled(current_)) {
    ++rt_->profiler().thread(w.id).counters.ntasks_cancelled;
    return;
  }
  Task* overflow;
  {
    // Creation (allocate + enqueue) is its own profiling event; if the
    // task overflows to immediate execution, that runs as a kTask event
    // outside this scope so the two do not nest.
    ScopedEvent ev(rt_->profiler().thread(w.id), EventKind::kTaskCreate);
    Task* t = rt_->allocate_task(w, current_);
    t->emplace(std::forward<F>(f));
    overflow = rt_->dispatch(w, t);
  }
  if (overflow != nullptr) rt_->execute(w, overflow);
}

template <typename F>
void TaskContext::spawn_batch(F* fs, std::size_t n) {
  detail::Worker& w = *w_;
  if (n == 0) return;
  if (rt_->task_cancelled(current_)) {
    rt_->profiler().thread(w.id).counters.ntasks_cancelled += n;
    return;
  }
  // Chunked so allocation stays bounded regardless of n; 64 matches the
  // NA-WS migration batch and BQueue's probe distance.
  constexpr std::size_t kChunk = 64;
  Task* batch[kChunk];
  for (std::size_t i = 0; i < n; i += kChunk) {
    const std::size_t k = n - i < kChunk ? n - i : kChunk;
    {
      ScopedEvent ev(rt_->profiler().thread(w.id), EventKind::kTaskCreate);
      for (std::size_t j = 0; j < k; ++j) {
        Task* t = rt_->allocate_task(w, current_);
        t->emplace(std::move(fs[i + j]));
        batch[j] = t;
      }
    }
    rt_->dispatch_batch(w, batch, k);
  }
}

template <typename F>
void TaskContext::taskgroup(F&& body) {
  // The group body runs immediately on this worker as a child task that
  // carries the group's live-task counter; every descendant spawned inside
  // the group inherits the group (allocate_task) and decrements `live` at
  // completion (finish), so waiting for zero covers the whole dynamic
  // extent — grandchildren included, unlike taskwait.
  detail::Worker& w = *w_;
  TaskGroup grp;  // live starts at 1: the body task itself
  Task* t = rt_->allocate_task(w, current_);
  // allocate_task enrolled the body in the *enclosing* group (if any);
  // undo that — the enclosing group is covered transitively because this
  // call blocks inside the current task until the inner extent drains.
  if (t->group != nullptr)
    t->group->live.fetch_sub(1, std::memory_order_relaxed);
  t->group = &grp;
  t->emplace(std::forward<F>(body));
  rt_->execute(w, t);
  rt_->group_wait(w, grp);
  // Every member has completed: `grp` holds the first exception (if any)
  // that no inner taskwait consumed. Cancellation without an exception is
  // not an error — the group just drained early.
  if (grp.err.pending()) std::rethrow_exception(grp.err.take());
}

template <typename F>
void TaskContext::spawn(F&& f, std::initializer_list<Dep> deps) {
  spawn(std::forward<F>(f), deps.begin(), deps.size());
}

template <typename F>
void TaskContext::spawn(F&& f, const Dep* deps, std::size_t ndeps) {
  detail::Worker& w = *w_;
  if (rt_->task_cancelled(current_)) {
    ++rt_->profiler().thread(w.id).counters.ntasks_cancelled;
    return;
  }
  Task* overflow = nullptr;
  {
    ScopedEvent ev(rt_->profiler().thread(w.id), EventKind::kTaskCreate);
    Task* t = rt_->allocate_task(w, current_);
    t->emplace(std::forward<F>(f));
    for (std::size_t i = 0; i < ndeps; ++i) rt_->trace_dep(w, deps[i]);
    if (!dep_scope_) dep_scope_ = std::make_unique<detail::DepScope>();
    const std::uint32_t unmet = dep_scope_->register_task(t, deps, ndeps);
    if (unmet == 0) overflow = rt_->dispatch(w, t);
    // else: deferred — the worker completing the last predecessor
    // dispatches it (Runtime::finish).
  }
  if (overflow != nullptr) rt_->execute(w, overflow);
}

}  // namespace xtask
