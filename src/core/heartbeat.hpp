// Self-healing worker support: heartbeat classification and the quarantine
// guard protocol (see DESIGN.md "Heartbeats, quarantine, and readmission").
//
// Each worker publishes a monotone heartbeat counter (bumped at task
// boundaries and idle-poll iterations). A monitor thread samples every
// heartbeat a few times per window and drives the per-worker state machine
//
//     healthy -> suspect -> quarantined -> (heartbeat resumes) -> healthy
//
// The *classification* logic lives in HealthTracker, a plain single-thread
// state machine the monitor owns — pure in/out, so the transitions are unit
// testable without racing real threads. The *safety* of acting on a verdict
// comes from the per-worker guard cell:
//
//   kGuardFree ──CAS──► kGuardOwner      worker, around every row-consuming
//                                        or census-publishing step
//   kGuardFree ──CAS──► kGuardMonitor    monitor, to quarantine
//   kGuardMonitor ─CAS► kGuardReclaimer  healthy peer, to drain the rows
//   kGuardReclaimer ──► kGuardMonitor    reclaimer hands ownership back
//   kGuardMonitor ─CAS► kGuardFree       monitor, to readmit
//   kGuardFree ──CAS──► kGuardThief      idle peer, to pop the rows directly
//   kGuardThief ──────► kGuardFree       thief hands ownership back
//
// Whoever holds the guard is the exclusive "consumer identity" of that
// worker: it may pop the worker's XQueue row, publish its tree-barrier
// census cells, and arrive at the central barrier on its behalf. Every
// hand-off is an acq_rel CAS (or a release store back along the same
// chain), so the single-writer plain state inside XQueue and TreeBarrier
// stays data-race-free under surrogate use. The guard is deliberately NOT
// held while a task body runs — a worker wedged inside a task is exactly
// the case quarantine must be able to capture.
#pragma once

#include <atomic>  // std::memory_order
#include <cstdint>

#include "core/common.hpp"

namespace xtask {

/// Externally visible health of one worker (detail::Worker::health).
/// kSuspect is advisory (published so tests and fault injection can observe
/// it); only kQuarantined changes scheduling behavior.
enum class WorkerHealth : std::uint32_t {
  kHealthy = 0,
  kSuspect = 1,
  kQuarantined = 2,
};

namespace hb {

// Guard cell states (detail::Worker::guard).
inline constexpr std::uint32_t kGuardFree = 0;
inline constexpr std::uint32_t kGuardOwner = 1;
inline constexpr std::uint32_t kGuardMonitor = 2;
inline constexpr std::uint32_t kGuardReclaimer = 3;
inline constexpr std::uint32_t kGuardThief = 4;

// Heartbeat phase hints (detail::Worker::hb_phase): what the worker was
// doing when it last crossed an instrumented boundary. Used only to
// classify a frozen worker (stuck-in-task vs. descheduled) and to exempt
// parked workers from monitoring; never for correctness.
inline constexpr std::uint32_t kPhaseParked = 0;     // between regions
inline constexpr std::uint32_t kPhaseScheduler = 1;  // polling queues/barrier
inline constexpr std::uint32_t kPhaseInTask = 2;     // inside a task body

}  // namespace hb

/// The per-worker consumer-identity guard cell: one atomic word driven
/// through exactly the transitions in the diagram above, plus the
/// owner-private recursion depth (a task executed inline while the worker
/// holds its own guard may re-enter the scheduler). Extracted into a class
/// so the runtime, the unit tests, and the model checker (tests/model)
/// exercise the *same* state machine — the two linearization points argued
/// in DESIGN.md (quarantine = winning free -> monitor, readmission =
/// monitor -> free) live here.
class GuardCell {
 public:
  /// Worker side: take the own-consumer role (free -> owner), or re-enter
  /// if this thread already holds it. Only the owning worker's thread may
  /// call this — that single-caller discipline is what makes reading
  /// `depth_ > 0` before the CAS safe.
  bool try_acquire_owner() noexcept {
    if (depth_ > 0) {
      ++depth_;
      return true;
    }
    std::uint32_t expect = hb::kGuardFree;
    if (!state_.compare_exchange_strong(expect, hb::kGuardOwner,
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed))
      return false;  // quarantined or mid-reclaim
    depth_ = 1;
    return true;
  }

  /// Worker side: leave one nesting level; the outermost release hands the
  /// cell back (owner -> free) with release ordering so the consumer-state
  /// writes made under the guard are visible to the next holder.
  void release_owner() noexcept {
    if (--depth_ == 0)
      state_.store(hb::kGuardFree, std::memory_order_release);
  }

  /// Monitor side: quarantine's linearization point (free -> monitor).
  bool try_quarantine() noexcept {
    std::uint32_t expect = hb::kGuardFree;
    return state_.compare_exchange_strong(expect, hb::kGuardMonitor,
                                          std::memory_order_acq_rel,
                                          std::memory_order_relaxed);
  }

  /// Monitor side: readmission's linearization point (monitor -> free).
  /// Fails while a reclaimer borrows the cell.
  bool try_readmit() noexcept {
    std::uint32_t expect = hb::kGuardMonitor;
    return state_.compare_exchange_strong(expect, hb::kGuardFree,
                                          std::memory_order_acq_rel,
                                          std::memory_order_relaxed);
  }

  /// Healthy-peer side: borrow a quarantined worker's consumer identity to
  /// drain its rows (monitor -> reclaimer)…
  bool try_borrow_reclaimer() noexcept {
    std::uint32_t expect = hb::kGuardMonitor;
    return state_.compare_exchange_strong(expect, hb::kGuardReclaimer,
                                          std::memory_order_acq_rel,
                                          std::memory_order_relaxed);
  }

  /// …and hand it back between batches (reclaimer -> monitor) so the
  /// monitor can readmit at any batch boundary.
  void return_reclaimer() noexcept {
    state_.store(hb::kGuardMonitor, std::memory_order_release);
  }

  /// Idle-peer side, direct dispatch mode: borrow a *healthy* worker's
  /// consumer identity to pop its rows in place (free -> thief). This is
  /// the adaptive layer's deque-style steal: the SPSC discipline survives
  /// because at most one thread ever holds the consumer role, and the
  /// victim keeps producing (its own master pushes are the producer side,
  /// which the guard does not cover). Fails whenever the victim is inside
  /// its own scheduler step, quarantined, or already being robbed.
  bool try_borrow_thief() noexcept {
    std::uint32_t expect = hb::kGuardFree;
    return state_.compare_exchange_strong(expect, hb::kGuardThief,
                                          std::memory_order_acq_rel,
                                          std::memory_order_relaxed);
  }

  /// Thief hands the consumer identity straight back (thief -> free); the
  /// release store closes the same acq_rel chain the owner/reclaimer
  /// hand-offs use, so the consumer-side plain state is race-free.
  void return_thief() noexcept {
    state_.store(hb::kGuardFree, std::memory_order_release);
  }

  /// Owner-private recursion depth; meaningful only on the owning thread.
  int owner_depth() const noexcept { return depth_; }

  /// Raw state for diagnostics and tests.
  std::uint32_t state() const noexcept {
    return state_.load(std::memory_order_acquire);
  }

 private:
  atomic<std::uint32_t> state_{hb::kGuardFree};
  int depth_ = 0;  // owner-private: written only under / by the owner
};

/// Aggregate self-healing statistics (Runtime::health_stats()).
struct HealthStats {
  std::uint64_t suspects = 0;      // healthy -> suspect transitions
  std::uint64_t quarantines = 0;   // suspect -> quarantined transitions
  std::uint64_t quarantines_in_task = 0;      // classified wedged-in-task
  std::uint64_t quarantines_descheduled = 0;  // classified descheduled
  std::uint64_t readmissions = 0;  // quarantined -> healthy transitions
  std::uint64_t tasks_reclaimed = 0;  // tasks drained from quarantined rows
};

/// Per-worker heartbeat classifier. Owned and driven by the monitor thread
/// only — one observe() per monitor tick — so it is deliberately a plain,
/// deterministic state machine: feed it heartbeat samples, act on the
/// verdicts. Quarantine and readmission are two-phase (verdict, then
/// commit_*) because the monitor must win the guard CAS before either
/// transition becomes real; a failed CAS simply re-yields the same verdict
/// on the next tick.
class HealthTracker {
 public:
  /// `suspect_after`: consecutive frozen ticks before healthy -> suspect.
  /// `quarantine_after`: further frozen ticks before a suspect becomes
  /// quarantine-eligible.
  HealthTracker(std::uint64_t suspect_after,
                std::uint64_t quarantine_after) noexcept
      : suspect_after_(suspect_after ? suspect_after : 1),
        quarantine_after_(quarantine_after ? quarantine_after : 1) {}

  enum class Verdict {
    kNone,
    kBecameSuspect,       // publish WorkerHealth::kSuspect
    kSuspectCleared,      // heartbeat resumed: publish kHealthy
    kQuarantineEligible,  // try the guard CAS; commit_quarantine on success
    kHeartbeatResumed,    // quarantined worker moved: try to readmit
  };

  /// One monitor tick: the worker's current heartbeat and whether it is
  /// schedulable (region active and not parked). Non-schedulable workers
  /// are never suspected — a parked worker's heartbeat freezes by design.
  Verdict observe(std::uint64_t heartbeat, bool schedulable) noexcept {
    const bool moved = heartbeat != last_hb_;
    last_hb_ = heartbeat;
    if (moved || !schedulable)
      frozen_ticks_ = 0;
    else
      ++frozen_ticks_;

    if (health_ == WorkerHealth::kQuarantined)
      return moved ? Verdict::kHeartbeatResumed : Verdict::kNone;
    if (moved || !schedulable) {
      if (health_ == WorkerHealth::kSuspect) {
        health_ = WorkerHealth::kHealthy;
        return Verdict::kSuspectCleared;
      }
      return Verdict::kNone;
    }
    if (health_ == WorkerHealth::kHealthy && frozen_ticks_ >= suspect_after_) {
      health_ = WorkerHealth::kSuspect;
      return Verdict::kBecameSuspect;
    }
    if (health_ == WorkerHealth::kSuspect &&
        frozen_ticks_ >= suspect_after_ + quarantine_after_)
      return Verdict::kQuarantineEligible;
    return Verdict::kNone;
  }

  /// The monitor won the guard (free -> monitor): the quarantine is real.
  void commit_quarantine(bool in_task) noexcept {
    health_ = WorkerHealth::kQuarantined;
    in_task_ = in_task;
  }

  /// The monitor released the guard (monitor -> free): readmitted.
  void commit_readmit() noexcept {
    health_ = WorkerHealth::kHealthy;
    frozen_ticks_ = 0;
  }

  WorkerHealth health() const noexcept { return health_; }
  /// Valid after commit_quarantine: was the frozen worker inside a task
  /// body (wedged) rather than in the scheduler (descheduled)?
  bool quarantined_in_task() const noexcept { return in_task_; }

 private:
  const std::uint64_t suspect_after_;
  const std::uint64_t quarantine_after_;
  std::uint64_t last_hb_ = 0;
  std::uint64_t frozen_ticks_ = 0;
  WorkerHealth health_ = WorkerHealth::kHealthy;
  bool in_task_ = false;
};

}  // namespace xtask
