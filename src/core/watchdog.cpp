#include "core/watchdog.hpp"

#include <algorithm>
#include <chrono>

namespace xtask {

void Watchdog::start(Hooks hooks) {
  if (hooks.timeout_ms == 0 || !hooks.progress || !hooks.on_stall) return;
  stop();
  hooks_ = std::move(hooks);
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_requested_ = false;
  }
  thread_ = std::thread([this] { loop(); });
}

void Watchdog::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void Watchdog::loop() {
  using clock = std::chrono::steady_clock;
  // Sample several times per window so a stall is detected within roughly
  // timeout_ms..1.25*timeout_ms of its onset.
  const auto poll_interval = std::chrono::milliseconds(
      std::clamp<std::uint64_t>(hooks_.timeout_ms / 4, 1, 100));
  const auto window = std::chrono::milliseconds(hooks_.timeout_ms);

  std::uint64_t last_sig = 0;
  bool have_baseline = false;
  clock::time_point last_change = clock::now();

  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_requested_) {
    cv_.wait_for(lock, poll_interval, [&] { return stop_requested_; });
    if (stop_requested_) return;
    lock.unlock();

    const bool active = !hooks_.active || hooks_.active();
    if (!active) {
      have_baseline = false;
    } else {
      const std::uint64_t sig = hooks_.progress();
      const clock::time_point now = clock::now();
      if (!have_baseline || sig != last_sig) {
        last_sig = sig;
        have_baseline = true;
        last_change = now;
      } else if (now - last_change >= window) {
        stalls_.fetch_add(1, std::memory_order_relaxed);
        hooks_.on_stall();
        // Restart the episode: fire again only after a whole further
        // window without progress.
        have_baseline = false;
      }
    }

    lock.lock();
  }
}

}  // namespace xtask
