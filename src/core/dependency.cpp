#include "core/dependency.hpp"

#include "core/task_allocator.hpp"

namespace xtask::detail {

namespace {
/// Edge nodes are allocated on the registering thread and freed on the
/// completing thread; each side uses its own cache (see ThreadNodeCache —
/// ownership transfers through the release list, so no synchronization).
thread_local ThreadNodeCache<ReleaseNode> t_node_cache;
}  // namespace

DepScope::~DepScope() {
  // Map references are handed back through close(), which the runtime
  // calls before destroying the scope; destruction with live entries
  // would leak task refcounts.
  XTASK_CHECK(frontier_.empty());
}

bool DepScope::add_edge(Task* pred, Task* succ) {
  TaskDepState* st = pred->dep_state;
  XTASK_CHECK(st != nullptr);  // preds are always dependence-registered
  // Count the edge before publishing it: once the node is in pred's list
  // a completing worker may decrement immediately. The count cannot hit
  // zero early — the registration guard on succ holds it above the edges.
  succ->deps_pending.fetch_add(1, std::memory_order_relaxed);
  ReleaseNode* n = t_node_cache.get();
  n->item = succ;
  n->next = nullptr;
  if (st->successors.push(n)) return true;
  // The predecessor already completed and sealed its list: the dependence
  // is satisfied, no edge exists. Undo the count, reclaim the node.
  succ->deps_pending.fetch_sub(1, std::memory_order_relaxed);
  t_node_cache.put(n);
  return false;
}

std::uint32_t DepScope::register_task(Task* t, const Dep* deps,
                                      std::size_t count) {
  // Every dependence-registered task may become a predecessor later, so
  // its successor state exists before the task becomes visible to other
  // workers (this is what makes the completion path race-free without a
  // pointer CAS).
  t->dep_state = new TaskDepState;
  // Registration guard: successors cannot release the task while we are
  // still adding edges.
  t->deps_pending.store(1, std::memory_order_relaxed);

  for (std::size_t i = 0; i < count; ++i) {
    const Dep& d = deps[i];
    frontier_.access(
        t, d.addr, d.mode,
        /*edge=*/[&](Task* pred) { add_edge(pred, t); },
        /*retain=*/
        [](Task* n) { n->refs.fetch_add(1, std::memory_order_relaxed); },
        /*drop=*/[this](Task* n) { dropped_.push_back(n); });
  }
  // Drop the registration guard; the return value tells the caller
  // whether the task is immediately dispatchable.
  return t->deps_pending.fetch_sub(1, std::memory_order_acq_rel) - 1;
}

void DepScope::close(std::vector<Task*>* refs_out) {
  frontier_.clear([&](Task* n) { refs_out->push_back(n); });
  refs_out->insert(refs_out->end(), dropped_.begin(), dropped_.end());
  dropped_.clear();
}

void collect_ready_successors(Task* t, std::vector<Task*>* ready) {
  TaskDepState* st = t->dep_state;
  if (st == nullptr) return;
  // The exchange inside seal() is completion's linearization point: every
  // edge pushed before it is in the chain, every add_edge after it fails
  // (and correctly treats the dependence as already satisfied).
  ReleaseNode* n = st->successors.seal();
  XTASK_CHECK(n != ReleaseList::sealed_tag());  // one completer per task
  while (n != nullptr) {
    ReleaseNode* next = n->next;
    Task* s = static_cast<Task*>(n->item);
    if (s->deps_pending.fetch_sub(1, std::memory_order_acq_rel) == 1)
      ready->push_back(s);
    t_node_cache.put(n);
    n = next;
  }
}

}  // namespace xtask::detail
