#include "core/dependency.hpp"

namespace xtask::detail {

DepScope::~DepScope() {
  // Map references are handed back through close(), which the runtime
  // calls before destroying the scope; destruction with live entries
  // would leak task refcounts.
  XTASK_CHECK(addrs_.empty());
}

bool DepScope::add_edge(Task* pred, Task* succ) {
  TaskDepState* st = pred->dep_state;
  XTASK_CHECK(st != nullptr);  // preds are always dependence-registered
  st->acquire();
  if (st->completed) {
    st->release();
    return false;
  }
  succ->deps_pending.fetch_add(1, std::memory_order_relaxed);
  st->successors.push_back(succ);
  st->release();
  return true;
}

std::uint32_t DepScope::register_task(Task* t, const Dep* deps,
                                      std::size_t count) {
  // Every dependence-registered task may become a predecessor later, so
  // its successor state exists before the task becomes visible to other
  // workers (this is what makes the completion path race-free without a
  // pointer CAS).
  t->dep_state = new TaskDepState;
  // Registration guard: successors cannot release the task while we are
  // still adding edges.
  t->deps_pending.store(1, std::memory_order_relaxed);

  for (std::size_t i = 0; i < count; ++i) {
    const Dep& d = deps[i];
    AddrState& st = addrs_[d.addr];
    if (d.write) {
      // Writer: ordered after the previous writer and every reader since.
      if (st.last_writer != nullptr && st.last_writer != t)
        add_edge(st.last_writer, t);
      for (Task* r : st.readers)
        if (r != t) add_edge(r, t);
      // Replace the frontier: drop map refs on the old entries, take one
      // on the new writer.
      if (st.last_writer != nullptr) dropped_.push_back(st.last_writer);
      for (Task* r : st.readers) dropped_.push_back(r);
      st.readers.clear();
      st.last_writer = t;
      t->refs.fetch_add(1, std::memory_order_relaxed);
    } else {
      // Reader: ordered after the last writer only; joins the reader set.
      if (st.last_writer != nullptr && st.last_writer != t)
        add_edge(st.last_writer, t);
      st.readers.push_back(t);
      t->refs.fetch_add(1, std::memory_order_relaxed);
    }
  }
  // Drop the registration guard; the return value tells the caller
  // whether the task is immediately dispatchable.
  return t->deps_pending.fetch_sub(1, std::memory_order_acq_rel) - 1;
}

void DepScope::close(std::vector<Task*>* refs_out) {
  for (auto& [addr, st] : addrs_) {
    if (st.last_writer != nullptr) refs_out->push_back(st.last_writer);
    for (Task* r : st.readers) refs_out->push_back(r);
  }
  addrs_.clear();
  refs_out->insert(refs_out->end(), dropped_.begin(), dropped_.end());
  dropped_.clear();
}

void collect_ready_successors(Task* t, std::vector<Task*>* ready) {
  TaskDepState* st = t->dep_state;
  if (st == nullptr) return;
  st->acquire();
  st->completed = true;
  // Move the list out so the lock is held only for the swap.
  std::vector<Task*> succs;
  succs.swap(st->successors);
  st->release();
  for (Task* s : succs) {
    if (s->deps_pending.fetch_sub(1, std::memory_order_acq_rel) == 1)
      ready->push_back(s);
  }
}

}  // namespace xtask::detail
