#include "core/tree_barrier.hpp"

#include "core/fault.hpp"

namespace xtask {

namespace {

/// Chaos hook: stall a worker right before it publishes a census cell,
/// widening the inter-pass windows the double-pass quiescence rule must
/// remain correct across.
inline void census_perturb() noexcept {
  if (FaultInjector* fi = fault_injector())
    fi->perturb(FaultPoint::kCensusPublish);
}

}  // namespace

TreeBarrier::TreeBarrier(int num_workers)
    : n_(num_workers), nodes_(static_cast<std::size_t>(num_workers)) {
  XTASK_CHECK(num_workers >= 1);
}

bool TreeBarrier::children_reported(int tid, std::uint64_t epoch,
                                    std::uint64_t* created_out,
                                    std::uint64_t* executed_out) noexcept {
  std::uint64_t created = 0;
  std::uint64_t executed = 0;
  for (int c = 2 * tid + 1; c <= 2 * tid + 2; ++c) {
    if (c >= n_) break;
    const Node& child = nodes_[static_cast<std::size_t>(c)];
    if (child.report_epoch.load(std::memory_order_acquire) != epoch)
      return false;
    created += child.sum_created.load(std::memory_order_relaxed);
    executed += child.sum_executed.load(std::memory_order_relaxed);
  }
  *created_out = created;
  *executed_out = executed;
  return true;
}

bool TreeBarrier::poll(int tid, std::uint64_t created, std::uint64_t executed,
                       std::uint64_t gen) noexcept {
  Node& me = nodes_[static_cast<std::size_t>(tid)];

  // Release broadcast has priority: once the subtree root above us has
  // released generation `gen`, relay and exit. The root's own release cell
  // is authoritative for the root.
  if (tid != 0) {
    const int parent = (tid - 1) / 2;
    const std::uint64_t parent_rel =
        nodes_[static_cast<std::size_t>(parent)].release.load(
            std::memory_order_acquire);
    if (parent_rel > me.release.load(std::memory_order_relaxed))
      me.release.store(parent_rel, std::memory_order_release);
  }
  if (me.release.load(std::memory_order_relaxed) >= gen) return true;

  if (tid == 0) {
    // Root: drive census passes. Pass `e` is open while epoch == e and our
    // own report_epoch < e; we close it once both children reported e.
    std::uint64_t e = me.epoch.load(std::memory_order_relaxed);
    if (me.report_epoch.load(std::memory_order_relaxed) == e) {
      // Previous pass fully closed; open the next one.
      me.epoch.store(++e, std::memory_order_release);
    }
    std::uint64_t child_created = 0;
    std::uint64_t child_executed = 0;
    if (!children_reported(tid, e, &child_created, &child_executed))
      return false;
    const std::uint64_t total_created = child_created + created;
    const std::uint64_t total_executed = child_executed + executed;
    // Mark pass e closed (root's report cell has no parent reader; it
    // doubles as the "pass complete" latch and the passes() diagnostic).
    me.report_epoch.store(e, std::memory_order_relaxed);

    const bool stable = root_.have_prev &&
                        root_.prev_created == total_created &&
                        root_.prev_executed == total_executed;
    root_.prev_created = total_created;
    root_.prev_executed = total_executed;
    root_.have_prev = true;
    if (stable && total_created == total_executed) {
      root_.have_prev = false;  // restart history for the next region
      census_perturb();
      me.release.store(gen, std::memory_order_release);
      return true;
    }
    return false;
  }

  // Inner node / leaf: adopt the parent's epoch, propagate it downward,
  // and report once our whole subtree has reported.
  const int parent = (tid - 1) / 2;
  const std::uint64_t target_epoch =
      nodes_[static_cast<std::size_t>(parent)].epoch.load(
          std::memory_order_acquire);
  if (me.epoch.load(std::memory_order_relaxed) != target_epoch)
    me.epoch.store(target_epoch, std::memory_order_release);
  if (me.report_epoch.load(std::memory_order_relaxed) == target_epoch)
    return false;  // already reported this pass; wait for root
  std::uint64_t child_created = 0;
  std::uint64_t child_executed = 0;
  if (!children_reported(tid, target_epoch, &child_created, &child_executed))
    return false;
  me.sum_created.store(child_created + created, std::memory_order_relaxed);
  me.sum_executed.store(child_executed + executed, std::memory_order_relaxed);
  census_perturb();
  me.report_epoch.store(target_epoch, std::memory_order_release);
  return false;
}

}  // namespace xtask
