#include "core/steal_protocol.hpp"

#include <bit>

namespace xtask {

int pick_victim(const Topology& topo, int self, double p_local,
                XorShift& rng) noexcept {
  const int n = topo.num_workers();
  if (n <= 1) return -1;

  const auto& peers = topo.peers_of(self);
  const bool have_local = peers.size() > 1;
  const bool have_remote = static_cast<int>(peers.size()) < n;
  bool go_local = rng.uniform() < p_local;
  if (go_local && !have_local) go_local = false;
  if (!go_local && !have_remote) go_local = true;

  if (go_local) {
    // Uniform over local peers excluding self.
    const std::uint64_t k = rng.below(peers.size() - 1);
    const int v = peers[static_cast<std::size_t>(k)];
    return v == self ? peers.back() : v;
  }
  // Uniform over remote workers: draw from the non-peer count and skip the
  // contiguous local block ("close" affinity makes zones contiguous, but we
  // do not rely on that — we draw by rank among remote workers).
  const int remote_count = n - static_cast<int>(peers.size());
  std::uint64_t k = rng.below(static_cast<std::uint64_t>(remote_count));
  const int my_zone = topo.zone_of(self);
  for (int w = 0; w < n; ++w) {
    if (topo.zone_of(w) == my_zone) continue;
    if (k == 0) return w;
    --k;
  }
  return -1;  // unreachable
}

namespace {

/// Index of the k-th (0-based) set bit of `m`; requires k < popcount(m).
int kth_set_bit(std::uint64_t m, std::uint64_t k) noexcept {
  while (k-- > 0) m &= m - 1;
  return std::countr_zero(m);
}

}  // namespace

int pick_victim_masked(int self, double p_local, XorShift& rng,
                       std::uint64_t occupied,
                       std::uint64_t local_mask) noexcept {
  if (self >= 0 && self < 64) occupied &= ~(1ull << self);
  if (occupied == 0) return -1;

  const std::uint64_t local = occupied & local_mask;
  const std::uint64_t remote = occupied & ~local_mask;
  bool go_local = rng.uniform() < p_local;
  if (go_local && local == 0) go_local = false;
  if (!go_local && remote == 0) go_local = true;

  const std::uint64_t pool = go_local ? local : remote;
  const int count = std::popcount(pool);
  return kth_set_bit(pool, rng.below(static_cast<std::uint64_t>(count)));
}

}  // namespace xtask
